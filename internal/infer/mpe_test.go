package infer

import (
	"math"
	"testing"

	"waitfreebn/internal/bn"
)

// bruteMPE enumerates all completions of the evidence and returns the
// maximum joint probability (the assignment itself may tie; compare
// probabilities, not states).
func bruteMPE(net *bn.Network, evidence map[int]uint8) float64 {
	nv := net.NumVars()
	sample := make([]uint8, nv)
	best := -1.0
	var walk func(v int)
	walk = func(v int) {
		if v == nv {
			if p := net.JointProb(sample); p > best {
				best = p
			}
			return
		}
		if s, ok := evidence[v]; ok {
			sample[v] = s
			walk(v + 1)
			return
		}
		for s := 0; s < net.Cardinality(v); s++ {
			sample[v] = uint8(s)
			walk(v + 1)
		}
	}
	walk(0)
	return best
}

func TestFactorMaxOut(t *testing.T) {
	f := NewFactor([]int{0, 1}, []int{2, 3})
	vals := [][]float64{{1, 5, 2}, {4, 0, 3}}
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			f.Set(vals[a][b], a, b)
		}
	}
	m := f.MaxOut(1)
	if m.At(0) != 5 || m.At(1) != 4 {
		t.Errorf("MaxOut over columns: %v %v", m.At(0), m.At(1))
	}
	m2 := f.MaxOut(0)
	if m2.At(0) != 4 || m2.At(1) != 5 || m2.At(2) != 3 {
		t.Errorf("MaxOut over rows: %v %v %v", m2.At(0), m2.At(1), m2.At(2))
	}
}

func TestFactorMaxOutPanicsOnMissingVar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxOut of absent variable did not panic")
		}
	}()
	NewFactor([]int{0}, []int{2}).MaxOut(3)
}

func TestMPEMatchesBruteForce(t *testing.T) {
	for _, net := range []*bn.Network{bn.Cancer(), bn.Asia(), bn.Chain(6, 3, 0.7)} {
		cases := []map[int]uint8{
			nil,
			{0: 1},
			{net.NumVars() - 1: 1},
		}
		for _, ev := range cases {
			got, prob, err := MPE(net, ev)
			if err != nil {
				t.Fatalf("%s ev=%v: %v", net.Name(), ev, err)
			}
			want := bruteMPE(net, ev)
			if math.Abs(prob-want) > 1e-12 {
				t.Errorf("%s ev=%v: MPE prob %v, brute force %v (assignment %v)",
					net.Name(), ev, prob, want, got)
			}
			// The returned assignment must honor the evidence and have the
			// claimed probability.
			for v, s := range ev {
				if got[v] != s {
					t.Errorf("%s: MPE violated evidence at %d", net.Name(), v)
				}
			}
			if jp := net.JointProb(got); math.Abs(jp-prob) > 1e-15 {
				t.Errorf("%s: reported prob %v but JointProb = %v", net.Name(), prob, jp)
			}
		}
	}
}

func TestMPEDeterministicChain(t *testing.T) {
	// keep=0.9 chain: the MPE with no evidence picks a constant chain;
	// with the last variable clamped to state 2, the whole chain follows.
	net := bn.Chain(5, 3, 0.9)
	got, _, err := MPE(net, map[int]uint8{4: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if got[v] != 2 {
			t.Fatalf("MPE = %v, want all 2s", got)
		}
	}
}

func TestMPEErrors(t *testing.T) {
	net := bn.Asia()
	if _, _, err := MPE(net, map[int]uint8{99: 0}); err == nil {
		t.Error("out-of-range evidence variable accepted")
	}
	if _, _, err := MPE(net, map[int]uint8{0: 7}); err == nil {
		t.Error("out-of-range evidence state accepted")
	}
	// Impossible evidence: tub=1 with either=0.
	if _, _, err := MPE(net, map[int]uint8{2: 1, 5: 0}); err == nil {
		t.Error("zero-probability evidence accepted")
	}
	bad := bn.NewNetwork("no-cpts", []int{2})
	if _, _, err := MPE(bad, nil); err == nil {
		t.Error("unparameterized network accepted")
	}
}

func TestMPEAllEvidence(t *testing.T) {
	// Every variable observed: MPE is the evidence itself.
	net := bn.Cancer()
	ev := map[int]uint8{0: 0, 1: 1, 2: 0, 3: 0, 4: 1}
	got, prob, err := MPE(net, ev)
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range ev {
		if got[v] != s {
			t.Fatalf("assignment %v differs from evidence", got)
		}
	}
	want := net.JointProb([]uint8{0, 1, 0, 0, 1})
	if math.Abs(prob-want) > 1e-15 {
		t.Errorf("prob %v, want %v", prob, want)
	}
}
