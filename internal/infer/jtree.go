package infer

import (
	"fmt"
	"sort"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/graph"
)

// Junction-tree (clique-tree) inference: the exact-inference architecture
// behind the parallel-inference line of work the paper builds on (Xia &
// Prasanna's junction-tree decompositions, Section III). Where variable
// elimination answers one query per elimination run, a calibrated junction
// tree answers marginals for every variable from one two-pass message
// schedule.
//
// Construction: moralize the DAG, triangulate with the min-fill heuristic,
// collect maximal cliques from the elimination order, and connect them by
// a maximum-weight spanning tree on separator sizes (which satisfies the
// running-intersection property for triangulated graphs).

// Clique is one node of the junction tree.
type Clique struct {
	Vars      []int // sorted member variables
	potential *Factor
	belief    *Factor // after calibration
}

// JunctionTree is a calibrated-on-demand clique tree for one network.
type JunctionTree struct {
	net        *bn.Network
	cliques    []*Clique
	adj        [][]int // tree adjacency between cliques
	calibrated bool
}

// NewJunctionTree builds the clique tree for net (without evidence;
// Calibrate applies evidence later). It fails only when the network has no
// valid CPTs.
func NewJunctionTree(net *bn.Network) (*JunctionTree, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	n := net.NumVars()
	moral := net.DAG().Moralize()

	// --- Min-fill triangulation over a working copy. ---
	work := moral.Clone()
	eliminated := make([]bool, n)
	var cliqueSets [][]int
	for step := 0; step < n; step++ {
		// Pick the uneliminated vertex whose neighborhood needs the fewest
		// fill-in edges; ties toward the lower vertex id.
		best, bestFill := -1, 0
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			fill := fillInCount(work, v, eliminated)
			if best < 0 || fill < bestFill {
				best, bestFill = v, fill
			}
		}
		// The clique of this elimination step: v plus its live neighbors.
		members := []int{best}
		for _, u := range work.Neighbors(best) {
			if !eliminated[u] {
				members = append(members, u)
			}
		}
		sort.Ints(members)
		cliqueSets = append(cliqueSets, members)
		// Connect the neighbors (fill-in) and retire v.
		live := members[:0:0]
		for _, u := range members {
			if u != best {
				live = append(live, u)
			}
		}
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				work.AddEdge(live[i], live[j])
			}
		}
		eliminated[best] = true
	}

	// --- Keep only maximal cliques. ---
	var maximal [][]int
	for i, c := range cliqueSets {
		isMax := true
		for j, d := range cliqueSets {
			if i != j && subsetOf(c, d) && (len(c) < len(d) || i > j) {
				isMax = false
				break
			}
		}
		if isMax {
			maximal = append(maximal, c)
		}
	}

	jt := &JunctionTree{net: net}
	for _, vars := range maximal {
		jt.cliques = append(jt.cliques, &Clique{Vars: vars})
	}

	// --- Maximum-weight spanning tree over separator sizes (Prim). ---
	k := len(jt.cliques)
	jt.adj = make([][]int, k)
	if k > 1 {
		inTree := make([]bool, k)
		inTree[0] = true
		for added := 1; added < k; added++ {
			bestI, bestJ, bestW := -1, -1, -1
			for i := 0; i < k; i++ {
				if !inTree[i] {
					continue
				}
				for j := 0; j < k; j++ {
					if inTree[j] {
						continue
					}
					w := intersectionSize(jt.cliques[i].Vars, jt.cliques[j].Vars)
					if w > bestW {
						bestI, bestJ, bestW = i, j, w
					}
				}
			}
			jt.adj[bestI] = append(jt.adj[bestI], bestJ)
			jt.adj[bestJ] = append(jt.adj[bestJ], bestI)
			inTree[bestJ] = true
		}
	}
	return jt, nil
}

// NumCliques returns the number of cliques in the tree.
func (jt *JunctionTree) NumCliques() int { return len(jt.cliques) }

// MaxCliqueSize returns the largest clique cardinality (the treewidth + 1
// of the triangulation found).
func (jt *JunctionTree) MaxCliqueSize() int {
	max := 0
	for _, c := range jt.cliques {
		if len(c.Vars) > max {
			max = len(c.Vars)
		}
	}
	return max
}

// Calibrate assigns CPT factors (with evidence restricted) to cliques and
// runs a two-pass sum-product message schedule, leaving every clique with
// its joint belief. It must be called before Marginal; re-calling with
// different evidence re-calibrates.
func (jt *JunctionTree) Calibrate(evidence map[int]uint8) error {
	for v, s := range evidence {
		if v < 0 || v >= jt.net.NumVars() {
			return fmt.Errorf("infer: evidence variable %d outside [0,%d)", v, jt.net.NumVars())
		}
		if int(s) >= jt.net.Cardinality(v) {
			return fmt.Errorf("infer: evidence state %d out of range for variable %d", s, v)
		}
	}
	// Initialize clique potentials to 1 over their scopes.
	for _, c := range jt.cliques {
		card := make([]int, len(c.Vars))
		for i, v := range c.Vars {
			card[i] = jt.net.Cardinality(v)
		}
		f := NewFactor(c.Vars, card)
		for i := range f.values {
			f.values[i] = 1
		}
		c.potential = f
	}
	// Multiply each CPT factor (evidence-restricted) into one containing
	// clique. A junction tree of the moral graph always has one, since a
	// CPT's scope {v} ∪ parents(v) is a moral-graph clique.
	for v := 0; v < jt.net.NumVars(); v++ {
		f := FromCPT(jt.net, v)
		for ev, s := range evidence {
			if containsVar(f.vars, ev) {
				f = f.Restrict(ev, int(s))
			}
		}
		// Evidence restriction on an evidence-only CPT can yield a scalar;
		// multiply it into clique 0.
		home := -1
		for ci, c := range jt.cliques {
			if subsetOf(f.vars, c.Vars) {
				home = ci
				break
			}
		}
		if home < 0 {
			return fmt.Errorf("infer: internal error: no clique contains CPT scope %v", f.vars)
		}
		jt.cliques[home].potential = jt.cliques[home].potential.Multiply(f)
	}

	// Two-pass message passing rooted at clique 0.
	k := len(jt.cliques)
	messages := make(map[[2]int]*Factor, 2*(k-1))
	// Collect (post-order) then distribute (pre-order).
	var collect func(v, parent int)
	collect = func(v, parent int) {
		for _, u := range jt.adj[v] {
			if u != parent {
				collect(u, v)
			}
		}
		if parent >= 0 {
			messages[[2]int{v, parent}] = jt.message(v, parent, messages)
		}
	}
	collect(0, -1)
	var distribute func(v, parent int)
	distribute = func(v, parent int) {
		for _, u := range jt.adj[v] {
			if u != parent {
				messages[[2]int{v, u}] = jt.message(v, u, messages)
				distribute(u, v)
			}
		}
	}
	distribute(0, -1)

	// Beliefs: potential × all incoming messages.
	evidenceProb := -1.0
	for ci, c := range jt.cliques {
		b := c.potential
		for _, u := range jt.adj[ci] {
			b = b.Multiply(messages[[2]int{u, ci}])
		}
		// Normalize each belief; the normalizer is P(evidence) and must be
		// consistent across cliques (calibration invariant checked by
		// tests).
		z := b.Normalize()
		if z == 0 {
			return fmt.Errorf("infer: evidence has probability zero")
		}
		if evidenceProb < 0 {
			evidenceProb = z
		}
		c.belief = b
	}
	jt.calibrated = true
	return nil
}

// message computes the message from clique `from` to clique `to`: the
// product of from's potential and all messages into `from` except to→from,
// summed down to the separator.
func (jt *JunctionTree) message(from, to int, messages map[[2]int]*Factor) *Factor {
	f := jt.cliques[from].potential
	for _, u := range jt.adj[from] {
		if u == to {
			continue
		}
		if msg, ok := messages[[2]int{u, from}]; ok {
			f = f.Multiply(msg)
		}
	}
	sep := intersect(jt.cliques[from].Vars, jt.cliques[to].Vars)
	// Sum out everything not in the separator.
	for _, v := range f.vars {
		if !containsVar(sep, v) {
			f = f.SumOut(v)
		}
	}
	return f
}

// Marginal returns the posterior P(v | evidence used at Calibrate) from
// the calibrated tree.
func (jt *JunctionTree) Marginal(v int) ([]float64, error) {
	if !jt.calibrated {
		return nil, fmt.Errorf("infer: junction tree not calibrated")
	}
	if v < 0 || v >= jt.net.NumVars() {
		return nil, fmt.Errorf("infer: variable %d outside [0,%d)", v, jt.net.NumVars())
	}
	for _, c := range jt.cliques {
		if !containsVar(c.Vars, v) {
			continue
		}
		b := c.belief
		for _, u := range b.vars {
			if u != v {
				b = b.SumOut(u)
			}
		}
		if len(b.vars) == 1 && b.vars[0] == v {
			out := make([]float64, jt.net.Cardinality(v))
			copy(out, b.values)
			return out, nil
		}
		// Variable was evidence-restricted out of the belief: the
		// posterior is the point mass Calibrate clamped; callers query
		// evidence variables rarely, so reconstruct it from the net.
		break
	}
	return nil, fmt.Errorf("infer: variable %d not in any clique belief (evidence variable?)", v)
}

func fillInCount(g *graph.Undirected, v int, eliminated []bool) int {
	var live []int
	for _, u := range g.Neighbors(v) {
		if !eliminated[u] {
			live = append(live, u)
		}
	}
	fill := 0
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if !g.HasEdge(live[i], live[j]) {
				fill++
			}
		}
	}
	return fill
}

// subsetOf reports whether sorted slice a ⊆ sorted slice b.
func subsetOf(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
	}
	return true
}

func intersectionSize(a, b []int) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// AllMarginals returns the posterior of every non-evidence variable from
// one calibration — the batch-query advantage of the junction tree over
// per-query variable elimination. Entries for evidence variables are nil.
func (jt *JunctionTree) AllMarginals(evidence map[int]uint8) ([][]float64, error) {
	if err := jt.Calibrate(evidence); err != nil {
		return nil, err
	}
	out := make([][]float64, jt.net.NumVars())
	for v := range out {
		if _, isEv := evidence[v]; isEv {
			continue
		}
		dist, err := jt.Marginal(v)
		if err != nil {
			return nil, err
		}
		out[v] = dist
	}
	return out, nil
}
