package infer

import (
	"math"
	"testing"

	"waitfreebn/internal/bn"
)

const tol = 1e-9

// bruteMarginal computes P(v | evidence) by full joint enumeration.
func bruteMarginal(t *testing.T, net *bn.Network, v int, evidence map[int]uint8) []float64 {
	t.Helper()
	nv := net.NumVars()
	out := make([]float64, net.Cardinality(v))
	sample := make([]uint8, nv)
	var walk func(i int)
	var total float64
	walk = func(i int) {
		if i == nv {
			p := net.JointProb(sample)
			out[sample[v]] += p
			total += p
			return
		}
		if ev, ok := evidence[i]; ok {
			sample[i] = ev
			walk(i + 1)
			return
		}
		for s := 0; s < net.Cardinality(i); s++ {
			sample[i] = uint8(s)
			walk(i + 1)
		}
	}
	walk(0)
	if total == 0 {
		t.Fatal("brute: evidence probability zero")
	}
	for s := range out {
		out[s] /= total
	}
	return out
}

func TestFactorBasics(t *testing.T) {
	f := NewFactor([]int{1, 3}, []int{2, 3})
	if f.Size() != 6 {
		t.Fatalf("Size = %d", f.Size())
	}
	f.Set(0.5, 1, 2)
	if got := f.At(1, 2); got != 0.5 {
		t.Errorf("At = %v", got)
	}
	if got := f.At(0, 0); got != 0 {
		t.Errorf("unset cell = %v", got)
	}
}

func TestFactorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"vars/card mismatch": func() { NewFactor([]int{1}, []int{2, 2}) },
		"not increasing":     func() { NewFactor([]int{2, 1}, []int{2, 2}) },
		"zero card":          func() { NewFactor([]int{0}, []int{0}) },
		"At arity":           func() { NewFactor([]int{0}, []int{2}).At(1, 1) },
		"At range":           func() { NewFactor([]int{0}, []int{2}).At(2) },
		"SumOut missing":     func() { NewFactor([]int{0}, []int{2}).SumOut(5) },
		"Restrict missing":   func() { NewFactor([]int{0}, []int{2}).Restrict(5, 0) },
		"Restrict range":     func() { NewFactor([]int{0}, []int{2}).Restrict(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFactorMultiply(t *testing.T) {
	// f(A) · g(A,B) over binary A, B.
	f := NewFactor([]int{0}, []int{2})
	f.Set(0.3, 0)
	f.Set(0.7, 1)
	g := NewFactor([]int{0, 1}, []int{2, 2})
	g.Set(0.1, 0, 0)
	g.Set(0.9, 0, 1)
	g.Set(0.5, 1, 0)
	g.Set(0.5, 1, 1)
	h := f.Multiply(g)
	want := map[[2]int]float64{
		{0, 0}: 0.03, {0, 1}: 0.27, {1, 0}: 0.35, {1, 1}: 0.35,
	}
	for k, w := range want {
		if got := h.At(k[0], k[1]); math.Abs(got-w) > tol {
			t.Errorf("h%v = %v, want %v", k, got, w)
		}
	}
}

func TestFactorMultiplyDisjoint(t *testing.T) {
	f := NewFactor([]int{0}, []int{2})
	f.Set(2, 0)
	f.Set(3, 1)
	g := NewFactor([]int{5}, []int{2})
	g.Set(10, 0)
	g.Set(100, 1)
	h := f.Multiply(g)
	if got := h.At(1, 0); got != 30 {
		t.Errorf("disjoint product = %v, want 30", got)
	}
	if len(h.Vars()) != 2 || h.Vars()[0] != 0 || h.Vars()[1] != 5 {
		t.Errorf("union vars %v", h.Vars())
	}
}

func TestFactorMultiplyCardMismatchPanics(t *testing.T) {
	f := NewFactor([]int{0}, []int{2})
	g := NewFactor([]int{0}, []int{3})
	defer func() {
		if recover() == nil {
			t.Fatal("cardinality mismatch did not panic")
		}
	}()
	f.Multiply(g)
}

func TestFactorSumOut(t *testing.T) {
	g := NewFactor([]int{0, 1}, []int{2, 3})
	v := 1.0
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			g.Set(v, a, b)
			v++
		}
	}
	s := g.SumOut(1)
	if got := s.At(0); got != 1+2+3 {
		t.Errorf("SumOut row 0 = %v", got)
	}
	if got := s.At(1); got != 4+5+6 {
		t.Errorf("SumOut row 1 = %v", got)
	}
	// Summing out the last variable gives a scalar factor.
	sc := s.SumOut(0)
	if sc.Size() != 1 || sc.values[0] != 21 {
		t.Errorf("scalar factor = %+v", sc)
	}
}

func TestFactorRestrict(t *testing.T) {
	g := NewFactor([]int{0, 1}, []int{2, 2})
	g.Set(1, 0, 0)
	g.Set(2, 0, 1)
	g.Set(3, 1, 0)
	g.Set(4, 1, 1)
	r := g.Restrict(0, 1)
	if r.At(0) != 3 || r.At(1) != 4 {
		t.Errorf("Restrict wrong: %v %v", r.At(0), r.At(1))
	}
}

func TestFactorNormalize(t *testing.T) {
	f := NewFactor([]int{0}, []int{2})
	f.Set(1, 0)
	f.Set(3, 1)
	if z := f.Normalize(); z != 4 {
		t.Errorf("normalizer %v", z)
	}
	if f.At(0) != 0.25 || f.At(1) != 0.75 {
		t.Errorf("normalized %v %v", f.At(0), f.At(1))
	}
	zero := NewFactor([]int{0}, []int{2})
	if z := zero.Normalize(); z != 0 {
		t.Errorf("zero factor normalizer %v", z)
	}
}

func TestFactorCloneIndependent(t *testing.T) {
	f := NewFactor([]int{0}, []int{2})
	f.Set(1, 0)
	c := f.Clone()
	c.Set(9, 0)
	if f.At(0) != 1 {
		t.Error("Clone shares values")
	}
}

func TestFromCPTIsConditionalDistribution(t *testing.T) {
	net := bn.Asia()
	for v := 0; v < net.NumVars(); v++ {
		f := FromCPT(net, v)
		// Summing out v from the CPT factor yields all-ones over parents.
		s := f.SumOut(v)
		for i := range s.values {
			if math.Abs(s.values[i]-1) > tol {
				t.Errorf("variable %d: CPT rows don't sum to 1 (cell %d = %v)", v, i, s.values[i])
			}
		}
	}
}

func TestQueryPriorMarginals(t *testing.T) {
	for _, net := range []*bn.Network{bn.Cancer(), bn.Asia(), bn.Chain(5, 3, 0.8)} {
		for v := 0; v < net.NumVars(); v++ {
			got, err := QueryMarginal(net, v, nil)
			if err != nil {
				t.Fatalf("%s var %d: %v", net.Name(), v, err)
			}
			want := bruteMarginal(t, net, v, nil)
			for s := range want {
				if math.Abs(got[s]-want[s]) > tol {
					t.Errorf("%s: P(x%d=%d) = %v, want %v", net.Name(), v, s, got[s], want[s])
				}
			}
		}
	}
}

func TestQueryPosteriorWithEvidence(t *testing.T) {
	net := bn.Asia()
	cases := []map[int]uint8{
		{6: 1},       // positive x-ray
		{7: 1, 1: 1}, // dyspnea + smoker
		{0: 1, 6: 0}, // visited asia, negative x-ray
	}
	for _, ev := range cases {
		for v := 0; v < net.NumVars(); v++ {
			if _, isEv := ev[v]; isEv {
				continue
			}
			got, err := QueryMarginal(net, v, ev)
			if err != nil {
				t.Fatalf("ev %v var %d: %v", ev, v, err)
			}
			want := bruteMarginal(t, net, v, ev)
			for s := range want {
				if math.Abs(got[s]-want[s]) > 1e-6 {
					t.Errorf("ev %v: P(x%d=%d|e) = %v, want %v", ev, v, s, got[s], want[s])
				}
			}
		}
	}
}

func TestQueryJointOfTwoVariables(t *testing.T) {
	net := bn.Cancer()
	f, err := Query(net, []int{0, 1}, map[int]uint8{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Marginalize the 2-var result and compare to single-var queries.
	m0 := f.SumOut(1)
	want0, err := QueryMarginal(net, 0, map[int]uint8{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if math.Abs(m0.At(s)-want0[s]) > 1e-9 {
			t.Errorf("joint-then-marginal %v vs direct %v", m0.At(s), want0[s])
		}
	}
}

func TestQueryEvidenceChangesBelief(t *testing.T) {
	// Classic explaining-away check in Cancer: observing cancer raises
	// P(smoker); additionally observing pollution lowers it again
	// (slightly) — at minimum the posterior must differ from the prior.
	net := bn.Cancer()
	prior, _ := QueryMarginal(net, 1, nil)
	post, _ := QueryMarginal(net, 1, map[int]uint8{2: 1})
	if post[1] <= prior[1] {
		t.Errorf("P(smoker|cancer) = %v should exceed prior %v", post[1], prior[1])
	}
}

func TestQueryErrors(t *testing.T) {
	net := bn.Cancer()
	if _, err := Query(net, nil, nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := Query(net, []int{9}, nil); err == nil {
		t.Error("out-of-range query accepted")
	}
	if _, err := Query(net, []int{0, 0}, nil); err == nil {
		t.Error("duplicate query accepted")
	}
	if _, err := Query(net, []int{0}, map[int]uint8{0: 1}); err == nil {
		t.Error("query==evidence accepted")
	}
	if _, err := Query(net, []int{0}, map[int]uint8{9: 1}); err == nil {
		t.Error("out-of-range evidence accepted")
	}
	if _, err := Query(net, []int{0}, map[int]uint8{1: 5}); err == nil {
		t.Error("out-of-range evidence state accepted")
	}
}

func TestQueryImpossibleEvidence(t *testing.T) {
	// Asia's "either" node is deterministic OR: either=0 with tub=1 is
	// impossible evidence.
	net := bn.Asia()
	if _, err := Query(net, []int{1}, map[int]uint8{2: 1, 5: 0}); err == nil {
		t.Error("zero-probability evidence accepted")
	}
}

func TestQueryMatchesEmpiricalMarginals(t *testing.T) {
	// Cross-check inference against the potential-table pipeline: sampled
	// marginals must converge to VE answers.
	net := bn.Cancer()
	d, err := net.Sample(300000, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := QueryMarginal(net, 4, nil) // P(dyspnea)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	for i := 0; i < d.NumSamples(); i++ {
		if d.Get(i, 4) == 1 {
			count++
		}
	}
	got := float64(count) / float64(d.NumSamples())
	if math.Abs(got-want[1]) > 0.005 {
		t.Errorf("empirical P(dysp=1) = %v vs VE %v", got, want[1])
	}
}
