package infer

import (
	"math"
	"testing"

	"waitfreebn/internal/bn"
)

func TestJunctionTreeStructure(t *testing.T) {
	jt, err := NewJunctionTree(bn.Asia())
	if err != nil {
		t.Fatal(err)
	}
	if jt.NumCliques() < 2 {
		t.Fatalf("asia junction tree has %d cliques", jt.NumCliques())
	}
	// Asia's treewidth is small; the min-fill tree should keep cliques ≤ 4.
	if jt.MaxCliqueSize() > 4 {
		t.Errorf("max clique size %d, expected <= 4 for asia", jt.MaxCliqueSize())
	}
	// Every CPT family must be covered by some clique (checked implicitly
	// by Calibrate succeeding).
	if err := jt.Calibrate(nil); err != nil {
		t.Fatal(err)
	}
}

func TestJunctionTreeRunningIntersection(t *testing.T) {
	// RIP: for every pair of cliques containing variable v, all cliques on
	// the tree path between them contain v.
	jt, err := NewJunctionTree(bn.Asia())
	if err != nil {
		t.Fatal(err)
	}
	k := jt.NumCliques()
	// BFS path between each clique pair.
	path := func(a, b int) []int {
		prev := make([]int, k)
		for i := range prev {
			prev[i] = -2
		}
		prev[a] = -1
		queue := []int{a}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if x == b {
				break
			}
			for _, y := range jt.adj[x] {
				if prev[y] == -2 {
					prev[y] = x
					queue = append(queue, y)
				}
			}
		}
		var p []int
		for x := b; x != -1; x = prev[x] {
			p = append(p, x)
		}
		return p
	}
	for v := 0; v < 8; v++ {
		var holders []int
		for ci, c := range jt.cliques {
			if containsVar(c.Vars, v) {
				holders = append(holders, ci)
			}
		}
		for i := 0; i < len(holders); i++ {
			for j := i + 1; j < len(holders); j++ {
				for _, mid := range path(holders[i], holders[j]) {
					if !containsVar(jt.cliques[mid].Vars, v) {
						t.Fatalf("RIP violated: variable %d missing from clique %v on path %d→%d",
							v, jt.cliques[mid].Vars, holders[i], holders[j])
					}
				}
			}
		}
	}
}

func TestJunctionTreeMatchesVEPriors(t *testing.T) {
	for _, net := range []*bn.Network{bn.Cancer(), bn.Asia(), bn.Chain(7, 3, 0.8), bn.NaiveBayes(6, 2, 0.9)} {
		jt, err := NewJunctionTree(net)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if err := jt.Calibrate(nil); err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		for v := 0; v < net.NumVars(); v++ {
			got, err := jt.Marginal(v)
			if err != nil {
				t.Fatalf("%s var %d: %v", net.Name(), v, err)
			}
			want, err := QueryMarginal(net, v, nil)
			if err != nil {
				t.Fatal(err)
			}
			for s := range want {
				if math.Abs(got[s]-want[s]) > 1e-9 {
					t.Errorf("%s: P(x%d=%d) jtree %v vs VE %v", net.Name(), v, s, got[s], want[s])
				}
			}
		}
	}
}

func TestJunctionTreeMatchesVEWithEvidence(t *testing.T) {
	net := bn.Asia()
	jt, err := NewJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []map[int]uint8{
		{6: 1},
		{7: 1, 1: 0},
		{0: 1, 6: 0, 4: 1},
	} {
		if err := jt.Calibrate(ev); err != nil {
			t.Fatalf("ev %v: %v", ev, err)
		}
		for v := 0; v < net.NumVars(); v++ {
			if _, isEv := ev[v]; isEv {
				continue
			}
			got, err := jt.Marginal(v)
			if err != nil {
				t.Fatalf("ev %v var %d: %v", ev, v, err)
			}
			want, err := QueryMarginal(net, v, ev)
			if err != nil {
				t.Fatal(err)
			}
			for s := range want {
				if math.Abs(got[s]-want[s]) > 1e-9 {
					t.Errorf("ev %v: P(x%d=%d|e) jtree %v vs VE %v", ev, v, s, got[s], want[s])
				}
			}
		}
	}
}

func TestJunctionTreeRecalibration(t *testing.T) {
	// Calibrate twice with different evidence; the second result must not
	// leak state from the first.
	net := bn.Cancer()
	jt, err := NewJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := jt.Calibrate(map[int]uint8{2: 1}); err != nil {
		t.Fatal(err)
	}
	if err := jt.Calibrate(nil); err != nil {
		t.Fatal(err)
	}
	got, err := jt.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := QueryMarginal(net, 1, nil)
	if math.Abs(got[1]-want[1]) > 1e-9 {
		t.Errorf("recalibration leaked: %v vs %v", got[1], want[1])
	}
}

func TestJunctionTreeErrors(t *testing.T) {
	net := bn.Cancer()
	jt, err := NewJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jt.Marginal(0); err == nil {
		t.Error("Marginal before Calibrate accepted")
	}
	if err := jt.Calibrate(map[int]uint8{9: 0}); err == nil {
		t.Error("out-of-range evidence accepted")
	}
	if err := jt.Calibrate(map[int]uint8{0: 9}); err == nil {
		t.Error("out-of-range state accepted")
	}
	// Impossible evidence in Asia.
	ajt, _ := NewJunctionTree(bn.Asia())
	if err := ajt.Calibrate(map[int]uint8{2: 1, 5: 0}); err == nil {
		t.Error("zero-probability evidence accepted")
	}
	// Unparameterized network.
	if _, err := NewJunctionTree(bn.NewNetwork("x", []int{2})); err == nil {
		t.Error("network without CPTs accepted")
	}
	jt2, _ := NewJunctionTree(net)
	jt2.Calibrate(nil)
	if _, err := jt2.Marginal(99); err == nil {
		t.Error("out-of-range marginal accepted")
	}
}

func TestJunctionTreeSingleCliqueNetwork(t *testing.T) {
	// A fully connected tiny model collapses to one clique.
	net := bn.Chain(2, 2, 0.9)
	jt, err := NewJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if jt.NumCliques() != 1 {
		t.Fatalf("2-chain should be one clique, got %d", jt.NumCliques())
	}
	if err := jt.Calibrate(nil); err != nil {
		t.Fatal(err)
	}
	got, err := jt.Marginal(1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := QueryMarginal(net, 1, nil)
	if math.Abs(got[0]-want[0]) > 1e-12 {
		t.Errorf("single-clique marginal %v vs %v", got, want)
	}
}

func TestJunctionTreeRandomNetworksMatchVE(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		net := bn.RandomDAG(9, 2, 0.3, 3, 1.0, seed)
		jt, err := NewJunctionTree(net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := jt.Calibrate(map[int]uint8{0: 1}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v := 1; v < 9; v++ {
			got, err := jt.Marginal(v)
			if err != nil {
				t.Fatalf("seed %d var %d: %v", seed, v, err)
			}
			want, err := QueryMarginal(net, v, map[int]uint8{0: 1})
			if err != nil {
				t.Fatal(err)
			}
			for s := range want {
				if math.Abs(got[s]-want[s]) > 1e-9 {
					t.Errorf("seed %d: P(x%d=%d|x0=1) jtree %v vs VE %v", seed, v, s, got[s], want[s])
				}
			}
		}
	}
}

func TestAllMarginalsMatchesPerQuery(t *testing.T) {
	net := bn.Asia()
	jt, err := NewJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	ev := map[int]uint8{6: 1}
	all, err := jt.AllMarginals(ev)
	if err != nil {
		t.Fatal(err)
	}
	if all[6] != nil {
		t.Error("evidence variable should have nil marginal")
	}
	for v := 0; v < net.NumVars(); v++ {
		if v == 6 {
			continue
		}
		want, err := QueryMarginal(net, v, ev)
		if err != nil {
			t.Fatal(err)
		}
		for s := range want {
			if math.Abs(all[v][s]-want[s]) > 1e-9 {
				t.Errorf("var %d state %d: %v vs %v", v, s, all[v][s], want[s])
			}
		}
	}
}

func TestJunctionTreeGridMatchesVE(t *testing.T) {
	// 3×3 grid: treewidth 3 — a real triangulation exercise, unlike the
	// tree-like catalogue networks.
	net := bn.Grid(3, 3, 2, 0.7)
	jt, err := NewJunctionTree(net)
	if err != nil {
		t.Fatal(err)
	}
	if jt.MaxCliqueSize() < 3 {
		t.Errorf("grid max clique %d, expected >= 3", jt.MaxCliqueSize())
	}
	ev := map[int]uint8{0: 1, 8: 0}
	if err := jt.Calibrate(ev); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 8; v++ {
		got, err := jt.Marginal(v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := QueryMarginal(net, v, ev)
		if err != nil {
			t.Fatal(err)
		}
		for s := range want {
			if math.Abs(got[s]-want[s]) > 1e-9 {
				t.Errorf("grid P(x%d=%d|e): jtree %v vs VE %v", v, s, got[s], want[s])
			}
		}
	}
}
