package infer

import (
	"fmt"
	"sort"

	"waitfreebn/internal/bn"
)

// FromCPT converts variable v's conditional probability table into a
// factor over {v} ∪ parents(v).
func FromCPT(net *bn.Network, v int) *Factor {
	dag := net.DAG()
	scope := append(append([]int(nil), dag.Parents(v)...), v)
	sort.Ints(scope)
	card := make([]int, len(scope))
	for i, sv := range scope {
		card[i] = net.Cardinality(sv)
	}
	f := NewFactor(scope, card)

	// Enumerate all joint assignments of the scope and read the CPT.
	sample := make([]uint8, net.NumVars())
	assign := make([]int, len(scope))
	var walk func(i int)
	walk = func(i int) {
		if i == len(scope) {
			p := net.CondProb(v, sample[v], sample)
			f.Set(p, assign...)
			return
		}
		for s := 0; s < card[i]; s++ {
			assign[i] = s
			sample[scope[i]] = uint8(s)
			walk(i + 1)
		}
	}
	walk(0)
	return f
}

// Query computes the posterior joint distribution P(query | evidence) by
// variable elimination with a min-fill-in-spirit greedy order (smallest
// intermediate factor first). It returns a normalized factor over the
// query variables in increasing order.
func Query(net *bn.Network, query []int, evidence map[int]uint8) (*Factor, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	nv := net.NumVars()
	if len(query) == 0 {
		return nil, fmt.Errorf("infer: empty query")
	}
	inQuery := make([]bool, nv)
	for _, q := range query {
		if q < 0 || q >= nv {
			return nil, fmt.Errorf("infer: query variable %d outside [0,%d)", q, nv)
		}
		if inQuery[q] {
			return nil, fmt.Errorf("infer: duplicate query variable %d", q)
		}
		if _, isEv := evidence[q]; isEv {
			return nil, fmt.Errorf("infer: variable %d is both query and evidence", q)
		}
		inQuery[q] = true
	}
	for v, s := range evidence {
		if v < 0 || v >= nv {
			return nil, fmt.Errorf("infer: evidence variable %d outside [0,%d)", v, nv)
		}
		if int(s) >= net.Cardinality(v) {
			return nil, fmt.Errorf("infer: evidence state %d out of range for variable %d", s, v)
		}
	}

	// Build the factor pool: one CPT factor per variable, with evidence
	// clamped immediately.
	var pool []*Factor
	for v := 0; v < nv; v++ {
		f := FromCPT(net, v)
		for ev, s := range evidence {
			if containsVar(f.vars, ev) {
				f = f.Restrict(ev, int(s))
			}
		}
		if len(f.vars) > 0 || f.Size() > 0 {
			pool = append(pool, f)
		}
	}

	// Eliminate every non-query, non-evidence variable, greedily choosing
	// the variable whose elimination produces the smallest factor.
	remaining := map[int]bool{}
	for v := 0; v < nv; v++ {
		if _, isEv := evidence[v]; !isEv && !inQuery[v] {
			remaining[v] = true
		}
	}
	for len(remaining) > 0 {
		best, bestCost := -1, 0
		for v := range remaining {
			cost := eliminationCost(pool, v, net)
			if best < 0 || cost < bestCost || (cost == bestCost && v < best) {
				best, bestCost = v, cost
			}
		}
		pool = eliminate(pool, best)
		delete(remaining, best)
	}

	// Multiply what is left and normalize.
	result := scalarFactor(1)
	for _, f := range pool {
		result = result.Multiply(f)
	}
	if result.Normalize() == 0 {
		return nil, fmt.Errorf("infer: evidence has probability zero")
	}
	// The result's variables are exactly the query variables (sorted).
	if len(result.vars) != countTrue(inQuery) {
		return nil, fmt.Errorf("infer: internal error: result scope %v does not match query", result.vars)
	}
	return result, nil
}

// QueryMarginal is Query for a single variable, returning its posterior
// distribution as a plain slice.
func QueryMarginal(net *bn.Network, v int, evidence map[int]uint8) ([]float64, error) {
	f, err := Query(net, []int{v}, evidence)
	if err != nil {
		return nil, err
	}
	out := make([]float64, net.Cardinality(v))
	for s := range out {
		out[s] = f.At(s)
	}
	return out, nil
}

// eliminate multiplies all pool factors mentioning v, sums v out, and
// returns the new pool.
func eliminate(pool []*Factor, v int) []*Factor {
	var keep []*Factor
	var prod *Factor
	for _, f := range pool {
		if containsVar(f.vars, v) {
			if prod == nil {
				prod = f
			} else {
				prod = prod.Multiply(f)
			}
		} else {
			keep = append(keep, f)
		}
	}
	if prod == nil {
		return pool // variable appears nowhere (already restricted away)
	}
	return append(keep, prod.SumOut(v))
}

// eliminationCost estimates the size of the factor produced by
// eliminating v: the product of cardinalities of the union of scopes of
// factors mentioning v (minus v itself).
func eliminationCost(pool []*Factor, v int, net *bn.Network) int {
	scope := map[int]bool{}
	found := false
	for _, f := range pool {
		if containsVar(f.vars, v) {
			found = true
			for _, fv := range f.vars {
				scope[fv] = true
			}
		}
	}
	if !found {
		return 0
	}
	cost := 1
	for sv := range scope {
		if sv != v {
			cost *= net.Cardinality(sv)
		}
	}
	return cost
}

func scalarFactor(v float64) *Factor {
	f := &Factor{values: []float64{v}}
	return f
}

func containsVar(vars []int, v int) bool {
	i := sort.SearchInts(vars, v)
	return i < len(vars) && vars[i] == v
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
