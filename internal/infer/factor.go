// Package infer implements exact inference on discrete Bayesian networks
// by variable elimination over dense factors.
//
// Inference is the complementary problem the paper situates its work
// against (Section III cites the junction-tree decompositions of Xia &
// Prasanna); here it completes the learned-model pipeline: structures
// learned by internal/structure and parameterized by bn.FitCPTs can be
// queried for posterior marginals, and inference answers double as an
// independent oracle for the empirical marginals the potential table
// produces.
package infer

import (
	"fmt"
	"sort"
)

// Factor is a non-negative function over the joint states of an ordered
// set of variables, stored densely in row-major order (the last listed
// variable varies fastest). CPTs, marginals and intermediate products of
// variable elimination are all Factors.
type Factor struct {
	vars   []int     // variable ids, strictly increasing
	card   []int     // cardinalities, parallel to vars
	values []float64 // len = Π card
}

// NewFactor creates a factor over the given variables (which must be
// strictly increasing) with all values zero.
func NewFactor(vars []int, card []int) *Factor {
	if len(vars) != len(card) {
		panic(fmt.Sprintf("infer: %d vars with %d cardinalities", len(vars), len(card)))
	}
	size := 1
	for i, v := range vars {
		if i > 0 && vars[i-1] >= v {
			panic(fmt.Sprintf("infer: vars not strictly increasing: %v", vars))
		}
		if card[i] < 1 {
			panic(fmt.Sprintf("infer: cardinality %d for variable %d", card[i], v))
		}
		size *= card[i]
	}
	return &Factor{
		vars:   append([]int(nil), vars...),
		card:   append([]int(nil), card...),
		values: make([]float64, size),
	}
}

// Vars returns the factor's variables (alias; do not modify).
func (f *Factor) Vars() []int { return f.vars }

// Card returns the factor's cardinalities (alias; do not modify).
func (f *Factor) Card() []int { return f.card }

// Size returns the number of cells.
func (f *Factor) Size() int { return len(f.values) }

// index converts an assignment (one state per factor variable, in factor
// order) to a flat cell index.
func (f *Factor) index(assign []int) int {
	idx := 0
	for i, s := range assign {
		if s < 0 || s >= f.card[i] {
			panic(fmt.Sprintf("infer: state %d out of range for variable %d", s, f.vars[i]))
		}
		idx = idx*f.card[i] + s
	}
	return idx
}

// At returns the value for the given assignment.
func (f *Factor) At(assign ...int) float64 {
	if len(assign) != len(f.vars) {
		panic(fmt.Sprintf("infer: %d states for a %d-variable factor", len(assign), len(f.vars)))
	}
	return f.values[f.index(assign)]
}

// Set assigns the value for the given assignment.
func (f *Factor) Set(value float64, assign ...int) {
	if len(assign) != len(f.vars) {
		panic(fmt.Sprintf("infer: %d states for a %d-variable factor", len(assign), len(f.vars)))
	}
	f.values[f.index(assign)] = value
}

// assignment decodes flat cell idx into dst (factor order).
func (f *Factor) assignment(idx int, dst []int) []int {
	dst = dst[:0]
	for range f.vars {
		dst = append(dst, 0)
	}
	for i := len(f.vars) - 1; i >= 0; i-- {
		dst[i] = idx % f.card[i]
		idx /= f.card[i]
	}
	return dst
}

// Multiply returns the factor product f·g over the union of their
// variables.
func (f *Factor) Multiply(g *Factor) *Factor {
	uVars, uCard := unionVars(f, g)
	out := NewFactor(uVars, uCard)
	fPos := positions(uVars, f.vars)
	gPos := positions(uVars, g.vars)
	assign := make([]int, len(uVars))
	fAssign := make([]int, len(f.vars))
	gAssign := make([]int, len(g.vars))
	for idx := range out.values {
		assign = out.assignment(idx, assign)
		for i, p := range fPos {
			fAssign[i] = assign[p]
		}
		for i, p := range gPos {
			gAssign[i] = assign[p]
		}
		out.values[idx] = f.values[f.index(fAssign)] * g.values[g.index(gAssign)]
	}
	return out
}

// SumOut returns the factor with variable v summed out. Summing out the
// last variable yields a scalar factor (no variables, one value).
func (f *Factor) SumOut(v int) *Factor {
	pos := -1
	for i, fv := range f.vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("infer: variable %d not in factor %v", v, f.vars))
	}
	outVars := make([]int, 0, len(f.vars)-1)
	outCard := make([]int, 0, len(f.vars)-1)
	for i := range f.vars {
		if i != pos {
			outVars = append(outVars, f.vars[i])
			outCard = append(outCard, f.card[i])
		}
	}
	out := NewFactor(outVars, outCard)
	assign := make([]int, len(f.vars))
	reduced := make([]int, len(outVars))
	for idx, val := range f.values {
		if val == 0 {
			continue
		}
		assign = f.assignment(idx, assign)
		k := 0
		for i, s := range assign {
			if i != pos {
				reduced[k] = s
				k++
			}
		}
		out.values[out.index(reduced)] += val
	}
	return out
}

// Restrict returns the factor with variable v clamped to state s: v is
// removed and only cells consistent with v=s survive.
func (f *Factor) Restrict(v int, s int) *Factor {
	pos := -1
	for i, fv := range f.vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("infer: variable %d not in factor %v", v, f.vars))
	}
	if s < 0 || s >= f.card[pos] {
		panic(fmt.Sprintf("infer: state %d out of range for variable %d", s, v))
	}
	outVars := make([]int, 0, len(f.vars)-1)
	outCard := make([]int, 0, len(f.vars)-1)
	for i := range f.vars {
		if i != pos {
			outVars = append(outVars, f.vars[i])
			outCard = append(outCard, f.card[i])
		}
	}
	out := NewFactor(outVars, outCard)
	assign := make([]int, len(f.vars))
	reduced := make([]int, len(outVars))
	for idx, val := range f.values {
		assign = f.assignment(idx, assign)
		if assign[pos] != s {
			continue
		}
		k := 0
		for i, st := range assign {
			if i != pos {
				reduced[k] = st
				k++
			}
		}
		out.values[out.index(reduced)] = val
	}
	return out
}

// Normalize scales the factor so its values sum to 1, returning the
// normalizer (the pre-normalization sum). A zero factor is left unchanged
// and returns 0.
func (f *Factor) Normalize() float64 {
	var total float64
	for _, v := range f.values {
		total += v
	}
	if total == 0 {
		return 0
	}
	for i := range f.values {
		f.values[i] /= total
	}
	return total
}

// Clone returns a deep copy.
func (f *Factor) Clone() *Factor {
	return &Factor{
		vars:   append([]int(nil), f.vars...),
		card:   append([]int(nil), f.card...),
		values: append([]float64(nil), f.values...),
	}
}

func unionVars(f, g *Factor) ([]int, []int) {
	cards := map[int]int{}
	for i, v := range f.vars {
		cards[v] = f.card[i]
	}
	for i, v := range g.vars {
		if c, ok := cards[v]; ok && c != g.card[i] {
			panic(fmt.Sprintf("infer: variable %d has cardinality %d in one factor, %d in another", v, c, g.card[i]))
		}
		cards[v] = g.card[i]
	}
	vars := make([]int, 0, len(cards))
	for v := range cards {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	card := make([]int, len(vars))
	for i, v := range vars {
		card[i] = cards[v]
	}
	return vars, card
}

// positions maps each of sub's variables to its index within super.
func positions(super, sub []int) []int {
	out := make([]int, len(sub))
	for i, v := range sub {
		j := sort.SearchInts(super, v)
		if j == len(super) || super[j] != v {
			panic(fmt.Sprintf("infer: variable %d missing from union", v))
		}
		out[i] = j
	}
	return out
}
