package infer

import (
	"fmt"

	"waitfreebn/internal/bn"
)

// MaxOut returns the factor with variable v eliminated by maximization
// instead of summation — the max-product counterpart of SumOut.
func (f *Factor) MaxOut(v int) *Factor {
	pos := -1
	for i, fv := range f.vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("infer: variable %d not in factor %v", v, f.vars))
	}
	outVars := make([]int, 0, len(f.vars)-1)
	outCard := make([]int, 0, len(f.vars)-1)
	for i := range f.vars {
		if i != pos {
			outVars = append(outVars, f.vars[i])
			outCard = append(outCard, f.card[i])
		}
	}
	out := NewFactor(outVars, outCard)
	for i := range out.values {
		out.values[i] = -1 // below any probability
	}
	assign := make([]int, len(f.vars))
	reduced := make([]int, len(outVars))
	for idx, val := range f.values {
		assign = f.assignment(idx, assign)
		k := 0
		for i, s := range assign {
			if i != pos {
				reduced[k] = s
				k++
			}
		}
		if o := out.index(reduced); val > out.values[o] {
			out.values[o] = val
		}
	}
	return out
}

// MPE computes a most probable explanation: an assignment to every
// non-evidence variable maximizing the joint probability consistent with
// the evidence. It returns the full assignment (evidence included) and its
// joint probability. Ties are broken toward lower states deterministically.
func MPE(net *bn.Network, evidence map[int]uint8) ([]uint8, float64, error) {
	if err := net.Validate(); err != nil {
		return nil, 0, err
	}
	nv := net.NumVars()
	for v, s := range evidence {
		if v < 0 || v >= nv {
			return nil, 0, fmt.Errorf("infer: evidence variable %d outside [0,%d)", v, nv)
		}
		if int(s) >= net.Cardinality(v) {
			return nil, 0, fmt.Errorf("infer: evidence state %d out of range for variable %d", s, v)
		}
	}

	var pool []*Factor
	for v := 0; v < nv; v++ {
		f := FromCPT(net, v)
		for ev, s := range evidence {
			if containsVar(f.vars, ev) {
				f = f.Restrict(ev, int(s))
			}
		}
		pool = append(pool, f)
	}

	// Eliminate non-evidence variables by max-product, remembering the
	// product factor at each elimination for the traceback.
	type record struct {
		v    int
		prod *Factor
	}
	var trace []record
	remaining := map[int]bool{}
	for v := 0; v < nv; v++ {
		if _, isEv := evidence[v]; !isEv {
			remaining[v] = true
		}
	}
	for len(remaining) > 0 {
		best, bestCost := -1, 0
		for v := range remaining {
			cost := eliminationCost(pool, v, net)
			if best < 0 || cost < bestCost || (cost == bestCost && v < best) {
				best, bestCost = v, cost
			}
		}
		var keep []*Factor
		var prod *Factor
		for _, f := range pool {
			if containsVar(f.vars, best) {
				if prod == nil {
					prod = f
				} else {
					prod = prod.Multiply(f)
				}
			} else {
				keep = append(keep, f)
			}
		}
		if prod == nil {
			prod = scalarFactor(1) // variable restricted away entirely
			prod.vars = []int{best}
			prod.card = []int{net.Cardinality(best)}
			prod.values = make([]float64, net.Cardinality(best))
			for i := range prod.values {
				prod.values[i] = 1
			}
		}
		trace = append(trace, record{v: best, prod: prod})
		pool = append(keep, prod.MaxOut(best))
		delete(remaining, best)
	}

	// The left-over factors are scalars; their product is the MPE
	// probability (conditional factors already absorbed evidence).
	prob := 1.0
	for _, f := range pool {
		if f.Size() != 1 {
			return nil, 0, fmt.Errorf("infer: internal error: non-scalar residual factor over %v", f.vars)
		}
		prob *= f.values[0]
	}
	if prob == 0 {
		return nil, 0, fmt.Errorf("infer: evidence has probability zero")
	}

	// Traceback in reverse elimination order: each recorded product factor
	// mentions only its variable and variables eliminated later (or
	// evidence), so the argmax is well defined at pop time.
	assignment := make([]uint8, nv)
	fixed := make([]bool, nv)
	for v, s := range evidence {
		assignment[v] = s
		fixed[v] = true
	}
	for i := len(trace) - 1; i >= 0; i-- {
		rec := trace[i]
		f := rec.prod
		// Restrict f to the already-fixed variables.
		for _, fv := range f.vars {
			if fv != rec.v && fixed[fv] {
				f = f.Restrict(fv, int(assignment[fv]))
			}
		}
		if len(f.vars) != 1 || f.vars[0] != rec.v {
			return nil, 0, fmt.Errorf("infer: internal error: traceback factor over %v for variable %d", f.vars, rec.v)
		}
		bestS, bestV := 0, f.values[0]
		for s := 1; s < len(f.values); s++ {
			if f.values[s] > bestV {
				bestS, bestV = s, f.values[s]
			}
		}
		assignment[rec.v] = uint8(bestS)
		fixed[rec.v] = true
	}
	// Report the joint probability of the chosen assignment (not the
	// conditional), which callers can verify against JointProb directly.
	return assignment, net.JointProb(assignment), nil
}
