package infer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFactor draws a factor over a random subset of variable ids
// {0..5} with random cardinalities (consistent via the shared card table)
// and uniform random non-negative values.
func randomFactor(r *rand.Rand, card []int) *Factor {
	n := len(card)
	var vars []int
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			vars = append(vars, v)
		}
	}
	if len(vars) == 0 {
		vars = []int{r.Intn(n)}
	}
	fc := make([]int, len(vars))
	for i, v := range vars {
		fc[i] = card[v]
	}
	f := NewFactor(vars, fc)
	for i := range f.values {
		f.values[i] = r.Float64()
	}
	return f
}

func factorsNear(a, b *Factor, tol float64) bool {
	if len(a.vars) != len(b.vars) || len(a.values) != len(b.values) {
		return false
	}
	for i := range a.vars {
		if a.vars[i] != b.vars[i] {
			return false
		}
	}
	for i := range a.values {
		if math.Abs(a.values[i]-b.values[i]) > tol {
			return false
		}
	}
	return true
}

func sharedCard(r *rand.Rand) []int {
	card := make([]int, 6)
	for i := range card {
		card[i] = 2 + r.Intn(3)
	}
	return card
}

func TestQuickMultiplyCommutative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(70))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		card := sharedCard(r)
		f, g := randomFactor(r, card), randomFactor(r, card)
		return factorsNear(f.Multiply(g), g.Multiply(f), 1e-12)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMultiplyAssociative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		card := sharedCard(r)
		f, g, h := randomFactor(r, card), randomFactor(r, card), randomFactor(r, card)
		lhs := f.Multiply(g).Multiply(h)
		rhs := f.Multiply(g.Multiply(h))
		return factorsNear(lhs, rhs, 1e-9)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSumOutOrderIrrelevant(t *testing.T) {
	// Summing out two variables in either order gives the same factor.
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(72))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		card := sharedCard(r)
		f := randomFactor(r, card)
		if len(f.vars) < 2 {
			return true
		}
		a, b := f.vars[0], f.vars[1]
		lhs := f.SumOut(a).SumOut(b)
		rhs := f.SumOut(b).SumOut(a)
		return factorsNear(lhs, rhs, 1e-9)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSumOutPreservesTotal(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		card := sharedCard(r)
		f := randomFactor(r, card)
		sumAll := func(x *Factor) float64 {
			t := 0.0
			for _, v := range x.values {
				t += v
			}
			return t
		}
		before := sumAll(f)
		after := sumAll(f.SumOut(f.vars[r.Intn(len(f.vars))]))
		return math.Abs(before-after) < 1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRestrictThenSumEqualsSlice(t *testing.T) {
	// Summing the restricted factor over everything equals the slice total
	// of the original where v = s.
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(74))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		card := sharedCard(r)
		f := randomFactor(r, card)
		pos := r.Intn(len(f.vars))
		v := f.vars[pos]
		s := r.Intn(f.card[pos])
		restricted := f.Restrict(v, s)
		var want float64
		assign := make([]int, len(f.vars))
		for idx, val := range f.values {
			assign = f.assignment(idx, assign)
			if assign[pos] == s {
				want += val
			}
		}
		var got float64
		for _, val := range restricted.values {
			got += val
		}
		return math.Abs(got-want) < 1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxOutBoundsSumOut(t *testing.T) {
	// max ≤ sum cell-wise for non-negative factors.
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(75))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		card := sharedCard(r)
		f := randomFactor(r, card)
		v := f.vars[r.Intn(len(f.vars))]
		mx := f.MaxOut(v)
		sm := f.SumOut(v)
		for i := range mx.values {
			if mx.values[i] > sm.values[i]+1e-12 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
