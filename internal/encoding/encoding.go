// Package encoding implements the state-string ↔ key codec at the heart of
// the potential-table representation (Eqs. 3 and 4 of the paper).
//
// A training record over n discrete random variables is a "state string"
// (s_1, ..., s_n) with s_j ∈ {0, ..., r_j-1}. Rather than storing the string
// itself with each table entry, the paper encodes it as a single integer key
// using a mixed-radix positional system:
//
//	key = Σ_j s_j · Π_{k<j} r_k        (Eq. 3; for uniform r: Σ_j s_j·r^(j-1))
//
// and recovers individual states with
//
//	s_j = (key / Π_{k<j} r_k) mod r_j   (Eq. 4)
//
// The codec precomputes the strides Π_{k<j} r_k so both directions are a
// handful of integer operations per variable, and decoding a *subset* of
// variables (needed by marginalization) never touches the other positions.
//
// Keys are uint64. A Codec can only be constructed when Π r_k fits in 63
// bits; this is exactly the sparse regime the paper targets (e.g. n=50
// binary variables → 2^50 possible keys, of which at most m are observed).
package encoding

import (
	"fmt"
	"math/bits"
)

// MaxKeyBits is the number of usable bits in a key. Products of
// cardinalities must fit strictly within this budget.
const MaxKeyBits = 63

// Codec converts between state strings and integer keys for a fixed list of
// per-variable cardinalities. It is immutable after construction and safe
// for concurrent use by multiple goroutines.
type Codec struct {
	card   []uint64 // cardinality r_j of each variable
	stride []uint64 // stride[j] = Π_{k<j} card[k]; stride[0] = 1
	dig    []digit  // reciprocal decoder for each position (see recip.go)
	space  uint64   // Π_j card[j] = total number of distinct keys
}

// NewCodec builds a codec for variables with the given cardinalities.
// Every cardinality must be at least 1, and their product must fit in 63
// bits; otherwise an error describing the offending input is returned.
func NewCodec(cardinalities []int) (*Codec, error) {
	if len(cardinalities) == 0 {
		return nil, fmt.Errorf("encoding: no variables")
	}
	c := &Codec{
		card:   make([]uint64, len(cardinalities)),
		stride: make([]uint64, len(cardinalities)),
	}
	space := uint64(1)
	for j, r := range cardinalities {
		if r < 1 {
			return nil, fmt.Errorf("encoding: variable %d has cardinality %d (must be >= 1)", j, r)
		}
		c.card[j] = uint64(r)
		c.stride[j] = space
		hi, lo := bits.Mul64(space, uint64(r))
		if hi != 0 || lo >= 1<<MaxKeyBits {
			return nil, fmt.Errorf("encoding: key space overflows %d bits at variable %d (cardinality %d)", MaxKeyBits, j, r)
		}
		space = lo
	}
	c.space = space
	c.dig = make([]digit, len(c.card))
	for j := range c.dig {
		c.dig[j] = newDigit(c.stride[j], c.card[j])
	}
	return c, nil
}

// NewUniformCodec builds a codec for n variables that all take r states,
// the simplified setting used throughout the paper's exposition.
func NewUniformCodec(n, r int) (*Codec, error) {
	if n <= 0 {
		return nil, fmt.Errorf("encoding: n must be positive, got %d", n)
	}
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	return NewCodec(card)
}

// NumVars returns the number of variables n.
func (c *Codec) NumVars() int { return len(c.card) }

// Cardinality returns r_j, the number of states of variable j.
func (c *Codec) Cardinality(j int) int { return int(c.card[j]) }

// Cardinalities returns a copy of all per-variable cardinalities.
func (c *Codec) Cardinalities() []int {
	out := make([]int, len(c.card))
	for i, r := range c.card {
		out[i] = int(r)
	}
	return out
}

// KeySpace returns Π_j r_j, the number of distinct keys (one more than the
// largest encodable key).
func (c *Codec) KeySpace() uint64 { return c.space }

// Stride returns Π_{k<j} r_k, the positional weight of variable j in a key.
func (c *Codec) Stride(j int) uint64 { return c.stride[j] }

// Encode maps a state string to its key (Eq. 3). The states slice must have
// exactly NumVars entries, each within the variable's cardinality; violations
// panic, since they indicate corrupt training data that must not be counted.
//
// Encode is the single-row convenience wrapper; the construction hot path
// encodes whole blocks with EncodeRows / EncodeFlat, which hoist the length
// check and the stride loads out of the per-row loop.
func (c *Codec) Encode(states []uint8) uint64 {
	if len(states) != len(c.card) {
		panic(fmt.Sprintf("encoding: Encode got %d states, codec has %d variables", len(states), len(c.card)))
	}
	var key uint64
	for j, s := range states {
		if uint64(s) >= c.card[j] {
			panic(fmt.Sprintf("encoding: state %d of variable %d out of range [0,%d)", s, j, c.card[j]))
		}
		key += uint64(s) * c.stride[j]
	}
	return key
}

// badState reports an out-of-range observation. Kept out of line so the
// block-encode inner loops compile to a compare and a predictable branch.
func (c *Codec) badState(j int, s uint8) {
	panic(fmt.Sprintf("encoding: state %d of variable %d out of range [0,%d)", s, j, c.card[j]))
}

// EncodeRows encodes a block of state strings into dst[:len(rows)] and
// returns that prefix (Eq. 3 applied per row). dst must have length at least
// len(rows). The block is processed column-major: each pass holds one
// variable's stride and cardinality in registers and runs its multiply over
// the contiguous dst slab, and the per-row arity check happens once up
// front instead of once per Encode call.
func (c *Codec) EncodeRows(rows [][]uint8, dst []uint64) []uint64 {
	n := len(c.card)
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("encoding: EncodeRows row %d has %d states, codec has %d variables", i, len(row), n))
		}
	}
	dst = dst[:len(rows)]
	if len(rows) == 0 {
		return dst
	}
	// Column 0 has stride 1 and initializes dst, so no zero-fill pass.
	card := c.card[0]
	for i, row := range rows {
		s := row[0]
		if uint64(s) >= card {
			c.badState(0, s)
		}
		dst[i] = uint64(s)
	}
	for j := 1; j < n; j++ {
		stride := c.stride[j]
		card = c.card[j]
		for i, row := range rows {
			s := row[j]
			if uint64(s) >= card {
				c.badState(j, s)
			}
			dst[i] += uint64(s) * stride
		}
	}
	return dst
}

// EncodeFlat encodes a block of rows stored contiguously row-major (the
// dataset's native cell layout: len(cells) must be a multiple of NumVars)
// into dst, one key per row, returning dst[:rows]. dst must have length at
// least len(cells)/NumVars. Like EncodeRows it runs column-major so each
// stride multiply streams over the contiguous dst slab with the stride and
// cardinality hoisted into registers; the cells column walks a fixed step n.
func (c *Codec) EncodeFlat(cells []uint8, dst []uint64) []uint64 {
	n := len(c.card)
	if len(cells)%n != 0 {
		panic(fmt.Sprintf("encoding: EncodeFlat got %d cells, not a multiple of %d variables", len(cells), n))
	}
	m := len(cells) / n
	dst = dst[:m]
	if m == 0 {
		return dst
	}
	card := c.card[0]
	idx := 0
	for i := range dst {
		s := cells[idx]
		if uint64(s) >= card {
			c.badState(0, s)
		}
		dst[i] = uint64(s)
		idx += n
	}
	for j := 1; j < n; j++ {
		stride := c.stride[j]
		card = c.card[j]
		idx = j
		for i := range dst {
			s := cells[idx]
			if uint64(s) >= card {
				c.badState(j, s)
			}
			dst[i] += uint64(s) * stride
			idx += n
		}
	}
	return dst
}

// Decode recovers the full state string from a key (Eq. 4 applied to every
// position), appending into dst to avoid allocation in hot loops. It panics
// if key is outside the key space.
func (c *Codec) Decode(key uint64, dst []uint8) []uint8 {
	if key >= c.space {
		panic(fmt.Sprintf("encoding: key %d outside key space %d", key, c.space))
	}
	for j := range c.dig {
		dst = append(dst, uint8(c.dig[j].decode(key)))
	}
	return dst
}

// DecodeVar extracts the state of a single variable j from a key (Eq. 4).
// This is the operation marginalization performs per key: O(1), and it never
// reconstructs the rest of the state string.
func (c *Codec) DecodeVar(key uint64, j int) uint8 {
	return uint8(c.dig[j].decode(key))
}

// PairDecoder decodes the states of a fixed pair of variables from keys.
// All-pairs mutual information (Algorithm 4) calls this once per table
// entry per pair, so the strides and cardinalities are captured up front.
type PairDecoder struct {
	digI, digJ digit
	cardJ      uint64
}

// PairDecoder returns a decoder for the (i, j) variable pair.
func (c *Codec) PairDecoder(i, j int) PairDecoder {
	return PairDecoder{digI: c.dig[i], digJ: c.dig[j], cardJ: c.card[j]}
}

// Decode returns the states (s_i, s_j) encoded in key.
func (d PairDecoder) Decode(key uint64) (uint8, uint8) {
	return uint8(d.digI.decode(key)), uint8(d.digJ.decode(key))
}

// Cell returns the row-major index s_i·r_j + s_j of the key's states in an
// r_i×r_j contingency table, the layout used by marginal tables.
func (d PairDecoder) Cell(key uint64) int {
	return int(d.digI.decode(key)*d.cardJ + d.digJ.decode(key))
}

// SubsetDecoder decodes the states of an arbitrary fixed subset V of
// variables from keys and flattens them into a mixed-radix cell index over
// V's joint state space. Marginalization onto V (Algorithm 3) uses one of
// these per worker.
type SubsetDecoder struct {
	dig       []digit  // reciprocal decoders for the subset variables
	card      []uint64 // cardinalities of the subset variables
	outStride []uint64 // row-major strides within the marginal table
	cells     uint64   // Π card over the subset
}

// SubsetDecoder returns a decoder for the given variables, in the given
// order (the order fixes the marginal table's layout). It panics if vars is
// empty, contains duplicates, or references an unknown variable.
func (c *Codec) SubsetDecoder(vars []int) *SubsetDecoder {
	if len(vars) == 0 {
		panic("encoding: SubsetDecoder with empty variable set")
	}
	d := &SubsetDecoder{
		dig:       make([]digit, len(vars)),
		card:      make([]uint64, len(vars)),
		outStride: make([]uint64, len(vars)),
	}
	seen := make(map[int]bool, len(vars))
	for k, v := range vars {
		if v < 0 || v >= len(c.card) {
			panic(fmt.Sprintf("encoding: variable %d out of range [0,%d)", v, len(c.card)))
		}
		if seen[v] {
			panic(fmt.Sprintf("encoding: duplicate variable %d in subset", v))
		}
		seen[v] = true
		d.dig[k] = c.dig[v]
		d.card[k] = c.card[v]
	}
	// Row-major: the last listed variable varies fastest.
	cells := uint64(1)
	for k := len(vars) - 1; k >= 0; k-- {
		d.outStride[k] = cells
		cells *= d.card[k]
	}
	d.cells = cells
	return d
}

// Cells returns the number of cells in the marginal table over the subset.
func (d *SubsetDecoder) Cells() int { return int(d.cells) }

// Cell maps a full-table key to the flattened marginal-table cell index of
// the subset's states.
func (d *SubsetDecoder) Cell(key uint64) int {
	var idx uint64
	for k := range d.dig {
		idx += d.dig[k].decode(key) * d.outStride[k]
	}
	return int(idx)
}

// CellStates recovers the subset's state string from a flattened marginal
// cell index, appending into dst. It is the inverse of Cell restricted to
// the subset and is used when reporting marginal tables.
func (d *SubsetDecoder) CellStates(cell int, dst []uint8) []uint8 {
	if cell < 0 || uint64(cell) >= d.cells {
		panic(fmt.Sprintf("encoding: cell %d outside marginal space %d", cell, d.cells))
	}
	for k := range d.outStride {
		dst = append(dst, uint8(uint64(cell)/d.outStride[k]%d.card[k]))
	}
	return dst
}
