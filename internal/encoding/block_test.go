package encoding

import (
	"math/rand"
	"testing"
)

// randomRows draws m valid state strings for the codec's cardinalities.
func randomRows(r *rand.Rand, c *Codec, m int) [][]uint8 {
	rows := make([][]uint8, m)
	for i := range rows {
		row := make([]uint8, c.NumVars())
		for j := range row {
			row[j] = uint8(r.Intn(c.Cardinality(j)))
		}
		rows[i] = row
	}
	return rows
}

func flatten(rows [][]uint8) []uint8 {
	var cells []uint8
	for _, row := range rows {
		cells = append(cells, row...)
	}
	return cells
}

func TestEncodeRowsMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, card := range [][]int{{2}, {2, 3, 2}, {5, 1, 4, 2}, {2, 2, 2, 2, 2, 2, 2, 2}} {
		c := mustCodec(t, card)
		for _, m := range []int{0, 1, 2, 63, 64, 257} {
			rows := randomRows(r, c, m)
			dst := make([]uint64, m+3) // extra capacity must be ignored
			got := c.EncodeRows(rows, dst)
			if len(got) != m {
				t.Fatalf("card=%v m=%d: EncodeRows returned %d keys", card, m, len(got))
			}
			for i, row := range rows {
				if want := c.Encode(row); got[i] != want {
					t.Fatalf("card=%v m=%d row %d: EncodeRows = %d, Encode = %d", card, m, i, got[i], want)
				}
			}
		}
	}
}

func TestEncodeFlatMatchesEncode(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, card := range [][]int{{3}, {2, 3, 2}, {1, 1, 2}, {4, 4, 4, 4, 4}} {
		c := mustCodec(t, card)
		for _, m := range []int{0, 1, 2, 100, 1025} {
			rows := randomRows(r, c, m)
			got := c.EncodeFlat(flatten(rows), make([]uint64, m))
			if len(got) != m {
				t.Fatalf("card=%v m=%d: EncodeFlat returned %d keys", card, m, len(got))
			}
			for i, row := range rows {
				if want := c.Encode(row); got[i] != want {
					t.Fatalf("card=%v m=%d row %d: EncodeFlat = %d, Encode = %d", card, m, i, got[i], want)
				}
			}
		}
	}
}

func TestEncodeRowsPanics(t *testing.T) {
	c := mustCodec(t, []int{2, 3})
	cases := map[string][][]uint8{
		"short row":          {{1}},
		"long row":           {{1, 2, 0}},
		"state out of range": {{1, 3}},
		"late bad row":       {{1, 2}, {0, 0}, {2, 0}},
	}
	for name, rows := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: EncodeRows did not panic", name)
				}
			}()
			c.EncodeRows(rows, make([]uint64, len(rows)))
		}()
	}
}

func TestEncodeFlatPanics(t *testing.T) {
	c := mustCodec(t, []int{2, 3})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged cells: EncodeFlat did not panic")
			}
		}()
		c.EncodeFlat([]uint8{0, 1, 0}, make([]uint64, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad state: EncodeFlat did not panic")
			}
		}()
		c.EncodeFlat([]uint8{0, 1, 1, 3}, make([]uint64, 2))
	}()
}

func BenchmarkEncodeFlat30Vars(b *testing.B) {
	c, err := NewUniformCodec(30, 2)
	if err != nil {
		b.Fatal(err)
	}
	const m = 1024
	r := rand.New(rand.NewSource(3))
	cells := make([]uint8, m*30)
	for i := range cells {
		cells[i] = uint8(r.Intn(2))
	}
	dst := make([]uint64, m)
	b.SetBytes(int64(len(cells)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeFlat(cells, dst)
	}
}
