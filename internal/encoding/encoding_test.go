package encoding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCodec(t *testing.T, card []int) *Codec {
	t.Helper()
	c, err := NewCodec(card)
	if err != nil {
		t.Fatalf("NewCodec(%v): %v", card, err)
	}
	return c
}

func TestNewCodecErrors(t *testing.T) {
	cases := [][]int{
		{},                 // no variables
		{0},                // zero cardinality
		{2, -1},            // negative cardinality
		{1 << 32, 1 << 32}, // product overflows 63 bits
	}
	for _, card := range cases {
		if _, err := NewCodec(card); err == nil {
			t.Errorf("NewCodec(%v): expected error", card)
		}
	}
}

func TestNewCodec63BitBoundary(t *testing.T) {
	// 2^62 fits; 2^63 must not.
	ok := make([]int, 31)
	for i := range ok {
		ok[i] = 4 // 4^31 = 2^62
	}
	if _, err := NewCodec(ok); err != nil {
		t.Errorf("2^62 key space should be accepted: %v", err)
	}
	bad := append(append([]int{}, ok...), 2) // 2^63
	if _, err := NewCodec(bad); err == nil {
		t.Error("2^63 key space should be rejected")
	}
}

func TestNewUniformCodec(t *testing.T) {
	c, err := NewUniformCodec(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVars() != 30 {
		t.Errorf("NumVars = %d, want 30", c.NumVars())
	}
	if c.KeySpace() != 1<<30 {
		t.Errorf("KeySpace = %d, want 2^30", c.KeySpace())
	}
	for j := 0; j < 30; j++ {
		if c.Cardinality(j) != 2 {
			t.Errorf("Cardinality(%d) = %d, want 2", j, c.Cardinality(j))
		}
		if c.Stride(j) != 1<<uint(j) {
			t.Errorf("Stride(%d) = %d, want 2^%d", j, c.Stride(j), j)
		}
	}
	if _, err := NewUniformCodec(0, 2); err == nil {
		t.Error("NewUniformCodec(0, 2) should fail")
	}
}

func TestEncodeMatchesPaperFormula(t *testing.T) {
	// Eq. 3 with uniform r: key = Σ s_j · r^(j-1).
	c := mustCodec(t, []int{3, 3, 3, 3})
	states := []uint8{2, 0, 1, 2}
	want := uint64(2*1 + 0*3 + 1*9 + 2*27)
	if got := c.Encode(states); got != want {
		t.Errorf("Encode(%v) = %d, want %d", states, got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := mustCodec(t, []int{2, 3, 5, 7, 2})
	var buf []uint8
	for key := uint64(0); key < c.KeySpace(); key++ {
		buf = c.Decode(key, buf[:0])
		if got := c.Encode(buf); got != key {
			t.Fatalf("Encode(Decode(%d)) = %d", key, got)
		}
	}
}

func TestEncodeBijective(t *testing.T) {
	// Every distinct state string maps to a distinct key (1-to-1 mapping
	// claimed in Section IV-A).
	c := mustCodec(t, []int{2, 3, 4})
	seen := make(map[uint64][]uint8)
	var states []uint8
	for a := uint8(0); a < 2; a++ {
		for b := uint8(0); b < 3; b++ {
			for d := uint8(0); d < 4; d++ {
				states = append(states[:0], a, b, d)
				key := c.Encode(states)
				if prev, dup := seen[key]; dup {
					t.Fatalf("key %d produced by both %v and %v", key, prev, states)
				}
				seen[key] = append([]uint8{}, states...)
			}
		}
	}
	if len(seen) != int(c.KeySpace()) {
		t.Fatalf("saw %d keys, want %d", len(seen), c.KeySpace())
	}
}

func TestDecodeVarMatchesDecode(t *testing.T) {
	c := mustCodec(t, []int{4, 2, 3, 5})
	var buf []uint8
	for key := uint64(0); key < c.KeySpace(); key++ {
		buf = c.Decode(key, buf[:0])
		for j := 0; j < c.NumVars(); j++ {
			if got := c.DecodeVar(key, j); got != buf[j] {
				t.Fatalf("DecodeVar(%d, %d) = %d, Decode gave %d", key, j, got, buf[j])
			}
		}
	}
}

func TestEncodePanics(t *testing.T) {
	c := mustCodec(t, []int{2, 2})
	for name, states := range map[string][]uint8{
		"wrong length":       {1},
		"state out of range": {1, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Encode(%v) did not panic", name, states)
				}
			}()
			c.Encode(states)
		}()
	}
}

func TestDecodePanicsOutsideKeySpace(t *testing.T) {
	c := mustCodec(t, []int{2, 2})
	defer func() {
		if recover() == nil {
			t.Error("Decode(keySpace) did not panic")
		}
	}()
	c.Decode(c.KeySpace(), nil)
}

func TestPairDecoder(t *testing.T) {
	c := mustCodec(t, []int{2, 3, 4, 5})
	d := c.PairDecoder(1, 3)
	var buf []uint8
	for key := uint64(0); key < c.KeySpace(); key++ {
		buf = c.Decode(key, buf[:0])
		si, sj := d.Decode(key)
		if si != buf[1] || sj != buf[3] {
			t.Fatalf("PairDecoder.Decode(%d) = (%d,%d), want (%d,%d)", key, si, sj, buf[1], buf[3])
		}
		if cell := d.Cell(key); cell != int(si)*5+int(sj) {
			t.Fatalf("PairDecoder.Cell(%d) = %d, want %d", key, cell, int(si)*5+int(sj))
		}
	}
}

func TestSubsetDecoderSingleVar(t *testing.T) {
	c := mustCodec(t, []int{2, 3, 4})
	d := c.SubsetDecoder([]int{1})
	if d.Cells() != 3 {
		t.Fatalf("Cells = %d, want 3", d.Cells())
	}
	for key := uint64(0); key < c.KeySpace(); key++ {
		if got, want := d.Cell(key), int(c.DecodeVar(key, 1)); got != want {
			t.Fatalf("Cell(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestSubsetDecoderMatchesPairDecoder(t *testing.T) {
	c := mustCodec(t, []int{3, 2, 4, 2})
	pd := c.PairDecoder(0, 2)
	sd := c.SubsetDecoder([]int{0, 2})
	if sd.Cells() != 12 {
		t.Fatalf("Cells = %d, want 12", sd.Cells())
	}
	for key := uint64(0); key < c.KeySpace(); key++ {
		if pd.Cell(key) != sd.Cell(key) {
			t.Fatalf("key %d: pair cell %d != subset cell %d", key, pd.Cell(key), sd.Cell(key))
		}
	}
}

func TestSubsetDecoderCellStatesRoundTrip(t *testing.T) {
	c := mustCodec(t, []int{2, 3, 4, 5})
	d := c.SubsetDecoder([]int{3, 0, 2})
	var full, sub []uint8
	for key := uint64(0); key < c.KeySpace(); key++ {
		full = c.Decode(key, full[:0])
		cell := d.Cell(key)
		sub = d.CellStates(cell, sub[:0])
		want := []uint8{full[3], full[0], full[2]}
		for k := range want {
			if sub[k] != want[k] {
				t.Fatalf("key %d cell %d: CellStates = %v, want %v", key, cell, sub, want)
			}
		}
	}
}

func TestSubsetDecoderPanics(t *testing.T) {
	c := mustCodec(t, []int{2, 2, 2})
	for name, vars := range map[string][]int{
		"empty":     {},
		"negative":  {-1},
		"too large": {3},
		"duplicate": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: SubsetDecoder(%v) did not panic", name, vars)
				}
			}()
			c.SubsetDecoder(vars)
		}()
	}
	d := c.SubsetDecoder([]int{0, 1})
	for _, cell := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CellStates(%d) did not panic", cell)
				}
			}()
			d.CellStates(cell, nil)
		}()
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Property: for random cardinalities and random valid state strings,
	// Decode(Encode(s)) == s and every DecodeVar agrees.
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		card := make([]int, n)
		for i := range card {
			card[i] = 1 + r.Intn(6)
		}
		c, err := NewCodec(card)
		if err != nil {
			return false
		}
		states := make([]uint8, n)
		for i := range states {
			states[i] = uint8(r.Intn(card[i]))
		}
		key := c.Encode(states)
		if key >= c.KeySpace() {
			return false
		}
		back := c.Decode(key, nil)
		for j := range states {
			if back[j] != states[j] || c.DecodeVar(key, j) != states[j] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestCardinalitiesCopy(t *testing.T) {
	c := mustCodec(t, []int{2, 3})
	got := c.Cardinalities()
	got[0] = 99
	if c.Cardinality(0) != 2 {
		t.Error("Cardinalities must return a copy")
	}
}

func BenchmarkEncode30Vars(b *testing.B) {
	c, _ := NewUniformCodec(30, 2)
	states := make([]uint8, 30)
	for i := range states {
		states[i] = uint8(i % 2)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += c.Encode(states)
	}
	_ = sink
}

func BenchmarkPairDecoderCell(b *testing.B) {
	c, _ := NewUniformCodec(30, 2)
	d := c.PairDecoder(3, 17)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += d.Cell(uint64(i) & (1<<30 - 1))
	}
	_ = sink
}
