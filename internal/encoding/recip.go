// Multiply-shift reciprocal division (Granlund & Montgomery, "Division by
// Invariant Integers using Multiplication"; the precomputation follows
// Lemire's exposition). Decoding a key is two integer divisions per variable
// (Eq. 4: s_j = (key / stride_j) mod r_j), and the scan path performs that
// per table entry per variable — at n=50 the fused MI pass does ~100 hardware
// divides per entry. Strides and cardinalities are fixed at codec
// construction, so each divisor is replaced by a precomputed magic multiplier
// and a shift: one widening multiply plus a shift per division.
//
// The construction is exact for all dividends below 2^63, which the codec
// guarantees (MaxKeyBits): for a divisor d in [2, 2^63), let
//
//	l = ceil(log2 d),  m = ceil(2^(63+l) / d).
//
// Then 2^63 <= m < 2^64 (m fits a uint64 with no overflow fixup) and, since
// m·d - 2^(63+l) ∈ [0, d-1] ⊆ [0, 2^l), Theorem 4.2 of Granlund–Montgomery
// gives floor(n·m / 2^(63+l)) == floor(n/d) for every n < 2^63. The quotient
// is computed as mulhi(n, m) >> (l-1). d == 1 cannot be represented this way
// (m would need 2^64) and is handled by a zero-value sentinel: mul == 0 means
// "divide by one", a perfectly predicted branch in the kernels.
package encoding

import (
	"fmt"
	"math/bits"
)

// Reciprocal divides uint64 values below 2^MaxKeyBits by a fixed divisor
// using a widening multiply and a shift instead of a hardware division. The
// zero value divides by one.
type Reciprocal struct {
	mul   uint64 // magic multiplier m; 0 is the divide-by-one sentinel
	shift uint8  // post-multiply shift l-1 applied to the high word
}

// NewReciprocal returns the reciprocal of d. It panics if d is zero or does
// not fit in MaxKeyBits bits, mirroring the codec's key-space contract.
func NewReciprocal(d uint64) Reciprocal {
	if d == 0 {
		panic("encoding: reciprocal of zero")
	}
	if d >= 1<<MaxKeyBits {
		panic(fmt.Sprintf("encoding: reciprocal divisor %d exceeds %d bits", d, MaxKeyBits))
	}
	if d == 1 {
		return Reciprocal{}
	}
	l := uint(bits.Len64(d - 1)) // ceil(log2 d), in [1, 63]
	// m = ceil(2^(63+l) / d). The dividend's high word 2^(l-1) is < d
	// (d > 2^(l-1) by choice of l), so Div64 cannot overflow or panic.
	m, rem := bits.Div64(uint64(1)<<(l-1), 0, d)
	if rem != 0 {
		m++
	}
	return Reciprocal{mul: m, shift: uint8(l - 1)}
}

// Div returns n / d for the reciprocal's divisor d. Exact for all
// n < 2^MaxKeyBits; callers feed it keys, which the codec keeps below that
// bound by construction.
func (r Reciprocal) Div(n uint64) uint64 {
	if r.mul == 0 {
		return n
	}
	hi, _ := bits.Mul64(n, r.mul)
	return hi >> r.shift
}

// digit decodes one mixed-radix position: (key / stride) mod card, with both
// the division and the modulus reduced to multiply-shift reciprocals. The
// modulus is recovered as q - (q/card)·card.
type digit struct {
	rs   Reciprocal // reciprocal of the position's stride
	rc   Reciprocal // reciprocal of the position's cardinality
	card uint64
}

func newDigit(stride, card uint64) digit {
	return digit{rs: NewReciprocal(stride), rc: NewReciprocal(card), card: card}
}

func (d digit) decode(key uint64) uint64 {
	q := d.rs.Div(key)
	return q - d.rc.Div(q)*d.card
}

// VarDecoder decodes the state of one fixed variable from keys, division
// free. Block scan kernels hold one per column so a batch of keys can be
// decoded into a dense state column with no per-key dispatch.
type VarDecoder struct {
	d digit
}

// VarDecoder returns a decoder for variable j. It panics if j is out of
// range.
func (c *Codec) VarDecoder(j int) VarDecoder {
	if j < 0 || j >= len(c.dig) {
		panic(fmt.Sprintf("encoding: variable %d out of range [0,%d)", j, len(c.dig)))
	}
	return VarDecoder{d: c.dig[j]}
}

// Decode returns the variable's state encoded in key.
func (v VarDecoder) Decode(key uint64) uint8 { return uint8(v.d.decode(key)) }

// Quot returns key / stride_j, the number of variable-j digit boundaries at
// or below key. Over a sorted key run, equal quotients at the endpoints mean
// no boundary lies inside the run, so the digit is constant across it; more
// generally the quotient difference bounds how many times the digit can
// change. Sorted-block scan kernels use this to skip or run-length-compress
// per-entry decoding.
func (v VarDecoder) Quot(key uint64) uint64 { return v.d.rs.Div(key) }

// DecodeBlock decodes the variable's state for every key in keys into
// dst[:len(keys)]. dst must be at least as long as keys.
func (v VarDecoder) DecodeBlock(keys []uint64, dst []uint8) {
	if len(keys) == 0 {
		return
	}
	dst = dst[:len(keys)]
	for e, k := range keys {
		dst[e] = uint8(v.d.decode(k))
	}
}
