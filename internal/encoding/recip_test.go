package encoding

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReciprocalExhaustiveSmall checks every (divisor, dividend) pair in a
// dense small range, which covers the l=1..several shift cases and the d=1
// sentinel.
func TestReciprocalExhaustiveSmall(t *testing.T) {
	for d := uint64(1); d <= 512; d++ {
		r := NewReciprocal(d)
		for n := uint64(0); n <= 4096; n++ {
			if got, want := r.Div(n), n/d; got != want {
				t.Fatalf("Div(%d) with d=%d = %d, want %d", n, d, got, want)
			}
		}
	}
}

// TestReciprocalEdges hits the boundaries of the construction: divisors and
// dividends at and around powers of two, the largest legal divisor, and the
// largest legal dividend 2^63-1.
func TestReciprocalEdges(t *testing.T) {
	maxN := uint64(1)<<MaxKeyBits - 1
	divisors := []uint64{1, 2, 3, maxN - 1, maxN}
	for shift := uint(1); shift < MaxKeyBits; shift++ {
		p := uint64(1) << shift
		divisors = append(divisors, p-1, p, p+1)
	}
	for _, d := range divisors {
		if d == 0 || d > maxN {
			continue
		}
		r := NewReciprocal(d)
		dividends := []uint64{0, 1, d - 1, d, d + 1, 2*d - 1, 2 * d, maxN - 1, maxN}
		for _, n := range dividends {
			if n > maxN {
				continue
			}
			if got, want := r.Div(n), n/d; got != want {
				t.Fatalf("Div(%d) with d=%d = %d, want %d", n, d, got, want)
			}
		}
	}
}

// TestReciprocalQuick property-tests random (divisor, dividend) pairs over
// the full 63-bit range.
func TestReciprocalQuick(t *testing.T) {
	f := func(d, n uint64) bool {
		d = d%(uint64(1)<<MaxKeyBits-1) + 1 // d in [1, 2^63-1]
		n %= uint64(1) << MaxKeyBits        // n in [0, 2^63)
		return NewReciprocal(d).Div(n) == n/d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200000}); err != nil {
		t.Fatal(err)
	}
}

func TestReciprocalPanics(t *testing.T) {
	for _, d := range []uint64{0, 1 << MaxKeyBits, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewReciprocal(%d) did not panic", d)
				}
			}()
			NewReciprocal(d)
		}()
	}
}

// FuzzReciprocalDiv cross-checks the multiply-shift quotient against the
// hardware division for arbitrary fuzz-chosen divisors and dividends.
func FuzzReciprocalDiv(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(2), uint64(1)<<MaxKeyBits-1)
	f.Add(uint64(3), uint64(10))
	f.Add(uint64(1)<<62, uint64(1)<<62+12345)
	f.Fuzz(func(t *testing.T, d, n uint64) {
		d = d%(uint64(1)<<MaxKeyBits-1) + 1
		n %= uint64(1) << MaxKeyBits
		if got, want := NewReciprocal(d).Div(n), n/d; got != want {
			t.Fatalf("Div(%d) with d=%d = %d, want %d", n, d, got, want)
		}
	})
}

// randomCodec builds a codec with mixed cardinalities (including runs of
// cardinality-1 variables) whose key space stays within MaxKeyBits.
func randomCodec(rng *rand.Rand) *Codec {
	n := 1 + rng.Intn(24)
	card := make([]int, n)
	spaceBits := 0
	for j := range card {
		r := 1 + rng.Intn(16)
		for r > 1 && spaceBits+bits.Len64(uint64(r-1)) > MaxKeyBits-1 {
			r /= 2
		}
		if r < 1 {
			r = 1
		}
		card[j] = r
		spaceBits += bits.Len64(uint64(r - 1))
	}
	c, err := NewCodec(card)
	if err != nil {
		panic(err)
	}
	return c
}

// slowDecodeVar is the plain two-division reference implementation of Eq. 4.
func slowDecodeVar(c *Codec, key uint64, j int) uint8 {
	return uint8(key / c.Stride(j) % uint64(c.Cardinality(j)))
}

// TestDecodeMatchesPlainDivision drives every reciprocal decode path —
// Decode, DecodeVar, VarDecoder, PairDecoder, SubsetDecoder — across random
// codecs and checks each against the plain `/`/`%` formulas, including the
// key-space edges 0, 1, space-1.
func TestDecodeMatchesPlainDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		c := randomCodec(rng)
		n := c.NumVars()

		keys := []uint64{0}
		if c.KeySpace() > 1 {
			keys = append(keys, 1, c.KeySpace()-1)
		}
		for k := 0; k < 64; k++ {
			keys = append(keys, rng.Uint64()%c.KeySpace())
		}

		// A random pair and a random subset, fixed per trial.
		i, j := rng.Intn(n), rng.Intn(n)
		pd := c.PairDecoder(i, j)
		var subset []int
		for _, v := range rng.Perm(n)[:1+rng.Intn(n)] {
			subset = append(subset, v)
		}
		sd := c.SubsetDecoder(subset)

		var dst []uint8
		for _, key := range keys {
			dst = c.Decode(key, dst[:0])
			for v := 0; v < n; v++ {
				want := slowDecodeVar(c, key, v)
				if dst[v] != want {
					t.Fatalf("Decode key=%d var=%d: got %d, want %d (cards=%v)", key, v, dst[v], want, c.Cardinalities())
				}
				if got := c.DecodeVar(key, v); got != want {
					t.Fatalf("DecodeVar key=%d var=%d: got %d, want %d", key, v, got, want)
				}
				if got := c.VarDecoder(v).Decode(key); got != want {
					t.Fatalf("VarDecoder key=%d var=%d: got %d, want %d", key, v, got, want)
				}
			}

			si, sj := slowDecodeVar(c, key, i), slowDecodeVar(c, key, j)
			if gi, gj := pd.Decode(key); gi != si || gj != sj {
				t.Fatalf("PairDecoder.Decode key=%d: got (%d,%d), want (%d,%d)", key, gi, gj, si, sj)
			}
			wantCell := int(uint64(si)*uint64(c.Cardinality(j)) + uint64(sj))
			if got := pd.Cell(key); got != wantCell {
				t.Fatalf("PairDecoder.Cell key=%d: got %d, want %d", key, got, wantCell)
			}

			var wantIdx uint64
			for k, v := range subset {
				wantIdx += key / c.Stride(v) % uint64(c.Cardinality(v)) * outStrideFor(c, subset, k)
			}
			if got := sd.Cell(key); got != int(wantIdx) {
				t.Fatalf("SubsetDecoder.Cell key=%d subset=%v: got %d, want %d", key, subset, got, wantIdx)
			}
		}

		// Block decode agrees with scalar decode for every variable.
		scratch := make([]uint8, len(keys))
		for v := 0; v < n; v++ {
			c.VarDecoder(v).DecodeBlock(keys, scratch)
			for e, key := range keys {
				if want := slowDecodeVar(c, key, v); scratch[e] != want {
					t.Fatalf("DecodeBlock var=%d key=%d: got %d, want %d", v, key, scratch[e], want)
				}
			}
		}
	}
}

// outStrideFor recomputes the row-major marginal stride of subset position k
// the way SubsetDecoder defines it (last variable varies fastest).
func outStrideFor(c *Codec, subset []int, k int) uint64 {
	s := uint64(1)
	for t := len(subset) - 1; t > k; t-- {
		s *= uint64(c.Cardinality(subset[t]))
	}
	return s
}

// FuzzDecodeVar fuzzes codec shapes and keys jointly: the fuzzer picks a
// cardinality seed and a key, the harness derives a valid codec and checks
// every variable's reciprocal decode against plain division.
func FuzzDecodeVar(f *testing.F) {
	f.Add(int64(1), uint64(0))
	f.Add(int64(42), uint64(1<<40))
	f.Fuzz(func(t *testing.T, seed int64, key uint64) {
		c := randomCodec(rand.New(rand.NewSource(seed)))
		key %= c.KeySpace()
		for v := 0; v < c.NumVars(); v++ {
			if got, want := c.DecodeVar(key, v), slowDecodeVar(c, key, v); got != want {
				t.Fatalf("DecodeVar key=%d var=%d: got %d, want %d (cards=%v)", key, v, got, want, c.Cardinalities())
			}
		}
	})
}

func BenchmarkDecodeVarRecip(b *testing.B) {
	c, _ := NewUniformCodec(30, 2)
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink ^= c.DecodeVar(uint64(i)%c.KeySpace(), i%30)
	}
	benchSink = sink
}

func BenchmarkDecodeVarPlainDiv(b *testing.B) {
	c, _ := NewUniformCodec(30, 2)
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink ^= slowDecodeVar(c, uint64(i)%c.KeySpace(), i%30)
	}
	benchSink = sink
}

var benchSink uint8
