package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
)

// Serialization lets an expensive table build be done once and the result
// shipped or cached: the format stores the codec's cardinalities, the
// sample count, and the key→count entries (keys sorted, delta- and
// varint-encoded, so dense key populations compress well). Output is
// deterministic: the same table always serializes to the same bytes
// regardless of partitioning.

// tableMagic identifies the format and its version.
var tableMagic = []byte("WFBN1\n")

// WriteTo serializes the table. It returns the number of bytes written.
func (t *PotentialTable) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := cw.Write(tableMagic); err != nil {
		return cw.n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}

	cards := t.codec.Cardinalities()
	if err := putUvarint(uint64(len(cards))); err != nil {
		return cw.n, err
	}
	for _, c := range cards {
		if err := putUvarint(uint64(c)); err != nil {
			return cw.n, err
		}
	}
	if err := putUvarint(t.m); err != nil {
		return cw.n, err
	}

	// Collect and sort entries for delta encoding and determinism.
	type entry struct{ key, count uint64 }
	entries := make([]entry, 0, t.Len())
	t.Range(func(key, count uint64) bool {
		entries = append(entries, entry{key, count})
		return true
	})
	sort.Slice(entries, func(a, b int) bool { return entries[a].key < entries[b].key })

	if err := putUvarint(uint64(len(entries))); err != nil {
		return cw.n, err
	}
	prev := uint64(0)
	for i, e := range entries {
		delta := e.key - prev
		if i == 0 {
			delta = e.key
		}
		prev = e.key
		if err := putUvarint(delta); err != nil {
			return cw.n, err
		}
		if err := putUvarint(e.count); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadTable deserializes a table written by WriteTo, reconstructing it
// with the requested partition count (0 = 1 partition).
func ReadTable(r io.Reader, partitions int) (*PotentialTable, error) {
	if partitions <= 0 {
		partitions = 1
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(tableMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != string(tableMagic) {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	nVars, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading variable count: %w", err)
	}
	if nVars == 0 || nVars > 1<<20 {
		return nil, fmt.Errorf("core: implausible variable count %d", nVars)
	}
	cards := make([]int, nVars)
	for i := range cards {
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading cardinality %d: %w", i, err)
		}
		if c < 1 || c > 256 {
			return nil, fmt.Errorf("core: cardinality %d outside [1,256]", c)
		}
		cards[i] = int(c)
	}
	codec, err := encoding.NewCodec(cards)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading sample count: %w", err)
	}
	numEntries, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: reading entry count: %w", err)
	}
	if numEntries > m {
		return nil, fmt.Errorf("core: %d entries exceed %d samples", numEntries, m)
	}
	if numEntries > codec.KeySpace() {
		return nil, fmt.Errorf("core: %d entries exceed key space %d", numEntries, codec.KeySpace())
	}

	parts := make([]hashtable.Counter, partitions)
	// Pre-size from the header but never trust it for more than a bounded
	// up-front allocation — a forged header must not be able to OOM the
	// reader before a single entry is parsed. Tables grow on demand.
	hint := int(numEntries)/partitions + 1
	if hint > 1<<20 {
		hint = 1 << 20
	}
	for i := range parts {
		parts[i] = hashtable.New(hint)
	}
	var key uint64
	var totalCount uint64
	idx, perPart := 0, (int(numEntries)+partitions-1)/partitions
	inPart := 0
	for i := uint64(0); i < numEntries; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading entry %d key: %w", i, err)
		}
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading entry %d count: %w", i, err)
		}
		if count == 0 {
			return nil, fmt.Errorf("core: entry %d has zero count", i)
		}
		if i == 0 {
			key = delta
		} else {
			if delta == 0 {
				return nil, fmt.Errorf("core: duplicate key at entry %d", i)
			}
			key += delta
		}
		if key >= codec.KeySpace() {
			return nil, fmt.Errorf("core: key %d outside key space %d", key, codec.KeySpace())
		}
		if inPart == perPart && idx < partitions-1 {
			idx++
			inPart = 0
		}
		parts[idx].Add(key, count)
		inPart++
		totalCount += count
	}
	if totalCount != m {
		return nil, fmt.Errorf("core: counts sum to %d, header says %d samples", totalCount, m)
	}
	return NewPotentialTable(codec, parts, m), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
