package core

import (
	"context"

	"waitfreebn/internal/encoding"
)

// MarginalizeMany computes marginal tables for several variable subsets in
// a single pass over the potential table. Algorithm 3 scans all partitions
// once per marginal; when a consumer needs many marginals (the CI-test
// batches of thickening, or sufficient statistics for score-based search),
// fusing the scans amortizes the per-key cost the same way the fused
// all-pairs-MI schedule does: each key is visited once and contributes to
// every requested marginal.
//
// The result is index-aligned with varsets. p <= 0 selects GOMAXPROCS.
//
// Deprecated: use MarginalizeManyCtx.
func (t *PotentialTable) MarginalizeMany(varsets [][]int, p int) []*Marginal {
	out, err := t.MarginalizeManyCtx(context.Background(), varsets, p)
	mustScan(err)
	return out
}

// MarginalizeManyCtx is MarginalizeMany under the fault-tolerant execution
// contract (see MarginalizeCtx).
func (t *PotentialTable) MarginalizeManyCtx(ctx context.Context, varsets [][]int, p int) ([]*Marginal, error) {
	if len(varsets) == 0 {
		return nil, nil
	}
	p = t.readP(p)
	decs := make([]*encoding.SubsetDecoder, len(varsets))
	offsets := make([]int, len(varsets)+1)
	for k, vars := range varsets {
		decs[k] = t.codec.SubsetDecoder(vars)
		offsets[k+1] = offsets[k] + decs[k].Cells()
	}
	totalCells := offsets[len(varsets)]

	partials := getPartials(p, totalCells)
	if err := t.scanBlocksCtx(ctx, p, func(w int, keys, counts []uint64, _ bool) {
		pc := partials[w]
		for e, key := range keys {
			for k, dec := range decs {
				pc[offsets[k]+dec.Cell(key)] += counts[e]
			}
		}
	}); err != nil {
		return nil, err
	}
	merged := mergePartials(partials)
	putPartials(partials)

	out := make([]*Marginal, len(varsets))
	for k, vars := range varsets {
		card := make([]int, len(vars))
		for i, v := range vars {
			card[i] = t.codec.Cardinality(v)
		}
		out[k] = &Marginal{
			Vars:   append([]int(nil), vars...),
			Card:   card,
			Counts: merged[offsets[k]:offsets[k+1]:offsets[k+1]],
			M:      t.m,
		}
	}
	return out, nil
}
