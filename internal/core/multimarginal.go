package core

import (
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/sched"
)

// MarginalizeMany computes marginal tables for several variable subsets in
// a single pass over the potential table. Algorithm 3 scans all partitions
// once per marginal; when a consumer needs many marginals (the CI-test
// batches of thickening, or sufficient statistics for score-based search),
// fusing the scans amortizes the per-key cost the same way the fused
// all-pairs-MI schedule does: each key is visited once and contributes to
// every requested marginal.
//
// The result is index-aligned with varsets. p <= 0 selects GOMAXPROCS.
func (t *PotentialTable) MarginalizeMany(varsets [][]int, p int) []*Marginal {
	if len(varsets) == 0 {
		return nil
	}
	if p <= 0 {
		p = sched.DefaultP()
	}
	if p > len(t.parts) {
		p = len(t.parts)
	}
	decs := make([]*encoding.SubsetDecoder, len(varsets))
	offsets := make([]int, len(varsets)+1)
	for k, vars := range varsets {
		decs[k] = t.codec.SubsetDecoder(vars)
		offsets[k+1] = offsets[k] + decs[k].Cells()
	}
	totalCells := offsets[len(varsets)]

	partials := make([][]uint64, p)
	assign := t.partitionAssignment(p)
	sched.Run(p, func(w int) {
		counts := make([]uint64, totalCells)
		for _, part := range assign[w] {
			t.parts[part].Range(func(key, count uint64) bool {
				for k, dec := range decs {
					counts[offsets[k]+dec.Cell(key)] += count
				}
				return true
			})
		}
		partials[w] = counts
	})
	merged := partials[0]
	for w := 1; w < p; w++ {
		for c, v := range partials[w] {
			merged[c] += v
		}
	}

	out := make([]*Marginal, len(varsets))
	for k, vars := range varsets {
		card := make([]int, len(vars))
		for i, v := range vars {
			card[i] = t.codec.Cardinality(v)
		}
		out[k] = &Marginal{
			Vars:   append([]int(nil), vars...),
			Card:   card,
			Counts: merged[offsets[k]:offsets[k+1]:offsets[k+1]],
			M:      t.m,
		}
	}
	return out
}
