package core

import (
	"context"
	"fmt"
	"sync"

	"waitfreebn/internal/sched"
)

// Marginal is a dense marginal distribution table over an ordered subset of
// variables, produced by Algorithm 3. Counts are raw occurrence counts;
// Prob applies the deferred normalization by m (paper footnote 2,
// Algorithm 3 line 17).
type Marginal struct {
	Vars   []int    // the variables V, in table order
	Card   []int    // their cardinalities
	Counts []uint64 // flattened row-major counts, len = Π Card
	M      uint64   // total samples (the normalizer)
}

// Cells returns the number of cells in the marginal table.
func (mg *Marginal) Cells() int { return len(mg.Counts) }

// Count returns the raw count for the given states of Vars (same order).
func (mg *Marginal) Count(states ...uint8) uint64 {
	return mg.Counts[mg.cell(states)]
}

// Prob returns the empirical probability of the given states of Vars.
func (mg *Marginal) Prob(states ...uint8) float64 {
	if mg.M == 0 {
		return 0
	}
	return float64(mg.Counts[mg.cell(states)]) / float64(mg.M)
}

func (mg *Marginal) cell(states []uint8) int {
	if len(states) != len(mg.Vars) {
		panic(fmt.Sprintf("core: Marginal over %d variables indexed with %d states", len(mg.Vars), len(states)))
	}
	idx := 0
	for k, s := range states {
		if int(s) >= mg.Card[k] {
			panic(fmt.Sprintf("core: state %d out of range for variable %d (cardinality %d)", s, mg.Vars[k], mg.Card[k]))
		}
		idx = idx*mg.Card[k] + int(s)
	}
	return idx
}

// Total returns the sum of all counts (== M for a marginal over a complete
// table).
func (mg *Marginal) Total() uint64 {
	var total uint64
	for _, c := range mg.Counts {
		total += c
	}
	return total
}

// SumOver marginalizes further: it sums out every variable of mg except
// keep (an index into mg.Vars, not a variable id), returning the 1-D
// marginal of that variable. All-pairs MI uses this to derive P(x) and
// P(y) from P(x,y) instead of rescanning the table (Section IV-C).
func (mg *Marginal) SumOver(keep int) *Marginal {
	if keep < 0 || keep >= len(mg.Vars) {
		panic(fmt.Sprintf("core: SumOver(%d) on a %d-variable marginal", keep, len(mg.Vars)))
	}
	out := &Marginal{
		Vars:   []int{mg.Vars[keep]},
		Card:   []int{mg.Card[keep]},
		Counts: make([]uint64, mg.Card[keep]),
		M:      mg.M,
	}
	// Stride of `keep` in the row-major layout.
	stride := 1
	for k := keep + 1; k < len(mg.Card); k++ {
		stride *= mg.Card[k]
	}
	for cell, c := range mg.Counts {
		out.Counts[cell/stride%mg.Card[keep]] += c
	}
	return out
}

// readP resolves the worker count for read-side (scan) primitives: p <= 0
// selects GOMAXPROCS. On a live table p is additionally capped at the
// partition count — partitions are the live path's unit of read parallelism
// — and the degradation is surfaced through the core_scan_clamped_total
// counter rather than silently. A frozen snapshot splits by index range, so
// no cap applies.
func (t *PotentialTable) readP(p int) int {
	if p <= 0 {
		p = sched.DefaultP()
	}
	if parts := t.liveParts(); t.frozen.Load() == nil && p > len(parts) {
		p = len(parts)
		if r := t.obs; r != nil {
			r.Help(metricScanClamped, "live scans whose worker count was capped at the partition count")
			r.Counter(metricScanClamped).Inc()
		}
	}
	return p
}

// mustScan converts an error from a Background-context scan into a panic:
// with no cancellation possible, the only failure mode left is a worker
// panic, which the legacy (non-ctx) entry points propagate loudly.
func mustScan(err error) {
	if err != nil {
		panic(err)
	}
}

// mergePartials sums partials[1:] into partials[0] and returns it.
func mergePartials(partials [][]uint64) []uint64 {
	counts := partials[0]
	for w := 1; w < len(partials); w++ {
		for c, v := range partials[w] {
			counts[c] += v
		}
	}
	return counts
}

// partialPool recycles the per-worker partial-count arrays of the scan
// kernels across queries. The lifetime rule every consumer follows:
// partials[0] escapes into the returned Marginal's Counts (and from there
// into the MarginalCache, which shares entries across requests), so it is
// always freshly allocated; only workers 1..p-1 draw from the pool, and
// they are returned immediately after mergePartials — at which point no
// reference to them survives.
var partialPool sync.Pool

// getPartials returns p per-worker partial arrays of cells zeroed counts.
// partials[0] is fresh (it will escape); the rest are pooled when a large
// enough array is available.
func getPartials(p, cells int) [][]uint64 {
	partials := make([][]uint64, p)
	partials[0] = make([]uint64, cells)
	for w := 1; w < p; w++ {
		partials[w] = pooledU64(cells)
	}
	return partials
}

func pooledU64(cells int) []uint64 {
	if v := partialPool.Get(); v != nil {
		s := *v.(*[]uint64)
		if cap(s) >= cells {
			s = s[:cells]
			clear(s)
			return s
		}
	}
	return make([]uint64, cells)
}

// putPartials releases partials[1:] back to the pool. partials[0] is left
// alone: its cells are the result the caller is about to hand out.
func putPartials(partials [][]uint64) {
	for w := 1; w < len(partials); w++ {
		s := partials[w]
		partialPool.Put(&s)
	}
}

// Marginalize computes the marginal distribution over vars using p workers
// (Algorithm 3). Each worker scans a disjoint subset of the partitions,
// decoding only the variables in vars from each key and accumulating a
// partial marginal; partials are then merged (line 16). p <= 0 selects
// GOMAXPROCS; on a live table p is additionally capped at the partition
// count, while a frozen table splits work by index range at any p (see
// readP).
//
// Deprecated: use MarginalizeCtx.
func (t *PotentialTable) Marginalize(vars []int, p int) *Marginal {
	mg, err := t.MarginalizeCtx(context.Background(), vars, p)
	mustScan(err)
	return mg
}

// MarginalizeCtx is Marginalize under the fault-tolerant execution
// contract: workers observe ctx at chunk boundaries and the scan returns
// context.Canceled (or DeadlineExceeded) in bounded time.
func (t *PotentialTable) MarginalizeCtx(ctx context.Context, vars []int, p int) (*Marginal, error) {
	p = t.readP(p)
	dec := t.codec.SubsetDecoder(vars)
	cells := dec.Cells()

	partials := getPartials(p, cells)
	if err := t.scanBlocksCtx(ctx, p, func(w int, keys, counts []uint64, _ bool) {
		pc := partials[w]
		for e, key := range keys {
			pc[dec.Cell(key)] += counts[e]
		}
	}); err != nil {
		return nil, err
	}

	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = t.codec.Cardinality(v)
	}
	counts := mergePartials(partials)
	putPartials(partials)
	return &Marginal{
		Vars:   append([]int(nil), vars...),
		Card:   card,
		Counts: counts,
		M:      t.m,
	}, nil
}

// MarginalizePair is Marginalize for the two-variable case used by the
// drafting phase; it avoids the general subset-decoder indirection with a
// fixed-arity fast path.
//
// Deprecated: use MarginalizePairCtx.
func (t *PotentialTable) MarginalizePair(i, j int, p int) *Marginal {
	mg, err := t.MarginalizePairCtx(context.Background(), i, j, p)
	mustScan(err)
	return mg
}

// MarginalizePairCtx is MarginalizePair under the fault-tolerant execution
// contract (see MarginalizeCtx).
func (t *PotentialTable) MarginalizePairCtx(ctx context.Context, i, j int, p int) (*Marginal, error) {
	p = t.readP(p)
	dec := t.codec.PairDecoder(i, j)
	ri, rj := t.codec.Cardinality(i), t.codec.Cardinality(j)
	cells := ri * rj

	partials := getPartials(p, cells)
	if err := t.scanBlocksCtx(ctx, p, func(w int, keys, counts []uint64, _ bool) {
		pc := partials[w]
		for e, key := range keys {
			pc[dec.Cell(key)] += counts[e]
		}
	}); err != nil {
		return nil, err
	}
	counts := mergePartials(partials)
	putPartials(partials)
	return &Marginal{
		Vars:   []int{i, j},
		Card:   []int{ri, rj},
		Counts: counts,
		M:      t.m,
	}, nil
}
