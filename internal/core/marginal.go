package core

import (
	"fmt"

	"waitfreebn/internal/sched"
)

// Marginal is a dense marginal distribution table over an ordered subset of
// variables, produced by Algorithm 3. Counts are raw occurrence counts;
// Prob applies the deferred normalization by m (paper footnote 2,
// Algorithm 3 line 17).
type Marginal struct {
	Vars   []int    // the variables V, in table order
	Card   []int    // their cardinalities
	Counts []uint64 // flattened row-major counts, len = Π Card
	M      uint64   // total samples (the normalizer)
}

// Cells returns the number of cells in the marginal table.
func (mg *Marginal) Cells() int { return len(mg.Counts) }

// Count returns the raw count for the given states of Vars (same order).
func (mg *Marginal) Count(states ...uint8) uint64 {
	return mg.Counts[mg.cell(states)]
}

// Prob returns the empirical probability of the given states of Vars.
func (mg *Marginal) Prob(states ...uint8) float64 {
	if mg.M == 0 {
		return 0
	}
	return float64(mg.Counts[mg.cell(states)]) / float64(mg.M)
}

func (mg *Marginal) cell(states []uint8) int {
	if len(states) != len(mg.Vars) {
		panic(fmt.Sprintf("core: Marginal over %d variables indexed with %d states", len(mg.Vars), len(states)))
	}
	idx := 0
	for k, s := range states {
		if int(s) >= mg.Card[k] {
			panic(fmt.Sprintf("core: state %d out of range for variable %d (cardinality %d)", s, mg.Vars[k], mg.Card[k]))
		}
		idx = idx*mg.Card[k] + int(s)
	}
	return idx
}

// Total returns the sum of all counts (== M for a marginal over a complete
// table).
func (mg *Marginal) Total() uint64 {
	var total uint64
	for _, c := range mg.Counts {
		total += c
	}
	return total
}

// SumOver marginalizes further: it sums out every variable of mg except
// keep (an index into mg.Vars, not a variable id), returning the 1-D
// marginal of that variable. All-pairs MI uses this to derive P(x) and
// P(y) from P(x,y) instead of rescanning the table (Section IV-C).
func (mg *Marginal) SumOver(keep int) *Marginal {
	if keep < 0 || keep >= len(mg.Vars) {
		panic(fmt.Sprintf("core: SumOver(%d) on a %d-variable marginal", keep, len(mg.Vars)))
	}
	out := &Marginal{
		Vars:   []int{mg.Vars[keep]},
		Card:   []int{mg.Card[keep]},
		Counts: make([]uint64, mg.Card[keep]),
		M:      mg.M,
	}
	// Stride of `keep` in the row-major layout.
	stride := 1
	for k := keep + 1; k < len(mg.Card); k++ {
		stride *= mg.Card[k]
	}
	for cell, c := range mg.Counts {
		out.Counts[cell/stride%mg.Card[keep]] += c
	}
	return out
}

// Marginalize computes the marginal distribution over vars using p workers
// (Algorithm 3). Each worker scans a disjoint subset of the partitions,
// decoding only the variables in vars from each key and accumulating a
// partial marginal; partials are then merged (line 16). p <= 0 selects
// GOMAXPROCS; p is additionally capped at the partition count, since
// partitions are the unit of read parallelism.
func (t *PotentialTable) Marginalize(vars []int, p int) *Marginal {
	if p <= 0 {
		p = sched.DefaultP()
	}
	if p > len(t.parts) {
		p = len(t.parts)
	}
	dec := t.codec.SubsetDecoder(vars)
	cells := dec.Cells()

	partials := make([][]uint64, p)
	assign := t.partitionAssignment(p)
	sched.Run(p, func(w int) {
		partial := make([]uint64, cells)
		for _, part := range assign[w] {
			t.parts[part].Range(func(key, count uint64) bool {
				partial[dec.Cell(key)] += count
				return true
			})
		}
		partials[w] = partial
	})

	counts := partials[0]
	for w := 1; w < p; w++ {
		for c, v := range partials[w] {
			counts[c] += v
		}
	}

	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = t.codec.Cardinality(v)
	}
	return &Marginal{
		Vars:   append([]int(nil), vars...),
		Card:   card,
		Counts: counts,
		M:      t.m,
	}
}

// MarginalizePair is Marginalize for the two-variable case used by the
// drafting phase; it avoids the general subset-decoder indirection with a
// fixed-arity fast path.
func (t *PotentialTable) MarginalizePair(i, j int, p int) *Marginal {
	if p <= 0 {
		p = sched.DefaultP()
	}
	if p > len(t.parts) {
		p = len(t.parts)
	}
	dec := t.codec.PairDecoder(i, j)
	ri, rj := t.codec.Cardinality(i), t.codec.Cardinality(j)
	cells := ri * rj

	partials := make([][]uint64, p)
	assign := t.partitionAssignment(p)
	sched.Run(p, func(w int) {
		partial := make([]uint64, cells)
		for _, part := range assign[w] {
			t.parts[part].Range(func(key, count uint64) bool {
				partial[dec.Cell(key)] += count
				return true
			})
		}
		partials[w] = partial
	})

	counts := partials[0]
	for w := 1; w < p; w++ {
		for c, v := range partials[w] {
			counts[c] += v
		}
	}
	return &Marginal{
		Vars:   []int{i, j},
		Card:   []int{ri, rj},
		Counts: counts,
		M:      t.m,
	}
}
