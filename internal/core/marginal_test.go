package core

import (
	"testing"

	"waitfreebn/internal/dataset"
)

// bruteMarginal computes the marginal over vars directly from the dataset.
func bruteMarginal(d *dataset.Dataset, vars []int) map[string]uint64 {
	out := map[string]uint64{}
	for i := 0; i < d.NumSamples(); i++ {
		key := make([]byte, len(vars))
		for k, v := range vars {
			key[k] = d.Get(i, v)
		}
		out[string(key)]++
	}
	return out
}

func TestMarginalizeMatchesBruteForce(t *testing.T) {
	d := uniformData(t, 10000, 6, 3, 20)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, vars := range [][]int{{0}, {5}, {1, 3}, {0, 2, 4}, {5, 1}} {
		mg := pt.Marginalize(vars, 4)
		if mg.M != 10000 {
			t.Fatalf("vars %v: M = %d", vars, mg.M)
		}
		if mg.Total() != 10000 {
			t.Fatalf("vars %v: Total = %d", vars, mg.Total())
		}
		brute := bruteMarginal(d, vars)
		states := make([]uint8, len(vars))
		var check func(k int)
		check = func(k int) {
			if k == len(vars) {
				want := brute[string(states)]
				if got := mg.Count(states...); got != want {
					t.Fatalf("vars %v states %v: count %d, want %d", vars, states, got, want)
				}
				return
			}
			for s := 0; s < d.Cardinality(vars[k]); s++ {
				states[k] = uint8(s)
				check(k + 1)
			}
		}
		check(0)
	}
}

func TestMarginalizeIndependentOfWorkerCount(t *testing.T) {
	d := uniformData(t, 8000, 8, 2, 21)
	pt, _, err := Build(d, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref := pt.Marginalize([]int{2, 6}, 1)
	for _, p := range []int{2, 3, 8, 16} {
		mg := pt.Marginalize([]int{2, 6}, p)
		for c := range ref.Counts {
			if mg.Counts[c] != ref.Counts[c] {
				t.Fatalf("p=%d cell %d: %d != %d", p, c, mg.Counts[c], ref.Counts[c])
			}
		}
	}
}

func TestMarginalizePairMatchesGeneral(t *testing.T) {
	d := uniformData(t, 5000, 6, 3, 22)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 6; j++ {
			a := pt.Marginalize([]int{i, j}, 4)
			b := pt.MarginalizePair(i, j, 4)
			if len(a.Counts) != len(b.Counts) {
				t.Fatalf("(%d,%d): cell counts differ", i, j)
			}
			for c := range a.Counts {
				if a.Counts[c] != b.Counts[c] {
					t.Fatalf("(%d,%d) cell %d: %d != %d", i, j, c, a.Counts[c], b.Counts[c])
				}
			}
		}
	}
}

func TestMarginalProb(t *testing.T) {
	d := dataset.NewUniformCard(4, 2, 2)
	// Rows: (0,0), (0,0), (1,0), (1,1)
	d.Set(2, 0, 1)
	d.Set(3, 0, 1)
	d.Set(3, 1, 1)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg := pt.Marginalize([]int{0}, 2)
	if got := mg.Prob(0); got != 0.5 {
		t.Errorf("P(x0=0) = %v, want 0.5", got)
	}
	if got := mg.Count(1); got != 2 {
		t.Errorf("Count(x0=1) = %d, want 2", got)
	}
}

func TestMarginalProbZeroM(t *testing.T) {
	mg := &Marginal{Vars: []int{0}, Card: []int{2}, Counts: make([]uint64, 2), M: 0}
	if got := mg.Prob(0); got != 0 {
		t.Errorf("Prob on empty marginal = %v", got)
	}
}

func TestMarginalPanics(t *testing.T) {
	mg := &Marginal{Vars: []int{0, 1}, Card: []int{2, 2}, Counts: make([]uint64, 4), M: 4}
	for name, fn := range map[string]func(){
		"wrong arity":   func() { mg.Count(1) },
		"state range":   func() { mg.Count(1, 2) },
		"SumOver range": func() { mg.SumOver(2) },
		"SumOver -1":    func() { mg.SumOver(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSumOverMatchesDirectMarginal(t *testing.T) {
	d := uniformData(t, 6000, 5, 3, 23)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	joint := pt.MarginalizePair(1, 3, 4)
	mx := joint.SumOver(0)
	my := joint.SumOver(1)
	dx := pt.Marginalize([]int{1}, 4)
	dy := pt.Marginalize([]int{3}, 4)
	for s := 0; s < 3; s++ {
		if mx.Counts[s] != dx.Counts[s] {
			t.Errorf("SumOver(0) state %d: %d != %d", s, mx.Counts[s], dx.Counts[s])
		}
		if my.Counts[s] != dy.Counts[s] {
			t.Errorf("SumOver(1) state %d: %d != %d", s, my.Counts[s], dy.Counts[s])
		}
	}
	if mx.Vars[0] != 1 || my.Vars[0] != 3 {
		t.Errorf("SumOver kept wrong vars: %v, %v", mx.Vars, my.Vars)
	}
}

func TestSumOverThreeVariableMarginal(t *testing.T) {
	d := uniformData(t, 6000, 5, 2, 24)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	m3 := pt.Marginalize([]int{0, 2, 4}, 2)
	for keep, v := range []int{0, 2, 4} {
		got := m3.SumOver(keep)
		want := pt.Marginalize([]int{v}, 2)
		for s := range got.Counts {
			if got.Counts[s] != want.Counts[s] {
				t.Errorf("SumOver(%d) state %d: %d != %d", keep, s, got.Counts[s], want.Counts[s])
			}
		}
	}
}

func TestRebalancePreservesContent(t *testing.T) {
	d := dataset.NewUniformCard(20000, 8, 3)
	d.Zipf(25, 2.0, 4) // skew → unbalanced partitions under modulo
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := BuildSequential(d)
	before := pt.Marginalize([]int{1, 4}, 4)

	pt.Rebalance(4)
	if !pt.Equal(ref) {
		t.Fatal("Rebalance changed table content")
	}
	after := pt.Marginalize([]int{1, 4}, 4)
	for c := range before.Counts {
		if before.Counts[c] != after.Counts[c] {
			t.Fatalf("cell %d changed: %d != %d", c, before.Counts[c], after.Counts[c])
		}
	}
	// Balance: partitions must differ by at most a factor ~1 plus slack.
	if imb := pt.maxImbalance(); imb > 1.5 {
		t.Errorf("imbalance after Rebalance = %.2f", imb)
	}
}

func TestRebalanceToDifferentPartitionCount(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 26)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := BuildSequential(d)
	for _, parts := range []int{1, 2, 8} {
		pt.Rebalance(parts)
		if pt.Partitions() != parts {
			t.Fatalf("Partitions = %d, want %d", pt.Partitions(), parts)
		}
		if !pt.Equal(ref) {
			t.Fatalf("Rebalance(%d) changed content", parts)
		}
	}
}

func TestRebalancePanicsOnBadCount(t *testing.T) {
	d := uniformData(t, 100, 4, 2, 27)
	pt, _, _ := Build(d, Options{P: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Rebalance(0) did not panic")
		}
	}()
	pt.Rebalance(0)
}

func TestPotentialTableRangeEarlyStop(t *testing.T) {
	d := uniformData(t, 1000, 6, 2, 28)
	pt, _, _ := Build(d, Options{P: 4})
	visits := 0
	pt.Range(func(key, count uint64) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("Range visited %d entries, want 3", visits)
	}
}
