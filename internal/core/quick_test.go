package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/spsc"
)

// TestQuickBuildMatchesOracle is the randomized differential test for the
// construction primitive: random shapes, cardinalities, worker counts and
// option combinations must all produce exactly the map-oracle counts.
func TestQuickBuildMatchesOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(90))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(3000)
		n := 1 + r.Intn(8)
		card := make([]int, n)
		for i := range card {
			card[i] = 2 + r.Intn(4)
		}
		d := dataset.New(m, card)
		d.UniformIndependent(uint64(seed), 2)

		opts := Options{
			P:          1 + r.Intn(6),
			Partition:  PartitionKind(r.Intn(3)),
			Queue:      spsc.Kind(r.Intn(3)),
			Table:      TableKind(r.Intn(4)),
			WriteBatch: []int{0, 1, 2, 64}[r.Intn(4)],
		}
		pt, st, err := Build(d, opts)
		if err != nil {
			return false
		}
		codec, _ := d.Codec()
		oracle := map[uint64]uint64{}
		for i := 0; i < m; i++ {
			oracle[codec.Encode(d.Row(i))]++
		}
		if pt.Len() != len(oracle) || st.LocalKeys+st.ForeignKeys != uint64(m) {
			return false
		}
		ok := true
		pt.Range(func(key, count uint64) bool {
			if oracle[key] != count {
				ok = false
				return false
			}
			return true
		})
		return ok
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMarginalInvariants checks, for random tables and random
// subsets: totals preserved, SumOver consistency, and the pair/subset
// decoder agreement.
func TestQuickMarginalInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(91))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 100 + r.Intn(2000)
		n := 2 + r.Intn(6)
		card := make([]int, n)
		for i := range card {
			card[i] = 2 + r.Intn(3)
		}
		d := dataset.New(m, card)
		d.UniformIndependent(uint64(seed)+7, 2)
		pt, _, err := Build(d, Options{P: 1 + r.Intn(4)})
		if err != nil {
			return false
		}
		// Random subset of 1..min(3,n) distinct variables.
		perm := r.Perm(n)
		k := 1 + r.Intn(min(3, n))
		vars := perm[:k]
		mg := pt.Marginalize(vars, 1+r.Intn(4))
		if mg.Total() != uint64(m) {
			return false
		}
		// Summing any kept variable's 1-D marginal out of the joint must
		// match direct marginalization.
		keep := r.Intn(k)
		oneD := mg.SumOver(keep)
		direct := pt.Marginalize([]int{vars[keep]}, 2)
		for c := range oneD.Counts {
			if oneD.Counts[c] != direct.Counts[c] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMISchedulesAgree: all four schedules produce identical MI
// matrices on random tables.
func TestQuickMISchedulesAgree(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(92))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 200 + r.Intn(2000)
		n := 2 + r.Intn(6)
		d := dataset.NewUniformCard(m, n, 2+r.Intn(3))
		d.UniformIndependent(uint64(seed)+13, 2)
		pt, _, err := Build(d, Options{P: 1 + r.Intn(4)})
		if err != nil {
			return false
		}
		p := 1 + r.Intn(4)
		ref := pt.AllPairsMI(p, MIFused)
		for _, sch := range []MISchedule{MIPartitionParallel, MIPairParallel, MIPairDynamic} {
			got := pt.AllPairsMI(p, sch)
			if !matricesEqual(got, ref, 1e-12) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializationRoundTrip: random tables survive WriteTo/ReadTable
// bit-exactly.
func TestQuickSerializationRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(93))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := r.Intn(2000) // zero-sample tables round trip too
		n := 1 + r.Intn(7)
		card := make([]int, n)
		for i := range card {
			card[i] = 2 + r.Intn(5)
		}
		d := dataset.New(m, card)
		d.UniformIndependent(uint64(seed)+29, 2)
		pt, _, err := Build(d, Options{P: 1 + r.Intn(4)})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := pt.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadTable(&buf, 1+r.Intn(4))
		if err != nil {
			return false
		}
		return back.Equal(pt) && back.NumSamples() == pt.NumSamples()
	}, cfg); err != nil {
		t.Error(err)
	}
}
