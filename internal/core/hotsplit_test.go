package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/spsc"
)

// The hot-split suite pins the skew-adaptive write path's contract: the
// merged table is bit-identical to the non-split build (and the sequential
// oracle) for every configuration, the split accounting balances
// (SplitMerges == SplitKeys) without disturbing the foreign-key identity,
// and fault plans keep their meaning on both write paths.

func zipfData(t testing.TB, m, n, r int, seed uint64, skew float64) *dataset.Dataset {
	t.Helper()
	d := dataset.NewUniformCard(m, n, r)
	d.ZipfRows(seed, skew, 4)
	return d
}

func assertSplitInvariant(t *testing.T, st Stats) {
	t.Helper()
	if st.SplitMerges != st.SplitKeys {
		t.Fatalf("split invariant violated: SplitMerges=%d != SplitKeys=%d", st.SplitMerges, st.SplitKeys)
	}
}

func TestHotSplitBitIdenticalAcrossConfigs(t *testing.T) {
	for _, skew := range []float64{1.2, 2.0} {
		d := zipfData(t, 20000, 8, 3, 17, skew)
		ref, err := BuildSequential(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 4, 8} {
			for _, q := range []spsc.Kind{spsc.KindChunked, spsc.KindRing, spsc.KindMutex} {
				pt, st, err := BuildCtx(context.Background(), d, Options{P: p, Queue: q, HotSplit: true})
				if err != nil {
					t.Fatalf("skew=%.1f P=%d queue=%v: %v", skew, p, q, err)
				}
				if !pt.Equal(ref) {
					t.Fatalf("skew=%.1f P=%d queue=%v: hot-split table differs from oracle", skew, p, q)
				}
				assertStatsInvariant(t, st)
				assertSplitInvariant(t, st)
				// The hot ranks of a skew-2.0 stream must actually trip the
				// promotion threshold once there is cross-worker traffic.
				if skew >= 2.0 && p >= 4 && st.SplitKeys == 0 {
					t.Fatalf("skew=%.1f P=%d queue=%v: no key was promoted", skew, p, q)
				}
				if p == 1 && st.SplitKeys != 0 {
					t.Fatalf("P=1 promoted %d keys; splitting needs foreign traffic", st.SplitKeys)
				}
			}
		}
	}
}

func TestHotSplitNumPartitionsMatchesSequential(t *testing.T) {
	d := zipfData(t, 20000, 8, 3, 23, 1.5)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	// Partition counts above P (including a deliberately non-multiple one)
	// exercise the cyclic home deal and the remapped worker paths — at P=1
	// too, where the whole-block fast path must yield to per-home routing;
	// hot-split must compose with all of it.
	for _, p := range []int{1, 4} {
		for _, nparts := range []int{0, 8, 13, 32} {
			for _, hs := range []bool{false, true} {
				pt, st, err := BuildCtx(context.Background(), d,
					Options{P: p, NumPartitions: nparts, HotSplit: hs})
				if err != nil {
					t.Fatalf("P=%d nparts=%d hot-split=%v: %v", p, nparts, hs, err)
				}
				if !pt.Equal(ref) {
					t.Fatalf("P=%d nparts=%d hot-split=%v: table differs from oracle", p, nparts, hs)
				}
				assertStatsInvariant(t, st)
				assertSplitInvariant(t, st)
				want := nparts
				if want < p {
					want = p
				}
				if got := pt.Partitions(); got != want {
					t.Fatalf("P=%d nparts=%d: table has %d partitions, want %d", p, nparts, got, want)
				}
				// Keys must actually live in their home partition (dense
				// lattice tables and the rebalancer's histogram depend on
				// it), not merely sum correctly across partitions.
				if want > 1 {
					var occupied int
					for _, m := range pt.PartitionMass() {
						if m > 0 {
							occupied++
						}
					}
					if occupied < 2 {
						t.Fatalf("P=%d nparts=%d: all mass in one partition — home routing bypassed", p, nparts)
					}
				}
			}
		}
	}
	// The dense direct-addressing table restricts each partition to its
	// modulo lattice, so misrouted keys are structurally impossible to
	// store — the strictest check that per-home routing holds at every
	// worker count.
	for _, p := range []int{1, 4} {
		pt, _, err := BuildCtx(context.Background(), d,
			Options{P: p, NumPartitions: 8, Table: TableDense})
		if err != nil {
			t.Fatalf("dense P=%d nparts=8: %v", p, err)
		}
		if !pt.Equal(ref) {
			t.Fatalf("dense P=%d nparts=8: table differs from oracle", p)
		}
	}
}

// TestChaosHotSplitPanicEquivalence pins that panic-style faults are
// path-independent: stage panics fire at per-worker occurrence zero, before
// any classification happens, so a plan containing only panic points must
// make the split and non-split builds fail identically — or succeed with
// bit-identical tables.
func TestChaosHotSplitPanicEquivalence(t *testing.T) {
	d := zipfData(t, 20000, 8, 3, 19, 1.5)
	base := runtime.NumGoroutine()
	for _, seed := range chaosSeeds(t) {
		type outcome struct {
			pt  *PotentialTable
			st  Stats
			err error
		}
		var outs [2]outcome
		for i, hs := range []bool{false, true} {
			plan := faultinject.NewPlan(seed).
				WithRate(faultinject.PanicStage1, 0.1).
				WithRate(faultinject.PanicStage2, 0.1)
			restore := faultinject.Activate(plan)
			outs[i].pt, outs[i].st, outs[i].err = BuildCtx(context.Background(), d, Options{P: 4, HotSplit: hs})
			restore()
		}
		plain, split := outs[0], outs[1]
		if (plain.err == nil) != (split.err == nil) {
			t.Fatalf("seed %d: non-split err %v, hot-split err %v — panic plans diverged", seed, plain.err, split.err)
		}
		if plain.err == nil {
			if !split.pt.Equal(plain.pt) {
				t.Fatalf("seed %d: hot-split table differs from non-split under the same plan", seed)
			}
			assertStatsInvariant(t, plain.st)
			assertStatsInvariant(t, split.st)
			assertSplitInvariant(t, split.st)
		}
		requireNoGoroutineLeak(t, base)
	}
}

// TestChaosHotSplitQueuePushFailContained covers the fault point splitting
// deliberately changes: promoted keys skip the queue-push fault (fewer
// events, never reordered), so the split build's fault sequence is a
// subsequence of the legacy one and exact equivalence cannot be asserted.
// What must hold instead: each injected failure surfaces as a clean
// classified error with no leaked goroutine, and a build the plan misses is
// still bit-identical with balanced accounting.
func TestChaosHotSplitQueuePushFailContained(t *testing.T) {
	d := zipfData(t, 20000, 8, 3, 29, 1.5)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for _, seed := range chaosSeeds(t) {
		plan := faultinject.NewPlan(seed).WithRate(faultinject.QueuePushFail, 0.0005)
		restore := faultinject.Activate(plan)
		pt, st, err := BuildCtx(context.Background(), d, Options{P: 4, HotSplit: true})
		restore()
		if err != nil {
			if !containsOverflow(err.Error()) {
				t.Fatalf("seed %d: injected push failure surfaced as %v, want overflow error", seed, err)
			}
		} else {
			if !pt.Equal(ref) {
				t.Fatalf("seed %d: surviving hot-split build differs from oracle", seed)
			}
			assertStatsInvariant(t, st)
			assertSplitInvariant(t, st)
		}
		requireNoGoroutineLeak(t, base)
	}
}

func containsOverflow(s string) bool {
	for i := 0; i+8 <= len(s); i++ {
		if s[i:i+8] == "overflow" {
			return true
		}
	}
	return false
}

// TestBuilderRebalanceNeedsPartitionGranularity documents why NumPartitions
// exists: with one home per worker, LPT can only permute owners — each
// worker ends up holding exactly one home again — so the imbalance cannot
// move and Rebalance must report itself a no-op.
func TestBuilderRebalanceNeedsPartitionGranularity(t *testing.T) {
	d := zipfData(t, 20000, 8, 3, 31, 2.0)
	codec, err := d.Codec()
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(codec, 0, Options{P: 4})
	if err := b.AddBlockCtx(context.Background(), datasetRows(d)); err != nil {
		t.Fatal(err)
	}
	st := b.Rebalance()
	if st.After != st.Before {
		t.Fatalf("P-partition rebalance changed imbalance %.3f → %.3f; with one home per worker it must be a permutation", st.Before, st.After)
	}
}

// TestBuilderRebalanceSpreadsSkewedMass is the tentpole's balancing claim:
// with more homes than workers and a skewed stream, Rebalance re-homes
// partitions, genuinely lowers the per-owner imbalance, and later blocks
// keep producing a table bit-identical to the sequential oracle.
func TestBuilderRebalanceSpreadsSkewedMass(t *testing.T) {
	d := zipfData(t, 30000, 8, 3, 37, 2.0)
	codec, err := d.Codec()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	rows := datasetRows(d)
	for _, hs := range []bool{false, true} {
		b := NewBuilder(codec, 0, Options{P: 4, NumPartitions: 32, HotSplit: hs})
		if err := b.AddBlockCtx(context.Background(), rows[:len(rows)/2]); err != nil {
			t.Fatal(err)
		}
		st := b.Rebalance()
		if st.Moved == 0 {
			t.Fatalf("hot-split=%v: skew-2.0 mass moved no partitions (before=%.3f)", hs, st.Before)
		}
		if st.After >= st.Before {
			t.Fatalf("hot-split=%v: rebalance did not improve imbalance: %.3f → %.3f", hs, st.Before, st.After)
		}
		if got := b.OwnerImbalance(); got != st.After {
			t.Fatalf("hot-split=%v: OwnerImbalance() = %.3f, rebalance reported %.3f", hs, got, st.After)
		}
		if err := b.AddBlockCtx(context.Background(), rows[len(rows)/2:]); err != nil {
			t.Fatal(err)
		}
		pt, bst := b.Finalize()
		if !pt.Equal(ref) {
			t.Fatalf("hot-split=%v: post-rebalance table differs from oracle", hs)
		}
		assertStatsInvariant(t, bst)
		assertSplitInvariant(t, bst)
	}
}

func datasetRows(d *dataset.Dataset) [][]uint8 {
	rows := make([][]uint8, d.NumSamples())
	for i := range rows {
		rows[i] = d.Row(i)
	}
	return rows
}

// TestRebalanceRacingFreeze drives PotentialTable.Rebalance against
// concurrent FreezeCtx calls and snapshot readers under -race: both
// serialize on the table's structural lock, so no interleaving may corrupt
// content or trip the race detector.
func TestRebalanceRacingFreeze(t *testing.T) {
	d := zipfData(t, 20000, 8, 3, 41, 1.5)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(3)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				pt.Rebalance(2 + (g+i)%7)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := pt.FreezeCtx(ctx, 2); err != nil {
					t.Errorf("FreezeCtx: %v", err)
					return
				}
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pt.Get(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if !pt.Equal(ref) {
		t.Fatal("table content corrupted by Rebalance/Freeze race")
	}
}
