package core

import (
	"testing"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/obs"
)

// The observability acceptance bar: construction throughput with
// instrumentation disabled (Options.Obs == nil) must stay within noise of
// the pre-instrumentation baseline — the primitives aggregate per worker
// in plain locals and only consult the registry once per build, so the
// disabled path costs a handful of nil checks. Compare:
//
//	go test ./internal/core -bench 'BuildObs' -benchtime 5x
//
// BenchmarkBuildObsDisabled vs BenchmarkBuildObsEnabled measures the cost
// of recording; Disabled vs the historical BenchmarkBuild numbers (or a
// checkout of the previous commit) measures the cost of having the hooks
// at all.
func benchmarkBuild(b *testing.B, reg *obs.Registry) {
	const m, n, r = 200000, 12, 2
	d := dataset.NewUniformCard(m, n, r)
	d.UniformIndependent(77, 4)
	codec, err := d.Codec()
	if err != nil {
		b.Fatal(err)
	}
	keys := d.EncodeKeys(codec, 4)
	b.SetBytes(int64(m * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := BuildKeys(KeySourceFromSlice(keys), codec, len(keys), Options{P: 4, Obs: reg})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildObsDisabled(b *testing.B) { benchmarkBuild(b, nil) }

func BenchmarkBuildObsEnabled(b *testing.B) { benchmarkBuild(b, obs.NewRegistry()) }
