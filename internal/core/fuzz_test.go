package core

import (
	"bytes"
	"testing"

	"waitfreebn/internal/dataset"
)

// FuzzReadTable: arbitrary bytes must never panic the table reader — they
// either parse to a valid table or return an error. Run with
// `go test -fuzz FuzzReadTable ./internal/core` for continuous fuzzing;
// under plain `go test` the seed corpus below runs as regression tests.
func FuzzReadTable(f *testing.F) {
	// Seed with a valid table and mutations of it.
	d := dataset.NewUniformCard(500, 5, 2)
	d.UniformIndependent(1, 2)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pt.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("WFBN1\n"))
	f.Add([]byte("WFBN1\n\x01\x02\x00\x00"))
	mutated := append([]byte(nil), valid...)
	for i := 6; i < len(mutated); i += 7 {
		mutated[i] ^= 0xFF
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := ReadTable(bytes.NewReader(data), 2)
		if err == nil && pt == nil {
			t.Fatal("nil table with nil error")
		}
		if err == nil {
			// Whatever parsed must be internally consistent.
			if pt.Total() != pt.NumSamples() {
				t.Fatalf("parsed table inconsistent: total %d, m %d", pt.Total(), pt.NumSamples())
			}
		}
	})
}
