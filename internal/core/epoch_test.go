package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"waitfreebn/internal/encoding"
)

func TestSnapshotRefcountLifecycle(t *testing.T) {
	pt := NewPotentialTable(mustCodec(t, []int{2, 2}), nil, 0)
	released := 0
	s := NewSnapshot(7, pt, func() { released++ })
	if s.Epoch() != 7 {
		t.Fatalf("Epoch() = %d, want 7", s.Epoch())
	}
	if s.Refs() != 1 || s.Released() {
		t.Fatalf("fresh snapshot refs = %d released = %v", s.Refs(), s.Released())
	}
	if !s.Acquire() {
		t.Fatal("Acquire on live snapshot failed")
	}
	if s.Table() != pt {
		t.Fatal("Table() did not return the published table")
	}
	s.Retire() // publisher drops; reader still holds
	if s.Released() {
		t.Fatal("snapshot drained while a reader holds a reference")
	}
	if s.Table() != pt {
		t.Fatal("Table() unavailable to a reader after Retire")
	}
	s.Release()
	if released != 1 {
		t.Fatalf("onRelease ran %d times, want 1", released)
	}
	if !s.Released() {
		t.Fatal("snapshot not drained after final release")
	}
	if s.Acquire() {
		t.Fatal("Acquire succeeded on a drained snapshot")
	}
}

func TestSnapshotTablePanicsAfterRelease(t *testing.T) {
	pt := NewPotentialTable(mustCodec(t, []int{2, 2}), nil, 0)
	s := NewSnapshot(1, pt, nil)
	s.Retire()
	defer func() {
		if recover() == nil {
			t.Fatal("Table() after full release did not panic")
		}
	}()
	s.Table()
}

func TestSnapshotReleaseUnderflowPanics(t *testing.T) {
	s := NewSnapshot(1, NewPotentialTable(mustCodec(t, []int{2}), nil, 0), nil)
	s.Retire()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Release did not panic")
		}
	}()
	s.Release()
}

// TestSnapshotConcurrentAcquireRelease hammers the refcount from many
// goroutines while the publisher retires mid-stream: the release hook must
// run exactly once, and no goroutine that won Acquire may ever observe a
// severed table.
func TestSnapshotConcurrentAcquireRelease(t *testing.T) {
	pt := NewPotentialTable(mustCodec(t, []int{2, 2}), nil, 0)
	var releases atomic.Int64
	s := NewSnapshot(3, pt, func() { releases.Add(1) })

	const readers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if !s.Acquire() {
					return // drained: valid terminal state
				}
				if s.Table() == nil {
					t.Error("Table() nil while holding a reference")
				}
				s.Release()
			}
		}()
	}
	s.Retire()
	wg.Wait()
	if !s.Released() {
		t.Fatalf("refs = %d after all readers finished, want 0", s.Refs())
	}
	if got := releases.Load(); got != 1 {
		t.Fatalf("onRelease ran %d times, want 1", got)
	}
}

func mustCodec(t *testing.T, card []int) *encoding.Codec {
	t.Helper()
	codec, err := encoding.NewCodec(card)
	if err != nil {
		t.Fatal(err)
	}
	return codec
}

// TestBuilderSnapshotDetached checks the epoch primitive end to end: a
// snapshot equals a batch build over the prefix it captured, keeps its
// contents while the builder ingests more blocks, and the next snapshot
// reflects the longer prefix — with every table operation working on the
// detached (partition-free) snapshot tables.
func TestBuilderSnapshotDetached(t *testing.T) {
	ctx := context.Background()
	codec := mustCodec(t, []int{2, 3, 2})
	rowsA := [][]uint8{{0, 0, 0}, {1, 2, 1}, {0, 1, 0}, {1, 2, 1}}
	rowsB := [][]uint8{{0, 0, 1}, {1, 1, 1}, {0, 0, 1}}

	b := NewBuilder(codec, 0, Options{P: 2})
	if err := b.AddBlockCtx(ctx, rowsA); err != nil {
		t.Fatal(err)
	}
	snapA, stA, err := b.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !snapA.Frozen() {
		t.Fatal("snapshot table is not frozen")
	}
	if stA.Entries != snapA.Len() {
		t.Fatalf("FreezeStats.Entries = %d, Len() = %d", stA.Entries, snapA.Len())
	}

	refA := buildFromRows(t, codec, rowsA)
	if !snapA.Equal(refA) {
		t.Fatal("snapshot A differs from batch build over the same rows")
	}
	if snapA.NumSamples() != uint64(len(rowsA)) || snapA.Total() != uint64(len(rowsA)) {
		t.Fatalf("snapshot A m = %d total = %d, want %d", snapA.NumSamples(), snapA.Total(), len(rowsA))
	}

	// Ingest more; snapshot A must not move.
	if err := b.AddBlockCtx(ctx, rowsB); err != nil {
		t.Fatal(err)
	}
	if !snapA.Equal(refA) {
		t.Fatal("snapshot A changed after the builder ingested another block")
	}

	snapB, _, err := b.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	refB := buildFromRows(t, codec, append(append([][]uint8{}, rowsA...), rowsB...))
	if !snapB.Equal(refB) {
		t.Fatal("snapshot B differs from batch build over all rows")
	}

	// Detached-table surface: sizes, partitions, marginals.
	if got, want := snapB.Partitions(), 2; got != want {
		t.Fatalf("Partitions() = %d, want %d", got, want)
	}
	sizes := snapB.PartitionSizes()
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != snapB.Len() {
		t.Fatalf("partition sizes sum to %d, Len() = %d", sum, snapB.Len())
	}
	mg, err := snapB.MarginalizeCtx(ctx, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refB.MarginalizeCtx(ctx, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range ref.Counts {
		if mg.Counts[c] != ref.Counts[c] {
			t.Fatalf("marginal cell %d = %d, want %d", c, mg.Counts[c], ref.Counts[c])
		}
	}

	// The builder still finalizes to the full table afterwards.
	final, _ := b.Finalize()
	if !final.Equal(refB) {
		t.Fatal("finalized table differs from batch build after snapshots")
	}
	if _, _, err := b.SnapshotCtx(ctx, 1); err == nil {
		t.Fatal("SnapshotCtx after Finalize did not fail")
	}
}

func TestBuilderSnapshotEmpty(t *testing.T) {
	codec := mustCodec(t, []int{2, 2})
	b := NewBuilder(codec, 0, Options{P: 2})
	snap, _, err := b.SnapshotCtx(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 0 || snap.NumSamples() != 0 || snap.Total() != 0 {
		t.Fatalf("empty snapshot: len=%d m=%d total=%d", snap.Len(), snap.NumSamples(), snap.Total())
	}
	mg, err := snap.MarginalizeCtx(context.Background(), []int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Counts[0] != 0 || mg.Counts[1] != 0 {
		t.Fatalf("empty snapshot marginal = %v", mg.Counts)
	}
}

func buildFromRows(t *testing.T, codec *encoding.Codec, rows [][]uint8) *PotentialTable {
	t.Helper()
	b := NewBuilder(codec, 0, Options{P: 2})
	if err := b.AddBlockCtx(context.Background(), rows); err != nil {
		t.Fatal(err)
	}
	pt, _ := b.Finalize()
	return pt
}
