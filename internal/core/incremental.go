package core

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/sched"
)

// Builder is the incremental form of the wait-free construction primitive:
// training data arrives in blocks (e.g. chunks of a file too large to hold
// in memory) and each AddBlock runs the two-stage protocol over just that
// block, accumulating into the same partition tables. The final table is
// identical to a one-shot Build over the concatenated blocks.
//
// A Builder retains its P partition tables and P×(P-1) queues across
// blocks, so per-block overhead is two barrier episodes, not re-allocation.
// Builder methods must be called from a single goroutine; the parallelism
// is internal.
type Builder struct {
	codec   *encoding.Codec
	opts    Options
	parts   []hashtable.Counter
	queues  queueMatrix
	owner   func(uint64) int
	barrier *sched.Barrier
	stats   Stats
	done    bool
	// failed poisons the builder after a block that errored or was
	// cancelled mid-protocol: the barrier may be aborted and the queues
	// and tables partially updated, so no consistent continuation exists.
	failed error
}

// NewBuilder prepares an incremental builder for data with the codec's
// variable layout. Options follow the same defaults as Build; the ring
// capacity default sizes for blocks of up to blockHint rows (0 = 64k).
func NewBuilder(codec *encoding.Codec, blockHint int, opts Options) *Builder {
	if blockHint <= 0 {
		blockHint = 1 << 16
	}
	opts, hintCapped := opts.withDefaults(blockHint, codec.KeySpace())
	b := &Builder{
		codec:   codec,
		opts:    opts,
		parts:   make([]hashtable.Counter, opts.P),
		owner:   opts.Partition.partitioner(opts.P, codec.KeySpace()),
		barrier: sched.NewBarrier(opts.P),
	}
	for i := range b.parts {
		b.parts[i] = newPartTable(opts.Table, opts.Partition, opts.TableHint, opts.P, codec.KeySpace(), i)
	}
	b.queues = newQueueMatrix(opts.P, opts.Queue, opts.RingCapacity, opts.NoSpill)
	b.stats.P = opts.P
	b.stats.WriteBatch = opts.WriteBatch
	b.stats.TableHint = opts.TableHint
	b.stats.TableHintCapped = hintCapped
	return b
}

// AddBlock counts a block of rows (each a state string of the codec's
// arity) into the table using the two-stage wait-free protocol.
//
// Deprecated: use AddBlockCtx.
func (b *Builder) AddBlock(rows [][]uint8) error {
	return b.AddBlockCtx(context.Background(), rows)
}

// AddBlockCtx is AddBlock under the fault-tolerant execution contract:
// cancellation and worker panics surface as errors with all workers joined,
// after which the builder is poisoned (see addKeys).
func (b *Builder) AddBlockCtx(ctx context.Context, rows [][]uint8) error {
	return b.addKeys(ctx, len(rows),
		func(i int) uint64 { return b.codec.Encode(rows[i]) },
		func(lo, hi int, dst []uint64) { b.codec.EncodeRows(rows[lo:hi], dst) })
}

// AddKeys counts a block of pre-encoded keys.
//
// Deprecated: use AddKeysCtx.
func (b *Builder) AddKeys(keys []uint64) error {
	return b.AddKeysCtx(context.Background(), keys)
}

// AddKeysCtx is AddKeys under the fault-tolerant execution contract.
func (b *Builder) AddKeysCtx(ctx context.Context, keys []uint64) error {
	return b.addKeys(ctx, len(keys),
		func(i int) uint64 { return keys[i] },
		func(lo, hi int, dst []uint64) { copy(dst, keys[lo:hi]) })
}

func (b *Builder) addKeys(ctx context.Context, m int, source KeySource, block blockSource) error {
	if b.done {
		return fmt.Errorf("core: Builder used after Finalize")
	}
	if b.failed != nil {
		return fmt.Errorf("core: Builder poisoned by earlier failed block: %w", b.failed)
	}
	p := b.opts.P
	ws := make([]workerStats, p)
	if err := runTwoStage(ctx, p, twoStage{
		m:          m,
		source:     source,
		block:      block,
		parts:      b.parts,
		queues:     b.queues,
		owner:      b.owner,
		barrier:    b.barrier,
		ringCap:    b.opts.RingCapacity,
		writeBatch: b.opts.WriteBatch,
		keyBits:    keyFieldBits(b.codec.KeySpace()),
	}, ws); err != nil {
		// The block died mid-protocol: the barrier may be poisoned, some
		// queues may hold undrained keys, and the tables hold a partial
		// count. None of that can be rolled back, so poison the builder.
		b.failed = err
		return err
	}
	var s1, s2, bw time.Duration
	for w := range ws {
		b.stats.LocalKeys += ws[w].local
		b.stats.ForeignKeys += ws[w].foreign
		b.stats.Stage2Pops += ws[w].pops
		b.stats.BatchFlushes += ws[w].flushes
		b.stats.ForeignDupes += ws[w].dupes
		// Stage times accumulate the per-block critical path: the sum over
		// blocks of the slowest worker, i.e. the wall clock spent in each
		// stage across the whole stream.
		if ws[w].stage1 > s1 {
			s1 = ws[w].stage1
		}
		if ws[w].stage2 > s2 {
			s2 = ws[w].stage2
		}
		if ws[w].barrier > bw {
			bw = ws[w].barrier
		}
	}
	b.stats.Stage1Time += s1
	b.stats.Stage2Time += s2
	b.stats.BarrierWait += bw
	if r := b.opts.Obs; r != nil {
		r.Histogram(metricStageHist, "stage", "1").Observe(s1)
		r.Histogram(metricStageHist, "stage", "2").Observe(s2)
		r.Histogram(metricBarrierHist).Observe(bw)
	}
	return nil
}

// Err returns the error that poisoned the builder, or nil if every block
// so far succeeded.
func (b *Builder) Err() error { return b.failed }

// ImportTable seeds the builder with the counts of an existing table — the
// recovery primitive: a restart loads the last checkpointed epoch table,
// imports it, and replays only the WAL tail, as if every original row had
// been streamed through AddBlock. Each key is routed to its owning partition
// (serialized tables carry no partition assignment), so subsequent blocks
// merge into the same entries and a later Snapshot/Finalize is bit-identical
// to an uninterrupted build over the full row stream.
//
// The table's rows count as local keys: no inter-worker hand-off happened,
// and Samples() grows by t.NumSamples(). The table's codec must have the
// same variable cardinalities as the builder's.
func (b *Builder) ImportTable(t *PotentialTable) error {
	if b.done {
		return fmt.Errorf("core: Builder used after Finalize")
	}
	if b.failed != nil {
		return fmt.Errorf("core: Builder poisoned by earlier failed block: %w", b.failed)
	}
	want, got := b.codec.Cardinalities(), t.codec.Cardinalities()
	if len(want) != len(got) {
		return fmt.Errorf("core: ImportTable codec mismatch: %d variables, builder has %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("core: ImportTable codec mismatch: variable %d cardinality %d, builder has %d", i, got[i], want[i])
		}
	}
	// Gather each partition's (key, count) pairs first, then insert them in
	// bit-reversed buffer order rather than streaming t.Range straight into
	// Add. Iterating one open-addressing table into another correlates
	// insertion order with destination home slots (both address by the same
	// mixer, and the smaller table's mask is a suffix of the larger's), so
	// keys arrive in ascending-home sweeps that pile linear-probe runs up
	// into quadratic territory near the load threshold — a 40x slowdown at
	// checkpoint-recovery scale. Visiting the buffer in van-der-Corput
	// (bit-reversed index) order scatters consecutive homes across the whole
	// table for O(n) extra work; the resulting key→count mapping is
	// order-independent either way. Partitions are single-owner, so they
	// load in parallel, each pre-sized to its final occupancy.
	p := b.opts.P
	imp := make([]importBuf, p)
	t.Range(func(key, count uint64) bool {
		w := b.owner(key)
		imp[w].keys = append(imp[w].keys, key)
		imp[w].counts = append(imp[w].counts, count)
		return true
	})
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		if len(imp[w].keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(dst hashtable.Counter, buf importBuf) {
			defer wg.Done()
			if r, ok := dst.(interface{ Reserve(n int) }); ok {
				r.Reserve(dst.Len() + len(buf.keys))
			}
			n := uint64(len(buf.keys))
			logn := uint(bits.Len64(n - 1))
			for j := uint64(0); j < uint64(1)<<logn; j++ {
				if i := bits.Reverse64(j) >> (64 - logn); i < n {
					dst.Add(buf.keys[i], buf.counts[i])
				}
			}
		}(b.parts[w], imp[w])
	}
	wg.Wait()
	b.stats.LocalKeys += t.NumSamples()
	return nil
}

// importBuf is one partition's ImportTable staging area: parallel key/count
// slices in source-iteration order, visited bit-reversed at insert time.
type importBuf struct {
	keys   []uint64
	counts []uint64
}

// SnapshotCtx captures an immutable frozen-columnar PotentialTable of
// everything counted so far WITHOUT finalizing the builder: the quiescent
// partition hashtables are drained into a detached columnar snapshot
// (carrying no reference to the live partitions), so the builder can keep
// accumulating blocks for the next epoch while readers scan this one. This
// is the epoch-producing primitive the serving layer's
// build → freeze → publish → retire cycle runs on.
//
// Between AddBlock calls every queue is drained and every partition has a
// quiescent single writer — the wait-free contract's hand-off point — which
// is exactly when SnapshotCtx must run: the builder and the snapshot must
// not be used concurrently from different goroutines without external
// serialization (the same single-goroutine rule as every Builder method).
// The snapshot is equal to Finalize's table at this point in the stream.
func (b *Builder) SnapshotCtx(ctx context.Context, p int) (*PotentialTable, FreezeStats, error) {
	if b.done {
		return nil, FreezeStats{}, fmt.Errorf("core: Builder used after Finalize")
	}
	if b.failed != nil {
		return nil, FreezeStats{}, fmt.Errorf("core: Builder poisoned by earlier failed block: %w", b.failed)
	}
	// Freeze through a scratch table over the live partitions, then detach:
	// the returned table holds only the columnar copy, so later AddBlock
	// mutations of b.parts cannot be observed through it.
	scratch := &PotentialTable{codec: b.codec, parts: b.parts, m: b.Samples()}
	scratch.SetObs(b.opts.Obs)
	st, err := scratch.FreezeCtx(ctx, p)
	if err != nil {
		return nil, FreezeStats{}, err
	}
	out := &PotentialTable{codec: b.codec, m: scratch.m}
	out.SetObs(b.opts.Obs)
	out.frozen.Store(scratch.frozen.Load())
	return out, st, nil
}

// Finalize returns the accumulated potential table and construction stats.
// The builder cannot be used afterwards.
func (b *Builder) Finalize() (*PotentialTable, Stats) {
	b.done = true
	b.stats.SpilledKeys = b.queues.spilledKeys()
	pt := NewPotentialTable(b.codec, b.parts, b.stats.LocalKeys+b.stats.Stage2Pops)
	pt.SetObs(b.opts.Obs)
	b.stats.DistinctKeys = pt.Len()
	if r := b.opts.Obs; r != nil {
		r.Counter(metricBuilds).Inc()
		r.Counter(metricLocalKeys).Add(b.stats.LocalKeys)
		r.Counter(metricForeignKeys).Add(b.stats.ForeignKeys)
		r.Counter(metricStage2Pops).Add(b.stats.Stage2Pops)
		r.Gauge(metricTableHint).Set(float64(b.stats.TableHint))
		if b.stats.TableHintCapped {
			r.Counter(metricTableHintCapped).Inc()
		}
		publishQueueMetrics(r, b.stats, b.queues)
		publishPartitionMetrics(r, b.parts)
	}
	return pt, b.stats
}

// Samples returns how many rows have been counted so far.
func (b *Builder) Samples() uint64 { return b.stats.LocalKeys + b.stats.Stage2Pops + pendingForeign(b) }

func pendingForeign(b *Builder) uint64 {
	// Between blocks all queues are drained, so foreign == pops; this
	// accounts for foreign keys stranded in queues by a failed block.
	return b.stats.ForeignKeys - b.stats.Stage2Pops
}
