package core

import (
	"fmt"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/sched"
)

// Builder is the incremental form of the wait-free construction primitive:
// training data arrives in blocks (e.g. chunks of a file too large to hold
// in memory) and each AddBlock runs the two-stage protocol over just that
// block, accumulating into the same partition tables. The final table is
// identical to a one-shot Build over the concatenated blocks.
//
// A Builder retains its P partition tables and P×(P-1) queues across
// blocks, so per-block overhead is two barrier episodes, not re-allocation.
// Builder methods must be called from a single goroutine; the parallelism
// is internal.
type Builder struct {
	codec   *encoding.Codec
	opts    Options
	parts   []hashtable.Counter
	queues  queueMatrix
	owner   func(uint64) int
	barrier *sched.Barrier
	stats   Stats
	done    bool
}

// NewBuilder prepares an incremental builder for data with the codec's
// variable layout. Options follow the same defaults as Build; the ring
// capacity default sizes for blocks of up to blockHint rows (0 = 64k).
func NewBuilder(codec *encoding.Codec, blockHint int, opts Options) *Builder {
	if blockHint <= 0 {
		blockHint = 1 << 16
	}
	opts = opts.withDefaults(blockHint, codec.KeySpace())
	b := &Builder{
		codec:   codec,
		opts:    opts,
		parts:   make([]hashtable.Counter, opts.P),
		owner:   opts.Partition.partitioner(opts.P, codec.KeySpace()),
		barrier: sched.NewBarrier(opts.P),
	}
	for i := range b.parts {
		b.parts[i] = opts.Table.new(opts.TableHint)
	}
	b.queues = newQueueMatrix(opts.P, opts.Queue, opts.RingCapacity)
	b.stats.P = opts.P
	return b
}

// AddBlock counts a block of rows (each a state string of the codec's
// arity) into the table using the two-stage wait-free protocol.
func (b *Builder) AddBlock(rows [][]uint8) error {
	return b.addKeys(len(rows), func(i int) uint64 { return b.codec.Encode(rows[i]) })
}

// AddKeys counts a block of pre-encoded keys.
func (b *Builder) AddKeys(keys []uint64) error {
	return b.addKeys(len(keys), func(i int) uint64 { return keys[i] })
}

func (b *Builder) addKeys(m int, source KeySource) error {
	if b.done {
		return fmt.Errorf("core: Builder used after Finalize")
	}
	p := b.opts.P
	spans := sched.BlockPartition(m, p)
	type ws struct {
		local, foreign, pops uint64
		err                  error
	}
	stats := make([]ws, p)
	sched.Run(p, func(w int) {
		span := spans[w]
		table := b.parts[w]
		outs := b.queues[w]
		for i := span.Lo; i < span.Hi; i++ {
			key := source(i)
			dst := b.owner(key)
			if dst == w {
				table.Inc(key)
				stats[w].local++
			} else {
				if !outs[dst].Push(key) {
					stats[w].err = fmt.Errorf("core: queue %d→%d overflow in incremental block", w, dst)
					break
				}
				stats[w].foreign++
			}
		}
		b.barrier.Wait()
		for src := 0; src < p; src++ {
			if src == w {
				continue
			}
			q := b.queues[src][w]
			for {
				key, ok := q.Pop()
				if !ok {
					break
				}
				table.Inc(key)
				stats[w].pops++
			}
		}
	})
	for w := range stats {
		if stats[w].err != nil {
			return stats[w].err
		}
		b.stats.LocalKeys += stats[w].local
		b.stats.ForeignKeys += stats[w].foreign
		b.stats.Stage2Pops += stats[w].pops
	}
	return nil
}

// Finalize returns the accumulated potential table and construction stats.
// The builder cannot be used afterwards.
func (b *Builder) Finalize() (*PotentialTable, Stats) {
	b.done = true
	pt := NewPotentialTable(b.codec, b.parts, b.stats.LocalKeys+b.stats.Stage2Pops)
	b.stats.DistinctKeys = pt.Len()
	return pt, b.stats
}

// Samples returns how many rows have been counted so far.
func (b *Builder) Samples() uint64 { return b.stats.LocalKeys + b.stats.Stage2Pops + pendingForeign(b) }

func pendingForeign(b *Builder) uint64 {
	// Between blocks all queues are drained, so foreign == pops; this
	// accounts for the (unreachable in practice) case of a failed block.
	return b.stats.ForeignKeys - b.stats.Stage2Pops
}
