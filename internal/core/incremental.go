package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/sched"
)

// Builder is the incremental form of the wait-free construction primitive:
// training data arrives in blocks (e.g. chunks of a file too large to hold
// in memory) and each AddBlock runs the two-stage protocol over just that
// block, accumulating into the same partition tables. The final table is
// identical to a one-shot Build over the concatenated blocks.
//
// A Builder retains its P partition tables and P×(P-1) queues across
// blocks, so per-block overhead is two barrier episodes, not re-allocation.
// Builder methods must be called from a single goroutine; the parallelism
// is internal.
type Builder struct {
	codec  *encoding.Codec
	opts   Options
	parts  []hashtable.Counter
	queues queueMatrix
	// home is the static key→partition mapping over NumPartitions homes;
	// homes[h] is the worker currently owning home partition h (cyclic
	// h mod P until Rebalance), and remapped caches whether homes
	// deviates from the one-partition-per-worker identity. parts stays
	// indexed by home across rebalances, so remapping moves ownership
	// without moving entries.
	home     func(uint64) int
	homes    []int
	remapped bool
	split    *splitState // hot-key splitting state; nil when disabled
	barrier  *sched.Barrier
	stats    Stats
	// Incremental re-freeze lineage (Options.Refreeze == FreezeIncremental):
	// delta[h] is home partition h's mutation log since the last snapshot,
	// prev the last published epoch's columnar table (clean partitions of
	// the next epoch alias its blocks), snapEpoch the monotonic snapshot
	// ordinal stamped into each epoch.
	delta     []*deltaPart
	prev      *frozenTable
	snapEpoch uint64
	done      bool
	// failed poisons the builder after a block that errored or was
	// cancelled mid-protocol: the barrier may be aborted and the queues
	// and tables partially updated, so no consistent continuation exists.
	failed error
}

// NewBuilder prepares an incremental builder for data with the codec's
// variable layout. Options follow the same defaults as Build; the ring
// capacity default sizes for blocks of up to blockHint rows (0 = 64k).
func NewBuilder(codec *encoding.Codec, blockHint int, opts Options) *Builder {
	if blockHint <= 0 {
		blockHint = 1 << 16
	}
	opts, hintCapped := opts.withDefaults(blockHint, codec.KeySpace())
	b := &Builder{
		codec:    codec,
		opts:     opts,
		parts:    make([]hashtable.Counter, opts.NumPartitions),
		home:     opts.Partition.partitioner(opts.NumPartitions, codec.KeySpace()),
		homes:    cyclicHomes(opts.NumPartitions, opts.P),
		remapped: opts.NumPartitions != opts.P,
		barrier:  sched.NewBarrier(opts.P),
	}
	if opts.HotSplit && opts.P > 1 && opts.WriteBatch > 1 {
		b.split = newSplitState(opts.P, opts.HotThreshold)
	}
	for i := range b.parts {
		b.parts[i] = newPartTable(opts.Table, opts.Partition, opts.TableHint, opts.NumPartitions, codec.KeySpace(), i)
	}
	if opts.Refreeze == FreezeIncremental {
		// Decorate each partition with a delta recorder. Logs start in the
		// overflowed state: the first snapshot drains everything regardless,
		// so capturing before it would be pure overhead.
		b.delta = make([]*deltaPart, len(b.parts))
		for i := range b.parts {
			b.delta[i] = &deltaPart{dirty: true, over: true}
			b.parts[i] = &recCounter{Counter: b.parts[i], d: b.delta[i]}
		}
	}
	b.queues = newQueueMatrix(opts.P, opts.Queue, opts.RingCapacity, opts.NoSpill)
	b.stats.P = opts.P
	b.stats.WriteBatch = opts.WriteBatch
	b.stats.TableHint = opts.TableHint
	b.stats.TableHintCapped = hintCapped
	return b
}

// AddBlock counts a block of rows (each a state string of the codec's
// arity) into the table using the two-stage wait-free protocol.
//
// Deprecated: use AddBlockCtx.
func (b *Builder) AddBlock(rows [][]uint8) error {
	return b.AddBlockCtx(context.Background(), rows)
}

// AddBlockCtx is AddBlock under the fault-tolerant execution contract:
// cancellation and worker panics surface as errors with all workers joined,
// after which the builder is poisoned (see addKeys).
func (b *Builder) AddBlockCtx(ctx context.Context, rows [][]uint8) error {
	return b.addKeys(ctx, len(rows),
		func(i int) uint64 { return b.codec.Encode(rows[i]) },
		func(lo, hi int, dst []uint64) { b.codec.EncodeRows(rows[lo:hi], dst) })
}

// AddKeys counts a block of pre-encoded keys.
//
// Deprecated: use AddKeysCtx.
func (b *Builder) AddKeys(keys []uint64) error {
	return b.AddKeysCtx(context.Background(), keys)
}

// AddKeysCtx is AddKeys under the fault-tolerant execution contract.
func (b *Builder) AddKeysCtx(ctx context.Context, keys []uint64) error {
	return b.addKeys(ctx, len(keys),
		func(i int) uint64 { return keys[i] },
		func(lo, hi int, dst []uint64) { copy(dst, keys[lo:hi]) })
}

func (b *Builder) addKeys(ctx context.Context, m int, source KeySource, block blockSource) error {
	if b.done {
		return fmt.Errorf("core: Builder used after Finalize")
	}
	if b.failed != nil {
		return fmt.Errorf("core: Builder poisoned by earlier failed block: %w", b.failed)
	}
	p := b.opts.P
	ws := make([]workerStats, p)
	if err := runTwoStage(ctx, p, twoStage{
		m:          m,
		source:     source,
		block:      block,
		parts:      b.parts,
		queues:     b.queues,
		home:       b.home,
		homes:      b.homes,
		remapped:   b.remapped,
		split:      b.split,
		barrier:    b.barrier,
		ringCap:    b.opts.RingCapacity,
		writeBatch: b.opts.WriteBatch,
		keyBits:    keyFieldBits(b.codec.KeySpace()),
	}, ws); err != nil {
		// The block died mid-protocol: the barrier may be poisoned, some
		// queues may hold undrained keys, and the tables hold a partial
		// count. None of that can be rolled back, so poison the builder.
		b.failed = err
		return err
	}
	var s1, s2, bw time.Duration
	for w := range ws {
		b.stats.LocalKeys += ws[w].local
		b.stats.ForeignKeys += ws[w].foreign
		b.stats.Stage2Pops += ws[w].pops
		b.stats.BatchFlushes += ws[w].flushes
		b.stats.ForeignDupes += ws[w].dupes
		b.stats.SplitKeys += ws[w].split
		b.stats.SplitMerges += ws[w].merges
		// Stage times accumulate the per-block critical path: the sum over
		// blocks of the slowest worker, i.e. the wall clock spent in each
		// stage across the whole stream.
		if ws[w].stage1 > s1 {
			s1 = ws[w].stage1
		}
		if ws[w].stage2 > s2 {
			s2 = ws[w].stage2
		}
		if ws[w].barrier > bw {
			bw = ws[w].barrier
		}
	}
	b.stats.Stage1Time += s1
	b.stats.Stage2Time += s2
	b.stats.BarrierWait += bw
	if r := b.opts.Obs; r != nil {
		r.Histogram(metricStageHist, "stage", "1").Observe(s1)
		r.Histogram(metricStageHist, "stage", "2").Observe(s2)
		r.Histogram(metricBarrierHist).Observe(bw)
	}
	return nil
}

// Err returns the error that poisoned the builder, or nil if every block
// so far succeeded.
func (b *Builder) Err() error { return b.failed }

// ImportTable seeds the builder with the counts of an existing table — the
// recovery primitive: a restart loads the last checkpointed epoch table,
// imports it, and replays only the WAL tail, as if every original row had
// been streamed through AddBlock. Each key is routed to its owning partition
// (serialized tables carry no partition assignment), so subsequent blocks
// merge into the same entries and a later Snapshot/Finalize is bit-identical
// to an uninterrupted build over the full row stream.
//
// The table's rows count as local keys: no inter-worker hand-off happened,
// and Samples() grows by t.NumSamples(). The table's codec must have the
// same variable cardinalities as the builder's.
func (b *Builder) ImportTable(t *PotentialTable) error {
	if b.done {
		return fmt.Errorf("core: Builder used after Finalize")
	}
	if b.failed != nil {
		return fmt.Errorf("core: Builder poisoned by earlier failed block: %w", b.failed)
	}
	want, got := b.codec.Cardinalities(), t.codec.Cardinalities()
	if len(want) != len(got) {
		return fmt.Errorf("core: ImportTable codec mismatch: %d variables, builder has %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("core: ImportTable codec mismatch: variable %d cardinality %d, builder has %d", i, got[i], want[i])
		}
	}
	// Gather each partition's (key, count) pairs first, then insert them in
	// bit-reversed buffer order rather than streaming t.Range straight into
	// Add. Iterating one open-addressing table into another correlates
	// insertion order with destination home slots (both address by the same
	// mixer, and the smaller table's mask is a suffix of the larger's), so
	// keys arrive in ascending-home sweeps that pile linear-probe runs up
	// into quadratic territory near the load threshold — a 40x slowdown at
	// checkpoint-recovery scale. Visiting the buffer in van-der-Corput
	// (bit-reversed index) order scatters consecutive homes across the whole
	// table for O(n) extra work; the resulting key→count mapping is
	// order-independent either way. Partitions are single-owner, so they
	// load in parallel, each pre-sized to its final occupancy.
	// Keys bucket by home partition, not by current owner: parts is indexed
	// by home, and a Rebalance between import and the next block must find
	// every key in parts[home(key)].
	// An import's mutation mass rivals the table itself, so a later merge
	// re-freeze could never beat a drain: abandon the delta logs up front
	// (dirty stays exact; only the delta detail is dropped).
	for _, dp := range b.delta {
		dp.forceFull()
	}
	imp := make([]importBuf, len(b.parts))
	t.Range(func(key, count uint64) bool {
		h := b.home(key)
		imp[h].keys = append(imp[h].keys, key)
		imp[h].counts = append(imp[h].counts, count)
		return true
	})
	var wg sync.WaitGroup
	for h := range b.parts {
		if len(imp[h].keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(dst hashtable.Counter, buf importBuf) {
			defer wg.Done()
			if r, ok := dst.(interface{ Reserve(n int) }); ok {
				r.Reserve(dst.Len() + len(buf.keys))
			}
			n := uint64(len(buf.keys))
			logn := uint(bits.Len64(n - 1))
			for j := uint64(0); j < uint64(1)<<logn; j++ {
				if i := bits.Reverse64(j) >> (64 - logn); i < n {
					dst.Add(buf.keys[i], buf.counts[i])
				}
			}
		}(b.parts[h], imp[h])
	}
	wg.Wait()
	b.stats.LocalKeys += t.NumSamples()
	return nil
}

// importBuf is one partition's ImportTable staging area: parallel key/count
// slices in source-iteration order, visited bit-reversed at insert time.
type importBuf struct {
	keys   []uint64
	counts []uint64
}

// SnapshotCtx captures an immutable frozen-columnar PotentialTable of
// everything counted so far WITHOUT finalizing the builder: the quiescent
// partition hashtables are drained into a detached columnar snapshot
// (carrying no reference to the live partitions), so the builder can keep
// accumulating blocks for the next epoch while readers scan this one. This
// is the epoch-producing primitive the serving layer's
// build → freeze → publish → retire cycle runs on.
//
// Between AddBlock calls every queue is drained and every partition has a
// quiescent single writer — the wait-free contract's hand-off point — which
// is exactly when SnapshotCtx must run: the builder and the snapshot must
// not be used concurrently from different goroutines without external
// serialization (the same single-goroutine rule as every Builder method).
// The snapshot is equal to Finalize's table at this point in the stream.
func (b *Builder) SnapshotCtx(ctx context.Context, p int) (*PotentialTable, FreezeStats, error) {
	if b.done {
		return nil, FreezeStats{}, fmt.Errorf("core: Builder used after Finalize")
	}
	if b.failed != nil {
		return nil, FreezeStats{}, fmt.Errorf("core: Builder poisoned by earlier failed block: %w", b.failed)
	}
	if b.opts.Refreeze == FreezeIncremental {
		return b.snapshotIncrementalCtx(ctx, p)
	}
	// Freeze through a scratch table over the live partitions, then detach:
	// the returned table holds only the columnar copy, so later AddBlock
	// mutations of b.parts cannot be observed through it.
	scratch := NewPotentialTable(b.codec, b.parts, b.Samples())
	scratch.SetObs(b.opts.Obs)
	st, err := scratch.FreezeCtx(ctx, p)
	if err != nil {
		return nil, FreezeStats{}, err
	}
	// Stamp the epoch ordinal: full-mode snapshots participate in the same
	// monotonic lineage (epoch-versioned caches key on it), they just never
	// reuse blocks. The snapshot has not escaped yet, so the write is
	// race-free.
	b.snapEpoch++
	scratch.frozen.Load().epoch = b.snapEpoch
	out := &PotentialTable{codec: b.codec, m: scratch.m}
	out.SetObs(b.opts.Obs)
	out.frozen.Store(scratch.frozen.Load())
	return out, st, nil
}

// Finalize returns the accumulated potential table and construction stats.
// The builder cannot be used afterwards.
func (b *Builder) Finalize() (*PotentialTable, Stats) {
	b.done = true
	b.stats.SpilledKeys = b.queues.spilledKeys()
	b.stats.DestQueueWords = b.queues.destWords()
	pt := NewPotentialTable(b.codec, b.parts, b.stats.LocalKeys+b.stats.Stage2Pops+b.stats.SplitMerges)
	pt.SetObs(b.opts.Obs)
	b.stats.DistinctKeys = pt.Len()
	if r := b.opts.Obs; r != nil {
		r.Counter(metricBuilds).Inc()
		r.Counter(metricLocalKeys).Add(b.stats.LocalKeys)
		r.Counter(metricForeignKeys).Add(b.stats.ForeignKeys)
		r.Counter(metricStage2Pops).Add(b.stats.Stage2Pops)
		r.Gauge(metricTableHint).Set(float64(b.stats.TableHint))
		if b.stats.TableHintCapped {
			r.Counter(metricTableHintCapped).Inc()
		}
		publishQueueMetrics(r, b.stats, b.queues)
		publishPartitionMetrics(r, b.parts)
	}
	return pt, b.stats
}

// Samples returns how many rows have been counted so far.
func (b *Builder) Samples() uint64 {
	return b.stats.LocalKeys + b.stats.Stage2Pops + pendingForeign(b) + b.stats.SplitKeys
}

func pendingForeign(b *Builder) uint64 {
	// Between blocks all queues are drained, so foreign == pops; this
	// accounts for foreign keys stranded in queues by a failed block.
	// (Split keys are accounted separately: SplitKeys, all of which are
	// merged between blocks, with the unmerged remainder of a failed block
	// likewise counted as accepted-but-stranded.)
	return b.stats.ForeignKeys - b.stats.Stage2Pops
}

// RebalanceStats reports one Builder.Rebalance decision.
type RebalanceStats struct {
	// Moved is how many home partitions were re-assigned to a different
	// owner (0 = the mapping was already optimal under LPT).
	Moved int `json:"moved"`
	// Before and After are the max/mean per-owner key mass (1.0 = flat)
	// under the old and new mapping, computed from the occupancy
	// histogram the partition tables already maintain.
	Before float64 `json:"before"`
	After  float64 `json:"after"`
}

// Rebalance re-maps the heaviest home partitions across owners using the
// per-partition occupancy histogram (total key mass per table), so that
// subsequent blocks spread the stage-1/stage-2 write work of a skewed key
// distribution more evenly. It uses deterministic LPT bin packing: homes
// in descending mass order each go to the least-loaded worker, with index
// ties broken low-first — under uniform mass this reproduces the cyclic
// initial deal, so Rebalance on balanced data is a no-op.
//
// Real balancing needs Options.NumPartitions > P: with exactly one home
// per worker LPT can only permute owners, so every worker ends up with one
// home and the imbalance is unchanged. With k×P homes the heaviest homes
// spread across owners and After can genuinely drop below Before.
//
// No table entry moves: partitions stay indexed by home, only homes[h]
// changes. Like every Builder method it must run between blocks (the
// quiescent hand-off point); the serve Manager calls it between epochs.
func (b *Builder) Rebalance() RebalanceStats {
	st := RebalanceStats{Before: 1, After: 1}
	p, nparts := b.opts.P, len(b.parts)
	if b.done || b.failed != nil || p <= 1 {
		return st
	}
	mass := make([]uint64, nparts)
	var total uint64
	for h, part := range b.parts {
		mass[h] = part.Total()
		total += mass[h]
	}
	if total == 0 {
		return st
	}
	st.Before = ownerImbalance(mass, b.homes, p)

	order := make([]int, nparts)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := order[i], order[j]
		if mass[a] != mass[c] {
			return mass[a] > mass[c]
		}
		return a < c
	})
	load := make([]uint64, p)
	homes := make([]int, nparts)
	for _, h := range order {
		w := 0
		for cand := 1; cand < p; cand++ {
			if load[cand] < load[w] {
				w = cand
			}
		}
		homes[h] = w
		load[w] += mass[h]
	}
	for h := range homes {
		if homes[h] != b.homes[h] {
			st.Moved++
		}
	}
	if st.Moved > 0 {
		b.homes = homes
		b.remapped = nparts != p
		for h, o := range homes {
			if o != h {
				b.remapped = true
				break
			}
		}
	}
	st.After = ownerImbalance(mass, b.homes, p)
	return st
}

// OwnerImbalance returns the max/mean key mass across owners under the
// current home→owner mapping (1.0 = flat), the load-balance diagnostic the
// serve layer publishes after each rebalance.
func (b *Builder) OwnerImbalance() float64 {
	p := b.opts.P
	if p <= 1 {
		return 1
	}
	mass := make([]uint64, len(b.parts))
	for h, part := range b.parts {
		mass[h] = part.Total()
	}
	return ownerImbalance(mass, b.homes, p)
}

// ownerImbalance folds per-home mass through a home→owner mapping onto p
// owners and returns max/mean per-owner load (1.0 when empty or flat).
func ownerImbalance(mass []uint64, homes []int, p int) float64 {
	load := make([]uint64, p)
	var total, max uint64
	for h, m := range mass {
		load[homes[h]] += m
	}
	for _, l := range load {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(load)) / float64(total)
}
