package core

import (
	"fmt"
	"time"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/sched"
)

// Builder is the incremental form of the wait-free construction primitive:
// training data arrives in blocks (e.g. chunks of a file too large to hold
// in memory) and each AddBlock runs the two-stage protocol over just that
// block, accumulating into the same partition tables. The final table is
// identical to a one-shot Build over the concatenated blocks.
//
// A Builder retains its P partition tables and P×(P-1) queues across
// blocks, so per-block overhead is two barrier episodes, not re-allocation.
// Builder methods must be called from a single goroutine; the parallelism
// is internal.
type Builder struct {
	codec   *encoding.Codec
	opts    Options
	parts   []hashtable.Counter
	queues  queueMatrix
	owner   func(uint64) int
	barrier *sched.Barrier
	stats   Stats
	done    bool
}

// NewBuilder prepares an incremental builder for data with the codec's
// variable layout. Options follow the same defaults as Build; the ring
// capacity default sizes for blocks of up to blockHint rows (0 = 64k).
func NewBuilder(codec *encoding.Codec, blockHint int, opts Options) *Builder {
	if blockHint <= 0 {
		blockHint = 1 << 16
	}
	opts, hintCapped := opts.withDefaults(blockHint, codec.KeySpace())
	b := &Builder{
		codec:   codec,
		opts:    opts,
		parts:   make([]hashtable.Counter, opts.P),
		owner:   opts.Partition.partitioner(opts.P, codec.KeySpace()),
		barrier: sched.NewBarrier(opts.P),
	}
	for i := range b.parts {
		b.parts[i] = opts.Table.new(opts.TableHint)
	}
	b.queues = newQueueMatrix(opts.P, opts.Queue, opts.RingCapacity)
	b.stats.P = opts.P
	b.stats.TableHint = opts.TableHint
	b.stats.TableHintCapped = hintCapped
	return b
}

// AddBlock counts a block of rows (each a state string of the codec's
// arity) into the table using the two-stage wait-free protocol.
func (b *Builder) AddBlock(rows [][]uint8) error {
	return b.addKeys(len(rows), func(i int) uint64 { return b.codec.Encode(rows[i]) })
}

// AddKeys counts a block of pre-encoded keys.
func (b *Builder) AddKeys(keys []uint64) error {
	return b.addKeys(len(keys), func(i int) uint64 { return keys[i] })
}

func (b *Builder) addKeys(m int, source KeySource) error {
	if b.done {
		return fmt.Errorf("core: Builder used after Finalize")
	}
	p := b.opts.P
	spans := sched.BlockPartition(m, p)
	ws := make([]workerStats, p)
	sched.Run(p, func(w int) {
		t0 := time.Now()
		span := spans[w]
		table := b.parts[w]
		outs := b.queues[w]
		for i := span.Lo; i < span.Hi; i++ {
			key := source(i)
			dst := b.owner(key)
			if dst == w {
				table.Inc(key)
				ws[w].local++
			} else {
				if !outs[dst].Push(key) {
					ws[w].err = fmt.Errorf("core: queue %d→%d overflow in incremental block", w, dst)
					break
				}
				ws[w].foreign++
			}
		}
		ws[w].stage1 = time.Since(t0)
		ws[w].barrier = b.barrier.WaitTimed()
		t1 := time.Now()
		for src := 0; src < p; src++ {
			if src == w {
				continue
			}
			q := b.queues[src][w]
			for {
				key, ok := q.Pop()
				if !ok {
					break
				}
				table.Inc(key)
				ws[w].pops++
			}
		}
		ws[w].stage2 = time.Since(t1)
	})
	for w := range ws {
		if ws[w].err != nil {
			return ws[w].err
		}
		b.stats.LocalKeys += ws[w].local
		b.stats.ForeignKeys += ws[w].foreign
		b.stats.Stage2Pops += ws[w].pops
		// Stage times accumulate the per-block critical path: the sum over
		// blocks of the slowest worker, i.e. the wall clock spent in each
		// stage across the whole stream.
	}
	var s1, s2, bw time.Duration
	for w := range ws {
		if ws[w].stage1 > s1 {
			s1 = ws[w].stage1
		}
		if ws[w].stage2 > s2 {
			s2 = ws[w].stage2
		}
		if ws[w].barrier > bw {
			bw = ws[w].barrier
		}
	}
	b.stats.Stage1Time += s1
	b.stats.Stage2Time += s2
	b.stats.BarrierWait += bw
	if r := b.opts.Obs; r != nil {
		r.Histogram(metricStageHist, "stage", "1").Observe(s1)
		r.Histogram(metricStageHist, "stage", "2").Observe(s2)
		r.Histogram(metricBarrierHist).Observe(bw)
	}
	return nil
}

// Finalize returns the accumulated potential table and construction stats.
// The builder cannot be used afterwards.
func (b *Builder) Finalize() (*PotentialTable, Stats) {
	b.done = true
	pt := NewPotentialTable(b.codec, b.parts, b.stats.LocalKeys+b.stats.Stage2Pops)
	b.stats.DistinctKeys = pt.Len()
	if r := b.opts.Obs; r != nil {
		r.Counter(metricBuilds).Inc()
		r.Counter(metricLocalKeys).Add(b.stats.LocalKeys)
		r.Counter(metricForeignKeys).Add(b.stats.ForeignKeys)
		r.Counter(metricStage2Pops).Add(b.stats.Stage2Pops)
		r.Gauge(metricTableHint).Set(float64(b.stats.TableHint))
		if b.stats.TableHintCapped {
			r.Counter(metricTableHintCapped).Inc()
		}
		publishQueueMetrics(r, b.stats, b.queues)
		publishPartitionMetrics(r, b.parts)
	}
	return pt, b.stats
}

// Samples returns how many rows have been counted so far.
func (b *Builder) Samples() uint64 { return b.stats.LocalKeys + b.stats.Stage2Pops + pendingForeign(b) }

func pendingForeign(b *Builder) uint64 {
	// Between blocks all queues are drained, so foreign == pops; this
	// accounts for the (unreachable in practice) case of a failed block.
	return b.stats.ForeignKeys - b.stats.Stage2Pops
}
