package core

import (
	"context"
	"errors"
	"testing"

	"waitfreebn/internal/obs"
)

func marginalsEqual(t *testing.T, a, b *Marginal, label string) {
	t.Helper()
	if len(a.Vars) != len(b.Vars) {
		t.Fatalf("%s: arity %d != %d", label, len(a.Vars), len(b.Vars))
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] || a.Card[i] != b.Card[i] {
			t.Fatalf("%s: axis %d differs: %v/%v vs %v/%v", label, i, a.Vars, a.Card, b.Vars, b.Card)
		}
	}
	if a.M != b.M || len(a.Counts) != len(b.Counts) {
		t.Fatalf("%s: shape/M differs", label)
	}
	for c := range a.Counts {
		if a.Counts[c] != b.Counts[c] {
			t.Fatalf("%s: cell %d: %d != %d", label, c, a.Counts[c], b.Counts[c])
		}
	}
}

func TestReorderRoundTrip(t *testing.T) {
	d := uniformData(t, 8000, 5, 3, 90)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	orders := [][]int{{2, 0, 4}, {4, 2, 0}, {0, 2, 4}, {0, 4, 2}}
	for _, order := range orders {
		want := pt.Marginalize(order, 2)
		base := pt.Marginalize([]int{0, 2, 4}, 2)
		got := base.Reorder(order)
		marginalsEqual(t, got, want, "reorder")
	}
	// Identity reorder returns the receiver untouched.
	base := pt.Marginalize([]int{1, 3}, 2)
	if base.Reorder([]int{1, 3}) != base {
		t.Error("identity Reorder did not return the receiver")
	}
}

func TestReorderPanicsOnNonPermutation(t *testing.T) {
	mg := &Marginal{Vars: []int{0, 1}, Card: []int{2, 2}, Counts: make([]uint64, 4)}
	for name, vars := range map[string][]int{
		"wrong arity": {0},
		"foreign var": {0, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			mg.Reorder(vars)
		}()
	}
}

func TestMarginalizeManyCachedMatchesUncached(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 91)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed orders, duplicates under different orders, and repeats.
	varsets := [][]int{
		{1, 3, 5}, {5, 3, 1}, {0, 7}, {7, 0}, {2}, {1, 3, 5}, {4, 2, 6},
	}
	want := pt.MarginalizeMany(varsets, 4)
	for _, cache := range []*MarginalCache{nil, NewMarginalCache(1<<16, nil)} {
		got := pt.MarginalizeManyCached(varsets, 4, cache)
		for k := range varsets {
			marginalsEqual(t, got[k], want[k], "cached vs direct")
		}
		// A second pass must serve everything from the cache and still agree.
		got2 := pt.MarginalizeManyCached(varsets, 4, cache)
		for k := range varsets {
			marginalsEqual(t, got2[k], want[k], "second pass")
		}
	}
}

func TestMarginalCacheHitMissCounters(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 92)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cache := NewMarginalCache(1<<16, reg)
	pt.MarginalizeManyCached([][]int{{0, 1}, {2, 3}}, 2, cache)
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after cold pass: %+v", st)
	}
	// {1, 0} is the same canonical set as {0, 1}: a hit in another order.
	pt.MarginalizeManyCached([][]int{{1, 0}, {4, 5}}, 2, cache)
	st = cache.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("after warm pass: %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("hit rate %v out of range", st.HitRate())
	}
	if reg.Counter(metricCacheHits).Value() != 1 || reg.Counter(metricCacheMisses).Value() != 3 {
		t.Errorf("obs counters: hits=%d misses=%d",
			reg.Counter(metricCacheHits).Value(), reg.Counter(metricCacheMisses).Value())
	}
	if st.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestMarginalCacheEvictsWithinBudget(t *testing.T) {
	d := uniformData(t, 5000, 10, 3, 93)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Budget of 30 cells holds at most three 9-cell pair marginals.
	cache := NewMarginalCache(30, nil)
	for i := 0; i < 9; i++ {
		pt.MarginalizeManyCached([][]int{{i, i + 1}}, 2, cache)
	}
	st := cache.Stats()
	if st.Cells > 30 {
		t.Errorf("cache over budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions despite pressure: %+v", st)
	}
	// An entry bigger than the whole budget is computed but never cached.
	before := cache.Stats().Entries
	pt.MarginalizeManyCached([][]int{{0, 1, 2, 3}}, 2, cache) // 81 cells > 30
	if got := cache.Stats(); got.Cells > 30 || got.Entries > before+0 {
		t.Errorf("oversized entry was cached: %+v", got)
	}
}

var errCacheMismatch = errors.New("cached marginal differs from direct computation")

func TestMarginalizeManyCachedConcurrent(t *testing.T) {
	d := uniformData(t, 10000, 6, 2, 94)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMarginalCache(1<<12, nil)
	want := pt.Marginalize([]int{1, 4}, 1)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				vs := [][]int{{1, 4}, {4, 1}, {g % 6, (g + 1) % 6, (g + 2) % 6}}
				if vs[2][0] == vs[2][1] || vs[2][1] == vs[2][2] || vs[2][0] == vs[2][2] {
					vs = vs[:2]
				}
				ms, err := pt.MarginalizeManyCachedCtx(context.Background(), vs, 2, cache)
				if err != nil {
					done <- err
					return
				}
				for c := range want.Counts {
					if ms[0].Counts[c] != want.Counts[c] {
						done <- errCacheMismatch
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
