package core

import (
	"encoding/json"
	"fmt"
	"time"
)

// String renders the stats as a single human-readable line, the canonical
// form the CLIs print instead of formatting fields ad hoc.
func (s Stats) String() string {
	capped := ""
	if s.TableHintCapped {
		capped = " (capped)"
	}
	spilled := ""
	if s.SpilledKeys > 0 {
		spilled = fmt.Sprintf(" spilled=%d", s.SpilledKeys)
	}
	batched := ""
	if s.WriteBatch > 1 {
		batched = fmt.Sprintf(" wb=%d flushes=%d dupes=%d", s.WriteBatch, s.BatchFlushes, s.ForeignDupes)
	}
	split := ""
	if s.SplitKeys > 0 || s.SplitMerges > 0 {
		split = fmt.Sprintf(" split=%d merged=%d", s.SplitKeys, s.SplitMerges)
	}
	return fmt.Sprintf(
		"P=%d local=%d foreign=%d pops=%d distinct=%d stage1=%v stage2=%v barrier=%v hint=%d%s%s%s%s",
		s.P, s.LocalKeys, s.ForeignKeys, s.Stage2Pops, s.DistinctKeys,
		s.Stage1Time.Round(time.Microsecond), s.Stage2Time.Round(time.Microsecond),
		s.BarrierWait.Round(time.Microsecond), s.TableHint, capped, spilled, batched, split)
}

// statsJSON is the wire form of Stats: snake_case keys, durations as
// float seconds (the same unit the obs metrics use).
type statsJSON struct {
	P                  int      `json:"p"`
	LocalKeys          uint64   `json:"local_keys"`
	ForeignKeys        uint64   `json:"foreign_keys"`
	Stage2Pops         uint64   `json:"stage2_pops"`
	DistinctKeys       int      `json:"distinct_keys"`
	WriteBatch         int      `json:"write_batch"`
	BatchFlushes       uint64   `json:"batch_flushes,omitempty"`
	ForeignDupes       uint64   `json:"foreign_dupes_combined,omitempty"`
	SplitKeys          uint64   `json:"split_keys,omitempty"`
	SplitMerges        uint64   `json:"split_merges,omitempty"`
	SpilledKeys        uint64   `json:"spilled_keys,omitempty"`
	Stage1Seconds      float64  `json:"stage1_seconds"`
	Stage2Seconds      float64  `json:"stage2_seconds"`
	BarrierWaitSeconds float64  `json:"barrier_wait_seconds"`
	TableHint          int      `json:"table_hint"`
	TableHintCapped    bool     `json:"table_hint_capped"`
	DestQueueWords     []uint64 `json:"dest_queue_words,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		P:                  s.P,
		LocalKeys:          s.LocalKeys,
		ForeignKeys:        s.ForeignKeys,
		Stage2Pops:         s.Stage2Pops,
		DistinctKeys:       s.DistinctKeys,
		WriteBatch:         s.WriteBatch,
		BatchFlushes:       s.BatchFlushes,
		ForeignDupes:       s.ForeignDupes,
		SplitKeys:          s.SplitKeys,
		SplitMerges:        s.SplitMerges,
		SpilledKeys:        s.SpilledKeys,
		Stage1Seconds:      s.Stage1Time.Seconds(),
		Stage2Seconds:      s.Stage2Time.Seconds(),
		BarrierWaitSeconds: s.BarrierWait.Seconds(),
		TableHint:          s.TableHint,
		TableHintCapped:    s.TableHintCapped,
		DestQueueWords:     s.DestQueueWords,
	})
}

// UnmarshalJSON implements json.Unmarshaler, inverting MarshalJSON so
// tooling can round-trip recorded stats.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var j statsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Stats{
		P:               j.P,
		LocalKeys:       j.LocalKeys,
		ForeignKeys:     j.ForeignKeys,
		Stage2Pops:      j.Stage2Pops,
		DistinctKeys:    j.DistinctKeys,
		WriteBatch:      j.WriteBatch,
		BatchFlushes:    j.BatchFlushes,
		ForeignDupes:    j.ForeignDupes,
		SplitKeys:       j.SplitKeys,
		SplitMerges:     j.SplitMerges,
		SpilledKeys:     j.SpilledKeys,
		Stage1Time:      time.Duration(j.Stage1Seconds * float64(time.Second)),
		Stage2Time:      time.Duration(j.Stage2Seconds * float64(time.Second)),
		BarrierWait:     time.Duration(j.BarrierWaitSeconds * float64(time.Second)),
		TableHint:       j.TableHint,
		TableHintCapped: j.TableHintCapped,
		DestQueueWords:  j.DestQueueWords,
	}
	return nil
}
