package core

import (
	"strings"
	"testing"

	"waitfreebn/internal/obs"
	"waitfreebn/internal/spsc"
)

// TestBuildPublishesMetrics drives a real construction with every queue
// kind and checks the registry afterwards holds the documented families:
// queue traffic counters, per-worker stage timings, partition occupancy.
func TestBuildPublishesMetrics(t *testing.T) {
	d := uniformData(t, 20000, 8, 2, 31)
	for _, kind := range []spsc.Kind{spsc.KindChunked, spsc.KindRing, spsc.KindMutex} {
		reg := obs.NewRegistry()
		_, st, err := Build(d, Options{P: 4, Queue: kind, Obs: reg})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		s := reg.Snapshot()
		if got := s.Counters[metricBuilds]; got != 1 {
			t.Errorf("%v: %s = %d, want 1", kind, metricBuilds, got)
		}
		if got := s.Counters[metricForeignKeys]; got != st.ForeignKeys {
			t.Errorf("%v: %s = %d, want %d", kind, metricForeignKeys, got, st.ForeignKeys)
		}
		if got := s.Counters[metricQueuePush]; got != st.ForeignKeys {
			t.Errorf("%v: %s = %d, want %d", kind, metricQueuePush, got, st.ForeignKeys)
		}
		if got := s.Counters[metricQueuePop]; got != st.Stage2Pops {
			t.Errorf("%v: %s = %d, want %d", kind, metricQueuePop, got, st.Stage2Pops)
		}
		for w := 0; w < 4; w++ {
			key := metricWorkerStage + `{stage="1",worker="` + string(rune('0'+w)) + `"}`
			if _, ok := s.Gauges[key]; !ok {
				t.Errorf("%v: missing per-worker gauge %s", kind, key)
			}
		}
		var occupancy float64
		for k, v := range s.Gauges {
			if strings.HasPrefix(k, metricPartitionKeys+"{") {
				occupancy += v
			}
		}
		if int(occupancy) != st.DistinctKeys {
			t.Errorf("%v: partition occupancy sums to %g, want %d", kind, occupancy, st.DistinctKeys)
		}
		if skew := s.Gauges[metricPartitionSkew]; skew < 1 {
			t.Errorf("%v: partition skew %g < 1", kind, skew)
		}
		if h := s.Histograms[metricStageHist+`{stage="1"}`]; h.Count != 4 {
			t.Errorf("%v: stage-1 histogram count %d, want 4", kind, h.Count)
		}
		// Queue-kind specific pressure signals.
		switch kind {
		case spsc.KindChunked:
			if s.Counters[metricChunkSegments] == 0 {
				t.Errorf("chunked build published no segment count")
			}
		case spsc.KindRing:
			if s.Gauges[metricRingHighWater] <= 0 {
				t.Errorf("ring build published no high-water mark")
			}
		case spsc.KindMutex:
			if s.Counters[metricMutexAcquires] == 0 {
				t.Errorf("mutex build published no acquire count")
			}
		}
	}
}

func TestBuildNilRegistryPublishesNothing(t *testing.T) {
	d := uniformData(t, 5000, 8, 2, 32)
	// Obs left nil: the build must succeed and never touch a registry.
	_, st, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsInvariant(t, st)
}

func TestBuilderPublishesMetrics(t *testing.T) {
	d := uniformData(t, 12000, 8, 2, 33)
	codec, err := d.Codec()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b := NewBuilder(codec, 4096, Options{P: 4, Obs: reg})
	keys := d.EncodeKeys(codec, 2)
	for lo := 0; lo < len(keys); lo += 4096 {
		hi := min(lo+4096, len(keys))
		if err := b.AddKeys(keys[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	pt, st := b.Finalize()
	assertStatsInvariant(t, st)
	s := reg.Snapshot()
	if got := s.Counters[metricBuilds]; got != 1 {
		t.Errorf("%s = %d, want 1", metricBuilds, got)
	}
	if got := s.Counters[metricStage2Pops]; got != st.Stage2Pops {
		t.Errorf("%s = %d, want %d", metricStage2Pops, got, st.Stage2Pops)
	}
	if h := s.Histograms[metricStageHist+`{stage="1"}`]; h.Count != 3 {
		t.Errorf("stage histogram observed %d blocks, want 3", h.Count)
	}
	if st.Stage1Time <= 0 || st.BarrierWait < 0 {
		t.Errorf("builder stage times not accumulated: %+v", st)
	}
	var occupancy float64
	for k, v := range s.Gauges {
		if strings.HasPrefix(k, metricPartitionKeys+"{") {
			occupancy += v
		}
	}
	if int(occupancy) != pt.Len() {
		t.Errorf("partition occupancy sums to %g, want %d", occupancy, pt.Len())
	}
}
