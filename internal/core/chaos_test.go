package core

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/sched"
	"waitfreebn/internal/spsc"
)

// The chaos suite proves the fault-tolerant execution layer's guarantees:
// every injected fault must surface as a clean error — no deadlocked
// barrier, no leaked worker goroutine — and a plan whose points never fire
// must leave the result bit-identical to the sequential oracle. Run it
// under -race via `make chaos`.

// requireNoGoroutineLeak fails the test if the goroutine count does not
// return to the baseline within a grace period (worker exits race with the
// caller, so a few retries are expected).
func requireNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosSeeds returns the seeds the multi-seed chaos tests sweep: 1..5 by
// default, extendable via the CHAOS_SEEDS environment variable
// (comma-separated uint64s) for longer soak runs.
func chaosSeeds(t *testing.T) []uint64 {
	seeds := []uint64{1, 2, 3, 4, 5}
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			s, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("bad CHAOS_SEEDS entry %q: %v", f, err)
			}
			seeds = append(seeds, s)
		}
	}
	return seeds
}

func TestChaosNoFaultFiredIsBitIdentical(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	// An installed plan with every rate at zero must be indistinguishable
	// from no plan at all.
	restore := faultinject.Activate(faultinject.NewPlan(123))
	defer restore()
	pt, st, err := BuildCtx(context.Background(), d, Options{P: 4})
	if err != nil {
		t.Fatalf("no-fault build failed: %v", err)
	}
	if !pt.Equal(ref) {
		t.Fatal("no-fault build differs from sequential oracle")
	}
	if st.SpilledKeys != 0 {
		t.Fatalf("no-fault build spilled %d keys", st.SpilledKeys)
	}
}

func TestChaosPanicStage1Contained(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	base := runtime.NumGoroutine()
	plan := faultinject.NewPlan(7).WithRate(faultinject.PanicStage1, 1)
	plan.Worker = 1
	restore := faultinject.Activate(plan)
	defer restore()
	_, _, err := BuildCtx(context.Background(), d, Options{P: 4})
	if err == nil {
		t.Fatal("injected stage-1 panic did not surface")
	}
	var we *sched.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error %v (%T) is not a *sched.WorkerError", err, err)
	}
	if we.Worker != 1 {
		t.Errorf("panic attributed to worker %d, injected into worker 1", we.Worker)
	}
	if len(we.Stack) == 0 {
		t.Error("WorkerError carries no stack")
	}
	requireNoGoroutineLeak(t, base)
}

func TestChaosPanicStage2Contained(t *testing.T) {
	// Stage-2 panics happen after the barrier — the worst place to die for
	// the peers, which must still drain and exit cleanly.
	d := uniformData(t, 20000, 8, 3, 11)
	base := runtime.NumGoroutine()
	plan := faultinject.NewPlan(7).WithRate(faultinject.PanicStage2, 1)
	plan.Worker = 2
	restore := faultinject.Activate(plan)
	defer restore()
	_, _, err := BuildCtx(context.Background(), d, Options{P: 4})
	var we *sched.WorkerError
	if !errors.As(err, &we) || we.Worker != 2 {
		t.Fatalf("stage-2 panic not contained as WorkerError for worker 2: %v", err)
	}
	requireNoGoroutineLeak(t, base)
}

func TestChaosQueuePushFailSurfacesCleanly(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	base := runtime.NumGoroutine()
	restore := faultinject.Activate(
		faultinject.NewPlan(9).WithRate(faultinject.QueuePushFail, 0.01))
	defer restore()
	_, _, err := BuildCtx(context.Background(), d, Options{P: 4})
	if err == nil {
		t.Fatal("injected push failure did not surface")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("push-failure error does not read as an overflow: %v", err)
	}
	var we *sched.WorkerError
	if errors.As(err, &we) {
		t.Fatalf("push failure surfaced as a panic: %v", err)
	}
	requireNoGoroutineLeak(t, base)
}

func TestChaosStallPlusTimeoutReturnsDeadlineExceeded(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	base := runtime.NumGoroutine()
	plan := faultinject.NewPlan(3).WithRate(faultinject.WorkerStall, 1)
	plan.StallDuration = 150 * time.Millisecond
	restore := faultinject.Activate(plan)
	defer restore()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := BuildCtx(ctx, d, Options{P: 4})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled build returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled build took %v to observe the deadline", elapsed)
	}
	requireNoGoroutineLeak(t, base)
}

func TestChaosTableGrowPressure(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Activate(
		faultinject.NewPlan(5).WithRate(faultinject.TableGrowPressure, 1))
	defer restore()
	pt, st, err := BuildCtx(context.Background(), d, Options{P: 4})
	if err != nil {
		t.Fatalf("build under grow pressure failed: %v", err)
	}
	if st.TableHint != 1 {
		t.Fatalf("grow pressure left hint at %d", st.TableHint)
	}
	if !pt.Equal(ref) {
		t.Fatal("build under grow pressure differs from sequential oracle")
	}
}

func TestChaosMultiSeedSweep(t *testing.T) {
	// Mixed-fault sweep: for every seed the build must either succeed with
	// the exact oracle table or fail with a clean, classified error —
	// never deadlock, never leak a worker.
	d := uniformData(t, 20000, 8, 3, 11)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for _, seed := range chaosSeeds(t) {
		plan := faultinject.NewPlan(seed).
			WithRate(faultinject.QueuePushFail, 0.0005).
			WithRate(faultinject.PanicStage1, 0.1).
			WithRate(faultinject.PanicStage2, 0.1).
			WithRate(faultinject.WorkerStall, 0.5)
		restore := faultinject.Activate(plan)
		done := make(chan struct{})
		var pt *PotentialTable
		var st Stats
		var buildErr error
		go func() {
			defer close(done)
			pt, st, buildErr = BuildCtx(context.Background(), d, Options{P: 4})
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			restore()
			t.Fatalf("seed %d: build deadlocked", seed)
		}
		restore()
		if buildErr == nil {
			if !pt.Equal(ref) {
				t.Fatalf("seed %d: fault-free outcome differs from oracle", seed)
			}
			assertStatsInvariant(t, st)
		} else {
			var we *sched.WorkerError
			if !errors.As(buildErr, &we) && !strings.Contains(buildErr.Error(), "overflow") {
				t.Fatalf("seed %d: unclassified failure %v", seed, buildErr)
			}
		}
		requireNoGoroutineLeak(t, base)
	}
}

// TestChaosBatchedLegacyFaultEquivalence pins the fault-determinism
// contract of the batched write path: queue-push faults fire per logical
// key at buffer-append time with the same (worker, running-foreign-count)
// sequence the legacy path uses, so under any deterministic plan the two
// paths must agree — both fail, or both succeed with identical tables and
// identical key accounting. Without this, every recorded chaos seed would
// renumber when the default write path changed.
func TestChaosBatchedLegacyFaultEquivalence(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	base := runtime.NumGoroutine()
	for _, seed := range chaosSeeds(t) {
		type outcome struct {
			pt  *PotentialTable
			st  Stats
			err error
		}
		var outs [2]outcome
		for i, wb := range []int{1, defaultWriteBatch} {
			plan := faultinject.NewPlan(seed).
				WithRate(faultinject.QueuePushFail, 0.0005).
				WithRate(faultinject.PanicStage1, 0.1).
				WithRate(faultinject.PanicStage2, 0.1)
			restore := faultinject.Activate(plan)
			outs[i].pt, outs[i].st, outs[i].err = BuildCtx(context.Background(), d, Options{P: 4, WriteBatch: wb})
			restore()
		}
		legacy, batched := outs[0], outs[1]
		if (legacy.err == nil) != (batched.err == nil) {
			t.Fatalf("seed %d: legacy err %v, batched err %v — fault plans diverged", seed, legacy.err, batched.err)
		}
		if legacy.err == nil {
			if !batched.pt.Equal(legacy.pt) {
				t.Fatalf("seed %d: batched table differs from legacy under the same plan", seed)
			}
			assertStatsInvariant(t, legacy.st)
			assertStatsInvariant(t, batched.st)
			if legacy.st.ForeignKeys != batched.st.ForeignKeys {
				t.Fatalf("seed %d: foreign key mass %d (legacy) != %d (batched)",
					seed, legacy.st.ForeignKeys, batched.st.ForeignKeys)
			}
		}
		requireNoGoroutineLeak(t, base)
	}
}

func TestBuildCtxCancelMidBuild(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	base := runtime.NumGoroutine()
	// Stall every worker long enough for the cancellation to land while
	// the build is provably still in flight.
	plan := faultinject.NewPlan(2).WithRate(faultinject.WorkerStall, 1)
	plan.StallDuration = 200 * time.Millisecond
	restore := faultinject.Activate(plan)
	defer restore()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, _, err := BuildCtx(ctx, d, Options{P: 4})
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled build returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled build did not return in bounded time")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	requireNoGoroutineLeak(t, base)
}

func TestBuildKeysOverflowEarlyReturnDoesNotLeak(t *testing.T) {
	// The strict (NoSpill) overflow path returns early with some queues
	// partially filled and some workers parked at the barrier; all of them
	// must still exit, and the process must be reusable afterwards.
	d := uniformData(t, 10000, 6, 4, 5)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		_, _, err := Build(d, Options{P: 4, Queue: spsc.KindRing, RingCapacity: 2, NoSpill: true})
		if err == nil {
			t.Fatal("expected overflow error")
		}
	}
	requireNoGoroutineLeak(t, base)
	// A clean build right after the failed ones must still work.
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(ref) {
		t.Fatal("post-failure build differs from oracle")
	}
}

func TestMarginalizeCtxCancellation(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 11)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pt.MarginalizeCtx(ctx, []int{0, 1}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled marginalize returned %v", err)
	}
	if _, err := pt.AllPairsMICtx(ctx, 4, MIFused); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fused all-pairs returned %v", err)
	}
	if _, err := pt.AllPairsMICtx(ctx, 4, MIPairDynamic); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled dynamic all-pairs returned %v", err)
	}
	if _, err := pt.MarginalizeManyCtx(ctx, [][]int{{0}, {1, 2}}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled marginalize-many returned %v", err)
	}
}

func TestBuilderAddBlockCtxCancelPoisons(t *testing.T) {
	codec, err := encoding.NewUniformCodec(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(2).WithRate(faultinject.WorkerStall, 1)
	plan.StallDuration = 100 * time.Millisecond
	restore := faultinject.Activate(plan)
	defer restore()
	b := NewBuilder(codec, 1024, Options{P: 4})
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = uint64(i) % codec.KeySpace()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := b.AddKeysCtx(ctx, keys); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled block returned %v", err)
	}
	if err := b.AddKeys(keys); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("builder accepted a block after a failed one: %v", err)
	}
}
