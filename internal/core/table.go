// Package core implements the paper's two contributed primitives and their
// composition:
//
//   - wait-free potential-table construction (Algorithms 1 and 2) — Build;
//   - parallel marginalization (Algorithm 3) — PotentialTable.Marginalize;
//   - all-pairs mutual information for the drafting phase of Cheng et al.'s
//     structure-learning algorithm (Algorithm 4) — AllPairsMI.
//
// A PotentialTable represents the empirical joint distribution of the
// training data as P disjoint hash tables, one per key-space partition,
// exactly as produced by the wait-free construction. Counts are raw
// occurrence counts; normalization by m is deferred to the moment a
// marginal is consumed (footnote 2 of the paper).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/sched"
)

// PartitionKind selects how keys are mapped to owning partitions during
// construction (ablation A2). The paper uses modulo (Algorithm 1, line 9).
type PartitionKind int

const (
	// PartitionModulo assigns key to partition key % P (the paper's rule).
	PartitionModulo PartitionKind = iota
	// PartitionRange splits the key space into P contiguous ranges. With
	// mixed-radix keys this keeps high-order variables together, which can
	// skew partition sizes when the data is not uniform in those variables.
	PartitionRange
	// PartitionHash assigns key to partition mix64(key) % P, decoupling
	// ownership from key structure entirely.
	PartitionHash
)

// String returns the kind's human-readable name.
func (k PartitionKind) String() string {
	switch k {
	case PartitionModulo:
		return "modulo"
	case PartitionRange:
		return "range"
	case PartitionHash:
		return "hash"
	default:
		return "unknown"
	}
}

// partitioner returns the key→owner function for P partitions over the
// given key space.
func (k PartitionKind) partitioner(p int, keySpace uint64) func(uint64) int {
	switch k {
	case PartitionModulo:
		return func(key uint64) int { return int(key % uint64(p)) }
	case PartitionRange:
		width := (keySpace + uint64(p) - 1) / uint64(p)
		return func(key uint64) int { return int(key / width) }
	case PartitionHash:
		return func(key uint64) int { return int(rng.Mix64(key) % uint64(p)) }
	default:
		panic("core: unknown partition kind")
	}
}

// TableKind selects the per-partition count-table implementation
// (ablation A4).
type TableKind int

const (
	// TableOpenAddressing selects the open-addressing table (default).
	TableOpenAddressing TableKind = iota
	// TableChained selects the separate-chaining table.
	TableChained
	// TableGoMap selects Go's built-in map.
	TableGoMap
	// TableDense selects a flat direct-addressing array when the
	// partition's key lattice fits denseBudget cells (modulo partitioning
	// gives each partition an arithmetic progression of keys, range
	// partitioning a contiguous interval), falling back to open
	// addressing per partition otherwise.
	TableDense
)

// String returns the kind's human-readable name.
func (k TableKind) String() string {
	switch k {
	case TableOpenAddressing:
		return "open-addressing"
	case TableChained:
		return "chained"
	case TableGoMap:
		return "gomap"
	case TableDense:
		return "dense"
	default:
		return "unknown"
	}
}

func (k TableKind) new(hint int) hashtable.Counter {
	switch k {
	case TableOpenAddressing:
		return hashtable.New(hint)
	case TableChained:
		return hashtable.NewChained(hint)
	case TableGoMap:
		return hashtable.NewMapTable(hint)
	case TableDense:
		// Without partition geometry (see newPartTable) dense degrades to
		// its fallback.
		return hashtable.New(hint)
	default:
		panic("core: unknown table kind")
	}
}

// denseBudget caps the per-partition cell count of a TableDense partition:
// 2^22 cells = 32 MiB of counts per partition. Partitions whose key lattice
// exceeds it fall back to open addressing.
const denseBudget = 1 << 22

// densePartLattice returns the affine lattice {idx*div + off} of the keys
// partition i owns under the given partitioning of keySpace across p
// workers, and whether a dense table over it fits denseBudget. Hash
// partitioning scatters keys over the whole space, so every partition
// needs keySpace cells — dense only fits for tiny key spaces there.
func densePartLattice(part PartitionKind, p int, keySpace uint64, i int) (size int, div, off uint64, ok bool) {
	switch part {
	case PartitionModulo:
		div, off = uint64(p), uint64(i)
		if keySpace <= off {
			return 0, div, off, true
		}
		n := (keySpace-1-off)/div + 1
		return int(n), div, off, n <= denseBudget
	case PartitionRange:
		width := (keySpace + uint64(p) - 1) / uint64(p)
		off = uint64(i) * width
		if off >= keySpace {
			return 0, 1, off, true
		}
		n := keySpace - off
		if n > width {
			n = width
		}
		return int(n), 1, off, n <= denseBudget
	case PartitionHash:
		return int(keySpace), 1, 0, keySpace <= denseBudget
	default:
		panic("core: unknown partition kind")
	}
}

// newPartTable builds partition i's count table, giving TableDense the
// partition geometry it needs and applying its fallback.
func newPartTable(kind TableKind, part PartitionKind, hint, p int, keySpace uint64, i int) hashtable.Counter {
	if kind == TableDense {
		if size, div, off, ok := densePartLattice(part, p, keySpace, i); ok {
			return hashtable.NewDense(size, div, off)
		}
		return hashtable.New(hint)
	}
	return kind.new(hint)
}

// PotentialTable is the distributed potential-table representation: the
// empirical joint counts of the training data split across P single-owner
// partitions. It is immutable after construction and safe for concurrent
// readers. Freeze attaches a columnar snapshot (see frozen.go) that the
// read-side scans stream from instead of the partition hashtables.
type PotentialTable struct {
	codec *encoding.Codec
	// parts is published atomically so lock-free readers racing a
	// Rebalance see either the old or the new partition generation whole
	// — both hold the identical key→count mapping — never a torn slice
	// header. Each reader loads the pointer once per operation and walks
	// only the generation it captured.
	parts  atomic.Pointer[[]hashtable.Counter]
	m      uint64                      // total number of samples counted
	obs    *obs.Registry               // read-path metrics sink; nil = disabled
	frozen atomic.Pointer[frozenTable] // columnar snapshot; nil = live scans
	// structMu serializes the two operations that replace structural state
	// (Rebalance swapping parts and invalidating the snapshot, FreezeCtx
	// capturing parts and installing one). Without it a freeze racing a
	// rebalance could capture half-swapped partitions or re-install a
	// snapshot of the pre-rebalance layout over the invalidation. Readers
	// stay lock-free: they only follow the frozen pointer or the parts
	// generation they loaded.
	structMu sync.Mutex
}

// liveParts loads the current partition generation.
func (t *PotentialTable) liveParts() []hashtable.Counter {
	if ps := t.parts.Load(); ps != nil {
		return *ps
	}
	return nil
}

// NewPotentialTable assembles a table directly from parts; it is exported
// for tests and for builders in other packages (baseline strategies produce
// the same representation). m must equal the sum of all counts.
func NewPotentialTable(codec *encoding.Codec, parts []hashtable.Counter, m uint64) *PotentialTable {
	t := &PotentialTable{codec: codec, m: m}
	t.parts.Store(&parts)
	return t
}

// Codec returns the key codec the table was built with.
func (t *PotentialTable) Codec() *encoding.Codec { return t.codec }

// SetObs attaches a metrics registry to the table's read path (scan
// throughput, freeze stats, clamp events). nil disables recording; builds
// that carry Options.Obs attach it automatically.
func (t *PotentialTable) SetObs(r *obs.Registry) { t.obs = r }

// Partitions returns the number of partitions P.
func (t *PotentialTable) Partitions() int {
	parts := t.liveParts()
	if len(parts) == 0 {
		if ft := t.frozen.Load(); ft != nil {
			return len(ft.parts)
		}
	}
	return len(parts)
}

// NumSamples returns m, the number of observations counted into the table.
func (t *PotentialTable) NumSamples() uint64 { return t.m }

// Len returns the number of distinct keys across all partitions.
func (t *PotentialTable) Len() int {
	if ft := t.frozen.Load(); ft != nil {
		return ft.numEntries()
	}
	total := 0
	for _, p := range t.liveParts() {
		total += p.Len()
	}
	return total
}

// Get returns the count recorded for key, searching every partition.
// Lookup is O(P) in the worst case (binary search per partition on a frozen
// table); bulk consumers should use Range or Marginalize instead.
func (t *PotentialTable) Get(key uint64) uint64 {
	if ft := t.frozen.Load(); ft != nil {
		return ft.get(key)
	}
	for _, p := range t.liveParts() {
		if c := p.Get(key); c != 0 {
			return c
		}
	}
	return 0
}

// Total returns the sum of all counts; it equals NumSamples for a table
// built from a dataset.
func (t *PotentialTable) Total() uint64 {
	if ft := t.frozen.Load(); ft != nil {
		var total uint64
		for p := range ft.parts {
			for _, c := range ft.parts[p].counts {
				total += c
			}
		}
		return total
	}
	var total uint64
	for _, p := range t.liveParts() {
		total += p.Total()
	}
	return total
}

// PartitionSizes returns the number of distinct keys in each partition —
// the balance metric discussed in Section IV-C.
func (t *PotentialTable) PartitionSizes() []int {
	if ft := t.frozen.Load(); ft != nil {
		sizes := make([]int, len(ft.parts))
		for i := range sizes {
			sizes[i] = len(ft.parts[i].keys)
		}
		return sizes
	}
	parts := t.liveParts()
	sizes := make([]int, len(parts))
	for i, p := range parts {
		sizes[i] = p.Len()
	}
	return sizes
}

// Range calls fn for every (key, count) pair across all partitions in
// unspecified order. Returning false stops the iteration. On a frozen table
// the iteration streams the columnar snapshot, so Range works even on a
// detached snapshot table (Builder.SnapshotCtx) that carries no live
// partitions at all.
func (t *PotentialTable) Range(fn func(key, count uint64) bool) {
	if ft := t.frozen.Load(); ft != nil {
		for p := range ft.parts {
			for i, key := range ft.parts[p].keys {
				if !fn(key, ft.parts[p].counts[i]) {
					return
				}
			}
		}
		return
	}
	for _, p := range t.liveParts() {
		stopped := false
		p.Range(func(key, count uint64) bool {
			if !fn(key, count) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Equal reports whether two tables represent the same key→count mapping,
// regardless of partition count or strategy.
func (t *PotentialTable) Equal(other *PotentialTable) bool {
	if t.Len() != other.Len() || t.m != other.m {
		return false
	}
	equal := true
	t.Range(func(key, count uint64) bool {
		if other.Get(key) != count {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// Rebalance redistributes entries into parts partitions of near-equal
// entry counts. Partition-by-key-range matters only during construction;
// marginalization is indifferent to which partition holds a key
// (Section IV-C), so rebalancing preserves all query results while
// equalizing per-worker marginalization work. The table is rebuilt with
// open-addressing partitions.
func (t *PotentialTable) Rebalance(parts int) {
	if parts <= 0 {
		panic(fmt.Sprintf("core: Rebalance with parts = %d", parts))
	}
	t.structMu.Lock()
	defer t.structMu.Unlock()
	total := t.Len()
	target := (total + parts - 1) / parts
	if target == 0 {
		target = 1
	}
	newParts := make([]hashtable.Counter, parts)
	for i := range newParts {
		newParts[i] = hashtable.New(target)
	}
	idx, inCurrent := 0, 0
	t.Range(func(key, count uint64) bool {
		if inCurrent == target && idx < parts-1 {
			idx++
			inCurrent = 0
		}
		newParts[idx].Add(key, count)
		inCurrent++
		return true
	})
	t.parts.Store(&newParts)
	// The snapshot mirrors the replaced partitions; drop it so scans fall
	// back to the live tables until the caller freezes again.
	t.frozen.Store(nil)
}

// PartitionMass returns each partition's total key mass (sum of counts) —
// the occupancy histogram rebalancing decisions and the skew diagnostics
// read. On a frozen table it sums the columnar segments; on a live table it
// asks each partition, which is exact while writers are quiescent.
func (t *PotentialTable) PartitionMass() []uint64 {
	if ft := t.frozen.Load(); ft != nil {
		mass := make([]uint64, len(ft.parts))
		for p := range mass {
			for _, c := range ft.parts[p].counts {
				mass[p] += c
			}
		}
		return mass
	}
	parts := t.liveParts()
	mass := make([]uint64, len(parts))
	for i, p := range parts {
		mass[i] = p.Total()
	}
	return mass
}

// maxImbalance returns the ratio of the largest to the smallest partition
// entry count (1.0 = perfectly balanced). Used by tests and diagnostics.
func (t *PotentialTable) maxImbalance() float64 {
	sizes := t.PartitionSizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == 0 {
		if max == 0 {
			return 1
		}
		return float64(max)
	}
	return float64(max) / float64(min)
}

// partitionAssignment distributes the table's partitions across p workers
// cyclically, for read-side parallel scans.
func (t *PotentialTable) partitionAssignment(p int) [][]int {
	return sched.CyclicAssign(len(t.liveParts()), p)
}
