package core

import (
	"context"
	"math"
	"sync/atomic"

	"waitfreebn/internal/sched"
)

// MIDeltaStats reports what one AllPairsMIDeltaCtx call recomputed versus
// reused, for the structure layer and the refreeze bench to surface.
type MIDeltaStats struct {
	// Full marks a fallback to a complete AllPairsMICtx: no aligned change
	// summary was available (first epoch, overflowed delta log, epoch
	// mismatch, or shape mismatch with the prior matrix).
	Full bool `json:"full"`
	// DirtyVars is how many variables' marginal distributions moved beyond
	// the threshold since the prior epoch.
	DirtyVars int `json:"dirty_vars"`
	// DirtyPairs is how many pairs were recomputed; ReusedPairs how many
	// were copied from the prior epoch's matrix.
	DirtyPairs  int `json:"dirty_pairs"`
	ReusedPairs int `json:"reused_pairs"`
	// FromEpoch/ToEpoch anchor the reuse: prior results were valid at
	// FromEpoch, the returned matrix describes ToEpoch.
	FromEpoch uint64 `json:"from_epoch"`
	ToEpoch   uint64 `json:"to_epoch"`
}

// AllPairsMIDeltaCtx is the delta-aware form of AllPairsMICtx: given the
// previous epoch's MI matrix (computed when this table's predecessor had
// freeze epoch prevEpoch), it recomputes only the pairs touching a variable
// whose marginal distribution moved beyond threshold since that epoch and
// copies every other pair from prev. Movement is total-variation distance
// between the old and new single-variable marginals; threshold 0 recomputes
// every pair whose variables' distributions changed at all (exact integer
// comparison, no float tolerance).
//
// The reuse is the sufficient-statistic shortcut of the bnlearn
// optimisation literature, and like any marginal-gated shortcut it is an
// approximation: a pair whose two marginals are unchanged can still have
// shifted its joint. The threshold bounds how much marginal movement may
// hide; callers needing exactness pass a prev of nil (or a mismatched
// epoch) and get the full fallback.
//
// Fallback to a complete AllPairsMICtx happens whenever the table carries
// no change summary anchored at prevEpoch (first epoch, full-mode snapshot,
// overflowed delta log, rebalanced partitions) or prev has the wrong shape.
func (t *PotentialTable) AllPairsMIDeltaCtx(ctx context.Context, p int, schedule MISchedule, prev *MIMatrix, prevEpoch uint64, threshold float64) (*MIMatrix, MIDeltaStats, error) {
	if p <= 0 {
		p = sched.DefaultP()
	}
	n := t.codec.NumVars()
	ft := t.frozen.Load()
	usable := ft != nil && ft.summary != nil && ft.summary.VarDelta != nil &&
		ft.varMarg != nil && ft.summary.FromEpoch == prevEpoch &&
		prev != nil && prev.N == n
	if !usable {
		mi, err := t.AllPairsMICtx(ctx, p, schedule)
		if err != nil {
			return nil, MIDeltaStats{}, err
		}
		st := MIDeltaStats{Full: true, DirtyVars: n, DirtyPairs: n * (n - 1) / 2, FromEpoch: prevEpoch}
		if ft != nil {
			st.ToEpoch = ft.epoch
		}
		return mi, st, nil
	}

	sum := ft.summary
	st := MIDeltaStats{FromEpoch: sum.FromEpoch, ToEpoch: sum.ToEpoch}
	moved := make([]bool, n)
	for v := range moved {
		if marginalMoved(ft.varMarg[v], sum.VarDelta[v], threshold) {
			moved[v] = true
			st.DirtyVars++
		}
	}

	mi := NewMIMatrix(n)
	var dirty []miPair
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			if moved[i] || moved[j] {
				dirty = append(dirty, miPair{i, j})
			} else {
				mi.Set(i, j, prev.At(i, j))
				st.ReusedPairs++
			}
		}
	}
	st.DirtyPairs = len(dirty)
	if len(dirty) == 0 {
		return mi, st, nil
	}

	// Recompute the dirty list with dynamic claiming (the MIPairDynamic
	// shape): the dirty set is irregular by construction, so static
	// assignment would strand workers. schedule only steers the full
	// fallback above.
	if p > len(dirty) {
		p = len(dirty)
	}
	var next atomic.Int64
	err := sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		check := ctxChecker(ctx)
		for {
			pi := int(next.Add(1)) - 1
			if pi >= len(dirty) {
				return nil
			}
			v, err := t.pairMI(ctx, dirty[pi], check)
			if err != nil {
				return err
			}
			mi.Set(dirty[pi].i, dirty[pi].j, v)
		}
	})
	if err != nil {
		return nil, MIDeltaStats{}, err
	}
	return mi, st, nil
}

// marginalMoved reports whether a variable's marginal distribution moved
// beyond threshold, given its new marginal counts and the per-state delta
// added since the prior epoch. The unchanged-distribution test is exact
// integer cross-multiplication (old[s]·Mnew == new[s]·Mold for all s), so
// proportional growth — same distribution, more mass — never trips it and
// threshold 0 means "changed at all". Only past that gate is the float
// total-variation distance compared against a positive threshold.
func marginalMoved(newMarg, delta []uint64, threshold float64) bool {
	var mnew, mdelta uint64
	for _, c := range newMarg {
		mnew += c
	}
	for _, d := range delta {
		mdelta += d
	}
	if mdelta == 0 {
		return false
	}
	mold := mnew - mdelta
	if mold == 0 {
		return true
	}
	changed := false
	for s := range newMarg {
		if (newMarg[s]-delta[s])*mnew != newMarg[s]*mold {
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	if threshold <= 0 {
		return true
	}
	tv := 0.0
	for s := range newMarg {
		oldP := float64(newMarg[s]-delta[s]) / float64(mold)
		newP := float64(newMarg[s]) / float64(mnew)
		tv += math.Abs(newP - oldP)
	}
	return tv/2 > threshold
}
