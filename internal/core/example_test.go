package core_test

import (
	"fmt"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/stats"
)

// tinyDataset builds a fixed 8-sample dataset over three binary variables
// where x2 copies x0 and x1 is independent.
func tinyDataset() *dataset.Dataset {
	rows := [][]uint8{
		{0, 0, 0}, {0, 1, 0}, {0, 0, 0}, {0, 1, 0},
		{1, 0, 1}, {1, 1, 1}, {1, 0, 1}, {1, 1, 1},
	}
	d := dataset.NewUniformCard(len(rows), 3, 2)
	for i, row := range rows {
		for j, s := range row {
			d.Set(i, j, s)
		}
	}
	return d
}

// ExampleBuild shows the wait-free construction primitive end to end:
// the dataset becomes a potential table partitioned across 2 workers.
func ExampleBuild() {
	table, st, err := core.Build(tinyDataset(), core.Options{P: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("samples: %d\n", table.NumSamples())
	fmt.Printf("distinct state strings: %d\n", table.Len())
	fmt.Printf("all keys accounted for: %v\n", st.LocalKeys+st.ForeignKeys == 8)
	// Output:
	// samples: 8
	// distinct state strings: 4
	// all keys accounted for: true
}

// ExamplePotentialTable_Marginalize computes P(x0) with Algorithm 3.
func ExamplePotentialTable_Marginalize() {
	table, _, err := core.Build(tinyDataset(), core.Options{P: 2})
	if err != nil {
		panic(err)
	}
	mg := table.Marginalize([]int{0}, 2)
	fmt.Printf("P(x0=0) = %.2f\n", mg.Prob(0))
	fmt.Printf("P(x0=1) = %.2f\n", mg.Prob(1))
	// Output:
	// P(x0=0) = 0.50
	// P(x0=1) = 0.50
}

// ExamplePotentialTable_AllPairsMI runs the drafting sweep (Algorithm 4):
// the copied pair lights up at 1 bit, the independent pairs at 0.
func ExamplePotentialTable_AllPairsMI() {
	table, _, err := core.Build(tinyDataset(), core.Options{P: 2})
	if err != nil {
		panic(err)
	}
	mi := table.AllPairsMI(2, core.MIFused)
	mi.ForEachPair(func(i, j int, v float64) {
		fmt.Printf("I(x%d;x%d) = %.1f\n", i, j, v)
	})
	// Output:
	// I(x0;x1) = 0.0
	// I(x0;x2) = 1.0
	// I(x1;x2) = 0.0
}

// ExamplePotentialTable_MarginalizePair derives a mutual information value
// from the pairwise joint, the way Algorithm 4 composes the primitives.
func ExamplePotentialTable_MarginalizePair() {
	table, _, err := core.Build(tinyDataset(), core.Options{P: 2})
	if err != nil {
		panic(err)
	}
	joint := table.MarginalizePair(0, 2, 2)
	mi := stats.MutualInfoCounts(joint.Counts, joint.Card[0], joint.Card[1])
	fmt.Printf("I(x0;x2) = %.1f bits\n", mi)
	// Output:
	// I(x0;x2) = 1.0 bits
}
