package core

import (
	"fmt"
	"sync/atomic"
)

// Snapshot is a refcounted lease on one published epoch of an immutable
// PotentialTable. It is the hand-off primitive between a background builder
// that keeps producing fresh epochs (build → freeze → publish) and an
// unbounded population of concurrent readers: the publisher holds one
// reference from NewSnapshot until Retire, each reader brackets its use
// with Acquire/Release, and the moment the count drains to zero the table
// pointer is severed — so a retired epoch can be reclaimed the instant its
// last in-flight reader finishes, and any use after that point fails loudly
// instead of silently reading freed state.
//
// The counter is a single atomic; Acquire and Release are wait-free (one
// CAS loop against other reference movements, never against a lock), which
// keeps the serving read path as coordination-free as the primitives it
// fronts.
//
// Cross-epoch partition aliasing: under incremental re-freeze
// (Options.Refreeze == FreezeIncremental) consecutive epochs' tables share
// the columnar blocks of partitions that did not change between them — the
// newer frozenTable aliases the older one's frozenPart slices verbatim.
// Retiring and draining an epoch severs only that Snapshot's table pointer;
// it never touches the blocks themselves, which stay alive for exactly as
// long as any epoch's table references them (ordinary GC reachability).
// Blocks are immutable after construction, so a live epoch reading through
// an aliased block is race-free regardless of what its sibling epochs do.
// Dirty partitions are re-materialized into fresh arrays each epoch
// (frozenPart.born records which epoch), so a retired epoch shares nothing
// through them — the severed table pointer is the only route, and it
// panics.
type Snapshot struct {
	epoch     uint64
	table     atomic.Pointer[PotentialTable]
	refs      atomic.Int64
	onRelease func()
}

// NewSnapshot publishes pt as epoch e with one outstanding (publisher)
// reference. onRelease, if non-nil, runs exactly once, on whichever
// goroutine drops the final reference — the point at which the epoch is
// fully drained and its memory is reclaimable.
func NewSnapshot(e uint64, pt *PotentialTable, onRelease func()) *Snapshot {
	if pt == nil {
		panic("core: NewSnapshot with nil table")
	}
	s := &Snapshot{epoch: e, onRelease: onRelease}
	s.table.Store(pt)
	s.refs.Store(1)
	return s
}

// Epoch returns the epoch number the snapshot was published as.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Acquire takes a reader reference. It fails (returns false) only once the
// snapshot has fully drained — i.e. the publisher retired it and every
// earlier reader released — at which point the caller must re-resolve the
// current epoch and try again.
func (s *Snapshot) Acquire() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference taken by Acquire (or the publisher reference,
// via Retire). Dropping the final reference severs the table pointer and
// runs the onRelease hook. Releasing more times than acquired panics.
func (s *Snapshot) Release() {
	r := s.refs.Add(-1)
	if r < 0 {
		panic("core: Snapshot.Release without matching Acquire")
	}
	if r == 0 {
		s.table.Store(nil)
		if s.onRelease != nil {
			s.onRelease()
		}
	}
}

// Retire drops the publisher reference installed by NewSnapshot. The
// snapshot stays readable for every reader that acquired before (or during)
// retirement; the release hook fires once the last of them finishes. Call
// exactly once, after the epoch has been unpublished.
func (s *Snapshot) Retire() { s.Release() }

// Table returns the snapshot's table. The caller must hold a reference
// (publisher or Acquire); calling after the snapshot drained panics — this
// is the read-after-release tripwire the serving tests assert never fires.
func (s *Snapshot) Table() *PotentialTable {
	pt := s.table.Load()
	if pt == nil {
		panic(fmt.Sprintf("core: Snapshot epoch %d used after release", s.epoch))
	}
	return pt
}

// Refs returns the current reference count (0 = fully drained). It is a
// monitoring signal — the count can move concurrently — not a
// synchronization primitive.
func (s *Snapshot) Refs() int64 { return s.refs.Load() }

// Released reports whether the snapshot has fully drained.
func (s *Snapshot) Released() bool { return s.refs.Load() <= 0 }
