package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"waitfreebn/internal/obs"
)

// Metric names published by the marginal cache. Documented in README.md
// ("Observability"); keep the two in sync.
const (
	metricCacheHits      = "core_marg_cache_hits_total"
	metricCacheMisses    = "core_marg_cache_misses_total"
	metricCacheEvictions = "core_marg_cache_evictions_total"
	metricCacheCells     = "core_marg_cache_cells"
	metricCacheEntries   = "core_marg_cache_entries"
)

// maxFusedScanCells bounds the total cell count of one fused
// MarginalizeManyCtx batch issued by the cached entry point. The fused scan
// allocates a partial array of that many cells per worker, so the bound
// keeps peak memory at p × maxFusedScanCells × 8 bytes regardless of how
// many marginals a wave requests; larger batches are split into several
// scans. CI-test marginals are tiny (≤ r^(MaxCondSet+2) cells), so in
// practice a whole wave fits in one scan.
const maxFusedScanCells = 1 << 18

// Reorder returns the same marginal distribution with its axes permuted
// into the given variable order, which must be a permutation of mg.Vars.
// Counts are copied cell by cell — O(cells × arity) — so the receiver is
// left untouched; when vars already equals mg.Vars the receiver itself is
// returned. This is what lets the marginal cache store one canonical
// (sorted) layout per variable set and still serve consumers that need the
// (conditioning..., x, y) layout of the CI tests.
func (mg *Marginal) Reorder(vars []int) *Marginal {
	k := len(mg.Vars)
	if len(vars) != k {
		panic(fmt.Sprintf("core: Reorder over %d variables on a %d-variable marginal", len(vars), k))
	}
	same := true
	for i, v := range vars {
		if mg.Vars[i] != v {
			same = false
			break
		}
	}
	if same {
		return mg
	}
	// axis[i] = position in mg.Vars of the variable at target position i.
	axis := make([]int, k)
	for i, v := range vars {
		found := -1
		for j, mv := range mg.Vars {
			if mv == v {
				found = j
				break
			}
		}
		if found < 0 {
			panic(fmt.Sprintf("core: Reorder target %v is not a permutation of %v", vars, mg.Vars))
		}
		axis[i] = found
	}
	card := make([]int, k)
	for i := range vars {
		card[i] = mg.Card[axis[i]]
	}
	// strideTo[j] = stride in the target layout of source axis j.
	strideTo := make([]int, k)
	stride := 1
	for i := k - 1; i >= 0; i-- {
		strideTo[axis[i]] = stride
		stride *= card[i]
	}
	out := make([]uint64, len(mg.Counts))
	state := make([]int, k) // odometer over the source layout
	for _, c := range mg.Counts {
		target := 0
		for j := 0; j < k; j++ {
			target += state[j] * strideTo[j]
		}
		out[target] = c
		for j := k - 1; j >= 0; j-- {
			state[j]++
			if state[j] < mg.Card[j] {
				break
			}
			state[j] = 0
		}
	}
	return &Marginal{Vars: append([]int(nil), vars...), Card: card, Counts: out, M: mg.M}
}

// CacheStats is a point-in-time snapshot of a MarginalCache's counters,
// reported by structure.Result and the CLIs.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// EpochEvictions counts entries dropped because their freeze-epoch stamp
	// no longer matched the table being queried (epoch-swap invalidation).
	EpochEvictions uint64 `json:"epoch_evictions"`
	Entries        int    `json:"entries"`
	Cells          int64  `json:"cells"`
	MaxCells       int64  `json:"max_cells"`
}

// HitRate returns hits / (hits + misses), or 0 when nothing was looked up.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the stats as a single human-readable line.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d (%.1f%% hit rate) entries=%d cells=%d/%d evictions=%d epoch-evictions=%d",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries, s.Cells, s.MaxCells, s.Evictions, s.EpochEvictions)
}

// MarginalCache memoizes marginal tables by their variable set so repeated
// conditioning sets — across CI-test pairs and across the greedy shrink
// loop — are served from memory instead of rescanning the potential table.
// Keys are the sorted variable set, so I(x;y|Z) and I(y;x|Z) (and any other
// axis order over the same variables) share one entry; consumers get their
// requested layout back via Reorder. The cache is bounded by total cell
// count and evicts whole entries FIFO. All methods are safe for concurrent
// use; the nil *MarginalCache is the disabled cache (every lookup misses,
// every insert is dropped).
type MarginalCache struct {
	mu       sync.Mutex
	maxCells int64
	cells    int64
	entries  map[string]cacheEntry
	fifo     []string

	hits, misses, evictions, epochEvictions uint64

	// obs handles, hoisted at construction (nil when disabled).
	mHits, mMisses, mEvictions *obs.Counter
	mCells, mEntries           *obs.Gauge
}

// NewMarginalCache returns a cache bounded to maxCells total table cells
// (≈ 8·maxCells bytes of counts). A non-nil registry receives the
// core_marg_cache_* metrics; nil disables instrumentation.
func NewMarginalCache(maxCells int, reg *obs.Registry) *MarginalCache {
	if maxCells <= 0 {
		panic(fmt.Sprintf("core: NewMarginalCache with maxCells = %d", maxCells))
	}
	c := &MarginalCache{maxCells: int64(maxCells), entries: make(map[string]cacheEntry)}
	if reg != nil {
		reg.Help(metricCacheHits, "marginal-cache lookups served from memory")
		reg.Help(metricCacheMisses, "marginal-cache lookups that required a table scan")
		reg.Help(metricCacheCells, "table cells currently held by the marginal cache")
		c.mHits = reg.Counter(metricCacheHits)
		c.mMisses = reg.Counter(metricCacheMisses)
		c.mEvictions = reg.Counter(metricCacheEvictions)
		c.mCells = reg.Gauge(metricCacheCells)
		c.mEntries = reg.Gauge(metricCacheEntries)
	}
	return c
}

// Stats returns a snapshot of the cache counters. The nil cache reports
// the zero value.
func (c *MarginalCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		EpochEvictions: c.epochEvictions,
		Entries:        len(c.entries),
		Cells:          c.cells,
		MaxCells:       c.maxCells,
	}
}

// cacheEntry stamps a cached marginal with the freeze epoch of the table it
// was computed from: a lookup under a different epoch is a miss that evicts
// the stale entry in place, so an epoch swap invalidates lazily — entry by
// entry as each is next touched — instead of wholesale.
type cacheEntry struct {
	mg    *Marginal
	epoch uint64
}

// get returns the cached canonical marginal for key at the given freeze
// epoch, or nil. A stamp mismatch evicts the stale entry and counts as a
// miss. Counts hits and misses.
func (c *MarginalCache) get(key string, epoch uint64) *Marginal {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ent, ok := c.entries[key]
	if ok && ent.epoch != epoch {
		// Stale epoch: drop it now rather than waiting for FIFO pressure.
		// Its fifo slot stays behind; the eviction loop tolerates victims
		// that are already gone.
		c.cells -= int64(len(ent.mg.Counts))
		delete(c.entries, key)
		c.epochEvictions++
		ok = false
	}
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if ok {
		c.mHits.Inc()
		return ent.mg
	}
	c.mMisses.Inc()
	return nil
}

// put inserts a canonical marginal stamped with its table's freeze epoch,
// evicting FIFO until it fits. Entries larger than the whole budget are not
// cached.
func (c *MarginalCache) put(key string, epoch uint64, mg *Marginal) {
	if c == nil || int64(len(mg.Counts)) > c.maxCells {
		return
	}
	c.mu.Lock()
	if ent, ok := c.entries[key]; ok && ent.epoch == epoch {
		c.mu.Unlock()
		return
	} else if ok {
		// Same varset computed at a newer epoch: replace the stale entry.
		c.cells -= int64(len(ent.mg.Counts))
		delete(c.entries, key)
		c.epochEvictions++
	}
	evicted := uint64(0)
	for c.cells+int64(len(mg.Counts)) > c.maxCells && len(c.fifo) > 0 {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		if old, ok := c.entries[victim]; ok {
			c.cells -= int64(len(old.mg.Counts))
			delete(c.entries, victim)
			evicted++
		}
	}
	c.entries[key] = cacheEntry{mg: mg, epoch: epoch}
	c.fifo = append(c.fifo, key)
	c.cells += int64(len(mg.Counts))
	c.evictions += evicted
	cells, entries := c.cells, len(c.entries)
	c.mu.Unlock()
	c.mEvictions.Add(evicted)
	c.mCells.Set(float64(cells))
	c.mEntries.Set(float64(entries))
}

// AppendVarsetKey appends the canonical cache-key encoding of vars — which
// must already be sorted ascending — to dst and returns the extended slice.
// It is the allocation-free form of varsetKey for callers that keep their
// own key scratch (the serve read hot path); pair with GetSorted.
func AppendVarsetKey(dst []byte, vars ...int) []byte {
	for _, v := range vars {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// GetSorted returns the cached canonical marginal for the sorted varset
// whose AppendVarsetKey encoding is key, at the given freeze epoch, or nil.
// The hit path performs no heap allocation (the map index on string(key)
// compiles to an allocation-free lookup), which is what lets the serve
// layer answer a repeated marginal query without touching the allocator.
// Semantics match the unexported get: a stale-epoch entry is evicted in
// place and counted as a miss.
func (c *MarginalCache) GetSorted(key []byte, epoch uint64) *Marginal {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ent, ok := c.entries[string(key)]
	if ok && ent.epoch != epoch {
		c.cells -= int64(len(ent.mg.Counts))
		delete(c.entries, string(key))
		c.epochEvictions++
		ok = false
	}
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if ok {
		c.mHits.Inc()
		return ent.mg
	}
	c.mMisses.Inc()
	return nil
}

// varsetKey encodes a canonical (sorted) variable set as a map key.
func varsetKey(vars []int) string {
	buf := make([]byte, 0, 2*len(vars)+1)
	for _, v := range vars {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return string(buf)
}

// sortedVarset returns vars sorted ascending, reusing vars itself when it
// is already sorted.
func sortedVarset(vars []int) []int {
	if sort.IntsAreSorted(vars) {
		return vars
	}
	s := append([]int(nil), vars...)
	sort.Ints(s)
	return s
}

// MarginalizeManyCached computes marginals for several variable subsets —
// in the exact axis order each subset requests — deduplicating the scans
// through the cache. See MarginalizeManyCachedCtx.
//
// Deprecated: use MarginalizeManyCachedCtx.
func (t *PotentialTable) MarginalizeManyCached(varsets [][]int, p int, cache *MarginalCache) []*Marginal {
	out, err := t.MarginalizeManyCachedCtx(context.Background(), varsets, p, cache)
	mustScan(err)
	return out
}

// MarginalizeManyCachedCtx is the cross-pair fused marginalization entry
// point the phase-2/3 wavefront runs on. It resolves each requested varset
// against the cache under its canonical (sorted) key, dedupes the misses —
// including requests within the same call that share a variable set —
// computes them with as few fused MarginalizeManyCtx scans as the
// maxFusedScanCells budget allows, inserts the canonical results into the
// cache, and returns every marginal reordered to its requested axis order.
//
// Results are bit-identical to calling MarginalizeManyCtx directly: counts
// are exact integers and Reorder is an exact permutation. A nil cache
// disables memoization but keeps the in-call dedupe and scan fusion.
func (t *PotentialTable) MarginalizeManyCachedCtx(ctx context.Context, varsets [][]int, p int, cache *MarginalCache) ([]*Marginal, error) {
	if len(varsets) == 0 {
		return nil, nil
	}
	out := make([]*Marginal, len(varsets))
	canon := make([][]int, len(varsets))
	keys := make([]string, len(varsets))

	// Entries are keyed by (varset, freeze epoch): after an epoch swap the
	// same cache serves the new table, invalidating stale entries lazily as
	// they are touched. Unfrozen and non-builder tables stamp epoch 0,
	// which behaves exactly like the unversioned cache.
	epoch := t.FreezeEpoch()

	// Resolve hits; group misses by canonical key.
	missOrder := make([]string, 0, len(varsets)) // first-seen order
	missSets := make(map[string][]int)           // key → canonical varset
	missers := make(map[string][]int)            // key → requester indexes
	for k, vars := range varsets {
		canon[k] = sortedVarset(vars)
		keys[k] = varsetKey(canon[k])
		if mg := cache.get(keys[k], epoch); mg != nil {
			out[k] = mg.Reorder(vars)
			continue
		}
		if _, seen := missSets[keys[k]]; !seen {
			missOrder = append(missOrder, keys[k])
			missSets[keys[k]] = canon[k]
		}
		missers[keys[k]] = append(missers[keys[k]], k)
	}

	// Compute the misses in fused scans bounded by the cell budget.
	for lo := 0; lo < len(missOrder); {
		hi := lo
		cells := 0
		for hi < len(missOrder) {
			c := t.codec.SubsetDecoder(missSets[missOrder[hi]]).Cells()
			if hi > lo && cells+c > maxFusedScanCells {
				break
			}
			cells += c
			hi++
		}
		batch := make([][]int, hi-lo)
		for i, key := range missOrder[lo:hi] {
			batch[i] = missSets[key]
		}
		ms, err := t.MarginalizeManyCtx(ctx, batch, p)
		if err != nil {
			return nil, err
		}
		for i, key := range missOrder[lo:hi] {
			cache.put(key, epoch, ms[i])
			for _, k := range missers[key] {
				out[k] = ms[i].Reorder(varsets[k])
			}
		}
		lo = hi
	}
	return out, nil
}
