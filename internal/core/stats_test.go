package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestStatsStringAndJSON(t *testing.T) {
	st := Stats{
		P: 4, LocalKeys: 100, ForeignKeys: 300, Stage2Pops: 300,
		DistinctKeys: 57, WriteBatch: 64, BatchFlushes: 12, ForeignDupes: 40,
		SplitKeys: 25, SplitMerges: 25,
		Stage1Time: 1500 * time.Microsecond,
		Stage2Time: 200 * time.Microsecond, BarrierWait: 50 * time.Microsecond,
		TableHint: 1 << 24, TableHintCapped: true,
		DestQueueWords: []uint64{10, 20, 30, 40},
	}
	s := st.String()
	for _, want := range []string{"P=4", "local=100", "foreign=300", "pops=300", "distinct=57", "(capped)", "wb=64", "flushes=12", "dupes=40", "split=25", "merged=25"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}

	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p":4`, `"foreign_keys":300`, `"stage1_seconds":0.0015`, `"table_hint_capped":true`, `"write_batch":64`, `"batch_flushes":12`, `"foreign_dupes_combined":40`, `"split_keys":25`, `"split_merges":25`, `"dest_queue_words":[10,20,30,40]`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("JSON missing %q: %s", want, blob)
		}
	}

	var back Stats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, st) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, st)
	}
}

func TestStatsStringUncapped(t *testing.T) {
	if strings.Contains(Stats{}.String(), "capped") {
		t.Error("zero Stats claims a capped hint")
	}
}

func TestBuildRecordsAppliedTableHint(t *testing.T) {
	d := uniformData(t, 5000, 8, 2, 21)
	_, st, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.TableHint <= 0 {
		t.Errorf("applied TableHint not recorded: %+v", st)
	}
	if st.TableHintCapped {
		t.Errorf("small build reports a capped hint: %+v", st)
	}

	// An explicit hint beyond the cap must be truncated and reported.
	_, st, err = Build(d, Options{P: 2, TableHint: maxTableHint * 4})
	if err != nil {
		t.Fatal(err)
	}
	if !st.TableHintCapped || st.TableHint != maxTableHint {
		t.Errorf("oversized hint not capped+reported: hint=%d capped=%v", st.TableHint, st.TableHintCapped)
	}
}

func TestWithDefaultsCapsHeuristicHint(t *testing.T) {
	// A huge m with P=1 drives the heuristic hint past the cap.
	o, capped := Options{P: 1}.withDefaults(1<<26, 1<<62)
	if !capped || o.TableHint != maxTableHint {
		t.Fatalf("heuristic hint not capped: hint=%d capped=%v", o.TableHint, capped)
	}
	o, capped = Options{P: 1}.withDefaults(1000, 1<<62)
	if capped || o.TableHint != 2000 {
		t.Fatalf("small heuristic hint wrong: hint=%d capped=%v", o.TableHint, capped)
	}
}
