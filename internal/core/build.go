package core

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"time"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/sched"
	"waitfreebn/internal/spsc"
)

// Options configures the wait-free table construction primitive. The zero
// value selects the paper's configuration at P = GOMAXPROCS: modulo
// partitioning, unbounded chunked queues, open-addressing tables.
type Options struct {
	// P is the number of cores (workers). 0 means GOMAXPROCS.
	P int
	// NumPartitions is the number of home partitions the key space is
	// split into. 0 (and anything below P) means P — one partition per
	// worker, the paper's configuration. Values above P give the
	// rebalancer real granularity: with only P partitions an LPT
	// re-assignment is a pure permutation of owners (each worker gets
	// exactly one partition back), so imbalance cannot improve; with
	// NumPartitions = k×P the heaviest homes can spread across owners.
	// Initially homes are dealt cyclically (home h → worker h mod P),
	// which reproduces the identity mapping when NumPartitions == P.
	NumPartitions int
	// Partition selects the key→owner mapping (ablation A2).
	Partition PartitionKind
	// Queue selects the inter-core queue implementation (ablation A1).
	Queue spsc.Kind
	// RingCapacity sizes each queue when Queue == spsc.KindRing. 0 sizes
	// each ring to hold a worker's entire block (m/P rounded up), which
	// can never overflow.
	RingCapacity int
	// NoSpill disables graceful degradation for bounded ring queues. By
	// default a full ring spills overflow keys into an unbounded chunked
	// side queue (counted in Stats.SpilledKeys) and the build completes;
	// with NoSpill a full ring fails the build with an overflow error —
	// the strict mode the ablation benches measure.
	NoSpill bool
	// Table selects the per-partition count table (ablation A4).
	Table TableKind
	// TableHint pre-sizes each partition table. 0 applies a heuristic
	// based on m and the key space. Hints above maxTableHint are capped;
	// the applied hint and the cap event are reported in Stats.
	TableHint int
	// WriteBatch sizes the per-worker per-destination write-combining
	// buffers of the batched write path: foreign keys accumulate in a
	// core-private buffer, duplicates are combined into (key, delta)
	// words, and full buffers flush with one PushBatch — one atomic
	// publish per batch instead of one per key. 0 selects the default
	// (defaultWriteBatch); 1 selects the legacy per-key path, kept as the
	// ablation baseline; values above maxWriteBatch are clamped. Both
	// paths produce bit-identical tables.
	WriteBatch int
	// HotSplit enables skew-adaptive hot-key splitting on the batched
	// write path: keys whose write-combined delta crosses HotThreshold in
	// a single flush are promoted to core-private delta counters that
	// bypass the SPSC queues entirely and are merged into the owner's
	// table after the existing build barrier (the natural phase boundary,
	// Doppel-style). Every split structure stays single-writer-per-phase,
	// so wait-freedom is untouched, and the merged table is bit-identical
	// to a non-split build. Effective only when P > 1 and WriteBatch > 1.
	HotSplit bool
	// HotThreshold is the per-flush combined delta at which a key is
	// promoted to split counting (0 = defaultHotThreshold; minimum 2). A
	// flush of WriteBatch foreign keys where one key contributes >=
	// HotThreshold occurrences is the online skew signal — no extra
	// bookkeeping beyond the delta words the batched path already builds.
	HotThreshold int
	// Obs receives construction metrics (per-worker stage timings, queue
	// traffic, partition occupancy). nil disables instrumentation; the
	// primitives aggregate per worker in plain locals and publish once per
	// build, so the disabled cost is a handful of nil checks per build.
	Obs *obs.Registry
	// Refreeze selects how Builder.SnapshotCtx materializes each epoch:
	// FreezeFull drains every partition, FreezeIncremental records delta
	// runs between snapshots and re-freezes only what changed (bit-identical
	// either way). Incremental mode decorates each partition table with a
	// delta recorder, so it costs a few stores per mutation; full mode adds
	// nothing. Only Builder snapshots consult it — one-shot Build ignores it.
	Refreeze FreezeMode
}

// maxTableHint caps the per-partition up-front allocation; tables grow on
// demand past it. A capped hint is recorded in Stats.TableHintCapped.
const maxTableHint = 1 << 24

// Batched-write-path sizing. defaultWriteBatch is the per-destination
// write-combining buffer: 64 keys = 512 bytes, one streamed cache-line
// growth at a time, small enough that P buffers stay resident per worker.
// encodeBlockRows is how many rows stage 1 encodes per EncodeRows/EncodeFlat
// call; drainBatch is the stage-2 PopBatch chunk. maxDeltaBits bounds the
// delta field packed into a queued word's high bits (see combineDeltas).
const (
	defaultWriteBatch = 64
	maxWriteBatch     = 4096
	encodeBlockRows   = 1024
	drainBatch        = 512
	maxDeltaBits      = 16
)

// Hot-key splitting sizing. defaultHotThreshold is the combined per-flush
// delta that marks a key hot: 8 of a 64-key buffer means one key carries
// 12.5% of a worker's foreign traffic to that destination. hotCacheSlots is
// the per-worker direct-mapped promoted-key filter probed once per foreign
// key (4 KiB, cache-resident); splitTableCap bounds each core-private delta
// table so a pathological key stream cannot grow P² tables without bound —
// keys beyond the cap simply keep flowing through the queues, which is
// always correct.
const (
	defaultHotThreshold = 8
	hotCacheSlots       = 512
	splitTableCap       = 4096
)

// withDefaults resolves zero fields and reports whether the table hint was
// truncated by maxTableHint.
func (o Options) withDefaults(m int, keySpace uint64) (Options, bool) {
	if o.P <= 0 {
		o.P = sched.DefaultP()
	}
	if o.NumPartitions < o.P {
		o.NumPartitions = o.P
	}
	if o.WriteBatch <= 0 {
		o.WriteBatch = defaultWriteBatch
	} else if o.WriteBatch > maxWriteBatch {
		o.WriteBatch = maxWriteBatch
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = defaultHotThreshold
	} else if o.HotThreshold < 2 {
		o.HotThreshold = 2
	}
	if o.RingCapacity <= 0 {
		o.RingCapacity = (m + o.P - 1) / o.P
		if o.RingCapacity == 0 {
			o.RingCapacity = 1
		}
	}
	capped := false
	if o.TableHint <= 0 {
		// Expected distinct keys is at most min(m, keySpace); assume they
		// spread evenly over partitions and pad by 2× to absorb skew.
		distinct := uint64(m)
		if keySpace < distinct {
			distinct = keySpace
		}
		hint := distinct / uint64(o.NumPartitions) * 2
		if hint > maxTableHint {
			hint = maxTableHint
			capped = true
		}
		o.TableHint = int(hint)
	} else if o.TableHint > maxTableHint {
		o.TableHint = maxTableHint
		capped = true
	}
	return o, capped
}

// Stats reports what the construction primitive did, for instrumentation
// and for the contention-shape comparisons in EXPERIMENTS.md.
type Stats struct {
	P         int    // workers used
	LocalKeys uint64 // stage-1 keys updated directly in the owner's table
	// ForeignKeys counts the logical keys routed through queues. With the
	// batched write path duplicates are combined into (key, delta) words
	// before queueing, so fewer words travel; ForeignKeys still counts
	// keys (the pre-aggregation count), and Stage2Pops counts the key
	// mass drained (sum of deltas) — the two remain exactly equal on
	// success, batched or not.
	ForeignKeys  uint64
	Stage2Pops   uint64 // key mass drained in stage 2 (== ForeignKeys on success)
	DistinctKeys int    // table entries after construction

	// WriteBatch is the per-destination buffer size actually applied
	// (1 = legacy per-key path). BatchFlushes counts write-combining
	// buffer flushes (PushBatch calls); ForeignDupes counts duplicate
	// foreign keys combined into deltas before queueing. Both are 0 on
	// the legacy path.
	WriteBatch   int
	BatchFlushes uint64
	ForeignDupes uint64

	// SplitKeys counts the key mass hot-key splitting diverted from the
	// queues into core-private delta tables in stage 1; SplitMerges counts
	// the mass merged back into the owner tables after the barrier. The
	// two are exactly equal on success — the split analogue of the
	// Stage2Pops == ForeignKeys invariant, which itself is untouched
	// because split keys are never counted as foreign. Both are 0 unless
	// Options.HotSplit is effective.
	SplitKeys   uint64
	SplitMerges uint64

	// SpilledKeys counts queued elements that overflowed a bounded ring
	// and were routed through the unbounded spill side queue instead —
	// the graceful-degradation signal that RingCapacity is undersized for
	// the workload. On the batched path the unit is post-aggregation
	// (key, delta) words, since those are what occupy ring slots. Always
	// 0 for unbounded queues or with Options.NoSpill.
	SpilledKeys uint64

	// Stage1Time and Stage2Time are the slowest worker's wall-clock in
	// each stage (the critical path). The paper's analysis predicts
	// stage 1 = O(m·n/P) and stage 2 = O(m/P); these expose the split.
	Stage1Time time.Duration
	Stage2Time time.Duration
	// BarrierWait is the longest any worker spent in the inter-stage
	// barrier — the load-imbalance bound (a worker waits exactly as long
	// as the slowest straggler outlasts it).
	BarrierWait time.Duration

	// TableHint is the per-partition pre-size actually applied after
	// defaulting, and TableHintCapped reports whether it was truncated at
	// the allocation cap — previously a silent event bench runs could not
	// see.
	TableHint       int
	TableHintCapped bool

	// DestQueueWords[j] is the total number of words pushed into worker
	// j's column of the queue matrix — the per-owner queue-traffic
	// histogram. Under key skew one owner's column dominates; hot-key
	// splitting collapses exactly that column, which is the 1-CPU-visible
	// proxy for the contention the split removes (see EXPERIMENTS.md).
	DestQueueWords []uint64
}

// queueMatrix holds the P×(P-1) queues of Algorithm 1: q[i][j] carries keys
// produced by core i and owned by core j (q[i][i] is unused and nil).
type queueMatrix [][]spsc.Queue

// newQueueMatrix allocates the queues. Bounded rings are wrapped in
// spillover queues unless noSpill asks for strict overflow-fails semantics.
func newQueueMatrix(p int, kind spsc.Kind, ringCap int, noSpill bool) queueMatrix {
	q := make(queueMatrix, p)
	for i := range q {
		q[i] = make([]spsc.Queue, p)
		for j := range q[i] {
			if i == j {
				continue
			}
			if kind == spsc.KindRing && !noSpill {
				q[i][j] = spsc.NewSpillover(ringCap)
			} else {
				q[i][j] = spsc.New(kind, ringCap)
			}
		}
	}
	return q
}

// spilledKeys sums the spill counters across a quiesced queue matrix.
func (q queueMatrix) spilledKeys() uint64 {
	var total uint64
	for i := range q {
		for j := range q[i] {
			if s, ok := q[i][j].(*spsc.Spillover); ok {
				total += s.Spilled()
			}
		}
	}
	return total
}

// destWords sums the push counters of each destination's queue column
// across a quiesced matrix — Stats.DestQueueWords. Counters are cumulative
// over a queue's lifetime, so for an incremental Builder this is the total
// across all blocks.
func (q queueMatrix) destWords() []uint64 {
	out := make([]uint64, len(q))
	for i := range q {
		for j := range q[i] {
			if q[i][j] == nil {
				continue
			}
			out[j] += q[i][j].Pushed()
		}
	}
	return out
}

// Build runs the wait-free table construction primitive over data:
// stage 1 (Algorithm 1) classifies and routes keys, one barrier, stage 2
// (Algorithm 2) drains foreign keys. Every worker writes only its own
// partition table and the tails of its own queues, so no operation ever
// waits on another worker.
//
// Build fails only on configuration errors (e.g. a bounded ring queue that
// overflows under Options.NoSpill); the default options cannot fail.
//
// Deprecated: use BuildCtx. The context-first surface is the canonical API;
// this shim exists for callers that predate it and simply passes
// context.Background().
func Build(data *dataset.Dataset, opts Options) (*PotentialTable, Stats, error) {
	return BuildCtx(context.Background(), data, opts)
}

// BuildCtx is Build under the fault-tolerant execution contract: workers
// observe ctx cancellation at chunk boundaries and return context.Canceled
// (or DeadlineExceeded) in bounded time with every worker goroutine joined,
// and a panicking worker surfaces as a *sched.WorkerError instead of
// crashing the process while its peers spin in the barrier.
func BuildCtx(ctx context.Context, data *dataset.Dataset, opts Options) (*PotentialTable, Stats, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, Stats{}, fmt.Errorf("core: %w", err)
	}
	return buildCtx(ctx, keySourceFromDataset(data, codec), blockFromDataset(data, codec),
		codec, data.NumSamples(), opts)
}

// KeySource yields the key of sample i. Build encodes rows on the fly
// (the O(m·n/P) encode cost is part of stage 1, as in the paper);
// BuildKeys also accepts pre-encoded key streams for benches that isolate
// table-update cost from encode cost.
type KeySource func(i int) uint64

// blockSource fills dst[:hi-lo] with the keys of samples [lo, hi). The
// batched write path pulls keys in encodeBlockRows-sized blocks so the
// encode runs column-major over a slab (encoding.EncodeRows/EncodeFlat)
// instead of row by row; the legacy WriteBatch=1 path keeps pulling
// per-key from a KeySource.
type blockSource func(lo, hi int, dst []uint64)

func keySourceFromDataset(data *dataset.Dataset, codec *encoding.Codec) KeySource {
	return func(i int) uint64 { return codec.Encode(data.Row(i)) }
}

func blockFromDataset(data *dataset.Dataset, codec *encoding.Codec) blockSource {
	return func(lo, hi int, dst []uint64) {
		codec.EncodeFlat(data.RowsFlat(lo, hi), dst)
	}
}

func blockFromKeySource(source KeySource) blockSource {
	return func(lo, hi int, dst []uint64) {
		for i := lo; i < hi; i++ {
			dst[i-lo] = source(i)
		}
	}
}

// KeySourceFromSlice adapts a pre-encoded key slice.
func KeySourceFromSlice(keys []uint64) KeySource {
	return func(i int) uint64 { return keys[i] }
}

// workerStats accumulates one worker's contribution to Stats; workers
// write only their own slot, so no synchronization beyond the final join
// is needed. The trailing pad keeps adjacent slots of the ws slice on
// separate cache-line pairs: the counters are hot stores in the stage-1
// exit paths and the per-block accumulation loops, and without the pad
// slots for workers w and w+1 share a line, turning those private writes
// into cross-core invalidation traffic (classic false sharing — same cure
// as the pads between spsc.Ring's head and tail). 10×8 counter/duration
// bytes + 48 pad = 128, two lines, which also keeps the adjacent-line
// prefetcher from coupling neighbours.
type workerStats struct {
	local, foreign, pops uint64
	flushes, dupes       uint64
	split, merges        uint64
	stage1, stage2       time.Duration
	barrier              time.Duration
	_                    [48]byte
}

// cancelCheckStride is how many keys a worker processes between context
// checks — the "chunk boundary" of the cancellation contract. Small enough
// that cancellation lands promptly, large enough that the per-key cost of
// the countdown is lost in the encode+hash work.
const cancelCheckStride = 8192

// twoStage bundles the shared state of one two-stage construction episode;
// BuildKeysCtx runs one over a full key stream, Builder.addKeys one per
// incremental block. source feeds the legacy per-key path (WriteBatch=1);
// block feeds the batched path; keyBits is bits.Len64(keySpace-1), the
// width of the key field in a queued delta word.
type twoStage struct {
	m      int
	source KeySource
	block  blockSource
	parts  []hashtable.Counter
	queues queueMatrix
	// home is the static key→partition mapping; homes[h] is the worker
	// that currently owns home partition h, and remapped caches whether
	// homes deviates from the one-partition-per-worker identity (always
	// true when len(homes) > P, else only after a Rebalance) so the
	// unremapped fast paths stay branch-per-block cheap. Partition tables
	// are always indexed by home, so rebalancing moves ownership without
	// moving a single table entry.
	home       func(uint64) int
	homes      []int
	remapped   bool
	split      *splitState
	barrier    *sched.Barrier
	ringCap    int
	writeBatch int
	keyBits    uint
}

// splitState is the hot-key splitting machinery shared by the workers of
// one build (or persisted across an incremental Builder's blocks, so keys
// stay promoted between blocks). Each worker touches only its own row of
// tabs and its own cache during stage 1, and only column w of tabs after
// the barrier — single writer per phase, with the barrier providing the
// hand-off, exactly like the queue matrix.
type splitState struct {
	threshold uint64
	// tabs[src][dst] is the core-private delta table where producer src
	// accumulates promoted keys owned by dst, lazily allocated on first
	// promotion; dst merges and Resets it in stage 2.
	tabs [][]*hashtable.Table
	// caches[w] is worker w's direct-mapped promoted-key filter: slot
	// rng.Mix64(key)&(hotCacheSlots-1) holds a promoted key or the ^0
	// sentinel. A stale or colliding entry is harmless — any key routed
	// through a split table is merged with its full delta after the
	// barrier, so the filter only steers traffic, never correctness.
	caches [][]uint64
}

func newSplitState(p, threshold int) *splitState {
	s := &splitState{
		threshold: uint64(threshold),
		tabs:      make([][]*hashtable.Table, p),
		caches:    make([][]uint64, p),
	}
	for w := 0; w < p; w++ {
		s.tabs[w] = make([]*hashtable.Table, p)
		cache := make([]uint64, hotCacheSlots)
		for i := range cache {
			cache[i] = ^uint64(0)
		}
		s.caches[w] = cache
	}
	return s
}

// cyclicHomes is the initial home→owner mapping: home partition h is owned
// by worker h mod p until a Rebalance remaps it. With nparts == p this is
// the identity; with more partitions than workers the deal stays cyclic so
// uniform data still spreads flat.
func cyclicHomes(nparts, p int) []int {
	homes := make([]int, nparts)
	for i := range homes {
		homes[i] = i % p
	}
	return homes
}

// keyFieldBits returns the number of bits a key of the given space can
// occupy — the low field of a batched queue word; the remaining high bits
// (capped at maxDeltaBits) carry the pre-aggregated delta.
func keyFieldBits(keySpace uint64) uint {
	return uint(bits.Len64(keySpace - 1))
}

// overflowErr is the bounded-queue failure both write paths surface.
func (ts twoStage) overflowErr(w, dst int) error {
	return fmt.Errorf("core: queue %d→%d overflow (ring capacity %d); use spsc.KindChunked, a larger RingCapacity, or drop Options.NoSpill", w, dst, ts.ringCap)
}

// combineDeltas turns a sorted-in-place buffer of foreign keys into
// self-contained queue words key | (delta-1)<<keyBits, combining duplicate
// keys into one word (runs longer than maxDelta emit several words). The
// words overwrite a prefix of buf; the second return is how many keys were
// combined away (len(buf) - len(words)). A word always decodes to
// (key, delta) on its own, so the spillover queue's non-FIFO reordering
// across ring and side queue cannot corrupt the count — addition commutes.
func combineDeltas(buf []uint64, keyBits uint, maxDelta uint64) ([]uint64, uint64) {
	slices.Sort(buf)
	out := 0
	for i := 0; i < len(buf); {
		key := buf[i]
		j := i + 1
		for j < len(buf) && buf[j] == key {
			j++
		}
		run := uint64(j - i)
		i = j
		for run > 0 {
			d := run
			if d > maxDelta {
				d = maxDelta
			}
			buf[out] = key | (d-1)<<keyBits
			out++
			run -= d
		}
	}
	return buf[:out], uint64(len(buf) - out)
}

// runTwoStage executes stage 1 → barrier → stage 2 on p workers under the
// RunCtx contract. Per-worker stats land in ws (valid even on error, up to
// the point each worker reached). Any failure — context cancellation,
// queue overflow, injected fault, worker panic — aborts the barrier and
// cancels the peers, and runTwoStage returns only after every worker
// goroutine has exited.
//
// WriteBatch selects the worker body: >1 runs the batched write path
// (block encode, write-combining buffers, pre-aggregated deltas, batch
// drains); 1 runs the legacy per-key path. Both produce bit-identical
// tables; wait-freedom is untouched either way, since every buffer is
// core-private and the only cross-core structures remain the SPSC queues.
func runTwoStage(ctx context.Context, p int, ts twoStage, ws []workerStats) error {
	spans := sched.BlockPartition(ts.m, p)
	batched := ts.writeBatch > 1
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		if batched {
			return ts.runWorkerBatched(ctx, p, w, spans[w], ws)
		}
		return ts.runWorkerLegacy(ctx, p, w, spans[w], ws)
	})
}

// runWorkerLegacy is the original per-key worker body, kept verbatim as
// the WriteBatch=1 ablation baseline.
func (ts twoStage) runWorkerLegacy(ctx context.Context, p, w int, span sched.Span, ws []workerStats) error {
	plan := faultinject.Active() // hoisted: nil = disabled fast path
	done := ctx.Done()

	// ---- Stage 1 (Algorithm 1): classify, update own table, route
	// foreign keys. Writes: parts[w], tails of queues[w][*].
	t0 := time.Now()
	table := ts.parts[w]
	outs := ts.queues[w]
	var local, foreign uint64
	var failure error
	plan.MaybePanic(faultinject.PanicStage1, w, 0)
	check := cancelCheckStride
	for i := span.Lo; i < span.Hi; i++ {
		if check--; check == 0 {
			check = cancelCheckStride
			select {
			case <-done:
				ws[w].local, ws[w].foreign = local, foreign
				ws[w].stage1 = time.Since(t0)
				return context.Cause(ctx)
			default:
			}
		}
		key := ts.source(i)
		h := ts.home(key)
		dst := ts.homes[h]
		if dst == w {
			// parts[h] == table unless a Rebalance remapped ownership;
			// indexing by home keeps both cases one store.
			ts.parts[h].Inc(key)
			local++
		} else {
			if plan.Fire(faultinject.QueuePushFail, w, foreign) || !outs[dst].Push(key) {
				failure = ts.overflowErr(w, dst)
				break
			}
			foreign++
		}
	}
	ws[w].local, ws[w].foreign = local, foreign
	ws[w].stage1 = time.Since(t0)
	if failure != nil {
		// Poison the barrier before leaving so peers already spinning
		// in it return the root cause instead of waiting on a party
		// that will never arrive (RunCtx's cancellation is the second,
		// redundant escape hatch).
		ts.barrier.Abort(failure)
		return failure
	}

	// ---- The single synchronization step between the stages.
	plan.MaybeStall(w, 0)
	bd, berr := ts.barrier.WaitTimedCtx(ctx)
	ws[w].barrier = bd
	if berr != nil {
		return berr
	}
	plan.MaybePanic(faultinject.PanicStage2, w, 0)

	// ---- Stage 2 (Algorithm 2): drain queues addressed to w.
	// Reads: heads of queues[*][w]; writes: parts[w].
	t1 := time.Now()
	var pops uint64
	check = cancelCheckStride
	for src := 0; src < p; src++ {
		if src == w {
			continue
		}
		q := ts.queues[src][w]
		for {
			if check--; check == 0 {
				check = cancelCheckStride
				select {
				case <-done:
					ws[w].pops = pops
					ws[w].stage2 = time.Since(t1)
					return context.Cause(ctx)
				default:
				}
			}
			key, ok := q.Pop()
			if !ok {
				break
			}
			if ts.remapped {
				ts.parts[ts.home(key)].Inc(key)
			} else {
				table.Inc(key)
			}
			pops++
		}
	}
	ws[w].pops = pops
	ws[w].stage2 = time.Since(t1)
	return nil
}

// runWorkerBatched is the block-oriented worker body. Stage 1 pulls keys
// in encodeBlockRows blocks (column-major encode), classifies them into
// core-private per-destination buffers of writeBatch keys, combines
// duplicates into delta words at flush, and publishes each flush with one
// PushBatch; owned keys batch into the partition table via AddBatch. At
// P=1 the classification disappears entirely: whole encode blocks feed
// AddBatch. Stage 2 drains with PopBatch and applies Add(key, delta).
//
// With hot-key splitting active, each flush additionally promotes keys
// whose combined delta reaches the threshold, and subsequent occurrences
// of a promoted key increment a core-private delta table instead of
// entering the buffers at all; the owner folds those tables in after the
// barrier. Split keys are not foreign keys — they skip both the foreign
// counter and the queue-push fault point, so the fault sequence under
// splitting simply has fewer events, never reordered ones.
//
// Queue-push faults fire per logical key at buffer-append time, with the
// same (worker, running-foreign-count) sequence the legacy path uses, so
// existing chaos seeds keep their meaning.
func (ts twoStage) runWorkerBatched(ctx context.Context, p, w int, span sched.Span, ws []workerStats) error {
	plan := faultinject.Active() // hoisted: nil = disabled fast path
	done := ctx.Done()
	deltaBits := 64 - ts.keyBits
	if deltaBits > maxDeltaBits {
		deltaBits = maxDeltaBits
	}
	maxDelta := uint64(1) << deltaBits
	keyMask := uint64(1)<<ts.keyBits - 1

	// ---- Stage 1 (Algorithm 1), batched. Writes: parts[w], tails of
	// queues[w][*], and (when splitting) row w of the split tables; every
	// buffer below is private to this worker.
	t0 := time.Now()
	table := ts.parts[w]
	outs := ts.queues[w]
	var local, foreign, flushes, dupes, split uint64
	var failure error
	plan.MaybePanic(faultinject.PanicStage1, w, 0)

	var splitTabs []*hashtable.Table
	var cache []uint64
	if ts.split != nil && p > 1 {
		splitTabs = ts.split.tabs[w]
		cache = ts.split.caches[w]
	}

	keys := make([]uint64, encodeBlockRows)
	var bufs [][]uint64
	var own []uint64    // owned-key batch when ownership is unremapped
	var ownh [][]uint64 // per-home owned-key batches when remapped
	if p > 1 {
		bufs = make([][]uint64, p)
		for d := range bufs {
			if d != w {
				bufs[d] = make([]uint64, 0, ts.writeBatch)
			}
		}
	}
	// Owned keys must land in their home partition even at P=1 once more
	// homes than workers exist (dense lattice tables and the occupancy
	// histogram are per-home), so the per-home buffers key off remapped,
	// not the worker count.
	if ts.remapped {
		ownh = make([][]uint64, len(ts.homes))
		for h, o := range ts.homes {
			if o == w {
				ownh[h] = make([]uint64, 0, encodeBlockRows)
			}
		}
	} else if p > 1 {
		own = make([]uint64, 0, encodeBlockRows)
	}
	flush := func(dst int) bool {
		b := bufs[dst]
		if len(b) == 0 {
			return true
		}
		words, combined := combineDeltas(b, ts.keyBits, maxDelta)
		flushes++
		dupes += combined
		if cache != nil {
			// Promotion: a key that combined to >= threshold occurrences
			// within one flush is hot — install it in the filter so its
			// future occurrences bypass the queues. This flush's words
			// still travel the queue; only the filter changes.
			for _, word := range words {
				if word>>ts.keyBits+1 < ts.split.threshold {
					continue
				}
				key := word & keyMask
				tab := splitTabs[dst]
				if tab == nil {
					tab = hashtable.New(ts.writeBatch)
					splitTabs[dst] = tab
				}
				if tab.Len() >= splitTableCap && tab.Get(key) == 0 {
					continue
				}
				cache[rng.Mix64(key)&(hotCacheSlots-1)] = key
			}
		}
		if acc := outs[dst].PushBatch(words); acc != len(words) {
			return false
		}
		bufs[dst] = b[:0]
		return true
	}
	check := cancelCheckStride
outer:
	for lo := span.Lo; lo < span.Hi; lo += encodeBlockRows {
		hi := lo + encodeBlockRows
		if hi > span.Hi {
			hi = span.Hi
		}
		block := keys[:hi-lo]
		ts.block(lo, hi, block)
		if p == 1 && !ts.remapped {
			// Everything is owned by the one partition: feed whole encode
			// blocks to the table.
			table.AddBatch(block)
			local += uint64(len(block))
		} else {
			for _, key := range block {
				h := ts.home(key)
				dst := ts.homes[h]
				if dst == w {
					if ownh != nil {
						b := append(ownh[h], key)
						if len(b) == cap(b) {
							ts.parts[h].AddBatch(b)
							b = b[:0]
						}
						ownh[h] = b
					} else {
						own = append(own, key)
						if len(own) == cap(own) {
							table.AddBatch(own)
							own = own[:0]
						}
					}
					local++
					continue
				}
				if cache != nil && cache[rng.Mix64(key)&(hotCacheSlots-1)] == key {
					tab := splitTabs[dst]
					if tab == nil {
						// Possible after a rebalance moved a promoted
						// key's owner; allocate on first use.
						tab = hashtable.New(ts.writeBatch)
						splitTabs[dst] = tab
					}
					tab.Inc(key)
					split++
					continue
				}
				if plan.Fire(faultinject.QueuePushFail, w, foreign) {
					failure = ts.overflowErr(w, dst)
					break outer
				}
				bufs[dst] = append(bufs[dst], key)
				foreign++
				if len(bufs[dst]) == ts.writeBatch && !flush(dst) {
					failure = ts.overflowErr(w, dst)
					break outer
				}
			}
		}
		if check -= hi - lo; check <= 0 {
			check = cancelCheckStride
			select {
			case <-done:
				ws[w].local, ws[w].foreign = local, foreign
				ws[w].flushes, ws[w].dupes = flushes, dupes
				ws[w].split = split
				ws[w].stage1 = time.Since(t0)
				return context.Cause(ctx)
			default:
			}
		}
	}
	if failure == nil && (p > 1 || ts.remapped) {
		if len(own) > 0 {
			table.AddBatch(own)
		}
		for h, b := range ownh {
			if len(b) > 0 {
				ts.parts[h].AddBatch(b)
			}
		}
		for d := 0; d < p; d++ {
			if d != w && !flush(d) {
				failure = ts.overflowErr(w, d)
				break
			}
		}
	}
	ws[w].local, ws[w].foreign = local, foreign
	ws[w].flushes, ws[w].dupes = flushes, dupes
	ws[w].split = split
	ws[w].stage1 = time.Since(t0)
	if failure != nil {
		ts.barrier.Abort(failure)
		return failure
	}

	// ---- The single synchronization step between the stages.
	plan.MaybeStall(w, 0)
	bd, berr := ts.barrier.WaitTimedCtx(ctx)
	ws[w].barrier = bd
	if berr != nil {
		return berr
	}
	plan.MaybePanic(faultinject.PanicStage2, w, 0)

	// ---- Stage 2 (Algorithm 2), batched: drain delta words addressed to
	// w and apply their key mass, then fold in the split tables the other
	// workers accumulated for w. Reads: heads of queues[*][w], column w of
	// the split tables (quiescent — their writers are past the barrier);
	// writes: the partitions w owns.
	t1 := time.Now()
	var pops uint64
	drain := make([]uint64, drainBatch)
	check = cancelCheckStride
	for src := 0; src < p; src++ {
		if src == w {
			continue
		}
		q := ts.queues[src][w]
		for {
			n := q.PopBatch(drain)
			if n == 0 {
				break
			}
			for _, word := range drain[:n] {
				delta := word>>ts.keyBits + 1
				key := word & keyMask
				if ts.remapped {
					ts.parts[ts.home(key)].Add(key, delta)
				} else {
					table.Add(key, delta)
				}
				pops += delta
			}
			if check -= n; check <= 0 {
				check = cancelCheckStride
				select {
				case <-done:
					ws[w].pops = pops
					ws[w].stage2 = time.Since(t1)
					return context.Cause(ctx)
				default:
				}
			}
		}
	}
	if ts.split != nil {
		var merged uint64
		for src := 0; src < p; src++ {
			if src == w {
				continue
			}
			tab := ts.split.tabs[src][w]
			if tab == nil || tab.Len() == 0 {
				continue
			}
			tab.Range(func(key, count uint64) bool {
				if ts.remapped {
					ts.parts[ts.home(key)].Add(key, count)
				} else {
					table.Add(key, count)
				}
				merged += count
				return true
			})
			// Reset, not discard: the table's capacity (and the producer's
			// filter entries) persist to the next block, so a key promoted
			// once stays split for the life of the builder.
			tab.Reset()
		}
		ws[w].merges = merged
	}
	ws[w].pops = pops
	ws[w].stage2 = time.Since(t1)
	return nil
}

// BuildKeys is Build over an arbitrary key stream of length m.
//
// Deprecated: use BuildKeysCtx.
func BuildKeys(source KeySource, codec *encoding.Codec, m int, opts Options) (*PotentialTable, Stats, error) {
	return BuildKeysCtx(context.Background(), source, codec, m, opts)
}

// BuildKeysCtx is BuildKeys under the fault-tolerant execution contract
// (see BuildCtx).
func BuildKeysCtx(ctx context.Context, source KeySource, codec *encoding.Codec, m int, opts Options) (*PotentialTable, Stats, error) {
	return buildCtx(ctx, source, blockFromKeySource(source), codec, m, opts)
}

// buildCtx is the shared construction entry point: BuildCtx feeds it
// dataset-backed sources (block = column-major slab encode), BuildKeysCtx
// arbitrary key streams (block = per-key gather).
func buildCtx(ctx context.Context, source KeySource, block blockSource, codec *encoding.Codec, m int, opts Options) (*PotentialTable, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, context.Cause(ctx)
	}
	opts, hintCapped := opts.withDefaults(m, codec.KeySpace())
	if faultinject.Active().Fire(faultinject.TableGrowPressure, 0, 0) {
		opts.TableHint = 1 // force repeated on-demand growth
	}
	p, nparts := opts.P, opts.NumPartitions

	parts := make([]hashtable.Counter, nparts)
	for i := range parts {
		parts[i] = newPartTable(opts.Table, opts.Partition, opts.TableHint, nparts, codec.KeySpace(), i)
	}
	queues := newQueueMatrix(p, opts.Queue, opts.RingCapacity, opts.NoSpill)
	home := opts.Partition.partitioner(nparts, codec.KeySpace())
	homes := cyclicHomes(nparts, p)
	barrier := sched.NewBarrier(p)
	var split *splitState
	if opts.HotSplit && p > 1 && opts.WriteBatch > 1 {
		split = newSplitState(p, opts.HotThreshold)
	}

	ws := make([]workerStats, p)
	if err := runTwoStage(ctx, p, twoStage{
		m:          m,
		source:     source,
		block:      block,
		parts:      parts,
		queues:     queues,
		home:       home,
		homes:      homes,
		remapped:   nparts != p,
		split:      split,
		barrier:    barrier,
		ringCap:    opts.RingCapacity,
		writeBatch: opts.WriteBatch,
		keyBits:    keyFieldBits(codec.KeySpace()),
	}, ws); err != nil {
		return nil, Stats{}, err
	}

	var st Stats
	st.P = p
	st.WriteBatch = opts.WriteBatch
	st.TableHint = opts.TableHint
	st.TableHintCapped = hintCapped
	st.SpilledKeys = queues.spilledKeys()
	for w := range ws {
		st.LocalKeys += ws[w].local
		st.ForeignKeys += ws[w].foreign
		st.Stage2Pops += ws[w].pops
		st.BatchFlushes += ws[w].flushes
		st.ForeignDupes += ws[w].dupes
		st.SplitKeys += ws[w].split
		st.SplitMerges += ws[w].merges
		if ws[w].stage1 > st.Stage1Time {
			st.Stage1Time = ws[w].stage1
		}
		if ws[w].stage2 > st.Stage2Time {
			st.Stage2Time = ws[w].stage2
		}
		if ws[w].barrier > st.BarrierWait {
			st.BarrierWait = ws[w].barrier
		}
	}
	st.DestQueueWords = queues.destWords()
	pt := NewPotentialTable(codec, parts, st.LocalKeys+st.Stage2Pops+st.SplitMerges)
	pt.SetObs(opts.Obs)
	st.DistinctKeys = pt.Len()
	publishBuildMetrics(opts.Obs, st, ws, queues, parts)
	return pt, st, nil
}

// BuildSequential constructs the same potential table with a single thread
// and a single partition — the T(1) reference all speedup numbers are
// measured against, and the correctness oracle for every parallel strategy.
func BuildSequential(data *dataset.Dataset) (*PotentialTable, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := data.NumSamples()
	hint := uint64(m)
	if codec.KeySpace() < hint {
		hint = codec.KeySpace()
	}
	if hint > 1<<24 {
		hint = 1 << 24
	}
	table := hashtable.New(int(hint))
	for i := 0; i < m; i++ {
		table.Inc(codec.Encode(data.Row(i)))
	}
	return NewPotentialTable(codec, []hashtable.Counter{table}, uint64(m)), nil
}
