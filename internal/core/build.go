package core

import (
	"fmt"
	"time"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/sched"
	"waitfreebn/internal/spsc"
)

// Options configures the wait-free table construction primitive. The zero
// value selects the paper's configuration at P = GOMAXPROCS: modulo
// partitioning, unbounded chunked queues, open-addressing tables.
type Options struct {
	// P is the number of cores (workers, partitions). 0 means GOMAXPROCS.
	P int
	// Partition selects the key→owner mapping (ablation A2).
	Partition PartitionKind
	// Queue selects the inter-core queue implementation (ablation A1).
	Queue spsc.Kind
	// RingCapacity sizes each queue when Queue == spsc.KindRing. 0 sizes
	// each ring to hold a worker's entire block (m/P rounded up), which
	// can never overflow.
	RingCapacity int
	// Table selects the per-partition count table (ablation A4).
	Table TableKind
	// TableHint pre-sizes each partition table. 0 applies a heuristic
	// based on m and the key space. Hints above maxTableHint are capped;
	// the applied hint and the cap event are reported in Stats.
	TableHint int
	// Obs receives construction metrics (per-worker stage timings, queue
	// traffic, partition occupancy). nil disables instrumentation; the
	// primitives aggregate per worker in plain locals and publish once per
	// build, so the disabled cost is a handful of nil checks per build.
	Obs *obs.Registry
}

// maxTableHint caps the per-partition up-front allocation; tables grow on
// demand past it. A capped hint is recorded in Stats.TableHintCapped.
const maxTableHint = 1 << 24

// withDefaults resolves zero fields and reports whether the table hint was
// truncated by maxTableHint.
func (o Options) withDefaults(m int, keySpace uint64) (Options, bool) {
	if o.P <= 0 {
		o.P = sched.DefaultP()
	}
	if o.RingCapacity <= 0 {
		o.RingCapacity = (m + o.P - 1) / o.P
		if o.RingCapacity == 0 {
			o.RingCapacity = 1
		}
	}
	capped := false
	if o.TableHint <= 0 {
		// Expected distinct keys is at most min(m, keySpace); assume they
		// spread evenly over partitions and pad by 2× to absorb skew.
		distinct := uint64(m)
		if keySpace < distinct {
			distinct = keySpace
		}
		hint := distinct / uint64(o.P) * 2
		if hint > maxTableHint {
			hint = maxTableHint
			capped = true
		}
		o.TableHint = int(hint)
	} else if o.TableHint > maxTableHint {
		o.TableHint = maxTableHint
		capped = true
	}
	return o, capped
}

// Stats reports what the construction primitive did, for instrumentation
// and for the contention-shape comparisons in EXPERIMENTS.md.
type Stats struct {
	P            int    // workers used
	LocalKeys    uint64 // stage-1 keys updated directly in the owner's table
	ForeignKeys  uint64 // stage-1 keys routed through queues
	Stage2Pops   uint64 // keys drained in stage 2 (== ForeignKeys on success)
	DistinctKeys int    // table entries after construction

	// Stage1Time and Stage2Time are the slowest worker's wall-clock in
	// each stage (the critical path). The paper's analysis predicts
	// stage 1 = O(m·n/P) and stage 2 = O(m/P); these expose the split.
	Stage1Time time.Duration
	Stage2Time time.Duration
	// BarrierWait is the longest any worker spent in the inter-stage
	// barrier — the load-imbalance bound (a worker waits exactly as long
	// as the slowest straggler outlasts it).
	BarrierWait time.Duration

	// TableHint is the per-partition pre-size actually applied after
	// defaulting, and TableHintCapped reports whether it was truncated at
	// the allocation cap — previously a silent event bench runs could not
	// see.
	TableHint       int
	TableHintCapped bool
}

// queueMatrix holds the P×(P-1) queues of Algorithm 1: q[i][j] carries keys
// produced by core i and owned by core j (q[i][i] is unused and nil).
type queueMatrix [][]spsc.Queue

func newQueueMatrix(p int, kind spsc.Kind, ringCap int) queueMatrix {
	q := make(queueMatrix, p)
	for i := range q {
		q[i] = make([]spsc.Queue, p)
		for j := range q[i] {
			if i == j {
				continue
			}
			q[i][j] = spsc.New(kind, ringCap)
		}
	}
	return q
}

// Build runs the wait-free table construction primitive over data:
// stage 1 (Algorithm 1) classifies and routes keys, one barrier, stage 2
// (Algorithm 2) drains foreign keys. Every worker writes only its own
// partition table and the tails of its own queues, so no operation ever
// waits on another worker.
//
// Build fails only on configuration errors (e.g. a bounded ring queue that
// overflows); the default options cannot fail.
func Build(data *dataset.Dataset, opts Options) (*PotentialTable, Stats, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, Stats{}, fmt.Errorf("core: %w", err)
	}
	return BuildKeys(keySourceFromDataset(data, codec), codec, data.NumSamples(), opts)
}

// KeySource yields the key of sample i. Build encodes rows on the fly
// (the O(m·n/P) encode cost is part of stage 1, as in the paper);
// BuildKeys also accepts pre-encoded key streams for benches that isolate
// table-update cost from encode cost.
type KeySource func(i int) uint64

func keySourceFromDataset(data *dataset.Dataset, codec *encoding.Codec) KeySource {
	return func(i int) uint64 { return codec.Encode(data.Row(i)) }
}

// KeySourceFromSlice adapts a pre-encoded key slice.
func KeySourceFromSlice(keys []uint64) KeySource {
	return func(i int) uint64 { return keys[i] }
}

// workerStats accumulates one worker's contribution to Stats; workers
// write only their own slot, so no synchronization beyond the final join
// is needed.
type workerStats struct {
	local, foreign, pops uint64
	stage1, stage2       time.Duration
	barrier              time.Duration
	err                  error
}

// BuildKeys is Build over an arbitrary key stream of length m.
func BuildKeys(source KeySource, codec *encoding.Codec, m int, opts Options) (*PotentialTable, Stats, error) {
	opts, hintCapped := opts.withDefaults(m, codec.KeySpace())
	p := opts.P

	parts := make([]hashtable.Counter, p)
	for i := range parts {
		parts[i] = opts.Table.new(opts.TableHint)
	}
	queues := newQueueMatrix(p, opts.Queue, opts.RingCapacity)
	owner := opts.Partition.partitioner(p, codec.KeySpace())
	spans := sched.BlockPartition(m, p)
	barrier := sched.NewBarrier(p)

	ws := make([]workerStats, p)

	sched.Run(p, func(w int) {
		// ---- Stage 1 (Algorithm 1): classify, update own table, route
		// foreign keys. Writes: parts[w], tails of queues[w][*].
		t0 := time.Now()
		span := spans[w]
		table := parts[w]
		outs := queues[w]
		var local, foreign uint64
		for i := span.Lo; i < span.Hi; i++ {
			key := source(i)
			dst := owner(key)
			if dst == w {
				table.Inc(key)
				local++
			} else {
				if !outs[dst].Push(key) {
					ws[w].err = fmt.Errorf("core: queue %d→%d overflow (ring capacity %d); use spsc.KindChunked or a larger RingCapacity", w, dst, opts.RingCapacity)
					break
				}
				foreign++
			}
		}
		ws[w].local, ws[w].foreign = local, foreign
		ws[w].stage1 = time.Since(t0)

		// ---- The single synchronization step between the stages.
		ws[w].barrier = barrier.WaitTimed()

		// ---- Stage 2 (Algorithm 2): drain queues addressed to w.
		// Reads: heads of queues[*][w]; writes: parts[w].
		t1 := time.Now()
		var pops uint64
		for src := 0; src < p; src++ {
			if src == w {
				continue
			}
			q := queues[src][w]
			for {
				key, ok := q.Pop()
				if !ok {
					break
				}
				table.Inc(key)
				pops++
			}
		}
		ws[w].pops = pops
		ws[w].stage2 = time.Since(t1)
	})

	var st Stats
	st.P = p
	st.TableHint = opts.TableHint
	st.TableHintCapped = hintCapped
	for w := range ws {
		if ws[w].err != nil {
			return nil, Stats{}, ws[w].err
		}
		st.LocalKeys += ws[w].local
		st.ForeignKeys += ws[w].foreign
		st.Stage2Pops += ws[w].pops
		if ws[w].stage1 > st.Stage1Time {
			st.Stage1Time = ws[w].stage1
		}
		if ws[w].stage2 > st.Stage2Time {
			st.Stage2Time = ws[w].stage2
		}
		if ws[w].barrier > st.BarrierWait {
			st.BarrierWait = ws[w].barrier
		}
	}
	pt := NewPotentialTable(codec, parts, st.LocalKeys+st.Stage2Pops)
	st.DistinctKeys = pt.Len()
	publishBuildMetrics(opts.Obs, st, ws, queues, parts)
	return pt, st, nil
}

// BuildSequential constructs the same potential table with a single thread
// and a single partition — the T(1) reference all speedup numbers are
// measured against, and the correctness oracle for every parallel strategy.
func BuildSequential(data *dataset.Dataset) (*PotentialTable, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := data.NumSamples()
	hint := uint64(m)
	if codec.KeySpace() < hint {
		hint = codec.KeySpace()
	}
	if hint > 1<<24 {
		hint = 1 << 24
	}
	table := hashtable.New(int(hint))
	for i := 0; i < m; i++ {
		table.Inc(codec.Encode(data.Row(i)))
	}
	return NewPotentialTable(codec, []hashtable.Counter{table}, uint64(m)), nil
}
