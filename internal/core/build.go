package core

import (
	"context"
	"fmt"
	"time"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/sched"
	"waitfreebn/internal/spsc"
)

// Options configures the wait-free table construction primitive. The zero
// value selects the paper's configuration at P = GOMAXPROCS: modulo
// partitioning, unbounded chunked queues, open-addressing tables.
type Options struct {
	// P is the number of cores (workers, partitions). 0 means GOMAXPROCS.
	P int
	// Partition selects the key→owner mapping (ablation A2).
	Partition PartitionKind
	// Queue selects the inter-core queue implementation (ablation A1).
	Queue spsc.Kind
	// RingCapacity sizes each queue when Queue == spsc.KindRing. 0 sizes
	// each ring to hold a worker's entire block (m/P rounded up), which
	// can never overflow.
	RingCapacity int
	// NoSpill disables graceful degradation for bounded ring queues. By
	// default a full ring spills overflow keys into an unbounded chunked
	// side queue (counted in Stats.SpilledKeys) and the build completes;
	// with NoSpill a full ring fails the build with an overflow error —
	// the strict mode the ablation benches measure.
	NoSpill bool
	// Table selects the per-partition count table (ablation A4).
	Table TableKind
	// TableHint pre-sizes each partition table. 0 applies a heuristic
	// based on m and the key space. Hints above maxTableHint are capped;
	// the applied hint and the cap event are reported in Stats.
	TableHint int
	// Obs receives construction metrics (per-worker stage timings, queue
	// traffic, partition occupancy). nil disables instrumentation; the
	// primitives aggregate per worker in plain locals and publish once per
	// build, so the disabled cost is a handful of nil checks per build.
	Obs *obs.Registry
}

// maxTableHint caps the per-partition up-front allocation; tables grow on
// demand past it. A capped hint is recorded in Stats.TableHintCapped.
const maxTableHint = 1 << 24

// withDefaults resolves zero fields and reports whether the table hint was
// truncated by maxTableHint.
func (o Options) withDefaults(m int, keySpace uint64) (Options, bool) {
	if o.P <= 0 {
		o.P = sched.DefaultP()
	}
	if o.RingCapacity <= 0 {
		o.RingCapacity = (m + o.P - 1) / o.P
		if o.RingCapacity == 0 {
			o.RingCapacity = 1
		}
	}
	capped := false
	if o.TableHint <= 0 {
		// Expected distinct keys is at most min(m, keySpace); assume they
		// spread evenly over partitions and pad by 2× to absorb skew.
		distinct := uint64(m)
		if keySpace < distinct {
			distinct = keySpace
		}
		hint := distinct / uint64(o.P) * 2
		if hint > maxTableHint {
			hint = maxTableHint
			capped = true
		}
		o.TableHint = int(hint)
	} else if o.TableHint > maxTableHint {
		o.TableHint = maxTableHint
		capped = true
	}
	return o, capped
}

// Stats reports what the construction primitive did, for instrumentation
// and for the contention-shape comparisons in EXPERIMENTS.md.
type Stats struct {
	P            int    // workers used
	LocalKeys    uint64 // stage-1 keys updated directly in the owner's table
	ForeignKeys  uint64 // stage-1 keys routed through queues
	Stage2Pops   uint64 // keys drained in stage 2 (== ForeignKeys on success)
	DistinctKeys int    // table entries after construction

	// SpilledKeys counts foreign keys that overflowed a bounded ring and
	// were routed through the unbounded spill side queue instead — the
	// graceful-degradation signal that RingCapacity is undersized for the
	// workload. Always 0 for unbounded queues or with Options.NoSpill.
	SpilledKeys uint64

	// Stage1Time and Stage2Time are the slowest worker's wall-clock in
	// each stage (the critical path). The paper's analysis predicts
	// stage 1 = O(m·n/P) and stage 2 = O(m/P); these expose the split.
	Stage1Time time.Duration
	Stage2Time time.Duration
	// BarrierWait is the longest any worker spent in the inter-stage
	// barrier — the load-imbalance bound (a worker waits exactly as long
	// as the slowest straggler outlasts it).
	BarrierWait time.Duration

	// TableHint is the per-partition pre-size actually applied after
	// defaulting, and TableHintCapped reports whether it was truncated at
	// the allocation cap — previously a silent event bench runs could not
	// see.
	TableHint       int
	TableHintCapped bool
}

// queueMatrix holds the P×(P-1) queues of Algorithm 1: q[i][j] carries keys
// produced by core i and owned by core j (q[i][i] is unused and nil).
type queueMatrix [][]spsc.Queue

// newQueueMatrix allocates the queues. Bounded rings are wrapped in
// spillover queues unless noSpill asks for strict overflow-fails semantics.
func newQueueMatrix(p int, kind spsc.Kind, ringCap int, noSpill bool) queueMatrix {
	q := make(queueMatrix, p)
	for i := range q {
		q[i] = make([]spsc.Queue, p)
		for j := range q[i] {
			if i == j {
				continue
			}
			if kind == spsc.KindRing && !noSpill {
				q[i][j] = spsc.NewSpillover(ringCap)
			} else {
				q[i][j] = spsc.New(kind, ringCap)
			}
		}
	}
	return q
}

// spilledKeys sums the spill counters across a quiesced queue matrix.
func (q queueMatrix) spilledKeys() uint64 {
	var total uint64
	for i := range q {
		for j := range q[i] {
			if s, ok := q[i][j].(*spsc.Spillover); ok {
				total += s.Spilled()
			}
		}
	}
	return total
}

// Build runs the wait-free table construction primitive over data:
// stage 1 (Algorithm 1) classifies and routes keys, one barrier, stage 2
// (Algorithm 2) drains foreign keys. Every worker writes only its own
// partition table and the tails of its own queues, so no operation ever
// waits on another worker.
//
// Build fails only on configuration errors (e.g. a bounded ring queue that
// overflows under Options.NoSpill); the default options cannot fail.
func Build(data *dataset.Dataset, opts Options) (*PotentialTable, Stats, error) {
	return BuildCtx(context.Background(), data, opts)
}

// BuildCtx is Build under the fault-tolerant execution contract: workers
// observe ctx cancellation at chunk boundaries and return context.Canceled
// (or DeadlineExceeded) in bounded time with every worker goroutine joined,
// and a panicking worker surfaces as a *sched.WorkerError instead of
// crashing the process while its peers spin in the barrier.
func BuildCtx(ctx context.Context, data *dataset.Dataset, opts Options) (*PotentialTable, Stats, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, Stats{}, fmt.Errorf("core: %w", err)
	}
	return BuildKeysCtx(ctx, keySourceFromDataset(data, codec), codec, data.NumSamples(), opts)
}

// KeySource yields the key of sample i. Build encodes rows on the fly
// (the O(m·n/P) encode cost is part of stage 1, as in the paper);
// BuildKeys also accepts pre-encoded key streams for benches that isolate
// table-update cost from encode cost.
type KeySource func(i int) uint64

func keySourceFromDataset(data *dataset.Dataset, codec *encoding.Codec) KeySource {
	return func(i int) uint64 { return codec.Encode(data.Row(i)) }
}

// KeySourceFromSlice adapts a pre-encoded key slice.
func KeySourceFromSlice(keys []uint64) KeySource {
	return func(i int) uint64 { return keys[i] }
}

// workerStats accumulates one worker's contribution to Stats; workers
// write only their own slot, so no synchronization beyond the final join
// is needed.
type workerStats struct {
	local, foreign, pops uint64
	stage1, stage2       time.Duration
	barrier              time.Duration
}

// cancelCheckStride is how many keys a worker processes between context
// checks — the "chunk boundary" of the cancellation contract. Small enough
// that cancellation lands promptly, large enough that the per-key cost of
// the countdown is lost in the encode+hash work.
const cancelCheckStride = 8192

// twoStage bundles the shared state of one two-stage construction episode;
// BuildKeysCtx runs one over a full key stream, Builder.addKeys one per
// incremental block.
type twoStage struct {
	m       int
	source  KeySource
	parts   []hashtable.Counter
	queues  queueMatrix
	owner   func(uint64) int
	barrier *sched.Barrier
	ringCap int
}

// runTwoStage executes stage 1 → barrier → stage 2 on p workers under the
// RunCtx contract. Per-worker stats land in ws (valid even on error, up to
// the point each worker reached). Any failure — context cancellation,
// queue overflow, injected fault, worker panic — aborts the barrier and
// cancels the peers, and runTwoStage returns only after every worker
// goroutine has exited.
func runTwoStage(ctx context.Context, p int, ts twoStage, ws []workerStats) error {
	spans := sched.BlockPartition(ts.m, p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		plan := faultinject.Active() // hoisted: nil = disabled fast path
		done := ctx.Done()

		// ---- Stage 1 (Algorithm 1): classify, update own table, route
		// foreign keys. Writes: parts[w], tails of queues[w][*].
		t0 := time.Now()
		span := spans[w]
		table := ts.parts[w]
		outs := ts.queues[w]
		var local, foreign uint64
		var failure error
		plan.MaybePanic(faultinject.PanicStage1, w, 0)
		check := cancelCheckStride
		for i := span.Lo; i < span.Hi; i++ {
			if check--; check == 0 {
				check = cancelCheckStride
				select {
				case <-done:
					ws[w].local, ws[w].foreign = local, foreign
					ws[w].stage1 = time.Since(t0)
					return context.Cause(ctx)
				default:
				}
			}
			key := ts.source(i)
			dst := ts.owner(key)
			if dst == w {
				table.Inc(key)
				local++
			} else {
				if plan.Fire(faultinject.QueuePushFail, w, foreign) || !outs[dst].Push(key) {
					failure = fmt.Errorf("core: queue %d→%d overflow (ring capacity %d); use spsc.KindChunked, a larger RingCapacity, or drop Options.NoSpill", w, dst, ts.ringCap)
					break
				}
				foreign++
			}
		}
		ws[w].local, ws[w].foreign = local, foreign
		ws[w].stage1 = time.Since(t0)
		if failure != nil {
			// Poison the barrier before leaving so peers already spinning
			// in it return the root cause instead of waiting on a party
			// that will never arrive (RunCtx's cancellation is the second,
			// redundant escape hatch).
			ts.barrier.Abort(failure)
			return failure
		}

		// ---- The single synchronization step between the stages.
		plan.MaybeStall(w, 0)
		bd, berr := ts.barrier.WaitTimedCtx(ctx)
		ws[w].barrier = bd
		if berr != nil {
			return berr
		}
		plan.MaybePanic(faultinject.PanicStage2, w, 0)

		// ---- Stage 2 (Algorithm 2): drain queues addressed to w.
		// Reads: heads of queues[*][w]; writes: parts[w].
		t1 := time.Now()
		var pops uint64
		check = cancelCheckStride
		for src := 0; src < p; src++ {
			if src == w {
				continue
			}
			q := ts.queues[src][w]
			for {
				if check--; check == 0 {
					check = cancelCheckStride
					select {
					case <-done:
						ws[w].pops = pops
						ws[w].stage2 = time.Since(t1)
						return context.Cause(ctx)
					default:
					}
				}
				key, ok := q.Pop()
				if !ok {
					break
				}
				table.Inc(key)
				pops++
			}
		}
		ws[w].pops = pops
		ws[w].stage2 = time.Since(t1)
		return nil
	})
}

// BuildKeys is Build over an arbitrary key stream of length m.
func BuildKeys(source KeySource, codec *encoding.Codec, m int, opts Options) (*PotentialTable, Stats, error) {
	return BuildKeysCtx(context.Background(), source, codec, m, opts)
}

// BuildKeysCtx is BuildKeys under the fault-tolerant execution contract
// (see BuildCtx).
func BuildKeysCtx(ctx context.Context, source KeySource, codec *encoding.Codec, m int, opts Options) (*PotentialTable, Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, context.Cause(ctx)
	}
	opts, hintCapped := opts.withDefaults(m, codec.KeySpace())
	if faultinject.Active().Fire(faultinject.TableGrowPressure, 0, 0) {
		opts.TableHint = 1 // force repeated on-demand growth
	}
	p := opts.P

	parts := make([]hashtable.Counter, p)
	for i := range parts {
		parts[i] = opts.Table.new(opts.TableHint)
	}
	queues := newQueueMatrix(p, opts.Queue, opts.RingCapacity, opts.NoSpill)
	owner := opts.Partition.partitioner(p, codec.KeySpace())
	barrier := sched.NewBarrier(p)

	ws := make([]workerStats, p)
	if err := runTwoStage(ctx, p, twoStage{
		m:       m,
		source:  source,
		parts:   parts,
		queues:  queues,
		owner:   owner,
		barrier: barrier,
		ringCap: opts.RingCapacity,
	}, ws); err != nil {
		return nil, Stats{}, err
	}

	var st Stats
	st.P = p
	st.TableHint = opts.TableHint
	st.TableHintCapped = hintCapped
	st.SpilledKeys = queues.spilledKeys()
	for w := range ws {
		st.LocalKeys += ws[w].local
		st.ForeignKeys += ws[w].foreign
		st.Stage2Pops += ws[w].pops
		if ws[w].stage1 > st.Stage1Time {
			st.Stage1Time = ws[w].stage1
		}
		if ws[w].stage2 > st.Stage2Time {
			st.Stage2Time = ws[w].stage2
		}
		if ws[w].barrier > st.BarrierWait {
			st.BarrierWait = ws[w].barrier
		}
	}
	pt := NewPotentialTable(codec, parts, st.LocalKeys+st.Stage2Pops)
	pt.SetObs(opts.Obs)
	st.DistinctKeys = pt.Len()
	publishBuildMetrics(opts.Obs, st, ws, queues, parts)
	return pt, st, nil
}

// BuildSequential constructs the same potential table with a single thread
// and a single partition — the T(1) reference all speedup numbers are
// measured against, and the correctness oracle for every parallel strategy.
func BuildSequential(data *dataset.Dataset) (*PotentialTable, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := data.NumSamples()
	hint := uint64(m)
	if codec.KeySpace() < hint {
		hint = codec.KeySpace()
	}
	if hint > 1<<24 {
		hint = 1 << 24
	}
	table := hashtable.New(int(hint))
	for i := 0; i < m; i++ {
		table.Inc(codec.Encode(data.Row(i)))
	}
	return NewPotentialTable(codec, []hashtable.Counter{table}, uint64(m)), nil
}
