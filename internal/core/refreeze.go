package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/sched"
)

// FreezeMode selects how Builder.SnapshotCtx materializes each epoch's
// columnar snapshot.
type FreezeMode int

const (
	// FreezeFull drains and sorts every partition on every snapshot — the
	// original behavior, cost proportional to table size.
	FreezeFull FreezeMode = iota
	// FreezeIncremental records per-partition delta runs between snapshots
	// and re-freezes by aliasing untouched partitions from the previous
	// epoch verbatim and merging dirty ones against their delta runs — cost
	// proportional to what changed, bit-identical to a cold full freeze.
	FreezeIncremental
)

// String returns the flag spelling of the mode ("full", "incremental").
func (m FreezeMode) String() string {
	switch m {
	case FreezeIncremental:
		return "incremental"
	default:
		return "full"
	}
}

// ParseFreezeMode parses the -refreeze flag spellings.
func ParseFreezeMode(s string) (FreezeMode, error) {
	switch s {
	case "full", "":
		return FreezeFull, nil
	case "incremental":
		return FreezeIncremental, nil
	}
	return FreezeFull, fmt.Errorf("core: unknown refreeze mode %q (want full or incremental)", s)
}

// Delta capture sizing. deltaRunSeal is the unsealed buffer length at which
// a delta run is sorted, duplicate-combined, and sealed: 16k entries = two
// 128 KiB columns, sorted in one L2-resident pass. deltaBudgetMin floors the
// per-partition overflow budget so small partitions still absorb a few runs
// before falling back to a drain.
const (
	deltaRunSeal   = 1 << 14
	deltaBudgetMin = 4096
)

// deltaRun is one sealed per-partition delta batch: keys sorted ascending,
// duplicates combined, deltas[i] the total count added for keys[i].
type deltaRun struct {
	keys   []uint64
	deltas []uint64
}

// deltaPart is one home partition's mutation log since the last snapshot.
// The two-stage protocol gives every partition a single writer per phase
// with a barrier between phases, so the log needs no synchronization: the
// same happens-before edges that order the hashtable writes order these.
// The snapshot (builder goroutine, after workers join) is the only other
// reader.
type deltaPart struct {
	cur   deltaRun   // unsealed append buffer
	runs  []deltaRun // sealed sorted runs
	total int        // keys across sealed runs
	dirty bool       // any mutation since the last snapshot
	// over marks the log overflowed (or deliberately abandoned): the
	// partition must be re-frozen by drain+sort. Recording stops — dirty
	// tracking stays exact, only the delta detail is lost.
	over   bool
	budget int // sealed-key count at which the log overflows
}

func (d *deltaPart) record(key, delta uint64) {
	d.dirty = true
	if d.over {
		return
	}
	d.cur.keys = append(d.cur.keys, key)
	d.cur.deltas = append(d.cur.deltas, delta)
	if len(d.cur.keys) >= deltaRunSeal {
		d.seal()
	}
}

func (d *deltaPart) recordBatch(keys []uint64) {
	if len(keys) == 0 {
		return
	}
	d.dirty = true
	if d.over {
		return
	}
	d.cur.keys = append(d.cur.keys, keys...)
	for range keys {
		d.cur.deltas = append(d.cur.deltas, 1)
	}
	if len(d.cur.keys) >= deltaRunSeal {
		d.seal()
	}
}

// seal sorts and duplicate-combines the unsealed buffer into a finished
// run. The sealed arrays are handed to the run (append allocates fresh
// buffers for the next batch), so sealed runs are immutable.
func (d *deltaPart) seal() {
	n := len(d.cur.keys)
	if n == 0 || d.over {
		return
	}
	sort.Sort(kvSlice{keys: d.cur.keys, counts: d.cur.deltas})
	out := 0
	for i := 0; i < n; i++ {
		if out > 0 && d.cur.keys[i] == d.cur.keys[out-1] {
			d.cur.deltas[out-1] += d.cur.deltas[i]
		} else {
			d.cur.keys[out] = d.cur.keys[i]
			d.cur.deltas[out] = d.cur.deltas[i]
			out++
		}
	}
	d.runs = append(d.runs, deltaRun{keys: d.cur.keys[:out], deltas: d.cur.deltas[:out]})
	d.total += out
	d.cur = deltaRun{}
	if d.budget > 0 && d.total > d.budget {
		d.overflow()
	}
}

// overflow abandons the log: more delta keys than the budget means a merge
// would cost as much as a drain, so stop paying for capture.
func (d *deltaPart) overflow() {
	d.over = true
	d.runs = nil
	d.cur = deltaRun{}
	d.total = 0
}

// forceFull marks the partition dirty and abandons its log — used by bulk
// paths (ImportTable) whose mutation mass rivals the table itself.
func (d *deltaPart) forceFull() {
	d.dirty = true
	d.overflow()
}

// reset re-arms the log after a successful snapshot.
func (d *deltaPart) reset(budget int) {
	*d = deltaPart{budget: budget}
}

// recCounter decorates a partition's hashtable.Counter, mirroring every
// mutation into the partition's delta log. Reads forward to the embedded
// counter untouched; the single-writer-per-partition-per-phase discipline
// that makes the counter safe makes the log safe too.
type recCounter struct {
	hashtable.Counter
	d *deltaPart
}

func (c *recCounter) Inc(key uint64) {
	c.Counter.Inc(key)
	c.d.record(key, 1)
}

func (c *recCounter) Add(key, delta uint64) {
	c.Counter.Add(key, delta)
	c.d.record(key, delta)
}

func (c *recCounter) AddBatch(keys []uint64) {
	c.Counter.AddBatch(keys)
	c.d.recordBatch(keys)
}

// Reserve forwards capacity hints to the inner table (ImportTable asserts
// for it).
func (c *recCounter) Reserve(n int) {
	if r, ok := c.Counter.(interface{ Reserve(n int) }); ok {
		r.Reserve(n)
	}
}

// unwrapCounter strips the delta-recording decorator for diagnostics that
// type-assert the concrete table (probe stats, growth counters).
func unwrapCounter(part hashtable.Counter) hashtable.Counter {
	if rc, ok := part.(*recCounter); ok {
		return rc.Counter
	}
	return part
}

// Per-partition re-freeze paths.
const (
	pathReuse = iota // clean: alias the previous epoch's block verbatim
	pathMerge        // dirty, log intact: merge prior block with delta runs
	pathDrain        // dirty, log overflowed (or no prior epoch): drain+sort
)

// snapshotIncrementalCtx is the FreezeIncremental arm of Builder.SnapshotCtx:
// it produces a detached frozen-columnar table bit-identical to a cold full
// freeze of the live partitions, reusing the previous epoch's clean blocks
// and merging dirty ones against their delta logs. On error the builder's
// snapshot lineage (prev, epoch, delta logs) is left untouched, so the
// caller can roll back or retry without a widened failure surface.
func (b *Builder) snapshotIncrementalCtx(ctx context.Context, p int) (*PotentialTable, FreezeStats, error) {
	start := time.Now()
	if p <= 0 {
		p = sched.DefaultP()
	}
	if p > len(b.parts) {
		p = len(b.parts)
	}
	prev := b.prev
	epoch := b.snapEpoch + 1
	aligned := prev != nil && len(prev.parts) == len(b.parts)

	// Decide each partition's path up front. Sealing the tail run here (not
	// in the workers) keeps the log mutation on the builder goroutine; seal
	// may trip the overflow budget, demoting the partition to a drain.
	paths := make([]uint8, len(b.parts))
	dirty := make([]bool, len(b.parts))
	for h := range b.parts {
		dp := b.delta[h]
		switch {
		case aligned && !dp.dirty:
			paths[h] = pathReuse
		case aligned && !dp.over:
			dp.seal()
			if dp.over {
				paths[h] = pathDrain
			} else {
				paths[h] = pathMerge
			}
		default:
			paths[h] = pathDrain
		}
		dirty[h] = paths[h] != pathReuse
	}
	// The summary degrades (per-variable deltas unknown) whenever any
	// partition lost its delta detail or there is no aligned predecessor.
	degraded := !aligned || prev.varMarg == nil
	for h := range paths {
		if paths[h] == pathDrain {
			degraded = true
		}
	}

	// Expected layout is known before materialization: every path must
	// reproduce the live partition exactly, so offsets come from the live
	// lengths and double as the merge kernel's output invariant.
	off := make([]int, len(b.parts)+1)
	for h := range b.parts {
		off[h+1] = off[h] + b.parts[h].Len()
	}
	ft := &frozenTable{parts: make([]frozenPart, len(b.parts)), off: off, epoch: epoch}

	nvars := b.codec.NumVars()
	type refreezeWorker struct {
		varDelta    [][]uint64 // per-variable per-state delta mass (nil when degraded)
		mergedRuns  int
		mergedKeys  int
		drainedKeys int
	}
	ws := make([]refreezeWorker, p)
	assign := sched.CyclicAssign(len(b.parts), p)
	err := sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		st := &ws[w]
		if !degraded {
			st.varDelta = make([][]uint64, nvars)
			for v := range st.varDelta {
				st.varDelta[v] = make([]uint64, b.codec.Cardinality(v))
			}
		}
		done := ctx.Done()
		for _, h := range assign[w] {
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
			switch paths[h] {
			case pathReuse:
				// Alias the previous epoch's block verbatim: both epochs
				// own it jointly; immutability makes the sharing safe.
				ft.parts[h] = prev.parts[h]
			case pathMerge:
				if err := faultinject.Active().MaybeErr(faultinject.RefreezeMergeFail, w, uint64(h)+1); err != nil {
					return err
				}
				dp := b.delta[h]
				merged := mergeFrozenRuns(prev.parts[h], dp.runs, epoch, st.varDelta, b.codec)
				if len(merged.keys) != off[h+1]-off[h] {
					return fmt.Errorf("core: incremental re-freeze of partition %d merged to %d keys, live table has %d (delta capture hole)", h, len(merged.keys), off[h+1]-off[h])
				}
				ft.parts[h] = merged
				st.mergedRuns += len(dp.runs)
				st.mergedKeys += dp.total
			case pathDrain:
				n := off[h+1] - off[h]
				fp := frozenPart{keys: make([]uint64, n), counts: make([]uint64, n), born: epoch}
				if err := drainSorted(b.parts[h], fp.keys, fp.counts, h); err != nil {
					return err
				}
				ft.parts[h] = fp
				st.drainedKeys += n
			}
		}
		return nil
	})
	if err != nil {
		return nil, FreezeStats{}, err
	}

	stats := FreezeStats{
		Entries:     ft.numEntries(),
		Partitions:  len(b.parts),
		Incremental: true,
	}
	for h := range paths {
		switch paths[h] {
		case pathReuse:
			stats.ReusedPartitions++
		case pathMerge:
			stats.MergedPartitions++
		case pathDrain:
			stats.DrainedPartitions++
		}
	}
	for w := range ws {
		stats.MergedRuns += ws[w].mergedRuns
		stats.MergedKeys += ws[w].mergedKeys
		stats.DrainedKeys += ws[w].drainedKeys
	}

	out := &PotentialTable{codec: b.codec, m: b.Samples()}
	out.SetObs(b.opts.Obs)
	out.frozen.Store(ft)

	// Per-variable marginals: carried forward exactly on the non-degraded
	// path, recomputed by one fused scan of the fresh snapshot otherwise.
	// (out has not escaped yet, so stamping ft here is race-free.)
	prevEpoch := uint64(0)
	if prev != nil {
		prevEpoch = prev.epoch
	}
	if !degraded {
		varDelta := make([][]uint64, nvars)
		varMarg := make([][]uint64, nvars)
		var added uint64
		for v := 0; v < nvars; v++ {
			card := b.codec.Cardinality(v)
			varDelta[v] = make([]uint64, card)
			varMarg[v] = make([]uint64, card)
			for _, w := range ws {
				for s, d := range w.varDelta[v] {
					varDelta[v][s] += d
				}
			}
			for s := 0; s < card; s++ {
				varMarg[v][s] = prev.varMarg[v][s] + varDelta[v][s]
				if v == 0 {
					added += varDelta[v][s]
				}
			}
		}
		ft.varMarg = varMarg
		ft.summary = &ChangeSummary{
			FromEpoch: prevEpoch, ToEpoch: epoch,
			DirtyParts: dirty, VarDelta: varDelta, AddedMass: added,
		}
		stats.DirtyPairs = dirtyPairCount(varMarg, varDelta, nvars)
	} else {
		varMarg, err := singletonMarginals(ctx, out, p)
		if err != nil {
			return nil, FreezeStats{}, err
		}
		ft.varMarg = varMarg
		ft.summary = &ChangeSummary{FromEpoch: prevEpoch, ToEpoch: epoch, DirtyParts: dirty}
		stats.DirtyPairs = nvars * (nvars - 1) / 2
	}

	// Success: advance the lineage and re-arm the logs. Budgets scale with
	// the partition's frozen size — merging more delta keys than ~2x the
	// block is no cheaper than draining it.
	b.prev = ft
	b.snapEpoch = epoch
	for h := range b.delta {
		b.delta[h].reset(max(deltaBudgetMin, 2*len(ft.parts[h].keys)))
	}

	stats.Duration = time.Since(start)
	publishRefreezeMetrics(b.opts.Obs, stats)
	return out, stats, nil
}

// mergeFrozenRuns produces a dirty partition's new block by a k-way sorted
// merge of the previous epoch's block with the sealed delta runs: equal keys
// sum, keys absent from the prior block are inserted. The per-key summed
// delta feeds the worker's per-variable marginal accumulator (nil when the
// summary is degraded).
func mergeFrozenRuns(prev frozenPart, runs []deltaRun, epoch uint64, varDelta [][]uint64, codec *encoding.Codec) frozenPart {
	srcs := make([]deltaRun, 0, len(runs)+1)
	srcs = append(srcs, deltaRun{keys: prev.keys, deltas: prev.counts})
	srcs = append(srcs, runs...)
	upper := 0
	for _, s := range srcs {
		upper += len(s.keys)
	}
	outKeys := make([]uint64, 0, upper)
	outCounts := make([]uint64, 0, upper)
	heads := make([]int, len(srcs))

	var decs []encoding.VarDecoder
	if varDelta != nil {
		decs = make([]encoding.VarDecoder, len(varDelta))
		for v := range decs {
			decs[v] = codec.VarDecoder(v)
		}
	}
	for {
		// Linear min-scan over the run heads: the fan-in is small (prior
		// block + a handful of sealed runs), so a heap would cost more in
		// branches than it saves in comparisons.
		best := -1
		var bestKey uint64
		for i := range srcs {
			if heads[i] >= len(srcs[i].keys) {
				continue
			}
			if k := srcs[i].keys[heads[i]]; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			break
		}
		var count, delta uint64
		for i := range srcs {
			if heads[i] < len(srcs[i].keys) && srcs[i].keys[heads[i]] == bestKey {
				d := srcs[i].deltas[heads[i]]
				count += d
				if i > 0 {
					delta += d
				}
				heads[i]++
			}
		}
		outKeys = append(outKeys, bestKey)
		outCounts = append(outCounts, count)
		if delta > 0 && varDelta != nil {
			for v := range decs {
				varDelta[v][decs[v].Decode(bestKey)] += delta
			}
		}
	}
	return frozenPart{keys: outKeys, counts: outCounts, born: epoch}
}

// singletonMarginals computes every variable's marginal counts with one
// fused scan of the table — the degraded-path recompute and the seed for
// the first epoch's varMarg.
func singletonMarginals(ctx context.Context, t *PotentialTable, p int) ([][]uint64, error) {
	n := t.codec.NumVars()
	varsets := make([][]int, n)
	for v := 0; v < n; v++ {
		varsets[v] = []int{v}
	}
	mgs, err := t.MarginalizeManyCtx(ctx, varsets, p)
	if err != nil {
		return nil, err
	}
	varMarg := make([][]uint64, n)
	for v, mg := range mgs {
		varMarg[v] = mg.Counts
	}
	return varMarg, nil
}

// dirtyPairCount counts variable pairs that touch at least one variable
// whose marginal distribution changed: C(n,2) − C(n−d,2) for d changed
// variables (every added observation touches every variable's marginal
// count, so the informative signal is distribution movement, not mass).
func dirtyPairCount(varMarg, varDelta [][]uint64, n int) int {
	d := 0
	for v := 0; v < n; v++ {
		if marginalMoved(varMarg[v], varDelta[v], 0) {
			d++
		}
	}
	clean := n - d
	return n*(n-1)/2 - clean*(clean-1)/2
}

// publishRefreezeMetrics records one incremental re-freeze into the
// registry (README "Observability" documents the names).
func publishRefreezeMetrics(r *obs.Registry, stats FreezeStats) {
	if r == nil {
		return
	}
	r.Help(metricFreezeSeconds, "wall clock of PotentialTable.Freeze")
	r.Histogram(metricFreezeSeconds).Observe(stats.Duration)
	r.Help(metricFrozenEntries, "entries captured in the current frozen snapshot")
	r.Gauge(metricFrozenEntries).Set(float64(stats.Entries))
	r.Help(metricRefreezeReused, "partitions aliased verbatim from the prior epoch by incremental re-freezes")
	r.Counter(metricRefreezeReused).Add(uint64(stats.ReusedPartitions))
	r.Help(metricRefreezeMergedRuns, "sealed delta runs consumed by incremental re-freeze merges")
	r.Counter(metricRefreezeMergedRuns).Add(uint64(stats.MergedRuns))
	r.Help(metricRefreezeDrainedKeys, "keys that took the drain+sort path during incremental re-freezes")
	r.Counter(metricRefreezeDrainedKeys).Add(uint64(stats.DrainedKeys))
	r.Help(metricRefreezeMergedKeys, "delta keys that took the merge path during incremental re-freezes")
	r.Counter(metricRefreezeMergedKeys).Add(uint64(stats.MergedKeys))
}
