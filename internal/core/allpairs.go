package core

import (
	"context"
	"fmt"

	"waitfreebn/internal/sched"
	"waitfreebn/internal/stats"
)

// MISchedule selects how Algorithm 4 distributes the n(n-1)/2 pairwise
// mutual-information computations over workers (ablation A3).
type MISchedule int

const (
	// MIPartitionParallel runs Algorithm 4 as written: pairs are processed
	// one at a time, and for each pair all P workers cooperate on the
	// marginalization (Algorithm 3 with P cores), followed by a merge and
	// one Ent evaluation.
	MIPartitionParallel MISchedule = iota
	// MIPairParallel distributes pairs cyclically across workers; each
	// worker scans the whole table for each of its pairs and computes MI
	// locally. No synchronization per pair, but every worker reads every
	// partition.
	MIPairParallel
	// MIFused makes a single pass over the table per worker, decoding each
	// key once into its full state string and updating all n(n-1)/2
	// contingency tables; partial contingency sets are merged at the end.
	// This trades memory (n²r²/2 cells per worker) for touching each table
	// entry once instead of once per pair — an optimization beyond the
	// paper, benchmarked as ablation A3.
	MIFused
	// MIPairDynamic is MIPairParallel with dynamic chunk claiming instead
	// of static cyclic assignment: workers pull the next pair from a
	// shared atomic counter, so per-pair cost variation (mixed
	// cardinalities, rebalanced partitions) cannot strand a worker idle.
	MIPairDynamic
)

// String returns the schedule's human-readable name.
func (s MISchedule) String() string {
	switch s {
	case MIPartitionParallel:
		return "partition-parallel"
	case MIPairParallel:
		return "pair-parallel"
	case MIFused:
		return "fused"
	case MIPairDynamic:
		return "pair-dynamic"
	default:
		return "unknown"
	}
}

// MIMatrix holds I(X_i;X_j) for all unordered pairs i < j over n variables,
// stored as a flattened strictly-upper-triangular matrix.
type MIMatrix struct {
	N      int
	values []float64
}

// NewMIMatrix returns a zeroed matrix for n variables.
func NewMIMatrix(n int) *MIMatrix {
	if n < 1 {
		panic(fmt.Sprintf("core: NewMIMatrix with n = %d", n))
	}
	return &MIMatrix{N: n, values: make([]float64, n*(n-1)/2)}
}

// PairIndex flattens an unordered pair to its triangular index. It panics
// unless 0 <= i < j < n.
func (m *MIMatrix) PairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i < 0 || i == j || j >= m.N {
		panic(fmt.Sprintf("core: pair (%d,%d) invalid for n = %d", i, j, m.N))
	}
	// Offset of row i in the packed triangle plus the column offset.
	return i*(2*m.N-i-1)/2 + (j - i - 1)
}

// At returns I(X_i;X_j).
func (m *MIMatrix) At(i, j int) float64 { return m.values[m.PairIndex(i, j)] }

// Set assigns I(X_i;X_j).
func (m *MIMatrix) Set(i, j int, v float64) { m.values[m.PairIndex(i, j)] = v }

// NumPairs returns n(n-1)/2.
func (m *MIMatrix) NumPairs() int { return len(m.values) }

// ForEachPair calls fn(i, j, value) for every pair in (i, j) order.
func (m *MIMatrix) ForEachPair(fn func(i, j int, v float64)) {
	idx := 0
	for i := 0; i < m.N-1; i++ {
		for j := i + 1; j < m.N; j++ {
			fn(i, j, m.values[idx])
			idx++
		}
	}
}

// AllPairsMI computes the mutual information of every pair of variables
// from the potential table (Algorithm 4) using p workers and the given
// schedule. p <= 0 selects GOMAXPROCS.
func (t *PotentialTable) AllPairsMI(p int, schedule MISchedule) *MIMatrix {
	mi, err := t.AllPairsMICtx(context.Background(), p, schedule)
	mustScan(err)
	return mi
}

// AllPairsMICtx is AllPairsMI under the fault-tolerant execution contract:
// workers observe ctx between pairs and at chunk boundaries within a scan,
// returning context.Canceled (or DeadlineExceeded) in bounded time with all
// workers joined.
func (t *PotentialTable) AllPairsMICtx(ctx context.Context, p int, schedule MISchedule) (*MIMatrix, error) {
	if p <= 0 {
		p = sched.DefaultP()
	}
	n := t.codec.NumVars()
	mi := NewMIMatrix(n)
	var err error
	switch schedule {
	case MIPartitionParallel:
		err = t.allPairsPartitionParallel(ctx, mi, p)
	case MIPairParallel:
		err = t.allPairsPairParallel(ctx, mi, p)
	case MIFused:
		err = t.allPairsFused(ctx, mi, p)
	case MIPairDynamic:
		err = t.allPairsPairDynamic(ctx, mi, p)
	default:
		panic("core: unknown MI schedule")
	}
	if err != nil {
		return nil, err
	}
	return mi, nil
}

// miPair is one unordered variable pair in the flattened work list.
type miPair struct{ i, j int }

func enumeratePairs(n int) []miPair {
	pairs := make([]miPair, 0, n*(n-1)/2)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, miPair{i, j})
		}
	}
	return pairs
}

// pairMI scans the whole table once for one pair and returns its mutual
// information. checkCtx lets callers thread a shared per-worker cancellation
// countdown through the inner Range loop; it returns a non-nil cause when
// the scan should abort.
func (t *PotentialTable) pairMI(pr miPair, checkCtx func() error) (float64, error) {
	dec := t.codec.PairDecoder(pr.i, pr.j)
	ri, rj := t.codec.Cardinality(pr.i), t.codec.Cardinality(pr.j)
	counts := make([]uint64, ri*rj)
	var cause error
	for _, part := range t.parts {
		part.Range(func(key, count uint64) bool {
			if cause = checkCtx(); cause != nil {
				return false
			}
			counts[dec.Cell(key)] += count
			return true
		})
		if cause != nil {
			return 0, cause
		}
	}
	return stats.MutualInfoCounts(counts, ri, rj), nil
}

// ctxChecker returns the countdown-based cancellation probe shared by the
// pair-scanning schedules: cheap (a decrement) on the fast path, consulting
// ctx only every cancelCheckStride calls.
func ctxChecker(ctx context.Context) func() error {
	done := ctx.Done()
	check := cancelCheckStride
	return func() error {
		if check--; check == 0 {
			check = cancelCheckStride
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
		}
		return nil
	}
}

// allPairsPartitionParallel is Algorithm 4 as printed: a sequential loop
// over pairs, each marginalized by all P workers (Algorithm 3), with P(x)
// and P(y) recovered from the pairwise joint by summation.
func (t *PotentialTable) allPairsPartitionParallel(ctx context.Context, mi *MIMatrix, p int) error {
	n := mi.N
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			joint, err := t.MarginalizePairCtx(ctx, i, j, p)
			if err != nil {
				return err
			}
			mi.Set(i, j, stats.MutualInfoCounts(joint.Counts, joint.Card[0], joint.Card[1]))
		}
	}
	return nil
}

// allPairsPairParallel distributes pairs cyclically across workers.
func (t *PotentialTable) allPairsPairParallel(ctx context.Context, mi *MIMatrix, p int) error {
	pairs := enumeratePairs(mi.N)
	assign := sched.CyclicAssign(len(pairs), p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		check := ctxChecker(ctx)
		for _, pi := range assign[w] {
			v, err := t.pairMI(pairs[pi], check)
			if err != nil {
				return err
			}
			mi.Set(pairs[pi].i, pairs[pi].j, v)
		}
		return nil
	})
}

// allPairsPairDynamic distributes pairs with dynamic chunk claiming.
func (t *PotentialTable) allPairsPairDynamic(ctx context.Context, mi *MIMatrix, p int) error {
	pairs := enumeratePairs(mi.N)
	return sched.DynamicForCtx(ctx, len(pairs), p, 1, func(ctx context.Context, pi int) error {
		v, err := t.pairMI(pairs[pi], ctxChecker(ctx))
		if err != nil {
			return err
		}
		mi.Set(pairs[pi].i, pairs[pi].j, v)
		return nil
	})
}

// allPairsFused scans each partition once, decodes every key fully, and
// updates all pairwise contingency tables in one pass.
func (t *PotentialTable) allPairsFused(ctx context.Context, mi *MIMatrix, p int) error {
	n := mi.N
	if p > len(t.parts) {
		p = len(t.parts)
	}
	// Per-pair contingency table offsets within one flat slice.
	offsets := make([]int, mi.NumPairs()+1)
	idx := 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			offsets[idx+1] = offsets[idx] + t.codec.Cardinality(i)*t.codec.Cardinality(j)
			idx++
		}
	}
	totalCells := offsets[len(offsets)-1]

	partials := make([][]uint64, p)
	for w := range partials {
		partials[w] = make([]uint64, totalCells)
	}
	scratch := make([][]uint8, p)
	if err := t.scanPartitionsCtx(ctx, p, func(w int, key, count uint64) {
		counts := partials[w]
		states := t.codec.Decode(key, scratch[w][:0])
		scratch[w] = states
		pairIdx := 0
		for i := 0; i < n-1; i++ {
			si := int(states[i])
			for j := i + 1; j < n; j++ {
				rj := t.codec.Cardinality(j)
				counts[offsets[pairIdx]+si*rj+int(states[j])] += count
				pairIdx++
			}
		}
	}); err != nil {
		return err
	}

	merged := mergePartials(partials)
	idx = 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			ri, rj := t.codec.Cardinality(i), t.codec.Cardinality(j)
			mi.Set(i, j, stats.MutualInfoCounts(merged[offsets[idx]:offsets[idx+1]], ri, rj))
			idx++
		}
	}
	return nil
}
