package core

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/sched"
	"waitfreebn/internal/stats"
)

// MISchedule selects how Algorithm 4 distributes the n(n-1)/2 pairwise
// mutual-information computations over workers (ablation A3).
type MISchedule int

const (
	// MIPartitionParallel runs Algorithm 4 as written: pairs are processed
	// one at a time, and for each pair all P workers cooperate on the
	// marginalization (Algorithm 3 with P cores), followed by a merge and
	// one Ent evaluation.
	MIPartitionParallel MISchedule = iota
	// MIPairParallel distributes pairs cyclically across workers; each
	// worker scans the whole table for each of its pairs and computes MI
	// locally. No synchronization per pair, but every worker reads every
	// partition.
	MIPairParallel
	// MIFused makes a single pass over the table per worker, decoding each
	// key once into its full state string and updating all n(n-1)/2
	// contingency tables; partial contingency sets are merged at the end.
	// This trades memory (n²r²/2 cells per worker) for touching each table
	// entry once instead of once per pair — an optimization beyond the
	// paper, benchmarked as ablation A3.
	MIFused
	// MIPairDynamic is MIPairParallel with dynamic chunk claiming instead
	// of static cyclic assignment: workers pull the next pair from a
	// shared atomic counter, so per-pair cost variation (mixed
	// cardinalities, rebalanced partitions) cannot strand a worker idle.
	MIPairDynamic
)

// String returns the schedule's human-readable name.
func (s MISchedule) String() string {
	switch s {
	case MIPartitionParallel:
		return "partition-parallel"
	case MIPairParallel:
		return "pair-parallel"
	case MIFused:
		return "fused"
	case MIPairDynamic:
		return "pair-dynamic"
	default:
		return "unknown"
	}
}

// MIMatrix holds I(X_i;X_j) for all unordered pairs i < j over n variables,
// stored as a flattened strictly-upper-triangular matrix.
type MIMatrix struct {
	N      int
	values []float64
}

// NewMIMatrix returns a zeroed matrix for n variables.
func NewMIMatrix(n int) *MIMatrix {
	if n < 1 {
		panic(fmt.Sprintf("core: NewMIMatrix with n = %d", n))
	}
	return &MIMatrix{N: n, values: make([]float64, n*(n-1)/2)}
}

// PairIndex flattens an unordered pair to its triangular index. It panics
// unless 0 <= i < j < n.
func (m *MIMatrix) PairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i < 0 || i == j || j >= m.N {
		panic(fmt.Sprintf("core: pair (%d,%d) invalid for n = %d", i, j, m.N))
	}
	// Offset of row i in the packed triangle plus the column offset.
	return i*(2*m.N-i-1)/2 + (j - i - 1)
}

// At returns I(X_i;X_j).
func (m *MIMatrix) At(i, j int) float64 { return m.values[m.PairIndex(i, j)] }

// Set assigns I(X_i;X_j).
func (m *MIMatrix) Set(i, j int, v float64) { m.values[m.PairIndex(i, j)] = v }

// NumPairs returns n(n-1)/2.
func (m *MIMatrix) NumPairs() int { return len(m.values) }

// ForEachPair calls fn(i, j, value) for every pair in (i, j) order.
func (m *MIMatrix) ForEachPair(fn func(i, j int, v float64)) {
	idx := 0
	for i := 0; i < m.N-1; i++ {
		for j := i + 1; j < m.N; j++ {
			fn(i, j, m.values[idx])
			idx++
		}
	}
}

// AllPairsMI computes the mutual information of every pair of variables
// from the potential table (Algorithm 4) using p workers and the given
// schedule. p <= 0 selects GOMAXPROCS.
//
// Deprecated: use AllPairsMICtx.
func (t *PotentialTable) AllPairsMI(p int, schedule MISchedule) *MIMatrix {
	mi, err := t.AllPairsMICtx(context.Background(), p, schedule)
	mustScan(err)
	return mi
}

// AllPairsMICtx is AllPairsMI under the fault-tolerant execution contract:
// workers observe ctx between pairs and at chunk boundaries within a scan,
// returning context.Canceled (or DeadlineExceeded) in bounded time with all
// workers joined.
func (t *PotentialTable) AllPairsMICtx(ctx context.Context, p int, schedule MISchedule) (*MIMatrix, error) {
	if p <= 0 {
		p = sched.DefaultP()
	}
	n := t.codec.NumVars()
	mi := NewMIMatrix(n)
	var err error
	switch schedule {
	case MIPartitionParallel:
		err = t.allPairsPartitionParallel(ctx, mi, p)
	case MIPairParallel:
		err = t.allPairsPairParallel(ctx, mi, p)
	case MIFused:
		err = t.allPairsFused(ctx, mi, p)
	case MIPairDynamic:
		err = t.allPairsPairDynamic(ctx, mi, p)
	default:
		panic("core: unknown MI schedule")
	}
	if err != nil {
		return nil, err
	}
	return mi, nil
}

// miPair is one unordered variable pair in the flattened work list.
type miPair struct{ i, j int }

func enumeratePairs(n int) []miPair {
	pairs := make([]miPair, 0, n*(n-1)/2)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, miPair{i, j})
		}
	}
	return pairs
}

// pairMI scans the whole table once for one pair and returns its mutual
// information. On a frozen table the scan streams the columnar snapshot in
// blocks, observing ctx once per block; on a live table checkCtx threads the
// caller's shared per-worker cancellation countdown through the inner Range
// loop. Either returns a non-nil cause when the scan should abort.
func (t *PotentialTable) pairMI(ctx context.Context, pr miPair, checkCtx func() error) (float64, error) {
	dec := t.codec.PairDecoder(pr.i, pr.j)
	ri, rj := t.codec.Cardinality(pr.i), t.codec.Cardinality(pr.j)
	counts := make([]uint64, ri*rj)
	var cause error
	if ft := t.frozen.Load(); ft != nil {
		done := ctx.Done()
		for pi := range ft.parts {
			fp := &ft.parts[pi]
			(sched.Span{Lo: 0, Hi: len(fp.keys)}).Chunks(scanBlockSize, func(c sched.Span) bool {
				select {
				case <-done:
					cause = context.Cause(ctx)
					return false
				default:
				}
				blockCounts := fp.counts[c.Lo:c.Hi]
				for e, key := range fp.keys[c.Lo:c.Hi] {
					counts[dec.Cell(key)] += blockCounts[e]
				}
				return true
			})
			if cause != nil {
				return 0, cause
			}
		}
		return stats.MutualInfoCounts(counts, ri, rj), nil
	}
	for _, part := range t.liveParts() {
		part.Range(func(key, count uint64) bool {
			if cause = checkCtx(); cause != nil {
				return false
			}
			counts[dec.Cell(key)] += count
			return true
		})
		if cause != nil {
			return 0, cause
		}
	}
	return stats.MutualInfoCounts(counts, ri, rj), nil
}

// ctxChecker returns the countdown-based cancellation probe shared by the
// pair-scanning schedules: cheap (a decrement) on the fast path, consulting
// ctx only every cancelCheckStride calls.
func ctxChecker(ctx context.Context) func() error {
	done := ctx.Done()
	check := cancelCheckStride
	return func() error {
		if check--; check == 0 {
			check = cancelCheckStride
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
		}
		return nil
	}
}

// allPairsPartitionParallel is Algorithm 4 as printed: a sequential loop
// over pairs, each marginalized by all P workers (Algorithm 3), with P(x)
// and P(y) recovered from the pairwise joint by summation.
func (t *PotentialTable) allPairsPartitionParallel(ctx context.Context, mi *MIMatrix, p int) error {
	n := mi.N
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			joint, err := t.MarginalizePairCtx(ctx, i, j, p)
			if err != nil {
				return err
			}
			mi.Set(i, j, stats.MutualInfoCounts(joint.Counts, joint.Card[0], joint.Card[1]))
		}
	}
	return nil
}

// allPairsPairParallel distributes pairs cyclically across workers.
func (t *PotentialTable) allPairsPairParallel(ctx context.Context, mi *MIMatrix, p int) error {
	pairs := enumeratePairs(mi.N)
	assign := sched.CyclicAssign(len(pairs), p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		check := ctxChecker(ctx)
		for _, pi := range assign[w] {
			v, err := t.pairMI(ctx, pairs[pi], check)
			if err != nil {
				return err
			}
			mi.Set(pairs[pi].i, pairs[pi].j, v)
		}
		return nil
	})
}

// allPairsPairDynamic distributes pairs with dynamic claiming: workers pull
// the next pair index from a shared atomic counter. Each worker hoists one
// cancellation checker for its whole run — allocating a fresh checker per
// pair would reset the countdown every pair and never consult ctx on small
// tables.
func (t *PotentialTable) allPairsPairDynamic(ctx context.Context, mi *MIMatrix, p int) error {
	pairs := enumeratePairs(mi.N)
	var next atomic.Int64
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		check := ctxChecker(ctx)
		for {
			pi := int(next.Add(1)) - 1
			if pi >= len(pairs) {
				return nil
			}
			v, err := t.pairMI(ctx, pairs[pi], check)
			if err != nil {
				return err
			}
			mi.Set(pairs[pi].i, pairs[pi].j, v)
		}
	})
}

// planeWords is the length of one bit-sliced column: one bit per entry of a
// sorted block, packed into uint64 words.
const planeWords = frozenScanBlockSize / 64

// fusedScratch is one worker's per-block working set for allPairsFused.
type fusedScratch struct {
	// col holds the block's decoded states column-major: variable j's
	// states occupy col[j*scanBlockSize : j*scanBlockSize+b].
	col []uint8
	// constV[j] is variable j's state if it is constant across the current
	// (sorted) block, else -1.
	constV []int
	// runsHint[j] bounds how many value runs variable j can have in the
	// current sorted block (its stride-quotient span, clamped to the block
	// length).
	runsHint []int
	// hist is n per-variable block histograms, maxCard cells apiece,
	// built lazily per block (histOK tracks which are current).
	hist   []uint64
	histOK []bool
	// plane is n bit-sliced columns of planeWords words: bit e of plane j
	// is variable j's state for entry e, built for varying binary variables
	// of a sorted block.
	plane []uint64
	// h1 caches Σ state·count per binary variable (h1OK tracks currency).
	h1   []uint64
	h1OK []bool
	// rare lists the block entries whose count is not 1, so bit-parallel
	// paths can treat the block as unit-weight plus a short correction list.
	rare []int32
}

func newFusedScratch(n, maxCard int) *fusedScratch {
	return &fusedScratch{
		col:      make([]uint8, n*scanBlockSize),
		constV:   make([]int, n),
		runsHint: make([]int, n),
		hist:     make([]uint64, n*maxCard),
		histOK:   make([]bool, n),
		plane:    make([]uint64, n*planeWords),
		h1:       make([]uint64, n),
		h1OK:     make([]bool, n),
		rare:     make([]int32, 0, frozenScanBlockSize),
	}
}

// fusedScratchPool recycles fusedScratch working sets across scans. Safe
// because every per-block field (constV, runsHint, histOK, h1OK, rare) is
// re-derived at the top of each block; only the geometry must fit.
var fusedScratchPool sync.Pool

// getFusedScratch returns a worker scratch sized for (n, maxCard), reusing
// a pooled one when its geometry is large enough. newFusedScratch sizes all
// n-proportional fields together, so checking histOK (length n) and hist
// (length n·maxCard) covers the rest.
func getFusedScratch(n, maxCard int) *fusedScratch {
	if v := fusedScratchPool.Get(); v != nil {
		sc := v.(*fusedScratch)
		if len(sc.histOK) >= n && len(sc.hist) >= n*maxCard {
			return sc
		}
	}
	return newFusedScratch(n, maxCard)
}

func putFusedScratch(scratch []*fusedScratch) {
	for _, sc := range scratch {
		if sc != nil {
			fusedScratchPool.Put(sc)
		}
	}
}

// histFor returns variable j's histogram of the block's counts, building it
// on first use within the block. When the column's value runs are long the
// run accumulates in a register before touching the histogram cell; short
// runs take the direct build, whose store-to-load chains are bounded by the
// histogram's size anyway.
func (sc *fusedScratch) histFor(j, maxCard, b int, card []int, counts []uint64) []uint64 {
	h := sc.hist[j*maxCard : j*maxCard+card[j]]
	if sc.histOK[j] {
		return h
	}
	sc.histOK[j] = true
	for s := range h {
		h[s] = 0
	}
	colJ := sc.col[j*scanBlockSize : j*scanBlockSize+b]
	if 4*sc.runsHint[j] > b {
		for e := 0; e < b; e++ {
			h[colJ[e]] += counts[e]
		}
		return h
	}
	run, acc := colJ[0], counts[0]
	for e := 1; e < b; e++ {
		if colJ[e] != run {
			h[run] += acc
			run, acc = colJ[e], 0
		}
		acc += counts[e]
	}
	h[run] += acc
	return h
}

// h1For returns Σ state·count for a varying binary variable of a sorted
// block: the popcount of its bit plane plus corrections for non-unit
// counts. This is the variable's marginal one-count over the block.
func (sc *fusedScratch) h1For(j int, counts []uint64) uint64 {
	if sc.h1OK[j] {
		return sc.h1[j]
	}
	sc.h1OK[j] = true
	plane := sc.plane[j*planeWords : (j+1)*planeWords]
	var h uint64
	for _, w := range plane {
		h += uint64(bits.OnesCount64(w))
	}
	for _, e := range sc.rare {
		h += ((plane[e>>6] >> (uint(e) & 63)) & 1) * (counts[e] - 1)
	}
	sc.h1[j] = h
	return h
}

// allPairsFused scans the table once, decodes every key fully, and updates
// all pairwise contingency tables in one pass. The scan runs in blocks: each
// block's keys are first decoded column-by-column into a per-worker
// column-major state scratch (one reciprocal decoder per variable, no
// per-key dispatch), then the pair loop walks the block once per pair so
// each pair's contingency tile stays cache-resident across the whole block
// (pair-block tiling). Sorted blocks (the frozen snapshot) additionally take
// fusedSortedBlock, which collapses constant-digit work instead of walking
// every entry for every pair.
func (t *PotentialTable) allPairsFused(ctx context.Context, mi *MIMatrix, p int) error {
	n := mi.N
	p = t.readP(p)
	card := make([]int, n)
	decs := make([]encoding.VarDecoder, n)
	maxCard := 1
	for j := 0; j < n; j++ {
		card[j] = t.codec.Cardinality(j)
		decs[j] = t.codec.VarDecoder(j)
		if card[j] > maxCard {
			maxCard = card[j]
		}
	}
	// Per-pair contingency table offsets within one flat slice.
	offsets := make([]int, mi.NumPairs()+1)
	idx := 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			offsets[idx+1] = offsets[idx] + card[i]*card[j]
			idx++
		}
	}
	totalCells := offsets[len(offsets)-1]

	partials := getPartials(p, totalCells)
	scratch := make([]*fusedScratch, p)
	if err := t.scanBlocksCtx(ctx, p, func(w int, keys, counts []uint64, sorted bool) {
		sc := scratch[w]
		if sc == nil {
			sc = getFusedScratch(n, maxCard)
			scratch[w] = sc
		}
		pc := partials[w]
		if sorted {
			fusedSortedBlock(sc, pc, offsets, card, decs, maxCard, keys, counts)
			return
		}
		b := len(keys)
		col := sc.col
		for j := 0; j < n; j++ {
			decs[j].DecodeBlock(keys, col[j*scanBlockSize:j*scanBlockSize+b])
		}
		pairIdx := 0
		for i := 0; i < n-1; i++ {
			colI := col[i*scanBlockSize : i*scanBlockSize+b]
			for j := i + 1; j < n; j++ {
				rj := card[j]
				colJ := col[j*scanBlockSize : j*scanBlockSize+b]
				tile := pc[offsets[pairIdx]:offsets[pairIdx+1]]
				for e := 0; e < b; e++ {
					tile[int(colI[e])*rj+int(colJ[e])] += counts[e]
				}
				pairIdx++
			}
		}
	}); err != nil {
		return err
	}
	putFusedScratch(scratch)

	merged := mergePartials(partials)
	putPartials(partials)
	idx = 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			mi.Set(i, j, stats.MutualInfoCounts(merged[offsets[idx]:offsets[idx+1]], card[i], card[j]))
			idx++
		}
	}
	return nil
}

// fusedSortedBlock is the sorted-block arm of the fused kernel. In a sorted
// block each digit column is piecewise constant, changing only where the key
// crosses a multiple of the variable's stride (stride_j = Π_{k<j} r_k, so
// high-index variables move slowest), and the stride quotients of the
// block's first and last key tell how much a column can move: an equal
// quotient pins the digit for the whole block, and the quotient difference
// bounds its value runs. That collapses the pair loop's work by stride
// class:
//
//   - both digits constant: one add of the block's total count;
//   - the slow digit j constant: card_i adds of variable i's block
//     histogram into one tile column (the histogram is built once per
//     block per variable, shared by every such pair);
//   - both binary and varying: the states are bit-sliced into planes (one
//     bit per entry), and the 2×2 tile has one degree of freedom beyond the
//     marginals — N[1,1] = popcount(plane_i AND plane_j) over four words,
//     corrected for the block's rare non-unit counts; the other three cells
//     follow from the plane popcounts and the block total in exact modular
//     uint64 arithmetic;
//   - both varying with long cell runs: each run accumulates in a register
//     before one tile store — without this, sorted input serializes the
//     direct kernel on back-to-back read-modify-writes of a single cell;
//   - short runs: the direct kernel, which sorted input can no longer hurt
//     because short runs interleave cells just like hash order.
//
// The bit-plane path is what makes the frozen scan cheap: building the
// planes costs one decode per varying binary variable per entry, after
// which every binary pair is ~3 word operations per 64 entries instead of a
// load-multiply-add per entry. Non-unit counts are collected once per block
// into a rare list (in a freshly built sparse table almost every count is
// 1) and patched in exactly.
//
// Mixed-radix strides nest (stride_j is a multiple of stride_i for i < j),
// so a pair's cell can only change where the fast digit i's quotient steps —
// runsHint[i] bounds the pair's cell runs — and "fast digit constant but
// slow digit varying" cannot happen. Every path adds the same totals the
// per-entry kernel would, so the merged tiles are bit-identical.
func fusedSortedBlock(sc *fusedScratch, pc []uint64, offsets, card []int, decs []encoding.VarDecoder, maxCard int, keys, counts []uint64) {
	n := len(card)
	b := len(keys)
	first, last := keys[0], keys[b-1]
	sc.rare = sc.rare[:0]
	blockTotal := uint64(b)
	for e, c := range counts {
		if c != 1 {
			sc.rare = append(sc.rare, int32(e))
			blockTotal += c - 1
		}
	}
	// Classify each variable by its stride-quotient span, then materialize
	// the varying ones: binary variables as bit planes (plus a state column
	// only when some varying variable is non-binary, so the mixed run-length
	// and direct kernels have both columns), others as state columns.
	mixed := false
	for j := 0; j < n; j++ {
		sc.histOK[j], sc.h1OK[j] = false, false
		if d := decs[j].Quot(last) - decs[j].Quot(first); d == 0 {
			sc.constV[j] = int(decs[j].Decode(first))
			continue
		} else if d < uint64(b) {
			sc.runsHint[j] = int(d) + 1
		} else {
			sc.runsHint[j] = b
		}
		sc.constV[j] = -1
		if card[j] != 2 {
			mixed = true
		}
	}
	col := sc.col
	for j := 0; j < n; j++ {
		if sc.constV[j] >= 0 {
			continue
		}
		if card[j] == 2 {
			plane := sc.plane[j*planeWords : (j+1)*planeWords]
			for w := range plane {
				plane[w] = 0
			}
			for e := 0; e < b; e++ {
				plane[e>>6] |= uint64(decs[j].Decode(keys[e])) << (e & 63)
			}
			if !mixed {
				continue
			}
		}
		decs[j].DecodeBlock(keys, col[j*scanBlockSize:j*scanBlockSize+b])
	}
	pairIdx := 0
	for i := 0; i < n-1; i++ {
		ci := sc.constV[i]
		ri := card[i]
		colI := col[i*scanBlockSize : i*scanBlockSize+b]
		planeI := sc.plane[i*planeWords : (i+1)*planeWords]
		for j := i + 1; j < n; j++ {
			rj := card[j]
			tile := pc[offsets[pairIdx]:offsets[pairIdx+1]]
			pairIdx++
			cj := sc.constV[j]
			switch {
			case ci >= 0 && cj >= 0:
				tile[ci*rj+cj] += blockTotal
			case cj >= 0:
				if ri == 2 {
					h1 := sc.h1For(i, counts)
					tile[cj] += blockTotal - h1
					tile[rj+cj] += h1
					continue
				}
				h := sc.histFor(i, maxCard, b, card, counts)
				for s := 0; s < ri; s++ {
					tile[s*rj+cj] += h[s]
				}
			case ci >= 0:
				// Unreachable while strides nest (see above); kept so the
				// kernel stays correct for any future encoding.
				row := tile[ci*rj : ci*rj+rj]
				if rj == 2 {
					h1 := sc.h1For(j, counts)
					row[0] += blockTotal - h1
					row[1] += h1
					continue
				}
				h := sc.histFor(j, maxCard, b, card, counts)
				for s := 0; s < rj; s++ {
					row[s] += h[s]
				}
			case ri == 2 && rj == 2:
				planeJ := sc.plane[j*planeWords : (j+1)*planeWords]
				var n11 uint64
				for w := range planeI {
					n11 += uint64(bits.OnesCount64(planeI[w] & planeJ[w]))
				}
				for _, e := range sc.rare {
					both := (planeI[e>>6] >> (uint(e) & 63)) & (planeJ[e>>6] >> (uint(e) & 63)) & 1
					n11 += both * (counts[e] - 1)
				}
				hi1 := sc.h1For(i, counts)
				hj1 := sc.h1For(j, counts)
				tile[0] += blockTotal - hi1 - hj1 + n11
				tile[1] += hj1 - n11
				tile[2] += hi1 - n11
				tile[3] += n11
			default:
				colJ := col[j*scanBlockSize : j*scanBlockSize+b]
				if b >= 4*sc.runsHint[i] {
					run := int(colI[0])*rj + int(colJ[0])
					acc := counts[0]
					for e := 1; e < b; e++ {
						cell := int(colI[e])*rj + int(colJ[e])
						if cell != run {
							tile[run] += acc
							run, acc = cell, 0
						}
						acc += counts[e]
					}
					tile[run] += acc
				} else {
					for e := 0; e < b; e++ {
						tile[int(colI[e])*rj+int(colJ[e])] += counts[e]
					}
				}
			}
		}
	}
}
