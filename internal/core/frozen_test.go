package core

import (
	"context"
	"errors"
	"sort"
	"testing"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/obs"
)

// mixedData builds a dataset over mixed cardinalities so frozen-vs-live
// equivalence is exercised off the uniform fast path.
func mixedData(t testing.TB, m int, cards []int, seed uint64) *dataset.Dataset {
	t.Helper()
	d := dataset.New(m, cards)
	d.UniformIndependent(seed, 4)
	return d
}

func TestFreezeStatsAndIdempotency(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 30)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Frozen() {
		t.Fatal("table frozen before Freeze")
	}
	st := pt.Freeze(4)
	if !pt.Frozen() {
		t.Fatal("table not frozen after Freeze")
	}
	if st.Entries != pt.Len() {
		t.Fatalf("FreezeStats.Entries = %d, want %d", st.Entries, pt.Len())
	}
	if st.Partitions != pt.Partitions() {
		t.Fatalf("FreezeStats.Partitions = %d, want %d", st.Partitions, pt.Partitions())
	}
	again := pt.Freeze(1)
	if again.Entries != st.Entries || again.Duration != 0 {
		t.Fatalf("second Freeze not a no-op: %+v", again)
	}
}

func TestFrozenSnapshotSortedPerPartition(t *testing.T) {
	d := uniformData(t, 30000, 10, 2, 31)
	pt, _, err := Build(d, Options{P: 5})
	if err != nil {
		t.Fatal(err)
	}
	pt.Freeze(3)
	ft := pt.frozen.Load()
	if ft == nil {
		t.Fatal("no snapshot")
	}
	if len(ft.parts) != pt.Partitions() {
		t.Fatalf("snapshot has %d blocks for %d partitions", len(ft.parts), pt.Partitions())
	}
	for p := range ft.parts {
		seg := ft.parts[p].keys
		if !sort.SliceIsSorted(seg, func(i, j int) bool { return seg[i] < seg[j] }) {
			t.Fatalf("partition %d segment not sorted", p)
		}
	}
}

func TestFrozenGetMatchesLive(t *testing.T) {
	d := uniformData(t, 10000, 8, 3, 32)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	type kv struct{ k, c uint64 }
	var entries []kv
	pt.Range(func(key, count uint64) bool {
		entries = append(entries, kv{key, count})
		return true
	})
	pt.Freeze(0)
	for _, e := range entries {
		if got := pt.Get(e.k); got != e.c {
			t.Fatalf("frozen Get(%d) = %d, want %d", e.k, got, e.c)
		}
	}
	// A key that was never observed must read as zero on both paths.
	probe := uint64(0)
	seen := map[uint64]bool{}
	for _, e := range entries {
		seen[e.k] = true
	}
	for seen[probe] {
		probe++
	}
	if got := pt.Get(probe); got != 0 {
		t.Fatalf("frozen Get(absent %d) = %d, want 0", probe, got)
	}
}

// TestFrozenScansBitIdenticalToLive is the tentpole equivalence test: every
// read-path primitive must produce bit-identical output from the frozen
// snapshot and the live hashtables, at every worker count including
// p > partitions (where the live path clamps and the frozen path does not).
func TestFrozenScansBitIdenticalToLive(t *testing.T) {
	cases := []struct {
		name string
		data *dataset.Dataset
		p    int
	}{
		{"uniform", uniformData(t, 25000, 7, 3, 33), 4},
		{"mixed", mixedData(t, 25000, []int{2, 5, 3, 1, 4, 2, 7}, 34), 3},
	}
	varsets := [][]int{{0}, {2, 4}, {5, 1, 3}, {6, 0}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live, _, err := Build(tc.data, Options{P: tc.p})
			if err != nil {
				t.Fatal(err)
			}
			frozen, _, err := Build(tc.data, Options{P: tc.p})
			if err != nil {
				t.Fatal(err)
			}
			frozen.Freeze(0)

			for _, p := range []int{1, 3, 8, 2 * tc.p, 64} {
				for _, vars := range varsets {
					a := live.Marginalize(vars, p)
					b := frozen.Marginalize(vars, p)
					for c := range a.Counts {
						if a.Counts[c] != b.Counts[c] {
							t.Fatalf("p=%d vars=%v cell %d: live %d != frozen %d", p, vars, c, a.Counts[c], b.Counts[c])
						}
					}
				}
				a := live.MarginalizePair(1, 4, p)
				b := frozen.MarginalizePair(1, 4, p)
				for c := range a.Counts {
					if a.Counts[c] != b.Counts[c] {
						t.Fatalf("p=%d pair cell %d: live %d != frozen %d", p, c, a.Counts[c], b.Counts[c])
					}
				}
				am := live.MarginalizeMany(varsets, p)
				bm := frozen.MarginalizeMany(varsets, p)
				for k := range am {
					for c := range am[k].Counts {
						if am[k].Counts[c] != bm[k].Counts[c] {
							t.Fatalf("p=%d many[%d] cell %d: live %d != frozen %d", p, k, c, am[k].Counts[c], bm[k].Counts[c])
						}
					}
				}
				for _, schedule := range []MISchedule{MIFused, MIPairParallel, MIPairDynamic, MIPartitionParallel} {
					ma := live.AllPairsMI(p, schedule)
					mb := frozen.AllPairsMI(p, schedule)
					ma.ForEachPair(func(i, j int, v float64) {
						if w := mb.At(i, j); w != v {
							t.Fatalf("p=%d %v MI(%d,%d): live %v != frozen %v", p, schedule, i, j, v, w)
						}
					})
				}
			}
		})
	}
}

func TestRebalanceInvalidatesSnapshot(t *testing.T) {
	d := uniformData(t, 10000, 6, 3, 35)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref := pt.Marginalize([]int{1, 3}, 4)
	pt.Freeze(0)
	pt.Rebalance(7)
	if pt.Frozen() {
		t.Fatal("snapshot survived Rebalance")
	}
	mg := pt.Marginalize([]int{1, 3}, 4)
	for c := range ref.Counts {
		if mg.Counts[c] != ref.Counts[c] {
			t.Fatalf("cell %d after rebalance: %d != %d", c, mg.Counts[c], ref.Counts[c])
		}
	}
	// Re-freezing after a rebalance captures the new partitions.
	st := pt.Freeze(0)
	if st.Partitions != 7 {
		t.Fatalf("re-freeze saw %d partitions, want 7", st.Partitions)
	}
	mg = pt.Marginalize([]int{1, 3}, 4)
	for c := range ref.Counts {
		if mg.Counts[c] != ref.Counts[c] {
			t.Fatalf("cell %d after re-freeze: %d != %d", c, mg.Counts[c], ref.Counts[c])
		}
	}
}

func TestFrozenScanCancel(t *testing.T) {
	d := uniformData(t, 50000, 10, 2, 36)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	pt.Freeze(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pt.MarginalizeCtx(ctx, []int{0, 1}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("frozen Marginalize err = %v, want Canceled", err)
	}
	if _, err := pt.AllPairsMICtx(ctx, 4, MIFused); !errors.Is(err, context.Canceled) {
		t.Fatalf("frozen fused MI err = %v, want Canceled", err)
	}
	if _, err := pt.AllPairsMICtx(ctx, 4, MIPairDynamic); !errors.Is(err, context.Canceled) {
		t.Fatalf("frozen dynamic MI err = %v, want Canceled", err)
	}
}

func TestFreezeCtxCancel(t *testing.T) {
	d := uniformData(t, 20000, 8, 2, 37)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pt.FreezeCtx(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("FreezeCtx err = %v, want Canceled", err)
	}
	if pt.Frozen() {
		t.Fatal("cancelled FreezeCtx left a snapshot behind")
	}
}

// TestScanClampSurfaced checks the satellite contract: asking a live table
// for more workers than partitions bumps core_scan_clamped_total, and a
// frozen table never clamps.
func TestScanClampSurfaced(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 38)
	r := obs.NewRegistry()
	pt, _, err := Build(d, Options{P: 2, Obs: r})
	if err != nil {
		t.Fatal(err)
	}
	clamped := func() uint64 {
		return r.Snapshot().Counters[metricScanClamped]
	}
	pt.Marginalize([]int{0, 1}, 16)
	if got := clamped(); got != 1 {
		t.Fatalf("clamp counter after live over-subscribed scan = %v, want 1", got)
	}
	pt.AllPairsMI(16, MIFused)
	if got := clamped(); got != 2 {
		t.Fatalf("clamp counter after live fused MI = %v, want 2", got)
	}
	pt.Freeze(0)
	pt.Marginalize([]int{0, 1}, 16)
	pt.AllPairsMI(16, MIFused)
	if got := clamped(); got != 2 {
		t.Fatalf("clamp counter moved on frozen scans: %v, want 2", got)
	}
}

func TestFreezeObsMetrics(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 39)
	r := obs.NewRegistry()
	pt, _, err := Build(d, Options{P: 2, Obs: r})
	if err != nil {
		t.Fatal(err)
	}
	pt.Freeze(0)
	pt.Marginalize([]int{0, 1}, 2)
	s := r.Snapshot()
	if got := s.Gauges[metricFrozenEntries]; got != float64(pt.Len()) {
		t.Fatalf("%s = %v, want %d", metricFrozenEntries, got, pt.Len())
	}
	if got := s.Counters[metricScanEntries+`{path="frozen"}`]; got != uint64(pt.Len()) {
		t.Fatalf(`%s{path="frozen"} = %d, want %d`, metricScanEntries, got, pt.Len())
	}
}
