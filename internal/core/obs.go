package core

import (
	"strconv"

	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/spsc"
)

// Metric names published by the construction primitives. Documented in
// README.md ("Observability"); keep the two in sync.
const (
	metricBuilds          = "core_builds_total"
	metricLocalKeys       = "core_local_keys_total"
	metricForeignKeys     = "core_foreign_keys_total"
	metricStage2Pops      = "core_stage2_pops_total"
	metricQueuePush       = "core_queue_push_total"
	metricQueuePop        = "core_queue_pop_total"
	metricWorkerStage     = "core_worker_stage_seconds"
	metricWorkerBarrier   = "core_worker_barrier_wait_seconds"
	metricStageHist       = "core_stage_seconds"
	metricBarrierHist     = "sched_barrier_wait_seconds"
	metricPartitionKeys   = "core_partition_keys"
	metricPartitionSkew   = "core_partition_skew"
	metricTableHint       = "core_table_hint"
	metricTableHintCapped = "core_table_hint_capped_total"
	metricBatchFlushes    = "spsc_batch_flushes_total"
	metricForeignDupes    = "core_foreign_dupes_combined_total"
	metricSplitKeys       = "core_split_keys_total"
	metricSplitMerges     = "core_split_merges_total"
	metricDestQueueWords  = "core_dest_queue_words"
	metricChunkSegments   = "spsc_chunk_segments_total"
	metricRingHighWater   = "spsc_ring_highwater"
	metricSpillKeys       = "spsc_spill_keys_total"
	metricMutexAcquires   = "spsc_mutex_acquires_total"
	metricTableGrows      = "hashtable_grows_total"
	metricProbeMax        = "hashtable_probe_max"
	metricProbeMean       = "hashtable_probe_mean"
	metricFreezeSeconds   = "core_freeze_seconds"
	metricFrozenEntries   = "core_frozen_entries"
	metricScanEntries     = "core_scan_entries_total"
	metricScanSeconds     = "core_scan_seconds"
	metricScanPasses      = "core_scan_passes_total"
	metricScanClamped     = "core_scan_clamped_total"

	metricRefreezeReused      = "core_refreeze_reused_partitions_total"
	metricRefreezeMergedRuns  = "core_refreeze_merged_runs_total"
	metricRefreezeDrainedKeys = "core_refreeze_drained_keys_total"
	metricRefreezeMergedKeys  = "core_refreeze_merged_keys_total"
)

// publishBuildMetrics records one completed build into the registry. It
// runs after the workers have joined, so every source it reads (worker
// stats, queue internals, partition tables) is quiescent. On a nil
// registry it returns immediately — the disabled fast path.
func publishBuildMetrics(r *obs.Registry, st Stats, ws []workerStats, queues queueMatrix, parts []hashtable.Counter) {
	if r == nil {
		return
	}
	r.Help(metricBuilds, "completed wait-free table constructions")
	r.Counter(metricBuilds).Inc()
	r.Counter(metricLocalKeys).Add(st.LocalKeys)
	r.Counter(metricForeignKeys).Add(st.ForeignKeys)
	r.Counter(metricStage2Pops).Add(st.Stage2Pops)
	r.Gauge(metricTableHint).Set(float64(st.TableHint))
	if st.TableHintCapped {
		r.Counter(metricTableHintCapped).Inc()
	} else {
		r.Counter(metricTableHintCapped).Add(0) // materialize the series
	}

	r.Help(metricWorkerStage, "per-worker wall clock of the last build, by stage")
	for w := range ws {
		label := strconv.Itoa(w)
		r.Gauge(metricWorkerStage, "stage", "1", "worker", label).Set(ws[w].stage1.Seconds())
		r.Gauge(metricWorkerStage, "stage", "2", "worker", label).Set(ws[w].stage2.Seconds())
		r.Gauge(metricWorkerBarrier, "worker", label).Set(ws[w].barrier.Seconds())
		r.Histogram(metricStageHist, "stage", "1").Observe(ws[w].stage1)
		r.Histogram(metricStageHist, "stage", "2").Observe(ws[w].stage2)
		r.Histogram(metricBarrierHist).Observe(ws[w].barrier)
	}

	publishQueueMetrics(r, st, queues)
	publishPartitionMetrics(r, parts)
}

// publishQueueMetrics records queue traffic volume plus the
// implementation-specific pressure signals: segment allocations for
// chunked queues, occupancy high-water marks for rings, lock acquisitions
// for the mutex ablation arm.
func publishQueueMetrics(r *obs.Registry, st Stats, queues queueMatrix) {
	r.Help(metricQueuePush, "keys pushed into inter-core queues (== foreign keys)")
	r.Counter(metricQueuePush).Add(st.ForeignKeys)
	r.Counter(metricQueuePop).Add(st.Stage2Pops)
	if st.BatchFlushes > 0 {
		r.Help(metricBatchFlushes, "write-combining buffer flushes (PushBatch publishes)")
		r.Counter(metricBatchFlushes).Add(st.BatchFlushes)
		r.Help(metricForeignDupes, "duplicate foreign keys combined into deltas before queueing")
		r.Counter(metricForeignDupes).Add(st.ForeignDupes)
	}
	if st.SplitKeys > 0 {
		r.Help(metricSplitKeys, "hot-key mass diverted from the queues into split delta tables")
		r.Counter(metricSplitKeys).Add(st.SplitKeys)
		r.Help(metricSplitMerges, "split delta mass merged into owner tables after the barrier")
		r.Counter(metricSplitMerges).Add(st.SplitMerges)
	}
	if len(st.DestQueueWords) > 0 {
		r.Help(metricDestQueueWords, "cumulative words pushed into each destination's queue column")
		for j, words := range st.DestQueueWords {
			r.Gauge(metricDestQueueWords, "dest", strconv.Itoa(j)).Set(float64(words))
		}
	}

	var segments, acquires, spilled uint64
	maxHW := 0
	for i := range queues {
		for j := range queues[i] {
			switch q := queues[i][j].(type) {
			case *spsc.Chunked:
				segments += uint64(q.Segments())
			case *spsc.Ring:
				if hw := q.HighWater(); hw > maxHW {
					maxHW = hw
				}
			case *spsc.Spillover:
				spilled += q.Spilled()
				if hw := q.HighWater(); hw > maxHW {
					maxHW = hw
				}
			case *spsc.MutexQueue:
				acquires += q.Acquires()
			}
		}
	}
	if spilled > 0 {
		r.Help(metricSpillKeys, "keys that overflowed a ring into its spill side queue")
		r.Counter(metricSpillKeys).Add(spilled)
	}
	if segments > 0 {
		r.Help(metricChunkSegments, "segments allocated across all chunked queues")
		r.Counter(metricChunkSegments).Add(segments)
	}
	if maxHW > 0 {
		r.Help(metricRingHighWater, "largest occupancy any ring queue reached")
		r.Gauge(metricRingHighWater).SetMax(float64(maxHW))
	}
	if acquires > 0 {
		r.Counter(metricMutexAcquires).Add(acquires)
	}
}

// publishPartitionMetrics records per-partition occupancy, the skew ratio
// (max/mean entries — 1.0 is perfectly balanced), and the open-addressing
// probe/resize diagnostics where the partition tables support them.
func publishPartitionMetrics(r *obs.Registry, parts []hashtable.Counter) {
	r.Help(metricPartitionKeys, "distinct keys per partition after the last build")
	total, maxLen := 0, 0
	grows := 0
	probeMax, probeMeanSum := 0, 0.0
	probed := 0
	for i, part := range parts {
		part = unwrapCounter(part)
		n := part.Len()
		total += n
		if n > maxLen {
			maxLen = n
		}
		r.Gauge(metricPartitionKeys, "partition", strconv.Itoa(i)).Set(float64(n))
		if t, ok := part.(*hashtable.Table); ok {
			grows += t.Grows()
			pm, mean := t.ProbeStats()
			if pm > probeMax {
				probeMax = pm
			}
			probeMeanSum += mean
			probed++
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(parts))
		r.Help(metricPartitionSkew, "max/mean distinct keys across partitions (1.0 = balanced)")
		r.Gauge(metricPartitionSkew).Set(float64(maxLen) / mean)
	}
	if probed > 0 {
		r.Counter(metricTableGrows).Add(uint64(grows))
		r.Gauge(metricProbeMax).Set(float64(probeMax))
		r.Gauge(metricProbeMean).Set(probeMeanSum / float64(probed))
	}
}
