package core

import (
	"math"
	"testing"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/stats"
)

func TestMIMatrixIndexing(t *testing.T) {
	m := NewMIMatrix(5)
	if m.NumPairs() != 10 {
		t.Fatalf("NumPairs = %d, want 10", m.NumPairs())
	}
	// Indices must be a bijection onto [0, 10).
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 5; j++ {
			idx := m.PairIndex(i, j)
			if idx < 0 || idx >= 10 || seen[idx] {
				t.Fatalf("PairIndex(%d,%d) = %d invalid or duplicate", i, j, idx)
			}
			seen[idx] = true
			// Symmetry of argument order.
			if m.PairIndex(j, i) != idx {
				t.Fatalf("PairIndex(%d,%d) != PairIndex(%d,%d)", j, i, i, j)
			}
		}
	}
}

func TestMIMatrixSetAt(t *testing.T) {
	m := NewMIMatrix(4)
	m.Set(1, 3, 0.5)
	if got := m.At(1, 3); got != 0.5 {
		t.Errorf("At(1,3) = %v", got)
	}
	if got := m.At(3, 1); got != 0.5 {
		t.Errorf("At(3,1) = %v (symmetric access)", got)
	}
}

func TestMIMatrixForEachPair(t *testing.T) {
	m := NewMIMatrix(4)
	count := 0
	var lastI, lastJ = -1, -1
	m.ForEachPair(func(i, j int, v float64) {
		if i >= j {
			t.Fatalf("ForEachPair yielded (%d,%d)", i, j)
		}
		if i < lastI || (i == lastI && j <= lastJ) {
			t.Fatalf("ForEachPair out of order: (%d,%d) after (%d,%d)", i, j, lastI, lastJ)
		}
		lastI, lastJ = i, j
		count++
	})
	if count != 6 {
		t.Fatalf("ForEachPair visited %d pairs, want 6", count)
	}
}

func TestMIMatrixPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n<1":      func() { NewMIMatrix(0) },
		"i==j":     func() { NewMIMatrix(3).PairIndex(1, 1) },
		"j>=n":     func() { NewMIMatrix(3).PairIndex(0, 3) },
		"negative": func() { NewMIMatrix(3).PairIndex(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// bruteAllPairsMI computes all-pairs MI directly from the dataset.
func bruteAllPairsMI(d *dataset.Dataset) *MIMatrix {
	n := d.NumVars()
	mi := NewMIMatrix(n)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			ri, rj := d.Cardinality(i), d.Cardinality(j)
			counts := make([]uint64, ri*rj)
			for s := 0; s < d.NumSamples(); s++ {
				counts[int(d.Get(s, i))*rj+int(d.Get(s, j))]++
			}
			mi.Set(i, j, stats.MutualInfoCounts(counts, ri, rj))
		}
	}
	return mi
}

func matricesEqual(a, b *MIMatrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	equal := true
	a.ForEachPair(func(i, j int, v float64) {
		if math.Abs(v-b.At(i, j)) > tol {
			equal = false
		}
	})
	return equal
}

func TestAllPairsMIAllSchedulesMatchBruteForce(t *testing.T) {
	d := uniformData(t, 8000, 7, 3, 30)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteAllPairsMI(d)
	for _, sch := range []MISchedule{MIPartitionParallel, MIPairParallel, MIFused, MIPairDynamic} {
		got := pt.AllPairsMI(4, sch)
		if !matricesEqual(got, want, 1e-12) {
			t.Errorf("schedule %v differs from brute force", sch)
		}
	}
}

func TestAllPairsMIIndependentOfWorkers(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 31)
	pt, _, err := Build(d, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref := pt.AllPairsMI(1, MIFused)
	for _, p := range []int{2, 5, 16} {
		for _, sch := range []MISchedule{MIPartitionParallel, MIPairParallel, MIFused, MIPairDynamic} {
			if got := pt.AllPairsMI(p, sch); !matricesEqual(got, ref, 1e-12) {
				t.Errorf("p=%d schedule %v differs", p, sch)
			}
		}
	}
}

func TestAllPairsMIDetectsPlantedDependence(t *testing.T) {
	// Variables 0..4 independent uniform, but variable 1 copied into 3:
	// I(1;3) should be ~1 bit, every other pair ~0.
	const m = 20000
	d := dataset.NewUniformCard(m, 5, 2)
	d.UniformIndependent(32, 4)
	for i := 0; i < m; i++ {
		d.Set(i, 3, d.Get(i, 1))
	}
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	mi := pt.AllPairsMI(4, MIFused)
	if got := mi.At(1, 3); got < 0.99 {
		t.Errorf("I(1;3) = %v, want ~1", got)
	}
	mi.ForEachPair(func(i, j int, v float64) {
		if i == 1 && j == 3 {
			return
		}
		if v > 0.01 {
			t.Errorf("I(%d;%d) = %v, want ~0 for independent pair", i, j, v)
		}
	})
}

func TestAllPairsMINoisyChannel(t *testing.T) {
	// Variable 2 = variable 0 with 10% flip noise: the binary symmetric
	// channel with crossover 0.1 has capacity-related MI
	// I = 1 - H(0.1) ≈ 0.531 bits when the input is uniform.
	const m = 100000
	d := dataset.NewUniformCard(m, 3, 2)
	d.UniformIndependent(33, 4)
	flip := dataset.NewUniformCard(m, 1, 10)
	flip.UniformIndependent(34, 4)
	for i := 0; i < m; i++ {
		v := d.Get(i, 0)
		if flip.Get(i, 0) == 0 { // 10% chance
			v ^= 1
		}
		d.Set(i, 2, v)
	}
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	mi := pt.AllPairsMI(4, MIFused)
	h01 := -0.1*math.Log2(0.1) - 0.9*math.Log2(0.9)
	want := 1 - h01
	if got := mi.At(0, 2); math.Abs(got-want) > 0.02 {
		t.Errorf("I(0;2) = %v, want ~%v", got, want)
	}
}

func TestAllPairsMIUnknownSchedulePanics(t *testing.T) {
	d := uniformData(t, 100, 3, 2, 35)
	pt, _, _ := Build(d, Options{P: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown schedule did not panic")
		}
	}()
	pt.AllPairsMI(2, MISchedule(99))
}

func TestScheduleAndKindStrings(t *testing.T) {
	if MIPartitionParallel.String() != "partition-parallel" ||
		MIPairParallel.String() != "pair-parallel" ||
		MIFused.String() != "fused" ||
		MIPairDynamic.String() != "pair-dynamic" ||
		MISchedule(9).String() != "unknown" {
		t.Error("MISchedule.String mismatch")
	}
	if PartitionModulo.String() != "modulo" || PartitionRange.String() != "range" ||
		PartitionHash.String() != "hash" || PartitionKind(9).String() != "unknown" {
		t.Error("PartitionKind.String mismatch")
	}
	if TableOpenAddressing.String() != "open-addressing" || TableChained.String() != "chained" ||
		TableGoMap.String() != "gomap" || TableKind(9).String() != "unknown" {
		t.Error("TableKind.String mismatch")
	}
}

func TestAllPairsMIMixedCardinalities(t *testing.T) {
	d := dataset.New(6000, []int{2, 3, 4, 2, 5})
	d.UniformIndependent(36, 4)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteAllPairsMI(d)
	for _, sch := range []MISchedule{MIPartitionParallel, MIPairParallel, MIFused, MIPairDynamic} {
		if got := pt.AllPairsMI(3, sch); !matricesEqual(got, want, 1e-12) {
			t.Errorf("schedule %v differs on mixed cardinalities", sch)
		}
	}
}
