package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/spsc"
)

// refreezeKeys returns m deterministic pseudo-random keys < space, suitable
// for feeding AddKeysCtx directly.
func refreezeKeys(m int, space uint64, seed uint64) []uint64 {
	keys := make([]uint64, m)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range keys {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		keys[i] = x % space
	}
	return keys
}

// localizedKeys returns m keys confined to a contiguous fraction of the key
// space starting at offset frac·shift — the skewed ingest shape that leaves
// most range-partitioned partitions untouched.
func localizedKeys(m int, space uint64, frac float64, shift int, seed uint64) []uint64 {
	window := uint64(float64(space) * frac)
	if window == 0 {
		window = 1
	}
	base := (uint64(shift) * window) % (space - window + 1)
	keys := refreezeKeys(m, window, seed)
	for i := range keys {
		keys[i] += base
	}
	return keys
}

// assertTablesBitIdentical fails unless the two tables hold exactly the
// same key→count mapping and sample count.
func assertTablesBitIdentical(t *testing.T, got, want *PotentialTable, label string) {
	t.Helper()
	if got.NumSamples() != want.NumSamples() {
		t.Fatalf("%s: samples %d, want %d", label, got.NumSamples(), want.NumSamples())
	}
	if !got.Equal(want) {
		t.Fatalf("%s: tables differ", label)
	}
}

// TestIncrementalSnapshotBitIdentical drives parallel full-mode and
// incremental-mode builders through identical multi-epoch ingest streams
// across P × queue-kind combinations and asserts every epoch's snapshot is
// bit-identical, including epochs with localized deltas (merge path), broad
// deltas, and no delta at all (pure reuse).
func TestIncrementalSnapshotBitIdentical(t *testing.T) {
	queues := []spsc.Kind{spsc.KindChunked, spsc.KindRing, spsc.KindMutex}
	for _, p := range []int{1, 4, 8} {
		for _, q := range queues {
			t.Run(fmt.Sprintf("P=%d/queue=%v", p, q), func(t *testing.T) {
				codec, err := encoding.NewUniformCodec(8, 3)
				if err != nil {
					t.Fatal(err)
				}
				space := codec.KeySpace()
				mk := func(mode FreezeMode) *Builder {
					return NewBuilder(codec, 0, Options{
						P: p, NumPartitions: 4 * p, Partition: PartitionRange,
						Queue: q, Refreeze: mode,
					})
				}
				inc, full := mk(FreezeIncremental), mk(FreezeFull)
				ctx := context.Background()

				feeds := [][]uint64{
					refreezeKeys(30000, space, 1),          // epoch 1: cold, all drain
					localizedKeys(1500, space, 0.05, 0, 2), // epoch 2: narrow delta, mostly merge
					nil,                                    // epoch 3: nothing new, pure reuse
					localizedKeys(1500, space, 0.05, 3, 4), // epoch 4: different window
					refreezeKeys(4000, space, 5),           // epoch 5: broad delta
				}
				for ep, keys := range feeds {
					if keys != nil {
						if err := inc.AddKeysCtx(ctx, keys); err != nil {
							t.Fatal(err)
						}
						if err := full.AddKeysCtx(ctx, keys); err != nil {
							t.Fatal(err)
						}
					}
					got, ist, err := inc.SnapshotCtx(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					want, _, err := full.SnapshotCtx(ctx, p)
					if err != nil {
						t.Fatal(err)
					}
					assertTablesBitIdentical(t, got, want, fmt.Sprintf("epoch %d", ep+1))
					if !ist.Incremental {
						t.Fatalf("epoch %d: stats not marked incremental", ep+1)
					}
					if got.FreezeEpoch() != uint64(ep+1) {
						t.Fatalf("epoch %d: FreezeEpoch = %d", ep+1, got.FreezeEpoch())
					}
					if ep == 0 && ist.DrainedPartitions != 4*p {
						t.Fatalf("cold epoch drained %d partitions, want %d", ist.DrainedPartitions, 4*p)
					}
					if keys == nil && ist.ReusedPartitions != 4*p {
						t.Fatalf("idle epoch reused %d partitions, want %d", ist.ReusedPartitions, 4*p)
					}
				}
			})
		}
	}
}

// TestIncrementalSnapshotReusesCleanBlocks asserts the structural claims of
// the merge path on a localized delta: most partitions alias the prior
// epoch's blocks (same backing arrays), dirty ones are fresh, and the
// drained-key accounting shows the ≥2× reduction the acceptance criteria
// gate on.
func TestIncrementalSnapshotReusesCleanBlocks(t *testing.T) {
	codec, err := encoding.NewUniformCodec(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := codec.KeySpace()
	b := NewBuilder(codec, 0, Options{
		P: 4, NumPartitions: 16, Partition: PartitionRange, Refreeze: FreezeIncremental,
	})
	ctx := context.Background()
	if err := b.AddKeysCtx(ctx, refreezeKeys(40000, space, 7)); err != nil {
		t.Fatal(err)
	}
	t1, st1, err := b.SnapshotCtx(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st1.DrainedKeys != t1.Len() {
		t.Fatalf("cold snapshot drained %d keys, table has %d", st1.DrainedKeys, t1.Len())
	}

	if err := b.AddKeysCtx(ctx, localizedKeys(2000, space, 0.05, 0, 8)); err != nil {
		t.Fatal(err)
	}
	t2, st2, err := b.SnapshotCtx(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ReusedPartitions == 0 || st2.MergedPartitions == 0 {
		t.Fatalf("localized delta: reused=%d merged=%d, want both > 0 (%+v)", st2.ReusedPartitions, st2.MergedPartitions, st2)
	}
	if st2.DrainedPartitions != 0 {
		t.Fatalf("localized delta drained %d partitions", st2.DrainedPartitions)
	}
	// The acceptance gate's 1-CPU proxy: a full re-freeze re-drains every
	// key; the incremental one touches only the delta.
	if full := t2.Len(); st2.DrainedKeys+st2.MergedKeys > full/2 {
		t.Fatalf("incremental refreeze touched %d+%d keys of %d — not a 2x reduction",
			st2.DrainedKeys, st2.MergedKeys, full)
	}

	ft1, ft2 := t1.frozen.Load(), t2.frozen.Load()
	sharedBlocks := 0
	for h := range ft2.parts {
		if len(ft2.parts[h].keys) == 0 || len(ft1.parts[h].keys) == 0 {
			continue
		}
		if &ft2.parts[h].keys[0] == &ft1.parts[h].keys[0] {
			sharedBlocks++
			if ft2.parts[h].born != ft1.parts[h].born {
				t.Fatalf("aliased block %d changed born stamp", h)
			}
		} else if ft2.parts[h].born != ft2.epoch {
			t.Fatalf("re-materialized block %d born %d, epoch %d", h, ft2.parts[h].born, ft2.epoch)
		}
	}
	if sharedBlocks != st2.ReusedPartitions {
		t.Fatalf("found %d aliased blocks, stats say %d reused", sharedBlocks, st2.ReusedPartitions)
	}

	if sum := t2.changeSummary(); sum == nil {
		t.Fatal("merge-path snapshot carries no change summary")
	} else {
		if sum.FromEpoch != 1 || sum.ToEpoch != 2 {
			t.Fatalf("summary epochs %d→%d", sum.FromEpoch, sum.ToEpoch)
		}
		if sum.VarDelta == nil {
			t.Fatal("summary degraded on a pure merge path")
		}
		if sum.AddedMass != 2000 {
			t.Fatalf("AddedMass = %d, want 2000", sum.AddedMass)
		}
		// Every added observation touches every variable's marginal.
		for v, row := range sum.VarDelta {
			var mass uint64
			for _, d := range row {
				mass += d
			}
			if mass != 2000 {
				t.Fatalf("VarDelta[%d] mass = %d, want 2000", v, mass)
			}
		}
	}
}

// TestIncrementalSnapshotOverflowFallsBack drives one partition's delta log
// past its budget and asserts the snapshot degrades that partition to the
// drain path while staying bit-identical.
func TestIncrementalSnapshotOverflowFallsBack(t *testing.T) {
	// A key space large enough that a flood's per-partition distinct-key
	// mass clears the overflow budget (max(4096, 2x frozen block)).
	codec, err := encoding.NewUniformCodec(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := codec.KeySpace()
	mk := func(mode FreezeMode) *Builder {
		return NewBuilder(codec, 0, Options{
			P: 2, NumPartitions: 8, Partition: PartitionRange, Refreeze: mode,
		})
	}
	inc, full := mk(FreezeIncremental), mk(FreezeFull)
	ctx := context.Background()
	seedKeys := refreezeKeys(5000, space, 11)
	for _, b := range []*Builder{inc, full} {
		if err := b.AddKeysCtx(ctx, seedKeys); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.SnapshotCtx(ctx, 2); err != nil {
			t.Fatal(err)
		}
	}
	// A delta far larger than the table: every touched partition's log
	// blows its budget (2× frozen size), forcing drains.
	flood := refreezeKeys(300000, space, 12)
	for _, b := range []*Builder{inc, full} {
		if err := b.AddKeysCtx(ctx, flood); err != nil {
			t.Fatal(err)
		}
	}
	got, st, err := inc.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := full.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesBitIdentical(t, got, want, "overflow epoch")
	if st.DrainedPartitions == 0 {
		t.Fatalf("flood delta produced no drains: %+v", st)
	}
	if sum := got.changeSummary(); sum != nil && sum.VarDelta != nil {
		t.Fatal("overflowed epoch still claims an exact VarDelta")
	}
	// The lineage recovers: a subsequent small delta merges again.
	if err := inc.AddKeysCtx(ctx, localizedKeys(500, space, 0.05, 1, 13)); err != nil {
		t.Fatal(err)
	}
	if err := full.AddKeysCtx(ctx, localizedKeys(500, space, 0.05, 1, 13)); err != nil {
		t.Fatal(err)
	}
	got2, st2, err := inc.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	want2, _, err := full.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesBitIdentical(t, got2, want2, "post-overflow epoch")
	if st2.ReusedPartitions == 0 {
		t.Fatalf("lineage did not recover reuse after overflow: %+v", st2)
	}
}

// TestIncrementalSnapshotAfterImportTable asserts ImportTable (the recovery
// bulk path) degrades cleanly: the next snapshot drains, is bit-identical,
// and the lineage then resumes merging.
func TestIncrementalSnapshotAfterImportTable(t *testing.T) {
	codec, err := encoding.NewUniformCodec(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := codec.KeySpace()
	ctx := context.Background()

	seed := NewBuilder(codec, 0, Options{P: 2})
	if err := seed.AddKeysCtx(ctx, refreezeKeys(20000, space, 21)); err != nil {
		t.Fatal(err)
	}
	checkpoint, _ := seed.Finalize()

	mk := func(mode FreezeMode) *Builder {
		return NewBuilder(codec, 0, Options{
			P: 2, NumPartitions: 8, Partition: PartitionRange, Refreeze: mode,
		})
	}
	inc, full := mk(FreezeIncremental), mk(FreezeFull)
	for _, b := range []*Builder{inc, full} {
		// Establish a prior epoch, then import on top of it.
		if err := b.AddKeysCtx(ctx, refreezeKeys(1000, space, 22)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.SnapshotCtx(ctx, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.ImportTable(checkpoint); err != nil {
			t.Fatal(err)
		}
	}
	got, st, err := inc.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := full.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesBitIdentical(t, got, want, "post-import epoch")
	if st.MergedPartitions != 0 {
		t.Fatalf("import epoch took the merge path: %+v", st)
	}

	for _, b := range []*Builder{inc, full} {
		if err := b.AddKeysCtx(ctx, localizedKeys(800, space, 0.05, 2, 23)); err != nil {
			t.Fatal(err)
		}
	}
	got2, st2, err := inc.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	want2, _, err := full.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesBitIdentical(t, got2, want2, "post-import merge epoch")
	if st2.ReusedPartitions == 0 {
		t.Fatalf("lineage did not resume reuse after import: %+v", st2)
	}
}

// TestCrossEpochAliasRaceHammer is the -race hammer for cross-epoch block
// sharing: a retired epoch's clean shared partitions must stay readable
// through the live epoch while the retired Snapshot's own table pointer is
// severed, and dirty partitions must be fully severed (fresh arrays).
func TestCrossEpochAliasRaceHammer(t *testing.T) {
	codec, err := encoding.NewUniformCodec(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := codec.KeySpace()
	b := NewBuilder(codec, 0, Options{
		P: 4, NumPartitions: 16, Partition: PartitionRange, Refreeze: FreezeIncremental,
	})
	ctx := context.Background()
	if err := b.AddKeysCtx(ctx, refreezeKeys(30000, space, 31)); err != nil {
		t.Fatal(err)
	}
	pt1, _, err := b.SnapshotCtx(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers captured from epoch 1 before any sharing exists.
	probes := refreezeKeys(512, space, 32)
	want1 := make([]uint64, len(probes))
	for i, k := range probes {
		want1[i] = pt1.Get(k)
	}

	e1 := NewSnapshot(1, pt1, nil)
	if err := b.AddKeysCtx(ctx, localizedKeys(1500, space, 0.05, 0, 33)); err != nil {
		t.Fatal(err)
	}
	pt2, st2, err := b.SnapshotCtx(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ReusedPartitions == 0 {
		t.Fatalf("no shared blocks to hammer: %+v", st2)
	}
	e2 := NewSnapshot(2, pt2, nil)

	var wg sync.WaitGroup
	start := make(chan struct{})
	// Readers hammer the live epoch (whose clean partitions alias epoch 1's
	// blocks) while epoch 1 retires and drains concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			<-start
			for iter := 0; iter < 200; iter++ {
				if !e2.Acquire() {
					t.Error("live epoch refused Acquire")
					return
				}
				tab := e2.Table()
				for i, k := range probes {
					got := tab.Get(k)
					// Epoch 2's counts are ≥ epoch 1's everywhere (counts
					// only grow), and equal outside the delta window.
					if got < want1[i] {
						t.Errorf("probe %d shrank: %d < %d", i, got, want1[i])
						e2.Release()
						return
					}
				}
				if _, err := tab.MarginalizeCtx(context.Background(), []int{seed % 8}, 2); err != nil {
					t.Error(err)
				}
				e2.Release()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		e1.Retire()
	}()
	close(start)
	wg.Wait()

	if !e1.Released() {
		t.Fatal("retired epoch 1 still holds references")
	}
	// The severed-pointer tripwire: the retired epoch's table is gone...
	func() {
		defer func() {
			if recover() == nil {
				t.Error("retired epoch's Table() did not panic")
			}
		}()
		e1.Table()
	}()
	// ...but the live epoch still reads bit-identical answers through the
	// blocks the two epochs shared.
	if !e2.Acquire() {
		t.Fatal("live epoch drained unexpectedly")
	}
	tab := e2.Table()
	ft1, ft2 := pt1.frozen.Load(), pt2.frozen.Load()
	shared := 0
	for h := range ft2.parts {
		if len(ft2.parts[h].keys) > 0 && len(ft1.parts[h].keys) > 0 &&
			&ft2.parts[h].keys[0] == &ft1.parts[h].keys[0] {
			shared++
		}
	}
	if shared != st2.ReusedPartitions {
		t.Fatalf("%d blocks still aliased, want %d", shared, st2.ReusedPartitions)
	}
	for i, k := range probes {
		if got := tab.Get(k); got < want1[i] {
			t.Fatalf("post-retire probe %d shrank", i)
		}
	}
	e2.Release()
	e2.Retire()
}

// TestMarginalCacheEpochInvalidation asserts cache entries stamped at one
// freeze epoch miss (and are evicted) when the same cache serves the next
// epoch's table, and that results are bit-identical to uncached calls.
func TestMarginalCacheEpochInvalidation(t *testing.T) {
	codec, err := encoding.NewUniformCodec(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := codec.KeySpace()
	b := NewBuilder(codec, 0, Options{
		P: 2, NumPartitions: 8, Partition: PartitionRange, Refreeze: FreezeIncremental,
	})
	ctx := context.Background()
	if err := b.AddKeysCtx(ctx, refreezeKeys(20000, space, 41)); err != nil {
		t.Fatal(err)
	}
	pt1, _, err := b.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMarginalCache(1<<16, nil)
	varsets := [][]int{{0, 1}, {2, 3}, {1, 4}}
	m1, err := pt1.MarginalizeManyCachedCtx(ctx, varsets, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: same epoch hits.
	if _, err := pt1.MarginalizeManyCachedCtx(ctx, varsets, 2, cache); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != uint64(len(varsets)) {
		t.Fatalf("warm lookup hits = %d, want %d (%v)", st.Hits, len(varsets), st)
	}

	if err := b.AddKeysCtx(ctx, localizedKeys(1000, space, 0.08, 0, 42)); err != nil {
		t.Fatal(err)
	}
	pt2, _, err := b.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pt2.MarginalizeManyCachedCtx(ctx, varsets, 2, cache)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.EpochEvictions != uint64(len(varsets)) {
		t.Fatalf("epoch evictions = %d, want %d (%v)", st.EpochEvictions, len(varsets), st)
	}
	// Fresh results match uncached computation on the new epoch, not the
	// stale epoch-1 entries.
	ref, err := pt2.MarginalizeManyCtx(ctx, varsets, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for c := range ref[i].Counts {
			if m2[i].Counts[c] != ref[i].Counts[c] {
				t.Fatalf("varset %d cell %d: cached %d, direct %d", i, c, m2[i].Counts[c], ref[i].Counts[c])
			}
		}
		if m2[i].M == m1[i].M {
			t.Fatalf("varset %d: epoch-2 marginal has epoch-1 sample count", i)
		}
	}
}

// TestAllPairsMIDeltaMatchesFull asserts the delta-aware all-pairs MI (a)
// falls back to full when no usable summary exists, (b) recomputes dirty
// pairs to values identical to a full run at threshold 0, and (c) reuses
// clean pairs under a loose threshold with correct accounting.
func TestAllPairsMIDeltaMatchesFull(t *testing.T) {
	codec, err := encoding.NewUniformCodec(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	space := codec.KeySpace()
	b := NewBuilder(codec, 0, Options{
		P: 2, NumPartitions: 8, Partition: PartitionRange, Refreeze: FreezeIncremental,
	})
	ctx := context.Background()
	if err := b.AddKeysCtx(ctx, refreezeKeys(25000, space, 51)); err != nil {
		t.Fatal(err)
	}
	pt1, _, err := b.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (a) no prior matrix: full fallback.
	mi1, st1, err := pt1.AllPairsMIDeltaCtx(ctx, 2, MIPairDynamic, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Full {
		t.Fatalf("first epoch not a full fallback: %+v", st1)
	}
	ref1, err := pt1.AllPairsMICtx(ctx, 2, MIPairDynamic)
	if err != nil {
		t.Fatal(err)
	}
	ref1.ForEachPair(func(i, j int, v float64) {
		if mi1.At(i, j) != v {
			t.Fatalf("fallback MI(%d,%d) differs", i, j)
		}
	})

	if err := b.AddKeysCtx(ctx, localizedKeys(1200, space, 0.05, 0, 52)); err != nil {
		t.Fatal(err)
	}
	pt2, _, err := b.SnapshotCtx(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (b) threshold 0: every pair whose marginals changed at all recomputes;
	// recomputed values are bit-identical to a full run.
	mi2, st2, err := pt2.AllPairsMIDeltaCtx(ctx, 2, MIPairDynamic, mi1, pt1.FreezeEpoch(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Full {
		t.Fatalf("second epoch fell back to full: %+v", st2)
	}
	if st2.FromEpoch != pt1.FreezeEpoch() || st2.ToEpoch != pt2.FreezeEpoch() {
		t.Fatalf("delta epochs %d→%d, want %d→%d", st2.FromEpoch, st2.ToEpoch, pt1.FreezeEpoch(), pt2.FreezeEpoch())
	}
	ref2, err := pt2.AllPairsMICtx(ctx, 2, MIPairDynamic)
	if err != nil {
		t.Fatal(err)
	}
	// Generic random deltas move every variable's distribution, so at
	// threshold 0 every pair is dirty and the delta run must equal the full
	// run exactly.
	if st2.DirtyPairs+st2.ReusedPairs != ref2.NumPairs() {
		t.Fatalf("pair accounting: %d dirty + %d reused != %d", st2.DirtyPairs, st2.ReusedPairs, ref2.NumPairs())
	}
	if st2.ReusedPairs != 0 {
		t.Fatalf("threshold 0 reused %d pairs under a distribution-moving delta", st2.ReusedPairs)
	}
	ref2.ForEachPair(func(i, j int, v float64) {
		if got := mi2.At(i, j); got != v {
			t.Fatalf("threshold-0 MI(%d,%d) = %v, full = %v", i, j, got, v)
		}
	})

	// (c) loose threshold: small relative deltas leave pairs clean, whose
	// values come verbatim from the prior matrix.
	mi3, st3, err := pt2.AllPairsMIDeltaCtx(ctx, 2, MIPairDynamic, mi1, pt1.FreezeEpoch(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ReusedPairs == 0 {
		t.Fatalf("loose threshold reused nothing: %+v", st3)
	}
	reused := 0
	mi1.ForEachPair(func(i, j int, v float64) {
		if mi3.At(i, j) == v {
			reused++
		}
	})
	if reused < st3.ReusedPairs {
		t.Fatalf("only %d pairs match the prior matrix, stats claim %d reused", reused, st3.ReusedPairs)
	}

	// (d) mismatched epoch anchor: full fallback, never silent reuse.
	_, st4, err := pt2.AllPairsMIDeltaCtx(ctx, 2, MIPairDynamic, mi1, pt1.FreezeEpoch()+7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st4.Full {
		t.Fatalf("mismatched epoch did not fall back: %+v", st4)
	}
}

// TestFullModeSnapshotsStampEpochs asserts full-mode builder snapshots join
// the same monotonic epoch lineage (the serve marginal cache keys on it).
func TestFullModeSnapshotsStampEpochs(t *testing.T) {
	codec, err := encoding.NewUniformCodec(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(codec, 0, Options{P: 2})
	ctx := context.Background()
	for want := uint64(1); want <= 3; want++ {
		if err := b.AddKeysCtx(ctx, refreezeKeys(1000, codec.KeySpace(), want)); err != nil {
			t.Fatal(err)
		}
		pt, _, err := b.SnapshotCtx(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := pt.FreezeEpoch(); got != want {
			t.Fatalf("full-mode snapshot %d has epoch %d", want, got)
		}
	}
}
