package core

import (
	"strings"
	"testing"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/spsc"
)

func uniformData(t testing.TB, m, n, r int, seed uint64) *dataset.Dataset {
	t.Helper()
	d := dataset.NewUniformCard(m, n, r)
	d.UniformIndependent(seed, 4)
	return d
}

// assertStatsInvariant checks the accounting identity every successful
// build must satisfy: the foreign key mass routed in stage 1 equals the key
// mass drained in stage 2. On the legacy path both sides count individual
// pushes/pops; on the batched path ForeignKeys counts logical keys before
// delta aggregation and Stage2Pops sums the drained deltas — the identity
// is numerically unchanged.
func assertStatsInvariant(t *testing.T, st Stats) {
	t.Helper()
	if st.Stage2Pops != st.ForeignKeys {
		t.Fatalf("stats invariant violated: Stage2Pops=%d != ForeignKeys=%d", st.Stage2Pops, st.ForeignKeys)
	}
}

func TestBuildSequentialCountsEveryRow(t *testing.T) {
	d := uniformData(t, 5000, 8, 2, 1)
	pt, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumSamples() != 5000 {
		t.Fatalf("NumSamples = %d", pt.NumSamples())
	}
	if pt.Total() != 5000 {
		t.Fatalf("Total = %d", pt.Total())
	}
	// Recount with a plain map oracle.
	codec, _ := d.Codec()
	oracle := map[uint64]uint64{}
	for i := 0; i < d.NumSamples(); i++ {
		oracle[codec.Encode(d.Row(i))]++
	}
	if pt.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", pt.Len(), len(oracle))
	}
	for k, c := range oracle {
		if pt.Get(k) != c {
			t.Fatalf("Get(%d) = %d, oracle %d", k, pt.Get(k), c)
		}
	}
}

func TestBuildMatchesSequential(t *testing.T) {
	d := uniformData(t, 20000, 10, 2, 2)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		pt, st, err := Build(d, Options{P: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !pt.Equal(ref) {
			t.Fatalf("P=%d: parallel table differs from sequential", p)
		}
		if st.LocalKeys+st.ForeignKeys != 20000 {
			t.Fatalf("P=%d: local %d + foreign %d != m", p, st.LocalKeys, st.ForeignKeys)
		}
		assertStatsInvariant(t, st)
		if st.DistinctKeys != ref.Len() {
			t.Fatalf("P=%d: DistinctKeys %d != %d", p, st.DistinctKeys, ref.Len())
		}
	}
}

func TestBuildAllOptionCombinations(t *testing.T) {
	d := uniformData(t, 8000, 8, 3, 3)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []PartitionKind{PartitionModulo, PartitionRange, PartitionHash} {
		for _, q := range []spsc.Kind{spsc.KindChunked, spsc.KindRing, spsc.KindMutex} {
			for _, tk := range []TableKind{TableOpenAddressing, TableChained, TableGoMap, TableDense} {
				for _, wb := range []int{1, 0} {
					opts := Options{P: 4, Partition: part, Queue: q, Table: tk, WriteBatch: wb}
					pt, st, err := Build(d, opts)
					if err != nil {
						t.Fatalf("%v/%v/%v/wb=%d: %v", part, q, tk, wb, err)
					}
					if !pt.Equal(ref) {
						t.Fatalf("%v/%v/%v/wb=%d: table differs from sequential", part, q, tk, wb)
					}
					assertStatsInvariant(t, st)
				}
			}
		}
	}
}

// TestBuildBatchedMatchesLegacy is the bit-identity matrix of the batched
// write path: for every queue kind × table kind × P ∈ {1, 4, 8}, the
// batched build (several batch sizes, including ones that force mid-block
// and partial flushes) must equal both the legacy WriteBatch=1 build and
// the sequential oracle, with the key-mass accounting identity intact.
func TestBuildBatchedMatchesLegacy(t *testing.T) {
	d := uniformData(t, 12000, 8, 3, 9)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4, 8} {
		for _, q := range []spsc.Kind{spsc.KindChunked, spsc.KindRing, spsc.KindMutex} {
			for _, tk := range []TableKind{TableOpenAddressing, TableChained, TableGoMap, TableDense} {
				legacy, lst, err := Build(d, Options{P: p, Queue: q, Table: tk, WriteBatch: 1})
				if err != nil {
					t.Fatalf("P=%d/%v/%v legacy: %v", p, q, tk, err)
				}
				if !legacy.Equal(ref) {
					t.Fatalf("P=%d/%v/%v: legacy table differs from sequential", p, q, tk)
				}
				assertStatsInvariant(t, lst)
				for _, wb := range []int{2, 64, 4096} {
					pt, st, err := Build(d, Options{P: p, Queue: q, Table: tk, WriteBatch: wb})
					if err != nil {
						t.Fatalf("P=%d/%v/%v/wb=%d: %v", p, q, tk, wb, err)
					}
					if !pt.Equal(legacy) {
						t.Fatalf("P=%d/%v/%v/wb=%d: batched table differs from legacy", p, q, tk, wb)
					}
					assertStatsInvariant(t, st)
					if st.ForeignKeys != lst.ForeignKeys || st.LocalKeys != lst.LocalKeys {
						t.Fatalf("P=%d/%v/%v/wb=%d: key accounting differs from legacy: local %d/%d foreign %d/%d",
							p, q, tk, wb, st.LocalKeys, lst.LocalKeys, st.ForeignKeys, lst.ForeignKeys)
					}
					if p > 1 && st.ForeignKeys > 0 && st.BatchFlushes == 0 {
						t.Fatalf("P=%d/%v/%v/wb=%d: foreign keys routed but no batch flushes recorded", p, q, tk, wb)
					}
					if st.WriteBatch != wb {
						t.Fatalf("P=%d/%v/%v/wb=%d: Stats.WriteBatch = %d", p, q, tk, wb, st.WriteBatch)
					}
				}
			}
		}
	}
}

func TestBuildRespectsPartitionOwnership(t *testing.T) {
	d := uniformData(t, 10000, 6, 4, 4)
	for _, kind := range []PartitionKind{PartitionModulo, PartitionRange, PartitionHash} {
		pt, _, err := Build(d, Options{P: 4, Partition: kind})
		if err != nil {
			t.Fatal(err)
		}
		owner := kind.partitioner(4, pt.Codec().KeySpace())
		for w, part := range pt.liveParts() {
			part.Range(func(key, count uint64) bool {
				if owner(key) != w {
					t.Fatalf("%v: key %d stored in partition %d, owner %d", kind, key, w, owner(key))
				}
				return true
			})
		}
	}
}

func TestBuildRingOverflowReturnsError(t *testing.T) {
	d := uniformData(t, 10000, 6, 4, 5)
	_, _, err := Build(d, Options{P: 4, Queue: spsc.KindRing, RingCapacity: 2, NoSpill: true})
	if err == nil {
		t.Fatal("expected overflow error from undersized ring")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow error does not name the failure: %v", err)
	}
}

func TestBuildRingOverflowSpillsByDefault(t *testing.T) {
	// Without NoSpill the same undersized ring must degrade gracefully:
	// the build succeeds, the table matches the sequential oracle, and the
	// spill shows up in Stats.SpilledKeys.
	d := uniformData(t, 10000, 6, 4, 5)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	pt, st, err := Build(d, Options{P: 4, Queue: spsc.KindRing, RingCapacity: 2})
	if err != nil {
		t.Fatalf("spilling build failed: %v", err)
	}
	if !pt.Equal(ref) {
		t.Fatal("spilling build differs from sequential oracle")
	}
	if st.SpilledKeys == 0 {
		t.Fatal("undersized ring reported no spilled keys")
	}
	assertStatsInvariant(t, st)
}

func TestBuildNoSpillUnboundedQueueReportsZeroSpill(t *testing.T) {
	d := uniformData(t, 5000, 6, 4, 5)
	_, st, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpilledKeys != 0 {
		t.Fatalf("chunked queues spilled %d keys", st.SpilledKeys)
	}
}

func TestBuildKeysRingOverflowReturnsError(t *testing.T) {
	// Drive BuildKeys directly with a pre-encoded stream whose keys all
	// land on partition 1, so worker 0's queue to it must overflow a
	// 2-slot ring (ring capacity rounds up to a power of two, so capacity
	// 2 holds exactly 2 keys).
	codec, err := encoding.NewCodec([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = 1 // owner 1 under modulo partitioning with P=2
	}
	// Legacy path: every duplicate occupies its own ring slot, so 32
	// pushes into a 2-slot ring must overflow.
	_, _, err = BuildKeys(KeySourceFromSlice(keys), codec, len(keys),
		Options{P: 2, Queue: spsc.KindRing, RingCapacity: 2, NoSpill: true, WriteBatch: 1})
	if err == nil {
		t.Fatal("expected overflow error from undersized ring in BuildKeys")
	}
	if !strings.Contains(err.Error(), "ring capacity") {
		t.Fatalf("overflow error does not report the capacity: %v", err)
	}

	// Batched path: delta aggregation collapses the 32 duplicates into a
	// single (key, delta) word, so the same undersized ring now succeeds —
	// the write-combining buffer is itself a spill-avoidance mechanism.
	pt0, st0, err := BuildKeys(KeySourceFromSlice(keys), codec, len(keys),
		Options{P: 2, Queue: spsc.KindRing, RingCapacity: 2, NoSpill: true})
	if err != nil {
		t.Fatalf("batched build on undersized ring: %v", err)
	}
	assertStatsInvariant(t, st0)
	if pt0.Get(1) != uint64(len(keys)) {
		t.Fatalf("batched count for key 1 = %d, want %d", pt0.Get(1), len(keys))
	}

	// Distinct foreign keys cannot be combined, so the batched path still
	// overflows a NoSpill ring when the words themselves don't fit.
	wide, err := encoding.NewCodec([]int{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	distinct := make([]uint64, 64)
	for i := range distinct {
		distinct[i] = uint64(2*i + 1) // 64 distinct odd keys: all owner 1
	}
	_, _, err = BuildKeys(KeySourceFromSlice(distinct), wide, len(distinct),
		Options{P: 2, Queue: spsc.KindRing, RingCapacity: 2, NoSpill: true})
	if err == nil {
		t.Fatal("expected overflow error from batched build with distinct keys")
	}
	if !strings.Contains(err.Error(), "ring capacity") {
		t.Fatalf("batched overflow error does not report the capacity: %v", err)
	}

	// The same stream with the default (auto-sized) ring must succeed and
	// satisfy the accounting invariant.
	pt, st, err := BuildKeys(KeySourceFromSlice(keys), codec, len(keys),
		Options{P: 2, Queue: spsc.KindRing})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsInvariant(t, st)
	if pt.Get(1) != uint64(len(keys)) {
		t.Fatalf("count for key 1 = %d, want %d", pt.Get(1), len(keys))
	}
}

func TestBuildRingDefaultCapacityNeverOverflows(t *testing.T) {
	d := uniformData(t, 10000, 6, 4, 6)
	pt, st, err := Build(d, Options{P: 4, Queue: spsc.KindRing})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsInvariant(t, st)
	ref, _ := BuildSequential(d)
	if !pt.Equal(ref) {
		t.Fatal("ring-built table differs from sequential")
	}
}

func TestBuildDefaultsApplied(t *testing.T) {
	d := uniformData(t, 100, 4, 2, 7)
	pt, st, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.P < 1 {
		t.Fatalf("Stats.P = %d", st.P)
	}
	if pt.Partitions() != st.P {
		t.Fatalf("partitions %d != P %d", pt.Partitions(), st.P)
	}
	assertStatsInvariant(t, st)
}

func TestBuildEmptyDataset(t *testing.T) {
	d := dataset.NewUniformCard(0, 4, 2)
	pt, st, err := Build(d, Options{P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 0 || pt.Total() != 0 || pt.NumSamples() != 0 {
		t.Fatalf("empty build: len=%d total=%d m=%d", pt.Len(), pt.Total(), pt.NumSamples())
	}
	if st.LocalKeys != 0 || st.ForeignKeys != 0 {
		t.Fatalf("empty build stats: %+v", st)
	}
	assertStatsInvariant(t, st)
}

func TestBuildSingleRow(t *testing.T) {
	d := dataset.NewUniformCard(1, 3, 2)
	d.Set(0, 0, 1)
	d.Set(0, 2, 1)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	codec, _ := d.Codec()
	key := codec.Encode([]uint8{1, 0, 1})
	if pt.Get(key) != 1 || pt.Len() != 1 {
		t.Fatalf("single-row table: Get=%d Len=%d", pt.Get(key), pt.Len())
	}
}

func TestBuildMoreWorkersThanRows(t *testing.T) {
	d := uniformData(t, 3, 4, 2, 8)
	ref, _ := BuildSequential(d)
	pt, _, err := Build(d, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(ref) {
		t.Fatal("P > m build differs from sequential")
	}
}

func TestBuildKeysFromSlice(t *testing.T) {
	d := uniformData(t, 5000, 8, 2, 9)
	codec, _ := d.Codec()
	keys := d.EncodeKeys(codec, 2)
	pt, st, err := BuildKeys(KeySourceFromSlice(keys), codec, len(keys), Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertStatsInvariant(t, st)
	ref, _ := BuildSequential(d)
	if !pt.Equal(ref) {
		t.Fatal("BuildKeys over pre-encoded slice differs from sequential")
	}
}

func TestBuildRejectsOverflowingCardinalities(t *testing.T) {
	// 64 four-state variables → 2^128 key space, must be rejected.
	d := dataset.NewUniformCard(10, 64, 4)
	if _, _, err := Build(d, Options{P: 2}); err == nil {
		t.Fatal("expected key-space overflow error")
	}
	if _, err := BuildSequential(d); err == nil {
		t.Fatal("expected key-space overflow error from sequential builder")
	}
}

func TestBuildSkewedDataStillCorrect(t *testing.T) {
	// Heavy skew concentrates keys in one partition; correctness must hold.
	d := dataset.NewUniformCard(20000, 8, 3)
	d.Zipf(10, 2.5, 4)
	ref, _ := BuildSequential(d)
	pt, st, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(ref) {
		t.Fatal("skewed build differs from sequential")
	}
	if st.LocalKeys+st.ForeignKeys != 20000 {
		t.Fatalf("key accounting broken: %+v", st)
	}
	assertStatsInvariant(t, st)
}

func TestStage2DrainsAllQueues(t *testing.T) {
	// With P=2 and modulo partitioning, roughly half the keys are foreign;
	// verify foreign routing actually happened (the wait-free path is
	// exercised, not bypassed).
	d := uniformData(t, 10000, 8, 2, 10)
	_, st, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ForeignKeys == 0 {
		t.Fatal("no foreign keys routed; stage 2 untested")
	}
	assertStatsInvariant(t, st)
	frac := float64(st.ForeignKeys) / 10000
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("foreign fraction %.3f, expected ~0.5 for P=2 uniform data", frac)
	}
}

func TestBuildStageTimesPopulated(t *testing.T) {
	d := uniformData(t, 50000, 10, 2, 11)
	_, st, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Stage1Time <= 0 {
		t.Error("Stage1Time not recorded")
	}
	if st.Stage2Time <= 0 {
		t.Error("Stage2Time not recorded")
	}
	// Stage 1 does O(m·n/P) work (encode + update) vs stage 2's O(m/P)
	// pops; stage 1 should dominate on this workload.
	if st.Stage2Time > st.Stage1Time*10 {
		t.Errorf("stage2 (%v) implausibly slower than stage1 (%v)", st.Stage2Time, st.Stage1Time)
	}
}
