package core

import (
	"bytes"
	"strings"
	"testing"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/spsc"
)

func TestBuilderMatchesOneShotBuild(t *testing.T) {
	d := uniformData(t, 30000, 8, 3, 50)
	ref, err := BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	codec, _ := d.Codec()
	b := NewBuilder(codec, 0, Options{P: 4})
	// Feed in uneven blocks.
	for lo := 0; lo < d.NumSamples(); {
		hi := lo + 7000
		if hi > d.NumSamples() {
			hi = d.NumSamples()
		}
		rows := make([][]uint8, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, d.Row(i))
		}
		if err := b.AddBlock(rows); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	pt, st := b.Finalize()
	if !pt.Equal(ref) {
		t.Fatal("incremental table differs from one-shot")
	}
	if st.LocalKeys+st.ForeignKeys != 30000 {
		t.Fatalf("key accounting: %+v", st)
	}
	if st.DistinctKeys != ref.Len() {
		t.Fatalf("DistinctKeys %d != %d", st.DistinctKeys, ref.Len())
	}
}

func TestBuilderAddKeys(t *testing.T) {
	d := uniformData(t, 10000, 6, 2, 51)
	codec, _ := d.Codec()
	keys := d.EncodeKeys(codec, 2)
	ref, _ := BuildSequential(d)

	b := NewBuilder(codec, 0, Options{P: 3})
	if err := b.AddKeys(keys[:4000]); err != nil {
		t.Fatal(err)
	}
	if err := b.AddKeys(keys[4000:]); err != nil {
		t.Fatal(err)
	}
	if got := b.Samples(); got != 10000 {
		t.Fatalf("Samples = %d", got)
	}
	pt, _ := b.Finalize()
	if !pt.Equal(ref) {
		t.Fatal("AddKeys table differs")
	}
}

func TestBuilderEmptyBlocks(t *testing.T) {
	codec, _ := encoding.NewUniformCodec(4, 2)
	b := NewBuilder(codec, 0, Options{P: 2})
	if err := b.AddKeys(nil); err != nil {
		t.Fatal(err)
	}
	pt, st := b.Finalize()
	if pt.Len() != 0 || st.LocalKeys != 0 {
		t.Fatalf("empty builder produced %d keys", pt.Len())
	}
}

func TestBuilderUseAfterFinalize(t *testing.T) {
	codec, _ := encoding.NewUniformCodec(4, 2)
	b := NewBuilder(codec, 0, Options{P: 2})
	b.Finalize()
	if err := b.AddKeys([]uint64{1}); err == nil {
		t.Fatal("AddKeys after Finalize accepted")
	}
}

func TestBuilderRingOverflowSurfaces(t *testing.T) {
	codec, _ := encoding.NewUniformCodec(8, 2)
	b := NewBuilder(codec, 4, Options{P: 2, Queue: spsc.KindRing, RingCapacity: 2, NoSpill: true})
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i % 256)
	}
	err := b.AddKeys(keys)
	if err == nil {
		t.Fatal("expected ring overflow error")
	}
	// A failed block leaves the builder mid-protocol with no consistent
	// state to continue from; it must be poisoned, not silently reusable.
	if b.Err() == nil {
		t.Fatal("builder not poisoned after failed block")
	}
	if err2 := b.AddKeys([]uint64{1}); err2 == nil {
		t.Fatal("poisoned builder accepted another block")
	}
}

func TestBuilderRingOverflowSpillsByDefault(t *testing.T) {
	codec, _ := encoding.NewUniformCodec(8, 2)
	b := NewBuilder(codec, 4, Options{P: 2, Queue: spsc.KindRing, RingCapacity: 2})
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = uint64(i % 256)
	}
	if err := b.AddKeys(keys); err != nil {
		t.Fatalf("spilling builder failed: %v", err)
	}
	_, st := b.Finalize()
	if st.SpilledKeys == 0 {
		t.Fatal("undersized ring reported no spilled keys")
	}
	if got := st.LocalKeys + st.Stage2Pops; got != uint64(len(keys)) {
		t.Fatalf("counted %d keys, want %d", got, len(keys))
	}
}

func TestBuilderBlocksLargerThanHint(t *testing.T) {
	// Chunked queues have no capacity limit, so blocks larger than the
	// hint must work.
	codec, _ := encoding.NewUniformCodec(10, 2)
	d := uniformData(t, 50000, 10, 2, 52)
	ref, _ := BuildSequential(d)
	b := NewBuilder(codec, 16, Options{P: 4}) // tiny hint
	if err := b.AddKeys(d.EncodeKeys(codec, 2)); err != nil {
		t.Fatal(err)
	}
	pt, _ := b.Finalize()
	if !pt.Equal(ref) {
		t.Fatal("table differs")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d := uniformData(t, 20000, 8, 3, 53)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := pt.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	for _, parts := range []int{0, 1, 4} {
		back, err := ReadTable(bytes.NewReader(buf.Bytes()), parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !back.Equal(pt) {
			t.Fatalf("parts=%d: round trip differs", parts)
		}
		if back.NumSamples() != pt.NumSamples() {
			t.Fatalf("parts=%d: m %d != %d", parts, back.NumSamples(), pt.NumSamples())
		}
		// Mixed-cardinality metadata must round trip too.
		if back.Codec().KeySpace() != pt.Codec().KeySpace() {
			t.Fatal("codec mismatch")
		}
	}
}

func TestSerializeDeterministic(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 54)
	a, _, _ := Build(d, Options{P: 2})
	b, _ := BuildSequential(d)
	var bufA, bufB bytes.Buffer
	if _, err := a.WriteTo(&bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("serialization depends on partitioning")
	}
}

func TestSerializeMixedCardinalities(t *testing.T) {
	d := dataset.New(3000, []int{2, 5, 3, 7})
	d.UniformIndependent(55, 2)
	pt, _, err := Build(d, Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(pt) {
		t.Fatal("mixed-cardinality round trip differs")
	}
	for j, want := range []int{2, 5, 3, 7} {
		if back.Codec().Cardinality(j) != want {
			t.Errorf("cardinality %d = %d, want %d", j, back.Codec().Cardinality(j), want)
		}
	}
}

func TestReadTableRejectsCorruptInput(t *testing.T) {
	d := uniformData(t, 1000, 5, 2, 56)
	pt, _, _ := Build(d, Options{P: 2})
	var buf bytes.Buffer
	if _, err := pt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXXX\n"), good[6:]...),
		"truncated":    good[:len(good)/2],
		"short header": good[:8],
	}
	for name, data := range cases {
		if _, err := ReadTable(bytes.NewReader(data), 1); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	// Wrong count trailer: flip the last byte (a count varint) where
	// doing so changes the total.
	mutated := append([]byte(nil), good...)
	mutated[len(mutated)-1] ^= 0x01
	if _, err := ReadTable(bytes.NewReader(mutated), 1); err == nil {
		t.Error("count-sum mismatch accepted")
	}
}

func TestReadTableRejectsAbsurdHeader(t *testing.T) {
	// Magic + huge variable count.
	var buf bytes.Buffer
	buf.Write(tableMagic)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // big varint
	if _, err := ReadTable(&buf, 1); err == nil {
		t.Error("absurd variable count accepted")
	}
	if _, err := ReadTable(strings.NewReader("WFBN1\n\x00"), 1); err == nil {
		t.Error("zero variables accepted")
	}
}

func TestBuilderImportTable(t *testing.T) {
	d := uniformData(t, 20000, 7, 3, 52)
	codec, _ := d.Codec()
	keys := d.EncodeKeys(codec, 2)
	ref, _ := BuildSequential(d)

	// Build the first half, serialize it (the checkpoint path), read it
	// back, and import into a fresh builder that then counts the rest.
	half := NewBuilder(codec, 0, Options{P: 4})
	if err := half.AddKeys(keys[:12000]); err != nil {
		t.Fatal(err)
	}
	halfTable, _ := half.Finalize()
	var buf bytes.Buffer
	if _, err := halfTable.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder(codec, 0, Options{P: 4})
	if err := b.ImportTable(loaded); err != nil {
		t.Fatal(err)
	}
	if got := b.Samples(); got != 12000 {
		t.Fatalf("Samples after import = %d, want 12000", got)
	}
	if err := b.AddKeys(keys[12000:]); err != nil {
		t.Fatal(err)
	}
	pt, _ := b.Finalize()
	if !pt.Equal(ref) {
		t.Fatal("import + tail build differs from one-shot build")
	}
	if pt.NumSamples() != 20000 {
		t.Fatalf("NumSamples = %d, want 20000", pt.NumSamples())
	}
}

// TestBuilderImportTableTinySizes sweeps imports whose per-partition key
// counts exercise the edges of the bit-reversed insert order (empty, one
// key, odd counts that don't fill the power-of-two visit sequence).
func TestBuilderImportTableTinySizes(t *testing.T) {
	codec, _ := encoding.NewUniformCodec(4, 3)
	for _, n := range []int{0, 1, 2, 3, 5, 17, 31} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i * 7 % 81)
		}
		src := NewBuilder(codec, 0, Options{P: 1})
		if err := src.AddKeys(keys); err != nil {
			t.Fatal(err)
		}
		tbl, _ := src.Finalize()
		for _, p := range []int{1, 3, 4} {
			b := NewBuilder(codec, 0, Options{P: p})
			if err := b.ImportTable(tbl); err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			pt, _ := b.Finalize()
			if !pt.Equal(tbl) {
				t.Fatalf("n=%d p=%d: imported table differs from source", n, p)
			}
		}
	}
}

func TestBuilderImportTableCodecMismatch(t *testing.T) {
	codecA, _ := encoding.NewUniformCodec(4, 2)
	codecB, _ := encoding.NewUniformCodec(4, 3)
	codecC, _ := encoding.NewUniformCodec(5, 2)
	src := NewBuilder(codecB, 0, Options{P: 1})
	tbl, _ := src.Finalize()
	b := NewBuilder(codecA, 0, Options{P: 2})
	if err := b.ImportTable(tbl); err == nil {
		t.Fatal("import accepted a table with mismatched cardinalities")
	}
	srcC := NewBuilder(codecC, 0, Options{P: 1})
	tblC, _ := srcC.Finalize()
	if err := b.ImportTable(tblC); err == nil {
		t.Fatal("import accepted a table with a different variable count")
	}
	if err := b.AddKeys([]uint64{1, 2, 3}); err != nil {
		t.Fatalf("failed import must not poison the builder: %v", err)
	}
	b.Finalize()
	if err := b.ImportTable(tblC); err == nil {
		t.Fatal("import after Finalize succeeded")
	}
}
