package core

import (
	"testing"

	"waitfreebn/internal/dataset"
)

func TestMarginalizeManyMatchesSingles(t *testing.T) {
	d := uniformData(t, 10000, 7, 3, 80)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	varsets := [][]int{{0}, {1, 3}, {6, 2, 4}, {5}, {0, 6}}
	many := pt.MarginalizeMany(varsets, 4)
	if len(many) != len(varsets) {
		t.Fatalf("got %d marginals", len(many))
	}
	for k, vars := range varsets {
		single := pt.Marginalize(vars, 4)
		if len(many[k].Counts) != len(single.Counts) {
			t.Fatalf("set %d: cell counts differ", k)
		}
		for c := range single.Counts {
			if many[k].Counts[c] != single.Counts[c] {
				t.Fatalf("set %d cell %d: %d != %d", k, c, many[k].Counts[c], single.Counts[c])
			}
		}
		if many[k].M != single.M {
			t.Fatalf("set %d: M %d != %d", k, many[k].M, single.M)
		}
	}
}

func TestMarginalizeManyEmpty(t *testing.T) {
	d := uniformData(t, 100, 3, 2, 81)
	pt, _, _ := Build(d, Options{P: 2})
	if got := pt.MarginalizeMany(nil, 2); got != nil {
		t.Fatalf("expected nil for empty request, got %v", got)
	}
}

func TestMarginalizeManyIndependentOfWorkers(t *testing.T) {
	d := uniformData(t, 5000, 6, 2, 82)
	pt, _, err := Build(d, Options{P: 8})
	if err != nil {
		t.Fatal(err)
	}
	varsets := [][]int{{0, 1}, {2, 3}, {4, 5}}
	ref := pt.MarginalizeMany(varsets, 1)
	for _, p := range []int{2, 4, 16} {
		got := pt.MarginalizeMany(varsets, p)
		for k := range varsets {
			for c := range ref[k].Counts {
				if got[k].Counts[c] != ref[k].Counts[c] {
					t.Fatalf("p=%d set %d cell %d differs", p, k, c)
				}
			}
		}
	}
}

func TestMarginalizeManyDuplicateSubsets(t *testing.T) {
	d := uniformData(t, 3000, 4, 2, 83)
	pt, _, _ := Build(d, Options{P: 2})
	many := pt.MarginalizeMany([][]int{{1, 2}, {1, 2}}, 2)
	for c := range many[0].Counts {
		if many[0].Counts[c] != many[1].Counts[c] {
			t.Fatal("duplicate subsets produced different marginals")
		}
	}
}

func BenchmarkMarginalizeManyVsSingles(b *testing.B) {
	d := dataNoT(200000, 12, 2)
	pt, _, err := Build(d, Options{P: 4})
	if err != nil {
		b.Fatal(err)
	}
	varsets := make([][]int, 0, 11)
	for j := 1; j < 12; j++ {
		varsets = append(varsets, []int{0, j})
	}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pt.MarginalizeMany(varsets, 4)
		}
	})
	b.Run("singles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, vs := range varsets {
				pt.Marginalize(vs, 4)
			}
		}
	})
}

// dataNoT builds a dataset without a testing.TB, for benchmarks.
func dataNoT(m, n, r int) *dataset.Dataset {
	d := dataset.NewUniformCard(m, n, r)
	d.UniformIndependent(1, 4)
	return d
}
