package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"waitfreebn/internal/sched"
)

// scanBlockSize is the batch size of the block-based scan kernels: entries
// are delivered to consumers in dense runs of up to this many (key, count)
// pairs. 1024 entries = two 8 KiB streams, small enough that a worker's
// batch plus its accumulation tile stay cache-resident, large enough to
// amortize kernel dispatch and cancellation checks to noise.
const scanBlockSize = 1024

// frozenScanBlockSize is the delivery granularity of the sorted snapshot
// scan. Sorted kernels classify each variable per block by its stride
// quotients (see allPairsFused), and a finer block spans a narrower key
// range, pinning more high-stride variables constant; 256 entries keeps the
// classification overhead near one operation per entry while roughly one
// more variable per halving collapses out of the pair loop.
const frozenScanBlockSize = 256

// frozenTable is an immutable columnar snapshot of the partition hashtables:
// all entries in dense structure-of-arrays form, partition-major, sorted by
// key within each partition. Scans become sequential streaming reads that
// can be split by index range into even chunks, eliminating both per-entry
// closure dispatch through hashtable Range and partition-count limits on
// read parallelism. Published via an atomic pointer, it is safe for any
// number of concurrent readers.
type frozenTable struct {
	keys    []uint64 // all keys, partition-major, sorted within a partition
	counts  []uint64 // counts[i] is the count recorded for keys[i]
	partOff []int    // partition p occupies keys[partOff[p]:partOff[p+1]]
}

// get returns the count for key, binary-searching each partition's sorted
// segment: O(P log n/P) instead of the live path's O(P) probe sequences.
func (ft *frozenTable) get(key uint64) uint64 {
	for p := 0; p+1 < len(ft.partOff); p++ {
		seg := ft.keys[ft.partOff[p]:ft.partOff[p+1]]
		i := sort.Search(len(seg), func(i int) bool { return seg[i] >= key })
		if i < len(seg) && seg[i] == key {
			return ft.counts[ft.partOff[p]+i]
		}
	}
	return 0
}

// scan streams the snapshot to block(w, keys, counts, true) with p workers,
// each owning an even index range regardless of how skewed the original
// partitions were. Blocks never cross a partition boundary: keys are sorted
// within a partition, and delivering only sorted blocks is what lets sorted
// kernels (allPairsFused) collapse constant-digit work. Workers observe ctx
// once per block.
func (ft *frozenTable) scan(ctx context.Context, p int, block func(w int, keys, counts []uint64, sorted bool)) error {
	spans := sched.BlockPartition(len(ft.keys), p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		done := ctx.Done()
		var cause error
		emit := func(c sched.Span) bool {
			select {
			case <-done:
				cause = context.Cause(ctx)
				return false
			default:
			}
			block(w, ft.keys[c.Lo:c.Hi], ft.counts[c.Lo:c.Hi], true)
			return true
		}
		s := spans[w]
		for pi := 0; pi+1 < len(ft.partOff) && cause == nil; pi++ {
			seg := sched.Span{Lo: max(s.Lo, ft.partOff[pi]), Hi: min(s.Hi, ft.partOff[pi+1])}
			if seg.Lo < seg.Hi {
				seg.Chunks(frozenScanBlockSize, emit)
			}
		}
		return cause
	})
}

// kvSlice co-sorts a partition's key and count columns by key.
type kvSlice struct{ keys, counts []uint64 }

func (s kvSlice) Len() int           { return len(s.keys) }
func (s kvSlice) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s kvSlice) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.counts[i], s.counts[j] = s.counts[j], s.counts[i]
}

// FreezeStats summarizes one Freeze operation.
type FreezeStats struct {
	Entries    int           // distinct keys captured in the snapshot
	Partitions int           // partitions drained
	Duration   time.Duration // wall clock of the freeze (0 if already frozen)
}

// Frozen reports whether the table currently carries a frozen snapshot.
func (t *PotentialTable) Frozen() bool { return t.frozen.Load() != nil }

// Freeze captures a frozen columnar snapshot of the table using p workers
// (p <= 0 selects GOMAXPROCS) and routes all subsequent scans through it.
// See FreezeCtx.
//
// Deprecated: use FreezeCtx.
func (t *PotentialTable) Freeze(p int) FreezeStats {
	st, err := t.FreezeCtx(context.Background(), p)
	mustScan(err)
	return st
}

// FreezeCtx drains every partition's hashtable into the dense sorted
// columnar layout and publishes it atomically. Freezing is a read-side
// operation: it must only run once construction has completed (after the
// build barrier, when each partition has a quiescent single writer), which
// is exactly the wait-free contract's hand-off point. The snapshot is
// invalidated by Rebalance. Freezing an already-frozen table is a no-op
// that returns the existing snapshot's stats.
func (t *PotentialTable) FreezeCtx(ctx context.Context, p int) (FreezeStats, error) {
	// structMu serializes the freeze against Rebalance: the partitions
	// captured below and the snapshot installed at the end must belong to
	// the same structural generation (see PotentialTable.structMu).
	t.structMu.Lock()
	defer t.structMu.Unlock()
	if ft := t.frozen.Load(); ft != nil {
		return FreezeStats{Entries: len(ft.keys), Partitions: len(ft.partOff) - 1}, nil
	}
	start := time.Now()
	parts := t.liveParts()
	if p <= 0 {
		p = sched.DefaultP()
	}
	if p > len(parts) {
		p = len(parts)
	}

	partOff := make([]int, len(parts)+1)
	for i, part := range parts {
		partOff[i+1] = partOff[i] + part.Len()
	}
	total := partOff[len(parts)]
	ft := &frozenTable{
		keys:    make([]uint64, total),
		counts:  make([]uint64, total),
		partOff: partOff,
	}

	assign := sched.CyclicAssign(len(parts), p)
	err := sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		done := ctx.Done()
		for _, pi := range assign[w] {
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
			lo, hi := partOff[pi], partOff[pi+1]
			keys, counts := ft.keys[lo:hi], ft.counts[lo:hi]
			n := 0
			parts[pi].Range(func(key, count uint64) bool {
				keys[n], counts[n] = key, count
				n++
				return true
			})
			if n != len(keys) {
				return fmt.Errorf("core: partition %d yielded %d entries, expected %d (table mutated during Freeze?)", pi, n, len(keys))
			}
			sort.Sort(kvSlice{keys: keys, counts: counts})
		}
		return nil
	})
	if err != nil {
		return FreezeStats{}, err
	}

	// First snapshot wins if two goroutines race to freeze; both are
	// equivalent captures of the same quiescent partitions.
	t.frozen.CompareAndSwap(nil, ft)
	st := FreezeStats{Entries: total, Partitions: len(parts), Duration: time.Since(start)}
	if r := t.obs; r != nil {
		r.Help(metricFreezeSeconds, "wall clock of PotentialTable.Freeze")
		r.Histogram(metricFreezeSeconds).Observe(st.Duration)
		r.Help(metricFrozenEntries, "entries captured in the current frozen snapshot")
		r.Gauge(metricFrozenEntries).Set(float64(st.Entries))
	}
	return st, nil
}

// scanBlocksCtx is the shared read-side loop of Algorithm 3 and its fused
// variants, in block form: p workers stream disjoint slices of the table,
// delivering entries to block(w, keys, counts, sorted) in dense batches of
// at most scanBlockSize. On a frozen table the batches are direct sub-slices
// of the columnar snapshot split by index range, each sorted ascending
// (sorted = true); on a live table each worker buffers its partitions' Range
// output — hash order — into a scratch block first (sorted = false), which
// amortizes the per-entry closure dispatch either way. Workers observe ctx
// once per block, and a panicking consumer surfaces as a *sched.WorkerError
// with all workers joined.
func (t *PotentialTable) scanBlocksCtx(ctx context.Context, p int, block func(w int, keys, counts []uint64, sorted bool)) error {
	ft := t.frozen.Load()
	r := t.obs
	var start time.Time
	if r != nil {
		start = time.Now()
	}
	var err error
	var entries int
	if ft != nil {
		err = ft.scan(ctx, p, block)
		entries = len(ft.keys)
	} else {
		err = t.scanLiveBlocks(ctx, p, block)
		entries = t.Len()
	}
	if r != nil && err == nil {
		path := "live"
		if ft != nil {
			path = "frozen"
		}
		r.Help(metricScanEntries, "table entries streamed by read-side scans, by path")
		r.Counter(metricScanEntries, "path", path).Add(uint64(entries))
		r.Help(metricScanSeconds, "wall clock of read-side scans, by path")
		r.Histogram(metricScanSeconds, "path", path).Observe(time.Since(start))
	}
	return err
}

// scanLiveBlocks is the live-table arm of scanBlocksCtx: partitions are
// assigned to workers cyclically and each worker's Range output is gathered
// into per-worker scratch blocks before dispatch.
func (t *PotentialTable) scanLiveBlocks(ctx context.Context, p int, block func(w int, keys, counts []uint64, sorted bool)) error {
	// Capture one partition generation: the assignment and the walk below
	// must agree on the partition count even if a Rebalance lands mid-scan.
	parts := t.liveParts()
	assign := sched.CyclicAssign(len(parts), p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		done := ctx.Done()
		var cause error
		keys := make([]uint64, 0, scanBlockSize)
		counts := make([]uint64, 0, scanBlockSize)
		for _, part := range assign[w] {
			parts[part].Range(func(key, count uint64) bool {
				keys = append(keys, key)
				counts = append(counts, count)
				if len(keys) == scanBlockSize {
					block(w, keys, counts, false)
					keys, counts = keys[:0], counts[:0]
					select {
					case <-done:
						cause = context.Cause(ctx)
						return false
					default:
					}
				}
				return true
			})
			if cause != nil {
				return cause
			}
		}
		if len(keys) > 0 {
			block(w, keys, counts, false)
		}
		return nil
	})
}
