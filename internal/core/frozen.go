package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/sched"
)

// scanBlockSize is the batch size of the block-based scan kernels: entries
// are delivered to consumers in dense runs of up to this many (key, count)
// pairs. 1024 entries = two 8 KiB streams, small enough that a worker's
// batch plus its accumulation tile stay cache-resident, large enough to
// amortize kernel dispatch and cancellation checks to noise.
const scanBlockSize = 1024

// frozenScanBlockSize is the delivery granularity of the sorted snapshot
// scan. Sorted kernels classify each variable per block by its stride
// quotients (see allPairsFused), and a finer block spans a narrower key
// range, pinning more high-stride variables constant; 256 entries keeps the
// classification overhead near one operation per entry while roughly one
// more variable per halving collapses out of the pair loop.
const frozenScanBlockSize = 256

// frozenPart is one partition's dense sorted columnar block: parallel
// key/count columns sorted by key. Blocks are the unit of cross-epoch
// sharing — an incremental re-freeze (Builder.SnapshotCtx under
// FreezeIncremental) aliases the blocks of partitions untouched since the
// previous snapshot verbatim into the new epoch's frozenTable, so a clean
// partition's memory is owned jointly by every epoch that references it and
// is reclaimed only when the last of them drains. Blocks are immutable
// after construction, which is what makes the aliasing safe.
type frozenPart struct {
	keys   []uint64 // partition's keys, sorted ascending
	counts []uint64 // counts[i] is the count recorded for keys[i]
	// born is the freeze epoch that materialized this block (0 when the
	// snapshot was taken outside a Builder lineage). A block aliased from a
	// prior epoch keeps its original stamp, so born < the table's epoch
	// identifies reused blocks.
	born uint64
}

// frozenTable is an immutable columnar snapshot of the partition hashtables:
// all entries in dense structure-of-arrays form, one sorted block per
// partition. Scans become sequential streaming reads that can be split by
// global index range into even chunks, eliminating both per-entry closure
// dispatch through hashtable Range and partition-count limits on read
// parallelism. Published via an atomic pointer, it is safe for any number
// of concurrent readers.
type frozenTable struct {
	parts []frozenPart
	off   []int // partition p holds global entry ranks [off[p], off[p+1])
	// epoch is the Builder snapshot ordinal this table was frozen at
	// (monotonic per builder lineage; 0 for tables frozen via FreezeCtx
	// directly). The epoch stamps MarginalCache entries and anchors the
	// delta-aware all-pairs MI reuse.
	epoch uint64
	// varMarg[v][s] is the per-variable marginal count of state s —
	// maintained across incremental re-freezes by adding the delta summary,
	// so each epoch knows its single-variable marginals without a scan.
	// nil outside an incremental Builder lineage.
	varMarg [][]uint64
	// summary describes what changed relative to the previous epoch
	// (nil on a full freeze or when the delta capture overflowed).
	summary *ChangeSummary
}

// ChangeSummary records what one incremental re-freeze changed relative to
// the epoch it was derived from: which partitions were touched and how much
// marginal mass each variable gained. The delta-aware all-pairs MI and the
// epoch-versioned cache invalidation consume it.
type ChangeSummary struct {
	FromEpoch uint64
	ToEpoch   uint64
	// DirtyParts[h] reports whether partition h was re-materialized (merged
	// or drained) rather than aliased from the previous epoch.
	DirtyParts []bool
	// VarDelta[v][s] is how many observations of variable v in state s were
	// added between the two epochs — exact, derived from the merged delta
	// runs. nil when the delta log overflowed (the summary is then only
	// structural: every pair must be treated as dirty).
	VarDelta [][]uint64
	// AddedMass is the total count mass added (sum over any VarDelta row).
	AddedMass uint64
}

// numEntries returns the total entry count across all partitions.
func (ft *frozenTable) numEntries() int { return ft.off[len(ft.off)-1] }

// get returns the count for key, binary-searching each partition's sorted
// block: O(P log n/P) instead of the live path's O(P) probe sequences.
func (ft *frozenTable) get(key uint64) uint64 {
	for p := range ft.parts {
		seg := ft.parts[p].keys
		i := sort.Search(len(seg), func(i int) bool { return seg[i] >= key })
		if i < len(seg) && seg[i] == key {
			return ft.parts[p].counts[i]
		}
	}
	return 0
}

// scan streams the snapshot to block(w, keys, counts, true) with p workers,
// each owning an even global index range regardless of how skewed the
// original partitions were. Blocks never cross a partition boundary: keys
// are sorted within a partition, and delivering only sorted blocks is what
// lets sorted kernels (allPairsFused) collapse constant-digit work. Workers
// observe ctx once per block.
func (ft *frozenTable) scan(ctx context.Context, p int, block func(w int, keys, counts []uint64, sorted bool)) error {
	spans := sched.BlockPartition(ft.numEntries(), p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		done := ctx.Done()
		var cause error
		cur := 0 // partition the emit closure slices from
		emit := func(c sched.Span) bool {
			select {
			case <-done:
				cause = context.Cause(ctx)
				return false
			default:
			}
			lo, hi := c.Lo-ft.off[cur], c.Hi-ft.off[cur]
			block(w, ft.parts[cur].keys[lo:hi], ft.parts[cur].counts[lo:hi], true)
			return true
		}
		s := spans[w]
		for pi := range ft.parts {
			if cause != nil {
				break
			}
			seg := sched.Span{Lo: max(s.Lo, ft.off[pi]), Hi: min(s.Hi, ft.off[pi+1])}
			if seg.Lo < seg.Hi {
				cur = pi
				seg.Chunks(frozenScanBlockSize, emit)
			}
		}
		return cause
	})
}

// kvSlice co-sorts a partition's key and count columns by key.
type kvSlice struct{ keys, counts []uint64 }

func (s kvSlice) Len() int           { return len(s.keys) }
func (s kvSlice) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s kvSlice) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.counts[i], s.counts[j] = s.counts[j], s.counts[i]
}

// FreezeStats summarizes one Freeze (or incremental re-freeze) operation.
type FreezeStats struct {
	Entries    int           // distinct keys captured in the snapshot
	Partitions int           // partitions captured
	Duration   time.Duration // wall clock of the freeze (0 if already frozen)

	// Incremental re-freeze accounting. A full freeze reports every
	// partition under DrainedPartitions/DrainedKeys; an incremental one
	// splits the partitions across the three paths.
	Incremental       bool // produced by the incremental merge path
	ReusedPartitions  int  // clean partitions aliased verbatim from the prior epoch
	MergedPartitions  int  // dirty partitions produced by sorted-run merge
	DrainedPartitions int  // partitions drained+sorted from the hashtables
	MergedRuns        int  // delta runs consumed by the merges
	DrainedKeys       int  // keys that went through the drain+sort path
	MergedKeys        int  // delta keys that went through the merge kernel
	// DirtyPairs is the number of variable pairs whose MI could have moved
	// given the change summary (every pair touching a variable with any
	// marginal delta; all pairs when the summary is degraded or absent).
	DirtyPairs int
}

// Frozen reports whether the table currently carries a frozen snapshot.
func (t *PotentialTable) Frozen() bool { return t.frozen.Load() != nil }

// FreezeEpoch returns the snapshot's freeze-epoch stamp: the Builder
// snapshot ordinal for tables produced by Builder.SnapshotCtx, 0 when the
// table is not frozen or was frozen outside a builder lineage. The stamp is
// what keys epoch-versioned consumers (MarginalCache entries, delta-aware
// all-pairs MI) to exactly one epoch.
func (t *PotentialTable) FreezeEpoch() uint64 {
	if ft := t.frozen.Load(); ft != nil {
		return ft.epoch
	}
	return 0
}

// changeSummary returns the snapshot's change summary relative to its
// predecessor epoch, or nil.
func (t *PotentialTable) changeSummary() *ChangeSummary {
	if ft := t.frozen.Load(); ft != nil {
		return ft.summary
	}
	return nil
}

// Freeze captures a frozen columnar snapshot of the table using p workers
// (p <= 0 selects GOMAXPROCS) and routes all subsequent scans through it.
// See FreezeCtx.
//
// Deprecated: use FreezeCtx.
func (t *PotentialTable) Freeze(p int) FreezeStats {
	st, err := t.FreezeCtx(context.Background(), p)
	mustScan(err)
	return st
}

// FreezeCtx drains every partition's hashtable into the dense sorted
// columnar layout and publishes it atomically. Freezing is a read-side
// operation: it must only run once construction has completed (after the
// build barrier, when each partition has a quiescent single writer), which
// is exactly the wait-free contract's hand-off point. The snapshot is
// invalidated by Rebalance. Freezing an already-frozen table is a no-op
// that returns the existing snapshot's stats.
func (t *PotentialTable) FreezeCtx(ctx context.Context, p int) (FreezeStats, error) {
	// structMu serializes the freeze against Rebalance: the partitions
	// captured below and the snapshot installed at the end must belong to
	// the same structural generation (see PotentialTable.structMu).
	t.structMu.Lock()
	defer t.structMu.Unlock()
	if ft := t.frozen.Load(); ft != nil {
		return FreezeStats{Entries: ft.numEntries(), Partitions: len(ft.parts)}, nil
	}
	start := time.Now()
	parts := t.liveParts()
	if p <= 0 {
		p = sched.DefaultP()
	}
	if p > len(parts) {
		p = len(parts)
	}

	ft, err := freezeParts(ctx, parts, p, 0)
	if err != nil {
		return FreezeStats{}, err
	}

	// First snapshot wins if two goroutines race to freeze; both are
	// equivalent captures of the same quiescent partitions.
	t.frozen.CompareAndSwap(nil, ft)
	total := ft.numEntries()
	st := FreezeStats{
		Entries: total, Partitions: len(parts), Duration: time.Since(start),
		DrainedPartitions: len(parts), DrainedKeys: total,
	}
	if r := t.obs; r != nil {
		r.Help(metricFreezeSeconds, "wall clock of PotentialTable.Freeze")
		r.Histogram(metricFreezeSeconds).Observe(st.Duration)
		r.Help(metricFrozenEntries, "entries captured in the current frozen snapshot")
		r.Gauge(metricFrozenEntries).Set(float64(st.Entries))
	}
	return st, nil
}

// freezeParts drains every partition into a fresh frozenTable with p
// workers, stamping each block born=epoch. All blocks share one flat
// backing allocation (capacity-clamped sub-slices), preserving the dense
// streaming layout of a cold freeze.
func freezeParts(ctx context.Context, parts []hashtable.Counter, p int, epoch uint64) (*frozenTable, error) {
	off := make([]int, len(parts)+1)
	for i, part := range parts {
		off[i+1] = off[i] + part.Len()
	}
	total := off[len(parts)]
	flatKeys := make([]uint64, total)
	flatCounts := make([]uint64, total)
	ft := &frozenTable{parts: make([]frozenPart, len(parts)), off: off, epoch: epoch}
	for i := range parts {
		lo, hi := off[i], off[i+1]
		ft.parts[i] = frozenPart{
			keys:   flatKeys[lo:hi:hi],
			counts: flatCounts[lo:hi:hi],
			born:   epoch,
		}
	}

	assign := sched.CyclicAssign(len(parts), p)
	err := sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		done := ctx.Done()
		for _, pi := range assign[w] {
			select {
			case <-done:
				return context.Cause(ctx)
			default:
			}
			if err := drainSorted(parts[pi], ft.parts[pi].keys, ft.parts[pi].counts, pi); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ft, nil
}

// drainSorted drains one quiescent partition into the keys/counts columns
// (which must have length part.Len()) and co-sorts them by key — the cold
// freeze path for one partition.
func drainSorted(part hashtable.Counter, keys, counts []uint64, pi int) error {
	n := 0
	part.Range(func(key, count uint64) bool {
		keys[n], counts[n] = key, count
		n++
		return true
	})
	if n != len(keys) {
		return fmt.Errorf("core: partition %d yielded %d entries, expected %d (table mutated during Freeze?)", pi, n, len(keys))
	}
	sort.Sort(kvSlice{keys: keys, counts: counts})
	return nil
}

// scanBlocksCtx is the shared read-side loop of Algorithm 3 and its fused
// variants, in block form: p workers stream disjoint slices of the table,
// delivering entries to block(w, keys, counts, sorted) in dense batches of
// at most scanBlockSize. On a frozen table the batches are direct sub-slices
// of the columnar snapshot split by index range, each sorted ascending
// (sorted = true); on a live table each worker buffers its partitions' Range
// output — hash order — into a scratch block first (sorted = false), which
// amortizes the per-entry closure dispatch either way. Workers observe ctx
// once per block, and a panicking consumer surfaces as a *sched.WorkerError
// with all workers joined.
func (t *PotentialTable) scanBlocksCtx(ctx context.Context, p int, block func(w int, keys, counts []uint64, sorted bool)) error {
	ft := t.frozen.Load()
	r := t.obs
	var start time.Time
	if r != nil {
		start = time.Now()
	}
	var err error
	var entries int
	if ft != nil {
		err = ft.scan(ctx, p, block)
		entries = ft.numEntries()
	} else {
		err = t.scanLiveBlocks(ctx, p, block)
		entries = t.Len()
	}
	if r != nil && err == nil {
		path := "live"
		if ft != nil {
			path = "frozen"
		}
		r.Help(metricScanEntries, "table entries streamed by read-side scans, by path")
		r.Counter(metricScanEntries, "path", path).Add(uint64(entries))
		r.Help(metricScanSeconds, "wall clock of read-side scans, by path")
		r.Histogram(metricScanSeconds, "path", path).Observe(time.Since(start))
		r.Help(metricScanPasses, "completed read-side table scan passes, by path")
		r.Counter(metricScanPasses, "path", path).Inc()
	}
	return err
}

// liveScanScratch recycles the per-worker (keys, counts) gather blocks of
// scanLiveBlocks across scans, so a live-path query costs no per-scan
// scratch allocation in steady state.
var liveScanScratch = sync.Pool{New: func() any {
	return &liveScratch{
		keys:   make([]uint64, 0, scanBlockSize),
		counts: make([]uint64, 0, scanBlockSize),
	}
}}

type liveScratch struct{ keys, counts []uint64 }

// scanLiveBlocks is the live-table arm of scanBlocksCtx: partitions are
// assigned to workers cyclically and each worker's Range output is gathered
// into per-worker scratch blocks before dispatch.
func (t *PotentialTable) scanLiveBlocks(ctx context.Context, p int, block func(w int, keys, counts []uint64, sorted bool)) error {
	// Capture one partition generation: the assignment and the walk below
	// must agree on the partition count even if a Rebalance lands mid-scan.
	parts := t.liveParts()
	assign := sched.CyclicAssign(len(parts), p)
	return sched.RunCtx(ctx, p, func(ctx context.Context, w int) error {
		done := ctx.Done()
		var cause error
		scratch := liveScanScratch.Get().(*liveScratch)
		defer liveScanScratch.Put(scratch)
		keys := scratch.keys[:0]
		counts := scratch.counts[:0]
		for _, part := range assign[w] {
			parts[part].Range(func(key, count uint64) bool {
				keys = append(keys, key)
				counts = append(counts, count)
				if len(keys) == scanBlockSize {
					block(w, keys, counts, false)
					keys, counts = keys[:0], counts[:0]
					select {
					case <-done:
						cause = context.Cause(ctx)
						return false
					default:
					}
				}
				return true
			})
			if cause != nil {
				return cause
			}
		}
		if len(keys) > 0 {
			block(w, keys, counts, false)
		}
		return nil
	})
}
