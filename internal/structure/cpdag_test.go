package structure

import (
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/graph"
)

func TestCPDAGChainFullyUndirected(t *testing.T) {
	// A directed chain has no v-structures: its CPDAG is fully undirected.
	dag := graph.NewDAG(4)
	dag.MustAddEdge(0, 1)
	dag.MustAddEdge(1, 2)
	dag.MustAddEdge(2, 3)
	p := CPDAGFromDAG(dag)
	if len(p.DirectedEdges()) != 0 {
		t.Errorf("chain CPDAG has compelled edges: %v", p.DirectedEdges())
	}
	if len(p.UndirectedEdges()) != 3 {
		t.Errorf("chain CPDAG edges: %v", p.UndirectedEdges())
	}
}

func TestCPDAGColliderCompelled(t *testing.T) {
	// 0→2←1: both edges compelled.
	dag := graph.NewDAG(3)
	dag.MustAddEdge(0, 2)
	dag.MustAddEdge(1, 2)
	p := CPDAGFromDAG(dag)
	if !p.HasDirected(0, 2) || !p.HasDirected(1, 2) {
		t.Errorf("collider not compelled: %v / %v", p.DirectedEdges(), p.UndirectedEdges())
	}
}

func TestCPDAGCancerFullyCompelled(t *testing.T) {
	// Cancer's CPDAG is fully directed: the collider at cancer compels its
	// two in-edges and Meek R1 compels the two out-edges.
	p := CPDAGFromDAG(bn.Cancer().DAG())
	if len(p.UndirectedEdges()) != 0 {
		t.Errorf("cancer CPDAG has reversible edges: %v", p.UndirectedEdges())
	}
	if len(p.DirectedEdges()) != 4 {
		t.Errorf("cancer CPDAG directed edges: %v", p.DirectedEdges())
	}
}

func TestCPDAGMarkovEquivalentDAGsAgree(t *testing.T) {
	// 0→1→2 and 2→1→0 and 0←1→2 are I-equivalent (Figure 1 of the paper):
	// identical CPDAGs.
	chains := []*graph.DAG{graph.NewDAG(3), graph.NewDAG(3), graph.NewDAG(3)}
	chains[0].MustAddEdge(0, 1)
	chains[0].MustAddEdge(1, 2)
	chains[1].MustAddEdge(2, 1)
	chains[1].MustAddEdge(1, 0)
	chains[2].MustAddEdge(1, 0)
	chains[2].MustAddEdge(1, 2)
	ref := CPDAGFromDAG(chains[0])
	for i, dag := range chains[1:] {
		if got := CPDAGFromDAG(dag); SHD(got, ref) != 0 {
			t.Errorf("equivalent DAG %d has different CPDAG (SHD %d)", i+1, SHD(got, ref))
		}
	}
}

func TestSHDProperties(t *testing.T) {
	a := CPDAGFromDAG(bn.Cancer().DAG())
	// Identity.
	if SHD(a, a) != 0 {
		t.Error("SHD(a,a) != 0")
	}
	// Symmetry.
	empty := graph.NewPDAG(5)
	if SHD(a, empty) != SHD(empty, a) {
		t.Error("SHD not symmetric")
	}
	// Missing all 4 edges = 4.
	if got := SHD(a, empty); got != 4 {
		t.Errorf("SHD(cancer, empty) = %d, want 4", got)
	}
	// Orientation mismatch counts one point.
	b := a.Clone()
	// Flip 0→2 to 2→0 by rebuilding.
	flipped := graph.NewPDAG(5)
	for _, e := range a.DirectedEdges() {
		flipped.AddUndirected(e[0], e[1])
		if e[0] == 0 && e[1] == 2 {
			flipped.Orient(e[1], e[0])
		} else {
			flipped.Orient(e[0], e[1])
		}
	}
	if got := SHD(b, flipped); got != 1 {
		t.Errorf("single orientation flip SHD = %d, want 1", got)
	}
}

func TestSHDPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SHD size mismatch did not panic")
		}
	}()
	SHD(graph.NewPDAG(2), graph.NewPDAG(3))
}

func TestComparePDAGOnLearnedCancer(t *testing.T) {
	net := bn.Cancer()
	d, err := net.Sample(400000, 41, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(d, Config{P: 4, Test: TestG, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	m := ComparePDAG(res.PDAG, net.DAG())
	// With the G test at this sample size all 4 edges (even the weak
	// pollution edge) are typically found; demand strong agreement.
	if m.Skeleton.Recall < 0.75 {
		t.Errorf("recall %.2f: %+v", m.Skeleton.Recall, m)
	}
	if m.SHD > 3 {
		t.Errorf("SHD = %d (learned %v / %v, truth CPDAG %v)",
			m.SHD, res.PDAG.DirectedEdges(), res.PDAG.UndirectedEdges(),
			CPDAGFromDAG(net.DAG()).DirectedEdges())
	}
}

func TestComparePDAGPerfect(t *testing.T) {
	dag := bn.Asia().DAG()
	m := ComparePDAG(CPDAGFromDAG(dag), dag)
	if m.SHD != 0 || m.Skeleton.F1 != 1 {
		t.Errorf("self comparison: %+v", m)
	}
}
