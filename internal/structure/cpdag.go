package structure

import (
	"fmt"

	"waitfreebn/internal/graph"
)

// CPDAGFromDAG returns the completed partially directed graph (CPDAG)
// representing the DAG's Markov-equivalence class: the skeleton with
// exactly the compelled edges directed — v-structures read off the DAG,
// propagated to closure by Meek's rules — and reversible edges left
// undirected. It is the ground-truth object a learned PDAG should be
// compared to.
func CPDAGFromDAG(dag *graph.DAG) *graph.PDAG {
	skel := dag.Skeleton()
	p := graph.FromSkeleton(skel)
	n := dag.N()
	// Unshielded colliders of the DAG are compelled.
	for z := 0; z < n; z++ {
		ps := dag.Parents(z)
		for a := 0; a < len(ps); a++ {
			for b := a + 1; b < len(ps); b++ {
				x, y := ps[a], ps[b]
				if skel.HasEdge(x, y) {
					continue
				}
				p.Orient(x, z)
				p.Orient(y, z)
			}
		}
	}
	meekClosure(p)
	return p
}

// meekClosure applies Meek rules R1-R3 until fixpoint.
func meekClosure(p *graph.PDAG) {
	for changed := true; changed; {
		changed = false
		for _, e := range p.UndirectedEdges() {
			if meekOrients(p, e[0], e[1]) {
				p.Orient(e[0], e[1])
				changed = true
			} else if meekOrients(p, e[1], e[0]) {
				p.Orient(e[1], e[0])
				changed = true
			}
		}
	}
}

// SHD returns the structural Hamming distance between two partially
// directed graphs over the same vertex set: one point for each adjacency
// present in exactly one graph, and one point for each shared adjacency
// whose edge mark differs (directed vs undirected, or opposite direction).
// Lower is better; 0 means identical equivalence-class representations.
func SHD(a, b *graph.PDAG) int {
	if a.N() != b.N() {
		panic(fmt.Sprintf("structure: SHD over %d vs %d vertices", a.N(), b.N()))
	}
	d := 0
	for u := 0; u < a.N(); u++ {
		for v := u + 1; v < a.N(); v++ {
			inA := a.Adjacent(u, v)
			inB := b.Adjacent(u, v)
			switch {
			case inA != inB:
				d++
			case inA && inB:
				if edgeMark(a, u, v) != edgeMark(b, u, v) {
					d++
				}
			}
		}
	}
	return d
}

// edgeMark encodes the orientation of the (u, v) adjacency:
// 0 undirected, 1 u→v, 2 v→u.
func edgeMark(p *graph.PDAG, u, v int) int {
	switch {
	case p.HasDirected(u, v):
		return 1
	case p.HasDirected(v, u):
		return 2
	default:
		return 0
	}
}

// EvaluatePDAG compares a learned PDAG against the equivalence class of a
// ground-truth DAG, reporting both adjacency metrics and the SHD.
type PDAGMetrics struct {
	Skeleton SkeletonMetrics
	SHD      int
}

// ComparePDAG scores a learned PDAG against the CPDAG of truth.
func ComparePDAG(learned *graph.PDAG, truth *graph.DAG) PDAGMetrics {
	if learned.N() != truth.N() {
		panic(fmt.Sprintf("structure: graphs have %d vs %d vertices", learned.N(), truth.N()))
	}
	// Adjacency metrics via the skeletons.
	sk := graph.NewUndirected(learned.N())
	for u := 0; u < learned.N(); u++ {
		for v := u + 1; v < learned.N(); v++ {
			if learned.Adjacent(u, v) {
				sk.AddEdge(u, v)
			}
		}
	}
	return PDAGMetrics{
		Skeleton: CompareSkeleton(sk, truth),
		SHD:      SHD(learned, CPDAGFromDAG(truth)),
	}
}
