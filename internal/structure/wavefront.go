// Wavefront scheduling for phases 2 and 3 (thickening and thinning).
//
// The serial learner processes pending pairs one CI test at a time, and
// every test can mutate the graph that the next test's candidate
// conditioning sets are computed from — a loop-carried dependence that
// defeats naive parallelization. The wavefront breaks it speculatively:
//
//  1. Speculate: take the next WaveSize pending items, compute each item's
//     candidate conditioning sets against the current graph (read-only),
//     and evaluate all their CI searches concurrently under sched.RunCtx.
//     A coordinator goroutine collects the marginalization requests the
//     searches emit and, whenever every live search is blocked on one,
//     fuses the whole batch into shared table scans through
//     core.MarginalizeManyCachedCtx — so the potential table is read once
//     per rendezvous round for the entire wave, not once per pair.
//  2. Commit: walk the wave in the serial order. An item whose candidate
//     sets are unchanged by the commits before it (checked by a graph-epoch
//     fast path, else by recomputing the sets) gets the serial decision —
//     a CI outcome is a pure function of (candidate sets, pair, table,
//     config) — and its effect is applied. The first invalidated item
//     stops the commit; it and everything after it requeue, in order, for
//     the next wave.
//
// The first item of a wave always validates (nothing commits before it),
// so every wave makes progress and the learned skeleton, sepsets, and
// deterministic counters are bit-identical to the serial learner's at any
// worker count. Wave composition never depends on P or on goroutine
// scheduling, so Waves/Requeued/WastedCITests are reproducible too; only
// cache hit/miss splits can vary with request arrival order.

package structure

import (
	"context"

	"waitfreebn/internal/core"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/sched"
)

// waveItem is one speculated pair/edge within a wave.
type waveItem struct {
	x, y   int
	n1, n2 []int // candidate conditioning sets at speculation time

	skip  bool    // thin: predicate said "no CI needed" at speculation time
	eval  *ciEval // the (local-counter) evaluation, nil for skipped items
	hasCI bool    // evaluation completed and set/sep are meaningful
	set   []int
	sep   bool
}

// margRequest is one batch of varsets a CI search needs marginalized, with
// the channel its reply comes back on.
type margRequest struct {
	varsets [][]int
	reply   chan margReply
}

type margReply struct {
	ms  []*core.Marginal
	err error
}

// waveEvent is what item goroutines post to the coordinator: a marginal
// request, or (req == nil) completion of the whole search.
type waveEvent struct {
	req *margRequest
}

// waveMargSource routes a ciEval's marginal demand through the wave
// coordinator instead of scanning the table itself.
type waveMargSource struct {
	events chan<- waveEvent
}

func (s *waveMargSource) marginals(varsets [][]int) ([]*core.Marginal, error) {
	req := &margRequest{varsets: varsets, reply: make(chan margReply, 1)}
	s.events <- waveEvent{req: req}
	r := <-req.reply
	return r.ms, r.err
}

// runWave evaluates the CI searches of every non-skipped item concurrently.
// Item results land in the items themselves; the returned error is the
// RunCtx root cause (a search error or cancellation).
func (l *learner) runWave(items []*waveItem) error {
	active := make([]*waveItem, 0, len(items))
	for _, it := range items {
		if !it.skip {
			active = append(active, it)
		}
	}
	if len(active) == 0 {
		return nil
	}
	// Each search posts at most one outstanding request before blocking and
	// exactly one completion, so the buffer makes every send non-blocking.
	events := make(chan waveEvent, 2*len(active))
	runErr := make(chan error, 1)
	go func() {
		runErr <- sched.RunCtx(l.ctx, len(active), func(ctx context.Context, w int) error {
			it := active[w]
			it.eval = l.newEval(ctx, &waveMargSource{events: events})
			defer func() { events <- waveEvent{} }()
			set, sep, err := it.eval.tryToSeparate(it.n1, it.n2, it.x, it.y)
			if err != nil {
				return err
			}
			it.set, it.sep, it.hasCI = set, sep, true
			return nil
		})
	}()

	// Rendezvous loop: batch whenever every live search is waiting on a
	// request. Completions shrink the quorum, so a wave whose searches
	// finish at different greedy depths still fuses maximally — the scans
	// per wave equal the deepest search's rendezvous count, not the sum.
	live := len(active)
	var pending []*margRequest
	for live > 0 {
		ev := <-events
		if ev.req == nil {
			live--
		} else {
			pending = append(pending, ev.req)
		}
		if live > 0 && len(pending) == live {
			l.serveBatch(pending)
			pending = pending[:0]
		}
	}
	return <-runErr
}

// serveBatch fuses the outstanding requests of one rendezvous round into
// shared cached scans and distributes the reply slices. On a scan error
// every waiter is released with the error so no search blocks forever.
func (l *learner) serveBatch(reqs []*margRequest) {
	total := 0
	for _, r := range reqs {
		total += len(r.varsets)
	}
	all := make([][]int, 0, total)
	for _, r := range reqs {
		all = append(all, r.varsets...)
	}
	ms, err := l.pt.MarginalizeManyCachedCtx(l.ctx, all, l.cfg.P, l.cache)
	off := 0
	for _, r := range reqs {
		if err != nil {
			r.reply <- margReply{err: err}
		} else {
			r.reply <- margReply{ms: ms[off : off+len(r.varsets)]}
		}
		off += len(r.varsets)
	}
}

// thickenWave is phase 2 under the wavefront scheduler: bit-identical to
// learner.thicken, with each wave's CI searches evaluated concurrently.
func (l *learner) thickenWave(g *graph.Undirected, deferred []pair) error {
	pending := deferred
	for len(pending) > 0 {
		if err := l.checkCtx(); err != nil {
			return err
		}
		wave := pending[:min(l.cfg.WaveSize, len(pending))]
		rest := pending[len(wave):]
		epoch0 := g.Epoch()
		items := make([]*waveItem, len(wave))
		for k, p := range wave {
			items[k] = &waveItem{x: p.i, y: p.j,
				n1: g.NeighborsOnPaths(p.i, p.j),
				n2: g.NeighborsOnPaths(p.j, p.i)}
		}
		if err := l.runWave(items); err != nil {
			return err
		}
		l.res.Waves++
		commit := len(wave)
		for k, it := range items {
			// Epoch unchanged ⇒ no commit before this item touched the
			// graph, so the speculation graph is still the serial graph.
			// Otherwise the decision stands iff the candidate sets are
			// unchanged by the earlier commits.
			if g.Epoch() != epoch0 &&
				!(sameVars(it.n1, g.NeighborsOnPaths(it.x, it.y)) &&
					sameVars(it.n2, g.NeighborsOnPaths(it.y, it.x))) {
				commit = k
				break
			}
			l.res.CITests += it.eval.tests
			l.res.CondSetTruncations += it.eval.truncated
			if it.sep {
				l.res.Sepsets.Put(it.x, it.y, it.set)
			} else {
				g.AddEdge(it.x, it.y)
				l.res.ThickenEdges++
			}
		}
		pending = l.requeue(items, wave, rest, commit)
	}
	return nil
}

// thinWave is phase 3 under the wavefront scheduler: bit-identical to
// learner.thin. Thinning only removes edges, which makes the speculation
// predicates monotone: an edge skipped at speculation time (already gone,
// or sole connection between its endpoints) can only remain skippable at
// commit time, so "no CI needed" decisions never invalidate. The CI search
// itself runs with the edge still in place — NeighborsOnPaths(u, v) blocks
// u, so the direct edge never contributes to the candidate sets and the
// sets equal the ones the serial learner computes after removing the edge.
func (l *learner) thinWave(g *graph.Undirected) error {
	edges := g.Edges()
	pending := make([]pair, len(edges))
	for k, e := range edges {
		pending[k] = pair{i: e[0], j: e[1]}
	}
	for len(pending) > 0 {
		if err := l.checkCtx(); err != nil {
			return err
		}
		wave := pending[:min(l.cfg.WaveSize, len(pending))]
		rest := pending[len(wave):]
		epoch0 := g.Epoch()
		items := make([]*waveItem, len(wave))
		for k, p := range wave {
			it := &waveItem{x: p.i, y: p.j}
			if !g.HasEdge(p.i, p.j) || !g.AdjacencyPath(p.i, p.j) {
				it.skip = true
			} else {
				it.n1 = g.NeighborsOnPaths(p.i, p.j)
				it.n2 = g.NeighborsOnPaths(p.j, p.i)
			}
			items[k] = it
		}
		if err := l.runWave(items); err != nil {
			return err
		}
		l.res.Waves++
		commit := len(wave)
		for k, it := range items {
			// The serial predicates, evaluated fresh at commit time.
			if !g.HasEdge(it.x, it.y) {
				continue // removed earlier in this phase
			}
			if !g.AdjacencyPath(it.x, it.y) {
				// The edge became the endpoints' only connection after an
				// earlier commit removed another edge: keep it untested,
				// as the serial learner does. Any speculative CI work on
				// it is discarded.
				if it.hasCI {
					l.res.WastedCITests += it.eval.tests
				}
				continue
			}
			if !it.hasCI {
				// Defensive: with monotone predicates a spec-time skip
				// cannot need a CI test at commit time, but if it ever
				// does, requeue rather than commit an untested decision.
				commit = k
				break
			}
			if g.Epoch() != epoch0 &&
				!(sameVars(it.n1, g.NeighborsOnPaths(it.x, it.y)) &&
					sameVars(it.n2, g.NeighborsOnPaths(it.y, it.x))) {
				commit = k
				break
			}
			l.res.CITests += it.eval.tests
			l.res.CondSetTruncations += it.eval.truncated
			if it.sep {
				g.RemoveEdge(it.x, it.y)
				l.res.Sepsets.Put(it.x, it.y, it.set)
				l.res.ThinnedEdges++
			}
		}
		pending = l.requeue(items, wave, rest, commit)
	}
	return nil
}

// requeue accounts for the invalidated tail of a wave and rebuilds the
// pending list: the uncommitted items, in their original order, ahead of
// the untouched remainder.
func (l *learner) requeue(items []*waveItem, wave, rest []pair, commit int) []pair {
	if commit == len(wave) {
		return rest
	}
	for _, it := range items[commit:] {
		if it.eval != nil {
			l.res.WastedCITests += it.eval.tests
		}
	}
	l.res.Requeued += len(wave) - commit
	next := make([]pair, 0, len(wave)-commit+len(rest))
	next = append(next, wave[commit:]...)
	next = append(next, rest...)
	return next
}

// Metric names published per learn. Documented in README.md
// ("Observability"); keep the two in sync.
const (
	metricPhaseSeconds  = "structure_phase_seconds"
	metricCITests       = "structure_ci_tests_total"
	metricTruncations   = "structure_condset_truncations_total"
	metricWaves         = "structure_waves_total"
	metricRequeued      = "structure_requeued_total"
	metricWastedCITests = "structure_wasted_ci_tests_total"
)

// publishLearnMetrics records one completed learn into the registry. It
// runs after the phases have finished, so everything it reads is quiescent.
func publishLearnMetrics(r *obs.Registry, res *Result) {
	if r == nil {
		return
	}
	r.Help(metricPhaseSeconds, "wall clock of the last learn, by phase")
	r.Gauge(metricPhaseSeconds, "phase", "draft").Set(res.DraftTime.Seconds())
	r.Gauge(metricPhaseSeconds, "phase", "thicken").Set(res.ThickenTime.Seconds())
	r.Gauge(metricPhaseSeconds, "phase", "thin").Set(res.ThinTime.Seconds())
	r.Help(metricCITests, "conditional-independence tests committed by the learner")
	r.Counter(metricCITests).Add(uint64(res.CITests))
	r.Counter(metricTruncations).Add(uint64(res.CondSetTruncations))
	r.Help(metricWaves, "speculation rounds run by the phase-2/3 wavefront")
	r.Counter(metricWaves).Add(uint64(res.Waves))
	r.Counter(metricRequeued).Add(uint64(res.Requeued))
	r.Help(metricWastedCITests, "speculative CI tests discarded by wave invalidation")
	r.Counter(metricWastedCITests).Add(uint64(res.WastedCITests))
}
