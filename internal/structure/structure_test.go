package structure

import (
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/graph"
)

func learnFrom(t *testing.T, net *bn.Network, m int, seed uint64, cfg Config) *Result {
	t.Helper()
	d, err := net.Sample(m, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLearnChainExact(t *testing.T) {
	// A strong chain must be recovered exactly: adjacent edges present,
	// transitive shortcuts thinned away.
	net := bn.Chain(6, 2, 0.85)
	res := learnFrom(t, net, 60000, 1, Config{P: 4})
	m := CompareSkeleton(res.Graph, net.DAG())
	if m.FalseNegatives != 0 || m.FalsePositives != 0 {
		t.Fatalf("chain recovery imperfect: %+v\nedges: %v", m, res.Graph.Edges())
	}
}

func TestLearnNaiveBayesExact(t *testing.T) {
	net := bn.NaiveBayes(7, 2, 0.85)
	res := learnFrom(t, net, 60000, 2, Config{P: 4})
	m := CompareSkeleton(res.Graph, net.DAG())
	if m.F1 < 1.0 {
		t.Fatalf("naive bayes recovery imperfect: %+v\nedges: %v", m, res.Graph.Edges())
	}
}

func TestLearnCancerNetwork(t *testing.T) {
	net := bn.Cancer()
	res := learnFrom(t, net, 200000, 3, Config{P: 4, Epsilon: 0.002})
	m := CompareSkeleton(res.Graph, net.DAG())
	// The pollution→cancer edge is extremely weak (ΔP ~ 1-2%), so demand
	// recall on the remaining edges and near-perfect precision.
	if m.FalsePositives > 0 {
		t.Errorf("spurious edges: %+v, got %v", m, res.Graph.Edges())
	}
	if m.TruePositives < 3 {
		t.Errorf("recovered only %d true edges: %v", m.TruePositives, res.Graph.Edges())
	}
}

func TestLearnAsiaNetwork(t *testing.T) {
	net := bn.Asia()
	res := learnFrom(t, net, 400000, 4, Config{P: 4, Epsilon: 0.003})
	m := CompareSkeleton(res.Graph, net.DAG())
	// Asia contains the notoriously weak asia→tub edge (0.01 vs 0.05) and
	// the deterministic either=OR(tub,lung) node; demand strong but not
	// perfect recovery.
	if m.Recall < 0.7 {
		t.Errorf("recall %.2f too low: %+v, edges %v", m.Recall, m, res.Graph.Edges())
	}
	if m.Precision < 0.8 {
		t.Errorf("precision %.2f too low: %+v, edges %v", m.Precision, m, res.Graph.Edges())
	}
}

func TestLearnIndependentDataYieldsEmptyGraph(t *testing.T) {
	d := dataset.NewUniformCard(50000, 8, 2)
	d.UniformIndependent(5, 4)
	res, err := Learn(d, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() != 0 {
		t.Errorf("independent data produced %d edges: %v", res.Graph.NumEdges(), res.Graph.Edges())
	}
}

func TestLearnResultInstrumentation(t *testing.T) {
	net := bn.Chain(5, 2, 0.8)
	res := learnFrom(t, net, 30000, 6, Config{P: 2})
	if res.MI == nil || res.MI.N != 5 {
		t.Error("MI matrix missing")
	}
	if res.DraftEdges <= 0 {
		t.Error("no draft edges recorded")
	}
	total := res.DraftEdges + res.ThickenEdges - res.ThinnedEdges
	if total != res.Graph.NumEdges() {
		t.Errorf("edge accounting: %d+%d-%d != %d", res.DraftEdges, res.ThickenEdges, res.ThinnedEdges, res.Graph.NumEdges())
	}
	if res.BuildStats.P == 0 {
		t.Error("build stats not captured")
	}
}

func TestLearnFromTableMatchesLearn(t *testing.T) {
	net := bn.Chain(5, 2, 0.8)
	d, err := net.Sample(20000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Learn(d, Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LearnFromTable(pt, Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %v vs %v", ea, eb)
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edges differ: %v vs %v", ea, eb)
		}
	}
}

func TestLearnDeterministicAcrossWorkers(t *testing.T) {
	net := bn.Asia()
	d, err := net.Sample(50000, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	var ref [][2]int
	for _, p := range []int{1, 2, 4} {
		res, err := Learn(d, Config{P: p})
		if err != nil {
			t.Fatal(err)
		}
		edges := res.Graph.Edges()
		if ref == nil {
			ref = edges
			continue
		}
		if len(edges) != len(ref) {
			t.Fatalf("P=%d: edge count %d != %d", p, len(edges), len(ref))
		}
		for i := range edges {
			if edges[i] != ref[i] {
				t.Fatalf("P=%d: edges differ", p)
			}
		}
	}
}

func TestLearnRejectsSingleVariable(t *testing.T) {
	d := dataset.NewUniformCard(100, 1, 2)
	if _, err := Learn(d, Config{}); err == nil {
		t.Fatal("expected error for single-variable dataset")
	}
}

func TestThinningRemovesTriangleShortcut(t *testing.T) {
	// Chain 0→1→2 with strong links: drafting sorted by MI adds (0,1) and
	// (1,2) first; the weaker (0,2) pair is deferred and must be separated
	// by conditioning on {1} during thickening — or, if added, thinned.
	net := bn.Chain(3, 2, 0.9)
	res := learnFrom(t, net, 80000, 9, Config{P: 2})
	if res.Graph.HasEdge(0, 2) {
		t.Errorf("transitive edge (0,2) survived: %v", res.Graph.Edges())
	}
	if !res.Graph.HasEdge(0, 1) || !res.Graph.HasEdge(1, 2) {
		t.Errorf("chain edges missing: %v", res.Graph.Edges())
	}
	if res.CITests == 0 {
		t.Error("no CI tests were run")
	}
}

func TestCompareSkeleton(t *testing.T) {
	truth := graph.NewDAG(4)
	truth.MustAddEdge(0, 1)
	truth.MustAddEdge(1, 2)
	learned := graph.NewUndirected(4)
	learned.AddEdge(0, 1) // true positive
	learned.AddEdge(2, 3) // false positive
	m := CompareSkeleton(learned, truth)
	if m.TruePositives != 1 || m.FalsePositives != 1 || m.FalseNegatives != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Fatalf("prf: %+v", m)
	}
}

func TestCompareSkeletonEmpty(t *testing.T) {
	truth := graph.NewDAG(3)
	learned := graph.NewUndirected(3)
	m := CompareSkeleton(learned, truth)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty comparison: %+v", m)
	}
}

func TestCompareSkeletonPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	CompareSkeleton(graph.NewUndirected(3), graph.NewDAG(4))
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Epsilon != 0.01 || c.MaxCondSet != 6 {
		t.Errorf("defaults: %+v", c)
	}
	c2 := Config{Epsilon: 0.05, MaxCondSet: 3}.withDefaults()
	if c2.Epsilon != 0.05 || c2.MaxCondSet != 3 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestLearnRandomNetworkReasonableRecovery(t *testing.T) {
	net := bn.RandomDAG(10, 2, 0.25, 2, 0.5, 77)
	if net.DAG().NumEdges() == 0 {
		t.Skip("random draw produced an empty graph")
	}
	res := learnFrom(t, net, 150000, 10, Config{P: 4, Epsilon: 0.005})
	m := CompareSkeleton(res.Graph, net.DAG())
	// Random CPTs can encode arbitrarily weak edges; require decent
	// precision (we don't invent structure) and nonzero recall.
	if m.Precision < 0.6 {
		t.Errorf("precision %.2f: %+v", m.Precision, m)
	}
	if m.TruePositives == 0 {
		t.Errorf("recovered nothing: truth %v, learned %v", net.DAG().Edges(), res.Graph.Edges())
	}
}

func TestLearnWithGTest(t *testing.T) {
	net := bn.Chain(6, 2, 0.85)
	d, err := net.Sample(60000, 71, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(d, Config{P: 4, Test: TestG, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	m := CompareSkeleton(res.Graph, net.DAG())
	if m.FalseNegatives != 0 || m.FalsePositives != 0 {
		t.Fatalf("g-test chain recovery imperfect: %+v edges %v", m, res.Graph.Edges())
	}
}

func TestLearnGTestIndependentDataEmpty(t *testing.T) {
	d := dataset.NewUniformCard(50000, 8, 2)
	d.UniformIndependent(72, 4)
	res, err := Learn(d, Config{P: 4, Test: TestG, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// At alpha=0.01 over 28 pairs, expect ~0.28 false edges; allow one.
	if res.Graph.NumEdges() > 1 {
		t.Errorf("independent data produced %d edges under g-test: %v",
			res.Graph.NumEdges(), res.Graph.Edges())
	}
}

func TestTestKindString(t *testing.T) {
	if TestMIThreshold.String() != "mi-threshold" || TestG.String() != "g-test" ||
		TestKind(9).String() != "unknown" {
		t.Error("TestKind.String mismatch")
	}
}

func TestLearnGTestMoreSensitiveThanLooseEpsilon(t *testing.T) {
	// The asia→tub edge (I ≈ 0.0006 bits) is invisible to the default
	// ε = 0.01 but significant under the G test at large m:
	// G = 2·m·ln2·I ≈ 2·400000·0.69·0.0006 ≈ 330 ≫ χ²₁(0.01) ≈ 6.6.
	net := bn.Asia()
	d, err := net.Sample(400000, 73, 4)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := Learn(d, Config{P: 4}) // default ε = 0.01
	if err != nil {
		t.Fatal(err)
	}
	g, err := Learn(d, Config{P: 4, Test: TestG, Alpha: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if mi.Graph.HasEdge(0, 2) {
		t.Skip("ε-threshold unexpectedly found the weak edge; nothing to compare")
	}
	if !g.Graph.HasEdge(0, 2) {
		t.Errorf("g-test missed the asia-tub edge: %v", g.Graph.Edges())
	}
}
