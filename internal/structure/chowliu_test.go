package structure

import (
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
)

func clTable(t *testing.T, net *bn.Network, m int, seed uint64) *core.PotentialTable {
	t.Helper()
	d, err := net.Sample(m, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestChowLiuRecoversChain(t *testing.T) {
	// A chain IS a tree: Chow-Liu must recover it exactly.
	net := bn.Chain(7, 2, 0.85)
	pt := clTable(t, net, 60000, 51)
	tree, mi, err := ChowLiu(pt, 0.001, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi == nil {
		t.Fatal("MI matrix not returned")
	}
	m := CompareSkeleton(tree, net.DAG())
	if m.F1 < 1.0 {
		t.Fatalf("chain recovery: %+v, edges %v", m, tree.Edges())
	}
}

func TestChowLiuRecoversStar(t *testing.T) {
	net := bn.NaiveBayes(8, 2, 0.85)
	pt := clTable(t, net, 60000, 52)
	tree, _, err := ChowLiu(pt, 0.001, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := CompareSkeleton(tree, net.DAG())
	if m.F1 < 1.0 {
		t.Fatalf("star recovery: %+v, edges %v", m, tree.Edges())
	}
}

func TestChowLiuIsSpanningTree(t *testing.T) {
	// Even on a non-tree model the output must be acyclic with ≤ n-1
	// edges and connected where MI supports it.
	net := bn.Asia()
	pt := clTable(t, net, 100000, 53)
	tree, _, err := ChowLiu(pt, 0.0001, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumEdges() > 7 {
		t.Fatalf("tree has %d edges for 8 vertices", tree.NumEdges())
	}
	// Acyclic: every edge's removal must disconnect its endpoints.
	for _, e := range tree.Edges() {
		if tree.AdjacencyPath(e[0], e[1]) {
			t.Fatalf("edge %v lies on a cycle", e)
		}
	}
}

func TestChowLiuIndependentDataYieldsForest(t *testing.T) {
	d := dataset.NewUniformCard(50000, 6, 2)
	d.UniformIndependent(54, 4)
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := ChowLiu(pt, 0.001, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumEdges() != 0 {
		t.Errorf("independent data produced %d tree edges: %v", tree.NumEdges(), tree.Edges())
	}
}

func TestChowLiuDAGOrientation(t *testing.T) {
	net := bn.Chain(6, 2, 0.85)
	pt := clTable(t, net, 50000, 55)
	dag, err := ChowLiuDAG(pt, 0.001, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rooted at 0 on a recovered chain: all edges point away from 0.
	for _, e := range dag.Edges() {
		if e[0] > e[1] {
			t.Errorf("edge %v points toward the root", e)
		}
	}
	if len(dag.TopoOrder()) != 6 {
		t.Error("not a DAG")
	}
	// Every vertex except the root has exactly one parent in a tree DAG.
	for v := 1; v < 6; v++ {
		if got := len(dag.Parents(v)); got != 1 {
			t.Errorf("vertex %d has %d parents", v, got)
		}
	}
	if _, err := ChowLiuDAG(pt, 0.001, 99, 4); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestChowLiuTreeLikelihoodOptimality(t *testing.T) {
	// Chow-Liu maximizes likelihood among trees: its fitted LL must be at
	// least that of any other spanning tree; compare against a deliberately
	// wrong chain ordering.
	net := bn.NaiveBayes(6, 2, 0.8)
	d, err := net.Sample(60000, 56, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	clDAG, err := ChowLiuDAG(pt, 0.0001, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	clFit, err := bn.FitCPTs("cl", clDAG, d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong tree: a path 0-1-2-3-4-5 (the true model is a star at 0).
	wrong := bn.Chain(6, 2, 0.5).DAG()
	wrongFit, err := bn.FitCPTs("wrong", wrong, d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if clFit.LogLikelihood(d, 4) < wrongFit.LogLikelihood(d, 4) {
		t.Error("Chow-Liu tree beaten by an arbitrary path tree")
	}
}
