package structure

import (
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/graph"
)

func TestSepsetsStore(t *testing.T) {
	s := NewSepsets(5)
	s.Put(3, 1, []int{4, 0}) // unordered pair, unsorted set
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	set, ok := s.Get(1, 3)
	if !ok || len(set) != 2 || set[0] != 0 || set[1] != 4 {
		t.Fatalf("Get(1,3) = %v, %v", set, ok)
	}
	if !s.Contains(1, 3, 4) || !s.Contains(3, 1, 0) {
		t.Error("Contains misses recorded members")
	}
	if s.Contains(1, 3, 2) {
		t.Error("Contains invents members")
	}
	if s.Contains(0, 2, 1) {
		t.Error("Contains true for unrecorded pair")
	}
	// Empty separating set is a valid record.
	s.Put(0, 2, nil)
	if _, ok := s.Get(0, 2); !ok {
		t.Error("empty sepset not recorded")
	}
	if s.Contains(0, 2, 1) {
		t.Error("empty sepset contains nothing")
	}
	// Put copies its argument.
	src := []int{1}
	s.Put(0, 4, src)
	src[0] = 99
	if !s.Contains(0, 4, 1) {
		t.Error("Put did not copy the slice")
	}
}

func TestOrientCollider(t *testing.T) {
	// Skeleton 0—2—1 with 0,1 nonadjacent and sepset(0,1) = {} (not
	// containing 2) ⇒ v-structure 0→2←1.
	skel := graph.NewUndirected(3)
	skel.AddEdge(0, 2)
	skel.AddEdge(1, 2)
	seps := NewSepsets(3)
	seps.Put(0, 1, nil)
	p := OrientEdges(skel, seps)
	if !p.HasDirected(0, 2) || !p.HasDirected(1, 2) {
		t.Errorf("collider not oriented: directed=%v undirected=%v", p.DirectedEdges(), p.UndirectedEdges())
	}
}

func TestOrientChainStaysUndirected(t *testing.T) {
	// Skeleton 0—2—1 with sepset(0,1) = {2}: NOT a collider; the triple is
	// Markov-equivalent in both chain directions, so it must remain
	// undirected.
	skel := graph.NewUndirected(3)
	skel.AddEdge(0, 2)
	skel.AddEdge(1, 2)
	seps := NewSepsets(3)
	seps.Put(0, 1, []int{2})
	p := OrientEdges(skel, seps)
	if len(p.DirectedEdges()) != 0 {
		t.Errorf("chain triple oriented: %v", p.DirectedEdges())
	}
	if len(p.UndirectedEdges()) != 2 {
		t.Errorf("undirected edges: %v", p.UndirectedEdges())
	}
}

func TestOrientMeekR1(t *testing.T) {
	// v-structure 0→2←1 plus 2—3 (0,3 and 1,3 nonadjacent): R1 forces 2→3
	// (otherwise 3→2 would create a new collider).
	skel := graph.NewUndirected(4)
	skel.AddEdge(0, 2)
	skel.AddEdge(1, 2)
	skel.AddEdge(2, 3)
	seps := NewSepsets(4)
	seps.Put(0, 1, nil)      // collider at 2
	seps.Put(0, 3, []int{2}) // 3 separated through 2
	seps.Put(1, 3, []int{2})
	p := OrientEdges(skel, seps)
	if !p.HasDirected(2, 3) {
		t.Errorf("R1 did not orient 2→3: directed=%v undirected=%v", p.DirectedEdges(), p.UndirectedEdges())
	}
}

func TestOrientMeekR2(t *testing.T) {
	// Directed chain a→c→b with a—b undirected forces a→b (else cycle).
	// Build it from two v-structures: x→a←y gives nothing... simpler to
	// drive OrientEdges with sepsets that create 0→1 and 1→2 directed and
	// leave 0—2 undirected: use colliders 3→0←4? Getting natural R2 from
	// sepsets alone is contrived; test meekOrients directly instead.
	p := graph.NewPDAG(3)
	p.AddUndirected(0, 1)
	p.Orient(0, 1) // 0→1
	p.AddUndirected(1, 2)
	p.Orient(1, 2) // 1→2
	p.AddUndirected(0, 2)
	if !meekOrients(p, 0, 2) {
		t.Error("R2 should force 0→2")
	}
	if meekOrients(p, 2, 0) {
		t.Error("R2 must not fire for the cyclic direction")
	}
}

func TestOrientMeekR3(t *testing.T) {
	// a—b, a—c, a—d, c→b, d→b, c and d nonadjacent ⇒ a→b.
	p := graph.NewPDAG(4)
	const a, b, c, d = 0, 1, 2, 3
	p.AddUndirected(a, b)
	p.AddUndirected(a, c)
	p.AddUndirected(a, d)
	p.AddUndirected(c, b)
	p.Orient(c, b)
	p.AddUndirected(d, b)
	p.Orient(d, b)
	if !meekOrients(p, a, b) {
		t.Error("R3 should force a→b")
	}
}

func TestOrientConflictFirstComeWins(t *testing.T) {
	// Two overlapping unshielded colliders both claim edge 1—2:
	// 0—1—2 (collider at 1: sepset(0,2) = {}) and 1—2—3 (collider at 2:
	// sepset(1,3) = {}). Orientation must not crash, and edge 1-2 gets
	// exactly one direction.
	skel := graph.NewUndirected(4)
	skel.AddEdge(0, 1)
	skel.AddEdge(1, 2)
	skel.AddEdge(2, 3)
	seps := NewSepsets(4)
	seps.Put(0, 2, nil)
	seps.Put(1, 3, nil)
	seps.Put(0, 3, nil)
	p := OrientEdges(skel, seps)
	d12 := p.HasDirected(1, 2)
	d21 := p.HasDirected(2, 1)
	if d12 && d21 {
		t.Error("edge oriented both ways")
	}
	if !d12 && !d21 && !p.HasUndirected(1, 2) {
		t.Error("edge vanished")
	}
}

func TestOrientRecoversCancerVStructure(t *testing.T) {
	// Cancer: pollution(0)→cancer(2)←smoker(1), cancer→xray(3),
	// cancer→dyspnea(4). The unshielded collider at cancer orients
	// 0→2←1, and Meek R1 then forces 2→3 and 2→4. (Edge recovery on weak
	// 0-2 edge is hard from samples; here we orient the true skeleton.)
	net := bn.Cancer()
	skel := net.DAG().Skeleton()
	seps := NewSepsets(5)
	// pollution ⊥ smoker (marginally): sepset {}.
	seps.Put(0, 1, nil)
	// non-adjacent pairs separated by cancer.
	for _, pr := range [][2]int{{0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4}} {
		seps.Put(pr[0], pr[1], []int{2})
	}
	p := OrientEdges(skel, seps)
	for _, want := range [][2]int{{0, 2}, {1, 2}, {2, 3}, {2, 4}} {
		if !p.HasDirected(want[0], want[1]) {
			t.Errorf("edge %v not oriented; directed=%v undirected=%v",
				want, p.DirectedEdges(), p.UndirectedEdges())
		}
	}
	// Fully oriented: the CPDAG of Cancer has no undirected edges.
	if len(p.UndirectedEdges()) != 0 {
		t.Errorf("leftover undirected edges: %v", p.UndirectedEdges())
	}
}

func TestLearnProducesOrientedResult(t *testing.T) {
	// End-to-end: the v-structure in Cancer must be discovered from data.
	net := bn.Cancer()
	d, err := net.Sample(300000, 21, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(d, Config{P: 4, Epsilon: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if res.PDAG == nil || res.Sepsets == nil {
		t.Fatal("orientation results missing")
	}
	// If the skeleton contains smoker(1)—cancer(2) and xray(3) edges, the
	// learner should have oriented 2→3 or found the collider; at minimum
	// the PDAG must be consistent: same adjacencies as the skeleton.
	for _, e := range res.Graph.Edges() {
		if !res.PDAG.Adjacent(e[0], e[1]) {
			t.Errorf("PDAG lost edge %v", e)
		}
	}
	if res.PDAG.NumEdges() != res.Graph.NumEdges() {
		t.Errorf("PDAG has %d edges, skeleton %d", res.PDAG.NumEdges(), res.Graph.NumEdges())
	}
}

func TestLearnChainPDAGHasNoFalseColliders(t *testing.T) {
	// A pure chain has no v-structures: every edge should stay undirected
	// in the CPDAG (the chain's equivalence class is the undirected path).
	net := bn.Chain(5, 2, 0.85)
	d, err := net.Sample(80000, 22, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(d, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if de := res.PDAG.DirectedEdges(); len(de) != 0 {
		t.Errorf("chain CPDAG has directed edges: %v", de)
	}
}
