package structure

import (
	"sort"

	"waitfreebn/internal/graph"
)

// Sepsets records, for pairs of variables judged conditionally
// independent, one separating set that witnessed the independence. Keys
// are canonical pair indexes (i < j encoded as i*n + j); the empty slice
// is a valid witness (marginal independence).
type Sepsets struct {
	n    int
	sets map[int][]int
}

// NewSepsets returns an empty store for n variables.
func NewSepsets(n int) *Sepsets {
	return &Sepsets{n: n, sets: make(map[int][]int)}
}

func (s *Sepsets) key(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*s.n + j
}

// Put records a separating set for the pair (i, j), copying the slice.
func (s *Sepsets) Put(i, j int, set []int) {
	cp := make([]int, len(set))
	copy(cp, set)
	sort.Ints(cp)
	s.sets[s.key(i, j)] = cp
}

// Get returns the recorded separating set and whether one exists.
func (s *Sepsets) Get(i, j int) ([]int, bool) {
	set, ok := s.sets[s.key(i, j)]
	return set, ok
}

// Contains reports whether z is in the recorded separating set of (i, j);
// it is false when no set is recorded.
func (s *Sepsets) Contains(i, j, z int) bool {
	set, ok := s.Get(i, j)
	if !ok {
		return false
	}
	k := sort.SearchInts(set, z)
	return k < len(set) && set[k] == z
}

// Len returns the number of recorded pairs.
func (s *Sepsets) Len() int { return len(s.sets) }

// OrientEdges converts a learned skeleton into a partially directed graph:
// first v-structure detection (for every path x—z—y with x, y nonadjacent,
// orient x→z←y iff z is outside the separating set of (x, y)), then Meek's
// rules R1–R3 applied to closure. R4 is omitted: it cannot fire without
// background-knowledge orientations (Meek, UAI 1995).
//
// Conflicting v-structure claims (an edge both x→z and z→x) are resolved
// first-come in deterministic vertex order, the usual PC-style tie-break.
func OrientEdges(skel *graph.Undirected, sepsets *Sepsets) *graph.PDAG {
	p := graph.FromSkeleton(skel)
	n := skel.N()

	// --- v-structures ---
	for z := 0; z < n; z++ {
		ns := skel.Neighbors(z)
		for a := 0; a < len(ns); a++ {
			for b := a + 1; b < len(ns); b++ {
				x, y := ns[a], ns[b]
				if skel.HasEdge(x, y) {
					continue // shielded triple
				}
				if sepsets.Contains(x, y, z) {
					continue // z screens x from y: not a collider
				}
				// Unshielded collider x→z←y. Orient what is still
				// undirected; skip silently on conflict.
				p.Orient(x, z)
				p.Orient(y, z)
			}
		}
	}

	meekClosure(p)
	return p
}

// meekOrients reports whether Meek's rules R1–R3 force a→b for the
// undirected edge a—b.
func meekOrients(p *graph.PDAG, a, b int) bool {
	// R1: ∃ c→a with c, b nonadjacent  ⇒  a→b
	for _, c := range p.DirectedParents(a) {
		if !p.Adjacent(c, b) {
			return true
		}
	}
	// R2: ∃ c with a→c→b  ⇒  a→b
	for _, c := range p.DirectedChildren(a) {
		if p.HasDirected(c, b) {
			return true
		}
	}
	// R3: ∃ c, d nonadjacent with a—c→b and a—d→b  ⇒  a→b
	var mids []int
	for _, c := range p.UndirectedNeighbors(a) {
		if p.HasDirected(c, b) {
			mids = append(mids, c)
		}
	}
	for i := 0; i < len(mids); i++ {
		for j := i + 1; j < len(mids); j++ {
			if !p.Adjacent(mids[i], mids[j]) {
				return true
			}
		}
	}
	return false
}
