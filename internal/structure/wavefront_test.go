package structure

import (
	"strings"
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/stats"
)

// requireSameResult asserts the parts of two Results that the wavefront
// guarantees bit-identical: the skeleton, every separating set, and the
// deterministic counters.
func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	ew, eg := want.Graph.Edges(), got.Graph.Edges()
	if len(ew) != len(eg) {
		t.Fatalf("%s: %d edges != %d edges\nwant %v\ngot  %v", label, len(ew), len(eg), ew, eg)
	}
	for i := range ew {
		if ew[i] != eg[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", label, i, ew, eg)
		}
	}
	if want.Sepsets.Len() != got.Sepsets.Len() {
		t.Fatalf("%s: sepset count %d != %d", label, want.Sepsets.Len(), got.Sepsets.Len())
	}
	n := want.Graph.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sw, okw := want.Sepsets.Get(i, j)
			sg, okg := got.Sepsets.Get(i, j)
			if okw != okg || !sameVars(sw, sg) {
				t.Fatalf("%s: sepset(%d,%d): %v/%v vs %v/%v", label, i, j, sw, okw, sg, okg)
			}
		}
	}
	type counters struct{ draft, thicken, thin, ci, trunc int }
	cw := counters{want.DraftEdges, want.ThickenEdges, want.ThinnedEdges, want.CITests, want.CondSetTruncations}
	cg := counters{got.DraftEdges, got.ThickenEdges, got.ThinnedEdges, got.CITests, got.CondSetTruncations}
	if cw != cg {
		t.Fatalf("%s: counters differ: %+v vs %+v", label, cw, cg)
	}
}

// TestWavefrontMatchesSerial is the central equivalence property of the
// speculative scheduler: with PhasePar on, the learned skeleton, the
// separating sets, and every deterministic counter are identical to the
// serial learner's at any worker count, for both CI decision rules. The
// tiny wave size forces many waves (and usually requeues) so the
// invalidation path is exercised, not just the all-valid fast path.
func TestWavefrontMatchesSerial(t *testing.T) {
	net := bn.RandomDAG(12, 2, 0.3, 3, 0.6, 21)
	d, err := net.Sample(40000, 22, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		base Config
	}{
		{"mi-threshold", Config{Epsilon: 0.003, MaxCondSet: 3}},
		{"g-test", Config{Test: TestG, Alpha: 0.01, MaxCondSet: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serialCfg := tc.base
			serialCfg.P = 2
			want, err := LearnFromTable(pt, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			var waveRef *Result
			for _, p := range []int{1, 4, 8} {
				cfg := tc.base
				cfg.P = p
				cfg.PhasePar = true
				cfg.WaveSize = 7
				got, err := LearnFromTable(pt, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, tc.name, want, got)
				if got.Waves == 0 {
					t.Errorf("P=%d: wavefront ran no waves", p)
				}
				// The wavefront-only counters must not depend on P either.
				if waveRef == nil {
					waveRef = got
					t.Logf("waves=%d requeued=%d wasted=%d ci=%d",
						got.Waves, got.Requeued, got.WastedCITests, got.CITests)
				} else if got.Waves != waveRef.Waves || got.Requeued != waveRef.Requeued ||
					got.WastedCITests != waveRef.WastedCITests {
					t.Errorf("P=%d: wave counters vary with P: (%d,%d,%d) vs (%d,%d,%d)",
						p, got.Waves, got.Requeued, got.WastedCITests,
						waveRef.Waves, waveRef.Requeued, waveRef.WastedCITests)
				}
			}
		})
	}
}

// TestWavefrontCacheOnOffEquivalence: the marginal cache is a pure
// memoization — disabling it must not change any learned output, and an
// enabled cache must actually be exercised.
func TestWavefrontCacheOnOffEquivalence(t *testing.T) {
	net := bn.Asia()
	d, err := net.Sample(50000, 23, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	off, err := LearnFromTable(pt, Config{P: 4, PhasePar: true, WaveSize: 5, MargCacheCells: -1})
	if err != nil {
		t.Fatal(err)
	}
	if off.Cache.Hits+off.Cache.Misses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", off.Cache)
	}
	on, err := LearnFromTable(pt, Config{P: 4, PhasePar: true, WaveSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "cache on vs off", off, on)
	if on.Cache.Misses == 0 {
		t.Errorf("enabled cache saw no lookups: %+v", on.Cache)
	}
	if on.Cache.String() == "" || !strings.Contains(on.Cache.String(), "hit rate") {
		t.Errorf("cache stats string: %q", on.Cache.String())
	}
}

// TestFlattenedLayoutContract pins the layout agreement between the CI
// search and the stats package: the search marginalizes over the varset
// (conditioning..., x, y) and feeds the counts straight into
// stats.CondMutualInfoCounts as an rz×ri×rj row-major array. The table's
// marginal must therefore equal the contingency table built directly from
// the dataset rows with z-major flattening — cell-for-cell, not just in
// the CMI value it produces.
func TestFlattenedLayoutContract(t *testing.T) {
	net := bn.RandomDAG(6, 3, 0.4, 2, 0.5, 31)
	d, err := net.Sample(5000, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		z    []int
		x, y int
	}{
		{"empty conditioning", nil, 0, 1},
		{"single z", []int{2}, 0, 1},
		{"two z", []int{1, 3}, 0, 4},
		{"two z unsorted endpoints", []int{0, 5}, 4, 2},
		{"three z", []int{0, 2, 4}, 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vars := append(append([]int(nil), tc.z...), tc.x, tc.y)
			mg := pt.Marginalize(vars, 2)

			// Brute-force contingency table from the raw rows, flattening
			// the axes in the same (z..., x, y) order, leading axis major.
			cells := 1
			for _, v := range vars {
				cells *= d.Cardinality(v)
			}
			brute := make([]uint64, cells)
			for i := 0; i < d.NumSamples(); i++ {
				idx := 0
				for _, v := range vars {
					idx = idx*d.Cardinality(v) + int(d.Get(i, v))
				}
				brute[idx]++
			}
			if len(mg.Counts) != cells {
				t.Fatalf("marginal has %d cells, want %d", len(mg.Counts), cells)
			}
			for c := range brute {
				if mg.Counts[c] != brute[c] {
					t.Fatalf("cell %d: table %d != brute force %d", c, mg.Counts[c], brute[c])
				}
			}

			rz := 1
			for _, v := range tc.z {
				rz *= d.Cardinality(v)
			}
			ri, rj := d.Cardinality(tc.x), d.Cardinality(tc.y)
			got := stats.CondMutualInfoCounts(mg.Counts, rz, ri, rj)
			want := stats.CondMutualInfoCounts(brute, rz, ri, rj)
			if got != want {
				t.Fatalf("CMI from table %v != CMI from rows %v", got, want)
			}
		})
	}
}

// TestTruncateSelectsByRelevance unit-tests the MaxCondSet clipping rule:
// keep the candidates with the highest MI(c,x)+MI(c,y), ties broken by
// ascending id, result sorted ascending.
func TestTruncateSelectsByRelevance(t *testing.T) {
	mi := core.NewMIMatrix(8)
	// Relevance to the pair (6, 7): var 1 strongest, then 4, then 0; the
	// rest weaker, with 2 and 3 tied.
	for c, v := range map[int]float64{0: 0.3, 1: 0.9, 2: 0.1, 3: 0.1, 4: 0.5, 5: 0.05} {
		mi.Set(c, 6, v)
		mi.Set(c, 7, 0)
	}
	e := &ciEval{cfg: Config{MaxCondSet: 3}.withDefaults(), mi: mi}
	e.cfg.MaxCondSet = 3
	got := e.truncate([]int{0, 1, 2, 3, 4, 5}, 6, 7)
	if !sameVars(got, []int{0, 1, 4}) {
		t.Errorf("kept %v, want [0 1 4]", got)
	}
	if e.truncated != 1 {
		t.Errorf("truncated counter = %d", e.truncated)
	}
	// The tie between 2 and 3 resolves to the lower id.
	e2 := &ciEval{cfg: e.cfg, mi: mi}
	got2 := e2.truncate([]int{2, 3, 5, 1}, 6, 7)
	if !sameVars(got2, []int{1, 2, 3}) {
		t.Errorf("tie-break kept %v, want [1 2 3]", got2)
	}
	// No MI matrix: deterministic sorted-prefix fallback.
	e3 := &ciEval{cfg: e.cfg}
	if got3 := e3.truncate([]int{1, 2, 3, 4}, 6, 7); !sameVars(got3, []int{1, 2, 3}) {
		t.Errorf("fallback kept %v, want [1 2 3]", got3)
	}
}

// TestCondSetTruncationCounted drives truncation end to end on a dense
// network with a tiny MaxCondSet and checks the event is counted and the
// outcome reproducible.
func TestCondSetTruncationCounted(t *testing.T) {
	net := bn.RandomDAG(10, 2, 0.5, 4, 0.7, 41)
	d, err := net.Sample(30000, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := LearnFromTable(pt, Config{P: 2, MaxCondSet: 1, Epsilon: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	if a.CondSetTruncations == 0 {
		t.Skip("no candidate set exceeded MaxCondSet=1 on this draw")
	}
	b, err := LearnFromTable(pt, Config{P: 4, MaxCondSet: 1, Epsilon: 0.003})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "truncation determinism", a, b)
}

// TestGTestSmallAlpha is the regression test for the user-reachable panic:
// -gtest -alpha 0.001 used to die inside stats.ChiSquareCritical. Any
// alpha in (0, 0.5] must now work, and stricter alphas must not admit
// more edges than looser ones.
func TestGTestSmallAlpha(t *testing.T) {
	net := bn.Chain(6, 2, 0.85)
	d, err := net.Sample(60000, 51, 4)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Learn(d, Config{P: 4, Test: TestG, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	m := CompareSkeleton(strict.Graph, net.DAG())
	if m.FalseNegatives != 0 {
		t.Errorf("alpha=0.001 dropped true chain edges: %+v %v", m, strict.Graph.Edges())
	}
	loose, err := Learn(d, Config{P: 4, Test: TestG, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Graph.NumEdges() > loose.Graph.NumEdges() {
		t.Errorf("stricter alpha found more edges (%d) than looser (%d)",
			strict.Graph.NumEdges(), loose.Graph.NumEdges())
	}
}

// TestGTestRejectsBadAlpha: significance levels outside (0, 0.5] are a
// configuration error reported by the API, never a panic.
func TestGTestRejectsBadAlpha(t *testing.T) {
	d := dataset.NewUniformCard(1000, 3, 2)
	d.UniformIndependent(61, 2)
	for _, alpha := range []float64{0.7, 1.0, -0.01} {
		if _, err := Learn(d, Config{Test: TestG, Alpha: alpha}); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
	pt, _, err := core.Build(d, core.Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LearnFromTable(pt, Config{Test: TestG, Alpha: 0.7}); err == nil {
		t.Error("LearnFromTable accepted alpha=0.7")
	}
}

// TestConfigWavefrontDefaults pins the resolution of the new knobs.
func TestConfigWavefrontDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.WaveSize != 32 || c.PhasePar {
		t.Errorf("defaults: %+v", c)
	}
	if c2 := (Config{WaveSize: 9}).withDefaults(); c2.WaveSize != 9 {
		t.Errorf("explicit wave size overridden: %+v", c2)
	}
	if err := (Config{Test: TestG}).withDefaults().validate(); err != nil {
		t.Errorf("default g-test config rejected: %v", err)
	}
}
