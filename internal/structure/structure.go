// Package structure implements Cheng et al.'s three-phase constraint-based
// Bayesian-network structure-learning algorithm (Artificial Intelligence
// 137(1-2):43-90, 2002) — drafting, thickening, thinning — on top of the
// parallel primitives in internal/core.
//
// The paper parallelizes phase 1 (drafting), whose dominant cost is the
// potential-table construction and the all-pairs mutual-information sweep;
// this package composes those primitives into the full learner so the
// primitives can be exercised end-to-end and edge recovery measured against
// ground-truth networks.
//
// The learner produces the undirected skeleton (the part the primitives
// accelerate) and then orients it into a partially directed graph via
// v-structure detection and Meek's rules, as Cheng et al.'s full algorithm
// does after thinning.
package structure

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/stats"
)

// TestKind selects the conditional-independence decision rule.
type TestKind int

const (
	// TestMIThreshold declares dependence when the (conditional) mutual
	// information is at least Epsilon bits — Cheng et al.'s rule.
	TestMIThreshold TestKind = iota
	// TestG declares dependence when the G statistic (2·N·ln2·I) exceeds
	// the χ² critical value at significance Alpha with the contingency
	// table's degrees of freedom — the classical statistical test the
	// paper's related work cites.
	TestG
)

// String returns the kind's human-readable name.
func (k TestKind) String() string {
	switch k {
	case TestMIThreshold:
		return "mi-threshold"
	case TestG:
		return "g-test"
	default:
		return "unknown"
	}
}

// Config parameterizes the learner. The zero value is usable: it applies
// the documented defaults.
type Config struct {
	// Epsilon is the mutual-information threshold below which variables
	// are considered independent (TestMIThreshold). Default 0.01 bits.
	Epsilon float64
	// Test selects the CI decision rule. Default TestMIThreshold.
	Test TestKind
	// Alpha is the significance level for TestG. Default 0.01.
	Alpha float64
	// P is the number of workers for the parallel phases. 0 = GOMAXPROCS.
	P int
	// Schedule selects the all-pairs MI strategy. Default MIFused.
	Schedule core.MISchedule
	// MaxCondSet caps the size of conditioning sets in try-to-separate.
	// Default 6; larger sets make CI estimates unreliable and marginal
	// tables exponentially big. When a candidate set exceeds the cap, the
	// MaxCondSet candidates with the highest pairwise relevance to the
	// tested pair (MI to either endpoint) are kept; every truncation is
	// counted in Result.CondSetTruncations.
	MaxCondSet int
	// PhasePar enables the speculative wavefront scheduler for phases 2-3
	// (thickening and thinning): CI tests for a wave of pending pairs are
	// evaluated concurrently against a snapshot of the graph and committed
	// in the serial order, so the result is bit-identical to the serial
	// learner. Off by default.
	PhasePar bool
	// WaveSize caps how many pending pairs/edges one wavefront round
	// speculates on. Default 32. Larger waves expose more parallelism and
	// fuse more marginalizations per table scan but waste more work when a
	// committed decision invalidates the rest of the wave — thickening in
	// particular invalidates aggressively (every kept edge reshapes the
	// candidate sets behind it), and measured waste grows superlinearly in
	// the wave size while thinning is already near its fusion ceiling at 32.
	WaveSize int
	// MargCacheCells bounds the varset→marginal cache, in table cells
	// (≈ 8·cells bytes). 0 enables a default-sized cache (2^21 cells) when
	// PhasePar is set and disables it otherwise; negative disables the
	// cache unconditionally.
	MargCacheCells int
	// Freeze captures a frozen columnar snapshot of the potential table
	// before the read phases run, so every scan (drafting MI, CI-test
	// marginals, wavefront batches) streams dense sorted memory instead of
	// the partition hashtables. The snapshot changes no results — scans are
	// bit-identical either way. Off by default at the API level; the CLIs
	// enable it for learning (-freeze).
	Freeze bool
	// PrevMI, when non-nil, enables delta-aware drafting: the all-pairs MI
	// sweep recomputes only pairs whose variables' marginal distributions
	// moved (beyond MIDeltaThreshold) since the epoch PrevMIEpoch, reusing
	// the rest from PrevMI. Requires a table produced by an incremental
	// builder snapshot whose change summary is anchored at PrevMIEpoch;
	// anything else falls back to the full sweep (Result.MIDelta.Full).
	PrevMI      *core.MIMatrix
	PrevMIEpoch uint64
	// MIDeltaThreshold is the total-variation distance below which a moved
	// marginal still counts as clean for PrevMI reuse. 0 = exact (any
	// distribution change recomputes the pair).
	MIDeltaThreshold float64
	// BuildOptions configures the wait-free table construction.
	BuildOptions core.Options
}

// defaultMargCacheCells sizes the marginal cache when MargCacheCells is 0
// and the wavefront is on: 2^21 cells ≈ 16 MiB of counts.
const defaultMargCacheCells = 1 << 21

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.MaxCondSet <= 0 {
		c.MaxCondSet = 6
	}
	if c.WaveSize <= 0 {
		c.WaveSize = 32
	}
	return c
}

// validate rejects configurations the statistical machinery cannot honor.
// It runs after withDefaults, so only explicitly bad values are caught; in
// particular it turns the former stats.ChiSquareCritical panic on exotic
// significance levels into an error at the API boundary.
func (c Config) validate() error {
	if c.Test == TestG && !(c.Alpha > 0 && c.Alpha <= 0.5) {
		return fmt.Errorf("structure: g-test significance alpha = %v outside (0, 0.5]", c.Alpha)
	}
	return nil
}

// Result reports the learned skeleton and per-phase instrumentation.
type Result struct {
	Graph   *graph.Undirected // learned skeleton
	PDAG    *graph.PDAG       // skeleton + v-structures + Meek-rule orientations
	MI      *core.MIMatrix    // all-pairs mutual information from drafting
	Sepsets *Sepsets          // separating sets found by the CI search

	DraftEdges   int // edges added in phase 1
	ThickenEdges int // edges added in phase 2
	ThinnedEdges int // edges removed in phase 3
	CITests      int // conditional-independence tests evaluated
	// CondSetTruncations counts candidate conditioning sets clipped to
	// MaxCondSet by the MI-relevance selection.
	CondSetTruncations int

	// Wavefront counters (zero when PhasePar is off). All are deterministic
	// functions of the input — wave composition does not depend on P — so
	// they are reproducible across worker counts.
	Waves         int // speculation rounds run by phases 2-3
	Requeued      int // wave items invalidated by an earlier commit and retried
	WastedCITests int // CI tests computed speculatively and then discarded

	BuildTime   time.Duration // potential-table construction
	DraftTime   time.Duration // all-pairs MI + draft assembly
	ThickenTime time.Duration
	ThinTime    time.Duration

	BuildStats core.Stats       // wait-free construction counters
	Cache      core.CacheStats  // marginal-cache counters (zero when disabled)
	Freeze     core.FreezeStats // columnar-snapshot stats (zero when Config.Freeze is off)
	// MIDelta reports what the delta-aware draft reused versus recomputed
	// (zero when Config.PrevMI is nil); MIEpoch is the freeze epoch the
	// returned MI matrix describes, for threading into the next learn.
	MIDelta core.MIDeltaStats
	MIEpoch uint64
}

// Learn runs the full three-phase algorithm on a dataset: the potential
// table is built with the wait-free primitive, then drafting, thickening
// and thinning produce the skeleton.
func Learn(data *dataset.Dataset, cfg Config) (*Result, error) {
	return LearnCtx(context.Background(), data, cfg)
}

// LearnCtx is Learn under the fault-tolerant execution contract: the build
// and every parallel phase observe ctx, and cancellation between CI tests
// aborts the search with context.Canceled (or DeadlineExceeded) rather
// than running the remaining phases.
func LearnCtx(ctx context.Context, data *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	pt, st, err := core.BuildCtx(ctx, data, cfg.BuildOptions)
	if err != nil {
		return nil, fmt.Errorf("structure: %w", err)
	}
	res, err := LearnFromTableCtx(ctx, pt, cfg)
	if err != nil {
		return nil, err
	}
	res.BuildTime = time.Since(start) - res.DraftTime - res.ThickenTime - res.ThinTime
	res.BuildStats = st
	return res, nil
}

// LearnFromTable runs phases 1-3 against an existing potential table.
func LearnFromTable(pt *core.PotentialTable, cfg Config) (*Result, error) {
	return LearnFromTableCtx(context.Background(), pt, cfg)
}

// LearnFromTableCtx is LearnFromTable under the fault-tolerant execution
// contract (see LearnCtx).
func LearnFromTableCtx(ctx context.Context, pt *core.PotentialTable, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := pt.Codec().NumVars()
	if n < 2 {
		return nil, fmt.Errorf("structure: need at least 2 variables, have %d", n)
	}
	res := &Result{Sepsets: NewSepsets(n)}
	if cfg.Freeze {
		// Construction has completed by the time a table reaches the
		// learner, so the partitions are quiescent — the freeze point the
		// snapshot contract requires.
		st, err := pt.FreezeCtx(ctx, cfg.P)
		if err != nil {
			return nil, err
		}
		res.Freeze = st
	}
	l := &learner{ctx: ctx, pt: pt, cfg: cfg, res: res}
	if cells := cfg.MargCacheCells; cells > 0 || (cells == 0 && cfg.PhasePar) {
		if cells <= 0 {
			cells = defaultMargCacheCells
		}
		l.cache = core.NewMarginalCache(cells, cfg.BuildOptions.Obs)
	}

	t0 := time.Now()
	var mi *core.MIMatrix
	var err error
	if cfg.PrevMI != nil {
		var dst core.MIDeltaStats
		mi, dst, err = pt.AllPairsMIDeltaCtx(ctx, cfg.P, cfg.Schedule, cfg.PrevMI, cfg.PrevMIEpoch, cfg.MIDeltaThreshold)
		if err != nil {
			return nil, err
		}
		res.MIDelta = dst
	} else {
		mi, err = pt.AllPairsMICtx(ctx, cfg.P, cfg.Schedule)
		if err != nil {
			return nil, err
		}
	}
	res.MI = mi
	res.MIEpoch = pt.FreezeEpoch()
	g, deferred := l.draft(mi)
	res.Graph = g
	res.DraftTime = time.Since(t0)

	t1 := time.Now()
	if cfg.PhasePar {
		err = l.thickenWave(g, deferred)
	} else {
		err = l.thicken(g, deferred)
	}
	if err != nil {
		return nil, err
	}
	res.ThickenTime = time.Since(t1)

	t2 := time.Now()
	if cfg.PhasePar {
		err = l.thinWave(g)
	} else {
		err = l.thin(g)
	}
	if err != nil {
		return nil, err
	}
	res.ThinTime = time.Since(t2)

	res.PDAG = OrientEdges(g, res.Sepsets)
	res.Cache = l.cache.Stats()
	publishLearnMetrics(cfg.BuildOptions.Obs, res)
	return res, nil
}

type pair struct {
	i, j int
	mi   float64
}

type learner struct {
	ctx   context.Context
	pt    *core.PotentialTable
	cfg   Config
	res   *Result
	cache *core.MarginalCache // nil when disabled
}

// checkCtx is the learner's cancellation point, consulted between CI tests
// and at phase-loop boundaries.
func (l *learner) checkCtx() error {
	if l.ctx.Err() != nil {
		return context.Cause(l.ctx)
	}
	return nil
}

// draft is phase 1: sort dependent pairs by decreasing MI and add each
// edge whose endpoints are not already connected by an open path; pairs
// skipped because a path exists are deferred to thickening.
func (l *learner) draft(mi *core.MIMatrix) (*graph.Undirected, []pair) {
	n := mi.N
	var pairs []pair
	mi.ForEachPair(func(i, j int, v float64) {
		if dependentStat(l.pt, l.cfg, v, i, j, 1) {
			pairs = append(pairs, pair{i, j, v})
		}
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].mi != pairs[b].mi {
			return pairs[a].mi > pairs[b].mi
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})

	g := graph.NewUndirected(n)
	var deferred []pair
	for _, p := range pairs {
		if g.HasPath(p.i, p.j, nil) {
			deferred = append(deferred, p)
		} else {
			g.AddEdge(p.i, p.j)
			l.res.DraftEdges++
		}
	}
	return g, deferred
}

// thicken is phase 2: for every deferred pair, add the edge unless a
// conditional-independence test separates the endpoints.
func (l *learner) thicken(g *graph.Undirected, deferred []pair) error {
	for _, p := range deferred {
		if err := l.checkCtx(); err != nil {
			return err
		}
		sep, err := l.tryToSeparate(g, p.i, p.j)
		if err != nil {
			return err
		}
		if !sep {
			g.AddEdge(p.i, p.j)
			l.res.ThickenEdges++
		}
	}
	return nil
}

// thin is phase 3: every edge whose endpoints remain connected without it
// is temporarily removed and permanently dropped if a CI test separates
// the endpoints.
func (l *learner) thin(g *graph.Undirected) error {
	for _, e := range g.Edges() {
		if err := l.checkCtx(); err != nil {
			return err
		}
		u, v := e[0], e[1]
		if !g.HasEdge(u, v) {
			continue // removed earlier in this phase
		}
		if !g.AdjacencyPath(u, v) {
			continue // the edge is the only connection; keep it
		}
		g.RemoveEdge(u, v)
		sep, err := l.tryToSeparate(g, u, v)
		if err != nil {
			g.AddEdge(u, v) // leave the graph structurally consistent
			return err
		}
		if sep {
			l.res.ThinnedEdges++
		} else {
			g.AddEdge(u, v)
		}
	}
	return nil
}

// tryToSeparate is the serial entry into the CI search: it computes the
// candidate conditioning sets from the live graph, runs the shared ciEval
// machinery on them, and commits the outcome (counters, sepset) directly.
func (l *learner) tryToSeparate(g *graph.Undirected, x, y int) (bool, error) {
	e := l.newEval(l.ctx, &directMargSource{l: l})
	set, sep, err := e.tryToSeparate(g.NeighborsOnPaths(x, y), g.NeighborsOnPaths(y, x), x, y)
	l.res.CITests += e.tests
	l.res.CondSetTruncations += e.truncated
	if err != nil {
		return false, err
	}
	if sep {
		l.res.Sepsets.Put(x, y, set)
	}
	return sep, nil
}

// newEval builds a ciEval bound to a marginal source. The serial learner
// and the wavefront scheduler share this machinery, so a speculative CI
// decision is the same pure function of (candidate sets, pair, table,
// config) as the serial one — the heart of the bit-identical guarantee.
func (l *learner) newEval(ctx context.Context, src margSource) *ciEval {
	return &ciEval{ctx: ctx, pt: l.pt, cfg: l.cfg, mi: l.res.MI, src: src}
}

// margSource supplies marginal tables for batches of varsets. The serial
// path computes them in place; the wavefront path posts the request to a
// coordinator that fuses requests from the whole wave into shared scans.
type margSource interface {
	marginals(varsets [][]int) ([]*core.Marginal, error)
}

// directMargSource computes marginals immediately through the (optionally
// cached) fused entry point.
type directMargSource struct{ l *learner }

func (s *directMargSource) marginals(varsets [][]int) ([]*core.Marginal, error) {
	return s.l.pt.MarginalizeManyCachedCtx(s.l.ctx, varsets, s.l.cfg.P, s.l.cache)
}

// ciEval runs Cheng et al.'s quantitative CI search for one pair. Test and
// truncation counts accumulate locally so a speculative evaluation that is
// later discarded never pollutes Result's deterministic counters.
type ciEval struct {
	ctx context.Context
	pt  *core.PotentialTable
	cfg Config
	mi  *core.MIMatrix
	src margSource

	tests     int // CI tests evaluated
	truncated int // candidate sets clipped to MaxCondSet
}

// checkCtx is the evaluation's cancellation point, consulted between
// greedy-shrink rounds.
func (e *ciEval) checkCtx() error {
	if e.ctx.Err() != nil {
		return context.Cause(e.ctx)
	}
	return nil
}

// tryToSeparate implements the quantitative CI search given the two
// candidate conditioning sets (the neighbors of each endpoint that lie on
// paths to the other): greedily shrink each while the conditional mutual
// information does not increase. Returns the separating set C achieving
// independence of x and y given C, if one is found.
func (e *ciEval) tryToSeparate(n1, n2 []int, x, y int) ([]int, bool, error) {
	// Try the smaller candidate set first (paper's heuristic), then the
	// other if the first fails.
	first, second := n1, n2
	if len(n2) < len(n1) {
		first, second = n2, n1
	}
	set, ok, err := e.separates(first, x, y)
	if err != nil || ok {
		return set, ok, err
	}
	if !sameVars(first, second) {
		return e.separates(second, x, y)
	}
	return nil, false, nil
}

func sameVars(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// truncate clips a too-large candidate conditioning set to MaxCondSet. The
// kept candidates are those most relevant to the tested pair — highest
// MI(c,x) + MI(c,y) from the drafting phase's all-pairs matrix, ties broken
// by ascending variable id — rather than whichever ones happened to sort
// first, so the selection is principled and independent of neighbor-list
// ordering. The kept set is returned sorted ascending, preserving the
// (conditioning..., x, y) layout contract. Without an MI matrix (not
// reachable through the public entry points) it falls back to the sorted
// prefix, which is still deterministic.
func (e *ciEval) truncate(c []int, x, y int) []int {
	e.truncated++
	if e.mi == nil {
		return c[:e.cfg.MaxCondSet]
	}
	sort.SliceStable(c, func(a, b int) bool {
		sa := e.mi.At(c[a], x) + e.mi.At(c[a], y)
		sb := e.mi.At(c[b], x) + e.mi.At(c[b], y)
		if sa != sb {
			return sa > sb
		}
		return c[a] < c[b]
	})
	c = c[:e.cfg.MaxCondSet]
	sort.Ints(c)
	return c
}

// separates runs the greedy shrink loop on one candidate conditioning set,
// returning the separating set it found.
func (e *ciEval) separates(cand []int, x, y int) ([]int, bool, error) {
	if len(cand) == 0 {
		return nil, false, nil
	}
	c := append([]int(nil), cand...)
	if len(c) > e.cfg.MaxCondSet {
		c = e.truncate(c, x, y)
	}
	v, err := e.cmi(x, y, c)
	if err != nil {
		return nil, false, err
	}
	if !e.dependent(v, x, y, e.condCells(c)) {
		return c, true, nil
	}
	for len(c) > 1 {
		if err := e.checkCtx(); err != nil {
			return nil, false, err
		}
		// The |C| candidate reductions are independent marginalizations;
		// batch them through the fused multi-marginal primitive so the
		// table is scanned once per greedy round instead of once per
		// candidate.
		reductions := make([][]int, len(c))
		varsets := make([][]int, len(c))
		for k := range c {
			reduced := make([]int, 0, len(c)-1)
			reduced = append(reduced, c[:k]...)
			reduced = append(reduced, c[k+1:]...)
			reductions[k] = reduced
			vars := make([]int, 0, len(reduced)+2)
			vars = append(vars, reduced...)
			vars = append(vars, x, y)
			varsets[k] = vars
		}
		marginals, err := e.src.marginals(varsets)
		if err != nil {
			return nil, false, err
		}
		e.tests += len(c)
		ri := e.pt.Codec().Cardinality(x)
		rj := e.pt.Codec().Cardinality(y)
		bestIdx, bestV := -1, v
		for k := range c {
			vk := stats.CondMutualInfoCounts(marginals[k].Counts, e.condCells(reductions[k]), ri, rj)
			if !e.dependent(vk, x, y, e.condCells(reductions[k])) {
				return reductions[k], true, nil
			}
			if vk <= bestV {
				bestIdx, bestV = k, vk
			}
		}
		if bestIdx < 0 {
			return nil, false, nil // every reduction increases dependence
		}
		c = append(c[:bestIdx], c[bestIdx+1:]...)
		v = bestV
	}
	return nil, false, nil
}

// condCells returns the joint state count of a conditioning set, the rz
// axis of the flattened contingency table.
func (e *ciEval) condCells(z []int) int {
	rz := 1
	for _, zv := range z {
		rz *= e.pt.Codec().Cardinality(zv)
	}
	return rz
}

// dependent applies the configured CI decision rule to an observed
// (conditional) mutual information of statBits bits between variables x
// and y given a conditioning set with rz joint states.
func (e *ciEval) dependent(statBits float64, x, y, rz int) bool {
	return dependentStat(e.pt, e.cfg, statBits, x, y, rz)
}

// dependentStat is the CI decision rule shared by the drafting phase
// (which has no ciEval) and the CI search.
func dependentStat(pt *core.PotentialTable, cfg Config, statBits float64, x, y, rz int) bool {
	switch cfg.Test {
	case TestG:
		ri := pt.Codec().Cardinality(x)
		rj := pt.Codec().Cardinality(y)
		df := (ri - 1) * (rj - 1) * rz
		if df < 1 {
			df = 1
		}
		g := 2 * float64(pt.NumSamples()) * math.Ln2 * statBits
		return g > stats.ChiSquareCritical(df, cfg.Alpha)
	default:
		return statBits >= cfg.Epsilon
	}
}

// cmi computes I(x;y|Z) from the potential table by marginalizing over
// Z ∪ {x, y} (ordering Z first so the flattened layout matches
// stats.CondMutualInfoCounts).
func (e *ciEval) cmi(x, y int, z []int) (float64, error) {
	e.tests++
	vars := make([]int, 0, len(z)+2)
	vars = append(vars, z...)
	vars = append(vars, x, y)
	ms, err := e.src.marginals([][]int{vars})
	if err != nil {
		return 0, err
	}
	rz := e.condCells(z)
	ri := e.pt.Codec().Cardinality(x)
	rj := e.pt.Codec().Cardinality(y)
	return stats.CondMutualInfoCounts(ms[0].Counts, rz, ri, rj), nil
}

// SkeletonMetrics compares a learned skeleton against the skeleton of a
// ground-truth DAG.
type SkeletonMetrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	F1             float64
}

// CompareSkeleton evaluates edge recovery of learned against the skeleton
// of truth.
func CompareSkeleton(learned *graph.Undirected, truth *graph.DAG) SkeletonMetrics {
	if learned.N() != truth.N() {
		panic(fmt.Sprintf("structure: graphs have %d vs %d vertices", learned.N(), truth.N()))
	}
	sk := truth.Skeleton()
	var m SkeletonMetrics
	for _, e := range learned.Edges() {
		if sk.HasEdge(e[0], e[1]) {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	for _, e := range sk.Edges() {
		if !learned.HasEdge(e[0], e[1]) {
			m.FalseNegatives++
		}
	}
	if m.TruePositives+m.FalsePositives > 0 {
		m.Precision = float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
	}
	if m.TruePositives+m.FalseNegatives > 0 {
		m.Recall = float64(m.TruePositives) / float64(m.TruePositives+m.FalseNegatives)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
