// Package structure implements Cheng et al.'s three-phase constraint-based
// Bayesian-network structure-learning algorithm (Artificial Intelligence
// 137(1-2):43-90, 2002) — drafting, thickening, thinning — on top of the
// parallel primitives in internal/core.
//
// The paper parallelizes phase 1 (drafting), whose dominant cost is the
// potential-table construction and the all-pairs mutual-information sweep;
// this package composes those primitives into the full learner so the
// primitives can be exercised end-to-end and edge recovery measured against
// ground-truth networks.
//
// The learner produces the undirected skeleton (the part the primitives
// accelerate) and then orients it into a partially directed graph via
// v-structure detection and Meek's rules, as Cheng et al.'s full algorithm
// does after thinning.
package structure

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/stats"
)

// TestKind selects the conditional-independence decision rule.
type TestKind int

const (
	// TestMIThreshold declares dependence when the (conditional) mutual
	// information is at least Epsilon bits — Cheng et al.'s rule.
	TestMIThreshold TestKind = iota
	// TestG declares dependence when the G statistic (2·N·ln2·I) exceeds
	// the χ² critical value at significance Alpha with the contingency
	// table's degrees of freedom — the classical statistical test the
	// paper's related work cites.
	TestG
)

// String returns the kind's human-readable name.
func (k TestKind) String() string {
	switch k {
	case TestMIThreshold:
		return "mi-threshold"
	case TestG:
		return "g-test"
	default:
		return "unknown"
	}
}

// Config parameterizes the learner. The zero value is usable: it applies
// the documented defaults.
type Config struct {
	// Epsilon is the mutual-information threshold below which variables
	// are considered independent (TestMIThreshold). Default 0.01 bits.
	Epsilon float64
	// Test selects the CI decision rule. Default TestMIThreshold.
	Test TestKind
	// Alpha is the significance level for TestG. Default 0.01.
	Alpha float64
	// P is the number of workers for the parallel phases. 0 = GOMAXPROCS.
	P int
	// Schedule selects the all-pairs MI strategy. Default MIFused.
	Schedule core.MISchedule
	// MaxCondSet caps the size of conditioning sets in try-to-separate.
	// Default 6; larger sets make CI estimates unreliable and marginal
	// tables exponentially big.
	MaxCondSet int
	// BuildOptions configures the wait-free table construction.
	BuildOptions core.Options
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.01
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.MaxCondSet <= 0 {
		c.MaxCondSet = 6
	}
	return c
}

// Result reports the learned skeleton and per-phase instrumentation.
type Result struct {
	Graph   *graph.Undirected // learned skeleton
	PDAG    *graph.PDAG       // skeleton + v-structures + Meek-rule orientations
	MI      *core.MIMatrix    // all-pairs mutual information from drafting
	Sepsets *Sepsets          // separating sets found by the CI search

	DraftEdges   int // edges added in phase 1
	ThickenEdges int // edges added in phase 2
	ThinnedEdges int // edges removed in phase 3
	CITests      int // conditional-independence tests evaluated

	BuildTime   time.Duration // potential-table construction
	DraftTime   time.Duration // all-pairs MI + draft assembly
	ThickenTime time.Duration
	ThinTime    time.Duration

	BuildStats core.Stats // wait-free construction counters
}

// Learn runs the full three-phase algorithm on a dataset: the potential
// table is built with the wait-free primitive, then drafting, thickening
// and thinning produce the skeleton.
func Learn(data *dataset.Dataset, cfg Config) (*Result, error) {
	return LearnCtx(context.Background(), data, cfg)
}

// LearnCtx is Learn under the fault-tolerant execution contract: the build
// and every parallel phase observe ctx, and cancellation between CI tests
// aborts the search with context.Canceled (or DeadlineExceeded) rather
// than running the remaining phases.
func LearnCtx(ctx context.Context, data *dataset.Dataset, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	pt, st, err := core.BuildCtx(ctx, data, cfg.BuildOptions)
	if err != nil {
		return nil, fmt.Errorf("structure: %w", err)
	}
	res, err := LearnFromTableCtx(ctx, pt, cfg)
	if err != nil {
		return nil, err
	}
	res.BuildTime = time.Since(start) - res.DraftTime - res.ThickenTime - res.ThinTime
	res.BuildStats = st
	return res, nil
}

// LearnFromTable runs phases 1-3 against an existing potential table.
func LearnFromTable(pt *core.PotentialTable, cfg Config) (*Result, error) {
	return LearnFromTableCtx(context.Background(), pt, cfg)
}

// LearnFromTableCtx is LearnFromTable under the fault-tolerant execution
// contract (see LearnCtx).
func LearnFromTableCtx(ctx context.Context, pt *core.PotentialTable, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pt.Codec().NumVars()
	if n < 2 {
		return nil, fmt.Errorf("structure: need at least 2 variables, have %d", n)
	}
	res := &Result{Sepsets: NewSepsets(n)}
	l := &learner{ctx: ctx, pt: pt, cfg: cfg, res: res}

	t0 := time.Now()
	mi, err := pt.AllPairsMICtx(ctx, cfg.P, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	res.MI = mi
	g, deferred := l.draft(mi)
	res.Graph = g
	res.DraftTime = time.Since(t0)

	t1 := time.Now()
	if err := l.thicken(g, deferred); err != nil {
		return nil, err
	}
	res.ThickenTime = time.Since(t1)

	t2 := time.Now()
	if err := l.thin(g); err != nil {
		return nil, err
	}
	res.ThinTime = time.Since(t2)

	res.PDAG = OrientEdges(g, res.Sepsets)
	return res, nil
}

type pair struct {
	i, j int
	mi   float64
}

type learner struct {
	ctx context.Context
	pt  *core.PotentialTable
	cfg Config
	res *Result
}

// checkCtx is the learner's cancellation point, consulted between CI tests
// and at phase-loop boundaries.
func (l *learner) checkCtx() error {
	if l.ctx.Err() != nil {
		return context.Cause(l.ctx)
	}
	return nil
}

// draft is phase 1: sort dependent pairs by decreasing MI and add each
// edge whose endpoints are not already connected by an open path; pairs
// skipped because a path exists are deferred to thickening.
func (l *learner) draft(mi *core.MIMatrix) (*graph.Undirected, []pair) {
	n := mi.N
	var pairs []pair
	mi.ForEachPair(func(i, j int, v float64) {
		if l.dependent(v, i, j, 1) {
			pairs = append(pairs, pair{i, j, v})
		}
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].mi != pairs[b].mi {
			return pairs[a].mi > pairs[b].mi
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})

	g := graph.NewUndirected(n)
	var deferred []pair
	for _, p := range pairs {
		if g.HasPath(p.i, p.j, nil) {
			deferred = append(deferred, p)
		} else {
			g.AddEdge(p.i, p.j)
			l.res.DraftEdges++
		}
	}
	return g, deferred
}

// thicken is phase 2: for every deferred pair, add the edge unless a
// conditional-independence test separates the endpoints.
func (l *learner) thicken(g *graph.Undirected, deferred []pair) error {
	for _, p := range deferred {
		if err := l.checkCtx(); err != nil {
			return err
		}
		sep, err := l.tryToSeparate(g, p.i, p.j)
		if err != nil {
			return err
		}
		if !sep {
			g.AddEdge(p.i, p.j)
			l.res.ThickenEdges++
		}
	}
	return nil
}

// thin is phase 3: every edge whose endpoints remain connected without it
// is temporarily removed and permanently dropped if a CI test separates
// the endpoints.
func (l *learner) thin(g *graph.Undirected) error {
	for _, e := range g.Edges() {
		if err := l.checkCtx(); err != nil {
			return err
		}
		u, v := e[0], e[1]
		if !g.HasEdge(u, v) {
			continue // removed earlier in this phase
		}
		if !g.AdjacencyPath(u, v) {
			continue // the edge is the only connection; keep it
		}
		g.RemoveEdge(u, v)
		sep, err := l.tryToSeparate(g, u, v)
		if err != nil {
			g.AddEdge(u, v) // leave the graph structurally consistent
			return err
		}
		if sep {
			l.res.ThinnedEdges++
		} else {
			g.AddEdge(u, v)
		}
	}
	return nil
}

// tryToSeparate implements Cheng et al.'s quantitative CI search: start
// from the neighbors of each endpoint that lie on paths to the other
// endpoint, and greedily shrink the conditioning set while the conditional
// mutual information does not increase. Returns true if some conditioning
// set C achieves I(x;y|C) < ε.
func (l *learner) tryToSeparate(g *graph.Undirected, x, y int) (bool, error) {
	n1 := g.NeighborsOnPaths(x, y)
	n2 := g.NeighborsOnPaths(y, x)
	// Try the smaller candidate set first (paper's heuristic), then the
	// other if the first fails.
	first, second := n1, n2
	if len(n2) < len(n1) {
		first, second = n2, n1
	}
	set, ok, err := l.separates(first, x, y)
	if err != nil {
		return false, err
	}
	if ok {
		l.res.Sepsets.Put(x, y, set)
		return true, nil
	}
	if !sameVars(first, second) {
		set, ok, err := l.separates(second, x, y)
		if err != nil {
			return false, err
		}
		if ok {
			l.res.Sepsets.Put(x, y, set)
			return true, nil
		}
	}
	return false, nil
}

func sameVars(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// separates runs the greedy shrink loop on one candidate conditioning set,
// returning the separating set it found.
func (l *learner) separates(cand []int, x, y int) ([]int, bool, error) {
	if len(cand) == 0 {
		return nil, false, nil
	}
	c := append([]int(nil), cand...)
	if len(c) > l.cfg.MaxCondSet {
		c = c[:l.cfg.MaxCondSet]
	}
	v, err := l.cmi(x, y, c)
	if err != nil {
		return nil, false, err
	}
	if !l.dependent(v, x, y, l.condCells(c)) {
		return c, true, nil
	}
	for len(c) > 1 {
		if err := l.checkCtx(); err != nil {
			return nil, false, err
		}
		// The |C| candidate reductions are independent marginalizations;
		// batch them through the fused multi-marginal primitive so the
		// table is scanned once per greedy round instead of once per
		// candidate.
		reductions := make([][]int, len(c))
		varsets := make([][]int, len(c))
		for k := range c {
			reduced := make([]int, 0, len(c)-1)
			reduced = append(reduced, c[:k]...)
			reduced = append(reduced, c[k+1:]...)
			reductions[k] = reduced
			vars := make([]int, 0, len(reduced)+2)
			vars = append(vars, reduced...)
			vars = append(vars, x, y)
			varsets[k] = vars
		}
		marginals, err := l.pt.MarginalizeManyCtx(l.ctx, varsets, l.cfg.P)
		if err != nil {
			return nil, false, err
		}
		l.res.CITests += len(c)
		ri := l.pt.Codec().Cardinality(x)
		rj := l.pt.Codec().Cardinality(y)
		bestIdx, bestV := -1, v
		for k := range c {
			vk := stats.CondMutualInfoCounts(marginals[k].Counts, l.condCells(reductions[k]), ri, rj)
			if !l.dependent(vk, x, y, l.condCells(reductions[k])) {
				return reductions[k], true, nil
			}
			if vk <= bestV {
				bestIdx, bestV = k, vk
			}
		}
		if bestIdx < 0 {
			return nil, false, nil // every reduction increases dependence
		}
		c = append(c[:bestIdx], c[bestIdx+1:]...)
		v = bestV
	}
	return nil, false, nil
}

// condCells returns the joint state count of a conditioning set, the rz
// axis of the flattened contingency table.
func (l *learner) condCells(z []int) int {
	rz := 1
	for _, zv := range z {
		rz *= l.pt.Codec().Cardinality(zv)
	}
	return rz
}

// dependent applies the configured CI decision rule to an observed
// (conditional) mutual information of statBits bits between variables x
// and y given a conditioning set with rz joint states.
func (l *learner) dependent(statBits float64, x, y, rz int) bool {
	switch l.cfg.Test {
	case TestG:
		ri := l.pt.Codec().Cardinality(x)
		rj := l.pt.Codec().Cardinality(y)
		df := (ri - 1) * (rj - 1) * rz
		if df < 1 {
			df = 1
		}
		g := 2 * float64(l.pt.NumSamples()) * math.Ln2 * statBits
		return g > stats.ChiSquareCritical(df, l.cfg.Alpha)
	default:
		return statBits >= l.cfg.Epsilon
	}
}

// cmi computes I(x;y|Z) from the potential table by marginalizing over
// Z ∪ {x, y} (ordering Z first so the flattened layout matches
// stats.CondMutualInfoCounts).
func (l *learner) cmi(x, y int, z []int) (float64, error) {
	l.res.CITests++
	vars := make([]int, 0, len(z)+2)
	vars = append(vars, z...)
	vars = append(vars, x, y)
	mg, err := l.pt.MarginalizeCtx(l.ctx, vars, l.cfg.P)
	if err != nil {
		return 0, err
	}
	rz := 1
	for _, zv := range z {
		rz *= l.pt.Codec().Cardinality(zv)
	}
	ri := l.pt.Codec().Cardinality(x)
	rj := l.pt.Codec().Cardinality(y)
	return stats.CondMutualInfoCounts(mg.Counts, rz, ri, rj), nil
}

// SkeletonMetrics compares a learned skeleton against the skeleton of a
// ground-truth DAG.
type SkeletonMetrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	F1             float64
}

// CompareSkeleton evaluates edge recovery of learned against the skeleton
// of truth.
func CompareSkeleton(learned *graph.Undirected, truth *graph.DAG) SkeletonMetrics {
	if learned.N() != truth.N() {
		panic(fmt.Sprintf("structure: graphs have %d vs %d vertices", learned.N(), truth.N()))
	}
	sk := truth.Skeleton()
	var m SkeletonMetrics
	for _, e := range learned.Edges() {
		if sk.HasEdge(e[0], e[1]) {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	for _, e := range sk.Edges() {
		if !learned.HasEdge(e[0], e[1]) {
			m.FalseNegatives++
		}
	}
	if m.TruePositives+m.FalsePositives > 0 {
		m.Precision = float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
	}
	if m.TruePositives+m.FalseNegatives > 0 {
		m.Recall = float64(m.TruePositives) / float64(m.TruePositives+m.FalseNegatives)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}
