package structure

import (
	"context"
	"fmt"
	"sort"

	"waitfreebn/internal/core"
	"waitfreebn/internal/graph"
)

// ChowLiu learns the maximum-likelihood tree-structured network (Chow &
// Liu, IEEE Trans. Inf. Theory 1968 — reference [6] of the paper): the
// maximum-weight spanning tree of the complete graph weighted by pairwise
// mutual information. It consumes the same all-pairs MI sweep the drafting
// phase runs, so it is a third consumer of the parallel primitives and the
// natural "cheapest structured baseline" for both full learners.
//
// Edges with MI below minMI are not considered, so disconnected data
// yields a forest rather than a tree of noise edges. p <= 0 selects
// GOMAXPROCS.
//
// Deprecated: use ChowLiuCtx.
func ChowLiu(pt *core.PotentialTable, minMI float64, p int) (*graph.Undirected, *core.MIMatrix, error) {
	return ChowLiuCtx(context.Background(), pt, minMI, p)
}

// ChowLiuCtx is ChowLiu under the fault-tolerant execution contract: the
// all-pairs MI sweep observes ctx and cancellation surfaces as
// context.Canceled (or DeadlineExceeded) in bounded time.
func ChowLiuCtx(ctx context.Context, pt *core.PotentialTable, minMI float64, p int) (*graph.Undirected, *core.MIMatrix, error) {
	n := pt.Codec().NumVars()
	if n < 1 {
		return nil, nil, fmt.Errorf("structure: empty table")
	}
	mi, err := pt.AllPairsMICtx(ctx, p, core.MIFused)
	if err != nil {
		return nil, nil, err
	}

	type edge struct {
		i, j int
		w    float64
	}
	var edges []edge
	mi.ForEachPair(func(i, j int, v float64) {
		if v >= minMI {
			edges = append(edges, edge{i, j, v})
		}
	})
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})

	// Kruskal with union-find.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	tree := graph.NewUndirected(n)
	for _, e := range edges {
		ri, rj := find(e.i), find(e.j)
		if ri == rj {
			continue
		}
		parent[ri] = rj
		tree.AddEdge(e.i, e.j)
		if tree.NumEdges() == n-1 {
			break
		}
	}
	return tree, mi, nil
}

// ChowLiuDAG returns the Chow-Liu tree rooted at root (edges directed away
// from the root per connected component; isolated components are rooted at
// their lowest-numbered vertex).
func ChowLiuDAG(pt *core.PotentialTable, minMI float64, root, p int) (*graph.DAG, error) {
	n := pt.Codec().NumVars()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("structure: root %d outside [0,%d)", root, n)
	}
	tree, _, err := ChowLiu(pt, minMI, p)
	if err != nil {
		return nil, err
	}
	dag := graph.NewDAG(n)
	visited := make([]bool, n)
	var orient func(v int)
	orient = func(v int) {
		visited[v] = true
		for _, u := range tree.Neighbors(v) {
			if !visited[u] {
				dag.MustAddEdge(v, u)
				orient(u)
			}
		}
	}
	orient(root)
	for v := 0; v < n; v++ {
		if !visited[v] {
			orient(v)
		}
	}
	return dag, nil
}
