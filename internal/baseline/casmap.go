package baseline

import (
	"fmt"
	"sync/atomic"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/sched"
)

// casTable is a fixed-capacity lock-free open-addressing hash table for
// concurrent counting. Slots are claimed by CAS on the key word; counts are
// atomic adds. It is lock-free but not wait-free: a thread can lose a CAS
// race (or probe past freshly claimed slots) an unbounded number of times
// under contention — precisely the progress-guarantee gap between this
// design and the paper's primitive.
//
// The table does not grow; it is sized for the expected number of distinct
// keys up front (the builders size it from m) and reports exhaustion.
type casTable struct {
	keys   []atomic.Uint64 // emptyCASSlot = free
	counts []atomic.Uint64
	mask   uint64
	used   atomic.Int64
	limit  int64
}

const emptyCASSlot = ^uint64(0)

func newCASTable(capacityHint int) *casTable {
	capacity := 64
	for capacity*7/8 < capacityHint {
		capacity <<= 1
	}
	t := &casTable{
		keys:   make([]atomic.Uint64, capacity),
		counts: make([]atomic.Uint64, capacity),
		mask:   uint64(capacity - 1),
		limit:  int64(capacity) * 7 / 8,
	}
	for i := range t.keys {
		t.keys[i].Store(emptyCASSlot)
	}
	return t
}

// add increments key's count by one, returning the number of CAS retries
// (failed claims) and whether the table had room.
func (t *casTable) add(key uint64) (retries uint64, ok bool) {
	i := rng.Mix64(key) & t.mask
	for {
		cur := t.keys[i].Load()
		if cur == key {
			t.counts[i].Add(1)
			return retries, true
		}
		if cur == emptyCASSlot {
			if t.used.Load() >= t.limit {
				return retries, false
			}
			if t.keys[i].CompareAndSwap(emptyCASSlot, key) {
				t.used.Add(1)
				t.counts[i].Add(1)
				return retries, true
			}
			retries++
			continue // re-inspect the slot we lost
		}
		i = (i + 1) & t.mask
	}
}

// buildCASMap constructs the table with the lock-free CAS strategy. hint
// sizes the fixed-capacity table; Build passes tableHint(m, codec).
func buildCASMap(data *dataset.Dataset, codec *encoding.Codec, m, p, hint int) (*core.PotentialTable, Counters, error) {
	ct := newCASTable(hint)
	var totalRetries atomic.Uint64
	var overflowed atomic.Bool
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		var retries uint64
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			if overflowed.Load() {
				return
			}
			r, ok := ct.add(codec.Encode(data.Row(i)))
			retries += r
			if !ok {
				overflowed.Store(true)
				return
			}
		}
		totalRetries.Add(retries)
	})
	if overflowed.Load() {
		return nil, Counters{}, fmt.Errorf("baseline: cas-map capacity exhausted (distinct keys exceeded hint)")
	}
	// Materialize into a single-owner table.
	table := hashtable.New(int(ct.used.Load()))
	for i := range ct.keys {
		if k := ct.keys[i].Load(); k != emptyCASSlot {
			table.Add(k, ct.counts[i].Load())
		}
	}
	pt := core.NewPotentialTable(codec, []hashtable.Counter{table}, uint64(m))
	return pt, Counters{CASRetries: totalRetries.Load()}, nil
}
