// Package baseline implements the competing potential-table construction
// strategies the wait-free primitive is evaluated against.
//
// The paper's comparison point is Intel TBB's concurrent_hash_map, which
// ensures thread safety "with the aid of a lock operation" — per-bucket
// locking. StripedLock reproduces that contention profile directly; the
// other strategies bracket it from both sides:
//
//	Sequential  — single thread, the T(1) reference.
//	GlobalLock  — one mutex around one table (coarsest locking).
//	StripedLock — per-stripe mutexes (the TBB concurrent_hash_map analogue).
//	SyncMap     — sync.Map with atomic per-key counters.
//	CASMap      — lock-free open addressing with CAS insert/add (finer than
//	              TBB: no locks, but CAS retry loops — lock-free, not
//	              wait-free).
//	ShardedMerge— per-worker private tables merged at the end (embarrassing
//	              parallelism; uses 2× memory and a serial-ish merge, the
//	              trade-off the paper's design avoids).
//	WaitFree    — the paper's primitive, via internal/core, for uniform
//	              sweep code in benches.
//
// Every strategy produces a *core.PotentialTable so results are comparable
// and differentially testable, and every strategy reports contention
// counters so the shape of Figures 3-4 can be reproduced even on hardware
// with few cores.
package baseline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/hashtable"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/sched"
)

// Strategy names a table-construction implementation.
type Strategy int

const (
	// Sequential is the single-threaded reference builder.
	Sequential Strategy = iota
	// GlobalLock guards a single shared table with one mutex.
	GlobalLock
	// StripedLock shards the table into lock-striped buckets, the
	// structural analogue of TBB's concurrent_hash_map.
	StripedLock
	// SyncMap uses sync.Map holding *atomic.Uint64 counters.
	SyncMap
	// CASMap is a lock-free open-addressing table updated with CAS.
	CASMap
	// ShardedMerge gives each worker a private table and merges them.
	ShardedMerge
	// WaitFree is the paper's two-stage wait-free primitive.
	WaitFree
)

// Strategies lists every strategy in presentation order.
func Strategies() []Strategy {
	return []Strategy{Sequential, GlobalLock, StripedLock, SyncMap, CASMap, ShardedMerge, WaitFree}
}

// String returns the strategy's display name.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case GlobalLock:
		return "global-lock"
	case StripedLock:
		return "striped-lock"
	case SyncMap:
		return "sync-map"
	case CASMap:
		return "cas-map"
	case ShardedMerge:
		return "sharded-merge"
	case WaitFree:
		return "wait-free"
	default:
		return "unknown"
	}
}

// ParseStrategy resolves a display name back to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("baseline: unknown strategy %q", name)
}

// Counters reports synchronization work done during a build. Zero-valued
// fields simply do not apply to the strategy.
type Counters struct {
	LockAcquisitions uint64 // mutex Lock calls on shared state
	CASRetries       uint64 // failed compare-and-swap attempts
	QueueTransfers   uint64 // keys routed through wait-free queues
}

// Build constructs the potential table from data using the strategy with p
// workers and returns it with contention counters.
func Build(s Strategy, data *dataset.Dataset, p int) (*core.PotentialTable, Counters, error) {
	codec, err := data.Codec()
	if err != nil {
		return nil, Counters{}, fmt.Errorf("baseline: %w", err)
	}
	if p <= 0 {
		p = sched.DefaultP()
	}
	m := data.NumSamples()
	switch s {
	case Sequential:
		pt, err := core.BuildSequential(data)
		return pt, Counters{}, err
	case GlobalLock:
		return buildGlobalLock(data, codec, m, p)
	case StripedLock:
		return buildStripedLock(data, codec, m, p)
	case SyncMap:
		return buildSyncMap(data, codec, m, p)
	case CASMap:
		return buildCASMap(data, codec, m, p, tableHint(m, codec))
	case ShardedMerge:
		return buildShardedMerge(data, codec, m, p)
	case WaitFree:
		pt, st, err := core.BuildCtx(context.Background(), data, core.Options{P: p})
		return pt, Counters{QueueTransfers: st.ForeignKeys}, err
	default:
		return nil, Counters{}, fmt.Errorf("baseline: unknown strategy %d", s)
	}
}

func tableHint(m int, codec *encoding.Codec) int {
	hint := uint64(m)
	if codec.KeySpace() < hint {
		hint = codec.KeySpace()
	}
	if hint > 1<<24 {
		hint = 1 << 24
	}
	return int(hint)
}

// buildGlobalLock: one table, one mutex, every update takes the lock.
func buildGlobalLock(data *dataset.Dataset, codec *encoding.Codec, m, p int) (*core.PotentialTable, Counters, error) {
	table := hashtable.New(tableHint(m, codec))
	var mu sync.Mutex
	var locks atomic.Uint64
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		var local uint64
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			key := codec.Encode(data.Row(i))
			mu.Lock()
			table.Inc(key)
			mu.Unlock()
			local++
		}
		locks.Add(local)
	})
	pt := core.NewPotentialTable(codec, []hashtable.Counter{table}, uint64(m))
	return pt, Counters{LockAcquisitions: locks.Load()}, nil
}

// stripeCount is the number of lock stripes; TBB's concurrent_hash_map
// locks per bucket, so the stripe count is generous to be fair to the
// baseline.
const stripeCount = 256

// buildStripedLock: the TBB concurrent_hash_map analogue. Keys hash to one
// of stripeCount stripes, each a mutex-guarded table. Contention arises
// exactly as in TBB: two cores updating keys in the same stripe serialize.
func buildStripedLock(data *dataset.Dataset, codec *encoding.Codec, m, p int) (*core.PotentialTable, Counters, error) {
	type stripe struct {
		mu    sync.Mutex
		table *hashtable.Table
		_     [40]byte // soften false sharing between stripe headers
	}
	stripes := make([]stripe, stripeCount)
	hint := tableHint(m, codec)/stripeCount + 1
	for i := range stripes {
		stripes[i].table = hashtable.New(hint)
	}
	var locks atomic.Uint64
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		var local uint64
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			key := codec.Encode(data.Row(i))
			st := &stripes[rng.Mix64(key)>>32&(stripeCount-1)]
			st.mu.Lock()
			st.table.Inc(key)
			st.mu.Unlock()
			local++
		}
		locks.Add(local)
	})
	parts := make([]hashtable.Counter, stripeCount)
	for i := range stripes {
		parts[i] = stripes[i].table
	}
	pt := core.NewPotentialTable(codec, parts, uint64(m))
	return pt, Counters{LockAcquisitions: locks.Load()}, nil
}

// buildSyncMap: sync.Map from key to *atomic.Uint64.
func buildSyncMap(data *dataset.Dataset, codec *encoding.Codec, m, p int) (*core.PotentialTable, Counters, error) {
	var sm sync.Map
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			key := codec.Encode(data.Row(i))
			if v, ok := sm.Load(key); ok {
				v.(*atomic.Uint64).Add(1)
				continue
			}
			fresh := &atomic.Uint64{}
			fresh.Store(1)
			if v, raced := sm.LoadOrStore(key, fresh); raced {
				v.(*atomic.Uint64).Add(1)
			}
		}
	})
	// Materialize into a single partition table.
	table := hashtable.New(tableHint(m, codec))
	sm.Range(func(k, v any) bool {
		table.Add(k.(uint64), v.(*atomic.Uint64).Load())
		return true
	})
	pt := core.NewPotentialTable(codec, []hashtable.Counter{table}, uint64(m))
	return pt, Counters{}, nil
}

// buildShardedMerge: each worker fills a private table; tables become the
// partitions of the result directly, but overlapping keys across workers
// must be merged, which is the serial tail this strategy pays.
func buildShardedMerge(data *dataset.Dataset, codec *encoding.Codec, m, p int) (*core.PotentialTable, Counters, error) {
	locals := make([]*hashtable.Table, p)
	hint := tableHint(m, codec) / p * 2
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		t := hashtable.New(hint)
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			t.Inc(codec.Encode(data.Row(i)))
		}
		locals[w] = t
	})
	merged := locals[0]
	for w := 1; w < p; w++ {
		merged.Merge(locals[w])
	}
	pt := core.NewPotentialTable(codec, []hashtable.Counter{merged}, uint64(m))
	return pt, Counters{}, nil
}
