package baseline

import (
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
)

func testData(t testing.TB, m, n, r int, seed uint64) *dataset.Dataset {
	t.Helper()
	d := dataset.NewUniformCard(m, n, r)
	d.UniformIndependent(seed, 4)
	return d
}

func TestAllStrategiesProduceIdenticalTables(t *testing.T) {
	d := testData(t, 20000, 10, 2, 1)
	ref, err := core.BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		for _, p := range []int{1, 2, 4} {
			pt, _, err := Build(s, d, p)
			if err != nil {
				t.Fatalf("%v p=%d: %v", s, p, err)
			}
			if !pt.Equal(ref) {
				t.Fatalf("%v p=%d: table differs from sequential", s, p)
			}
		}
	}
}

func TestAllStrategiesOnSkewedData(t *testing.T) {
	d := dataset.NewUniformCard(20000, 8, 3)
	d.Zipf(2, 2.0, 4)
	ref, err := core.BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		pt, _, err := Build(s, d, 4)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !pt.Equal(ref) {
			t.Fatalf("%v: table differs on skewed data", s)
		}
	}
}

func TestAllStrategiesOnBNSampledData(t *testing.T) {
	net := bn.Asia()
	d, err := net.Sample(30000, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.BuildSequential(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		pt, _, err := Build(s, d, 3)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !pt.Equal(ref) {
			t.Fatalf("%v: table differs on BN data", s)
		}
	}
}

func TestCountersReported(t *testing.T) {
	d := testData(t, 10000, 8, 2, 2)
	if _, c, err := Build(GlobalLock, d, 4); err != nil || c.LockAcquisitions != 10000 {
		t.Errorf("global-lock: counters %+v err %v (want 10000 lock acquisitions)", c, err)
	}
	if _, c, err := Build(StripedLock, d, 4); err != nil || c.LockAcquisitions != 10000 {
		t.Errorf("striped-lock: counters %+v err %v", c, err)
	}
	if _, c, err := Build(WaitFree, d, 4); err != nil || c.QueueTransfers == 0 {
		t.Errorf("wait-free: counters %+v err %v (expected queue transfers)", c, err)
	}
	if _, c, err := Build(Sequential, d, 1); err != nil || c != (Counters{}) {
		t.Errorf("sequential: counters %+v err %v (want zero)", c, err)
	}
}

func TestStrategyStringRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v err %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("ParseStrategy accepted unknown name")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy String")
	}
}

func TestBuildUnknownStrategy(t *testing.T) {
	d := testData(t, 10, 3, 2, 3)
	if _, _, err := Build(Strategy(99), d, 2); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestBuildRejectsOverflowingKeySpace(t *testing.T) {
	d := dataset.NewUniformCard(10, 64, 4)
	for _, s := range Strategies() {
		if _, _, err := Build(s, d, 2); err == nil {
			t.Errorf("%v accepted overflowing key space", s)
		}
	}
}

func TestCASTableBasics(t *testing.T) {
	ct := newCASTable(100)
	for i := 0; i < 50; i++ {
		if _, ok := ct.add(uint64(i % 10)); !ok {
			t.Fatal("add failed with room available")
		}
	}
	if got := ct.used.Load(); got != 10 {
		t.Fatalf("used = %d, want 10", got)
	}
	// Each of the 10 keys must have count 5.
	found := 0
	for i := range ct.keys {
		if k := ct.keys[i].Load(); k != emptyCASSlot {
			found++
			if c := ct.counts[i].Load(); c != 5 {
				t.Errorf("key %d count %d, want 5", k, c)
			}
		}
	}
	if found != 10 {
		t.Fatalf("found %d occupied slots", found)
	}
}

func TestCASTableExhaustion(t *testing.T) {
	ct := newCASTable(1) // capacity 64, limit 56
	overflowAt := -1
	for i := 0; i < 64; i++ {
		if _, ok := ct.add(uint64(i) * 7919); !ok {
			overflowAt = i
			break
		}
	}
	if overflowAt < 0 {
		t.Fatal("cas table never reported exhaustion")
	}
}

func TestCASMapOverflowSurfaceAsError(t *testing.T) {
	// A hint far below the distinct-key count must produce a clean error,
	// not a hang or corruption.
	d := testData(t, 5000, 10, 2, 4)
	codec, _ := d.Codec()
	if _, _, err := buildCASMap(d, codec, d.NumSamples(), 4, 10); err == nil {
		t.Fatal("expected capacity-exhausted error")
	}
}

func TestStripedLockPartitionCount(t *testing.T) {
	d := testData(t, 5000, 8, 2, 5)
	pt, _, err := Build(StripedLock, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Partitions() != stripeCount {
		t.Errorf("striped table has %d partitions, want %d", pt.Partitions(), stripeCount)
	}
	if pt.Total() != 5000 {
		t.Errorf("Total = %d", pt.Total())
	}
}

func TestMarginalizationWorksOnEveryStrategyOutput(t *testing.T) {
	// The potential tables from all strategies must be drop-in compatible
	// with the marginalization primitive.
	d := testData(t, 10000, 6, 2, 6)
	ref, _ := core.BuildSequential(d)
	wantMarg := ref.Marginalize([]int{1, 4}, 1)
	for _, s := range Strategies() {
		pt, _, err := Build(s, d, 3)
		if err != nil {
			t.Fatal(err)
		}
		mg := pt.Marginalize([]int{1, 4}, 3)
		for c := range wantMarg.Counts {
			if mg.Counts[c] != wantMarg.Counts[c] {
				t.Fatalf("%v: marginal cell %d = %d, want %d", s, c, mg.Counts[c], wantMarg.Counts[c])
			}
		}
	}
}
