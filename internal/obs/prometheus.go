package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, then one
// sample line per labeled metric, histograms expanded into cumulative
// _bucket series plus _sum and _count. The nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.sortedNames() {
		f := r.families[name]
		if len(f.metrics) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, ls := range f.sortedLabels() {
			switch v := f.metrics[ls].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, ls, v.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %g\n", name, ls, v.Value())
			case *Histogram:
				writeHistogram(&b, name, ls, v)
			case *SizeHistogram:
				writeSizeHistogram(&b, name, ls, v)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative bucket series for one histogram.
// The le label is appended to any existing labels.
func writeHistogram(b *strings.Builder, name, ls string, h *Histogram) {
	var cum uint64
	for i, bound := range histBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(ls, "le", fmt.Sprintf("%g", bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(ls, "le", "+Inf"), h.Count())
	fmt.Fprintf(b, "%s_sum%s %g\n", name, ls, h.Sum().Seconds())
	fmt.Fprintf(b, "%s_count%s %d\n", name, ls, h.Count())
}

// writeSizeHistogram emits the cumulative bucket series for one size
// histogram; le bounds and _sum are in bytes.
func writeSizeHistogram(b *strings.Builder, name, ls string, h *SizeHistogram) {
	var cum uint64
	for i, bound := range sizeBounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(ls, "le", fmt.Sprintf("%g", bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(ls, "le", "+Inf"), h.Count())
	fmt.Fprintf(b, "%s_sum%s %d\n", name, ls, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, ls, h.Count())
}

// withLabel appends one key="value" pair to a rendered label block.
func withLabel(ls, key, value string) string {
	pair := key + `="` + value + `"`
	if ls == "" {
		return "{" + pair + "}"
	}
	return ls[:len(ls)-1] + "," + pair + "}"
}
