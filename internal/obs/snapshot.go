package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// HistogramStats is the summarized form of one histogram in a Snapshot.
type HistogramStats struct {
	Count       uint64  `json:"count"`
	SumSeconds  float64 `json:"sum_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// Snapshot is a point-in-time copy of every metric in a registry, keyed by
// the metric's full name including its label block. It marshals to JSON
// for programmatic use and prints as sorted "name value" lines.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric. On the nil registry
// it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for ls, m := range f.metrics {
			key := name + ls
			switch v := m.(type) {
			case *Counter:
				s.Counters[key] = v.Value()
			case *Gauge:
				s.Gauges[key] = v.Value()
			case *Histogram:
				hs := HistogramStats{
					Count:      v.Count(),
					SumSeconds: v.Sum().Seconds(),
					MaxSeconds: v.Max().Seconds(),
				}
				if hs.Count > 0 {
					hs.MeanSeconds = hs.SumSeconds / float64(hs.Count)
				}
				s.Histograms[key] = hs
			}
		}
	}
	return s
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json sorts
// map keys) and omits empty sections.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // strip the method to avoid recursion
	a := alias(s)
	if len(a.Counters) == 0 {
		a.Counters = nil
	}
	if len(a.Gauges) == 0 {
		a.Gauges = nil
	}
	if len(a.Histograms) == 0 {
		a.Histograms = nil
	}
	return json.Marshal(a)
}

// String renders the snapshot as sorted "name value" lines, one metric per
// line, for human inspection and log output.
func (s Snapshot) String() string {
	var lines []string
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", k, v))
	}
	for k, v := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%.6fs mean=%.6fs max=%.6fs",
			k, v.Count, v.SumSeconds, v.MeanSeconds, v.MaxSeconds))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
