package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// HistogramStats is the summarized form of one histogram in a Snapshot.
// P50/P99 are bucket-upper-bound estimates (see Histogram.Quantile).
type HistogramStats struct {
	Count       uint64  `json:"count"`
	SumSeconds  float64 `json:"sum_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// SizeStats is the summarized form of one size histogram in a Snapshot,
// all values in bytes.
type SizeStats struct {
	Count     uint64  `json:"count"`
	SumBytes  uint64  `json:"sum_bytes"`
	MeanBytes float64 `json:"mean_bytes"`
	MaxBytes  uint64  `json:"max_bytes"`
	P50Bytes  uint64  `json:"p50_bytes"`
	P99Bytes  uint64  `json:"p99_bytes"`
}

// Snapshot is a point-in-time copy of every metric in a registry, keyed by
// the metric's full name including its label block. It marshals to JSON
// for programmatic use and prints as sorted "name value" lines.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Sizes      map[string]SizeStats      `json:"sizes,omitempty"`
}

// Snapshot copies the current value of every metric. On the nil registry
// it returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
		Sizes:      map[string]SizeStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for ls, m := range f.metrics {
			key := name + ls
			switch v := m.(type) {
			case *Counter:
				s.Counters[key] = v.Value()
			case *Gauge:
				s.Gauges[key] = v.Value()
			case *Histogram:
				hs := HistogramStats{
					Count:      v.Count(),
					SumSeconds: v.Sum().Seconds(),
					MaxSeconds: v.Max().Seconds(),
					P50Seconds: v.Quantile(0.50).Seconds(),
					P99Seconds: v.Quantile(0.99).Seconds(),
				}
				if hs.Count > 0 {
					hs.MeanSeconds = hs.SumSeconds / float64(hs.Count)
				}
				s.Histograms[key] = hs
			case *SizeHistogram:
				ss := SizeStats{
					Count:    v.Count(),
					SumBytes: v.Sum(),
					MaxBytes: v.Max(),
					P50Bytes: v.Quantile(0.50),
					P99Bytes: v.Quantile(0.99),
				}
				if ss.Count > 0 {
					ss.MeanBytes = float64(ss.SumBytes) / float64(ss.Count)
				}
				s.Sizes[key] = ss
			}
		}
	}
	return s
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json sorts
// map keys) and omits empty sections.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // strip the method to avoid recursion
	a := alias(s)
	if len(a.Counters) == 0 {
		a.Counters = nil
	}
	if len(a.Gauges) == 0 {
		a.Gauges = nil
	}
	if len(a.Histograms) == 0 {
		a.Histograms = nil
	}
	if len(a.Sizes) == 0 {
		a.Sizes = nil
	}
	return json.Marshal(a)
}

// String renders the snapshot as sorted "name value" lines, one metric per
// line, for human inspection and log output.
func (s Snapshot) String() string {
	var lines []string
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %g", k, v))
	}
	for k, v := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%.6fs mean=%.6fs max=%.6fs p50=%.6fs p99=%.6fs",
			k, v.Count, v.SumSeconds, v.MeanSeconds, v.MaxSeconds, v.P50Seconds, v.P99Seconds))
	}
	for k, v := range s.Sizes {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%dB mean=%.1fB max=%dB p50=%dB p99=%dB",
			k, v.Count, v.SumBytes, v.MeanBytes, v.MaxBytes, v.P50Bytes, v.P99Bytes))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
