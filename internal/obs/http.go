package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry in Prometheus text
// format. It works on the nil registry (serving an empty body), so CLIs
// can mount it unconditionally.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler returns an http.Handler serving the registry's Snapshot as
// JSON.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}

// Server is a running metrics listener started by Serve.
type Server struct {
	addr string
	srv  *http.Server
	lis  net.Listener
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP server on addr exposing:
//
//	/metrics        Prometheus text format
//	/metrics.json   JSON snapshot
//	/debug/pprof/*  net/http/pprof handlers, when enablePprof is set
//
// It returns once the listener is bound, serving in a background
// goroutine; callers Close it when done. Serve works with a nil registry
// (the endpoints serve empty data), so -pprof can be used alone.
func Serve(addr string, r *Registry, enablePprof bool) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.JSONHandler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return &Server{addr: lis.Addr().String(), srv: srv, lis: lis}, nil
}
