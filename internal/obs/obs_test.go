package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsFreeAndSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(2)
	g.SetMax(3)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("nil handles recorded values")
	}
	if got := r.Snapshot(); len(got.Counters) != 0 || len(got.Gauges) != 0 || len(got.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry prometheus output: %q, %v", sb.String(), err)
	}
}

func TestNilHandlesDoNotAllocate(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.SetMax(2)
		h.Observe(time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f times per op", allocs)
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "kind", "local")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("requests_total", "kind", "local"); again != c {
		t.Fatal("same name+labels returned a different counter")
	}
	if other := r.Counter("requests_total", "kind", "foreign"); other == c {
		t.Fatal("different labels returned the same counter")
	}

	g := r.Gauge("occupancy")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %g, want 7", g.Value())
	}
	g.SetMax(5) // below current: no change
	if g.Value() != 7 {
		t.Fatalf("SetMax lowered gauge to %g", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Fatalf("SetMax = %g, want 11", g.Value())
	}

	h := r.Histogram("build_seconds")
	h.Observe(1 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 4*time.Millisecond {
		t.Fatalf("hist sum = %v", h.Sum())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("hist max = %v", h.Max())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge name collision")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("keys_total", "kind", "local").Add(12)
	r.Gauge("partition_keys", "partition", "0").Set(34)
	r.Histogram("stage_seconds", "stage", "1").Observe(2 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters[`keys_total{kind="local"}`] != 12 {
		t.Fatalf("snapshot counters: %v", s.Counters)
	}
	if s.Gauges[`partition_keys{partition="0"}`] != 34 {
		t.Fatalf("snapshot gauges: %v", s.Gauges)
	}
	hs := s.Histograms[`stage_seconds{stage="1"}`]
	if hs.Count != 1 || hs.SumSeconds != 0.002 || hs.MeanSeconds != 0.002 {
		t.Fatalf("snapshot histograms: %+v", hs)
	}

	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[`keys_total{kind="local"}`] != 12 {
		t.Fatalf("JSON round trip lost counters: %s", blob)
	}
	if !strings.Contains(s.String(), `keys_total{kind="local"} 12`) {
		t.Fatalf("String() output unexpected:\n%s", s.String())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("keys_total", "keys counted by kind")
	r.Counter("keys_total", "kind", "local").Add(9)
	r.Gauge("skew").Set(1.25)
	h := r.Histogram("wait_seconds")
	h.Observe(500 * time.Nanosecond) // below the first 1µs bound
	h.Observe(3 * time.Second)       // mid-range
	h.Observe(time.Hour)             // beyond the last bound → +Inf only

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP keys_total keys counted by kind",
		"# TYPE keys_total counter",
		`keys_total{kind="local"} 9`,
		"# TYPE skew gauge",
		"skew 1.25",
		"# TYPE wait_seconds histogram",
		`wait_seconds_bucket{le="1e-06"} 1`,
		`wait_seconds_bucket{le="+Inf"} 3`,
		"wait_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 4-second bound holds 2 of 3 samples.
	if !strings.Contains(out, `wait_seconds_bucket{le="4.194304"} 2`) {
		t.Errorf("cumulative bucket wrong:\n%s", out)
	}
}

func TestHandlerServesMetricsAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(3)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 3") {
		t.Fatalf("metrics body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("JSON endpoint: %v\n%s", err, rec.Body.String())
	}
	if s.Counters["hits_total"] != 3 {
		t.Fatalf("JSON snapshot: %+v", s)
	}
}

func TestServeEndToEnd(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up").Set(1)
	srv, err := Serve("127.0.0.1:0", r, true)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "up 1") {
		t.Fatalf("/metrics:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"up":1`) {
		t.Fatalf("/metrics.json:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_seconds")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h_seconds").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h *Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	h = &Histogram{}
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 99 observations just above 1ms, one at ~1s: p50 resolves to the
	// 1ms..2ms bucket bound, p99 stays below the outlier, max catches it.
	for i := 0; i < 99; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	h.Observe(900 * time.Millisecond)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~2ms bucket bound", p50)
	}
	if p99 < time.Millisecond || p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want ~2ms bucket bound (99/100 obs)", p99)
	}
	if q := h.Quantile(1.0); q < 900*time.Millisecond {
		t.Fatalf("p100 = %v, want >= max bucket bound", q)
	}
}

func TestSizeHistogram(t *testing.T) {
	var nilH *SizeHistogram
	nilH.Observe(100) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil size histogram not inert")
	}

	r := NewRegistry()
	h := r.SizeHistogram("serve_response_bytes", "endpoint", "marginal")
	h.Observe(-1) // ignored
	for i := 0; i < 9; i++ {
		h.Observe(200)
	}
	h.Observe(1 << 20)
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	if h.Sum() != 9*200+1<<20 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("max = %d", h.Max())
	}
	if p50 := h.Quantile(0.50); p50 != 256 {
		t.Fatalf("p50 = %d, want 256 (bucket bound above 200)", p50)
	}
	if p100 := h.Quantile(1.0); p100 != 1<<20 {
		t.Fatalf("p100 = %d, want exactly the 2^20 bucket bound", p100)
	}

	// Same handle on re-lookup.
	if r.SizeHistogram("serve_response_bytes", "endpoint", "marginal") != h {
		t.Fatal("re-lookup returned a different handle")
	}

	// Prometheus exposition: cumulative byte buckets, integral sum.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_response_bytes histogram",
		`serve_response_bytes_bucket{endpoint="marginal",le="256"} 9`,
		`serve_response_bytes_bucket{endpoint="marginal",le="+Inf"} 10`,
		`serve_response_bytes_count{endpoint="marginal"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	// Snapshot carries the size stats and survives JSON round-tripping.
	snap := r.Snapshot()
	ss, ok := snap.Sizes[`serve_response_bytes{endpoint="marginal"}`]
	if !ok {
		t.Fatalf("snapshot missing size histogram: %+v", snap.Sizes)
	}
	if ss.Count != 10 || ss.P50Bytes != 256 || ss.MaxBytes != 1<<20 {
		t.Fatalf("size stats = %+v", ss)
	}
	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"p50_bytes":256`) {
		t.Fatalf("snapshot JSON missing size quantiles: %s", js)
	}
	if !strings.Contains(snap.String(), "p50=256B") {
		t.Fatalf("snapshot String missing size line:\n%s", snap.String())
	}
}

func TestSnapshotHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond)
	}
	hs := r.Snapshot().Histograms["lat_seconds"]
	if hs.P50Seconds <= 0 || hs.P99Seconds <= 0 {
		t.Fatalf("snapshot quantiles not populated: %+v", hs)
	}
	if hs.P99Seconds < hs.P50Seconds {
		t.Fatalf("p99 < p50: %+v", hs)
	}
}
