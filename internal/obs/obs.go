// Package obs is the observability subsystem for the wait-free primitives:
// lightweight counters, gauges, and duration histograms that the hot-path
// packages (core, spsc, hashtable, sched) publish into and the CLIs expose
// as a Prometheus text endpoint and a JSON snapshot.
//
// The design goal is near-zero overhead when instrumentation is disabled.
// A nil *Registry is the disabled registry: every lookup on it returns a
// nil metric handle, and every operation on a nil handle is a single
// nil-check and return — no allocation, no atomics, no map access. Callers
// therefore thread a possibly-nil *Registry through Options structs and
// instrument unconditionally; the price when disabled is one predictable
// branch per aggregated publish point (never per key — the primitives
// accumulate per-worker totals in plain locals and publish once per build).
//
// Metric handles are safe for concurrent use. Registry lookups take a
// mutex, so hot paths should hoist handles out of loops; the construction
// primitives look metrics up once per build, after the workers have joined.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric. The nil Counter
// discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The nil Gauge
// discards all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by v (v may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value (0 for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBounds are the histogram bucket upper bounds in seconds: exponential
// powers of two from 1µs to ~16.8s. Durations above the last bound land in
// the implicit +Inf bucket.
var histBounds = func() []float64 {
	b := make([]float64, 25)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram records a distribution of durations in fixed exponential
// buckets, plus exact count, sum, and max. The nil Histogram discards all
// observations.
type Histogram struct {
	counts [26]atomic.Uint64 // len(histBounds) buckets + the +Inf bucket
	count  atomic.Uint64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	sec := d.Seconds()
	i := 0
	for i < len(histBounds) && sec > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for {
		old := h.maxNS.Load()
		if old >= int64(d) || h.maxNS.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count returns how many durations have been observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.maxNS.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution from the bucket counts: it returns the upper bound of the
// bucket the rank-⌈q·count⌉ observation landed in, i.e. an upper estimate
// no more than one power of two above the true value. Observations in the
// +Inf bucket resolve to Max. Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, bound := range histBounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(bound * float64(time.Second))
		}
	}
	return h.Max()
}

// sizeBounds are the size-histogram bucket upper bounds in bytes:
// exponential powers of two from 64 B to 2 GiB. Sizes above the last bound
// land in the implicit +Inf bucket.
var sizeBounds = func() []float64 {
	b := make([]float64, 26)
	v := 64.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// SizeHistogram records a distribution of byte sizes (payload sizes,
// allocation sizes) in fixed exponential buckets, plus exact count, sum,
// and max. It is the byte-valued sibling of Histogram; the nil
// SizeHistogram discards all observations.
type SizeHistogram struct {
	counts [27]atomic.Uint64 // len(sizeBounds) buckets + the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Observe records one size in bytes. Negative sizes are ignored.
func (h *SizeHistogram) Observe(n int) {
	if h == nil || n < 0 {
		return
	}
	v := float64(n)
	i := 0
	for i < len(sizeBounds) && v > sizeBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(n))
	for {
		old := h.max.Load()
		if old >= uint64(n) || h.max.CompareAndSwap(old, uint64(n)) {
			break
		}
	}
}

// Count returns how many sizes have been observed.
func (h *SizeHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed bytes.
func (h *SizeHistogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed size in bytes.
func (h *SizeHistogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-quantile in bytes with the same bucket-upper-
// bound semantics as Histogram.Quantile.
func (h *SizeHistogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, bound := range sizeBounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return uint64(bound)
		}
	}
	return h.Max()
}

// metricType discriminates the three metric kinds inside a family.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
	typeSizeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		// Size histograms are histograms to Prometheus; only the bucket
		// units differ.
		return "histogram"
	}
}

// family groups every labeled instance of one metric name, so the
// Prometheus writer can emit one # TYPE line per name.
type family struct {
	typ     metricType
	help    string
	metrics map[string]any // label string ("" or `{k="v",...}`) → handle
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled registry (see the package
// comment).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Enabled reports whether the registry records anything (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// Help sets the # HELP text emitted for the metric family name.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, typeCounter, false).help = text
}

// family returns the family for name, creating it with typ when absent.
// When create is true and the existing family has a different type, it
// panics: one name must map to one metric kind.
func (r *Registry) family(name string, typ metricType, create bool) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{typ: typ, metrics: map[string]any{}}
		r.families[name] = f
		return f
	}
	if create && f.typ != typ && len(f.metrics) > 0 {
		panic("obs: metric " + name + " registered as both " + f.typ.String() + " and " + typ.String())
	}
	if len(f.metrics) == 0 {
		f.typ = typ // Help() pre-created the family; adopt the real type
	}
	return f
}

// Counter returns the counter for name and the given label pairs
// (alternating key, value), creating it on first use. Returns nil on the
// nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, typeCounter, true)
	ls := labelString(labels)
	if m, ok := f.metrics[ls]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.metrics[ls] = c
	return c
}

// Gauge returns the gauge for name and label pairs, creating it on first
// use. Returns nil on the nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, typeGauge, true)
	ls := labelString(labels)
	if m, ok := f.metrics[ls]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.metrics[ls] = g
	return g
}

// Histogram returns the duration histogram for name and label pairs,
// creating it on first use. Returns nil on the nil registry.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, typeHistogram, true)
	ls := labelString(labels)
	if m, ok := f.metrics[ls]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{}
	f.metrics[ls] = h
	return h
}

// SizeHistogram returns the byte-size histogram for name and label pairs,
// creating it on first use. Returns nil on the nil registry.
func (r *Registry) SizeHistogram(name string, labels ...string) *SizeHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, typeSizeHistogram, true)
	ls := labelString(labels)
	if m, ok := f.metrics[ls]; ok {
		return m.(*SizeHistogram)
	}
	h := &SizeHistogram{}
	f.metrics[ls] = h
	return h
}

// labelString renders alternating key, value pairs as a Prometheus label
// block: {k="v",k2="v2"}. No labels renders as "". It panics on an odd
// number of arguments.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd number of label arguments")
	}
	var b []byte
	b = append(b, '{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, labels[i]...)
		b = append(b, '=', '"')
		for _, c := range []byte(labels[i+1]) {
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			default:
				b = append(b, c)
			}
		}
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}

// sortedNames returns the registry's family names in lexical order.
// Callers must hold r.mu.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sortedLabels returns a family's label strings in lexical order.
func (f *family) sortedLabels() []string {
	ls := make([]string, 0, len(f.metrics))
	for l := range f.metrics {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}
