package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		m    int
		card []int
	}{
		{"negative m", -1, []int{2}},
		{"no vars", 5, nil},
		{"zero card", 5, []int{2, 0}},
		{"card too big", 5, []int{257}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", tc.name)
				}
			}()
			New(tc.m, tc.card)
		}()
	}
}

func TestGetSetRow(t *testing.T) {
	d := New(3, []int{2, 3})
	d.Set(1, 0, 1)
	d.Set(1, 1, 2)
	if d.Get(1, 0) != 1 || d.Get(1, 1) != 2 {
		t.Fatalf("Get after Set: (%d,%d)", d.Get(1, 0), d.Get(1, 1))
	}
	row := d.Row(1)
	if len(row) != 2 || row[0] != 1 || row[1] != 2 {
		t.Fatalf("Row(1) = %v", row)
	}
	if d.Get(0, 0) != 0 || d.Get(2, 1) != 0 {
		t.Error("untouched cells should be zero")
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	d := New(1, []int{2})
	defer func() {
		if recover() == nil {
			t.Fatal("Set out-of-range state did not panic")
		}
	}()
	d.Set(0, 0, 2)
}

func TestAccessors(t *testing.T) {
	d := New(7, []int{2, 3, 4})
	if d.NumSamples() != 7 || d.NumVars() != 3 {
		t.Fatalf("dims = (%d,%d)", d.NumSamples(), d.NumVars())
	}
	if d.Cardinality(1) != 3 {
		t.Fatalf("Cardinality(1) = %d", d.Cardinality(1))
	}
	got := d.Cardinalities()
	got[0] = 99
	if d.Cardinality(0) != 2 {
		t.Error("Cardinalities must return a copy")
	}
}

func TestUniformIndependentDeterministicAcrossP(t *testing.T) {
	const m, n, r = 1000, 8, 3
	ref := NewUniformCard(m, n, r)
	ref.UniformIndependent(42, 1)
	for _, p := range []int{2, 3, 7} {
		d := NewUniformCard(m, n, r)
		d.UniformIndependent(42, p)
		if !bytes.Equal(d.cells, ref.cells) {
			t.Fatalf("p=%d produced different data than p=1", p)
		}
	}
}

func TestUniformIndependentSeedsDiffer(t *testing.T) {
	a := NewUniformCard(100, 5, 2)
	b := NewUniformCard(100, 5, 2)
	a.UniformIndependent(1, 2)
	b.UniformIndependent(2, 2)
	if bytes.Equal(a.cells, b.cells) {
		t.Error("different seeds produced identical data")
	}
}

func TestUniformIndependentMarginalsRoughlyUniform(t *testing.T) {
	const m, n, r = 30000, 4, 3
	d := NewUniformCard(m, n, r)
	d.UniformIndependent(7, 4)
	for j := 0; j < n; j++ {
		var counts [r]int
		for i := 0; i < m; i++ {
			counts[d.Get(i, j)]++
		}
		for s, c := range counts {
			frac := float64(c) / m
			if math.Abs(frac-1.0/r) > 0.02 {
				t.Errorf("var %d state %d frequency %.4f, want ~%.4f", j, s, frac, 1.0/r)
			}
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	const m = 20000
	d := NewUniformCard(m, 1, 4)
	d.Zipf(3, 2.0, 2)
	var counts [4]int
	for i := 0; i < m; i++ {
		counts[d.Get(i, 0)]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]) {
		t.Errorf("zipf counts not decreasing: %v", counts)
	}
	if frac := float64(counts[0]) / m; frac < 0.5 {
		t.Errorf("state 0 frequency %.3f, expected majority under skew 2", frac)
	}
}

func TestZipfZeroSkewIsUniform(t *testing.T) {
	const m = 30000
	d := NewUniformCard(m, 1, 4)
	d.Zipf(5, 0, 2)
	var counts [4]int
	for i := 0; i < m; i++ {
		counts[d.Get(i, 0)]++
	}
	for s, c := range counts {
		if math.Abs(float64(c)/m-0.25) > 0.02 {
			t.Errorf("state %d frequency %.4f under zero skew", s, float64(c)/m)
		}
	}
}

func TestZipfDeterministicAcrossP(t *testing.T) {
	a := NewUniformCard(500, 3, 5)
	b := NewUniformCard(500, 3, 5)
	a.Zipf(11, 1.5, 1)
	b.Zipf(11, 1.5, 4)
	if !bytes.Equal(a.cells, b.cells) {
		t.Error("Zipf output depends on P")
	}
}

func TestEncodeKeysMatchesCodec(t *testing.T) {
	d := NewUniformCard(200, 6, 3)
	d.UniformIndependent(9, 2)
	codec, err := d.Codec()
	if err != nil {
		t.Fatal(err)
	}
	keys := d.EncodeKeys(codec, 3)
	if len(keys) != 200 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := range keys {
		if want := codec.Encode(d.Row(i)); keys[i] != want {
			t.Fatalf("key %d = %d, want %d", i, keys[i], want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New(4, []int{2, 3, 5})
	d.UniformIndependent(13, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.Cardinalities())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != 4 || back.NumVars() != 3 {
		t.Fatalf("round trip dims (%d,%d)", back.NumSamples(), back.NumVars())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if back.Get(i, j) != d.Get(i, j) {
				t.Fatalf("cell (%d,%d): %d != %d", i, j, back.Get(i, j), d.Get(i, j))
			}
		}
	}
}

func TestReadCSVInfersCardinalities(t *testing.T) {
	in := "a,b\n0,2\n1,0\n0,1\n"
	d, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cardinality(0) != 2 || d.Cardinality(1) != 3 {
		t.Fatalf("inferred cardinalities (%d,%d), want (2,3)", d.Cardinality(0), d.Cardinality(1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		card []int
	}{
		"empty input":        {"", nil},
		"ragged row":         {"a,b\n0\n", nil},
		"non-integer":        {"a\nx\n", nil},
		"negative state":     {"a\n-1\n", nil},
		"state over 255":     {"a\n300\n", nil},
		"card mismatch":      {"a,b\n0,0\n", []int{2}},
		"state outside card": {"a\n5\n", []int{2}},
	}
	for name, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.in), tc.card); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("a\n0\n\n1\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSamples() != 2 {
		t.Fatalf("NumSamples = %d, want 2", d.NumSamples())
	}
}

func BenchmarkUniformIndependent(b *testing.B) {
	d := NewUniformCard(100000, 30, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.UniformIndependent(uint64(i), 4)
	}
}

func TestReadCSVNamedReturnsHeader(t *testing.T) {
	in := "smoke , cancer,xray\n0,1,0\n"
	d, names, err := ReadCSVNamed(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVars() != 3 {
		t.Fatalf("vars = %d", d.NumVars())
	}
	want := []string{"smoke", "cancer", "xray"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("names = %v", names)
		}
	}
}
