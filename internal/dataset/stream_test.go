package dataset

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestStreamCSVDeliversAllRows(t *testing.T) {
	d := NewUniformCard(1000, 4, 3)
	d.UniformIndependent(60, 2)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	var got [][]uint8
	err := StreamCSV(&buf, d.Cardinalities(), 64, func(rows [][]uint8) error {
		for _, r := range rows {
			got = append(got, append([]uint8(nil), r...)) // copy: backing reused
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("streamed %d rows", len(got))
	}
	for i, row := range got {
		for j, s := range row {
			if s != d.Get(i, j) {
				t.Fatalf("row %d col %d: %d != %d", i, j, s, d.Get(i, j))
			}
		}
	}
}

func TestStreamCSVBlockSizes(t *testing.T) {
	d := NewUniformCard(100, 2, 2)
	d.UniformIndependent(61, 1)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, bs := range []int{1, 7, 100, 1000, 0 /* default */} {
		blocks, total := 0, 0
		err := StreamCSV(bytes.NewReader(data), []int{2, 2}, bs, func(rows [][]uint8) error {
			blocks++
			total += len(rows)
			if bs > 0 && len(rows) > bs {
				return fmt.Errorf("block of %d exceeds size %d", len(rows), bs)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		if total != 100 {
			t.Fatalf("bs=%d: total %d", bs, total)
		}
		if bs == 1 && blocks != 100 {
			t.Fatalf("bs=1: %d blocks", blocks)
		}
	}
}

func TestStreamCSVErrors(t *testing.T) {
	cases := map[string]struct {
		in   string
		card []int
	}{
		"no cards":       {"a\n0\n", nil},
		"bad card":       {"a\n0\n", []int{0}},
		"empty":          {"", []int{2}},
		"header width":   {"a,b\n0,0\n", []int{2}},
		"ragged":         {"a,b\n0\n", []int{2, 2}},
		"non-integer":    {"a\nz\n", []int{2}},
		"state too big":  {"a\n5\n", []int{2}},
		"negative state": {"a\n-1\n", []int{2}},
	}
	for name, tc := range cases {
		err := StreamCSV(strings.NewReader(tc.in), tc.card, 8, func([][]uint8) error { return nil })
		if err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestStreamCSVCallbackErrorAborts(t *testing.T) {
	in := "a\n0\n1\n0\n1\n"
	calls := 0
	err := StreamCSV(strings.NewReader(in), []int{2}, 1, func([][]uint8) error {
		calls++
		return fmt.Errorf("stop")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestStreamCSVSkipsBlankLines(t *testing.T) {
	total := 0
	err := StreamCSV(strings.NewReader("a\n0\n\n1\n\n"), []int{2}, 8, func(rows [][]uint8) error {
		total += len(rows)
		return nil
	})
	if err != nil || total != 2 {
		t.Fatalf("err=%v total=%d", err, total)
	}
}
