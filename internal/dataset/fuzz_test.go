package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary text must never panic the CSV reader.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n0,1\n1,0\n")
	f.Add("")
	f.Add("x\n")
	f.Add("a,b\n0\n")
	f.Add("a\n-1\n")
	f.Add("a\n999999999999999999999\n")
	f.Add("a,a,a\n0,0,0\n\n\n1,1,1")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), nil)
		if err == nil && d == nil {
			t.Fatal("nil dataset with nil error")
		}
		if err == nil {
			// Parsed data must round trip.
			var buf bytes.Buffer
			if werr := d.WriteCSV(&buf); werr != nil {
				t.Fatalf("round trip write failed: %v", werr)
			}
			back, rerr := ReadCSV(&buf, d.Cardinalities())
			if rerr != nil {
				t.Fatalf("round trip read failed: %v", rerr)
			}
			if back.NumSamples() != d.NumSamples() {
				t.Fatalf("round trip lost rows: %d != %d", back.NumSamples(), d.NumSamples())
			}
		}
	})
}

// FuzzStreamCSV: the streaming reader must agree with the batch reader on
// accept/reject for any input.
func FuzzStreamCSV(f *testing.F) {
	f.Add("a,b\n0,1\n1,0\n")
	f.Add("a\n0\n\n1\n")
	f.Add("a,b\n0\n")
	f.Fuzz(func(t *testing.T, input string) {
		batch, batchErr := ReadCSV(strings.NewReader(input), []int{2, 2})
		streamed := 0
		streamErr := StreamCSV(strings.NewReader(input), []int{2, 2}, 3, func(rows [][]uint8) error {
			streamed += len(rows)
			return nil
		})
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("accept/reject disagreement: batch=%v stream=%v", batchErr, streamErr)
		}
		if batchErr == nil && streamed != batch.NumSamples() {
			t.Fatalf("row counts differ: stream %d vs batch %d", streamed, batch.NumSamples())
		}
	})
}
