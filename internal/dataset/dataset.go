// Package dataset defines the training-data representation (the m×n matrix
// D of Section II-B) and the synthetic workload generators used by the
// paper's evaluation.
//
// A Dataset stores one byte per observation cell, row-major, so row i is a
// contiguous state string D_i — the exact layout the table-construction
// primitive scans. Generators produce data deterministically from a seed,
// in parallel, with one RNG stream per worker so that the output is
// independent of P.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"waitfreebn/internal/encoding"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/sched"
)

// Dataset is an m×n matrix of discrete observations. Cell (i, j) holds the
// state of variable j in sample i, with states in [0, Cardinality(j)).
type Dataset struct {
	m, n  int
	card  []int
	cells []uint8 // row-major, len = m*n
}

// New returns an all-zero dataset with m samples of the given per-variable
// cardinalities. It panics on m < 0, empty cardinalities, or a cardinality
// outside [1, 256].
func New(m int, cardinalities []int) *Dataset {
	if m < 0 {
		panic(fmt.Sprintf("dataset: negative sample count %d", m))
	}
	if len(cardinalities) == 0 {
		panic("dataset: no variables")
	}
	for j, r := range cardinalities {
		if r < 1 || r > 256 {
			panic(fmt.Sprintf("dataset: variable %d cardinality %d outside [1,256]", j, r))
		}
	}
	return &Dataset{
		m:     m,
		n:     len(cardinalities),
		card:  append([]int(nil), cardinalities...),
		cells: make([]uint8, m*len(cardinalities)),
	}
}

// NewUniformCard returns an all-zero dataset with m samples of n variables
// that all take r states.
func NewUniformCard(m, n, r int) *Dataset {
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	return New(m, card)
}

// NumSamples returns m.
func (d *Dataset) NumSamples() int { return d.m }

// NumVars returns n.
func (d *Dataset) NumVars() int { return d.n }

// Cardinality returns the number of states of variable j.
func (d *Dataset) Cardinality(j int) int { return d.card[j] }

// Cardinalities returns a copy of the per-variable cardinalities.
func (d *Dataset) Cardinalities() []int { return append([]int(nil), d.card...) }

// Row returns sample i as a slice aliasing the dataset's storage. Callers
// must not modify it; use Set for writes.
func (d *Dataset) Row(i int) []uint8 {
	return d.cells[i*d.n : (i+1)*d.n : (i+1)*d.n]
}

// RowsFlat returns samples [lo, hi) as one contiguous row-major slab
// aliasing the dataset's storage — the input shape of the column-major
// block encode (encoding.Codec.EncodeFlat). Callers must not modify it.
func (d *Dataset) RowsFlat(lo, hi int) []uint8 {
	return d.cells[lo*d.n : hi*d.n : hi*d.n]
}

// Get returns the state of variable j in sample i.
func (d *Dataset) Get(i, j int) uint8 { return d.cells[i*d.n+j] }

// Set assigns the state of variable j in sample i. It panics if the state
// exceeds the variable's cardinality.
func (d *Dataset) Set(i, j int, s uint8) {
	if int(s) >= d.card[j] {
		panic(fmt.Sprintf("dataset: state %d out of range for variable %d (cardinality %d)", s, j, d.card[j]))
	}
	d.cells[i*d.n+j] = s
}

// Codec returns the key codec matching this dataset's cardinalities.
func (d *Dataset) Codec() (*encoding.Codec, error) {
	return encoding.NewCodec(d.card)
}

// genChunk is the number of rows generated from one RNG stream. Streams
// are a function of (seed, chunk index) only, so generated data is
// identical for every worker count p.
const genChunk = 4096

// chunkSeed derives the RNG stream for one chunk of rows.
func chunkSeed(seed uint64, chunk int) uint64 {
	return rng.Mix64(rng.Mix64(seed) ^ rng.Mix64(uint64(chunk)+0x9e37))
}

// forEachChunk runs gen(chunk, lo, hi) over fixed-size row chunks,
// distributing chunks cyclically across p workers.
func (d *Dataset) forEachChunk(p int, gen func(chunk, lo, hi int)) {
	if p <= 0 {
		p = sched.DefaultP()
	}
	chunks := (d.m + genChunk - 1) / genChunk
	if chunks == 0 {
		return
	}
	if p > chunks {
		p = chunks
	}
	sched.Run(p, func(w int) {
		for c := w; c < chunks; c += p {
			lo := c * genChunk
			hi := lo + genChunk
			if hi > d.m {
				hi = d.m
			}
			gen(c, lo, hi)
		}
	})
}

// UniformIndependent fills the dataset with independent uniform draws per
// variable — the exact workload of the paper's evaluation ("synthesized
// from uniform and independent distributions for each variable",
// Section V-A). Generation runs on p workers; the result depends only on
// seed, not on p.
func (d *Dataset) UniformIndependent(seed uint64, p int) {
	d.forEachChunk(p, func(chunk, lo, hi int) {
		src := rng.NewXoshiro256SS(chunkSeed(seed, chunk))
		for i := lo; i < hi; i++ {
			row := d.cells[i*d.n : (i+1)*d.n]
			for j := range row {
				row[j] = uint8(src.Uint64n(uint64(d.card[j])))
			}
		}
	})
}

// Zipf fills the dataset with independent draws per variable where state s
// of variable j has probability proportional to 1/(s+1)^skew. skew = 0
// degenerates to uniform. Skewed data concentrates keys in fewer distinct
// state strings, which stresses the contention behaviour of lock-based
// builders (hot keys) without changing the wait-free builder's path.
func (d *Dataset) Zipf(seed uint64, skew float64, p int) {
	// Precompute per-variable cumulative distributions.
	cdfs := make([][]float64, d.n)
	for j := 0; j < d.n; j++ {
		w := make([]float64, d.card[j])
		var sum float64
		for s := range w {
			w[s] = 1.0 / math.Pow(float64(s+1), skew)
			sum += w[s]
		}
		cdf := make([]float64, d.card[j])
		acc := 0.0
		for s := range w {
			acc += w[s] / sum
			cdf[s] = acc
		}
		cdf[len(cdf)-1] = 1.0
		cdfs[j] = cdf
	}
	d.forEachChunk(p, func(chunk, rowLo, rowHi int) {
		src := rng.NewXoshiro256SS(chunkSeed(seed, chunk))
		for i := rowLo; i < rowHi; i++ {
			row := d.cells[i*d.n : (i+1)*d.n]
			for j := range row {
				u := src.Float64()
				cdf := cdfs[j]
				lo, hi := 0, len(cdf)-1
				for lo < hi {
					mid := (lo + hi) / 2
					if cdf[mid] < u {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				row[j] = uint8(lo)
			}
		}
	})
}

// ZipfRows fills the dataset so that entire rows (joint state strings,
// i.e. the keys of the potential table) are Zipf-rank distributed over the
// whole key space: the rank-k row has probability proportional to 1/k^skew,
// with rank 1 being the all-zeros row. skew = 0 degenerates to (continuous
// approximation of) uniform. This is the hot-KEY workload: per-variable
// Zipf (the Zipf method) multiplies n nearly-independent mild skews and
// leaves even its hottest full row far below one percent of the mass,
// whereas skew-adaptive construction needs genuinely hot table keys —
// at skew 1.2 over a few hundred thousand ranks the top row alone carries
// roughly 1/ζ-normalized 14% of all samples. Sampling uses the bounded
// continuous inverse CDF over ranks [1, N] (exact in the N→∞ per-rank
// limit, monotone and O(1) per row); the result depends only on seed,
// not on p.
func (d *Dataset) ZipfRows(seed uint64, skew float64, p int) {
	nKeys := 1.0
	for _, c := range d.card {
		nKeys *= float64(c)
	}
	d.forEachChunk(p, func(chunk, lo, hi int) {
		src := rng.NewXoshiro256SS(chunkSeed(seed, chunk))
		for i := lo; i < hi; i++ {
			u := src.Float64()
			var rank float64
			switch {
			case skew == 0:
				rank = u * nKeys
			case skew == 1:
				// lim s→1 of the general branch: F(x) ∝ ln x.
				rank = math.Pow(nKeys, u) - 1
			default:
				// Inverse of F(x) = (x^(1-s) - 1)/(N^(1-s) - 1), x ∈ [1, N].
				rank = math.Pow(u*(math.Pow(nKeys, 1-skew)-1)+1, 1/(1-skew)) - 1
			}
			k := uint64(rank)
			if k >= uint64(nKeys) {
				k = uint64(nKeys) - 1
			}
			// Decompose the rank mixed-radix into a state string; the digit
			// order is an arbitrary fixed bijection rank→row.
			row := d.cells[i*d.n : (i+1)*d.n]
			for j := d.n - 1; j >= 0; j-- {
				c := uint64(d.card[j])
				row[j] = uint8(k % c)
				k /= c
			}
		}
	})
}

// EncodeKeys converts every row to its key (Eq. 3) using p workers,
// appending into dst. This is a convenience for tests and benches that
// need the key stream without the table; the construction primitive itself
// encodes on the fly.
func (d *Dataset) EncodeKeys(codec *encoding.Codec, p int) []uint64 {
	keys := make([]uint64, d.m)
	spans := sched.BlockPartition(d.m, p)
	sched.Run(p, func(w int) {
		span := spans[w]
		if span.Lo < span.Hi {
			codec.EncodeFlat(d.RowsFlat(span.Lo, span.Hi), keys[span.Lo:span.Hi])
		}
	})
	return keys
}

// WriteCSV writes the dataset with a header row "x0,x1,..." followed by one
// integer row per sample.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for j := 0; j < d.n; j++ {
		if j > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "x%d", j); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for i := 0; i < d.m; i++ {
		row := d.Row(i)
		for j, s := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(s))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any integer CSV with a
// header row). Cardinalities are inferred as 1 + max observed state per
// column unless card is non-nil, in which case states are validated
// against it.
func ReadCSV(r io.Reader, card []int) (*Dataset, error) {
	d, _, err := ReadCSVNamed(r, card)
	return d, err
}

// ReadCSVNamed is ReadCSV that additionally returns the header's column
// names, so downstream reporting can use the dataset's own labels.
func ReadCSVNamed(r io.Reader, card []int) (*Dataset, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("dataset: empty input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	n := len(header)
	if n == 0 || (n == 1 && header[0] == "") {
		return nil, nil, fmt.Errorf("dataset: empty header")
	}
	names := make([]string, n)
	for j, h := range header {
		names[j] = strings.TrimSpace(h)
	}
	if card != nil && len(card) != n {
		return nil, nil, fmt.Errorf("dataset: header has %d columns, cardinalities has %d", n, len(card))
	}
	var rows [][]uint8
	maxState := make([]int, n)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != n {
			return nil, nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), n)
		}
		row := make([]uint8, n)
		for j, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: line %d column %d: %v", line, j, err)
			}
			if v < 0 || v > 255 {
				return nil, nil, fmt.Errorf("dataset: line %d column %d: state %d outside [0,255]", line, j, v)
			}
			if card != nil && v >= card[j] {
				return nil, nil, fmt.Errorf("dataset: line %d column %d: state %d >= cardinality %d", line, j, v, card[j])
			}
			if v > maxState[j] {
				maxState[j] = v
			}
			row[j] = uint8(v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if card == nil {
		card = make([]int, n)
		for j := range card {
			card[j] = maxState[j] + 1
		}
	}
	d := New(len(rows), card)
	for i, row := range rows {
		copy(d.cells[i*n:(i+1)*n], row)
	}
	return d, names, nil
}
