package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// StreamCSV reads an integer CSV with a header row and delivers the rows
// in blocks of at most blockSize, without ever materializing the whole
// dataset — the companion to core.Builder for out-of-core construction.
//
// Cardinalities must be supplied (streaming cannot infer them by a second
// pass); every state is validated against them. The callback receives a
// block of rows whose backing memory is reused between calls: consume or
// copy before returning. Returning an error from fn aborts the stream.
func StreamCSV(r io.Reader, card []int, blockSize int, fn func(rows [][]uint8) error) error {
	if len(card) == 0 {
		return fmt.Errorf("dataset: no cardinalities supplied")
	}
	for j, c := range card {
		if c < 1 || c > 256 {
			return fmt.Errorf("dataset: variable %d cardinality %d outside [1,256]", j, c)
		}
	}
	if blockSize <= 0 {
		blockSize = 1 << 14
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("dataset: empty input")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ",")
	n := len(card)
	if len(header) != n {
		return fmt.Errorf("dataset: header has %d columns, cardinalities %d", len(header), n)
	}

	backing := make([]uint8, blockSize*n)
	rows := make([][]uint8, 0, blockSize)
	line := 1
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		err := fn(rows)
		rows = rows[:0]
		return err
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != n {
			return fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(fields), n)
		}
		row := backing[len(rows)*n : (len(rows)+1)*n : (len(rows)+1)*n]
		for j, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("dataset: line %d column %d: %v", line, j, err)
			}
			if v < 0 || v >= card[j] {
				return fmt.Errorf("dataset: line %d column %d: state %d outside [0,%d)", line, j, v, card[j])
			}
			row[j] = uint8(v)
		}
		rows = append(rows, row)
		if len(rows) == blockSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return flush()
}
