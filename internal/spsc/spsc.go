// Package spsc implements the wait-free single-producer single-consumer
// queues that carry "foreign" keys between cores in the table-construction
// primitive (the Q_{i,j} of Algorithms 1 and 2).
//
// The protocol gives every queue exactly one producer (the core that
// encountered a key outside its partition, during stage 1) and exactly one
// consumer (the key's owning core, during stage 2). With that restriction
// both Push and Pop complete in a bounded number of their own steps with no
// locks, no CAS loops, and no dependence on the other side's scheduling —
// the wait-free property the paper's primitive is named for.
//
// Three implementations are provided:
//
//   - Ring: a fixed-capacity circular buffer with atomic head/tail indexes
//     (the classic Lamport queue). Push fails when full.
//   - Chunked: an unbounded linked list of fixed-size segments. The
//     producer appends to the tail segment and links new segments; the
//     consumer walks from the head. Publication of both elements and
//     segments uses acquire/release atomics. This is the default for the
//     construction primitive, since the number of foreign keys per core
//     pair is not known in advance.
//   - MutexQueue: a lock-based queue used only as an ablation arm (A1) and
//     as an oracle in tests.
package spsc

import (
	"sync"
	"sync/atomic"
)

// Queue is the interface the construction strategies program against.
// Push and Pop may be called concurrently only in the single-producer,
// single-consumer discipline described in the package comment.
type Queue interface {
	// Push appends v. It reports false if the queue cannot accept more
	// elements (only possible for bounded implementations).
	Push(v uint64) bool
	// Pop removes and returns the oldest element, reporting false if the
	// queue is observed empty.
	Pop() (uint64, bool)
	// PushBatch appends as many elements of vs as the queue can accept,
	// in order, and returns how many it took (always len(vs) for
	// unbounded implementations). The point of the batch form is
	// amortization: one release store (or one lock acquisition) publishes
	// the whole batch instead of one per element.
	PushBatch(vs []uint64) int
	// PopBatch removes up to len(dst) of the oldest elements into dst and
	// returns how many it wrote; 0 means the queue was observed empty.
	// Like PushBatch it performs one release store per call.
	PopBatch(dst []uint64) int
	// Len returns the number of elements currently queued. It is exact
	// when producer and consumer are quiescent (e.g. between the two
	// stages of the construction primitive).
	Len() int
	// Pushed returns the cumulative number of elements ever accepted by
	// Push/PushBatch — the queue-traffic counter the skew diagnostics
	// aggregate per destination. Like Len it is exact once the producer
	// has quiesced.
	Pushed() uint64
}

// Ring is a bounded wait-free SPSC queue over a power-of-two circular
// buffer. head is advanced only by the consumer, tail only by the producer.
type Ring struct {
	buf  []uint64
	mask uint64
	_    [48]byte // keep head and tail on separate cache lines
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	hw   uint64 // producer-owned occupancy high-water mark (shares the tail line)
	ps   uint64 // producer-owned cumulative accepted-push count (ditto)
}

// NewRing returns a ring that can hold at least capacity elements.
// capacity must be positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("spsc: NewRing capacity must be positive")
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]uint64, n), mask: uint64(n - 1)}
}

// Capacity returns the number of elements the ring can hold.
func (r *Ring) Capacity() int { return len(r.buf) }

// Push appends v, reporting false if the ring is full.
func (r *Ring) Push(v uint64) bool {
	tail := r.tail.Load()
	used := tail - r.head.Load()
	if used == uint64(len(r.buf)) {
		return false
	}
	if used+1 > r.hw {
		r.hw = used + 1
	}
	r.buf[tail&r.mask] = v
	r.ps++
	r.tail.Store(tail + 1) // release: publishes the element above
	return true
}

// Pop removes and returns the oldest element, reporting false when empty.
func (r *Ring) Pop() (uint64, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return 0, false
	}
	v := r.buf[head&r.mask]
	r.head.Store(head + 1) // release: frees the slot for the producer
	return v, true
}

// PushBatch appends up to len(vs) elements, returning how many fit. The
// copy may wrap the buffer (two memmoves); the tail is published once for
// the whole batch.
func (r *Ring) PushBatch(vs []uint64) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.head.Load())
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	idx := tail & r.mask
	c := copy(r.buf[idx:], vs[:n])
	if uint64(c) < n {
		copy(r.buf, vs[c:n])
	}
	used := tail - r.head.Load() + n
	if used > r.hw {
		r.hw = used
	}
	r.ps += n
	r.tail.Store(tail + n) // release: publishes the whole batch
	return int(n)
}

// PopBatch removes up to len(dst) elements into dst, returning how many it
// wrote. The head is published once for the whole batch.
func (r *Ring) PopBatch(dst []uint64) int {
	head := r.head.Load()
	avail := r.tail.Load() - head
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	idx := head & r.mask
	c := copy(dst[:n], r.buf[idx:])
	if uint64(c) < n {
		copy(dst[c:n], r.buf)
	}
	r.head.Store(head + n) // release: frees the slots for the producer
	return int(n)
}

// Len returns the number of queued elements.
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// HighWater returns the largest occupancy the ring has reached. It is
// written only by the producer, so it is exact once the producer has
// quiesced (e.g. after the construction barrier).
func (r *Ring) HighWater() int { return int(r.hw) }

// Pushed returns the cumulative accepted-push count (producer-owned, exact
// once the producer has quiesced).
func (r *Ring) Pushed() uint64 { return r.ps }

// chunkSize is the number of elements per segment of a Chunked queue.
// 1024 × 8 bytes amortizes the per-segment allocation over 8 KiB of
// sequentially written keys.
const chunkSize = 1024

type chunk struct {
	vals [chunkSize]uint64
	next atomic.Pointer[chunk]
}

// Chunked is an unbounded wait-free SPSC queue built from linked fixed-size
// segments. The producer owns (tail, tailIdx) and the published count; the
// consumer owns (head, headIdx) and the consumed count.
type Chunked struct {
	head     *chunk // consumer-owned
	headIdx  int    // consumer-owned index into head
	popped   atomic.Uint64
	_        [40]byte
	tail     *chunk // producer-owned
	tailIdx  int    // producer-owned index into tail
	pushed   atomic.Uint64
	segments atomic.Uint64 // total segments ever allocated (instrumentation)
}

// NewChunked returns an empty unbounded queue.
func NewChunked() *Chunked {
	c := &chunk{}
	q := &Chunked{head: c, tail: c}
	q.segments.Store(1)
	return q
}

// Push appends v. It always succeeds (allocating a new segment when the
// tail segment fills) and never blocks on the consumer.
func (q *Chunked) Push(v uint64) bool {
	if q.tailIdx == chunkSize {
		next := &chunk{}
		q.tail.next.Store(next) // release: publishes the full segment link
		q.tail = next
		q.tailIdx = 0
		q.segments.Add(1)
	}
	q.tail.vals[q.tailIdx] = v
	q.tailIdx++
	q.pushed.Add(1) // release: publishes the element
	return true
}

// Pop removes and returns the oldest element, reporting false when the
// queue is observed empty.
func (q *Chunked) Pop() (uint64, bool) {
	if q.popped.Load() == q.pushed.Load() {
		return 0, false
	}
	if q.headIdx == chunkSize {
		// pushed > popped guarantees the producer has linked the next
		// segment before publishing any element stored in it.
		q.head = q.head.next.Load()
		q.headIdx = 0
	}
	v := q.head.vals[q.headIdx]
	q.headIdx++
	q.popped.Add(1)
	return v, true
}

// PushBatch appends all of vs, filling (and linking) as many segments as
// needed, then publishes the whole batch with a single pushed update.
// Segment links are stored before that update, so a consumer that observes
// the new count also observes every link it needs to walk.
func (q *Chunked) PushBatch(vs []uint64) int {
	total := len(vs)
	for len(vs) > 0 {
		if q.tailIdx == chunkSize {
			next := &chunk{}
			q.tail.next.Store(next)
			q.tail = next
			q.tailIdx = 0
			q.segments.Add(1)
		}
		c := copy(q.tail.vals[q.tailIdx:], vs)
		q.tailIdx += c
		vs = vs[c:]
	}
	if total > 0 {
		q.pushed.Add(uint64(total)) // release: publishes the whole batch
	}
	return total
}

// PopBatch removes up to len(dst) elements into dst, walking segment links
// as needed, and publishes the consumption with a single popped update.
func (q *Chunked) PopBatch(dst []uint64) int {
	avail := q.pushed.Load() - q.popped.Load()
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	rem := dst[:n]
	for len(rem) > 0 {
		if q.headIdx == chunkSize {
			// Every element we are entitled to (n <= pushed-popped) had its
			// segment link stored before the pushed update we loaded.
			q.head = q.head.next.Load()
			q.headIdx = 0
		}
		c := copy(rem, q.head.vals[q.headIdx:])
		q.headIdx += c
		rem = rem[c:]
	}
	q.popped.Add(n)
	return int(n)
}

// Len returns the number of queued elements.
func (q *Chunked) Len() int { return int(q.pushed.Load() - q.popped.Load()) }

// Segments returns how many segments the queue has allocated in total.
func (q *Chunked) Segments() int { return int(q.segments.Load()) }

// Pushed returns the cumulative push count (the producer's published
// element counter, which the queue already maintains for Pop visibility).
func (q *Chunked) Pushed() uint64 { return q.pushed.Load() }

// Spillover wraps a bounded Ring with an unbounded Chunked side queue:
// when the ring is full, Push spills the key to the side queue instead of
// failing, so a mis-sized ring degrades gracefully (slower, heap-allocating)
// rather than aborting the build. Pop drains the ring first and falls back
// to the side queue; FIFO order across the two is not preserved, which is
// fine for the construction primitive (counting is commutative). The same
// single-producer single-consumer discipline as the wrapped queues applies,
// and both Push and Pop remain wait-free (Chunked never blocks).
type Spillover struct {
	ring    *Ring
	side    *Chunked
	spilled uint64 // producer-owned spill count
}

// NewSpillover returns a spillover queue over a ring of at least capacity
// elements.
func NewSpillover(capacity int) *Spillover {
	return &Spillover{ring: NewRing(capacity), side: NewChunked()}
}

// Push appends v, spilling to the side queue when the ring is full. It
// always succeeds.
func (s *Spillover) Push(v uint64) bool {
	if s.ring.Push(v) {
		return true
	}
	s.side.Push(v)
	s.spilled++
	return true
}

// Pop removes and returns an element, preferring the ring; order across
// ring and side queue is not FIFO (see type comment).
func (s *Spillover) Pop() (uint64, bool) {
	if v, ok := s.ring.Pop(); ok {
		return v, true
	}
	return s.side.Pop()
}

// PushBatch appends all of vs: whatever fits in the ring goes there
// (partial flush), the remainder spills to the side queue. It always
// accepts the whole batch.
func (s *Spillover) PushBatch(vs []uint64) int {
	n := s.ring.PushBatch(vs)
	if n < len(vs) {
		rest := len(vs) - n
		s.side.PushBatch(vs[n:])
		s.spilled += uint64(rest)
	}
	return len(vs)
}

// PopBatch removes up to len(dst) elements, draining the ring before the
// side queue; order across the two is not FIFO (see type comment).
func (s *Spillover) PopBatch(dst []uint64) int {
	n := s.ring.PopBatch(dst)
	if n < len(dst) {
		n += s.side.PopBatch(dst[n:])
	}
	return n
}

// Len returns the number of queued elements across ring and side queue.
func (s *Spillover) Len() int { return s.ring.Len() + s.side.Len() }

// Spilled returns how many pushes overflowed into the side queue. It is
// producer-owned and exact once the producer has quiesced (e.g. after the
// construction barrier).
func (s *Spillover) Spilled() uint64 { return s.spilled }

// HighWater returns the wrapped ring's occupancy high-water mark.
func (s *Spillover) HighWater() int { return s.ring.HighWater() }

// Capacity returns the wrapped ring's capacity.
func (s *Spillover) Capacity() int { return s.ring.Capacity() }

// SideSegments returns how many segments the side queue has allocated — 1
// means the spill path was never exercised beyond the pre-allocated segment.
func (s *Spillover) SideSegments() int { return s.side.Segments() }

// Pushed returns the cumulative push count across ring and side queue.
func (s *Spillover) Pushed() uint64 { return s.ring.Pushed() + s.side.Pushed() }

// MutexQueue is a lock-based unbounded FIFO. It exists to quantify, in
// ablation A1, what the wait-free queues buy over the obvious
// mutex-protected alternative; Acquires counts lock acquisitions.
type MutexQueue struct {
	mu       sync.Mutex
	vals     []uint64
	headIdx  int
	pushed   uint64
	acquires atomic.Uint64
}

// NewMutexQueue returns an empty lock-based queue.
func NewMutexQueue() *MutexQueue { return &MutexQueue{} }

// Push appends v under the queue lock.
func (q *MutexQueue) Push(v uint64) bool {
	q.acquires.Add(1)
	q.mu.Lock()
	q.vals = append(q.vals, v)
	q.pushed++
	q.mu.Unlock()
	return true
}

// Pop removes and returns the oldest element under the queue lock.
func (q *MutexQueue) Pop() (uint64, bool) {
	q.acquires.Add(1)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.headIdx == len(q.vals) {
		if q.headIdx > 0 {
			q.vals = q.vals[:0]
			q.headIdx = 0
		}
		return 0, false
	}
	v := q.vals[q.headIdx]
	q.headIdx++
	return v, true
}

// PushBatch appends all of vs under a single lock acquisition.
func (q *MutexQueue) PushBatch(vs []uint64) int {
	if len(vs) == 0 {
		return 0
	}
	q.acquires.Add(1)
	q.mu.Lock()
	q.vals = append(q.vals, vs...)
	q.pushed += uint64(len(vs))
	q.mu.Unlock()
	return len(vs)
}

// PopBatch removes up to len(dst) elements under a single lock acquisition.
func (q *MutexQueue) PopBatch(dst []uint64) int {
	if len(dst) == 0 {
		return 0
	}
	q.acquires.Add(1)
	q.mu.Lock()
	defer q.mu.Unlock()
	n := copy(dst, q.vals[q.headIdx:])
	q.headIdx += n
	if q.headIdx == len(q.vals) && q.headIdx > 0 {
		q.vals = q.vals[:0]
		q.headIdx = 0
	}
	return n
}

// Len returns the number of queued elements.
func (q *MutexQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.vals) - q.headIdx
}

// Acquires returns the number of lock acquisitions so far.
func (q *MutexQueue) Acquires() uint64 { return q.acquires.Load() }

// Pushed returns the cumulative push count under the queue lock.
func (q *MutexQueue) Pushed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushed
}

var (
	_ Queue = (*Ring)(nil)
	_ Queue = (*Chunked)(nil)
	_ Queue = (*Spillover)(nil)
	_ Queue = (*MutexQueue)(nil)
)

// Kind selects a queue implementation by name; the construction builder and
// the ablation benches use it to parameterize strategy sweeps.
type Kind int

const (
	// KindChunked selects the unbounded wait-free chunked queue (default).
	KindChunked Kind = iota
	// KindRing selects the bounded wait-free ring; callers must size it.
	KindRing
	// KindMutex selects the lock-based queue (ablation baseline).
	KindMutex
)

// String returns the kind's human-readable name.
func (k Kind) String() string {
	switch k {
	case KindChunked:
		return "chunked"
	case KindRing:
		return "ring"
	case KindMutex:
		return "mutex"
	default:
		return "unknown"
	}
}

// New constructs a queue of the given kind. boundedCap sizes KindRing and
// is ignored otherwise.
func New(k Kind, boundedCap int) Queue {
	switch k {
	case KindChunked:
		return NewChunked()
	case KindRing:
		return NewRing(boundedCap)
	case KindMutex:
		return NewMutexQueue()
	default:
		panic("spsc: unknown queue kind")
	}
}
