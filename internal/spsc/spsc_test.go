package spsc

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"waitfreebn/internal/rng"
)

func kinds() map[string]func() Queue {
	return map[string]func() Queue{
		"ring":    func() Queue { return NewRing(1 << 16) },
		"chunked": func() Queue { return NewChunked() },
		"mutex":   func() Queue { return NewMutexQueue() },
	}
}

func TestQueueFIFOSequential(t *testing.T) {
	for name, mk := range kinds() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if _, ok := q.Pop(); ok {
				t.Fatal("Pop on empty queue reported ok")
			}
			for i := uint64(0); i < 1000; i++ {
				if !q.Push(i) {
					t.Fatalf("Push(%d) failed", i)
				}
			}
			if q.Len() != 1000 {
				t.Fatalf("Len = %d, want 1000", q.Len())
			}
			for i := uint64(0); i < 1000; i++ {
				v, ok := q.Pop()
				if !ok || v != i {
					t.Fatalf("Pop #%d = (%d,%v), want (%d,true)", i, v, ok, i)
				}
			}
			if _, ok := q.Pop(); ok {
				t.Fatal("Pop after drain reported ok")
			}
			if q.Len() != 0 {
				t.Fatalf("Len after drain = %d", q.Len())
			}
		})
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	for name, mk := range kinds() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			next := uint64(0)
			expect := uint64(0)
			src := rng.NewXoshiro256SS(3)
			for op := 0; op < 20000; op++ {
				if src.Uint64n(2) == 0 {
					if q.Push(next) {
						next++
					}
				} else if v, ok := q.Pop(); ok {
					if v != expect {
						t.Fatalf("op %d: popped %d, want %d", op, v, expect)
					}
					expect++
				}
			}
			// Drain the remainder.
			for {
				v, ok := q.Pop()
				if !ok {
					break
				}
				if v != expect {
					t.Fatalf("drain: popped %d, want %d", v, expect)
				}
				expect++
			}
			if expect != next {
				t.Fatalf("popped %d values, pushed %d", expect, next)
			}
		})
	}
}

func TestRingCapacityAndFull(t *testing.T) {
	r := NewRing(10) // rounds up to 16
	if r.Capacity() != 16 {
		t.Fatalf("Capacity = %d, want 16", r.Capacity())
	}
	for i := uint64(0); i < 16; i++ {
		if !r.Push(i) {
			t.Fatalf("Push %d failed before capacity", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push succeeded on a full ring")
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}
	if !r.Push(99) {
		t.Fatal("Push failed after freeing one slot")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	// Push/pop many times the capacity to exercise index wrap.
	v := uint64(0)
	e := uint64(0)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(v) {
				t.Fatal("unexpected full")
			}
			v++
		}
		for i := 0; i < 3; i++ {
			got, ok := r.Pop()
			if !ok || got != e {
				t.Fatalf("round %d: Pop = (%d,%v), want %d", round, got, ok, e)
			}
			e++
		}
	}
}

func TestNewRingPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d) did not panic", c)
				}
			}()
			NewRing(c)
		}()
	}
}

func TestChunkedCrossesSegments(t *testing.T) {
	q := NewChunked()
	n := uint64(chunkSize*3 + 7)
	for i := uint64(0); i < n; i++ {
		q.Push(i)
	}
	if q.Segments() != 4 {
		t.Fatalf("Segments = %d, want 4", q.Segments())
	}
	for i := uint64(0); i < n; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v)", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestMutexQueueAcquiresCounter(t *testing.T) {
	q := NewMutexQueue()
	q.Push(1)
	q.Push(2)
	q.Pop()
	if got := q.Acquires(); got != 3 {
		t.Errorf("Acquires = %d, want 3", got)
	}
}

// TestConcurrentSPSC runs a real producer goroutine against a real consumer
// goroutine and checks that every value arrives exactly once, in order.
// Run with -race to validate the memory-ordering claims.
func TestConcurrentSPSC(t *testing.T) {
	const n = 200000
	for name, mk := range kinds() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := uint64(0); i < n; {
					if q.Push(i) {
						i++
					} else {
						runtime.Gosched() // ring full: let the consumer run
					}
				}
			}()
			errs := make(chan error, 1)
			go func() {
				defer wg.Done()
				expect := uint64(0)
				for expect < n {
					v, ok := q.Pop()
					if !ok {
						runtime.Gosched() // queue empty: let the producer run
						continue
					}
					if v != expect {
						select {
						case errs <- errorf("popped %d, want %d", v, expect):
						default:
						}
						return
					}
					expect++
				}
			}()
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after concurrent run", q.Len())
			}
		})
	}
}

// TestConcurrentRingSmall stresses wraparound under concurrency with a tiny
// ring, maximizing full/empty boundary transitions.
func TestConcurrentRingSmall(t *testing.T) {
	const n = 100000
	q := NewRing(2)
	done := make(chan uint64, 1)
	go func() {
		var sum uint64
		count := 0
		for count < n {
			if v, ok := q.Pop(); ok {
				sum += v
				count++
			} else {
				runtime.Gosched()
			}
		}
		done <- sum
	}()
	var want uint64
	for i := uint64(0); i < n; {
		if q.Push(i) {
			want += i
			i++
		} else {
			runtime.Gosched()
		}
	}
	if got := <-done; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func errorf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindChunked: "chunked", KindRing: "ring", KindMutex: "mutex", Kind(99): "unknown"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNewByKind(t *testing.T) {
	if _, ok := New(KindChunked, 0).(*Chunked); !ok {
		t.Error("New(KindChunked) wrong type")
	}
	if _, ok := New(KindRing, 8).(*Ring); !ok {
		t.Error("New(KindRing) wrong type")
	}
	if _, ok := New(KindMutex, 0).(*MutexQueue); !ok {
		t.Error("New(KindMutex) wrong type")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(unknown kind) did not panic")
			}
		}()
		New(Kind(42), 0)
	}()
}

func BenchmarkRingPushPop(b *testing.B)    { benchQueue(b, NewRing(1<<12)) }
func BenchmarkChunkedPushPop(b *testing.B) { benchQueue(b, NewChunked()) }
func BenchmarkMutexPushPop(b *testing.B)   { benchQueue(b, NewMutexQueue()) }

func benchQueue(b *testing.B, q Queue) {
	for i := 0; i < b.N; i++ {
		q.Push(uint64(i))
		q.Pop()
	}
}

func TestRingHighWater(t *testing.T) {
	r := NewRing(8)
	if r.HighWater() != 0 {
		t.Fatalf("fresh ring HighWater = %d", r.HighWater())
	}
	for i := uint64(0); i < 5; i++ {
		r.Push(i)
	}
	if r.HighWater() != 5 {
		t.Fatalf("HighWater = %d after 5 pushes, want 5", r.HighWater())
	}
	// Draining must not lower the mark; refilling to a lower peak must not
	// move it either.
	for i := 0; i < 5; i++ {
		r.Pop()
	}
	r.Push(0)
	r.Push(1)
	if r.HighWater() != 5 {
		t.Fatalf("HighWater = %d after drain+refill, want 5 (sticky peak)", r.HighWater())
	}
	// A new, higher peak moves it.
	for i := uint64(0); i < 5; i++ {
		r.Push(i)
	}
	if r.HighWater() != 7 {
		t.Fatalf("HighWater = %d after 7-deep fill, want 7", r.HighWater())
	}
}

func TestSpilloverOverflowsIntoSideQueue(t *testing.T) {
	s := NewSpillover(4) // rounds to capacity 4
	for i := uint64(0); i < 20; i++ {
		if !s.Push(i) {
			t.Fatalf("Push(%d) failed; spillover must never fail", i)
		}
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	if got := s.Spilled(); got != 20-uint64(s.Capacity()) {
		t.Fatalf("Spilled = %d, want %d", got, 20-s.Capacity())
	}
	// Every element comes back exactly once (order across ring and side
	// queue is not FIFO, so check the multiset).
	seen := make(map[uint64]int)
	for i := 0; i < 20; i++ {
		v, ok := s.Pop()
		if !ok {
			t.Fatalf("Pop %d reported empty", i)
		}
		seen[v]++
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on drained spillover succeeded")
	}
	for i := uint64(0); i < 20; i++ {
		if seen[i] != 1 {
			t.Fatalf("element %d popped %d times", i, seen[i])
		}
	}
}

func TestSpilloverNoSpillWithinCapacity(t *testing.T) {
	s := NewSpillover(8)
	for i := uint64(0); i < 8; i++ {
		s.Push(i)
	}
	if s.Spilled() != 0 {
		t.Fatalf("Spilled = %d within capacity", s.Spilled())
	}
	if s.SideSegments() != 1 {
		t.Fatalf("SideSegments = %d, want the single pre-allocated segment", s.SideSegments())
	}
	if s.HighWater() != 8 {
		t.Fatalf("HighWater = %d, want 8", s.HighWater())
	}
}

func TestSpilloverConcurrent(t *testing.T) {
	const n = 100000
	s := NewSpillover(8) // tiny ring: most pushes spill under contention
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			s.Push(i)
		}
	}()
	var sum uint64
	var count int
	go func() {
		defer wg.Done()
		for count < n {
			v, ok := s.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			sum += v
			count++
		}
	}()
	wg.Wait()
	if want := uint64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d (elements lost or duplicated)", sum, want)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain", s.Len())
	}
}
