package spsc

import (
	"sort"
	"sync"
	"testing"

	"waitfreebn/internal/rng"
)

func TestBatchFIFOSequential(t *testing.T) {
	for name, mk := range kinds() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			if n := q.PopBatch(make([]uint64, 8)); n != 0 {
				t.Fatalf("PopBatch on empty queue = %d", n)
			}
			if n := q.PushBatch(nil); n != 0 {
				t.Fatalf("PushBatch(nil) = %d", n)
			}
			next := uint64(0)
			for _, sz := range []int{1, 7, 64, 1000, 3} {
				batch := make([]uint64, sz)
				for i := range batch {
					batch[i] = next
					next++
				}
				if n := q.PushBatch(batch); n != sz {
					t.Fatalf("PushBatch(%d) accepted %d", sz, n)
				}
			}
			if q.Len() != int(next) {
				t.Fatalf("Len = %d, want %d", q.Len(), next)
			}
			expect := uint64(0)
			dst := make([]uint64, 129)
			for {
				n := q.PopBatch(dst)
				if n == 0 {
					break
				}
				for _, v := range dst[:n] {
					if v != expect {
						t.Fatalf("popped %d, want %d", v, expect)
					}
					expect++
				}
			}
			if expect != next {
				t.Fatalf("popped %d values, pushed %d", expect, next)
			}
		})
	}
}

// TestBatchInterleavedWithSingleOps mixes Push/Pop with PushBatch/PopBatch
// in random order and checks strict FIFO against a running counter.
func TestBatchInterleavedWithSingleOps(t *testing.T) {
	for name, mk := range kinds() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			src := rng.NewXoshiro256SS(17)
			next, expect := uint64(0), uint64(0)
			buf := make([]uint64, 200)
			for op := 0; op < 30000; op++ {
				switch src.Uint64n(4) {
				case 0:
					if q.Push(next) {
						next++
					}
				case 1:
					sz := int(src.Uint64n(uint64(len(buf)))) + 1
					for i := 0; i < sz; i++ {
						buf[i] = next + uint64(i)
					}
					next += uint64(q.PushBatch(buf[:sz]))
				case 2:
					if v, ok := q.Pop(); ok {
						if v != expect {
							t.Fatalf("op %d: Pop = %d, want %d", op, v, expect)
						}
						expect++
					}
				case 3:
					sz := int(src.Uint64n(uint64(len(buf)))) + 1
					n := q.PopBatch(buf[:sz])
					for _, v := range buf[:n] {
						if v != expect {
							t.Fatalf("op %d: PopBatch got %d, want %d", op, v, expect)
						}
						expect++
					}
				}
			}
			for {
				n := q.PopBatch(buf)
				if n == 0 {
					break
				}
				for _, v := range buf[:n] {
					if v != expect {
						t.Fatalf("drain: got %d, want %d", v, expect)
					}
					expect++
				}
			}
			if expect != next {
				t.Fatalf("popped %d values, accepted %d", expect, next)
			}
		})
	}
}

func TestRingPushBatchPartialAccept(t *testing.T) {
	r := NewRing(8)
	batch := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if n := r.PushBatch(batch); n != 8 {
		t.Fatalf("PushBatch into empty ring of 8 accepted %d", n)
	}
	if n := r.PushBatch(batch); n != 0 {
		t.Fatalf("PushBatch into full ring accepted %d", n)
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}
	if n := r.PushBatch([]uint64{100, 101}); n != 1 {
		t.Fatalf("PushBatch with one free slot accepted %d", n)
	}
	want := []uint64{1, 2, 3, 4, 5, 6, 7, 100}
	dst := make([]uint64, 16)
	if n := r.PopBatch(dst); n != len(want) {
		t.Fatalf("PopBatch drained %d, want %d", n, len(want))
	}
	for i, w := range want {
		if dst[i] != w {
			t.Fatalf("drained[%d] = %d, want %d", i, dst[i], w)
		}
	}
	if r.HighWater() != 8 {
		t.Fatalf("HighWater = %d, want 8", r.HighWater())
	}
}

// TestRingBatchWraparound forces every batch copy to straddle the buffer
// end by keeping the ring offset at an odd phase.
func TestRingBatchWraparound(t *testing.T) {
	r := NewRing(8)
	next, expect := uint64(0), uint64(0)
	// Offset the indexes so batches of 5 repeatedly wrap the 8-slot buffer.
	for i := 0; i < 3; i++ {
		r.Push(next)
		next++
		if v, _ := r.Pop(); v != expect {
			t.Fatalf("warmup pop = %d, want %d", v, expect)
		}
		expect++
	}
	batch := make([]uint64, 5)
	dst := make([]uint64, 5)
	for round := 0; round < 50; round++ {
		for i := range batch {
			batch[i] = next + uint64(i)
		}
		if n := r.PushBatch(batch); n != 5 {
			t.Fatalf("round %d: PushBatch accepted %d", round, n)
		}
		next += 5
		if n := r.PopBatch(dst); n != 5 {
			t.Fatalf("round %d: PopBatch drained %d", round, n)
		}
		for _, v := range dst {
			if v != expect {
				t.Fatalf("round %d: got %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

func TestChunkedBatchCrossesSegments(t *testing.T) {
	q := NewChunked()
	// One batch spanning four segments, pushed at an offset so the copy
	// starts mid-segment.
	q.Push(0)
	big := make([]uint64, 3*chunkSize+17)
	for i := range big {
		big[i] = uint64(i) + 1
	}
	if n := q.PushBatch(big); n != len(big) {
		t.Fatalf("PushBatch accepted %d, want %d", n, len(big))
	}
	if q.Segments() != 4 {
		t.Fatalf("Segments = %d, want 4", q.Segments())
	}
	expect := uint64(0)
	dst := make([]uint64, 777)
	for {
		n := q.PopBatch(dst)
		if n == 0 {
			break
		}
		for _, v := range dst[:n] {
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
	}
	if expect != uint64(len(big))+1 {
		t.Fatalf("drained %d values, want %d", expect, len(big)+1)
	}
}

func TestSpilloverPushBatchPartialFlushThenSpill(t *testing.T) {
	s := NewSpillover(8)
	batch := make([]uint64, 20)
	for i := range batch {
		batch[i] = uint64(i)
	}
	if n := s.PushBatch(batch); n != 20 {
		t.Fatalf("Spillover.PushBatch accepted %d, want 20", n)
	}
	if s.Spilled() != 12 {
		t.Fatalf("Spilled = %d, want 12 (ring holds 8)", s.Spilled())
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	// Mid-batch spill again with the ring partially drained: 3 slots free.
	dst := make([]uint64, 3)
	if n := s.PopBatch(dst); n != 3 {
		t.Fatalf("PopBatch = %d, want 3", n)
	}
	if n := s.PushBatch([]uint64{100, 101, 102, 103, 104}); n != 5 {
		t.Fatal("second PushBatch rejected elements")
	}
	if s.Spilled() != 14 {
		t.Fatalf("Spilled = %d, want 14", s.Spilled())
	}
	// Everything must come back out exactly once (order across ring and
	// side queue is not FIFO).
	var got []uint64
	buf := make([]uint64, 7)
	for {
		n := s.PopBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	want := append(append([]uint64{}, batch[3:]...), 100, 101, 102, 103, 104)
	if len(got) != len(want) {
		t.Fatalf("drained %d values, want %d", len(got), len(want))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multiset mismatch at %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMutexQueueBatchAcquiresOnce(t *testing.T) {
	q := NewMutexQueue()
	q.PushBatch(make([]uint64, 100))
	if q.Acquires() != 1 {
		t.Fatalf("Acquires after one PushBatch = %d, want 1", q.Acquires())
	}
	q.PopBatch(make([]uint64, 100))
	if q.Acquires() != 2 {
		t.Fatalf("Acquires after one PopBatch = %d, want 2", q.Acquires())
	}
}

// TestConcurrentBatchSPSC runs a producer flushing variable-size batches
// against a consumer draining with PopBatch, under -race, for each queue
// kind plus an undersized spillover.
func TestConcurrentBatchSPSC(t *testing.T) {
	impls := kinds()
	impls["spillover-small"] = func() Queue { return NewSpillover(64) }
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			q := mk()
			const total = 200000
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				src := rng.NewXoshiro256SS(99)
				batch := make([]uint64, 128)
				next := uint64(0)
				for next < total {
					sz := src.Uint64n(uint64(len(batch))) + 1
					if next+sz > total {
						sz = total - next
					}
					for i := uint64(0); i < sz; i++ {
						batch[i] = next + i
					}
					sent := uint64(0)
					for sent < sz {
						sent += uint64(q.PushBatch(batch[sent:sz]))
					}
					next += sz
				}
			}()
			sum := uint64(0)
			count := 0
			dst := make([]uint64, 96)
			for count < total {
				n := q.PopBatch(dst)
				for _, v := range dst[:n] {
					sum += v
				}
				count += n
			}
			wg.Wait()
			if want := uint64(total) * (total - 1) / 2; sum != want {
				t.Fatalf("element sum = %d, want %d", sum, want)
			}
			if q.Len() != 0 {
				t.Fatalf("Len after drain = %d", q.Len())
			}
		})
	}
}

// FuzzBatchInterleaved drives a random interleaving of single and batch
// operations on every queue kind against a slice oracle. For FIFO kinds the
// drained order must match the oracle exactly; for spillover only the
// multiset must match.
func FuzzBatchInterleaved(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 9}, uint8(0))
	f.Add([]byte{255, 254, 4, 4, 4, 0, 0, 17}, uint8(1))
	f.Add([]byte{9, 9, 9, 9, 1, 2, 3}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, kind uint8) {
		var q Queue
		fifo := true
		switch kind % 4 {
		case 0:
			q = NewRing(16)
		case 1:
			q = NewChunked()
		case 2:
			q = NewMutexQueue()
		case 3:
			q = NewSpillover(8)
			fifo = false
		}
		var oracle []uint64
		var got []uint64
		next := uint64(0)
		buf := make([]uint64, 64)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if q.Push(next) {
					oracle = append(oracle, next)
				}
				next++
			case 1:
				sz := int(op)/4%len(buf) + 1
				for i := 0; i < sz; i++ {
					buf[i] = next + uint64(i)
				}
				n := q.PushBatch(buf[:sz])
				if n < 0 || n > sz {
					t.Fatalf("PushBatch(%d) = %d", sz, n)
				}
				oracle = append(oracle, buf[:n]...)
				next += uint64(sz)
			case 2:
				if v, ok := q.Pop(); ok {
					got = append(got, v)
				}
			case 3:
				sz := int(op)/4%len(buf) + 1
				n := q.PopBatch(buf[:sz])
				got = append(got, buf[:n]...)
			}
			if q.Len() != len(oracle)-len(got) {
				t.Fatalf("Len = %d, oracle says %d", q.Len(), len(oracle)-len(got))
			}
		}
		for {
			n := q.PopBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(oracle) {
			t.Fatalf("drained %d values, oracle has %d", len(got), len(oracle))
		}
		if !fifo {
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
		}
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("element %d: got %d, oracle %d", i, got[i], oracle[i])
			}
		}
	})
}
