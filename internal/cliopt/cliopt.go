// Package cliopt defines the flag surface the CLIs share, so bnlearn,
// bntable, bnbench, and bninfer register the construction options (-p,
// -partition, -queue, -ring-cap, -table) and the observability options
// (-metrics-addr, -pprof, -metrics-linger) exactly once, with identical
// names, defaults, and help text, each mapping directly onto core.Options
// and an obs.Registry. Before this package every cmd/*/main.go duplicated
// (and slightly diverged on) this surface by hand.
package cliopt

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"waitfreebn/internal/core"
	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/spsc"
	"waitfreebn/internal/structure"
)

// Core holds the parsed values of the shared construction flags.
type Core struct {
	P            int
	NumParts     int
	Partition    string
	Queue        string
	RingCap      int
	Table        string
	TableHint    int
	WriteBatch   int
	HotSplit     bool
	HotThreshold int
}

// AddCore registers the shared construction flags on fs and returns the
// struct their values parse into.
func AddCore(fs *flag.FlagSet) *Core {
	c := &Core{}
	fs.IntVar(&c.P, "p", 0, "workers (0 = GOMAXPROCS)")
	fs.IntVar(&c.NumParts, "num-partitions", 0, "home partitions the key space splits into (0 = one per worker; set a multiple of -p to give the rebalancer granularity)")
	fs.StringVar(&c.Partition, "partition", "modulo", "key→partition mapping: modulo|range|hash")
	fs.StringVar(&c.Queue, "queue", "chunked", "inter-core queue: chunked|ring|mutex")
	fs.IntVar(&c.RingCap, "ring-cap", 0, "per-queue capacity for -queue ring (0 = size for a full worker block)")
	fs.StringVar(&c.Table, "table", "open", "per-partition count table: open|chained|gomap|dense")
	fs.IntVar(&c.TableHint, "table-hint", 0, "pre-size each partition table for this many entries (0 = heuristic)")
	fs.IntVar(&c.WriteBatch, "write-batch", 0, "write-combining buffer size for the batched write path (0 = default 64; 1 = legacy per-key path)")
	fs.BoolVar(&c.HotSplit, "hot-split", false, "promote hot keys (detected from write-combining flush statistics) to core-private delta counters merged at the build barrier, bypassing the SPSC queues")
	fs.IntVar(&c.HotThreshold, "hot-threshold", 0, "combined per-flush delta at which a key is promoted to the hot-split path (0 = default 8; needs -hot-split)")
	return c
}

// Options maps the parsed flags onto core.Options, rejecting unknown kind
// names with the valid alternatives in the error.
func (c *Core) Options() (core.Options, error) {
	opts := core.Options{
		P: c.P, NumPartitions: c.NumParts,
		RingCapacity: c.RingCap, TableHint: c.TableHint, WriteBatch: c.WriteBatch,
		HotSplit: c.HotSplit, HotThreshold: c.HotThreshold,
	}
	switch c.Partition {
	case "modulo", "":
		opts.Partition = core.PartitionModulo
	case "range":
		opts.Partition = core.PartitionRange
	case "hash":
		opts.Partition = core.PartitionHash
	default:
		return opts, fmt.Errorf("unknown -partition %q (want modulo|range|hash)", c.Partition)
	}
	switch c.Queue {
	case "chunked", "":
		opts.Queue = spsc.KindChunked
	case "ring":
		opts.Queue = spsc.KindRing
	case "mutex":
		opts.Queue = spsc.KindMutex
	default:
		return opts, fmt.Errorf("unknown -queue %q (want chunked|ring|mutex)", c.Queue)
	}
	switch c.Table {
	case "open", "open-addressing", "":
		opts.Table = core.TableOpenAddressing
	case "chained":
		opts.Table = core.TableChained
	case "gomap":
		opts.Table = core.TableGoMap
	case "dense":
		opts.Table = core.TableDense
	default:
		return opts, fmt.Errorf("unknown -table %q (want open|chained|gomap|dense)", c.Table)
	}
	return opts, nil
}

// Learn holds the parsed values of the shared structure-learner flags.
type Learn struct {
	PhasePar  bool
	MargCache int
	Freeze    bool
}

// AddLearn registers the shared learner flags on fs.
func AddLearn(fs *flag.FlagSet) *Learn {
	l := &Learn{}
	fs.BoolVar(&l.PhasePar, "phase-par", false, "parallelize the thicken/thin phases with the speculative wavefront scheduler (output stays bit-identical to the serial learner)")
	fs.IntVar(&l.MargCache, "marg-cache", 0, "marginal-cache budget in table cells, ≈8 bytes each (0 = auto: enabled with -phase-par; negative = disabled)")
	fs.BoolVar(&l.Freeze, "freeze", true, "freeze the potential table into a columnar snapshot after construction so learner scans stream dense sorted memory (-freeze=false scans the live hashtables)")
	return l
}

// Apply maps the parsed flags onto a learner configuration.
func (l *Learn) Apply(cfg *structure.Config) {
	cfg.PhasePar = l.PhasePar
	cfg.MargCacheCells = l.MargCache
	cfg.Freeze = l.Freeze
}

// Obs holds the parsed values of the shared observability flags.
type Obs struct {
	MetricsAddr string
	Pprof       bool
	Linger      time.Duration
}

// AddObs registers the shared observability flags on fs.
func AddObs(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve Prometheus metrics (/metrics), a JSON snapshot (/metrics.json) and optional pprof on this address (e.g. 127.0.0.1:9090)")
	fs.BoolVar(&o.Pprof, "pprof", false, "also mount net/http/pprof handlers on -metrics-addr")
	fs.DurationVar(&o.Linger, "metrics-linger", 0, "keep serving -metrics-addr this long after the run completes (0 = exit immediately)")
	return o
}

// Enabled reports whether any instrumentation was requested. Metrics are
// recorded whenever a listener is up; -pprof alone also brings the
// listener up (on whatever -metrics-addr says, default disabled).
func (o *Obs) Enabled() bool { return o.MetricsAddr != "" }

// Start brings up the metrics registry and, when enabled, the HTTP
// listener. It returns the registry to thread into core.Options.Obs (nil
// when disabled — the zero-overhead path) and a stop function that
// honors -metrics-linger before closing the listener. The stop function
// is non-nil even when disabled.
func (o *Obs) Start() (*obs.Registry, func(), error) {
	if !o.Enabled() {
		return nil, func() {}, nil
	}
	reg := obs.NewRegistry()
	srv, err := obs.Serve(o.MetricsAddr, reg, o.Pprof)
	if err != nil {
		return nil, nil, fmt.Errorf("starting metrics server: %w", err)
	}
	fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", srv.Addr())
	stop := func() {
		if o.Linger > 0 {
			fmt.Fprintf(os.Stderr, "obs: lingering %v for scrapes\n", o.Linger)
			time.Sleep(o.Linger)
		}
		srv.Close()
	}
	return reg, stop, nil
}

// Serve holds the parsed values of the bnserve daemon flags.
type Serve struct {
	Addr           string
	MaxInflight    int
	QueueTimeout   time.Duration
	RequestTimeout time.Duration
	RefreshEvery   time.Duration
	IngestBatch    int
	MaxPending     int
	FreezeP        int
	ReadP          int
	Refreeze       string
	MargCacheCells int
	CoalesceWindow time.Duration
	RebalanceEvery int

	// Durability flags (all inert unless WALDir is set).
	WALDir          string
	Fsync           string
	Recover         bool
	CheckpointEvery int
	DrainTimeout    time.Duration
}

// AddServe registers the serving flags on fs. They compose with AddCore
// (builder configuration) and AddObs (metrics listener) for the full
// bnserve surface.
func AddServe(fs *flag.FlagSet) *Serve {
	s := &Serve{}
	fs.StringVar(&s.Addr, "listen", "127.0.0.1:8080", "serve the /v1/ query API on this address")
	fs.IntVar(&s.MaxInflight, "max-inflight", 64, "admission control: maximum requests executing at once")
	fs.DurationVar(&s.QueueTimeout, "queue-timeout", 100*time.Millisecond, "admission control: reject a queued request after waiting this long for a slot")
	fs.DurationVar(&s.RequestTimeout, "request-timeout", 2*time.Second, "per-request deadline; an expired query answers 504 deadline_exceeded")
	fs.DurationVar(&s.RefreshEvery, "refresh-every", 500*time.Millisecond, "background epoch cadence: build pending rows and publish a fresh snapshot at least this often")
	fs.IntVar(&s.IngestBatch, "ingest-batch", 8192, "block size ingested rows are fed to the builder in")
	fs.IntVar(&s.MaxPending, "max-pending", 1<<20, "reject ingest (429 ingest_overflow) once this many rows await the next epoch")
	fs.IntVar(&s.FreezeP, "freeze-p", 0, "epoch freeze/merge parallelism (0 = builder's worker count)")
	fs.IntVar(&s.ReadP, "read-p", 1, "per-query scan parallelism (1 = favor cross-request parallelism)")
	fs.StringVar(&s.Refreeze, "refreeze", "full", "epoch re-freeze strategy: full (drain+sort every partition) or incremental (alias clean partitions, merge sorted delta runs into dirty ones; bit-identical)")
	fs.IntVar(&s.MargCacheCells, "marg-cache", 1<<16, "epoch-versioned marginal cache budget in count cells for /v1/marginal (negative = disable)")
	fs.DurationVar(&s.CoalesceWindow, "coalesce-window", 200*time.Microsecond, "batch concurrent cache-missing read queries into one fused scan: queries arriving while a scan runs or within this window share a single pass (0 = off)")
	fs.IntVar(&s.RebalanceEvery, "rebalance-every", 0, "re-map the heaviest builder partitions across owner workers every N epoch publishes, using the occupancy histogram (0 = off)")
	fs.StringVar(&s.WALDir, "wal-dir", "", "directory for the write-ahead log and epoch checkpoints; ingest is acked only after the WAL append (durability off when empty)")
	fs.StringVar(&s.Fsync, "fsync", "batch", "WAL fsync policy: always (fsync before every ack), batch (fsync at publish/checkpoint barriers), never")
	fs.BoolVar(&s.Recover, "recover", true, "replay the checkpoint + WAL tail in -wal-dir at startup; with -recover=false a non-empty -wal-dir is a startup error")
	fs.IntVar(&s.CheckpointEvery, "checkpoint-every", 1, "write an epoch checkpoint every N publishes (higher = faster publishes, longer recovery replay)")
	fs.DurationVar(&s.DrainTimeout, "drain-timeout", 10*time.Second, "on SIGTERM/SIGINT: bound for draining in-flight requests and flushing the final epoch + checkpoint")
	return s
}

// Runtime holds the parsed values of the shared execution-control flags:
// the run deadline and the deterministic fault-injection spec.
type Runtime struct {
	Timeout time.Duration
	Faults  string
}

// AddRuntime registers the shared runtime flags on fs.
func AddRuntime(fs *flag.FlagSet) *Runtime {
	r := &Runtime{}
	fs.DurationVar(&r.Timeout, "timeout", 0, "abort the run after this duration (0 = no limit)")
	fs.StringVar(&r.Faults, "faults", "", "deterministic fault-injection spec, e.g. seed=7,panic-stage1=1 (default $"+faultinject.EnvVar+"; \"off\" disables)")
	return r
}

// Context resolves the runtime flags into the run's root context and
// installs the fault plan:
//
//   - SIGINT / SIGTERM cancel the context, so Ctrl-C turns into a clean
//     context.Canceled error from the primitives instead of a hard kill.
//   - -timeout, when positive, bounds the run with context.DeadlineExceeded.
//   - The fault spec (-faults, falling back to $WAITFREEBN_FAULTS) is parsed
//     and activated globally; a bad spec is a configuration error.
//
// The returned cleanup releases the signal handler, the timer, and the
// fault plan; call it (e.g. via defer) before exiting.
func (r *Runtime) Context() (context.Context, func(), error) {
	spec := r.Faults
	if spec == "" {
		spec = os.Getenv(faultinject.EnvVar)
	}
	plan, err := faultinject.ParseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	restoreFaults := func() {}
	if plan != nil {
		restoreFaults = faultinject.Activate(plan)
		fmt.Fprintf(os.Stderr, "faultinject: plan active (%s)\n", spec)
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	cancelTimeout := context.CancelFunc(func() {})
	if r.Timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, r.Timeout)
	}
	cleanup := func() {
		cancelTimeout()
		stopSignals()
		restoreFaults()
	}
	return ctx, cleanup, nil
}

// ParseInts parses a comma-separated integer list — the shared syntax of
// -card, -vars, -mlist and friends. An empty or blank string yields nil.
func ParseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
