package cliopt

import (
	"flag"
	"io"
	"strings"
	"testing"

	"waitfreebn/internal/core"
	"waitfreebn/internal/spsc"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestAddCoreDefaults(t *testing.T) {
	fs := newFlagSet()
	c := AddCore(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := core.Options{} // zero value = paper defaults
	if opts != want {
		t.Fatalf("default options = %+v, want zero value", opts)
	}
}

func TestAddCoreParsesAllKinds(t *testing.T) {
	fs := newFlagSet()
	c := AddCore(fs)
	args := []string{"-p", "8", "-partition", "hash", "-queue", "ring", "-ring-cap", "1024", "-table", "chained", "-table-hint", "4096"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	opts, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.P != 8 || opts.Partition != core.PartitionHash || opts.Queue != spsc.KindRing ||
		opts.RingCapacity != 1024 || opts.Table != core.TableChained || opts.TableHint != 4096 {
		t.Fatalf("parsed options = %+v", opts)
	}
}

func TestCoreRejectsUnknownKinds(t *testing.T) {
	cases := [][]string{
		{"-partition", "zigzag"},
		{"-queue", "carrier-pigeon"},
		{"-table", "btree"},
	}
	for _, args := range cases {
		fs := newFlagSet()
		c := AddCore(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Options(); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestObsDisabledByDefault(t *testing.T) {
	fs := newFlagSet()
	o := AddObs(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Enabled() {
		t.Fatal("obs enabled without -metrics-addr")
	}
	reg, stop, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		t.Fatal("disabled obs returned a registry")
	}
	stop() // must be callable
}

func TestObsStartServesMetrics(t *testing.T) {
	fs := newFlagSet()
	o := AddObs(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	reg, stop, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if reg == nil {
		t.Fatal("enabled obs returned nil registry")
	}
	reg.Counter("test_total").Add(5)
	// The bound address is only reported on stderr; hit the registry's own
	// server through a second Serve is overkill — instead verify via the
	// handler the registry exposes. Start's listener is covered by the obs
	// package's Serve test and the CLI integration test.
	req := newLocalRequest(t, reg)
	if !strings.Contains(req, "test_total 5") {
		t.Fatalf("metrics body:\n%s", req)
	}
}

// newLocalRequest renders the registry through its HTTP handler.
func newLocalRequest(t *testing.T, reg interface{ WritePrometheus(io.Writer) error }) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("2,3, 4")
	if err != nil || len(got) != 3 || got[1] != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
	if got, err := ParseInts(" "); err != nil || got != nil {
		t.Fatalf("blank: %v, %v", got, err)
	}
	if _, err := ParseInts("2,x"); err == nil {
		t.Error("non-integer accepted")
	}
}

// Identical flag registration across two flag sets must not collide and
// must produce identical help text — the uniformity the CLIs rely on.
func TestFlagSurfaceIsReusable(t *testing.T) {
	a, b := newFlagSet(), newFlagSet()
	AddCore(a)
	AddObs(a)
	AddCore(b)
	AddObs(b)
	for _, name := range []string{"p", "partition", "queue", "ring-cap", "table", "table-hint", "metrics-addr", "pprof", "metrics-linger"} {
		fa, fb := a.Lookup(name), b.Lookup(name)
		if fa == nil || fb == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if fa.Usage != fb.Usage || fa.DefValue != fb.DefValue {
			t.Errorf("-%s diverges: %q/%q vs %q/%q", name, fa.Usage, fa.DefValue, fb.Usage, fb.DefValue)
		}
	}
}
