// Package search implements score-based Bayesian-network structure
// learning by greedy hill climbing — the *other* main paradigm the paper
// surveys in Section III (likelihood/posterior/Bayesian-metric scores,
// Friedman's sparse-candidate pruning), built as a baseline against the
// constraint-based learner in internal/structure.
//
// The climber maximizes the decomposable BIC score. All sufficient
// statistics (family contingency tables) come from the wait-free
// potential table via the marginalization primitive, so this package is
// also a second, structurally different consumer of the paper's
// primitives: scores touch marginals over {v} ∪ parents(v) instead of
// variable pairs.
package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"waitfreebn/internal/core"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/rng"
)

// Config parameterizes the hill climber. The zero value applies defaults.
type Config struct {
	// P is the number of workers for marginalization. 0 = GOMAXPROCS.
	P int
	// MaxParents caps each node's in-degree (Friedman-style pruning).
	// Default 3.
	MaxParents int
	// MaxIters bounds the number of applied moves per climb. Default n².
	MaxIters int
	// Restarts adds perturb-and-reclimb rounds after the first climb to
	// escape local optima: the best DAG so far is perturbed with random
	// legal moves and climbed again, keeping the best score seen.
	// Default 0 (pure greedy).
	Restarts int
	// CandidateParents, when positive, applies Friedman et al.'s
	// sparse-candidate pruning (Section III of the paper): each node may
	// only take parents from its top-k partners by pairwise mutual
	// information, computed once with the parallel all-pairs MI primitive.
	// This shrinks the move space from O(n²) to O(n·k) per iteration.
	CandidateParents int
	// Seed drives the perturbations. Default 1.
	Seed uint64
}

func (c Config) withDefaults(n int) Config {
	if c.MaxParents <= 0 {
		c.MaxParents = 3
	}
	if c.MaxIters <= 0 {
		c.MaxIters = n * n
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports the learned DAG and search instrumentation.
type Result struct {
	DAG         *graph.DAG
	Score       float64 // BIC of the final structure, in bits
	Iterations  int     // moves applied across all climbs
	Evaluations int     // family scores computed (cache misses)
	CacheHits   int     // family scores served from cache
	Restarts    int     // perturb-and-reclimb rounds that ran
	Improved    int     // restarts that beat the incumbent
	Elapsed     time.Duration
}

type moveKind int

const (
	moveAdd moveKind = iota
	moveDelete
	moveReverse
)

// HillClimb runs greedy hill climbing from the empty graph: at each step
// it evaluates every legal add/delete/reverse move, applies the one with
// the largest positive BIC improvement, and stops when no move improves
// the score (or MaxIters is reached).
//
// Deprecated: use HillClimbCtx.
func HillClimb(pt *core.PotentialTable, cfg Config) (*Result, error) {
	return HillClimbCtx(context.Background(), pt, cfg)
}

// scanAbort carries a marginalization error out of the score evaluation
// loops (which return bare float64s) up to the HillClimbCtx entry point,
// where it is recovered and returned as an ordinary error.
type scanAbort struct{ err error }

// HillClimbCtx is HillClimb under the fault-tolerant execution contract:
// every sufficient-statistic marginalization observes ctx, so cancellation
// surfaces as context.Canceled (or DeadlineExceeded) in bounded time
// instead of the climb running to completion.
func HillClimbCtx(ctx context.Context, pt *core.PotentialTable, cfg Config) (out *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(scanAbort); ok {
				out, err = nil, a.err
				return
			}
			panic(r)
		}
	}()
	n := pt.Codec().NumVars()
	if n < 2 {
		return nil, fmt.Errorf("search: need at least 2 variables, have %d", n)
	}
	if pt.NumSamples() == 0 {
		return nil, fmt.Errorf("search: empty potential table")
	}
	cfg = cfg.withDefaults(n)
	start := time.Now()

	s := &searcher{ctx: ctx, pt: pt, cfg: cfg, cache: map[string]float64{}}
	if cfg.CandidateParents > 0 {
		cand, err := candidateParents(ctx, pt, cfg.CandidateParents, cfg.P)
		if err != nil {
			return nil, err
		}
		s.candidates = cand
	}
	dag := graph.NewDAG(n)
	// Per-variable family scores of the current structure.
	family := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		family[v] = s.familyScore(v, nil)
		total += family[v]
	}

	res := &Result{DAG: dag}
	total = s.climb(dag, family, total, res)
	res.Score = total

	// Perturb-and-reclimb restarts.
	src := rng.NewXoshiro256SS(cfg.Seed)
	for round := 0; round < cfg.Restarts; round++ {
		res.Restarts++
		cand := res.DAG.Clone()
		perturb(cand, src, cfg.MaxParents, n/2+1)
		candFamily := make([]float64, n)
		candTotal := 0.0
		for v := 0; v < n; v++ {
			candFamily[v] = s.familyScore(v, cand.Parents(v))
			candTotal += candFamily[v]
		}
		candTotal = s.climb(cand, candFamily, candTotal, res)
		if candTotal > res.Score+1e-12 {
			res.DAG = cand
			res.Score = candTotal
			res.Improved++
		}
	}

	res.Evaluations = s.evals
	res.CacheHits = s.hits
	res.Elapsed = time.Since(start)
	return res, nil
}

// perturb applies up to k random legal structural moves to dag.
func perturb(dag *graph.DAG, src *rng.Xoshiro256SS, maxParents, k int) {
	n := dag.N()
	for step := 0; step < k; step++ {
		u := src.Intn(n)
		v := src.Intn(n)
		if u == v {
			continue
		}
		switch {
		case dag.HasEdge(u, v):
			if src.Intn(2) == 0 {
				dag.RemoveEdge(u, v)
			} else if len(dag.Parents(u)) < maxParents {
				dag.RemoveEdge(u, v)
				if dag.AddEdge(v, u) != nil {
					dag.MustAddEdge(u, v) // reversal cyclic: undo
				}
			}
		case !dag.HasEdge(v, u) && len(dag.Parents(v)) < maxParents:
			_ = dag.AddEdge(u, v) // ignore cycle rejections
		}
	}
}

// climb runs the greedy loop on dag in place, maintaining family scores,
// and returns the final total score.
func (s *searcher) climb(dag *graph.DAG, family []float64, total float64, res *Result) float64 {
	n := dag.N()
	cfg := s.cfg
	for iter := 0; iter < cfg.MaxIters; iter++ {
		bestDelta := 0.0
		var bestKind moveKind
		bestU, bestV := -1, -1
		var bestNewV, bestNewU float64 // replacement family scores

		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				switch {
				case !dag.HasEdge(u, v) && !dag.HasEdge(v, u):
					// Add u→v.
					if len(dag.Parents(v)) >= cfg.MaxParents || !s.allowedParent(u, v) {
						continue
					}
					if err := dag.AddEdge(u, v); err != nil {
						continue // would create a cycle
					}
					newV := s.familyScore(v, dag.Parents(v))
					dag.RemoveEdge(u, v)
					if delta := newV - family[v]; delta > bestDelta+1e-12 {
						bestDelta, bestKind, bestU, bestV, bestNewV = delta, moveAdd, u, v, newV
					}
				case dag.HasEdge(u, v):
					// Delete u→v.
					dag.RemoveEdge(u, v)
					newV := s.familyScore(v, dag.Parents(v))
					if delta := newV - family[v]; delta > bestDelta+1e-12 {
						bestDelta, bestKind, bestU, bestV, bestNewV = delta, moveDelete, u, v, newV
					}
					// Reverse u→v to v→u (only evaluated once per edge,
					// from the (u,v) orientation).
					if len(dag.Parents(u)) < cfg.MaxParents && s.allowedParent(v, u) {
						if err := dag.AddEdge(v, u); err == nil {
							newU := s.familyScore(u, dag.Parents(u))
							delta := (newV - family[v]) + (newU - family[u])
							if delta > bestDelta+1e-12 {
								bestDelta, bestKind, bestU, bestV = delta, moveReverse, u, v
								bestNewV, bestNewU = newV, newU
							}
							dag.RemoveEdge(v, u)
						}
					}
					dag.MustAddEdge(u, v) // restore
				}
			}
		}
		if bestU < 0 {
			break // local optimum
		}
		switch bestKind {
		case moveAdd:
			dag.MustAddEdge(bestU, bestV)
			total += bestNewV - family[bestV]
			family[bestV] = bestNewV
		case moveDelete:
			dag.RemoveEdge(bestU, bestV)
			total += bestNewV - family[bestV]
			family[bestV] = bestNewV
		case moveReverse:
			dag.RemoveEdge(bestU, bestV)
			dag.MustAddEdge(bestV, bestU)
			total += (bestNewV - family[bestV]) + (bestNewU - family[bestU])
			family[bestV] = bestNewV
			family[bestU] = bestNewU
		}
		res.Iterations++
	}
	return total
}

type searcher struct {
	ctx        context.Context
	pt         *core.PotentialTable
	cfg        Config
	cache      map[string]float64
	candidates [][]bool // candidates[v][u]: u may be a parent of v (nil = all)
	evals      int
	hits       int
}

// allowedParent reports whether u may become a parent of v under the
// sparse-candidate restriction.
func (s *searcher) allowedParent(u, v int) bool {
	return s.candidates == nil || s.candidates[v][u]
}

// candidateParents computes each node's top-k partners by pairwise MI.
func candidateParents(ctx context.Context, pt *core.PotentialTable, k, p int) ([][]bool, error) {
	n := pt.Codec().NumVars()
	mi, err := pt.AllPairsMICtx(ctx, p, core.MIFused)
	if err != nil {
		return nil, err
	}
	out := make([][]bool, n)
	type partner struct {
		u  int
		mi float64
	}
	for v := 0; v < n; v++ {
		partners := make([]partner, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				partners = append(partners, partner{u, mi.At(min(u, v), max(u, v))})
			}
		}
		sort.Slice(partners, func(a, b int) bool {
			if partners[a].mi != partners[b].mi {
				return partners[a].mi > partners[b].mi
			}
			return partners[a].u < partners[b].u
		})
		out[v] = make([]bool, n)
		limit := k
		if limit > len(partners) {
			limit = len(partners)
		}
		for _, pr := range partners[:limit] {
			out[v][pr.u] = true
		}
	}
	return out, nil
}

// familyScore returns the BIC contribution of variable v with the given
// parent set: the maximized family log-likelihood minus the BIC complexity
// penalty, in bits.
func (s *searcher) familyScore(v int, parents []int) float64 {
	key := familyKey(v, parents)
	if sc, ok := s.cache[key]; ok {
		s.hits++
		return sc
	}
	s.evals++

	codec := s.pt.Codec()
	rv := codec.Cardinality(v)
	m := float64(s.pt.NumSamples())

	// Marginal over parents + v, v varying fastest (last position).
	vars := make([]int, 0, len(parents)+1)
	vars = append(vars, parents...)
	sort.Ints(vars)
	vars = append(vars, v)
	mg, err := s.pt.MarginalizeCtx(s.ctx, vars, s.cfg.P)
	if err != nil {
		panic(scanAbort{err})
	}

	rows := len(mg.Counts) / rv
	var ll float64
	for row := 0; row < rows; row++ {
		var rowTotal uint64
		base := row * rv
		for sv := 0; sv < rv; sv++ {
			rowTotal += mg.Counts[base+sv]
		}
		if rowTotal == 0 {
			continue
		}
		for sv := 0; sv < rv; sv++ {
			c := mg.Counts[base+sv]
			if c == 0 {
				continue
			}
			ll += float64(c) * math.Log2(float64(c)/float64(rowTotal))
		}
	}
	penalty := float64(rows*(rv-1)) / 2 * math.Log2(m)
	score := ll - penalty
	s.cache[key] = score
	return score
}

func familyKey(v int, parents []int) string {
	ps := append([]int(nil), parents...)
	sort.Ints(ps)
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", v)
	for _, p := range ps {
		fmt.Fprintf(&b, "%d,", p)
	}
	return b.String()
}
