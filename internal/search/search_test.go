package search

import (
	"context"
	"testing"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/structure"
)

func tableFrom(t *testing.T, net *bn.Network, m int, seed uint64) *core.PotentialTable {
	t.Helper()
	d, err := net.Sample(m, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestHillClimbRecoversChainSkeleton(t *testing.T) {
	net := bn.Chain(6, 2, 0.85)
	pt := tableFrom(t, net, 60000, 1)
	res, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := structure.CompareSkeleton(res.DAG.Skeleton(), net.DAG())
	// Greedy hill climbing is path-dependent: a wrong early orientation
	// can force one covering edge (a known limitation vs. the
	// constraint-based learner, which recovers this chain exactly).
	// Demand full recall and at most one spurious edge.
	if m.Recall < 1.0 || m.FalsePositives > 1 {
		t.Fatalf("chain recovery too poor: %+v\nlearned %v", m, res.DAG.Edges())
	}
}

func TestHillClimbRecoversNaiveBayes(t *testing.T) {
	net := bn.NaiveBayes(6, 2, 0.85)
	pt := tableFrom(t, net, 60000, 2)
	res, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := structure.CompareSkeleton(res.DAG.Skeleton(), net.DAG())
	if m.F1 < 1.0 {
		t.Fatalf("naive-bayes recovery imperfect: %+v\nlearned %v", m, res.DAG.Edges())
	}
}

func TestHillClimbIndependentDataEmptyGraph(t *testing.T) {
	d := dataset.NewUniformCard(50000, 6, 2)
	d.UniformIndependent(3, 4)
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.DAG.NumEdges() != 0 {
		t.Errorf("independent data produced %d edges: %v", res.DAG.NumEdges(), res.DAG.Edges())
	}
	if res.Iterations != 0 {
		t.Errorf("moves applied on independent data: %d", res.Iterations)
	}
}

func TestHillClimbScoreBeatsEmptyGraph(t *testing.T) {
	net := bn.Asia()
	pt := tableFrom(t, net, 100000, 4)
	res, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Score of the empty structure for comparison.
	s := &searcher{ctx: context.Background(), pt: pt, cfg: Config{P: 4}.withDefaults(8), cache: map[string]float64{}}
	empty := 0.0
	for v := 0; v < 8; v++ {
		empty += s.familyScore(v, nil)
	}
	if res.Score <= empty {
		t.Errorf("final score %v does not beat empty-graph score %v", res.Score, empty)
	}
	if res.DAG.NumEdges() == 0 {
		t.Error("no edges learned on Asia data")
	}
}

func TestHillClimbRespectsMaxParents(t *testing.T) {
	net := bn.NaiveBayes(8, 2, 0.9)
	pt := tableFrom(t, net, 60000, 5)
	res, err := HillClimb(pt, Config{P: 4, MaxParents: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		if got := len(res.DAG.Parents(v)); got > 1 {
			t.Errorf("node %d has %d parents, cap 1", v, got)
		}
	}
}

func TestHillClimbMaxItersBounds(t *testing.T) {
	net := bn.Chain(8, 2, 0.9)
	pt := tableFrom(t, net, 40000, 6)
	res, err := HillClimb(pt, Config{P: 4, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Errorf("Iterations = %d, cap 2", res.Iterations)
	}
	if res.DAG.NumEdges() > 2 {
		t.Errorf("edges = %d after 2 moves", res.DAG.NumEdges())
	}
}

func TestHillClimbErrors(t *testing.T) {
	d := dataset.NewUniformCard(10, 1, 2)
	pt, _, err := core.Build(d, core.Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HillClimb(pt, Config{}); err == nil {
		t.Error("single-variable table accepted")
	}
	d2 := dataset.NewUniformCard(0, 3, 2)
	pt2, _, err := core.Build(d2, core.Options{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HillClimb(pt2, Config{}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestHillClimbCacheWorks(t *testing.T) {
	net := bn.Chain(5, 2, 0.85)
	pt := tableFrom(t, net, 30000, 7)
	res, err := HillClimb(pt, Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Error("family-score cache never hit; climbing re-evaluates everything")
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
}

func TestHillClimbAgreesWithConstraintLearner(t *testing.T) {
	// The two paradigms should land on the same skeleton for a clean,
	// well-sampled model.
	net := bn.Chain(5, 3, 0.75)
	d, err := net.Sample(80000, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := structure.LearnFromTable(pt, structure.Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	hcEdges := hc.DAG.Skeleton().Edges()
	cbEdges := cb.Graph.Edges()
	if len(hcEdges) != len(cbEdges) {
		t.Fatalf("paradigms disagree: hill-climb %v vs constraint %v", hcEdges, cbEdges)
	}
	for i := range hcEdges {
		if hcEdges[i] != cbEdges[i] {
			t.Fatalf("paradigms disagree: hill-climb %v vs constraint %v", hcEdges, cbEdges)
		}
	}
}

func TestFamilyKeyCanonical(t *testing.T) {
	if familyKey(3, []int{5, 1}) != familyKey(3, []int{1, 5}) {
		t.Error("family key not order-invariant")
	}
	if familyKey(3, []int{1}) == familyKey(1, []int{3}) {
		t.Error("family key collides across variables")
	}
	// The mutation-free contract: familyKey must not reorder its input.
	parents := []int{5, 1}
	familyKey(0, parents)
	if parents[0] != 5 {
		t.Error("familyKey mutated its argument")
	}
}

func TestHillClimbRestartsFixChainArtifact(t *testing.T) {
	// The pure greedy climb on this chain leaves one covering edge (see
	// TestHillClimbRecoversChainSkeleton); restarts should find the exact
	// chain, whose BIC is strictly better.
	net := bn.Chain(6, 2, 0.85)
	pt := tableFrom(t, net, 60000, 1)
	base, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := HillClimb(pt, Config{P: 4, Restarts: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if restarted.Score < base.Score {
		t.Fatalf("restarts made the score worse: %v < %v", restarted.Score, base.Score)
	}
	if restarted.Restarts != 20 {
		t.Errorf("Restarts = %d", restarted.Restarts)
	}
	m := structure.CompareSkeleton(restarted.DAG.Skeleton(), net.DAG())
	if m.F1 < base1F(t, base, net) {
		t.Errorf("restarts reduced F1")
	}
}

func base1F(t *testing.T, r *Result, net *bn.Network) float64 {
	t.Helper()
	return structure.CompareSkeleton(r.DAG.Skeleton(), net.DAG()).F1
}

func TestHillClimbRestartsDeterministic(t *testing.T) {
	net := bn.Chain(5, 2, 0.8)
	pt := tableFrom(t, net, 20000, 2)
	a, err := HillClimb(pt, Config{P: 2, Restarts: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(pt, Config{P: 2, Restarts: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.DAG.NumEdges() != b.DAG.NumEdges() {
		t.Error("restarted search not deterministic in seed")
	}
}

func TestPerturbKeepsDAGValid(t *testing.T) {
	src := rng.NewXoshiro256SS(4)
	for trial := 0; trial < 50; trial++ {
		dag := graph.NewDAG(8)
		for i := 0; i+1 < 8; i++ {
			dag.MustAddEdge(i, i+1)
		}
		perturb(dag, src, 3, 10)
		if len(dag.TopoOrder()) != 8 {
			t.Fatal("perturb broke acyclicity")
		}
		for v := 0; v < 8; v++ {
			if len(dag.Parents(v)) > 3 {
				t.Fatalf("perturb exceeded parent cap: %d", len(dag.Parents(v)))
			}
		}
	}
}

func TestSparseCandidatesRecoverChain(t *testing.T) {
	// With k=2 candidates the chain is still exactly recoverable (each
	// node's top-MI partners are its true neighbors) and the search space
	// shrinks measurably.
	net := bn.Chain(6, 2, 0.85)
	pt := tableFrom(t, net, 60000, 12)
	full, err := HillClimb(pt, Config{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := HillClimb(pt, Config{P: 4, CandidateParents: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := structure.CompareSkeleton(sparse.DAG.Skeleton(), net.DAG())
	if m.Recall < 1.0 {
		t.Fatalf("sparse-candidate recall %v: %v", m.Recall, sparse.DAG.Edges())
	}
	if sparse.Evaluations >= full.Evaluations {
		t.Errorf("pruning did not reduce evaluations: %d vs %d", sparse.Evaluations, full.Evaluations)
	}
}

func TestSparseCandidatesRespectRestriction(t *testing.T) {
	net := bn.NaiveBayes(8, 2, 0.85)
	pt := tableFrom(t, net, 50000, 13)
	res, err := HillClimb(pt, Config{P: 4, CandidateParents: 1})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := candidateParents(context.Background(), pt, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.DAG.Edges() {
		if !cands[e[1]][e[0]] {
			t.Errorf("edge %v violates the candidate restriction", e)
		}
	}
}
