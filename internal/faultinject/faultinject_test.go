package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilPlanNeverFires(t *testing.T) {
	var p *Plan
	for pt := Point(0); pt < numPoints; pt++ {
		for seq := uint64(0); seq < 100; seq++ {
			if p.Fire(pt, 0, seq) {
				t.Fatalf("nil plan fired %v", pt)
			}
		}
	}
	p.MaybePanic(PanicStage1, 0, 0) // must not panic
	p.MaybeStall(0, 0)              // must not sleep (nil receiver no-op)
	if p.Rate(QueuePushFail) != 0 {
		t.Error("nil plan reports a nonzero rate")
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	p := NewPlan(42)
	for seq := uint64(0); seq < 10000; seq++ {
		if p.Fire(QueuePushFail, 3, seq) {
			t.Fatal("zero-rate point fired")
		}
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	p := NewPlan(42).WithRate(PanicStage2, 1)
	for seq := uint64(0); seq < 100; seq++ {
		if !p.Fire(PanicStage2, 7, seq) {
			t.Fatal("rate-1 point did not fire")
		}
	}
}

func TestFireIsDeterministic(t *testing.T) {
	a := NewPlan(99).WithRate(QueuePushFail, 0.3)
	b := NewPlan(99).WithRate(QueuePushFail, 0.3)
	for w := 0; w < 4; w++ {
		for seq := uint64(0); seq < 1000; seq++ {
			if a.Fire(QueuePushFail, w, seq) != b.Fire(QueuePushFail, w, seq) {
				t.Fatalf("same seed diverged at worker %d seq %d", w, seq)
			}
		}
	}
}

func TestFireRateRoughlyHonored(t *testing.T) {
	p := NewPlan(7).WithRate(QueuePushFail, 0.25)
	fired := 0
	const trials = 20000
	for seq := uint64(0); seq < trials; seq++ {
		if p.Fire(QueuePushFail, 0, seq) {
			fired++
		}
	}
	got := float64(fired) / trials
	if got < 0.22 || got > 0.28 {
		t.Errorf("empirical rate %.3f far from configured 0.25", got)
	}
}

func TestWorkerTargeting(t *testing.T) {
	p := NewPlan(5).WithRate(PanicStage1, 1)
	p.Worker = 2
	if p.Fire(PanicStage1, 1, 0) {
		t.Error("fired on non-targeted worker")
	}
	if !p.Fire(PanicStage1, 2, 0) {
		t.Error("did not fire on targeted worker")
	}
}

func TestMaybePanicMessage(t *testing.T) {
	p := NewPlan(3).WithRate(PanicStage1, 1)
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "panic-stage1") || !strings.Contains(msg, "worker 4") {
			t.Fatalf("panic value %v lacks point/worker", r)
		}
	}()
	p.MaybePanic(PanicStage1, 4, 0)
	t.Fatal("MaybePanic did not panic at rate 1")
}

func TestMaybeErr(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.MaybeErr(WALWriteFail, 0, 0); err != nil {
		t.Fatalf("nil plan MaybeErr = %v, want nil", err)
	}
	p := NewPlan(11).WithRate(WALFsyncFail, 1)
	err := p.MaybeErr(WALFsyncFail, 3, 42)
	if err == nil {
		t.Fatal("rate-1 MaybeErr returned nil")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("MaybeErr error %T is not *InjectedError", err)
	}
	if inj.Point != WALFsyncFail || inj.Worker != 3 || inj.Seq != 42 || inj.Seed != 11 {
		t.Fatalf("InjectedError fields = %+v", inj)
	}
	if !strings.Contains(err.Error(), "wal-fsync") {
		t.Fatalf("error %q lacks point name", err)
	}
	if err := p.MaybeErr(WALWriteFail, 3, 42); err != nil {
		t.Fatalf("unconfigured point errored: %v", err)
	}
}

func TestActivateRestores(t *testing.T) {
	if Active() != nil {
		t.Fatal("plan already active at test start")
	}
	p := NewPlan(1)
	restore := Activate(p)
	if Active() != p {
		t.Fatal("Activate did not install the plan")
	}
	inner := Activate(NewPlan(2))
	inner()
	if Active() != p {
		t.Fatal("nested restore did not reinstate the outer plan")
	}
	restore()
	if Active() != nil {
		t.Fatal("restore did not clear the plan")
	}
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		spec    string
		wantNil bool
		wantErr bool
		check   func(*Plan) bool
	}{
		{spec: "", wantNil: true},
		{spec: "off", wantNil: true},
		{spec: "seed=9,panic-stage1=1", check: func(p *Plan) bool {
			return p.Seed == 9 && p.Rate(PanicStage1) == 1 && p.Worker == -1
		}},
		{spec: "worker=2,queue-push=0.5,stall=1,stall-dur=5ms", check: func(p *Plan) bool {
			return p.Worker == 2 && p.Rate(WorkerStall) == 1 && p.StallDuration == 5*time.Millisecond &&
				p.Rate(QueuePushFail) > 0.49 && p.Rate(QueuePushFail) < 0.51
		}},
		{spec: "table-grow=1,panic-stage2=0", check: func(p *Plan) bool {
			return p.Rate(TableGrowPressure) == 1 && p.Rate(PanicStage2) == 0
		}},
		{spec: "bogus=1", wantErr: true},
		{spec: "queue-push=2", wantErr: true},
		{spec: "queue-push", wantErr: true},
		{spec: "seed=abc", wantErr: true},
		{spec: "stall-dur=xyz", wantErr: true},
	}
	for _, tc := range tests {
		p, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if tc.wantNil {
			if p != nil {
				t.Errorf("ParseSpec(%q) = %+v, want nil plan", tc.spec, p)
			}
			continue
		}
		if p == nil || !tc.check(p) {
			t.Errorf("ParseSpec(%q) = %+v fails check", tc.spec, p)
		}
	}
}

func TestPointStringsRoundTrip(t *testing.T) {
	for pt := Point(0); pt < numPoints; pt++ {
		got, err := pointByName(pt.String())
		if err != nil || got != pt {
			t.Errorf("point %d name %q does not round-trip", pt, pt.String())
		}
	}
}
