// Package faultinject provides deterministic, seed-driven fault injection
// for the wait-free construction runtime. The chaos tests (and the -faults
// CLI flag / WAITFREEBN_FAULTS environment variable) use it to prove the
// fault-tolerant execution layer's guarantees: every injected fault must
// surface as a clean error — no deadlocked barrier, no leaked goroutine —
// and a plan whose points never fire must leave results bit-identical.
//
// The design keeps the disabled path free: injection sites hoist the active
// plan once per worker with Active() and then call nil-receiver methods
// (Fire, MaybePanic, MaybeStall), which compile to a nil check and an
// immediate return when no plan is installed. Whether a given call fires is
// a pure function of (seed, point, worker, seq), so a plan replays
// identically across runs and under -race.
package faultinject

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names an injection site in the runtime.
type Point uint8

const (
	// QueuePushFail makes a stage-1 foreign-key push report failure, as if
	// a bounded queue had overflowed with spilling disabled.
	QueuePushFail Point = iota
	// PanicStage1 panics a worker at its stage-1 entry boundary.
	PanicStage1
	// PanicStage2 panics a worker at its stage-2 entry boundary (after the
	// inter-stage barrier — the worst place to die for its peers).
	PanicStage2
	// WorkerStall sleeps a worker at the barrier boundary, simulating a
	// straggler (descheduled core, page fault storm).
	WorkerStall
	// TableGrowPressure forces the per-partition table hint to 1 so every
	// table grows repeatedly under load.
	TableGrowPressure
	// WALWriteFail makes a write-ahead-log record append fail with a
	// transient InjectedError before any bytes reach the segment, as if the
	// write had hit a full disk or a torn device. The durable ingest path
	// must retry with backoff and, past its attempt budget, refuse the ack.
	WALWriteFail
	// WALFsyncFail makes a WAL fsync report failure after the bytes were
	// written, the classic "fsyncgate" shape: data may or may not be
	// durable, so the appender must treat the record as unacknowledged.
	WALFsyncFail
	// CheckpointWriteFail makes an epoch checkpoint (table file or manifest)
	// fail mid-write. Checkpointing is an optimization over pure WAL replay,
	// so the failure must be non-fatal: the epoch stays published and
	// recovery falls back to the previous checkpoint plus a longer tail.
	CheckpointWriteFail
	// RecoverReplayFail makes a WAL record replay fail transiently during
	// startup recovery, before the record's rows reach the builder.
	RecoverReplayFail
	// FreezeFail makes an epoch freeze (Builder.SnapshotCtx) fail before it
	// starts. The refresh loop must retry and, past its budget, roll back to
	// the previously published epoch instead of dying.
	FreezeFail
	// RefreezeMergeFail makes an incremental re-freeze fail inside the
	// dirty-partition merge, after path selection but before any block is
	// published. The builder's snapshot lineage must stay untouched, so the
	// refresh loop's rollback-and-recover contract holds unchanged in
	// incremental mode.
	RefreezeMergeFail

	numPoints
)

// String returns the point's spec name (the key accepted by ParseSpec).
func (p Point) String() string {
	switch p {
	case QueuePushFail:
		return "queue-push"
	case PanicStage1:
		return "panic-stage1"
	case PanicStage2:
		return "panic-stage2"
	case WorkerStall:
		return "stall"
	case TableGrowPressure:
		return "table-grow"
	case WALWriteFail:
		return "wal-write"
	case WALFsyncFail:
		return "wal-fsync"
	case CheckpointWriteFail:
		return "checkpoint-write"
	case RecoverReplayFail:
		return "recover-replay"
	case FreezeFail:
		return "freeze-fail"
	case RefreezeMergeFail:
		return "refreeze-merge"
	default:
		return "unknown"
	}
}

// Plan is a deterministic fault schedule: per-point firing rates evaluated
// by hashing (Seed, point, worker, seq). The zero value fires nothing; so
// does a nil *Plan, which is the disabled fast path.
type Plan struct {
	// Seed drives every firing decision.
	Seed uint64
	// Worker restricts injection to one worker index; -1 (the NewPlan
	// default) injects into any worker.
	Worker int
	// StallDuration is how long WorkerStall sleeps when it fires.
	StallDuration time.Duration

	// thresholds[pt] is the firing threshold in the 64-bit hash space;
	// 0 = never, ^uint64(0) = always.
	thresholds [numPoints]uint64
}

// NewPlan returns a plan with the given seed, no active points, any-worker
// targeting, and a 1ms stall duration.
func NewPlan(seed uint64) *Plan {
	return &Plan{Seed: seed, Worker: -1, StallDuration: time.Millisecond}
}

// WithRate sets the firing probability of one point (clamped to [0, 1])
// and returns the plan for chaining.
func (p *Plan) WithRate(pt Point, rate float64) *Plan {
	switch {
	case rate <= 0:
		p.thresholds[pt] = 0
	case rate >= 1:
		p.thresholds[pt] = ^uint64(0)
	default:
		p.thresholds[pt] = uint64(rate * math.MaxUint64)
	}
	return p
}

// Rate reports the configured firing probability of a point.
func (p *Plan) Rate(pt Point) float64 {
	if p == nil {
		return 0
	}
	t := p.thresholds[pt]
	if t == ^uint64(0) {
		return 1
	}
	return float64(t) / math.MaxUint64
}

// Fire reports whether the point fires for this (worker, seq) occurrence.
// seq is the caller's occurrence counter (loop index, push count, block
// number); the decision is a pure function of (Seed, pt, worker, seq), so
// identical call sequences replay identically. A nil plan never fires.
func (p *Plan) Fire(pt Point, worker int, seq uint64) bool {
	if p == nil {
		return false
	}
	t := p.thresholds[pt]
	if t == 0 {
		return false
	}
	if p.Worker >= 0 && worker != p.Worker {
		return false
	}
	if t == ^uint64(0) {
		return true
	}
	return mix(p.Seed, uint64(pt), uint64(worker), seq) < t
}

// MaybePanic panics with a recognizable message when the point fires —
// the injected fault the panic-containment layer must recover into a
// sched.WorkerError.
func (p *Plan) MaybePanic(pt Point, worker int, seq uint64) {
	if p.Fire(pt, worker, seq) {
		panic(fmt.Sprintf("faultinject: %s fired (worker %d, seed %d)", pt, worker, p.Seed))
	}
}

// InjectedError is the transient failure MaybeErr produces. Call sites that
// retry transient I/O errors treat it like any other error; tests unwrap it
// with errors.As to prove a failure came from the plan and not a real fault.
type InjectedError struct {
	Point  Point
	Worker int
	Seq    uint64
	Seed   uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s fired (worker %d, seq %d, seed %d)", e.Point, e.Worker, e.Seq, e.Seed)
}

// MaybeErr returns an *InjectedError when the point fires for this
// (worker, seq) occurrence, and nil otherwise — the error-returning analogue
// of MaybePanic for injection sites on I/O paths (WAL writes, fsyncs,
// checkpoint writes, replay) where failures surface as errors, not panics.
func (p *Plan) MaybeErr(pt Point, worker int, seq uint64) error {
	if p.Fire(pt, worker, seq) {
		return &InjectedError{Point: pt, Worker: worker, Seq: seq, Seed: p.Seed}
	}
	return nil
}

// MaybeStall sleeps for StallDuration when WorkerStall fires, simulating a
// straggling worker.
func (p *Plan) MaybeStall(worker int, seq uint64) {
	if p.Fire(WorkerStall, worker, seq) {
		d := p.StallDuration
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
}

// mix hashes the firing coordinates with a splitmix64 finalizer round per
// component — cheap, stateless, and well distributed for threshold tests.
func mix(seed, pt, worker, seq uint64) uint64 {
	h := seed
	for _, v := range [...]uint64{pt + 1, worker + 1, seq + 1} {
		h += v * 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// active is the globally installed plan; nil means injection is disabled
// and every hook is a nil-check no-op.
var active atomic.Pointer[Plan]

// Activate installs plan (which may be nil) as the global plan and returns
// a function restoring the previous one. Tests use the returned restore in
// a defer; CLIs install once at startup.
func Activate(plan *Plan) (restore func()) {
	prev := active.Swap(plan)
	return func() { active.Store(prev) }
}

// Active returns the installed plan, or nil when injection is disabled.
// Hot paths call this once per worker and use the (possibly nil) result
// with the nil-receiver methods.
func Active() *Plan { return active.Load() }

// EnvVar is the environment variable the CLIs read a fault spec from when
// the -faults flag is not set.
const EnvVar = "WAITFREEBN_FAULTS"

// ParseSpec parses a comma-separated fault specification into a plan:
//
//	seed=7,worker=1,panic-stage1=1,queue-push=0.01,stall=0.5,stall-dur=5ms,table-grow=1
//
// Keys: seed (uint64, default 1), worker (int, default any), stall-dur
// (duration), and one rate in [0,1] per injection point (queue-push,
// panic-stage1, panic-stage2, stall, table-grow). An empty spec or "off"
// yields a nil plan (injection disabled).
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	plan := NewPlan(1)
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", val, err)
			}
			plan.Seed = seed
		case "worker":
			w, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad worker %q: %v", val, err)
			}
			plan.Worker = w
		case "stall-dur":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad stall-dur %q: %v", val, err)
			}
			plan.StallDuration = d
		default:
			pt, err := pointByName(key)
			if err != nil {
				return nil, err
			}
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("faultinject: rate %s=%q outside [0,1]", key, val)
			}
			plan.WithRate(pt, rate)
		}
	}
	return plan, nil
}

func pointByName(name string) (Point, error) {
	for pt := Point(0); pt < numPoints; pt++ {
		if pt.String() == name {
			return pt, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown key %q (want seed, worker, stall-dur, or a point: queue-push, panic-stage1, panic-stage2, stall, table-grow, wal-write, wal-fsync, checkpoint-write, recover-replay, freeze-fail, refreeze-merge)", name)
}
