package graph

import (
	"fmt"
	"sort"
)

// DAG is a directed acyclic graph on n vertices. Acyclicity is enforced at
// AddEdge time, so a DAG value is acyclic by construction.
type DAG struct {
	n       int
	adj     [][]bool
	parents [][]int // sorted
	childs  [][]int // sorted
}

// NewDAG returns an empty DAG on n vertices.
func NewDAG(n int) *DAG {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &DAG{
		n:       n,
		adj:     adj,
		parents: make([][]int, n),
		childs:  make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *DAG) N() int { return g.n }

func (g *DAG) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", v, g.n))
	}
}

// AddEdge inserts the directed edge u→v. It returns an error (and leaves
// the graph unchanged) if the edge would create a cycle; it panics on
// out-of-range vertices or self-loops, which are programming errors.
func (g *DAG) AddEdge(u, v int) error {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on %d", u))
	}
	if g.adj[u][v] {
		return nil
	}
	if g.reaches(v, u) {
		return fmt.Errorf("graph: edge %d→%d would create a cycle", u, v)
	}
	g.adj[u][v] = true
	g.childs[u] = insertSorted(g.childs[u], v)
	g.parents[v] = insertSorted(g.parents[v], u)
	return nil
}

// MustAddEdge is AddEdge for statically known acyclic structures; it
// panics on cycle.
func (g *DAG) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes u→v if present.
func (g *DAG) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	if !g.adj[u][v] {
		return
	}
	g.adj[u][v] = false
	g.childs[u] = removeSorted(g.childs[u], v)
	g.parents[v] = removeSorted(g.parents[v], u)
}

// HasEdge reports whether u→v is an edge.
func (g *DAG) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Parents returns the sorted parents of v (alias; do not modify).
func (g *DAG) Parents(v int) []int {
	g.check(v)
	return g.parents[v]
}

// Children returns the sorted children of v (alias; do not modify).
func (g *DAG) Children(v int) []int {
	g.check(v)
	return g.childs[v]
}

// NumEdges returns the number of directed edges.
func (g *DAG) NumEdges() int {
	total := 0
	for _, cs := range g.childs {
		total += len(cs)
	}
	return total
}

// Edges returns all directed edges (u, v), sorted.
func (g *DAG) Edges() [][2]int {
	var edges [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.childs[u] {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// reaches reports whether there is a directed path from u to v.
func (g *DAG) reaches(u, v int) bool {
	if u == v {
		return true
	}
	visited := make([]bool, g.n)
	stack := []int{u}
	visited[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.childs[x] {
			if y == v {
				return true
			}
			if !visited[y] {
				visited[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

// TopoOrder returns a topological ordering of the vertices (Kahn's
// algorithm; ties broken by vertex number for determinism).
func (g *DAG) TopoOrder() []int {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.parents[v])
	}
	var frontier []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, c := range g.childs[v] {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if len(order) != g.n {
		// Impossible by construction; defend against internal corruption.
		panic("graph: cycle detected in DAG")
	}
	return order
}

// Skeleton returns the undirected graph obtained by dropping edge
// directions.
func (g *DAG) Skeleton() *Undirected {
	u := NewUndirected(g.n)
	for a := 0; a < g.n; a++ {
		for _, b := range g.childs[a] {
			u.AddEdge(a, b)
		}
	}
	return u
}

// Moralize returns the moral graph: the skeleton plus edges between every
// pair of parents that share a child ("marrying" the parents).
func (g *DAG) Moralize() *Undirected {
	u := g.Skeleton()
	for v := 0; v < g.n; v++ {
		ps := g.parents[v]
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				u.AddEdge(ps[i], ps[j])
			}
		}
	}
	return u
}

// DSeparated reports whether every x ∈ X is d-separated from every y ∈ Y
// given the conditioning set Z, using the reachable-by-active-paths ball
// algorithm (Koller & Friedman, Algorithm 3.1). X, Y, Z must be disjoint.
func (g *DAG) DSeparated(X, Y, Z []int) bool {
	inZ := make([]bool, g.n)
	for _, z := range Z {
		g.check(z)
		inZ[z] = true
	}
	// Ancestors of Z (inclusive) determine whether a collider is active.
	ancZ := make([]bool, g.n)
	var mark func(v int)
	mark = func(v int) {
		if ancZ[v] {
			return
		}
		ancZ[v] = true
		for _, p := range g.parents[v] {
			mark(p)
		}
	}
	for _, z := range Z {
		mark(z)
	}

	inY := make([]bool, g.n)
	for _, y := range Y {
		g.check(y)
		inY[y] = true
	}

	// Ball algorithm from each x: states are (vertex, direction), where
	// direction records whether we arrived via an incoming ("down", from a
	// parent) or outgoing ("up", from a child) traversal.
	const (
		up   = 0 // arrived at v from one of v's children, or start
		down = 1 // arrived at v from one of v's parents
	)
	for _, x := range X {
		g.check(x)
		visited := make([][2]bool, g.n)
		type state struct{ v, dir int }
		stack := []state{{x, up}}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[s.v][s.dir] {
				continue
			}
			visited[s.v][s.dir] = true
			if inY[s.v] && s.v != x {
				return false // active path reached Y
			}
			if s.dir == up {
				// Arrived from a child (or start): if v ∉ Z we may go up
				// to parents and down to children.
				if !inZ[s.v] {
					for _, p := range g.parents[s.v] {
						stack = append(stack, state{p, up})
					}
					for _, c := range g.childs[s.v] {
						stack = append(stack, state{c, down})
					}
				}
			} else {
				// Arrived from a parent: chain through to children unless
				// blocked by Z; v is a (potential) collider, so we may
				// bounce back up to parents only if v has a descendant in
				// Z (tracked by ancZ).
				if !inZ[s.v] {
					for _, c := range g.childs[s.v] {
						stack = append(stack, state{c, down})
					}
				}
				if ancZ[s.v] {
					for _, p := range g.parents[s.v] {
						stack = append(stack, state{p, up})
					}
				}
			}
		}
	}
	return true
}

// Clone returns a deep copy of the DAG.
func (g *DAG) Clone() *DAG {
	c := NewDAG(g.n)
	for u := 0; u < g.n; u++ {
		copy(c.adj[u], g.adj[u])
		c.parents[u] = append([]int(nil), g.parents[u]...)
		c.childs[u] = append([]int(nil), g.childs[u]...)
	}
	return c
}
