// Package graph provides the graph machinery used by the structure
// learner: undirected graphs for the draft/thicken/thin phases, directed
// acyclic graphs for ground-truth Bayesian networks, and the reachability
// and d-separation queries the conditional-independence machinery needs.
//
// Vertices are dense integers [0, n), matching variable indexes everywhere
// else in the repository. Adjacency is stored both as a matrix (O(1) edge
// tests, n ≤ a few thousand here) and as sorted neighbor lists (fast
// iteration).
package graph

import (
	"fmt"
	"sort"
)

// Undirected is a simple undirected graph on n vertices.
//
// All query methods (HasEdge, Neighbors, HasPath, AdjacencyPath,
// NeighborsOnPaths, Epoch, ...) are read-only and safe for concurrent use
// as long as no goroutine mutates the graph; AddEdge and RemoveEdge require
// exclusive access.
type Undirected struct {
	n     int
	adj   [][]bool
	nbr   [][]int // lazily maintained sorted adjacency lists
	epoch uint64  // bumped on every structural change
}

// NewUndirected returns an empty undirected graph on n vertices.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Undirected{n: n, adj: adj, nbr: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Undirected) N() int { return g.n }

func (g *Undirected) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", v, g.n))
	}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected.
func (g *Undirected) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on %d", u))
	}
	if g.adj[u][v] {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	g.nbr[u] = insertSorted(g.nbr[u], v)
	g.nbr[v] = insertSorted(g.nbr[v], u)
	g.epoch++
}

// Epoch returns a counter that advances on every structural change
// (successful AddEdge or RemoveEdge). Two Epoch reads that agree bracket a
// mutation-free window, which lets speculative consumers (the wavefront
// scheduler in internal/structure) skip re-validating work computed against
// an earlier state of the graph. No-op calls (adding an existing edge,
// removing a missing one) do not advance the epoch.
func (g *Undirected) Epoch() uint64 { return g.epoch }

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Undirected) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	if !g.adj[u][v] {
		return
	}
	g.adj[u][v] = false
	g.adj[v][u] = false
	g.nbr[u] = removeSorted(g.nbr[u], v)
	g.nbr[v] = removeSorted(g.nbr[v], u)
	g.epoch++
}

// HasEdge reports whether {u, v} is an edge.
func (g *Undirected) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Neighbors returns the sorted neighbors of v. The returned slice aliases
// internal state and must not be modified.
func (g *Undirected) Neighbors(v int) []int {
	g.check(v)
	return g.nbr[v]
}

// Degree returns the number of neighbors of v.
func (g *Undirected) Degree(v int) int {
	g.check(v)
	return len(g.nbr[v])
}

// NumEdges returns the number of edges.
func (g *Undirected) NumEdges() int {
	total := 0
	for _, ns := range g.nbr {
		total += len(ns)
	}
	return total / 2
}

// Edges returns all edges as (u, v) pairs with u < v, sorted.
func (g *Undirected) Edges() [][2]int {
	var edges [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.nbr[u] {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy.
func (g *Undirected) Clone() *Undirected {
	c := NewUndirected(g.n)
	for u := 0; u < g.n; u++ {
		copy(c.adj[u], g.adj[u])
		c.nbr[u] = append([]int(nil), g.nbr[u]...)
	}
	return c
}

// HasPath reports whether u and v are connected by any path, optionally
// excluding a set of blocked vertices (used by Cheng's algorithm to test
// connectivity "apart from the direct edge" and around cut sets). u and v
// themselves are never treated as blocked.
func (g *Undirected) HasPath(u, v int, blocked map[int]bool) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return true
	}
	visited := make([]bool, g.n)
	visited[u] = true
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.nbr[x] {
			if visited[y] || (blocked != nil && blocked[y] && y != v) {
				continue
			}
			if y == v {
				return true
			}
			visited[y] = true
			stack = append(stack, y)
		}
	}
	return false
}

// AdjacencyPath reports whether u and v are connected when the direct edge
// {u, v} is ignored — the "is there another route" test used while
// drafting and thinning. The search never mutates the graph (it skips the
// u—v step instead of temporarily removing it), so it is safe for
// concurrent readers and leaves Epoch untouched.
func (g *Undirected) AdjacencyPath(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return true
	}
	visited := make([]bool, g.n)
	visited[u] = true
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.nbr[x] {
			if visited[y] || (x == u && y == v) {
				continue
			}
			if y == v {
				return true
			}
			visited[y] = true
			stack = append(stack, y)
		}
	}
	return false
}

// NeighborsOnPaths returns the neighbors of u that lie on at least one
// path from u to v (excluding the direct edge {u,v} itself): exactly the
// candidate cut-set Cheng et al. condition on in try_to_separate. A
// neighbor w qualifies if w == v is false and w can reach v without going
// back through u.
func (g *Undirected) NeighborsOnPaths(u, v int) []int {
	g.check(u)
	g.check(v)
	var out []int
	blocked := map[int]bool{u: true}
	for _, w := range g.nbr[u] {
		if w == v {
			continue
		}
		if g.HasPath(w, v, blocked) {
			out = append(out, w)
		}
	}
	return out
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
