package graph

import (
	"fmt"
	"sort"
)

// PDAG is a partially directed acyclic graph: the output of constraint-
// based structure learning after edge orientation. Each adjacent pair is
// connected either by an undirected edge or by a directed edge; the
// orientation machinery (v-structure detection plus Meek's rules) upgrades
// undirected edges to directed ones without ever creating a directed cycle
// or a new v-structure.
type PDAG struct {
	n        int
	directed [][]bool // directed[u][v]: edge u→v
	undir    [][]bool // undir[u][v] == undir[v][u]: edge u—v
}

// NewPDAG returns an edgeless PDAG on n vertices.
func NewPDAG(n int) *PDAG {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	d := make([][]bool, n)
	u := make([][]bool, n)
	for i := range d {
		d[i] = make([]bool, n)
		u[i] = make([]bool, n)
	}
	return &PDAG{n: n, directed: d, undir: u}
}

// FromSkeleton returns a PDAG whose every edge is the undirected version
// of the skeleton's.
func FromSkeleton(g *Undirected) *PDAG {
	p := NewPDAG(g.N())
	for _, e := range g.Edges() {
		p.undir[e[0]][e[1]] = true
		p.undir[e[1]][e[0]] = true
	}
	return p
}

// N returns the number of vertices.
func (p *PDAG) N() int { return p.n }

func (p *PDAG) check(v int) {
	if v < 0 || v >= p.n {
		panic(fmt.Sprintf("graph: vertex %d outside [0,%d)", v, p.n))
	}
}

// HasUndirected reports an undirected edge u—v.
func (p *PDAG) HasUndirected(u, v int) bool {
	p.check(u)
	p.check(v)
	return p.undir[u][v]
}

// HasDirected reports a directed edge u→v.
func (p *PDAG) HasDirected(u, v int) bool {
	p.check(u)
	p.check(v)
	return p.directed[u][v]
}

// Adjacent reports whether u and v are connected by any edge.
func (p *PDAG) Adjacent(u, v int) bool {
	return p.undir[u][v] || p.directed[u][v] || p.directed[v][u]
}

// AddUndirected inserts u—v (no-op if the pair is already adjacent).
func (p *PDAG) AddUndirected(u, v int) {
	p.check(u)
	p.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on %d", u))
	}
	if p.Adjacent(u, v) {
		return
	}
	p.undir[u][v] = true
	p.undir[v][u] = true
}

// Orient upgrades the undirected edge u—v to u→v. It reports false (and
// leaves the graph unchanged) when the edge is not undirected — already
// oriented either way, or absent.
func (p *PDAG) Orient(u, v int) bool {
	p.check(u)
	p.check(v)
	if !p.undir[u][v] {
		return false
	}
	p.undir[u][v] = false
	p.undir[v][u] = false
	p.directed[u][v] = true
	return true
}

// UndirectedNeighbors returns all w with u—w, sorted.
func (p *PDAG) UndirectedNeighbors(u int) []int {
	p.check(u)
	var out []int
	for v := 0; v < p.n; v++ {
		if p.undir[u][v] {
			out = append(out, v)
		}
	}
	return out
}

// DirectedParents returns all w with w→u, sorted.
func (p *PDAG) DirectedParents(u int) []int {
	p.check(u)
	var out []int
	for v := 0; v < p.n; v++ {
		if p.directed[v][u] {
			out = append(out, v)
		}
	}
	return out
}

// DirectedChildren returns all w with u→w, sorted.
func (p *PDAG) DirectedChildren(u int) []int {
	p.check(u)
	var out []int
	for v := 0; v < p.n; v++ {
		if p.directed[u][v] {
			out = append(out, v)
		}
	}
	return out
}

// DirectedEdges returns all directed edges, sorted.
func (p *PDAG) DirectedEdges() [][2]int {
	var out [][2]int
	for u := 0; u < p.n; u++ {
		for v := 0; v < p.n; v++ {
			if p.directed[u][v] {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// UndirectedEdges returns all undirected edges as (u, v) with u < v, sorted.
func (p *PDAG) UndirectedEdges() [][2]int {
	var out [][2]int
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.undir[u][v] {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// NumEdges returns the total number of edges of either kind.
func (p *PDAG) NumEdges() int {
	return len(p.DirectedEdges()) + len(p.UndirectedEdges())
}

// HasDirectedPath reports whether v is reachable from u following only
// directed edges.
func (p *PDAG) HasDirectedPath(u, v int) bool {
	p.check(u)
	p.check(v)
	if u == v {
		return true
	}
	visited := make([]bool, p.n)
	stack := []int{u}
	visited[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := 0; y < p.n; y++ {
			if !p.directed[x][y] || visited[y] {
				continue
			}
			if y == v {
				return true
			}
			visited[y] = true
			stack = append(stack, y)
		}
	}
	return false
}

// ToDAG extends the PDAG to a full DAG by orienting the remaining
// undirected edges in a consistent order (each undirected edge u—v becomes
// u→v if that creates no directed cycle, else v→u). It returns an error if
// no acyclic completion is found by this greedy pass.
func (p *PDAG) ToDAG() (*DAG, error) {
	g := NewDAG(p.n)
	for _, e := range p.DirectedEdges() {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph: PDAG's directed part is cyclic: %w", err)
		}
	}
	undirected := p.UndirectedEdges()
	// Orient low→high first, falling back to high→low, deterministically.
	sort.Slice(undirected, func(a, b int) bool {
		if undirected[a][0] != undirected[b][0] {
			return undirected[a][0] < undirected[b][0]
		}
		return undirected[a][1] < undirected[b][1]
	})
	for _, e := range undirected {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			continue
		}
		if err := g.AddEdge(e[1], e[0]); err != nil {
			return nil, fmt.Errorf("graph: cannot orient %d—%d acyclically: %w", e[0], e[1], err)
		}
	}
	return g, nil
}

// Clone returns a deep copy.
func (p *PDAG) Clone() *PDAG {
	c := NewPDAG(p.n)
	for u := 0; u < p.n; u++ {
		copy(c.directed[u], p.directed[u])
		copy(c.undir[u], p.undir[u])
	}
	return c
}
