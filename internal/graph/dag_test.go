package graph

import (
	"testing"
)

func chainDAG(t *testing.T, n int) *DAG {
	t.Helper()
	g := NewDAG(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestDAGBasic(t *testing.T) {
	g := NewDAG(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("directed edge direction wrong")
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if ps := g.Parents(3); len(ps) != 1 || ps[0] != 1 {
		t.Errorf("Parents(3) = %v", ps)
	}
	if cs := g.Children(0); len(cs) != 2 || cs[0] != 1 || cs[1] != 2 {
		t.Errorf("Children(0) = %v", cs)
	}
	g.MustAddEdge(0, 1) // duplicate is a no-op
	if g.NumEdges() != 3 {
		t.Error("duplicate edge changed count")
	}
}

func TestDAGRejectsCycles(t *testing.T) {
	g := chainDAG(t, 4) // 0→1→2→3
	if err := g.AddEdge(3, 0); err == nil {
		t.Fatal("cycle 3→0 accepted")
	}
	if err := g.AddEdge(2, 1); err == nil {
		t.Fatal("cycle 2→1 accepted")
	}
	// Graph must be unchanged after rejections.
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d after rejected inserts", g.NumEdges())
	}
	if err := g.AddEdge(0, 3); err != nil {
		t.Errorf("forward edge rejected: %v", err)
	}
}

func TestDAGMustAddEdgePanics(t *testing.T) {
	g := chainDAG(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge on cycle did not panic")
		}
	}()
	g.MustAddEdge(2, 0)
}

func TestDAGRemoveEdge(t *testing.T) {
	g := chainDAG(t, 3)
	g.RemoveEdge(0, 1)
	g.RemoveEdge(0, 2) // absent
	if g.HasEdge(0, 1) || g.NumEdges() != 1 {
		t.Error("RemoveEdge failed")
	}
	// Removing re-permits the reverse edge.
	if err := g.AddEdge(1, 0); err != nil {
		t.Errorf("reverse edge after removal rejected: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	g := NewDAG(6)
	g.MustAddEdge(5, 0)
	g.MustAddEdge(5, 2)
	g.MustAddEdge(4, 0)
	g.MustAddEdge(4, 1)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 1)
	order := g.TopoOrder()
	pos := make([]int, 6)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order %v", e, order)
		}
	}
	if len(order) != 6 {
		t.Errorf("order length %d", len(order))
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := NewDAG(5) // no edges: ties everywhere
	order := g.TopoOrder()
	for i, v := range order {
		if v != i {
			t.Fatalf("expected identity order for edgeless DAG, got %v", order)
		}
	}
}

func TestSkeletonAndMoralize(t *testing.T) {
	// v-structure 0→2←1.
	g := NewDAG(3)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	sk := g.Skeleton()
	if !sk.HasEdge(0, 2) || !sk.HasEdge(1, 2) || sk.HasEdge(0, 1) {
		t.Error("skeleton wrong")
	}
	mor := g.Moralize()
	if !mor.HasEdge(0, 1) {
		t.Error("moralization must marry parents 0 and 1")
	}
	if mor.NumEdges() != 3 {
		t.Errorf("moral graph edges = %d, want 3", mor.NumEdges())
	}
}

func TestDSeparationChain(t *testing.T) {
	// 0→1→2: 0 and 2 dependent marginally, independent given 1.
	g := chainDAG(t, 3)
	if g.DSeparated([]int{0}, []int{2}, nil) {
		t.Error("chain ends should be d-connected with empty Z")
	}
	if !g.DSeparated([]int{0}, []int{2}, []int{1}) {
		t.Error("chain ends should be d-separated given the middle")
	}
}

func TestDSeparationFork(t *testing.T) {
	// 1←0→2 (common cause).
	g := NewDAG(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	if g.DSeparated([]int{1}, []int{2}, nil) {
		t.Error("fork children d-connected marginally")
	}
	if !g.DSeparated([]int{1}, []int{2}, []int{0}) {
		t.Error("fork children d-separated given the root")
	}
}

func TestDSeparationCollider(t *testing.T) {
	// 0→2←1 (v-structure): independent marginally, dependent given 2 or a
	// descendant of 2.
	g := NewDAG(4)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	if !g.DSeparated([]int{0}, []int{1}, nil) {
		t.Error("collider parents should be d-separated marginally")
	}
	if g.DSeparated([]int{0}, []int{1}, []int{2}) {
		t.Error("conditioning on collider opens the path")
	}
	if g.DSeparated([]int{0}, []int{1}, []int{3}) {
		t.Error("conditioning on collider's descendant opens the path")
	}
}

func TestDSeparationDiamond(t *testing.T) {
	// 0→1→3, 0→2→3.
	g := NewDAG(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	if g.DSeparated([]int{0}, []int{3}, []int{1}) {
		t.Error("path through 2 remains active")
	}
	if !g.DSeparated([]int{0}, []int{3}, []int{1, 2}) {
		t.Error("blocking both middles separates 0 from 3")
	}
	// 1 and 2: share parent 0, and are collider parents at 3.
	if !g.DSeparated([]int{1}, []int{2}, []int{0}) {
		t.Error("1 ⊥ 2 | 0 should hold (collider 3 not conditioned)")
	}
	if g.DSeparated([]int{1}, []int{2}, []int{0, 3}) {
		t.Error("conditioning on collider 3 reopens dependence")
	}
}

func TestDSeparationAsiaLikeFragment(t *testing.T) {
	// smoking(0)→bronchitis(1), smoking(0)→cancer(2),
	// bronchitis(1)→dyspnea(3)←cancer(2).
	g := NewDAG(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 3)
	// bronchitis ⊥ cancer | smoking.
	if !g.DSeparated([]int{1}, []int{2}, []int{0}) {
		t.Error("1 ⊥ 2 | 0 expected")
	}
	// smoking ⊥ dyspnea? No — two directed paths.
	if g.DSeparated([]int{0}, []int{3}, nil) {
		t.Error("0 and 3 are dependent")
	}
}

func TestDSeparationSets(t *testing.T) {
	g := chainDAG(t, 5) // 0→1→2→3→4
	if !g.DSeparated([]int{0, 1}, []int{3, 4}, []int{2}) {
		t.Error("{0,1} ⊥ {3,4} | {2} on a chain")
	}
	if g.DSeparated([]int{0, 3}, []int{4}, []int{2}) {
		t.Error("3→4 is direct; cannot be separated")
	}
}

func TestDAGPanics(t *testing.T) {
	g := NewDAG(3)
	for name, fn := range map[string]func(){
		"negative n": func() { NewDAG(-2) },
		"self loop":  func() { _ = g.AddEdge(2, 2) },
		"range":      func() { _ = g.AddEdge(0, 5) },
		"dsep range": func() { g.DSeparated([]int{7}, []int{0}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDAGClone(t *testing.T) {
	g := chainDAG(t, 4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	c.MustAddEdge(0, 3)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 3) {
		t.Error("Clone shares state with original")
	}
	if len(c.TopoOrder()) != 4 {
		t.Error("clone is not a valid DAG")
	}
}
