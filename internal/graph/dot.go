package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOT rendering for the three graph kinds, so learned structures can be
// inspected with Graphviz (`dot -Tsvg`). Vertex labels default to "x<i>";
// pass names to override (extra names are ignored, missing ones fall back
// to the default).

func dotName(names []string, v int) string {
	if v < len(names) && names[v] != "" {
		return quoteDot(names[v])
	}
	return fmt.Sprintf("x%d", v)
}

func quoteDot(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// WriteDOT renders the undirected graph in DOT format.
func (g *Undirected) WriteDOT(w io.Writer, names []string) error {
	var b strings.Builder
	b.WriteString("graph G {\n")
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  %s;\n", dotName(names, v))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -- %s;\n", dotName(names, e[0]), dotName(names, e[1]))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDOT renders the DAG in DOT format.
func (g *DAG) WriteDOT(w io.Writer, names []string) error {
	var b strings.Builder
	b.WriteString("digraph G {\n")
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  %s;\n", dotName(names, v))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", dotName(names, e[0]), dotName(names, e[1]))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDOT renders the PDAG in DOT format: directed edges with arrowheads,
// undirected edges without (`dir=none`).
func (p *PDAG) WriteDOT(w io.Writer, names []string) error {
	var b strings.Builder
	b.WriteString("digraph G {\n")
	for v := 0; v < p.n; v++ {
		fmt.Fprintf(&b, "  %s;\n", dotName(names, v))
	}
	for _, e := range p.DirectedEdges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", dotName(names, e[0]), dotName(names, e[1]))
	}
	for _, e := range p.UndirectedEdges() {
		fmt.Fprintf(&b, "  %s -> %s [dir=none];\n", dotName(names, e[0]), dotName(names, e[1]))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
