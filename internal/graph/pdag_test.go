package graph

import "testing"

func TestPDAGBasic(t *testing.T) {
	p := NewPDAG(4)
	p.AddUndirected(0, 1)
	p.AddUndirected(1, 2)
	if !p.HasUndirected(0, 1) || !p.HasUndirected(1, 0) {
		t.Error("undirected edge should be symmetric")
	}
	if !p.Adjacent(0, 1) || p.Adjacent(0, 2) {
		t.Error("adjacency wrong")
	}
	if p.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", p.NumEdges())
	}
}

func TestPDAGOrient(t *testing.T) {
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	if !p.Orient(0, 1) {
		t.Fatal("Orient failed on undirected edge")
	}
	if !p.HasDirected(0, 1) || p.HasDirected(1, 0) || p.HasUndirected(0, 1) {
		t.Error("orientation state wrong")
	}
	// Re-orienting or orienting the reverse must fail.
	if p.Orient(0, 1) || p.Orient(1, 0) {
		t.Error("Orient succeeded on an already-directed edge")
	}
	// Orienting an absent edge fails.
	if p.Orient(0, 2) {
		t.Error("Orient succeeded on an absent edge")
	}
}

func TestPDAGAddUndirectedIdempotentWithDirected(t *testing.T) {
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	p.Orient(0, 1)
	p.AddUndirected(0, 1) // already adjacent via directed edge: no-op
	if p.HasUndirected(0, 1) {
		t.Error("AddUndirected overwrote a directed edge")
	}
}

func TestPDAGNeighborQueries(t *testing.T) {
	p := NewPDAG(5)
	p.AddUndirected(0, 1)
	p.AddUndirected(0, 2)
	p.Orient(0, 2)        // 0→2
	p.AddUndirected(3, 0) // 0—3
	p.AddUndirected(4, 0)
	p.Orient(4, 0) // 4→0

	un := p.UndirectedNeighbors(0)
	if len(un) != 2 || un[0] != 1 || un[1] != 3 {
		t.Errorf("UndirectedNeighbors(0) = %v", un)
	}
	if ps := p.DirectedParents(0); len(ps) != 1 || ps[0] != 4 {
		t.Errorf("DirectedParents(0) = %v", ps)
	}
	if cs := p.DirectedChildren(0); len(cs) != 1 || cs[0] != 2 {
		t.Errorf("DirectedChildren(0) = %v", cs)
	}
}

func TestPDAGEdgesLists(t *testing.T) {
	p := NewPDAG(4)
	p.AddUndirected(2, 3)
	p.AddUndirected(0, 1)
	p.Orient(1, 0)
	de := p.DirectedEdges()
	ue := p.UndirectedEdges()
	if len(de) != 1 || de[0] != [2]int{1, 0} {
		t.Errorf("DirectedEdges = %v", de)
	}
	if len(ue) != 1 || ue[0] != [2]int{2, 3} {
		t.Errorf("UndirectedEdges = %v", ue)
	}
}

func TestPDAGFromSkeleton(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	p := FromSkeleton(g)
	if !p.HasUndirected(0, 1) || !p.HasUndirected(2, 3) || p.NumEdges() != 2 {
		t.Error("FromSkeleton wrong")
	}
}

func TestPDAGHasDirectedPath(t *testing.T) {
	p := NewPDAG(4)
	p.AddUndirected(0, 1)
	p.Orient(0, 1)
	p.AddUndirected(1, 2)
	p.Orient(1, 2)
	p.AddUndirected(2, 3) // undirected: not a directed path link
	if !p.HasDirectedPath(0, 2) {
		t.Error("0→1→2 path missed")
	}
	if p.HasDirectedPath(0, 3) {
		t.Error("undirected edge counted as directed path")
	}
	if p.HasDirectedPath(2, 0) {
		t.Error("reverse path invented")
	}
	if !p.HasDirectedPath(1, 1) {
		t.Error("self path should hold")
	}
}

func TestPDAGToDAG(t *testing.T) {
	p := NewPDAG(4)
	p.AddUndirected(0, 1)
	p.Orient(0, 1)
	p.AddUndirected(1, 2)
	p.AddUndirected(2, 3)
	dag, err := p.ToDAG()
	if err != nil {
		t.Fatal(err)
	}
	if !dag.HasEdge(0, 1) {
		t.Error("directed edge lost")
	}
	if dag.NumEdges() != 3 {
		t.Errorf("DAG has %d edges, want 3", dag.NumEdges())
	}
	// Result is acyclic by construction; TopoOrder must not panic.
	if got := len(dag.TopoOrder()); got != 4 {
		t.Errorf("topo order length %d", got)
	}
}

func TestPDAGToDAGAvoidsCycle(t *testing.T) {
	// Directed 1→0 plus undirected 0—1? Impossible (one edge per pair).
	// Instead: directed chain 0→1→2 with undirected 2—0: must orient 0→2
	// to stay acyclic... wait, 0→2 with 0→1→2 is fine either way? 2→0
	// would close the cycle. The greedy pass tries low→high (0→2) which
	// is acyclic, so it succeeds.
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	p.Orient(0, 1)
	p.AddUndirected(1, 2)
	p.Orient(1, 2)
	p.AddUndirected(0, 2)
	dag, err := p.ToDAG()
	if err != nil {
		t.Fatal(err)
	}
	if !dag.HasEdge(0, 2) {
		t.Errorf("expected 0→2 orientation, got edges %v", dag.Edges())
	}
	// Force the fallback: undirected 2—0 where only 2→0... that requires
	// the low→high direction to be cyclic: chain 2→1? Build 1→... use
	// vertices so that low→high creates a cycle: directed 1→0 and
	// undirected 0—1 impossible; use 0—2 with directed 2→1→0? then 0→2
	// closes a cycle and fallback 2→0 is also cyclic? no: 2→1→0 plus
	// 2→0 is acyclic.
	q := NewPDAG(3)
	q.AddUndirected(2, 1)
	q.Orient(2, 1)
	q.AddUndirected(1, 0)
	q.Orient(1, 0)
	q.AddUndirected(0, 2)
	dag2, err := q.ToDAG()
	if err != nil {
		t.Fatal(err)
	}
	if !dag2.HasEdge(2, 0) {
		t.Errorf("expected fallback orientation 2→0, got %v", dag2.Edges())
	}
}

func TestPDAGClone(t *testing.T) {
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	c := p.Clone()
	c.Orient(0, 1)
	if !p.HasUndirected(0, 1) {
		t.Error("Clone shares state")
	}
}

func TestPDAGPanics(t *testing.T) {
	p := NewPDAG(2)
	for name, fn := range map[string]func(){
		"negative n": func() { NewPDAG(-1) },
		"self loop":  func() { p.AddUndirected(1, 1) },
		"range":      func() { p.HasDirected(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
