package graph

import (
	"testing"
)

func TestUndirectedBasic(t *testing.T) {
	g := NewUndirected(5)
	if g.N() != 5 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: N=%d edges=%d", g.N(), g.NumEdges())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate is a no-op
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("spurious edge")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees: %d, %d", g.Degree(1), g.Degree(3))
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("Neighbors(1) = %v", ns)
	}
}

func TestUndirectedRemoveEdge(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.RemoveEdge(0, 1)
	g.RemoveEdge(0, 3) // absent edge is a no-op
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge not removed")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(1) != 1 {
		t.Errorf("Degree(1) = %d, want 1", g.Degree(1))
	}
}

func TestUndirectedEdges(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(2, 0)
	g.AddEdge(3, 1)
	edges := g.Edges()
	want := [][2]int{{0, 2}, {1, 3}}
	if len(edges) != 2 || edges[0] != want[0] || edges[1] != want[1] {
		t.Errorf("Edges = %v, want %v", edges, want)
	}
}

func TestUndirectedPanics(t *testing.T) {
	g := NewUndirected(3)
	for name, fn := range map[string]func(){
		"negative n":    func() { NewUndirected(-1) },
		"self loop":     func() { g.AddEdge(1, 1) },
		"out of range":  func() { g.AddEdge(0, 3) },
		"neighbors oob": func() { g.Neighbors(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHasPath(t *testing.T) {
	// 0-1-2-3, and isolated 4.
	g := NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.HasPath(0, 3, nil) {
		t.Error("0 should reach 3")
	}
	if g.HasPath(0, 4, nil) {
		t.Error("0 should not reach isolated 4")
	}
	if !g.HasPath(2, 2, nil) {
		t.Error("vertex should reach itself")
	}
	// Blocking the middle vertex cuts the path.
	if g.HasPath(0, 3, map[int]bool{2: true}) {
		t.Error("blocking 2 should disconnect 0 from 3")
	}
	// Blocking the destination itself must not prevent arrival.
	if !g.HasPath(0, 3, map[int]bool{3: true}) {
		t.Error("blocked destination should still be reachable")
	}
}

func TestHasPathMultipleRoutes(t *testing.T) {
	// Cycle 0-1-2-0 plus chain 2-3.
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	if g.HasPath(0, 3, map[int]bool{2: true}) {
		t.Error("2 is a cut vertex for 0-3")
	}
	if !g.HasPath(0, 2, map[int]bool{1: true}) {
		t.Error("direct edge 0-2 bypasses blocked 1")
	}
}

func TestAdjacencyPath(t *testing.T) {
	// Triangle 0-1-2: removing edge 0-1 still leaves path through 2.
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	if !g.AdjacencyPath(0, 1) {
		t.Error("0 and 1 connected through 2 apart from direct edge")
	}
	if g.AdjacencyPath(0, 3) {
		t.Error("0-3 has only the direct edge")
	}
	// The probe must not permanently alter the graph.
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Error("AdjacencyPath mutated the graph")
	}
	// Also works for non-adjacent pairs.
	g2 := NewUndirected(3)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	if !g2.AdjacencyPath(0, 2) {
		t.Error("non-adjacent connected pair")
	}
}

func TestNeighborsOnPaths(t *testing.T) {
	// u=0 with neighbors 1, 2, 3; v=4. 1-4 and 2-4 edges exist, 3 dangles.
	g := NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 4)
	got := g.NeighborsOnPaths(0, 4)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("NeighborsOnPaths = %v, want [1 2]", got)
	}
	// Direct edge to v must be excluded.
	g.AddEdge(0, 4)
	got = g.NeighborsOnPaths(0, 4)
	if len(got) != 2 {
		t.Errorf("direct edge contaminated result: %v", got)
	}
	// Paths that double back through u must not count.
	h := NewUndirected(4)
	h.AddEdge(0, 1) // neighbor 1 connects to v=3 only via u=0
	h.AddEdge(0, 3)
	if got := h.NeighborsOnPaths(0, 3); len(got) != 0 {
		t.Errorf("path through u counted: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Error("Clone shares state with original")
	}
}

func TestEpochAdvancesOnMutation(t *testing.T) {
	g := NewUndirected(4)
	e0 := g.Epoch()
	g.AddEdge(0, 1)
	if g.Epoch() == e0 {
		t.Error("AddEdge did not advance the epoch")
	}
	e1 := g.Epoch()
	g.AddEdge(0, 1) // duplicate: no structural change
	if g.Epoch() != e1 {
		t.Error("duplicate AddEdge advanced the epoch")
	}
	g.RemoveEdge(2, 3) // missing: no structural change
	if g.Epoch() != e1 {
		t.Error("no-op RemoveEdge advanced the epoch")
	}
	g.RemoveEdge(0, 1)
	if g.Epoch() == e1 {
		t.Error("RemoveEdge did not advance the epoch")
	}
}

func TestAdjacencyPathIsReadOnly(t *testing.T) {
	// AdjacencyPath used to remove and re-add the direct edge; the
	// wavefront scheduler runs it concurrently from speculation workers,
	// so it must neither mutate the graph nor advance the epoch.
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	e := g.Epoch()
	if !g.AdjacencyPath(0, 2) {
		t.Error("0-1-2 detour not found")
	}
	if g.AdjacencyPath(2, 3) {
		t.Error("2-3 has no detour")
	}
	if g.Epoch() != e {
		t.Error("AdjacencyPath mutated the graph")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 3) {
		t.Error("AdjacencyPath lost an edge")
	}
}
