package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestUndirectedWriteDOT(t *testing.T) {
	g := NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "x0 -- x1;", "x1 -- x2;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "->") {
		t.Error("undirected DOT contains arrows")
	}
}

func TestDAGWriteDOTWithNames(t *testing.T) {
	g := NewDAG(3)
	g.MustAddEdge(0, 2)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, []string{"smoke", "", `we"ird`}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph G {", `"smoke" -> "we\"ird";`, "x1;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPDAGWriteDOT(t *testing.T) {
	p := NewPDAG(3)
	p.AddUndirected(0, 1)
	p.Orient(0, 1)
	p.AddUndirected(1, 2)
	var buf bytes.Buffer
	if err := p.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x0 -> x1;") {
		t.Errorf("directed edge missing:\n%s", out)
	}
	if !strings.Contains(out, "x1 -> x2 [dir=none];") {
		t.Errorf("undirected edge missing:\n%s", out)
	}
}
