// Package rng provides small, fast, deterministic pseudo-random number
// generators for workload synthesis and randomized testing.
//
// The hot loops in this repository (synthetic dataset generation, forward
// sampling) must not contend on a shared, locked generator, and experiment
// runs must be exactly reproducible from a single seed. Both generators here
// are plain structs: give each worker goroutine its own instance, derived
// from the experiment seed via Split, and generation is contention-free and
// deterministic regardless of scheduling.
//
// SplitMix64 is used for seeding and for cheap stateless mixing;
// Xoshiro256SS (xoshiro256**) is the general-purpose generator. Both are
// public-domain algorithms by Steele/Vigna/Blackman.
package rng

import "math/bits"

// SplitMix64 is a tiny 64-bit generator with a single uint64 of state.
// Its primary roles are seeding larger generators and deriving independent
// per-worker streams from one experiment seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next pseudo-random uint64.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a high-quality
// stateless mixing function: distinct inputs produce well-distributed
// outputs, which makes it suitable for deriving stream seeds and for
// hashing integer keys.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256SS is the xoshiro256** generator: 256 bits of state, period
// 2^256-1, passes BigCrush. It is the workhorse generator for dataset
// synthesis and sampling.
type Xoshiro256SS struct {
	s [4]uint64
}

// NewXoshiro256SS returns a generator whose state is expanded from seed
// with SplitMix64, as recommended by the algorithm's authors. The all-zero
// state (which would be absorbing) cannot occur.
func NewXoshiro256SS(seed uint64) *Xoshiro256SS {
	sm := NewSplitMix64(seed)
	var x Xoshiro256SS
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	return &x
}

// Split derives a new, statistically independent generator from the current
// one. Use it to hand one stream to each worker goroutine:
//
//	root := rng.NewXoshiro256SS(seed)
//	for w := 0; w < P; w++ { workers[w].rng = root.Split() }
func (x *Xoshiro256SS) Split() *Xoshiro256SS {
	return NewXoshiro256SS(x.Next())
}

// Next returns the next pseudo-random uint64.
func (x *Xoshiro256SS) Next() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method, which avoids the
// modulo bias of naive `Next() % n` without a division in the common case.
func (x *Xoshiro256SS) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(x.Next(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Next(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256SS) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256SS) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (x *Xoshiro256SS) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := x.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function, in the manner of math/rand.Shuffle.
func (x *Xoshiro256SS) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}
