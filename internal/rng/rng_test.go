package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("iteration %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain reference
	// implementation (splitmix64.c by Sebastiano Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if g := s.Next(); g != w {
			t.Errorf("value %d: got %#x want %#x", i, g, w)
		}
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	// Mix64(x) must equal the first output of SplitMix64 seeded with x.
	for _, seed := range []uint64{0, 1, 42, 1 << 40, math.MaxUint64} {
		if g, w := Mix64(seed), NewSplitMix64(seed).Next(); g != w {
			t.Errorf("Mix64(%#x) = %#x, want %#x", seed, g, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256SS(7)
	b := NewXoshiro256SS(7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("iteration %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro256SS(1)
	b := NewXoshiro256SS(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewXoshiro256SS(99)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams produced %d identical outputs out of 100", same)
	}
}

func TestUint64nRange(t *testing.T) {
	x := NewXoshiro256SS(5)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := x.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nSmallNCoversAll(t *testing.T) {
	x := NewXoshiro256SS(6)
	seen := make(map[uint64]int)
	const n = 7
	for i := 0; i < 7000; i++ {
		seen[x.Uint64n(n)]++
	}
	if len(seen) != n {
		t.Fatalf("expected all %d values to appear, saw %d", n, len(seen))
	}
	for v, c := range seen {
		if c < 500 {
			t.Errorf("value %d appeared only %d times out of 7000 (expect ~1000)", v, c)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256SS(1).Uint64n(0)
}

func TestIntnNonPositivePanics(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			NewXoshiro256SS(1).Intn(n)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256SS(8)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXoshiro256SS(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := NewXoshiro256SS(10)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	x := NewXoshiro256SS(11)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	counts := map[int]int{}
	for _, v := range s {
		counts[v]++
	}
	x.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Errorf("element %d count changed by %d after shuffle", v, c)
		}
	}
}

func TestUint64nUniformChiSquare(t *testing.T) {
	// Coarse chi-square goodness-of-fit against uniform over 16 buckets.
	x := NewXoshiro256SS(12)
	const buckets, n = 16, 160000
	var obs [buckets]int
	for i := 0; i < n; i++ {
		obs[x.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, o := range obs {
		d := float64(o) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; critical value at p=0.001 is ~37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square = %v, suggests non-uniform output", chi2)
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	x := NewXoshiro256SS(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Next()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	x := NewXoshiro256SS(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64n(3)
	}
	_ = sink
}
