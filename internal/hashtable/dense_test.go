package hashtable

import (
	"testing"

	"waitfreebn/internal/rng"
)

// counterEqual compares two Counters as key→count mappings.
func counterEqual(t *testing.T, name string, got, want Counter) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", name, got.Len(), want.Len())
	}
	if got.Total() != want.Total() {
		t.Fatalf("%s: Total = %d, want %d", name, got.Total(), want.Total())
	}
	want.Range(func(key, count uint64) bool {
		if g := got.Get(key); g != count {
			t.Fatalf("%s: Get(%d) = %d, want %d", name, key, g, count)
		}
		return true
	})
}

// TestAddBatchMatchesInc drives AddBatch on every Counter implementation
// against an element-wise Inc oracle, with enough duplicate keys and a
// small enough initial size that growth happens mid-stream.
func TestAddBatchMatchesInc(t *testing.T) {
	impls := map[string]func() Counter{
		"open":    func() Counter { return New(0) },
		"chained": func() Counter { return NewChained(0) },
		"gomap":   func() Counter { return NewMapTable(0) },
		"dense":   func() Counter { return NewDense(4096, 3, 1) },
	}
	src := rng.NewXoshiro256SS(5)
	keys := make([]uint64, 20000)
	for i := range keys {
		keys[i] = src.Uint64n(4096)*3 + 1 // on the dense lattice, many dupes
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			batched, oracle := mk(), mk()
			for _, k := range keys {
				oracle.Inc(k)
			}
			// Uneven batch sizes, including empty and single-element ones.
			rest := keys
			for _, sz := range []int{0, 1, 7, 255, 256, 257, 1000} {
				if sz > len(rest) {
					sz = len(rest)
				}
				batched.AddBatch(rest[:sz])
				rest = rest[sz:]
			}
			batched.AddBatch(rest)
			counterEqual(t, name, batched, oracle)
		})
	}
}

func TestDenseLattice(t *testing.T) {
	// div=4, off=2: owns keys 2, 6, 10, ..., 2+4*(size-1).
	d := NewDense(100, 4, 2)
	d.Inc(2)
	d.Add(6, 5)
	d.Inc(2 + 4*99)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if d.Total() != 7 {
		t.Fatalf("Total = %d, want 7", d.Total())
	}
	if g := d.Get(6); g != 5 {
		t.Fatalf("Get(6) = %d, want 5", g)
	}
	// Off-lattice and out-of-range keys read as absent.
	for _, k := range []uint64{0, 1, 3, 4, 5, 7, 2 + 4*100, 1 << 40} {
		if g := d.Get(k); g != 0 {
			t.Fatalf("Get(%d) = %d, want 0", k, g)
		}
	}
	// Range yields ascending lattice keys.
	var gotKeys []uint64
	d.Range(func(key, count uint64) bool {
		gotKeys = append(gotKeys, key)
		return true
	})
	want := []uint64{2, 6, 2 + 4*99}
	if len(gotKeys) != len(want) {
		t.Fatalf("Range yielded %v, want %v", gotKeys, want)
	}
	for i := range want {
		if gotKeys[i] != want[i] {
			t.Fatalf("Range yielded %v, want %v", gotKeys, want)
		}
	}
	stopped := 0
	d.Range(func(key, count uint64) bool {
		stopped++
		return false
	})
	if stopped != 1 {
		t.Fatalf("early-stop Range called fn %d times", stopped)
	}
	d.Reset()
	if d.Len() != 0 || d.Total() != 0 || d.Get(2) != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestDenseMatchesOpenOracle(t *testing.T) {
	// Simulate a modulo partition: P=7, partition 3, key space 10000.
	const p, part, space = 7, 3, 10000
	size := (space-1-part)/p + 1
	d := NewDense(size, p, part)
	oracle := New(0)
	src := rng.NewXoshiro256SS(21)
	for i := 0; i < 50000; i++ {
		k := src.Uint64n(uint64(size))*p + part
		d.Inc(k)
		oracle.Inc(k)
	}
	counterEqual(t, "dense-vs-open", d, oracle)
	// Cross-check: every oracle key decodes back through Range.
	d.Range(func(key, count uint64) bool {
		if key%p != part {
			t.Fatalf("Range produced off-lattice key %d", key)
		}
		if oracle.Get(key) != count {
			t.Fatalf("Range key %d count %d, oracle %d", key, count, oracle.Get(key))
		}
		return true
	})
}

func TestDenseZeroSize(t *testing.T) {
	d := NewDense(0, 5, 2)
	if d.Len() != 0 || d.Get(2) != 0 || d.Get(0) != 0 {
		t.Fatal("empty dense table not empty")
	}
	d.Range(func(key, count uint64) bool {
		t.Fatal("Range on empty table called fn")
		return false
	})
	d.AddBatch(nil)
}
