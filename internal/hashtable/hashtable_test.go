package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waitfreebn/internal/rng"
)

func TestTableBasic(t *testing.T) {
	ht := New(0)
	if ht.Len() != 0 {
		t.Fatalf("new table Len = %d", ht.Len())
	}
	ht.Inc(5)
	ht.Inc(5)
	ht.Add(7, 3)
	if got := ht.Get(5); got != 2 {
		t.Errorf("Get(5) = %d, want 2", got)
	}
	if got := ht.Get(7); got != 3 {
		t.Errorf("Get(7) = %d, want 3", got)
	}
	if got := ht.Get(6); got != 0 {
		t.Errorf("Get(6) = %d, want 0", got)
	}
	if ht.Len() != 2 {
		t.Errorf("Len = %d, want 2", ht.Len())
	}
	if ht.Total() != 5 {
		t.Errorf("Total = %d, want 5", ht.Total())
	}
}

func TestTableZeroKey(t *testing.T) {
	ht := New(4)
	ht.Inc(0)
	ht.Inc(0)
	if got := ht.Get(0); got != 2 {
		t.Errorf("Get(0) = %d, want 2", got)
	}
}

func TestTableReservedKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add of sentinel key did not panic")
		}
	}()
	New(4).Inc(^uint64(0))
}

func TestTableGrowth(t *testing.T) {
	ht := New(0)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		ht.Inc(i * 1000003)
	}
	if ht.Len() != n {
		t.Fatalf("Len = %d, want %d", ht.Len(), n)
	}
	if ht.Grows() == 0 {
		t.Error("expected at least one rehash growing from minimum capacity")
	}
	for i := uint64(0); i < n; i++ {
		if got := ht.Get(i * 1000003); got != 1 {
			t.Fatalf("Get(%d) = %d after growth", i*1000003, got)
		}
	}
}

func TestTableSizeHintAvoidsGrowth(t *testing.T) {
	const n = 10000
	ht := New(n)
	for i := uint64(0); i < n; i++ {
		ht.Inc(i)
	}
	if ht.Grows() != 0 {
		t.Errorf("pre-sized table rehashed %d times", ht.Grows())
	}
}

func TestTableReserve(t *testing.T) {
	const n = 10000
	ht := New(0)
	for i := uint64(0); i < 100; i++ {
		ht.Add(i, i+1)
	}
	ht.Reserve(n)
	grows := ht.Grows()
	if cap := ht.Capacity(); cap*maxLoadNum/maxLoadDen < n {
		t.Fatalf("Reserve(%d) left capacity %d (holds %d)", n, cap, cap*maxLoadNum/maxLoadDen)
	}
	for i := uint64(100); i < n; i++ {
		ht.Add(i, 1)
	}
	if ht.Grows() != grows {
		t.Errorf("reserved table rehashed %d more times filling to %d", ht.Grows()-grows, n)
	}
	for i := uint64(0); i < 100; i++ {
		if got := ht.Get(i); got != i+1 {
			t.Fatalf("Get(%d) = %d after Reserve, want %d", i, got, i+1)
		}
	}
	// Reserving below the current capacity is a no-op.
	before := ht.Capacity()
	ht.Reserve(1)
	if ht.Capacity() != before {
		t.Errorf("Reserve(1) changed capacity %d -> %d", before, ht.Capacity())
	}
}

func TestTableRange(t *testing.T) {
	ht := New(8)
	want := map[uint64]uint64{1: 2, 9: 1, 100: 7}
	for k, c := range want {
		ht.Add(k, c)
	}
	got := map[uint64]uint64{}
	ht.Range(func(key, count uint64) bool {
		got[key] = count
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Errorf("Range gave %d for key %d, want %d", got[k], k, c)
		}
	}
}

func TestTableRangeEarlyStop(t *testing.T) {
	ht := New(8)
	for i := uint64(0); i < 100; i++ {
		ht.Inc(i)
	}
	visits := 0
	ht.Range(func(key, count uint64) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early-stopping Range visited %d entries, want 5", visits)
	}
}

func TestTableMerge(t *testing.T) {
	a, b := New(8), New(8)
	a.Add(1, 2)
	a.Add(2, 3)
	b.Add(2, 5)
	b.Add(3, 1)
	a.Merge(b)
	for k, want := range map[uint64]uint64{1: 2, 2: 8, 3: 1} {
		if got := a.Get(k); got != want {
			t.Errorf("after merge Get(%d) = %d, want %d", k, got, want)
		}
	}
	if a.Len() != 3 {
		t.Errorf("after merge Len = %d, want 3", a.Len())
	}
}

func TestTableReset(t *testing.T) {
	ht := New(8)
	for i := uint64(0); i < 50; i++ {
		ht.Inc(i)
	}
	capBefore := ht.Capacity()
	ht.Reset()
	if ht.Len() != 0 || ht.Total() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d", ht.Len(), ht.Total())
	}
	if ht.Capacity() != capBefore {
		t.Errorf("Reset changed capacity %d -> %d", capBefore, ht.Capacity())
	}
	ht.Inc(3)
	if ht.Get(3) != 1 {
		t.Error("table unusable after Reset")
	}
}

func TestTableCloneIndependent(t *testing.T) {
	ht := New(8)
	ht.Add(1, 1)
	c := ht.Clone()
	c.Add(1, 10)
	c.Add(2, 1)
	if ht.Get(1) != 1 || ht.Get(2) != 0 {
		t.Error("Clone is not independent of the original")
	}
	if c.Get(1) != 11 {
		t.Errorf("clone Get(1) = %d, want 11", c.Get(1))
	}
}

func TestTableEqual(t *testing.T) {
	a, b := New(8), New(1024)
	for i := uint64(0); i < 100; i++ {
		a.Add(i, i+1)
	}
	for i := uint64(99); ; i-- {
		b.Add(i, i+1)
		if i == 0 {
			break
		}
	}
	if !a.Equal(b) {
		t.Error("tables with same content but different capacity/order should be Equal")
	}
	b.Inc(5)
	if a.Equal(b) {
		t.Error("tables with different counts should not be Equal")
	}
	c := New(8)
	if a.Equal(c) {
		t.Error("tables with different lengths should not be Equal")
	}
}

func TestTableAgainstMapOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ht := New(0)
		oracle := map[uint64]uint64{}
		// Narrow key range forces frequent collisions of distinct keys
		// into the same probe runs.
		for op := 0; op < 2000; op++ {
			key := uint64(r.Intn(100))
			delta := uint64(r.Intn(5) + 1)
			ht.Add(key, delta)
			oracle[key] += delta
		}
		if ht.Len() != len(oracle) {
			return false
		}
		for k, c := range oracle {
			if ht.Get(k) != c {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTableAdversarialKeys(t *testing.T) {
	// Mixed-radix keys from binary variables are dense small integers; keys
	// sharing low bits stress the mixer. Also probe around the 63-bit cap.
	ht := New(0)
	keys := []uint64{0, 1, 2, 3, 1 << 62, 1<<63 - 1, 1 << 40, 1<<40 + 1}
	for mult := uint64(1); mult <= 3; mult++ {
		for _, k := range keys {
			ht.Add(k, mult)
		}
	}
	for _, k := range keys {
		if got := ht.Get(k); got != 6 {
			t.Errorf("Get(%#x) = %d, want 6", k, got)
		}
	}
}

func runCounterSuite(t *testing.T, name string, mk func(hint int) Counter) {
	t.Run(name, func(t *testing.T) {
		c := mk(0)
		src := rng.NewXoshiro256SS(77)
		oracle := map[uint64]uint64{}
		for i := 0; i < 5000; i++ {
			k := src.Uint64n(500)
			c.Inc(k)
			oracle[k]++
		}
		if c.Len() != len(oracle) {
			t.Fatalf("Len = %d, want %d", c.Len(), len(oracle))
		}
		if c.Total() != 5000 {
			t.Fatalf("Total = %d, want 5000", c.Total())
		}
		for k, want := range oracle {
			if got := c.Get(k); got != want {
				t.Fatalf("Get(%d) = %d, want %d", k, got, want)
			}
		}
		seen := 0
		c.Range(func(key, count uint64) bool {
			if oracle[key] != count {
				t.Fatalf("Range gave (%d,%d), oracle has %d", key, count, oracle[key])
			}
			seen++
			return true
		})
		if seen != len(oracle) {
			t.Fatalf("Range visited %d keys, want %d", seen, len(oracle))
		}
	})
}

func TestCounterImplementations(t *testing.T) {
	runCounterSuite(t, "open-addressing", func(h int) Counter { return New(h) })
	runCounterSuite(t, "chained", func(h int) Counter { return NewChained(h) })
	runCounterSuite(t, "gomap", func(h int) Counter { return NewMapTable(h) })
}

func TestChainedReset(t *testing.T) {
	ct := NewChained(4)
	for i := uint64(0); i < 100; i++ {
		ct.Inc(i)
	}
	ct.Reset()
	if ct.Len() != 0 || ct.Total() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d", ct.Len(), ct.Total())
	}
	ct.Inc(42)
	if ct.Get(42) != 1 || ct.Get(41) != 0 {
		t.Error("chained table unusable after Reset")
	}
}

func TestChainedRangeEarlyStop(t *testing.T) {
	ct := NewChained(4)
	for i := uint64(0); i < 100; i++ {
		ct.Inc(i)
	}
	visits := 0
	ct.Range(func(key, count uint64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early-stopping Range visited %d entries, want 1", visits)
	}
}

func TestOpenVsChainedDifferential(t *testing.T) {
	open := New(0)
	chained := NewChained(0)
	src := rng.NewXoshiro256SS(123)
	for i := 0; i < 20000; i++ {
		k := src.Uint64n(3000)
		open.Inc(k)
		chained.Inc(k)
	}
	if open.Len() != chained.Len() {
		t.Fatalf("Len mismatch: open=%d chained=%d", open.Len(), chained.Len())
	}
	open.Range(func(key, count uint64) bool {
		if chained.Get(key) != count {
			t.Fatalf("key %d: open=%d chained=%d", key, count, chained.Get(key))
		}
		return true
	})
}

func BenchmarkTableInc(b *testing.B) {
	benchCounterInc(b, New(1<<20))
}

func BenchmarkChainedInc(b *testing.B) {
	benchCounterInc(b, NewChained(1<<20))
}

func BenchmarkMapInc(b *testing.B) {
	benchCounterInc(b, NewMapTable(1<<20))
}

func benchCounterInc(b *testing.B, c Counter) {
	src := rng.NewXoshiro256SS(1)
	keys := make([]uint64, 1<<20)
	for i := range keys {
		keys[i] = src.Uint64n(1 << 19)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc(keys[i&(1<<20-1)])
	}
}

func TestProbeStats(t *testing.T) {
	ht := New(0)
	if max, mean := ht.ProbeStats(); max != 0 || mean != 0 {
		t.Fatalf("empty table ProbeStats = (%d, %g), want (0, 0)", max, mean)
	}
	src := rng.NewXoshiro256SS(9)
	const n = 5000
	for i := 0; i < n; i++ {
		ht.Inc(src.Uint64n(1 << 40))
	}
	max, mean := ht.ProbeStats()
	if max < 1 || mean < 1 {
		t.Fatalf("populated table ProbeStats = (%d, %g), want >= 1 probes", max, mean)
	}
	if float64(max) < mean {
		t.Fatalf("max probe %d below mean %g", max, mean)
	}
	// Displacement accounting is a pure diagnostic: the table must still
	// answer lookups correctly afterwards (sanity that the scan is read-only).
	before := ht.Len()
	ht.ProbeStats()
	if ht.Len() != before {
		t.Fatalf("ProbeStats mutated the table: Len %d -> %d", before, ht.Len())
	}
}
