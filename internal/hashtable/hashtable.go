// Package hashtable provides the single-owner count tables that back each
// key-space partition of the potential table (the H_p of Algorithms 1-3).
//
// Each table is owned and mutated by exactly one goroutine — the wait-free
// construction protocol guarantees that — so the implementations here are
// deliberately unsynchronized and optimized for the access pattern the
// primitives generate: a long stream of Add(key, 1) during construction,
// then read-only iteration during marginalization.
//
// Two implementations are provided:
//
//   - Table: open addressing with linear probing over a power-of-two array
//     of (key, count) slots. This is the default; its sequential probe runs
//     are cache-friendly, and iteration touches memory in one linear pass.
//   - ChainedTable: classic separate chaining. It exists as an ablation
//     point (bench A4) and as an oracle in differential tests.
//
// Keys are arbitrary uint64 values. Because mixed-radix keys are far from
// uniformly distributed in their low bits, slots are addressed by a
// SplitMix64 finalizer of the key rather than by the raw key.
package hashtable

import (
	"fmt"

	"waitfreebn/internal/rng"
)

// emptySlot marks an unoccupied slot. The potential-table key space is
// capped at 2^63, so ^uint64(0) can never be a legal key.
const emptySlot = ^uint64(0)

// maxLoadNum/maxLoadDen is the load factor threshold (7/8 keeps probe runs
// short while wasting little memory for count-table workloads).
const (
	maxLoadNum = 7
	maxLoadDen = 8
)

const minCapacity = 16

// Table is an open-addressing hash table from uint64 keys to uint64 counts.
// The zero value is not usable; call New. Table is NOT safe for concurrent
// mutation: the construction protocol gives each Table a single owner.
type Table struct {
	keys   []uint64
	counts []uint64
	len    int
	grows  int // number of rehashes, exposed for instrumentation
}

// New returns a table pre-sized to hold sizeHint entries without rehashing.
// A non-positive hint yields the minimum capacity.
func New(sizeHint int) *Table {
	capacity := minCapacity
	for capacity*maxLoadNum/maxLoadDen < sizeHint {
		capacity <<= 1
	}
	t := &Table{
		keys:   make([]uint64, capacity),
		counts: make([]uint64, capacity),
	}
	for i := range t.keys {
		t.keys[i] = emptySlot
	}
	return t
}

// Len returns the number of distinct keys stored.
func (t *Table) Len() int { return t.len }

// Capacity returns the current slot-array length (a power of two).
func (t *Table) Capacity() int { return len(t.keys) }

// Grows returns how many times the table has rehashed since creation.
func (t *Table) Grows() int { return t.grows }

// Add increments the count of key by delta, inserting the key if absent.
// key must not be the reserved sentinel ^uint64(0).
func (t *Table) Add(key, delta uint64) {
	if key == emptySlot {
		panic("hashtable: reserved key ^uint64(0)")
	}
	mask := uint64(len(t.keys) - 1)
	i := rng.Mix64(key) & mask
	for {
		switch t.keys[i] {
		case key:
			t.counts[i] += delta
			return
		case emptySlot:
			t.keys[i] = key
			t.counts[i] = delta
			t.len++
			if t.len*maxLoadDen > len(t.keys)*maxLoadNum {
				t.grow()
			}
			return
		}
		i = (i + 1) & mask
	}
}

// Inc increments the count of key by one. It is the construction hot path.
func (t *Table) Inc(key uint64) { t.Add(key, 1) }

// addBatchChunk is how many keys AddBatch hashes per pass; the hash array
// lives on the stack and two passes over 256 keys stay within L1.
const addBatchChunk = 256

// AddBatch increments the count of every key in keys by one. It processes
// keys in chunks with a two-pass layout: hash the whole chunk first, then
// probe — so the hash computations pipeline without interleaved
// data-dependent probe loads, and any growth happens at chunk boundaries
// (capacity is ensured up front, which may grow the table slightly earlier
// than element-wise Add would; the resulting mapping is identical).
func (t *Table) AddBatch(keys []uint64) {
	var hashes [addBatchChunk]uint64
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > addBatchChunk {
			chunk = chunk[:addBatchChunk]
		}
		keys = keys[len(chunk):]
		// Ensure the whole chunk can insert without a mid-chunk rehash,
		// which would invalidate the precomputed slots.
		for (t.len+len(chunk))*maxLoadDen > len(t.keys)*maxLoadNum {
			t.grow()
		}
		mask := uint64(len(t.keys) - 1)
		for i, k := range chunk {
			if k == emptySlot {
				panic("hashtable: reserved key ^uint64(0)")
			}
			hashes[i] = rng.Mix64(k) & mask
		}
		for i, k := range chunk {
			j := hashes[i]
			for {
				switch t.keys[j] {
				case k:
					t.counts[j]++
				case emptySlot:
					t.keys[j] = k
					t.counts[j] = 1
					t.len++
				default:
					j = (j + 1) & mask
					continue
				}
				break
			}
		}
	}
}

// Reserve grows the table until it can hold n entries in total without
// rehashing. Bulk loaders (table import, merge) call it up front so the
// insert loop never pays a mid-stream rehash.
func (t *Table) Reserve(n int) {
	for n*maxLoadDen > len(t.keys)*maxLoadNum {
		t.grow()
	}
}

// Get returns the count stored for key, or 0 if the key is absent.
func (t *Table) Get(key uint64) uint64 {
	if key == emptySlot {
		return 0
	}
	mask := uint64(len(t.keys) - 1)
	i := rng.Mix64(key) & mask
	for {
		switch t.keys[i] {
		case key:
			return t.counts[i]
		case emptySlot:
			return 0
		}
		i = (i + 1) & mask
	}
}

// Range calls fn for every (key, count) pair in unspecified order. fn must
// not mutate the table. Returning false stops the iteration early.
func (t *Table) Range(fn func(key, count uint64) bool) {
	for i, k := range t.keys {
		if k != emptySlot {
			if !fn(k, t.counts[i]) {
				return
			}
		}
	}
}

// Total returns the sum of all counts (the number of samples whose keys
// landed in this partition).
func (t *Table) Total() uint64 {
	var total uint64
	for i, k := range t.keys {
		if k != emptySlot {
			total += t.counts[i]
		}
	}
	return total
}

// Merge adds every entry of other into t. Rebalancing partitions before
// marginalization (Section IV-C) is built from Merge.
func (t *Table) Merge(other *Table) {
	other.Range(func(key, count uint64) bool {
		t.Add(key, count)
		return true
	})
}

// Reset removes all entries but keeps the allocated capacity, so a builder
// can be reused across runs without churning the allocator.
func (t *Table) Reset() {
	for i := range t.keys {
		t.keys[i] = emptySlot
	}
	t.len = 0
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		keys:   append([]uint64(nil), t.keys...),
		counts: append([]uint64(nil), t.counts...),
		len:    t.len,
		grows:  t.grows,
	}
	return c
}

// Equal reports whether two tables hold exactly the same key→count mapping,
// regardless of capacity or insertion order.
func (t *Table) Equal(other *Table) bool {
	if t.len != other.len {
		return false
	}
	equal := true
	t.Range(func(key, count uint64) bool {
		if other.Get(key) != count {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// ProbeStats scans the table and returns the maximum and mean probe length
// over the current entries (1 = key sits in its home slot). It recomputes
// displacements from the stored keys, so the construction hot path pays
// nothing for this diagnostic; an empty table reports (0, 0).
func (t *Table) ProbeStats() (max int, mean float64) {
	if t.len == 0 {
		return 0, 0
	}
	mask := uint64(len(t.keys) - 1)
	var total uint64
	for i, k := range t.keys {
		if k == emptySlot {
			continue
		}
		home := rng.Mix64(k) & mask
		dist := int((uint64(i) - home) & mask)
		probes := dist + 1
		if probes > max {
			max = probes
		}
		total += uint64(probes)
	}
	return max, float64(total) / float64(t.len)
}

// String summarizes the table for debugging.
func (t *Table) String() string {
	return fmt.Sprintf("hashtable.Table{len=%d cap=%d grows=%d}", t.len, len(t.keys), t.grows)
}

func (t *Table) grow() {
	oldKeys, oldCounts := t.keys, t.counts
	capacity := len(oldKeys) << 1
	t.keys = make([]uint64, capacity)
	t.counts = make([]uint64, capacity)
	for i := range t.keys {
		t.keys[i] = emptySlot
	}
	mask := uint64(capacity - 1)
	for i, k := range oldKeys {
		if k == emptySlot {
			continue
		}
		j := rng.Mix64(k) & mask
		for t.keys[j] != emptySlot {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.counts[j] = oldCounts[i]
	}
	t.grows++
}
