package hashtable

import "waitfreebn/internal/rng"

// ChainedTable is a separate-chaining hash table from uint64 keys to uint64
// counts. It serves as the ablation counterpart to the open-addressing
// Table (bench A4) and as a structurally independent oracle in differential
// tests. Like Table, it is single-owner and unsynchronized.
type ChainedTable struct {
	buckets []int32 // head index into nodes, -1 = empty
	nodes   []chainNode
}

type chainNode struct {
	key   uint64
	count uint64
	next  int32
}

// NewChained returns a chained table pre-sized for sizeHint entries.
func NewChained(sizeHint int) *ChainedTable {
	capacity := minCapacity
	for capacity < sizeHint {
		capacity <<= 1
	}
	t := &ChainedTable{
		buckets: make([]int32, capacity),
		nodes:   make([]chainNode, 0, sizeHint),
	}
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	return t
}

// Len returns the number of distinct keys stored.
func (t *ChainedTable) Len() int { return len(t.nodes) }

// Add increments the count of key by delta, inserting the key if absent.
func (t *ChainedTable) Add(key, delta uint64) {
	mask := uint64(len(t.buckets) - 1)
	b := rng.Mix64(key) & mask
	for i := t.buckets[b]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].key == key {
			t.nodes[i].count += delta
			return
		}
	}
	t.nodes = append(t.nodes, chainNode{key: key, count: delta, next: t.buckets[b]})
	t.buckets[b] = int32(len(t.nodes) - 1)
	if len(t.nodes) > len(t.buckets) {
		t.grow()
	}
}

// Inc increments the count of key by one.
func (t *ChainedTable) Inc(key uint64) { t.Add(key, 1) }

// AddBatch increments the count of every key in keys by one, with the same
// chunked hash-all-then-probe-all layout as Table.AddBatch. Growth is
// ensured per chunk so the precomputed bucket indexes stay valid.
func (t *ChainedTable) AddBatch(keys []uint64) {
	var hashes [addBatchChunk]uint64
	for len(keys) > 0 {
		chunk := keys
		if len(chunk) > addBatchChunk {
			chunk = chunk[:addBatchChunk]
		}
		keys = keys[len(chunk):]
		for len(t.nodes)+len(chunk) > len(t.buckets) {
			t.grow()
		}
		mask := uint64(len(t.buckets) - 1)
		for i, k := range chunk {
			hashes[i] = rng.Mix64(k) & mask
		}
		for i, k := range chunk {
			b := hashes[i]
			found := false
			for n := t.buckets[b]; n >= 0; n = t.nodes[n].next {
				if t.nodes[n].key == k {
					t.nodes[n].count++
					found = true
					break
				}
			}
			if !found {
				t.nodes = append(t.nodes, chainNode{key: k, count: 1, next: t.buckets[b]})
				t.buckets[b] = int32(len(t.nodes) - 1)
			}
		}
	}
}

// Get returns the count stored for key, or 0 if absent.
func (t *ChainedTable) Get(key uint64) uint64 {
	mask := uint64(len(t.buckets) - 1)
	for i := t.buckets[rng.Mix64(key)&mask]; i >= 0; i = t.nodes[i].next {
		if t.nodes[i].key == key {
			return t.nodes[i].count
		}
	}
	return 0
}

// Range calls fn for every (key, count) pair in unspecified order.
// Returning false stops the iteration early.
func (t *ChainedTable) Range(fn func(key, count uint64) bool) {
	for i := range t.nodes {
		if !fn(t.nodes[i].key, t.nodes[i].count) {
			return
		}
	}
}

// Total returns the sum of all counts.
func (t *ChainedTable) Total() uint64 {
	var total uint64
	for i := range t.nodes {
		total += t.nodes[i].count
	}
	return total
}

// Reset removes all entries but keeps allocated capacity.
func (t *ChainedTable) Reset() {
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	t.nodes = t.nodes[:0]
}

func (t *ChainedTable) grow() {
	capacity := len(t.buckets) << 1
	t.buckets = make([]int32, capacity)
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	mask := uint64(capacity - 1)
	for i := range t.nodes {
		b := rng.Mix64(t.nodes[i].key) & mask
		t.nodes[i].next = t.buckets[b]
		t.buckets[b] = int32(i)
	}
}

// Counter is the common interface of the count tables in this package and
// of Go's built-in map wrapped by MapTable. The construction strategies are
// written against it so every table type can be swapped in for ablation.
type Counter interface {
	Add(key, delta uint64)
	Inc(key uint64)
	// AddBatch increments every key in keys by one; the batched write path
	// of the construction primitive feeds it whole blocks of owned keys.
	AddBatch(keys []uint64)
	Get(key uint64) uint64
	Len() int
	Total() uint64
	Range(fn func(key, count uint64) bool)
}

var (
	_ Counter = (*Table)(nil)
	_ Counter = (*ChainedTable)(nil)
	_ Counter = (MapTable)(nil)
	_ Counter = (*Dense)(nil)
)

// MapTable adapts Go's built-in map to the Counter interface, as the
// simplest possible oracle and the third arm of ablation A4.
type MapTable map[uint64]uint64

// NewMapTable returns a MapTable pre-sized for sizeHint entries.
func NewMapTable(sizeHint int) MapTable { return make(MapTable, sizeHint) }

// Add increments the count of key by delta.
func (m MapTable) Add(key, delta uint64) { m[key] += delta }

// Inc increments the count of key by one.
func (m MapTable) Inc(key uint64) { m[key]++ }

// AddBatch increments every key in keys by one.
func (m MapTable) AddBatch(keys []uint64) {
	for _, k := range keys {
		m[k]++
	}
}

// Get returns the count stored for key, or 0 if absent.
func (m MapTable) Get(key uint64) uint64 { return m[key] }

// Len returns the number of distinct keys.
func (m MapTable) Len() int { return len(m) }

// Total returns the sum of all counts.
func (m MapTable) Total() uint64 {
	var total uint64
	for _, c := range m {
		total += c
	}
	return total
}

// Range calls fn for every (key, count) pair in unspecified order.
func (m MapTable) Range(fn func(key, count uint64) bool) {
	for k, c := range m {
		if !fn(k, c) {
			return
		}
	}
}
