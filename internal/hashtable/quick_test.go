package hashtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMergeEqualsSum: merging any two tables yields exactly the
// key-wise sum of their contents.
func TestQuickMergeEqualsSum(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(40))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := New(0), New(0)
		oracle := map[uint64]uint64{}
		for i := 0; i < 500; i++ {
			k := uint64(r.Intn(200))
			d := uint64(r.Intn(4) + 1)
			if r.Intn(2) == 0 {
				a.Add(k, d)
			} else {
				b.Add(k, d)
			}
			oracle[k] += d
		}
		a.Merge(b)
		if a.Len() != len(oracle) {
			return false
		}
		for k, c := range oracle {
			if a.Get(k) != c {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneThenDivergence: a clone equals the original until either
// side mutates, and mutations never leak across.
func TestQuickCloneThenDivergence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := New(0)
		for i := 0; i < 300; i++ {
			orig.Add(uint64(r.Intn(100)), uint64(r.Intn(3)+1))
		}
		clone := orig.Clone()
		if !orig.Equal(clone) {
			return false
		}
		snapshot := map[uint64]uint64{}
		orig.Range(func(k, c uint64) bool {
			snapshot[k] = c
			return true
		})
		for i := 0; i < 100; i++ {
			clone.Add(uint64(r.Intn(100)), 1)
		}
		// Original unchanged.
		ok := orig.Len() == len(snapshot)
		orig.Range(func(k, c uint64) bool {
			if snapshot[k] != c {
				ok = false
				return false
			}
			return true
		})
		return ok
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickResetThenRefillMatchesFresh: a reused (Reset) table behaves
// identically to a freshly allocated one.
func TestQuickResetThenRefillMatchesFresh(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		reused := New(0)
		for i := 0; i < 400; i++ {
			reused.Add(uint64(r.Intn(300)), 1)
		}
		reused.Reset()
		fresh := New(0)
		r2 := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 400; i++ {
			k := uint64(r2.Intn(300))
			reused.Inc(k)
			fresh.Inc(k)
		}
		return reused.Equal(fresh)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTotalInvariant: Total always equals the number of Inc calls.
func TestQuickTotalInvariant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(func(seed int64, n16 uint16) bool {
		n := int(n16 % 2000)
		r := rand.New(rand.NewSource(seed))
		for _, c := range []Counter{New(0), NewChained(0), NewMapTable(0)} {
			for i := 0; i < n; i++ {
				c.Inc(uint64(r.Intn(64)))
			}
			if c.Total() != uint64(n) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
