package hashtable

import (
	"fmt"

	"waitfreebn/internal/encoding"
)

// Dense is a direct-addressing count table over an affine key lattice: it
// owns exactly the keys {idx*div + off : 0 <= idx < size} and stores their
// counts in a flat []uint64 indexed by idx = (key-off)/div. The division is
// a multiply-shift reciprocal (encoding.Reciprocal), so Add is one
// subtraction, one widening multiply, and one indexed increment — no
// hashing, no probing, no growth.
//
// The lattice matches what the construction partitioners hand a single
// owner: modulo partitioning gives partition i the keys ≡ i (mod P)
// (div=P, off=i), range partitioning a contiguous interval (div=1,
// off=i·width). Dense is only usable when the partition's key range fits a
// memory budget; the core package decides that and falls back to open
// addressing otherwise.
//
// Like the other tables in this package Dense is single-owner and
// unsynchronized. Keys outside the lattice must never be Added (the
// partitioner guarantees that during construction); Get tolerates them and
// returns 0.
type Dense struct {
	counts []uint64
	recip  encoding.Reciprocal // divides by div
	div    uint64
	off    uint64
	len    int
	total  uint64
}

// NewDense returns a dense table owning the size keys {idx*div + off}.
// div must be positive.
func NewDense(size int, div, off uint64) *Dense {
	if size < 0 {
		panic(fmt.Sprintf("hashtable: NewDense size %d", size))
	}
	if div == 0 {
		panic("hashtable: NewDense div must be positive")
	}
	return &Dense{
		counts: make([]uint64, size),
		recip:  encoding.NewReciprocal(div),
		div:    div,
		off:    off,
	}
}

// index maps an owned key to its cell. Callers on the write path trust the
// partitioner; see Get for the tolerant read-side mapping.
func (t *Dense) index(key uint64) uint64 {
	return t.recip.Div(key - t.off)
}

// Add increments the count of key by delta. key must be a lattice key the
// table owns.
func (t *Dense) Add(key, delta uint64) {
	idx := t.index(key)
	if t.counts[idx] == 0 {
		t.len++
	}
	t.counts[idx] += delta
	t.total += delta
}

// Inc increments the count of key by one.
func (t *Dense) Inc(key uint64) { t.Add(key, 1) }

// AddBatch increments every key in keys by one.
func (t *Dense) AddBatch(keys []uint64) {
	for _, key := range keys {
		idx := t.index(key)
		if t.counts[idx] == 0 {
			t.len++
		}
		t.counts[idx]++
	}
	t.total += uint64(len(keys))
}

// Get returns the count stored for key, or 0 when key is absent — including
// any key outside the table's lattice (the potential table probes every
// partition on point lookups).
func (t *Dense) Get(key uint64) uint64 {
	if key < t.off {
		return 0
	}
	idx := t.recip.Div(key - t.off)
	if idx >= uint64(len(t.counts)) || idx*t.div+t.off != key {
		return 0
	}
	return t.counts[idx]
}

// Len returns the number of distinct keys with nonzero counts.
func (t *Dense) Len() int { return t.len }

// Total returns the sum of all counts.
func (t *Dense) Total() uint64 { return t.total }

// Capacity returns the number of lattice cells the table addresses.
func (t *Dense) Capacity() int { return len(t.counts) }

// Range calls fn for every nonzero (key, count) pair in ascending key
// order. Returning false stops the iteration early.
func (t *Dense) Range(fn func(key, count uint64) bool) {
	key := t.off
	for _, c := range t.counts {
		if c != 0 && !fn(key, c) {
			return
		}
		key += t.div
	}
}

// Reset zeroes all counts but keeps the allocation.
func (t *Dense) Reset() {
	for i := range t.counts {
		t.counts[i] = 0
	}
	t.len = 0
	t.total = 0
}

// String summarizes the table for debugging.
func (t *Dense) String() string {
	return fmt.Sprintf("hashtable.Dense{len=%d cells=%d div=%d off=%d}", t.len, len(t.counts), t.div, t.off)
}
