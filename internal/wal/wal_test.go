package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/obs"
)

func open(t *testing.T, dir string, mutate func(*Options)) *Log {
	t.Helper()
	opts := Options{Dir: dir}
	if mutate != nil {
		mutate(&opts)
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, batches [][]uint64) []uint64 {
	t.Helper()
	var seqs []uint64
	for _, b := range batches {
		seq, err := l.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func replayAll(t *testing.T, l *Log, after uint64) (seqs []uint64, blocks [][]uint64) {
	t.Helper()
	err := l.Replay(after, func(seq uint64, keys []uint64) error {
		seqs = append(seqs, seq)
		blocks = append(blocks, append([]uint64{}, keys...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, blocks
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, nil)
	batches := [][]uint64{{1, 2, 3}, {}, {42}, {7, 7, 7, 1 << 62}}
	seqs := appendN(t, l, batches)
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	if l.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4", l.LastSeq())
	}
	gotSeqs, gotBlocks := replayAll(t, l, 0)
	if len(gotSeqs) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(gotSeqs), len(batches))
	}
	for i := range batches {
		if gotSeqs[i] != seqs[i] {
			t.Fatalf("record %d seq = %d, want %d", i, gotSeqs[i], seqs[i])
		}
		if len(gotBlocks[i]) != len(batches[i]) {
			t.Fatalf("record %d has %d keys, want %d", i, len(gotBlocks[i]), len(batches[i]))
		}
		for j := range batches[i] {
			if gotBlocks[i][j] != batches[i][j] {
				t.Fatalf("record %d key %d = %d, want %d", i, j, gotBlocks[i][j], batches[i][j])
			}
		}
	}
	// Replay strictly after a checkpoint position.
	tailSeqs, _ := replayAll(t, l, 2)
	if len(tailSeqs) != 2 || tailSeqs[0] != 3 {
		t.Fatalf("replay after 2 = %v, want [3 4]", tailSeqs)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, nil)
	appendN(t, l, [][]uint64{{1}, {2}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := open(t, dir, nil)
	if l2.LastSeq() != 2 {
		t.Fatalf("reopened LastSeq = %d, want 2", l2.LastSeq())
	}
	seq, err := l2.Append([]uint64{3})
	if err != nil || seq != 3 {
		t.Fatalf("append after reopen = (%d, %v), want (3, nil)", seq, err)
	}
	seqs, _ := replayAll(t, l2, 0)
	if len(seqs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(seqs))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, func(o *Options) { o.SegmentBytes = 64 })
	var batches [][]uint64
	for i := 0; i < 40; i++ {
		batches = append(batches, []uint64{uint64(i), uint64(i) * 3})
	}
	appendN(t, l, batches)
	if l.Segments() < 3 {
		t.Fatalf("only %d segments after 40 records at 64-byte rotation", l.Segments())
	}
	seqs, blocks := replayAll(t, l, 0)
	if len(seqs) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(seqs))
	}
	for i := range blocks {
		if blocks[i][0] != uint64(i) {
			t.Fatalf("record %d payload %v out of order", i, blocks[i])
		}
	}

	// Truncating through seq 20 must drop fully covered segments but keep
	// every record after 20 replayable.
	before := l.Segments()
	if err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("TruncateThrough removed no segments (%d -> %d)", before, l.Segments())
	}
	tail, _ := replayAll(t, l, 20)
	if len(tail) != 20 || tail[0] != 21 || tail[len(tail)-1] != 40 {
		t.Fatalf("post-truncate replay = %d records [%d..%d], want 20 [21..40]",
			len(tail), tail[0], tail[len(tail)-1])
	}
	// Reopen after truncation: sequence numbering must survive.
	l.Close()
	l2 := open(t, dir, func(o *Options) { o.SegmentBytes = 64 })
	if l2.LastSeq() != 40 {
		t.Fatalf("LastSeq after truncate+reopen = %d, want 40", l2.LastSeq())
	}
}

// TestTornTailTruncatedAtEveryOffset cuts the final segment at every byte
// position: reopening must never fail, never replay a corrupt record, and
// always recover the longest valid record prefix.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	l := open(t, master, nil)
	batches := [][]uint64{{9, 8, 7}, {1}, {5, 5}, {1000000007}}
	appendN(t, l, batches)
	l.Close()
	segs, err := filepath.Glob(filepath.Join(master, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries for the prefix-length oracle.
	var bounds []int
	off := len(segMagic)
	buf := []byte(nil)
	for i, b := range batches {
		buf = appendRecord(buf[:0], uint64(i+1), b)
		off += len(buf)
		bounds = append(bounds, off)
	}

	for cut := len(segMagic); cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lr, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		wantRecords := 0
		for _, b := range bounds {
			if cut >= b {
				wantRecords++
			}
		}
		seqs, blocks := replayAll(t, lr, 0)
		if len(seqs) != wantRecords {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(seqs), wantRecords)
		}
		for i := range seqs {
			if seqs[i] != uint64(i+1) || blocks[i][0] != batches[i][0] {
				t.Fatalf("cut at %d: record %d corrupted: seq %d keys %v", cut, i, seqs[i], blocks[i])
			}
		}
		// The log must keep appending correctly from the recovered position.
		seq, err := lr.Append([]uint64{123})
		if err != nil || seq != uint64(wantRecords+1) {
			t.Fatalf("cut at %d: append = (%d, %v), want (%d, nil)", cut, seq, err, wantRecords+1)
		}
		lr.Close()
	}
}

func TestBitFlipNeverReplaysCorruptRecord(t *testing.T) {
	master := t.TempDir()
	l := open(t, master, nil)
	batches := [][]uint64{{11, 22}, {33}, {44, 55, 66}}
	appendN(t, l, batches)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(master, segPrefix+"*"+segSuffix))
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for bit := len(segMagic) * 8; bit < len(full)*8; bit += 7 {
		flipped := append([]byte{}, full...)
		flipped[bit/8] ^= 1 << (bit % 8)
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		lr, err := Open(Options{Dir: dir})
		if err != nil {
			continue // unopenable is acceptable; replaying garbage is not
		}
		var replayed [][]uint64
		_ = lr.Replay(0, func(seq uint64, keys []uint64) error {
			replayed = append(replayed, keys)
			return nil
		})
		// Every replayed record must be an exact prefix of what was written.
		if len(replayed) > len(batches) {
			t.Fatalf("bit %d: replayed %d records, wrote %d", bit, len(replayed), len(batches))
		}
		for i, keys := range replayed {
			if len(keys) != len(batches[i]) {
				t.Fatalf("bit %d: record %d has %d keys, want %d", bit, i, len(keys), len(batches[i]))
			}
			for j := range keys {
				if keys[j] != batches[i][j] {
					t.Fatalf("bit %d: corrupt record replayed: %v vs %v", bit, keys, batches[i])
				}
			}
		}
		lr.Close()
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncBatch, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			l := open(t, t.TempDir(), func(o *Options) { o.Sync = pol; o.Obs = reg })
			appendN(t, l, [][]uint64{{1}, {2}, {3}})
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			fsyncs := reg.Counter(metricFsyncs).Value()
			switch pol {
			case SyncAlways:
				if fsyncs < 3 {
					t.Fatalf("always: %d fsyncs for 3 appends", fsyncs)
				}
			case SyncBatch:
				if fsyncs != 1 {
					t.Fatalf("batch: %d fsyncs, want 1 (the barrier)", fsyncs)
				}
			case SyncNever:
				if fsyncs != 0 {
					t.Fatalf("never: %d fsyncs, want 0", fsyncs)
				}
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false}, {"batch", SyncBatch, false},
		{"never", SyncNever, false}, {"", SyncBatch, false}, {"nope", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err || (!tc.err && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v)", tc.in, got, err)
		}
	}
}

func TestAppendFaultInjection(t *testing.T) {
	restore := faultinject.Activate(faultinject.NewPlan(1).WithRate(faultinject.WALWriteFail, 1))
	defer restore()
	l := open(t, t.TempDir(), nil)
	if _, err := l.Append([]uint64{1}); err == nil {
		t.Fatal("wal-write at rate 1 did not fail the append")
	}
	var inj *faultinject.InjectedError
	_, err := l.Append([]uint64{1})
	if !errors.As(err, &inj) || inj.Point != faultinject.WALWriteFail {
		t.Fatalf("append error %v is not the injected wal-write fault", err)
	}
	restore()
	// After the plan clears, the same log must append from seq 1: failed
	// appends never consumed sequence numbers.
	seq, err := l.Append([]uint64{1})
	if err != nil || seq != 1 {
		t.Fatalf("append after faults = (%d, %v), want (1, nil)", seq, err)
	}
}

func TestFsyncFaultInjection(t *testing.T) {
	restore := faultinject.Activate(faultinject.NewPlan(1).WithRate(faultinject.WALFsyncFail, 1))
	defer restore()
	l := open(t, t.TempDir(), func(o *Options) { o.Sync = SyncAlways })
	if _, err := l.Append([]uint64{1}); err == nil {
		t.Fatal("wal-fsync at rate 1 did not fail the SyncAlways append")
	}
	restore()
	// The record's bytes may be on disk; replay after a clean reopen must
	// still be a valid prefix (zero or one records), never garbage.
	l.Close()
	l2 := open(t, l.Dir(), nil)
	seqs, _ := replayAll(t, l2, 0)
	if len(seqs) > 1 {
		t.Fatalf("replayed %d records after one failed-fsync append", len(seqs))
	}
}

func TestAppendToClosedLog(t *testing.T) {
	l := open(t, t.TempDir(), nil)
	l.Close()
	if _, err := l.Append([]uint64{1}); err == nil {
		t.Fatal("append to closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

func TestRecordEncodingStable(t *testing.T) {
	// The on-disk framing is a compatibility surface; lock its exact bytes.
	got := appendRecord(nil, 1, []uint64{5})
	want := appendRecord(nil, 1, []uint64{5})
	if !bytes.Equal(got, want) {
		t.Fatal("appendRecord is nondeterministic")
	}
	if len(got) != 4+1+1+2 { // crc + seq varint + len varint + (count + key)
		t.Fatalf("record length = %d, want 8", len(got))
	}
}
