package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/obs"
)

// memTable is an io.WriterTo with deterministic bytes, standing in for
// core.PotentialTable.WriteTo.
type memTable []byte

func (m memTable) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(m)
	return int64(n), err
}

type failingTable struct{}

func (failingTable) WriteTo(w io.Writer) (int64, error) {
	n, _ := w.Write([]byte("part"))
	return int64(n), errors.New("freeze interrupted")
}

func openStore(t *testing.T, dir string) *CheckpointStore {
	t.Helper()
	s, err := OpenCheckpoints(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir())
	tbl := memTable("WFBN1\ndeterministic table bytes")
	in := Manifest{Epoch: 3, Rows: 128, Keys: 17, WALSeq: 42}
	out, err := s.Save(in, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if out.TableFile == "" || out.TableCRC == 0 {
		t.Fatalf("Save did not fill TableFile/TableCRC: %+v", out)
	}
	man, data, ok, err := s.LoadLatest()
	if err != nil || !ok {
		t.Fatalf("LoadLatest = (ok=%v, err=%v)", ok, err)
	}
	if man != out {
		t.Fatalf("manifest round-trip: got %+v, want %+v", man, out)
	}
	if !bytes.Equal(data, []byte(tbl)) {
		t.Fatal("table bytes did not round-trip")
	}
	wantCRC, err := TableCRC(tbl)
	if err != nil || man.TableCRC != wantCRC {
		t.Fatalf("TableCRC mismatch: manifest %d, computed %d (%v)", man.TableCRC, wantCRC, err)
	}
}

func TestLoadLatestPicksNewestAndPrunes(t *testing.T) {
	s := openStore(t, t.TempDir())
	for e := uint64(1); e <= 5; e++ {
		if _, err := s.Save(Manifest{Epoch: e, WALSeq: e * 10}, memTable(fmt.Sprintf("table-%d", e))); err != nil {
			t.Fatal(err)
		}
	}
	man, data, ok, err := s.LoadLatest()
	if err != nil || !ok || man.Epoch != 5 || string(data) != "table-5" {
		t.Fatalf("LoadLatest after 5 saves = (%+v, %q, %v, %v)", man, data, ok, err)
	}
	epochs, err := s.manifestEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != keepCheckpoint {
		t.Fatalf("retention kept %d manifests (%v), want %d", len(epochs), epochs, keepCheckpoint)
	}
}

func TestLoadLatestSkipsCorruptTable(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, err := s.Save(Manifest{Epoch: 1, WALSeq: 10}, memTable("old-table")); err != nil {
		t.Fatal(err)
	}
	m2, err := s.Save(Manifest{Epoch: 2, WALSeq: 20}, memTable("new-table"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest table file; recovery must fall back to epoch 1.
	if err := os.WriteFile(filepath.Join(s.Dir(), m2.TableFile), []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	man, data, ok, err := s.LoadLatest()
	if err != nil || !ok {
		t.Fatalf("LoadLatest = (ok=%v, err=%v)", ok, err)
	}
	if man.Epoch != 1 || string(data) != "old-table" {
		t.Fatalf("fallback loaded epoch %d (%q), want epoch 1", man.Epoch, data)
	}
}

func TestLoadLatestEmptyAndGarbage(t *testing.T) {
	s := openStore(t, t.TempDir())
	if _, _, ok, err := s.LoadLatest(); ok || err != nil {
		t.Fatalf("empty store LoadLatest = (ok=%v, err=%v)", ok, err)
	}
	// Garbage manifests must be skipped, not fatal.
	for i, body := range []string{"", "{", `{"table_file":"../../etc/passwd"}`} {
		p := filepath.Join(s.Dir(), fmt.Sprintf("%s%020d%s", ckptPrefix, uint64(100+i), ckptManSuffix))
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok, err := s.LoadLatest(); ok || err != nil {
		t.Fatalf("garbage-only store LoadLatest = (ok=%v, err=%v)", ok, err)
	}
}

func TestSaveFailureLeavesPreviousCheckpoint(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := OpenCheckpoints(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(Manifest{Epoch: 1, WALSeq: 5}, memTable("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(Manifest{Epoch: 2, WALSeq: 9}, failingTable{}); err == nil {
		t.Fatal("Save with failing WriterTo succeeded")
	}
	man, data, ok, err := s.LoadLatest()
	if err != nil || !ok || man.Epoch != 1 || string(data) != "good" {
		t.Fatalf("after failed save, LoadLatest = (%+v, %q, %v, %v), want epoch 1", man, data, ok, err)
	}
	if got := reg.Counter(metricCkptFailures).Value(); got != 1 {
		t.Fatalf("checkpoint failure counter = %d, want 1", got)
	}
}

func TestSaveFaultInjection(t *testing.T) {
	restore := faultinject.Activate(faultinject.NewPlan(1).WithRate(faultinject.CheckpointWriteFail, 1))
	defer restore()
	s := openStore(t, t.TempDir())
	_, err := s.Save(Manifest{Epoch: 7}, memTable("x"))
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) || inj.Point != faultinject.CheckpointWriteFail {
		t.Fatalf("Save error %v is not the injected checkpoint-write fault", err)
	}
	if _, _, ok, _ := s.LoadLatest(); ok {
		t.Fatal("injected checkpoint failure still committed a manifest")
	}
	restore()
	if _, err := s.Save(Manifest{Epoch: 7}, memTable("x")); err != nil {
		t.Fatalf("Save after plan cleared: %v", err)
	}
}

func TestReadManifest(t *testing.T) {
	body := []byte(` {"epoch":9,"rows":4,"keys":2,"wal_seq":77,"table_file":"ckpt-9.tbl","table_crc32c":123} ` + "\n")
	m, err := ReadManifest(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 9 || m.Rows != 4 || m.Keys != 2 || m.WALSeq != 77 || m.TableFile != "ckpt-9.tbl" || m.TableCRC != 123 {
		t.Fatalf("ReadManifest = %+v", m)
	}
	if _, err := ReadManifest([]byte("not json")); err == nil {
		t.Fatal("ReadManifest accepted garbage")
	}
}
