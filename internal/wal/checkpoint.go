package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/obs"
)

// A checkpoint bounds recovery work: instead of replaying the whole log, a
// restart loads the newest valid checkpoint's table and replays only the
// records after its WALSeq. Each checkpoint is two files, written in commit
// order so a crash at any byte leaves the previous checkpoint intact:
//
//	ckpt-<epoch>.tbl   the frozen table, core.PotentialTable.WriteTo bytes
//	ckpt-<epoch>.json  the manifest, committed last via atomic rename
//
// Both are staged as .tmp files, fsynced, then renamed; the manifest names
// the table file and carries its CRC32C, so a manifest only ever points at
// a table that was fully durable first. LoadLatest walks manifests newest-
// first and skips any whose table is missing or fails the checksum — a
// half-written checkpoint degrades recovery (longer replay), never corrupts
// it.

// Manifest metric names.
const (
	metricCkptSaves    = "wal_checkpoints_total"
	metricCkptFailures = "wal_checkpoint_failures_total"
	metricCkptEpoch    = "wal_checkpoint_epoch"
)

const (
	ckptPrefix     = "ckpt-"
	ckptTblSuffix  = ".tbl"
	ckptManSuffix  = ".json"
	keepCheckpoint = 2 // retained manifests: the newest plus one fallback
)

// Manifest describes one epoch checkpoint. It is the recovery contract:
// load TableFile (verifying TableCRC), seed the builder with it, then
// replay the WAL strictly after WALSeq.
type Manifest struct {
	// Epoch is the published epoch the table corresponds to.
	Epoch uint64 `json:"epoch"`
	// Rows is the table's sample count m.
	Rows uint64 `json:"rows"`
	// Keys is the table's distinct-key count (a cheap recovery sanity bound).
	Keys int `json:"keys"`
	// WALSeq is the last WAL record folded into the table; replay resumes
	// strictly after it.
	WALSeq uint64 `json:"wal_seq"`
	// TableFile is the table's file name within the checkpoint dir.
	TableFile string `json:"table_file"`
	// TableCRC is the CRC32C of the table file's bytes. WriteTo output is
	// deterministic, so this doubles as a content checksum of the epoch.
	TableCRC uint32 `json:"table_crc32c"`
}

// CheckpointStore reads and writes epoch checkpoints in one directory
// (conventionally the WAL dir).
type CheckpointStore struct {
	dir      string
	saves    *obs.Counter
	failures *obs.Counter
	epochG   *obs.Gauge
}

// OpenCheckpoints prepares a store in dir, creating it if absent.
func OpenCheckpoints(dir string, reg *obs.Registry) (*CheckpointStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: checkpoint dir is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if reg != nil {
		reg.Help(metricCkptSaves, "epoch checkpoints committed")
		reg.Help(metricCkptFailures, "epoch checkpoint attempts that failed")
		reg.Help(metricCkptEpoch, "epoch of the newest committed checkpoint")
	}
	return &CheckpointStore{
		dir:      dir,
		saves:    reg.Counter(metricCkptSaves),
		failures: reg.Counter(metricCkptFailures),
		epochG:   reg.Gauge(metricCkptEpoch),
	}, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// Save commits a checkpoint of table for man.Epoch (the caller fills Epoch,
// Rows, Keys and WALSeq; TableFile and TableCRC are computed here) and
// prunes checkpoints older than the retention window. The checkpoint-write
// fault point fires at entry. On any error nothing newer than the previous
// checkpoint is visible to LoadLatest.
func (s *CheckpointStore) Save(man Manifest, table io.WriterTo) (Manifest, error) {
	m, err := s.save(man, table)
	if err != nil {
		s.failures.Inc()
		return m, err
	}
	s.saves.Inc()
	s.epochG.Set(float64(m.Epoch))
	return m, nil
}

func (s *CheckpointStore) save(man Manifest, table io.WriterTo) (Manifest, error) {
	if err := faultinject.Active().MaybeErr(faultinject.CheckpointWriteFail, 0, man.Epoch); err != nil {
		return man, err
	}
	man.TableFile = fmt.Sprintf("%s%020d%s", ckptPrefix, man.Epoch, ckptTblSuffix)
	tblPath := filepath.Join(s.dir, man.TableFile)

	// Stage the table, computing the content CRC as the bytes stream out.
	tmp, err := os.CreateTemp(s.dir, man.TableFile+".tmp")
	if err != nil {
		return man, fmt.Errorf("wal: checkpoint table: %w", err)
	}
	defer os.Remove(tmp.Name())
	crc := crc32.New(crcTable)
	if _, err := table.WriteTo(io.MultiWriter(tmp, crc)); err != nil {
		tmp.Close()
		return man, fmt.Errorf("wal: checkpoint table: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return man, fmt.Errorf("wal: checkpoint table: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return man, fmt.Errorf("wal: checkpoint table: %w", err)
	}
	if err := os.Rename(tmp.Name(), tblPath); err != nil {
		return man, fmt.Errorf("wal: checkpoint table: %w", err)
	}
	man.TableCRC = crc.Sum32()

	// Commit point: the manifest rename. Until it lands, recovery sees only
	// the previous checkpoint.
	body, err := json.Marshal(man)
	if err != nil {
		return man, fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	manPath := filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", ckptPrefix, man.Epoch, ckptManSuffix))
	mtmp, err := os.CreateTemp(s.dir, "manifest.tmp")
	if err != nil {
		return man, fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	defer os.Remove(mtmp.Name())
	if _, err := mtmp.Write(body); err != nil {
		mtmp.Close()
		return man, fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	if err := mtmp.Sync(); err != nil {
		mtmp.Close()
		return man, fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	if err := mtmp.Close(); err != nil {
		return man, fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	if err := os.Rename(mtmp.Name(), manPath); err != nil {
		return man, fmt.Errorf("wal: checkpoint manifest: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync() // persist the renames themselves
		d.Close()
	}
	s.prune(man.Epoch)
	return man, nil
}

// prune removes checkpoints outside the retention window — everything but
// the keepCheckpoint newest epochs up to and including latest.
func (s *CheckpointStore) prune(latest uint64) {
	epochs, _ := s.manifestEpochs()
	kept := 0
	for i := len(epochs) - 1; i >= 0; i-- {
		if epochs[i] > latest {
			continue
		}
		kept++
		if kept <= keepCheckpoint {
			continue
		}
		e := epochs[i]
		os.Remove(filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", ckptPrefix, e, ckptManSuffix)))
		os.Remove(filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", ckptPrefix, e, ckptTblSuffix)))
	}
}

// LoadLatest returns the newest valid checkpoint: its manifest and the
// verified table bytes, ready for core.ReadTable. Manifests whose table
// file is missing, short, or checksum-mismatched are skipped (with the
// failure counted), falling back to older checkpoints; ok is false when no
// valid checkpoint exists.
func (s *CheckpointStore) LoadLatest() (man Manifest, table []byte, ok bool, err error) {
	epochs, err := s.manifestEpochs()
	if err != nil {
		return Manifest{}, nil, false, err
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		manPath := filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", ckptPrefix, epochs[i], ckptManSuffix))
		body, rerr := os.ReadFile(manPath)
		if rerr != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(body, &m) != nil || m.TableFile == "" ||
			strings.Contains(m.TableFile, string(os.PathSeparator)) || strings.Contains(m.TableFile, "..") {
			s.failures.Inc()
			continue
		}
		tbl, rerr := os.ReadFile(filepath.Join(s.dir, m.TableFile))
		if rerr != nil || crc32.Checksum(tbl, crcTable) != m.TableCRC {
			// The manifest committed but its table is gone or damaged —
			// possible only under external interference, but recovery must
			// degrade, not die.
			s.failures.Inc()
			continue
		}
		return m, tbl, true, nil
	}
	return Manifest{}, nil, false, nil
}

// TableCRC computes the store's content checksum of a table's serialized
// bytes — the value Save records and the chaos tests compare across a
// crash/recover boundary.
func TableCRC(table io.WriterTo) (uint32, error) {
	crc := crc32.New(crcTable)
	if _, err := table.WriteTo(crc); err != nil {
		return 0, err
	}
	return crc.Sum32(), nil
}

// ReadManifest parses manifest bytes (exported for tests and tooling).
func ReadManifest(body []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(bytes.TrimSpace(body), &m); err != nil {
		return Manifest{}, fmt.Errorf("wal: manifest: %w", err)
	}
	return m, nil
}

// manifestEpochs lists committed manifest epochs, ascending.
func (s *CheckpointStore) manifestEpochs() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var epochs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptManSuffix) {
			continue
		}
		var epoch uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptManSuffix), "%d", &epoch); err != nil {
			continue
		}
		epochs = append(epochs, epoch)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}
