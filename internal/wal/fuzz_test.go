package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord round-trips arbitrary key blocks through the record framing
// and then attacks the encoded bytes: truncation at any point and any single
// bit flip must be rejected by the validation path — never panic, never
// yield different keys with a passing checksum (CRC32 detects all 1-bit
// errors, so acceptance of a genuinely flipped record is impossible).
func FuzzWALRecord(f *testing.F) {
	f.Add(uint64(1), []byte{}, uint64(0), byte(0))
	f.Add(uint64(7), []byte{1, 2, 3, 255, 254}, uint64(2), byte(1))
	f.Add(uint64(1)<<40, []byte{0x80, 0x80, 0x80, 0x01}, uint64(9), byte(7))
	f.Fuzz(func(t *testing.T, seq uint64, raw []byte, cutAt uint64, flip byte) {
		if seq == 0 {
			seq = 1
		}
		// Derive a key block from the raw fuzz bytes.
		keys := make([]uint64, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			keys = append(keys, uint64(raw[i])<<8|uint64(raw[i+1]))
		}
		rec := appendRecord(nil, seq, keys)

		// Clean decode must reproduce the record exactly.
		gotKeys, ok := decodeRecord(rec, seq)
		if !ok {
			t.Fatalf("freshly encoded record failed to decode (seq %d, %d keys)", seq, len(keys))
		}
		if len(gotKeys) != len(keys) {
			t.Fatalf("round-trip count %d != %d", len(gotKeys), len(keys))
		}
		for i := range keys {
			if gotKeys[i] != keys[i] {
				t.Fatalf("round-trip key %d: %d != %d", i, gotKeys[i], keys[i])
			}
		}

		// Truncation at any point short of the full record must be rejected.
		cut := int(cutAt % uint64(len(rec)+1))
		if cut < len(rec) {
			if _, ok := decodeRecord(rec[:cut], seq); ok {
				t.Fatalf("truncated record (%d of %d bytes) decoded", cut, len(rec))
			}
		}

		// A single bit flip must be rejected.
		mut := append([]byte{}, rec...)
		pos := int(cutAt % uint64(len(mut)))
		mut[pos] ^= 1 << (flip % 8)
		if _, ok := decodeRecord(mut, seq); ok {
			t.Fatalf("record with bit %d of byte %d flipped passed validation", flip%8, pos)
		}
	})
}

// decodeRecord runs one framed record through the same validation steps the
// segment scanner applies, reporting the keys and whether it was accepted.
func decodeRecord(rec []byte, seq uint64) ([]uint64, bool) {
	if len(rec) < 4 {
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(rec[:4])
	body := rec[4:]
	gotSeq, n1 := binary.Uvarint(body)
	if n1 <= 0 {
		return nil, false
	}
	plen, n2 := binary.Uvarint(body[n1:])
	if n2 <= 0 || plen > maxPayload {
		return nil, false
	}
	hdrLen := n1 + n2
	if uint64(len(body)) != uint64(hdrLen)+plen {
		return nil, false
	}
	if crc32.Checksum(body, crcTable) != crc || gotSeq != seq {
		return nil, false
	}
	keys, err := decodePayload(body[hdrLen:])
	return keys, err == nil
}

// FuzzWALReplay mangles a real segment two ways. Mode 0 derives the input
// from the original segment by truncating and flipping one bit: every
// replayed record must then be an exact prefix of what was written (CRC32
// catches any 1-bit damage, so a corrupt record can never be surfaced).
// Mode 1 treats the fuzz bytes as the whole segment: open/replay/append must
// never panic and replayed sequences must stay contiguous from 1.
func FuzzWALReplay(f *testing.F) {
	master := f.TempDir()
	l, err := Open(Options{Dir: master})
	if err != nil {
		f.Fatal(err)
	}
	written := [][]uint64{{10, 20, 30}, {}, {99}, {1 << 50, 7}}
	for _, b := range written {
		if _, err := l.Append(b); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	segs, err := filepath.Glob(filepath.Join(master, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		f.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	orig, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	segName := filepath.Base(segs[0])

	f.Add(byte(0), []byte{}, uint64(10), uint64(5), byte(1))
	f.Add(byte(0), []byte{}, uint64(1<<40), uint64(0), byte(0))
	f.Add(byte(1), []byte("WFWAL1\ngarbage"), uint64(0), uint64(0), byte(0))
	f.Add(byte(1), orig, uint64(0), uint64(0), byte(0))
	f.Fuzz(func(t *testing.T, mode byte, raw []byte, cutAt, flipPos uint64, flipBit byte) {
		derived := mode%2 == 0
		var data []byte
		if derived {
			data = append([]byte{}, orig[:cutAt%uint64(len(orig)+1)]...)
			if len(data) > 0 && flipBit >= 8 {
				data[flipPos%uint64(len(data))] ^= 1 << (flipBit % 8)
			}
		} else {
			data = raw
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		lr, err := Open(Options{Dir: dir})
		if err != nil {
			return // rejecting the whole segment is always safe
		}
		defer lr.Close()
		var replayed [][]uint64
		_ = lr.Replay(0, func(seq uint64, keys []uint64) error {
			if seq != uint64(len(replayed))+1 {
				t.Fatalf("replay produced non-contiguous seq %d at position %d", seq, len(replayed))
			}
			replayed = append(replayed, append([]uint64{}, keys...))
			return nil
		})
		if derived {
			if len(replayed) > len(written) {
				t.Fatalf("replayed %d records from mangled log, only %d written", len(replayed), len(written))
			}
			for i, keys := range replayed {
				if len(keys) != len(written[i]) {
					t.Fatalf("record %d: %d keys, wrote %d", i, len(keys), len(written[i]))
				}
				for j := range keys {
					if keys[j] != written[i][j] {
						t.Fatalf("record %d key %d: replayed %d, wrote %d", i, j, keys[j], written[i][j])
					}
				}
			}
		}
		// Recovery must leave the log appendable at a consistent position.
		if _, err := lr.Append([]uint64{1}); err != nil {
			t.Fatalf("append after mangled recovery: %v", err)
		}
	})
}
