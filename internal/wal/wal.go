// Package wal is the durability substrate under the serving layer: a
// checksummed, segmented write-ahead log of encoded row blocks, plus the
// checkpoint store (checkpoint.go) that bounds how much of the log a restart
// must replay.
//
// The log exists to make the wait-free build pipeline recoverable. Every
// ingest batch is appended — and fsynced per the configured policy — before
// the serving layer acknowledges it, so the acked row stream survives a
// crash at any point of the build → freeze → publish cycle; on restart the
// tail after the last checkpoint is replayed through the incremental
// builder, reproducing a table bit-identical to an uninterrupted build over
// the same rows (the chaos suite in internal/serve proves exactly this).
//
// Record format (one record per ingest batch, inside a segment file that
// begins with the magic "WFWAL1\n"):
//
//	[crc32c : 4 bytes LE]  Castagnoli CRC over header+payload
//	[seq    : uvarint]     record sequence number, contiguous from 1
//	[length : uvarint]     payload byte length
//	[payload]              uvarint count of keys, then one uvarint per key
//
// Keys are the mixed-radix row encodings produced by encoding.EncodeRows —
// the same integers the builder counts — so replay feeds the builder
// directly without re-encoding. Rows are validated against the codec before
// they are appended, which is what makes the compact key representation
// safe.
//
// Segments rotate at Options.SegmentBytes; a file is named wal-<firstseq>.seg
// so ordering and checkpoint-driven truncation need only the directory
// listing. Open tolerates a torn tail (a crash mid-append): the final
// segment is scanned and truncated back to its last whole, checksummed,
// sequence-contiguous record. A record that fails any of those checks is
// never surfaced to replay.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"waitfreebn/internal/faultinject"
	"waitfreebn/internal/obs"
)

// Metric names published by the log.
const (
	metricAppends     = "wal_appends_total"
	metricAppendBytes = "wal_append_bytes_total"
	metricFsyncs      = "wal_fsyncs_total"
	metricSegments    = "wal_segments"
	metricLastSeq     = "wal_last_seq"
	metricTornBytes   = "wal_torn_tail_bytes_total"
	metricReplayed    = "wal_replayed_records_total"
)

// segMagic opens every segment file and versions the record format.
var segMagic = []byte("WFWAL1\n")

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
	// maxPayload bounds a single record so a corrupt length varint cannot
	// drive an unbounded allocation during scan.
	maxPayload = 1 << 27
)

// SyncPolicy says when appends reach stable storage.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs at durability barriers only — before a
	// checkpoint manifest commits and at Sync/Close. A process crash loses
	// nothing (the OS holds the pages); an OS crash can lose the un-synced
	// suffix of acked rows.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append, before the record is
	// acknowledged: zero acked rows lost at any kill point, at the cost of
	// one fsync per ingest batch.
	SyncAlways
	// SyncNever never fsyncs (benchmarks only).
	SyncNever
)

// String returns the policy's flag spelling.
func (s SyncPolicy) String() string {
	switch s {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses the -fsync flag values always|batch|never.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	default:
		return SyncBatch, fmt.Errorf("wal: unknown fsync policy %q (want always|batch|never)", s)
	}
}

// crcTable is the Castagnoli polynomial table (CRC32C, hardware-accelerated
// on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes Open. Dir is required.
type Options struct {
	// Dir holds the segments (and, conventionally, the checkpoint files).
	// Created if absent.
	Dir string
	// SegmentBytes rotates to a fresh segment once the active one exceeds
	// this size. 0 = 64 MiB.
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// Obs receives the wal_* metrics (nil = disabled, zero overhead).
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Log is an append-only, crash-recoverable record log. Append/Sync/Close
// are safe for concurrent use (serialized internally); Replay may run on a
// freshly opened log before any appends.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes written to the active segment
	lastSeq  uint64   // sequence of the last durable-ordered record
	segStart uint64   // first sequence the active segment holds (lastSeq+1 at creation)
	segments []uint64 // first-seq of every on-disk segment, ascending (last = active)
	dirty    bool     // appended since the last fsync
	closed   bool

	// Fault-injection occurrence counters. The deterministic fault engine
	// fires as a pure function of (point, worker, seq); keying on the record
	// sequence would make every retry of a failed append re-draw the same
	// outcome, defeating the caller's retry-with-backoff. Counting calls
	// instead gives each attempt fresh coordinates, which models transient
	// I/O errors.
	faultAppends uint64
	faultFsyncs  uint64

	appends   *obs.Counter
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	replayed  *obs.Counter
	tornBytes *obs.Counter
	segG      *obs.Gauge
	lastSeqG  *obs.Gauge
}

// Open scans dir, truncates a torn tail off the newest segment, and returns
// a log positioned to append after the last valid record (LastSeq). An
// empty or absent dir starts a fresh log at sequence 1.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	reg := opts.Obs
	l := &Log{
		opts:      opts,
		appends:   reg.Counter(metricAppends),
		bytes:     reg.Counter(metricAppendBytes),
		fsyncs:    reg.Counter(metricFsyncs),
		replayed:  reg.Counter(metricReplayed),
		tornBytes: reg.Counter(metricTornBytes),
		segG:      reg.Gauge(metricSegments),
		lastSeqG:  reg.Gauge(metricLastSeq),
	}
	if reg != nil {
		reg.Help(metricAppends, "records appended to the write-ahead log")
		reg.Help(metricFsyncs, "fsync calls issued by the write-ahead log")
		reg.Help(metricSegments, "write-ahead log segments on disk")
		reg.Help(metricLastSeq, "sequence number of the last appended record")
		reg.Help(metricTornBytes, "bytes truncated off torn segment tails at open")
		reg.Help(metricReplayed, "records replayed from the log")
	}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	// Scan the newest segment to find the valid tail; everything after the
	// last whole, checksummed, contiguous record is a torn append. A newest
	// segment whose magic itself is torn (a crash inside segment creation,
	// e.g. mid-rotation) holds no records at all: remove it and fall back to
	// the previous segment, preserving its first-seq for numbering.
	var validEnd int64
	var last, lastSeq uint64
	freshStart := uint64(1)
	for len(segs) > 0 {
		last = segs[len(segs)-1]
		validEnd, lastSeq, err = scanSegment(l.segPath(last), last, 0, nil)
		if err == nil {
			break
		}
		if _, torn := err.(*tornError); !torn {
			return nil, err
		}
		if rerr := os.Remove(l.segPath(last)); rerr != nil {
			return nil, fmt.Errorf("wal: removing torn segment: %w", rerr)
		}
		freshStart = last
		segs = segs[:len(segs)-1]
	}
	if len(segs) == 0 {
		if err := l.newSegment(freshStart); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.segments = segs
	path := l.segPath(last)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validEnd {
		l.tornBytes.Add(uint64(fi.Size() - validEnd))
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size = validEnd
	l.segStart = last
	l.lastSeq = lastSeq
	l.segG.Set(float64(len(l.segments)))
	l.lastSeqG.Set(float64(l.lastSeq))
	return l, nil
}

// LastSeq returns the sequence number of the last appended (or recovered)
// record; 0 means the log is empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.opts.Dir }

// Append writes one record holding the encoded keys of an ingest batch and
// returns its sequence number. The record is on its way to the OS when
// Append returns; with SyncAlways it is also fsynced, so a nil return means
// the batch survives any crash. The wal-write and wal-fsync fault points
// fire here (before the write and before the fsync respectively); on any
// error the record is not considered appended.
func (l *Log) Append(keys []uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append to closed log")
	}
	seq := l.lastSeq + 1
	l.faultAppends++
	if err := faultinject.Active().MaybeErr(faultinject.WALWriteFail, 0, l.faultAppends); err != nil {
		return 0, err
	}
	rec := appendRecord(nil, seq, keys)
	if l.size+int64(len(rec)) > l.opts.SegmentBytes && l.size > int64(len(segMagic)) {
		if err := l.rotate(seq); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		// A partial write leaves a torn tail; the next Open truncates it, so
		// the in-memory position must not advance past the valid prefix.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(rec))
	l.dirty = true
	l.lastSeq = seq
	if l.opts.Sync == SyncAlways {
		if err := l.fsyncLocked(); err != nil {
			// The bytes hit the file but their durability is unknown
			// (fsyncgate): report failure so the batch is never acked. A
			// restart may legitimately find and replay it — replaying an
			// unacked batch is safe; losing an acked one is not.
			return 0, err
		}
	}
	l.appends.Inc()
	l.bytes.Add(uint64(len(rec)))
	l.lastSeqG.Set(float64(l.lastSeq))
	return seq, nil
}

// Sync flushes appended records to stable storage (a durability barrier for
// SyncBatch). No-op when nothing is pending or policy is SyncNever.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || !l.dirty || l.opts.Sync == SyncNever {
		return nil
	}
	return l.fsyncLocked()
}

func (l *Log) fsyncLocked() error {
	l.faultFsyncs++
	if err := faultinject.Active().MaybeErr(faultinject.WALFsyncFail, 0, l.faultFsyncs); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.fsyncs.Inc()
	return nil
}

// Close syncs (per policy) and closes the active segment. The log cannot be
// used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.dirty && l.opts.Sync != SyncNever {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Replay streams every valid record with sequence > after, in order,
// through fn. It stops cleanly (nil) at a torn tail of the newest segment;
// an invalid record anywhere earlier is real corruption and is reported —
// but never surfaced to fn. fn errors abort the replay.
func (l *Log) Replay(after uint64, fn func(seq uint64, keys []uint64) error) error {
	l.mu.Lock()
	segs := append([]uint64{}, l.segments...)
	l.mu.Unlock()
	for i, start := range segs {
		final := i == len(segs)-1
		// Skip whole segments the caller's checkpoint already covers.
		if !final && segs[i+1] > 0 && segs[i+1]-1 <= after {
			continue
		}
		_, _, err := scanSegment(l.segPath(start), start, after, func(seq uint64, keys []uint64) error {
			l.replayed.Inc()
			return fn(seq, keys)
		})
		if err != nil {
			if _, torn := err.(*tornError); torn && final {
				return nil
			}
			return err
		}
	}
	return nil
}

// TruncateThrough deletes segments every record of which has sequence <=
// seq — the space reclamation a checkpoint enables. The active segment is
// never deleted.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	for i, start := range l.segments {
		// Segment i covers [start, nextStart-1]; only a successor segment
		// bounds it, so the last segment always stays.
		if i+1 < len(l.segments) && l.segments[i+1]-1 <= seq {
			if err := os.Remove(l.segPath(start)); err != nil && !os.IsNotExist(err) {
				// Keep the entry; a later truncation retries.
				kept = append(kept, start)
				continue
			}
			continue
		}
		kept = append(kept, start)
	}
	l.segments = kept
	l.segG.Set(float64(len(l.segments)))
	return nil
}

func (l *Log) segPath(start uint64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix))
}

// newSegment creates and activates the segment whose first record will be
// firstSeq.
func (l *Log) newSegment(firstSeq uint64) error {
	f, err := os.OpenFile(l.segPath(firstSeq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment magic: %w", err)
	}
	l.f = f
	l.size = int64(len(segMagic))
	l.segStart = firstSeq
	l.lastSeq = firstSeq - 1
	l.segments = append(l.segments, firstSeq)
	l.dirty = true
	l.segG.Set(float64(len(l.segments)))
	return nil
}

// rotate seals the active segment and opens the next one starting at seq.
func (l *Log) rotate(seq uint64) error {
	if l.opts.Sync != SyncNever {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sealing segment: %w", err)
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	last := l.lastSeq
	if err := l.newSegment(seq); err != nil {
		return err
	}
	l.lastSeq = last
	return nil
}

// appendRecord encodes (seq, keys) as one framed record into dst.
func appendRecord(dst []byte, seq uint64, keys []uint64) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		payload = binary.AppendUvarint(payload, k)
	}
	hdr := binary.AppendUvarint(nil, seq)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	crc := crc32.Update(0, crcTable, hdr)
	crc = crc32.Update(crc, crcTable, payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = append(dst, hdr...)
	dst = append(dst, payload...)
	return dst
}

// tornError marks a scan that ended at an incomplete or corrupt record —
// tolerated at the newest segment's tail, fatal anywhere else.
type tornError struct {
	path   string
	offset int64
	reason string
}

func (e *tornError) Error() string {
	return fmt.Sprintf("wal: %s: invalid record at offset %d (%s)", e.path, e.offset, e.reason)
}

// scanSegment reads the segment starting at firstSeq, calling fn (if
// non-nil) for every valid record with seq > after, and returns the byte
// offset just past the last valid record plus the last valid sequence. A
// malformed or checksum-failing record stops the scan with a *tornError; no
// part of it is ever passed to fn.
func scanSegment(path string, firstSeq, after uint64, fn func(seq uint64, keys []uint64) error) (validEnd int64, lastSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return 0, 0, &tornError{path, 0, "bad segment magic"}
	}
	off := int64(len(segMagic))
	want := firstSeq
	lastSeq = firstSeq - 1
	for int64(len(data)) > off {
		rest := data[off:]
		if len(rest) < 4 {
			return validEndOr(off, lastSeq, path, "short crc", fn == nil)
		}
		crc := binary.LittleEndian.Uint32(rest[:4])
		body := rest[4:]
		seq, n1 := binary.Uvarint(body)
		if n1 <= 0 {
			return validEndOr(off, lastSeq, path, "bad seq varint", fn == nil)
		}
		plen, n2 := binary.Uvarint(body[n1:])
		if n2 <= 0 || plen > maxPayload {
			return validEndOr(off, lastSeq, path, "bad length varint", fn == nil)
		}
		hdrLen := n1 + n2
		if uint64(len(body)) < uint64(hdrLen)+plen {
			return validEndOr(off, lastSeq, path, "truncated payload", fn == nil)
		}
		record := body[:uint64(hdrLen)+plen]
		if crc32.Checksum(record, crcTable) != crc {
			return validEndOr(off, lastSeq, path, "crc mismatch", fn == nil)
		}
		if seq != want {
			return validEndOr(off, lastSeq, path, fmt.Sprintf("sequence %d, want %d", seq, want), fn == nil)
		}
		if fn != nil && seq > after {
			keys, derr := decodePayload(record[hdrLen:])
			if derr != nil {
				return validEndOr(off, lastSeq, path, derr.Error(), false)
			}
			if err := fn(seq, keys); err != nil {
				return off, lastSeq, err
			}
		} else if fn == nil {
			// Tail scan still validates payload structure so Open never
			// positions the append cursor after a semantically torn record.
			if _, derr := decodePayload(record[hdrLen:]); derr != nil {
				return validEndOr(off, lastSeq, path, derr.Error(), true)
			}
		}
		off += int64(4 + hdrLen) + int64(plen)
		lastSeq = seq
		want = seq + 1
	}
	return off, lastSeq, nil
}

// validEndOr packages a scan stop: when scanning for the append position
// (tailScan) a torn tail is expected and returned as data, otherwise it is
// an error the caller classifies (tolerated only on the newest segment).
func validEndOr(off int64, lastSeq uint64, path, reason string, tailScan bool) (int64, uint64, error) {
	if tailScan {
		return off, lastSeq, nil
	}
	return off, lastSeq, &tornError{path, off, reason}
}

// decodePayload parses a record payload into its keys.
func decodePayload(p []byte) ([]uint64, error) {
	n, used := binary.Uvarint(p)
	if used <= 0 || n > maxPayload {
		return nil, fmt.Errorf("bad key count")
	}
	keys := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		k, u := binary.Uvarint(p[used:])
		if u <= 0 {
			return nil, fmt.Errorf("bad key varint")
		}
		used += u
		keys = append(keys, k)
	}
	if used != len(p) {
		return nil, fmt.Errorf("trailing bytes in payload")
	}
	return keys, nil
}

// listSegments returns the first-sequence of every segment file in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var start uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &start); err != nil || start == 0 {
			continue
		}
		segs = append(segs, start)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}
