package bn

import "fmt"

// Intervene returns the mutilated network for the intervention do(v = s):
// all edges into v are severed and v's CPT becomes the point mass on s,
// while every other CPT is preserved. Querying the result answers causal
// questions — P(y | do(v=s)) generally differs from the observational
// P(y | v=s), which is the whole point of learning a directed structure
// rather than a dependence skeleton.
func (n *Network) Intervene(v int, s uint8) (*Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if v < 0 || v >= n.NumVars() {
		return nil, fmt.Errorf("bn: intervention variable %d outside [0,%d)", v, n.NumVars())
	}
	if int(s) >= n.Cardinality(v) {
		return nil, fmt.Errorf("bn: intervention state %d out of range for variable %d", s, v)
	}
	out := NewNetwork(fmt.Sprintf("%s|do(x%d=%d)", n.name, v, s), n.Cardinalities())
	for _, e := range n.dag.Edges() {
		if e[1] == v {
			continue // sever incoming edges
		}
		if err := out.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	for u := 0; u < n.NumVars(); u++ {
		if u == v {
			row := make([]float64, n.Cardinality(v))
			row[s] = 1
			if err := out.SetCPT(v, [][]float64{row}); err != nil {
				return nil, err
			}
			continue
		}
		// Parent sets of other variables are unchanged (only v's parents
		// were severed), so the CPTs copy over unchanged.
		rows := make([][]float64, len(n.cpts[u].rows))
		for r, row := range n.cpts[u].rows {
			rows[r] = append([]float64(nil), row...)
		}
		if err := out.SetCPT(u, rows); err != nil {
			return nil, err
		}
	}
	return out, nil
}
