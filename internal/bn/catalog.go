package bn

import (
	"fmt"
	"math"

	"waitfreebn/internal/rng"
)

// Asia returns the classic 8-node "Asia" (chest clinic) network of
// Lauritzen & Spiegelhalter (1988), a standard benchmark from the Bayesian
// network repository the paper cites. Variables (all binary, state 1 =
// "yes"):
//
//	0 visit-to-Asia  1 smoking  2 tuberculosis  3 lung-cancer
//	4 bronchitis     5 tb-or-cancer  6 x-ray  7 dyspnea
func Asia() *Network {
	n := NewNetwork("asia", []int{2, 2, 2, 2, 2, 2, 2, 2})
	n.MustAddEdge(0, 2) // asia → tub
	n.MustAddEdge(1, 3) // smoke → lung
	n.MustAddEdge(1, 4) // smoke → bronc
	n.MustAddEdge(2, 5) // tub → either
	n.MustAddEdge(3, 5) // lung → either
	n.MustAddEdge(5, 6) // either → xray
	n.MustAddEdge(5, 7) // either → dysp
	n.MustAddEdge(4, 7) // bronc → dysp

	n.MustSetCPT(0, [][]float64{{0.99, 0.01}})
	n.MustSetCPT(1, [][]float64{{0.5, 0.5}})
	n.MustSetCPT(2, [][]float64{ // P(tub | asia)
		{0.99, 0.01}, // asia = no
		{0.95, 0.05}, // asia = yes
	})
	n.MustSetCPT(3, [][]float64{ // P(lung | smoke)
		{0.99, 0.01},
		{0.90, 0.10},
	})
	n.MustSetCPT(4, [][]float64{ // P(bronc | smoke)
		{0.70, 0.30},
		{0.40, 0.60},
	})
	n.MustSetCPT(5, [][]float64{ // P(either | tub, lung): logical OR
		{1, 0}, // tub=0, lung=0
		{0, 1}, // tub=0, lung=1
		{0, 1}, // tub=1, lung=0
		{0, 1}, // tub=1, lung=1
	})
	n.MustSetCPT(6, [][]float64{ // P(xray | either)
		{0.95, 0.05},
		{0.02, 0.98},
	})
	n.MustSetCPT(7, [][]float64{ // P(dysp | either, bronc)
		{0.90, 0.10}, // either=0, bronc=0
		{0.20, 0.80}, // either=0, bronc=1
		{0.30, 0.70}, // either=1, bronc=0
		{0.10, 0.90}, // either=1, bronc=1
	})
	return n
}

// Cancer returns the 5-node "Cancer" network (Korb & Nicholson):
//
//	0 pollution  1 smoker  2 cancer  3 x-ray  4 dyspnea
func Cancer() *Network {
	n := NewNetwork("cancer", []int{2, 2, 2, 2, 2})
	n.MustAddEdge(0, 2)
	n.MustAddEdge(1, 2)
	n.MustAddEdge(2, 3)
	n.MustAddEdge(2, 4)
	n.MustSetCPT(0, [][]float64{{0.9, 0.1}})
	n.MustSetCPT(1, [][]float64{{0.7, 0.3}})
	n.MustSetCPT(2, [][]float64{ // P(cancer | pollution, smoker)
		{0.999, 0.001},
		{0.97, 0.03},
		{0.98, 0.02},
		{0.95, 0.05},
	})
	n.MustSetCPT(3, [][]float64{
		{0.8, 0.2},
		{0.1, 0.9},
	})
	n.MustSetCPT(4, [][]float64{
		{0.7, 0.3},
		{0.35, 0.65},
	})
	return n
}

// Chain returns an n-variable chain 0→1→…→n-1 of r-state variables where
// each child copies its parent with probability keep and otherwise draws
// uniformly from the remaining states. Chains have known independence
// structure (X_i ⊥ X_k | X_j for i<j<k), which exercises thinning.
func Chain(n, r int, keep float64) *Network {
	if n < 1 || r < 2 || keep < 0 || keep > 1 {
		panic(fmt.Sprintf("bn: invalid chain spec n=%d r=%d keep=%v", n, r, keep))
	}
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	net := NewNetwork(fmt.Sprintf("chain-%d-%d", n, r), card)
	uniform := make([]float64, r)
	for s := range uniform {
		uniform[s] = 1.0 / float64(r)
	}
	net.MustSetCPT(0, [][]float64{uniform})
	other := (1 - keep) / float64(r-1)
	for v := 1; v < n; v++ {
		net.MustAddEdge(v-1, v)
		rows := make([][]float64, r)
		for ps := 0; ps < r; ps++ {
			row := make([]float64, r)
			for s := range row {
				if s == ps {
					row[s] = keep
				} else {
					row[s] = other
				}
			}
			rows[ps] = row
		}
		net.MustSetCPT(v, rows)
	}
	return net
}

// NaiveBayes returns a star network: class variable 0 with n-1 leaf
// children, each reflecting the class with probability keep.
func NaiveBayes(n, r int, keep float64) *Network {
	if n < 2 || r < 2 || keep < 0 || keep > 1 {
		panic(fmt.Sprintf("bn: invalid naive-bayes spec n=%d r=%d keep=%v", n, r, keep))
	}
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	net := NewNetwork(fmt.Sprintf("naive-bayes-%d-%d", n, r), card)
	uniform := make([]float64, r)
	for s := range uniform {
		uniform[s] = 1.0 / float64(r)
	}
	net.MustSetCPT(0, [][]float64{uniform})
	other := (1 - keep) / float64(r-1)
	rows := make([][]float64, r)
	for ps := 0; ps < r; ps++ {
		row := make([]float64, r)
		for s := range row {
			if s == ps {
				row[s] = keep
			} else {
				row[s] = other
			}
		}
		rows[ps] = row
	}
	for v := 1; v < n; v++ {
		net.MustAddEdge(0, v)
		net.MustSetCPT(v, rows)
	}
	return net
}

// RandomDAG returns a random network on n r-state variables: each ordered
// pair (i, j) with i < j becomes an edge with probability density, capped
// at maxParents parents per node, with CPT rows drawn from a symmetric
// Dirichlet(alpha) via the RNG. Deterministic in seed.
func RandomDAG(n, r int, density float64, maxParents int, alpha float64, seed uint64) *Network {
	if n < 1 || r < 2 || density < 0 || density > 1 || maxParents < 0 || alpha <= 0 {
		panic(fmt.Sprintf("bn: invalid random spec n=%d r=%d density=%v maxParents=%d alpha=%v", n, r, density, maxParents, alpha))
	}
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	net := NewNetwork(fmt.Sprintf("random-%d-%d-%d", n, r, seed), card)
	src := rng.NewXoshiro256SS(seed)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if len(net.dag.Parents(j)) >= maxParents {
				break
			}
			if src.Float64() < density {
				net.MustAddEdge(i, j)
			}
		}
	}
	for v := 0; v < n; v++ {
		rows := make([][]float64, net.NumParentRows(v))
		for ri := range rows {
			rows[ri] = dirichlet(src, r, alpha)
		}
		net.MustSetCPT(v, rows)
	}
	return net
}

// dirichlet draws one symmetric Dirichlet(alpha) sample of dimension k
// using gamma variates (Marsaglia–Tsang for alpha >= 1, boost for < 1).
func dirichlet(src *rng.Xoshiro256SS, k int, alpha float64) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(src, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1.0 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func gammaSample(src *rng.Xoshiro256SS, alpha float64) float64 {
	if alpha < 1 {
		// Boosting: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := src.Float64()
		for u == 0 {
			u = src.Float64()
		}
		return gammaSample(src, alpha+1) * math.Pow(u, 1/alpha)
	}
	// Marsaglia–Tsang squeeze method.
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := normal(src)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := src.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// normal returns a standard normal variate via Box–Muller.
func normal(src *rng.Xoshiro256SS) float64 {
	u1 := src.Float64()
	for u1 == 0 {
		u1 = src.Float64()
	}
	u2 := src.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Sprinkler returns the classic 4-node wet-grass network (Russell &
// Norvig):
//
//	0 cloudy  1 sprinkler  2 rain  3 wet-grass
func Sprinkler() *Network {
	n := NewNetwork("sprinkler", []int{2, 2, 2, 2})
	n.MustAddEdge(0, 1) // cloudy → sprinkler
	n.MustAddEdge(0, 2) // cloudy → rain
	n.MustAddEdge(1, 3) // sprinkler → wet
	n.MustAddEdge(2, 3) // rain → wet
	n.MustSetCPT(0, [][]float64{{0.5, 0.5}})
	n.MustSetCPT(1, [][]float64{ // P(sprinkler | cloudy)
		{0.5, 0.5},
		{0.9, 0.1},
	})
	n.MustSetCPT(2, [][]float64{ // P(rain | cloudy)
		{0.8, 0.2},
		{0.2, 0.8},
	})
	n.MustSetCPT(3, [][]float64{ // P(wet | sprinkler, rain)
		{1.00, 0.00},
		{0.10, 0.90},
		{0.10, 0.90},
		{0.01, 0.99},
	})
	return n
}

// Grid returns a rows×cols lattice network: node (i,j) (numbered
// row-major) has parents (i-1,j) and (i,j-1) where they exist, with a
// noisy-copy CPT that follows each parent with weight keep. Grids have
// higher treewidth than trees or chains, which exercises the
// conditioning-set machinery and junction-tree construction.
func Grid(rows, cols, r int, keep float64) *Network {
	if rows < 1 || cols < 1 || r < 2 || keep < 0 || keep > 1 {
		panic(fmt.Sprintf("bn: invalid grid spec %dx%d r=%d keep=%v", rows, cols, r, keep))
	}
	n := rows * cols
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	net := NewNetwork(fmt.Sprintf("grid-%dx%d-%d", rows, cols, r), card)
	id := func(i, j int) int { return i*cols + j }
	uniform := make([]float64, r)
	for s := range uniform {
		uniform[s] = 1.0 / float64(r)
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := id(i, j)
			var parents []int
			if i > 0 {
				net.MustAddEdge(id(i-1, j), v)
				parents = append(parents, id(i-1, j))
			}
			if j > 0 {
				net.MustAddEdge(id(i, j-1), v)
				parents = append(parents, id(i, j-1))
			}
			rowsN := net.NumParentRows(v)
			cpt := make([][]float64, rowsN)
			if len(parents) == 0 {
				cpt[0] = append([]float64(nil), uniform...)
			} else {
				// Mixture: follow a uniformly chosen parent with weight
				// keep, else uniform noise; row index decodes parent
				// states mixed-radix (first parent slowest).
				for pr := 0; pr < rowsN; pr++ {
					row := make([]float64, r)
					states := make([]int, len(parents))
					rem := pr
					for k := len(parents) - 1; k >= 0; k-- {
						states[k] = rem % r
						rem /= r
					}
					for s := 0; s < r; s++ {
						row[s] = (1 - keep) / float64(r)
					}
					for _, ps := range states {
						row[ps] += keep / float64(len(parents))
					}
					cpt[pr] = row
				}
			}
			net.MustSetCPT(v, cpt)
		}
	}
	return net
}
