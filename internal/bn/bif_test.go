package bn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestBIFRoundTrip(t *testing.T) {
	for _, net := range []*Network{Asia(), Cancer(), Sprinkler(), Chain(5, 3, 0.8), RandomDAG(6, 2, 0.3, 2, 1, 3)} {
		var buf bytes.Buffer
		if err := net.WriteBIF(&buf, nil, nil); err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		back, names, states, err := ReadBIF(&buf)
		if err != nil {
			t.Fatalf("%s: %v\n%s", net.Name(), err, buf.String())
		}
		if back.NumVars() != net.NumVars() {
			t.Fatalf("%s: variable count changed", net.Name())
		}
		if len(names) != net.NumVars() || len(states) != net.NumVars() {
			t.Fatalf("%s: name tables wrong size", net.Name())
		}
		// Structure preserved.
		a, b := net.DAG().Edges(), back.DAG().Edges()
		if len(a) != len(b) {
			t.Fatalf("%s: edges %v vs %v", net.Name(), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edges differ: %v vs %v", net.Name(), a, b)
			}
		}
		// Distribution preserved on sampled configurations.
		d, err := net.Sample(300, 9, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d.NumSamples(); i++ {
			row := d.Row(i)
			if math.Abs(net.JointProb(row)-back.JointProb(row)) > 1e-12 {
				t.Fatalf("%s: joint differs after BIF round trip", net.Name())
			}
		}
	}
}

func TestBIFRoundTripWithNames(t *testing.T) {
	net := Sprinkler()
	varNames := []string{"cloudy", "sprinkler", "rain", "wet_grass"}
	stateNames := [][]string{{"no", "yes"}, {"off", "on"}, {"dry", "wet"}, {"dry", "wet"}}
	var buf bytes.Buffer
	if err := net.WriteBIF(&buf, varNames, stateNames); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"variable cloudy", "probability ( wet_grass | sprinkler, rain )", "(off, dry)"} {
		if !strings.Contains(out, want) {
			t.Errorf("BIF output missing %q:\n%s", want, out)
		}
	}
	back, names, states, err := ReadBIF(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if names[3] != "wet_grass" || states[1][1] != "on" {
		t.Errorf("names not preserved: %v / %v", names, states)
	}
	if math.Abs(back.JointProb([]uint8{1, 0, 1, 1})-net.JointProb([]uint8{1, 0, 1, 1})) > 1e-12 {
		t.Error("distribution changed")
	}
}

func TestReadBIFHandwritten(t *testing.T) {
	// A hand-written document exercising comments, odd whitespace, parent
	// order different from id order, and the repository style.
	in := `
// classic sprinkler
network wetgrass { }
variable rain { type discrete [ 2 ] { no, yes }; }
variable sprinkler {
  type discrete [ 2 ] { off, on };
}
/* grass */
variable grass { type discrete [ 2 ] { dry, wet }; }
probability ( rain ) { table 0.8, 0.2; }
probability ( sprinkler | rain ) {
  (no) 0.6, 0.4;
  (yes) 0.99, 0.01;
}
probability ( grass | sprinkler, rain ) {
  (off, no) 1.0, 0.0;
  (off, yes) 0.2, 0.8;
  (on, no) 0.1, 0.9;
  (on, yes) 0.01, 0.99;
}
`
	net, names, states, err := ReadBIF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if net.Name() != "wetgrass" || net.NumVars() != 3 {
		t.Fatalf("parsed %q with %d vars", net.Name(), net.NumVars())
	}
	if names[0] != "rain" || states[2][1] != "wet" {
		t.Fatalf("names: %v %v", names, states)
	}
	// rain=yes(1), sprinkler=off(0) ⇒ P(grass=wet) = 0.8.
	sample := []uint8{1, 0, 1}
	want := 0.2 * 0.99 * 0.8
	if got := net.JointProb(sample); math.Abs(got-want) > 1e-12 {
		t.Errorf("joint = %v, want %v", got, want)
	}
	// Parent listed in block order (sprinkler, rain) but our parents are
	// sorted (rain=0, sprinkler=1): the mapping must have been applied.
	ps := net.DAG().Parents(2)
	if len(ps) != 2 || ps[0] != 0 || ps[1] != 1 {
		t.Fatalf("grass parents %v", ps)
	}
}

func TestReadBIFErrors(t *testing.T) {
	cases := map[string]string{
		"no variables":   `network x { }`,
		"dup variable":   `variable a { type discrete [ 2 ] { x, y }; } variable a { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; }`,
		"state count":    `variable a { type discrete [ 3 ] { x, y }; } probability ( a ) { table 1; }`,
		"missing cpt":    `variable a { type discrete [ 2 ] { x, y }; }`,
		"wrong arity":    `variable a { type discrete [ 2 ] { x, y }; } probability ( a ) { table 0.5, 0.25, 0.25; }`,
		"unknown parent": `variable a { type discrete [ 2 ] { x, y }; } probability ( a | b ) { (x) .5,.5; }`,
		"unknown state":  `variable a { type discrete [ 2 ] { x, y }; } variable b { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; } probability ( b | a ) { (z) .5,.5; (y) .5,.5; }`,
		"missing row":    `variable a { type discrete [ 2 ] { x, y }; } variable b { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; } probability ( b | a ) { (x) .5,.5; }`,
		"dup row":        `variable a { type discrete [ 2 ] { x, y }; } variable b { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; } probability ( b | a ) { (x) .5,.5; (x) .5,.5; }`,
		"bad number":     `variable a { type discrete [ 2 ] { x, y }; } probability ( a ) { table q, .5; }`,
		"not a dist":     `variable a { type discrete [ 2 ] { x, y }; } probability ( a ) { table .9,.9; }`,
		"dup cpt":        `variable a { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; } probability ( a ) { table .5,.5; }`,
		"cycle":          `variable a { type discrete [ 2 ] { x, y }; } variable b { type discrete [ 2 ] { x, y }; } probability ( a | b ) { (x) .5,.5; (y) .5,.5; } probability ( b | a ) { (x) .5,.5; (y) .5,.5; }`,
		"self parent":    `variable a { type discrete [ 2 ] { x, y }; } probability ( a | a ) { (x) .5,.5; (y) .5,.5; }`,
		"dup parent":     `variable a { type discrete [ 2 ] { x, y }; } variable b { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; } probability ( b | a, a ) { (x, x) .5,.5; (y, y) .5,.5; }`,
		"garbage":        `hello world`,
		"unterminated":   `variable a { type discrete [ 2 ] { x, y };`,
	}
	for name, in := range cases {
		if _, _, _, err := ReadBIF(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteBIFRequiresValidNetwork(t *testing.T) {
	n := NewNetwork("x", []int{2})
	var buf bytes.Buffer
	if err := n.WriteBIF(&buf, nil, nil); err == nil {
		t.Fatal("WriteBIF accepted unparameterized network")
	}
}
