package bn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// JSON model serialization, so learned and fitted networks can be saved,
// versioned, and loaded by other tools. The schema is deliberately plain:
//
//	{
//	  "name": "asia",
//	  "cardinalities": [2, 2, ...],
//	  "edges": [[0, 2], [1, 3], ...],
//	  "cpts": [ [[0.99, 0.01]], ... ]   // cpts[v][parentRow][state]
//	}
//
// Parent rows use the same mixed-radix order as ParentRowIndex (sorted
// parents, first parent varying slowest).

type networkJSON struct {
	Name          string        `json:"name"`
	Cardinalities []int         `json:"cardinalities"`
	Edges         [][2]int      `json:"edges"`
	CPTs          [][][]float64 `json:"cpts"`
}

// WriteJSON serializes the network. The network must be fully
// parameterized (Validate passes).
func (n *Network) WriteJSON(w io.Writer) error {
	if err := n.Validate(); err != nil {
		return err
	}
	out := networkJSON{
		Name:          n.name,
		Cardinalities: n.Cardinalities(),
		Edges:         n.dag.Edges(),
		CPTs:          make([][][]float64, n.NumVars()),
	}
	for v := 0; v < n.NumVars(); v++ {
		rows := make([][]float64, len(n.cpts[v].rows))
		for r, row := range n.cpts[v].rows {
			rows[r] = append([]float64(nil), row...)
		}
		out.CPTs[v] = rows
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a network written by WriteJSON, validating
// structure and probability tables.
func ReadJSON(r io.Reader) (*Network, error) {
	var in networkJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("bn: decoding model: %w", err)
	}
	if len(in.Cardinalities) == 0 {
		return nil, fmt.Errorf("bn: model has no variables")
	}
	for j, c := range in.Cardinalities {
		if c < 1 || c > 256 {
			return nil, fmt.Errorf("bn: variable %d cardinality %d outside [1,256]", j, c)
		}
	}
	net := NewNetwork(in.Name, in.Cardinalities)
	for _, e := range in.Edges {
		if e[0] < 0 || e[0] >= net.NumVars() || e[1] < 0 || e[1] >= net.NumVars() || e[0] == e[1] {
			return nil, fmt.Errorf("bn: invalid edge %v", e)
		}
		if err := net.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("bn: %w", err)
		}
	}
	if len(in.CPTs) != net.NumVars() {
		return nil, fmt.Errorf("bn: model has %d CPTs for %d variables", len(in.CPTs), net.NumVars())
	}
	for v, rows := range in.CPTs {
		for _, row := range rows {
			for _, p := range row {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					return nil, fmt.Errorf("bn: variable %d CPT contains non-finite probability", v)
				}
			}
		}
		if err := net.SetCPT(v, rows); err != nil {
			return nil, err
		}
	}
	return net, nil
}
