package bn

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// BIF (Bayesian Interchange Format) support, the format the Bayesian
// network repository the paper cites ([1]) distributes its networks in.
// WriteBIF/ReadBIF round trip through the subset of the format that
// repository uses:
//
//	network <name> { }
//	variable <name> { type discrete [ <k> ] { s0, s1, ... }; }
//	probability ( <child> ) { table p0, p1, ...; }
//	probability ( <child> | <p1>, <p2> ) { (s_a, s_b) p0, p1, ...; ... }
//
// Variables keep their declaration order as ids. State names are preserved
// on write as "s<i>" unless the network was itself read from BIF, in which
// case original names survive in the round trip via the name tables
// returned by ReadBIF.

// WriteBIF serializes the network in BIF. varNames and stateNames may be
// nil (defaults "x<i>" and "s<i>"); when given, they must cover every
// variable/state.
func (n *Network) WriteBIF(w io.Writer, varNames []string, stateNames [][]string) error {
	if err := n.Validate(); err != nil {
		return err
	}
	vname := func(v int) string {
		if v < len(varNames) && varNames[v] != "" {
			return varNames[v]
		}
		return fmt.Sprintf("x%d", v)
	}
	sname := func(v, s int) string {
		if v < len(stateNames) && s < len(stateNames[v]) && stateNames[v][s] != "" {
			return stateNames[v][s]
		}
		return fmt.Sprintf("s%d", s)
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "network %s {\n}\n", bifIdent(n.name))
	for v := 0; v < n.NumVars(); v++ {
		fmt.Fprintf(bw, "variable %s {\n  type discrete [ %d ] { ", vname(v), n.Cardinality(v))
		for s := 0; s < n.Cardinality(v); s++ {
			if s > 0 {
				bw.WriteString(", ")
			}
			bw.WriteString(sname(v, s))
		}
		bw.WriteString(" };\n}\n")
	}
	for v := 0; v < n.NumVars(); v++ {
		parents := n.dag.Parents(v)
		if len(parents) == 0 {
			fmt.Fprintf(bw, "probability ( %s ) {\n  table ", vname(v))
			for s, p := range n.cpts[v].rows[0] {
				if s > 0 {
					bw.WriteString(", ")
				}
				bw.WriteString(formatProb(p))
			}
			bw.WriteString(";\n}\n")
			continue
		}
		fmt.Fprintf(bw, "probability ( %s | ", vname(v))
		for i, p := range parents {
			if i > 0 {
				bw.WriteString(", ")
			}
			bw.WriteString(vname(p))
		}
		bw.WriteString(" ) {\n")
		// Enumerate parent configurations in our row order (first parent
		// varies slowest), writing state tuples explicitly.
		states := make([]int, len(parents))
		for row := range n.cpts[v].rows {
			rem := row
			for k := len(parents) - 1; k >= 0; k-- {
				states[k] = rem % n.Cardinality(parents[k])
				rem /= n.Cardinality(parents[k])
			}
			bw.WriteString("  (")
			for k, ps := range states {
				if k > 0 {
					bw.WriteString(", ")
				}
				bw.WriteString(sname(parents[k], ps))
			}
			bw.WriteString(") ")
			for s, p := range n.cpts[v].rows[row] {
				if s > 0 {
					bw.WriteString(", ")
				}
				bw.WriteString(formatProb(p))
			}
			bw.WriteString(";\n")
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

func formatProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

func bifIdent(s string) string {
	if s == "" {
		return "unknown"
	}
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ReadBIF parses a BIF document, returning the network plus the variable
// and state name tables (ids follow declaration order).
func ReadBIF(r io.Reader) (*Network, []string, [][]string, error) {
	toks, err := bifTokenize(r)
	if err != nil {
		return nil, nil, nil, err
	}
	p := &bifParser{toks: toks}
	return p.parse()
}

// --- tokenizer ---

func bifTokenize(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch {
		case c == '/':
			// Line (//) and block (/* */) comments.
			next, _, err := br.ReadRune()
			if err != nil {
				return nil, fmt.Errorf("bn: bif: dangling '/'")
			}
			switch next {
			case '/':
				for {
					c, _, err = br.ReadRune()
					if err != nil || c == '\n' {
						break
					}
				}
			case '*':
				prev := rune(0)
				for {
					c, _, err = br.ReadRune()
					if err != nil {
						return nil, fmt.Errorf("bn: bif: unterminated comment")
					}
					if prev == '*' && c == '/' {
						break
					}
					prev = c
				}
			default:
				return nil, fmt.Errorf("bn: bif: unexpected '/%c'", next)
			}
			flush()
		case unicode.IsSpace(c):
			flush()
		case strings.ContainsRune("{}()[]|,;", c):
			flush()
			toks = append(toks, string(c))
		default:
			cur.WriteRune(c)
		}
	}
	flush()
	return toks, nil
}

// --- parser ---

type bifParser struct {
	toks []string
	pos  int
}

func (p *bifParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *bifParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *bifParser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("bn: bif: expected %q, got %q (token %d)", want, got, p.pos)
	}
	return nil
}

// skipBlock consumes a balanced { ... } block.
func (p *bifParser) skipBlock() error {
	if err := p.expect("{"); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		switch t := p.next(); t {
		case "{":
			depth++
		case "}":
			depth--
		case "":
			return fmt.Errorf("bn: bif: unterminated block")
		}
	}
	return nil
}

type bifVariable struct {
	name   string
	states []string
}

// cptDecl is one parsed probability block: either the flat "table" row
// (no parents) or explicit (stateTuple, probabilities) rows.
type cptDecl struct {
	child   string
	parents []string
	table   []float64
	tuples  [][]string
	probs   [][]float64
}

func (p *bifParser) parse() (*Network, []string, [][]string, error) {
	netName := "bif"
	var vars []bifVariable
	varIdx := map[string]int{}
	var cpts []cptDecl

	for p.pos < len(p.toks) {
		switch t := p.next(); t {
		case "network":
			netName = p.next()
			if err := p.skipBlock(); err != nil {
				return nil, nil, nil, err
			}
		case "variable":
			name := p.next()
			if name == "" || name == "{" {
				return nil, nil, nil, fmt.Errorf("bn: bif: variable without a name")
			}
			if _, dup := varIdx[name]; dup {
				return nil, nil, nil, fmt.Errorf("bn: bif: duplicate variable %q", name)
			}
			v, err := p.parseVariableBlock(name)
			if err != nil {
				return nil, nil, nil, err
			}
			varIdx[name] = len(vars)
			vars = append(vars, v)
		case "probability":
			d := cptDecl{}
			if err := p.expect("("); err != nil {
				return nil, nil, nil, err
			}
			d.child = p.next()
			if p.peek() == "|" {
				p.next()
				for p.peek() != ")" && p.peek() != "" {
					tok := p.next()
					if tok == "," {
						continue
					}
					d.parents = append(d.parents, tok)
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, nil, nil, err
			}
			if err := p.parseProbabilityBlock(&d); err != nil {
				return nil, nil, nil, err
			}
			cpts = append(cpts, d)
		case "property":
			// Skip to the terminating semicolon.
			for p.peek() != ";" && p.peek() != "" {
				p.next()
			}
			p.next()
		default:
			return nil, nil, nil, fmt.Errorf("bn: bif: unexpected token %q", t)
		}
	}

	if len(vars) == 0 {
		return nil, nil, nil, fmt.Errorf("bn: bif: no variables declared")
	}
	card := make([]int, len(vars))
	varNames := make([]string, len(vars))
	stateNames := make([][]string, len(vars))
	stateIdx := make([]map[string]int, len(vars))
	for i, v := range vars {
		card[i] = len(v.states)
		varNames[i] = v.name
		stateNames[i] = v.states
		stateIdx[i] = map[string]int{}
		for s, sn := range v.states {
			if _, dup := stateIdx[i][sn]; dup {
				return nil, nil, nil, fmt.Errorf("bn: bif: variable %q has duplicate state %q", v.name, sn)
			}
			stateIdx[i][sn] = s
		}
	}
	net := NewNetwork(netName, card)

	// Edges first (CPT shapes depend on them).
	for _, d := range cpts {
		child, ok := varIdx[d.child]
		if !ok {
			return nil, nil, nil, fmt.Errorf("bn: bif: probability for undeclared variable %q", d.child)
		}
		seenParent := map[int]bool{}
		for _, pn := range d.parents {
			parent, ok := varIdx[pn]
			if !ok {
				return nil, nil, nil, fmt.Errorf("bn: bif: undeclared parent %q of %q", pn, d.child)
			}
			if parent == child {
				return nil, nil, nil, fmt.Errorf("bn: bif: %q lists itself as a parent", d.child)
			}
			if seenParent[parent] {
				return nil, nil, nil, fmt.Errorf("bn: bif: %q lists parent %q twice", d.child, pn)
			}
			seenParent[parent] = true
			if err := net.AddEdge(parent, child); err != nil {
				return nil, nil, nil, fmt.Errorf("bn: bif: %w", err)
			}
		}
	}
	// Then tables.
	seen := make([]bool, len(vars))
	for _, d := range cpts {
		child := varIdx[d.child]
		if seen[child] {
			return nil, nil, nil, fmt.Errorf("bn: bif: duplicate probability block for %q", d.child)
		}
		seen[child] = true
		rowsN := net.NumParentRows(child)
		rows := make([][]float64, rowsN)
		if len(d.parents) == 0 {
			if len(d.table) != card[child] {
				return nil, nil, nil, fmt.Errorf("bn: bif: %q table has %d entries, want %d", d.child, len(d.table), card[child])
			}
			rows[0] = d.table
		} else {
			// Our rows are indexed by SORTED parent ids; the BIF block
			// lists parents in its own order. Map each tuple.
			parentIDs := make([]int, len(d.parents))
			for i, pn := range d.parents {
				parentIDs[i] = varIdx[pn]
			}
			sorted := append([]int(nil), parentIDs...)
			sort.Ints(sorted)
			for ri, tuple := range d.tuples {
				if len(tuple) != len(d.parents) {
					return nil, nil, nil, fmt.Errorf("bn: bif: %q row %d has %d states, want %d", d.child, ri, len(tuple), len(d.parents))
				}
				// State of each parent id in this row.
				byID := map[int]int{}
				for k, sn := range tuple {
					s, ok := stateIdx[parentIDs[k]][sn]
					if !ok {
						return nil, nil, nil, fmt.Errorf("bn: bif: unknown state %q of %q", sn, d.parents[k])
					}
					byID[parentIDs[k]] = s
				}
				idx := 0
				for _, pid := range sorted {
					idx = idx*card[pid] + byID[pid]
				}
				if idx < 0 || idx >= rowsN {
					return nil, nil, nil, fmt.Errorf("bn: bif: row index %d out of range for %q", idx, d.child)
				}
				if rows[idx] != nil {
					return nil, nil, nil, fmt.Errorf("bn: bif: duplicate row %v for %q", tuple, d.child)
				}
				if len(d.probs[ri]) != card[child] {
					return nil, nil, nil, fmt.Errorf("bn: bif: %q row %v has %d probabilities, want %d", d.child, tuple, len(d.probs[ri]), card[child])
				}
				rows[idx] = d.probs[ri]
			}
			for ri, row := range rows {
				if row == nil {
					return nil, nil, nil, fmt.Errorf("bn: bif: %q is missing parent configuration %d", d.child, ri)
				}
			}
		}
		if err := net.SetCPT(child, rows); err != nil {
			return nil, nil, nil, err
		}
	}
	for v, s := range seen {
		if !s {
			return nil, nil, nil, fmt.Errorf("bn: bif: variable %q has no probability block", vars[v].name)
		}
	}
	return net, varNames, stateNames, nil
}

func (p *bifParser) parseVariableBlock(name string) (bifVariable, error) {
	v := bifVariable{name: name}
	if err := p.expect("{"); err != nil {
		return v, err
	}
	for {
		switch t := p.next(); t {
		case "}":
			if len(v.states) == 0 {
				return v, fmt.Errorf("bn: bif: variable %q has no states", name)
			}
			return v, nil
		case "type":
			if err := p.expect("discrete"); err != nil {
				return v, err
			}
			if err := p.expect("["); err != nil {
				return v, err
			}
			countTok := p.next()
			count, err := strconv.Atoi(countTok)
			if err != nil {
				return v, fmt.Errorf("bn: bif: bad state count %q: %v", countTok, err)
			}
			if err := p.expect("]"); err != nil {
				return v, err
			}
			if err := p.expect("{"); err != nil {
				return v, err
			}
			for p.peek() != "}" && p.peek() != "" {
				tok := p.next()
				if tok == "," {
					continue
				}
				v.states = append(v.states, tok)
			}
			if err := p.expect("}"); err != nil {
				return v, err
			}
			if err := p.expect(";"); err != nil {
				return v, err
			}
			if len(v.states) != count {
				return v, fmt.Errorf("bn: bif: variable %q declares %d states but lists %d", name, count, len(v.states))
			}
		case "property":
			for p.peek() != ";" && p.peek() != "" {
				p.next()
			}
			p.next()
		case "":
			return v, fmt.Errorf("bn: bif: unterminated variable block for %q", name)
		default:
			return v, fmt.Errorf("bn: bif: unexpected token %q in variable %q", t, name)
		}
	}
}

func (p *bifParser) parseProbabilityBlock(d *cptDecl) error {
	if err := p.expect("{"); err != nil {
		return err
	}
	for {
		switch t := p.next(); t {
		case "}":
			if len(d.parents) == 0 && d.table == nil {
				return fmt.Errorf("bn: bif: %q has no table", d.child)
			}
			if len(d.parents) > 0 && len(d.tuples) == 0 {
				return fmt.Errorf("bn: bif: %q has no rows", d.child)
			}
			return nil
		case "table":
			probs, err := p.parseNumberList()
			if err != nil {
				return err
			}
			d.table = probs
		case "(":
			var tuple []string
			for p.peek() != ")" && p.peek() != "" {
				tok := p.next()
				if tok == "," {
					continue
				}
				tuple = append(tuple, tok)
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			probs, err := p.parseNumberList()
			if err != nil {
				return err
			}
			d.tuples = append(d.tuples, tuple)
			d.probs = append(d.probs, probs)
		case "property":
			for p.peek() != ";" && p.peek() != "" {
				p.next()
			}
			p.next()
		case "":
			return fmt.Errorf("bn: bif: unterminated probability block for %q", d.child)
		default:
			return fmt.Errorf("bn: bif: unexpected token %q in probability block for %q", t, d.child)
		}
	}
}

// parseNumberList consumes comma-separated floats up to a semicolon.
func (p *bifParser) parseNumberList() ([]float64, error) {
	var out []float64
	for {
		switch tok := p.next(); tok {
		case ";":
			if len(out) == 0 {
				return nil, fmt.Errorf("bn: bif: empty number list")
			}
			return out, nil
		case ",":
			continue
		case "":
			return nil, fmt.Errorf("bn: bif: unterminated number list")
		default:
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bn: bif: bad probability %q: %v", tok, err)
			}
			out = append(out, f)
		}
	}
}
