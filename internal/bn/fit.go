package bn

import (
	"fmt"
	"math"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/sched"
)

// FitCPTs estimates the conditional probability tables of a fixed DAG from
// data by maximum likelihood with Laplace (add-alpha) smoothing:
//
//	P(v=s | pa) = (count(v=s, pa) + alpha) / (count(pa) + alpha·r_v)
//
// alpha = 0 is plain maximum likelihood (rows never observed fall back to
// uniform). Counting runs on p workers with private accumulators — the
// same contention-free pattern as the marginalization primitive.
//
// Together with the structure learner this completes the pipeline:
// skeleton → orientation → DAG → parameters.
func FitCPTs(name string, dag *graph.DAG, data *dataset.Dataset, alpha float64, p int) (*Network, error) {
	if dag.N() != data.NumVars() {
		return nil, fmt.Errorf("bn: DAG has %d vertices, data has %d variables", dag.N(), data.NumVars())
	}
	if alpha < 0 {
		return nil, fmt.Errorf("bn: negative smoothing %v", alpha)
	}
	if p <= 0 {
		p = sched.DefaultP()
	}
	net := NewNetwork(name, data.Cardinalities())
	for _, e := range dag.Edges() {
		if err := net.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("bn: %w", err)
		}
	}

	nv := data.NumVars()
	// Per-variable count matrix offsets: counts for variable v occupy
	// rows·r_v consecutive cells.
	offsets := make([]int, nv+1)
	for v := 0; v < nv; v++ {
		offsets[v+1] = offsets[v] + net.NumParentRows(v)*net.Cardinality(v)
	}
	totalCells := offsets[nv]

	m := data.NumSamples()
	if p > m && m > 0 {
		p = m
	}
	if p < 1 {
		p = 1
	}
	partials := make([][]float64, p)
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		counts := make([]float64, totalCells)
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			row := data.Row(i)
			for v := 0; v < nv; v++ {
				pr := net.ParentRowIndex(v, row)
				counts[offsets[v]+pr*net.Cardinality(v)+int(row[v])]++
			}
		}
		partials[w] = counts
	})
	counts := partials[0]
	for w := 1; w < p; w++ {
		for c, x := range partials[w] {
			counts[c] += x
		}
	}

	for v := 0; v < nv; v++ {
		rv := net.Cardinality(v)
		rowsN := net.NumParentRows(v)
		rows := make([][]float64, rowsN)
		for pr := 0; pr < rowsN; pr++ {
			row := make([]float64, rv)
			var total float64
			for s := 0; s < rv; s++ {
				row[s] = counts[offsets[v]+pr*rv+s] + alpha
				total += row[s]
			}
			if total == 0 {
				// Parent configuration never observed and no smoothing:
				// fall back to uniform so the CPT stays a distribution.
				for s := range row {
					row[s] = 1 / float64(rv)
				}
			} else {
				for s := range row {
					row[s] /= total
				}
			}
			rows[pr] = row
		}
		if err := net.SetCPT(v, rows); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// LogLikelihood returns the total log₂-likelihood of the dataset under the
// network, computed on p workers. Samples containing a zero-probability
// configuration contribute -Inf, as they must.
func (n *Network) LogLikelihood(data *dataset.Dataset, p int) float64 {
	if err := n.Validate(); err != nil {
		panic(err)
	}
	if data.NumVars() != n.NumVars() {
		panic(fmt.Sprintf("bn: data has %d variables, network has %d", data.NumVars(), n.NumVars()))
	}
	if p <= 0 {
		p = sched.DefaultP()
	}
	m := data.NumSamples()
	if p > m && m > 0 {
		p = m
	}
	if m == 0 {
		return 0
	}
	partials := make([]float64, p)
	spans := sched.BlockPartition(m, p)
	sched.Run(p, func(w int) {
		var ll float64
		for i := spans[w].Lo; i < spans[w].Hi; i++ {
			row := data.Row(i)
			for v := 0; v < n.NumVars(); v++ {
				ll += math.Log2(n.CondProb(v, row[v], row))
			}
		}
		partials[w] = ll
	})
	total := 0.0
	for _, x := range partials {
		total += x
	}
	return total
}

// MeanLogLikelihood returns LogLikelihood divided by the sample count —
// the per-sample cross-entropy in bits (negated), a scale-free model fit
// measure for comparing learned structures.
func (n *Network) MeanLogLikelihood(data *dataset.Dataset, p int) float64 {
	if data.NumSamples() == 0 {
		return 0
	}
	return n.LogLikelihood(data, p) / float64(data.NumSamples())
}
