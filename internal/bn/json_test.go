package bn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, net := range []*Network{Asia(), Cancer(), Chain(5, 3, 0.8), RandomDAG(7, 2, 0.3, 2, 1, 9)} {
		var buf bytes.Buffer
		if err := net.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if back.Name() != net.Name() || back.NumVars() != net.NumVars() {
			t.Fatalf("%s: identity lost", net.Name())
		}
		// Structure preserved.
		a, b := net.DAG().Edges(), back.DAG().Edges()
		if len(a) != len(b) {
			t.Fatalf("%s: edge count %d != %d", net.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: edges differ", net.Name())
			}
		}
		// Distribution preserved: joint probabilities agree on samples.
		d, err := net.Sample(200, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d.NumSamples(); i++ {
			row := d.Row(i)
			if math.Abs(net.JointProb(row)-back.JointProb(row)) > 1e-15 {
				t.Fatalf("%s: joint differs after round trip", net.Name())
			}
		}
	}
}

func TestWriteJSONRequiresValidNetwork(t *testing.T) {
	n := NewNetwork("incomplete", []int{2})
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err == nil {
		t.Fatal("WriteJSON accepted network without CPTs")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"no variables": `{"name":"x","cardinalities":[],"edges":[],"cpts":[]}`,
		"bad card":     `{"name":"x","cardinalities":[0],"edges":[],"cpts":[[[1.0]]]}`,
		"bad edge":     `{"name":"x","cardinalities":[2,2],"edges":[[0,5]],"cpts":[[[0.5,0.5]],[[0.5,0.5]]]}`,
		"self loop":    `{"name":"x","cardinalities":[2,2],"edges":[[1,1]],"cpts":[[[0.5,0.5]],[[0.5,0.5]]]}`,
		"cycle":        `{"name":"x","cardinalities":[2,2],"edges":[[0,1],[1,0]],"cpts":[[[0.5,0.5]],[[0.5,0.5]]]}`,
		"cpt count":    `{"name":"x","cardinalities":[2,2],"edges":[],"cpts":[[[0.5,0.5]]]}`,
		"cpt rows":     `{"name":"x","cardinalities":[2,2],"edges":[[0,1]],"cpts":[[[0.5,0.5]],[[0.5,0.5]]]}`,
		"not a dist":   `{"name":"x","cardinalities":[2],"edges":[],"cpts":[[[0.7,0.7]]]}`,
		"non-finite":   `{"name":"x","cardinalities":[2],"edges":[],"cpts":[[[1e999,0]]]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONMinimalValid(t *testing.T) {
	in := `{"name":"coin","cardinalities":[2],"edges":[],"cpts":[[[0.4,0.6]]]}`
	net, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p := net.JointProb([]uint8{1}); math.Abs(p-0.6) > 1e-15 {
		t.Errorf("P = %v", p)
	}
}
