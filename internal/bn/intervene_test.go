package bn

import (
	"math"
	"testing"
)

func TestInterveneStructure(t *testing.T) {
	net := Cancer() // pollution(0)→cancer(2)←smoker(1), cancer→xray(3), cancer→dysp(4)
	mut, err := net.Intervene(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mut.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mut.DAG().Parents(2)) != 0 {
		t.Errorf("do(cancer) left parents: %v", mut.DAG().Parents(2))
	}
	if !mut.DAG().HasEdge(2, 3) || !mut.DAG().HasEdge(2, 4) {
		t.Error("outgoing edges lost")
	}
	// v is clamped.
	sample := []uint8{0, 0, 0, 0, 0}
	if p := mut.CondProb(2, 1, sample); p != 1 {
		t.Errorf("P(cancer=1 | do) = %v", p)
	}
}

// enumerate computes P(target = 1) under net by full enumeration.
func enumerate(net *Network, target int) float64 {
	nv := net.NumVars()
	sample := make([]uint8, nv)
	total := 0.0
	var walk func(v int)
	walk = func(v int) {
		if v == nv {
			if sample[target] == 1 {
				total += net.JointProb(sample)
			}
			return
		}
		for s := 0; s < net.Cardinality(v); s++ {
			sample[v] = uint8(s)
			walk(v + 1)
		}
	}
	walk(0)
	return total
}

func TestInterveneVsConditioning(t *testing.T) {
	// In Cancer: conditioning on cancer=1 raises P(smoker) (diagnostic
	// inference flows upstream), but do(cancer=1) must NOT change
	// P(smoker): intervention severs the causal inflow.
	net := Cancer()
	mut, err := net.Intervene(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	priorSmoker := enumerate(net, 1)
	doSmoker := enumerate(mut, 1)
	if math.Abs(doSmoker-priorSmoker) > 1e-12 {
		t.Errorf("do(cancer) changed P(smoker): %v vs %v", doSmoker, priorSmoker)
	}
	// Downstream effects remain: do(cancer=1) raises P(xray=1) above prior.
	priorXray := enumerate(net, 3)
	doXray := enumerate(mut, 3)
	if doXray <= priorXray {
		t.Errorf("do(cancer=1) did not raise P(xray): %v vs %v", doXray, priorXray)
	}
	// And P(xray | do(cancer=1)) equals the CPT row directly.
	if math.Abs(doXray-0.9) > 1e-12 {
		t.Errorf("P(xray|do(cancer=1)) = %v, want 0.9", doXray)
	}
}

func TestInterveneErrors(t *testing.T) {
	net := Cancer()
	if _, err := net.Intervene(9, 0); err == nil {
		t.Error("out-of-range variable accepted")
	}
	if _, err := net.Intervene(0, 5); err == nil {
		t.Error("out-of-range state accepted")
	}
	if _, err := NewNetwork("x", []int{2}).Intervene(0, 0); err == nil {
		t.Error("unparameterized network accepted")
	}
}

func TestInterveneRootIsNoopDistribution(t *testing.T) {
	// Intervening on a root only clamps it; the conditional distribution
	// downstream must match observational conditioning on the same value.
	net := Chain(4, 2, 0.8)
	mut, err := net.Intervene(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// P(x3=1 | do(x0=1)) == P(x3=1 | x0=1) for a root intervention.
	doP := enumerate(mut, 3)
	// Observational: P(x3=1 | x0=1) via enumeration.
	nv := net.NumVars()
	sample := make([]uint8, nv)
	joint, marg := 0.0, 0.0
	var walk func(v int)
	walk = func(v int) {
		if v == nv {
			if sample[0] == 1 {
				p := net.JointProb(sample)
				marg += p
				if sample[3] == 1 {
					joint += p
				}
			}
			return
		}
		for s := 0; s < 2; s++ {
			sample[v] = uint8(s)
			walk(v + 1)
		}
	}
	walk(0)
	cond := joint / marg
	if math.Abs(doP-cond) > 1e-12 {
		t.Errorf("root intervention %v != conditioning %v", doP, cond)
	}
}
