package bn_test

import (
	"fmt"

	"waitfreebn/internal/bn"
	"waitfreebn/internal/infer"
)

// ExampleNetwork_Sample forward-samples the classic Sprinkler network.
func ExampleNetwork_Sample() {
	net := bn.Sprinkler()
	data, err := net.Sample(100000, 42, 2)
	if err != nil {
		panic(err)
	}
	wet := 0
	for i := 0; i < data.NumSamples(); i++ {
		if data.Get(i, 3) == 1 {
			wet++
		}
	}
	// Exact P(wet) = 0.6471; the empirical estimate lands nearby.
	fmt.Printf("P(wet grass) ≈ %.2f\n", float64(wet)/float64(data.NumSamples()))
	// Output:
	// P(wet grass) ≈ 0.65
}

// ExampleNetwork_Intervene contrasts conditioning with the do-operator.
func ExampleNetwork_Intervene() {
	net := bn.Cancer()
	observed, err := infer.QueryMarginal(net, 1, map[int]uint8{2: 1})
	if err != nil {
		panic(err)
	}
	mutilated, err := net.Intervene(2, 1)
	if err != nil {
		panic(err)
	}
	causal, err := infer.QueryMarginal(mutilated, 1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(smoker | cancer=yes)     = %.2f\n", observed[1])
	fmt.Printf("P(smoker | do(cancer=yes)) = %.2f\n", causal[1])
	// Output:
	// P(smoker | cancer=yes)     = 0.83
	// P(smoker | do(cancer=yes)) = 0.30
}

// ExampleFitCPTs estimates parameters for a known structure.
func ExampleFitCPTs() {
	truth := bn.Chain(3, 2, 0.9)
	data, err := truth.Sample(200000, 7, 2)
	if err != nil {
		panic(err)
	}
	fitted, err := bn.FitCPTs("refit", truth.DAG(), data, 1, 2)
	if err != nil {
		panic(err)
	}
	// P(x1 = parent's state | x0) was 0.9 in the generator.
	fmt.Printf("P(x1=1 | x0=1) ≈ %.1f\n", fitted.CondProb(1, 1, []uint8{1, 0, 0}))
	// Output:
	// P(x1=1 | x0=1) ≈ 0.9
}
