package bn

import (
	"testing"

	"waitfreebn/internal/graph"
)

func TestNumParameters(t *testing.T) {
	// Chain of 4 binary vars: root 1 param + 3 children × 2 rows × 1.
	net := Chain(4, 2, 0.8)
	if got := net.NumParameters(); got != 1+3*2 {
		t.Errorf("chain params = %d, want 7", got)
	}
	// Asia: roots 1+1, 2-row binaries 2×4, either 4 rows, dysp 4 rows.
	asia := Asia()
	want := 1 + 1 + 2 + 2 + 2 + 4 + 2 + 4
	if got := asia.NumParameters(); got != want {
		t.Errorf("asia params = %d, want %d", got, want)
	}
}

func TestBICPrefersTrueStructure(t *testing.T) {
	truth := Chain(5, 2, 0.85)
	d, err := truth.Sample(50000, 91, 4)
	if err != nil {
		t.Fatal(err)
	}
	right, err := FitCPTs("right", truth.DAG(), d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := FitCPTs("empty", graph.NewDAG(5), d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Overfull: every variable gets both earlier neighbors as parents.
	full := graph.NewDAG(5)
	for j := 1; j < 5; j++ {
		full.MustAddEdge(j-1, j)
		if j >= 2 {
			full.MustAddEdge(j-2, j)
		}
	}
	over, err := FitCPTs("over", full, d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	bicRight := right.BIC(d, 4)
	bicEmpty := empty.BIC(d, 4)
	bicOver := over.BIC(d, 4)
	if bicRight <= bicEmpty {
		t.Errorf("BIC(true)=%v should beat BIC(empty)=%v", bicRight, bicEmpty)
	}
	if bicRight <= bicOver {
		t.Errorf("BIC(true)=%v should beat BIC(overfull)=%v", bicRight, bicOver)
	}
}

func TestAICPenalizesLessThanBICAtScale(t *testing.T) {
	truth := Chain(4, 2, 0.8)
	d, err := truth.Sample(10000, 92, 2)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitCPTs("f", truth.DAG(), d, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ll := fit.LogLikelihood(d, 2)
	aic := fit.AIC(d, 2)
	bic := fit.BIC(d, 2)
	if !(bic < aic && aic < ll) {
		t.Errorf("expected BIC (%v) < AIC (%v) < LL (%v) at m=10000", bic, aic, ll)
	}
}

func TestScoresEmptyData(t *testing.T) {
	net := Cancer()
	d, _ := net.Sample(0, 1, 1)
	if net.BIC(d, 1) != 0 || net.AIC(d, 1) != 0 {
		t.Error("scores on empty data should be 0")
	}
}
