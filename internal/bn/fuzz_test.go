package bn

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary bytes must never panic the model reader, and any
// accepted model must be valid and re-serializable.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := Cancer().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"name":"x","cardinalities":[2],"edges":[],"cpts":[[[0.5,0.5]]]}`)
	f.Add(`{"cardinalities":[2,2],"edges":[[0,1],[1,0]]}`)
	f.Fuzz(func(t *testing.T, input string) {
		net, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("accepted model fails validation: %v", verr)
		}
		var out bytes.Buffer
		if werr := net.WriteJSON(&out); werr != nil {
			t.Fatalf("accepted model fails to serialize: %v", werr)
		}
	})
}

// FuzzReadBIF: arbitrary text must never panic the BIF parser; accepted
// documents must produce valid, re-serializable networks.
func FuzzReadBIF(f *testing.F) {
	var buf bytes.Buffer
	if err := Sprinkler().WriteBIF(&buf, nil, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("network x { }")
	f.Add("variable a { type discrete [ 2 ] { x, y }; } probability ( a ) { table .5,.5; }")
	f.Add("// comment\n/* block */ variable")
	f.Add("probability ( a | b, c ) { (x, y) 1; }")
	f.Fuzz(func(t *testing.T, input string) {
		net, _, _, err := ReadBIF(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := net.Validate(); verr != nil {
			t.Fatalf("accepted network fails validation: %v", verr)
		}
		var out bytes.Buffer
		if werr := net.WriteBIF(&out, nil, nil); werr != nil {
			t.Fatalf("accepted network fails to serialize: %v", werr)
		}
	})
}
