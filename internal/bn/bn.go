// Package bn implements discrete Bayesian networks: a DAG over discrete
// variables plus one conditional probability table (CPT) per variable.
//
// The paper evaluates its primitives on synthetic uniform data but the full
// learning pipeline needs ground-truth networks to measure edge recovery,
// so this package supplies the generative side: forward (ancestral)
// sampling into a dataset, joint probability evaluation, and a catalogue of
// standard test networks.
package bn

import (
	"fmt"
	"math"

	"waitfreebn/internal/dataset"
	"waitfreebn/internal/graph"
	"waitfreebn/internal/rng"
	"waitfreebn/internal/sched"
)

// CPT is the conditional probability table of one variable: a row of
// probabilities over the variable's states for every joint configuration
// of its parents. Rows are indexed by mixed-radix encoding of the parent
// states (first parent varies slowest), matching ParentRowIndex.
type CPT struct {
	rows [][]float64 // rows[parentCfg][state]
}

// Network is a discrete Bayesian network. Construct with NewNetwork, add
// edges, then set CPTs; Validate or Sample will report structural
// problems.
type Network struct {
	name string
	dag  *graph.DAG
	card []int
	cpts []CPT
}

// NewNetwork creates a network over variables with the given cardinalities.
func NewNetwork(name string, cardinalities []int) *Network {
	for j, r := range cardinalities {
		if r < 1 || r > 256 {
			panic(fmt.Sprintf("bn: variable %d cardinality %d outside [1,256]", j, r))
		}
	}
	return &Network{
		name: name,
		dag:  graph.NewDAG(len(cardinalities)),
		card: append([]int(nil), cardinalities...),
		cpts: make([]CPT, len(cardinalities)),
	}
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// NumVars returns the number of variables.
func (n *Network) NumVars() int { return len(n.card) }

// Cardinality returns the number of states of variable v.
func (n *Network) Cardinality(v int) int { return n.card[v] }

// Cardinalities returns a copy of all cardinalities.
func (n *Network) Cardinalities() []int { return append([]int(nil), n.card...) }

// DAG returns the network's graph (alias; treat as read-only once CPTs are
// set — adding edges after SetCPT invalidates the table shapes).
func (n *Network) DAG() *graph.DAG { return n.dag }

// AddEdge inserts the directed edge u→v, returning an error on cycles.
func (n *Network) AddEdge(u, v int) error { return n.dag.AddEdge(u, v) }

// MustAddEdge is AddEdge that panics on cycle.
func (n *Network) MustAddEdge(u, v int) { n.dag.MustAddEdge(u, v) }

// NumParentRows returns the number of parent configurations of v.
func (n *Network) NumParentRows(v int) int {
	rows := 1
	for _, p := range n.dag.Parents(v) {
		rows *= n.card[p]
	}
	return rows
}

// ParentRowIndex computes the CPT row index for variable v given a full
// sample (one state per network variable).
func (n *Network) ParentRowIndex(v int, sample []uint8) int {
	idx := 0
	for _, p := range n.dag.Parents(v) {
		idx = idx*n.card[p] + int(sample[p])
	}
	return idx
}

// SetCPT assigns the CPT of v. rows must have NumParentRows(v) rows of
// Cardinality(v) non-negative entries each, every row summing to 1 within
// 1e-9.
func (n *Network) SetCPT(v int, rows [][]float64) error {
	wantRows := n.NumParentRows(v)
	if len(rows) != wantRows {
		return fmt.Errorf("bn: variable %d CPT has %d rows, want %d", v, len(rows), wantRows)
	}
	cpt := CPT{rows: make([][]float64, wantRows)}
	for r, row := range rows {
		if len(row) != n.card[v] {
			return fmt.Errorf("bn: variable %d CPT row %d has %d entries, want %d", v, r, len(row), n.card[v])
		}
		sum := 0.0
		for _, p := range row {
			if p < 0 || math.IsNaN(p) {
				return fmt.Errorf("bn: variable %d CPT row %d has invalid probability %v", v, r, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("bn: variable %d CPT row %d sums to %v", v, r, sum)
		}
		cpt.rows[r] = append([]float64(nil), row...)
	}
	n.cpts[v] = cpt
	return nil
}

// MustSetCPT is SetCPT that panics on error, for static network catalogues.
func (n *Network) MustSetCPT(v int, rows [][]float64) {
	if err := n.SetCPT(v, rows); err != nil {
		panic(err)
	}
}

// CondProb returns P(v = state | parents as in sample).
func (n *Network) CondProb(v int, state uint8, sample []uint8) float64 {
	return n.cpts[v].rows[n.ParentRowIndex(v, sample)][state]
}

// Validate confirms every variable has a complete, well-formed CPT.
func (n *Network) Validate() error {
	for v := range n.cpts {
		if n.cpts[v].rows == nil {
			return fmt.Errorf("bn: variable %d has no CPT", v)
		}
		if len(n.cpts[v].rows) != n.NumParentRows(v) {
			return fmt.Errorf("bn: variable %d CPT shape stale (edges changed after SetCPT?)", v)
		}
	}
	return nil
}

// JointProb returns the probability of a complete sample under the network.
func (n *Network) JointProb(sample []uint8) float64 {
	if len(sample) != len(n.card) {
		panic(fmt.Sprintf("bn: sample has %d states, network has %d variables", len(sample), len(n.card)))
	}
	p := 1.0
	for v := range n.card {
		p *= n.CondProb(v, sample[v], sample)
	}
	return p
}

// Sample forward-samples m observations into a new dataset using p
// workers. Output is deterministic in seed and independent of p.
func (n *Network) Sample(m int, seed uint64, p int) (*dataset.Dataset, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order := n.dag.TopoOrder()
	d := dataset.New(m, n.card)

	const chunk = 4096
	chunks := (m + chunk - 1) / chunk
	if p <= 0 {
		p = sched.DefaultP()
	}
	if chunks == 0 {
		return d, nil
	}
	if p > chunks {
		p = chunks
	}
	sched.Run(p, func(w int) {
		sample := make([]uint8, len(n.card))
		for c := w; c < chunks; c += p {
			src := rng.NewXoshiro256SS(rng.Mix64(rng.Mix64(seed) ^ rng.Mix64(uint64(c)+0x51ed)))
			lo, hi := c*chunk, (c+1)*chunk
			if hi > m {
				hi = m
			}
			for i := lo; i < hi; i++ {
				for _, v := range order {
					row := n.cpts[v].rows[n.ParentRowIndex(v, sample)]
					u := src.Float64()
					acc := 0.0
					s := 0
					for ; s < len(row)-1; s++ {
						acc += row[s]
						if u < acc {
							break
						}
					}
					sample[v] = uint8(s)
				}
				for v, s := range sample {
					d.Set(i, v, s)
				}
			}
		}
	})
	return d, nil
}

// TrueMI returns the exact mutual information I(X_i;X_j) in bits implied by
// the network, computed by exhaustive enumeration of the joint. It is
// exponential in NumVars and intended for validating learned MI values on
// small test networks.
func (n *Network) TrueMI(i, j int) float64 {
	if err := n.Validate(); err != nil {
		panic(err)
	}
	ri, rj := n.card[i], n.card[j]
	joint := make([]float64, ri*rj)
	sample := make([]uint8, len(n.card))
	var walk func(v int, p float64)
	order := n.dag.TopoOrder()
	walk = func(idx int, p float64) {
		if p == 0 {
			return
		}
		if idx == len(order) {
			joint[int(sample[i])*rj+int(sample[j])] += p
			return
		}
		v := order[idx]
		for s := 0; s < n.card[v]; s++ {
			sample[v] = uint8(s)
			walk(idx+1, p*n.CondProb(v, uint8(s), sample))
		}
		sample[v] = 0
	}
	walk(0, 1)

	px := make([]float64, ri)
	py := make([]float64, rj)
	for x := 0; x < ri; x++ {
		for y := 0; y < rj; y++ {
			px[x] += joint[x*rj+y]
			py[y] += joint[x*rj+y]
		}
	}
	var mi float64
	for x := 0; x < ri; x++ {
		for y := 0; y < rj; y++ {
			pxy := joint[x*rj+y]
			if pxy > 0 {
				mi += pxy * math.Log2(pxy/(px[x]*py[y]))
			}
		}
	}
	if mi < 0 {
		return 0
	}
	return mi
}
