package bn

import (
	"math"

	"waitfreebn/internal/dataset"
)

// Model-selection scores for comparing candidate structures, as used by
// the score-based learning paradigm the paper contrasts with (Section III:
// likelihood, posterior and Bayesian-metric scores). Scores are computed
// for a fully parameterized network against a dataset; higher is better.

// NumParameters returns the number of free parameters of the network:
// Σ_v parentRows(v) · (r_v - 1).
func (n *Network) NumParameters() int {
	total := 0
	for v := 0; v < n.NumVars(); v++ {
		total += n.NumParentRows(v) * (n.Cardinality(v) - 1)
	}
	return total
}

// BIC returns the Bayesian information criterion in bits:
//
//	LL(data) - (k/2)·log₂(m)
//
// where k is the number of free parameters and m the sample count. BIC is
// consistent: with enough data it ranks the true structure highest.
func (n *Network) BIC(data *dataset.Dataset, p int) float64 {
	m := float64(data.NumSamples())
	if m == 0 {
		return 0
	}
	return n.LogLikelihood(data, p) - float64(n.NumParameters())/2*math.Log2(m)
}

// AIC returns the Akaike information criterion in bits:
//
//	LL(data) - k/ln 2
//
// (the usual -2·lnL + 2k rescaled to the bit/log₂ convention used across
// this repository, so AIC and BIC are directly comparable to LogLikelihood).
func (n *Network) AIC(data *dataset.Dataset, p int) float64 {
	if data.NumSamples() == 0 {
		return 0
	}
	return n.LogLikelihood(data, p) - float64(n.NumParameters())/math.Ln2
}
