package bn

import (
	"math"
	"testing"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/rng"
)

func TestNewNetworkValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad cardinality did not panic")
		}
	}()
	NewNetwork("bad", []int{2, 0})
}

func TestSetCPTValidation(t *testing.T) {
	n := NewNetwork("t", []int{2, 2})
	n.MustAddEdge(0, 1)
	cases := map[string][][]float64{
		"wrong row count":  {{0.5, 0.5}},
		"wrong row width":  {{0.5, 0.5}, {1.0}},
		"negative":         {{1.5, -0.5}, {0.5, 0.5}},
		"doesn't sum to 1": {{0.5, 0.4}, {0.5, 0.5}},
	}
	for name, rows := range cases {
		if err := n.SetCPT(1, rows); err == nil {
			t.Errorf("%s: SetCPT accepted invalid table", name)
		}
	}
	if err := n.SetCPT(1, [][]float64{{0.3, 0.7}, {0.9, 0.1}}); err != nil {
		t.Errorf("valid CPT rejected: %v", err)
	}
}

func TestValidateDetectsMissingAndStaleCPTs(t *testing.T) {
	n := NewNetwork("t", []int{2, 2})
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted network without CPTs")
	}
	n.MustSetCPT(0, [][]float64{{0.5, 0.5}})
	n.MustSetCPT(1, [][]float64{{0.5, 0.5}})
	if err := n.Validate(); err != nil {
		t.Errorf("Validate rejected complete network: %v", err)
	}
	// Adding an edge after CPTs are set invalidates the child's shape.
	n.MustAddEdge(0, 1)
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted stale CPT after edge insertion")
	}
}

func TestParentRowIndex(t *testing.T) {
	n := NewNetwork("t", []int{2, 3, 2})
	n.MustAddEdge(0, 2)
	n.MustAddEdge(1, 2)
	// Parents of 2 are (0, 1) sorted; row = s0*3 + s1.
	if got := n.ParentRowIndex(2, []uint8{1, 2, 0}); got != 5 {
		t.Errorf("ParentRowIndex = %d, want 5", got)
	}
	if got := n.NumParentRows(2); got != 6 {
		t.Errorf("NumParentRows = %d, want 6", got)
	}
	if got := n.NumParentRows(0); got != 1 {
		t.Errorf("root NumParentRows = %d, want 1", got)
	}
}

func TestJointProbSumsToOne(t *testing.T) {
	for _, net := range []*Network{Asia(), Cancer(), Chain(5, 3, 0.8), NaiveBayes(4, 2, 0.9)} {
		nv := net.NumVars()
		sample := make([]uint8, nv)
		var total float64
		var walk func(v int)
		walk = func(v int) {
			if v == nv {
				total += net.JointProb(sample)
				return
			}
			for s := 0; s < net.Cardinality(v); s++ {
				sample[v] = uint8(s)
				walk(v + 1)
			}
		}
		walk(0)
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s: joint sums to %v", net.Name(), total)
		}
	}
}

func TestJointProbPanicsOnArity(t *testing.T) {
	net := Cancer()
	defer func() {
		if recover() == nil {
			t.Fatal("JointProb with wrong arity did not panic")
		}
	}()
	net.JointProb([]uint8{0, 0})
}

func TestSampleDeterministicAcrossP(t *testing.T) {
	net := Asia()
	a, err := net.Sample(5000, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Sample(5000, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		for j := 0; j < 8; j++ {
			if a.Get(i, j) != b.Get(i, j) {
				t.Fatalf("sample (%d,%d) differs across P", i, j)
			}
		}
	}
}

func TestSampleRequiresCPTs(t *testing.T) {
	n := NewNetwork("t", []int{2})
	if _, err := n.Sample(10, 1, 1); err == nil {
		t.Fatal("Sample succeeded without CPTs")
	}
}

func TestSampleEmpiricalMatchesJoint(t *testing.T) {
	// Empirical frequency of every complete configuration must approach
	// the network's joint probability.
	net := Cancer()
	const m = 200000
	d, err := net.Sample(m, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint32]int{}
	for i := 0; i < m; i++ {
		var key uint32
		for j := 0; j < 5; j++ {
			key = key<<1 | uint32(d.Get(i, j))
		}
		counts[key]++
	}
	sample := make([]uint8, 5)
	var walk func(v int)
	walk = func(v int) {
		if v == 5 {
			var key uint32
			for _, s := range sample {
				key = key<<1 | uint32(s)
			}
			want := net.JointProb(sample)
			got := float64(counts[key]) / m
			if math.Abs(got-want) > 0.01 {
				t.Errorf("config %v: empirical %.4f vs joint %.4f", sample, got, want)
			}
			return
		}
		for s := 0; s < 2; s++ {
			sample[v] = uint8(s)
			walk(v + 1)
		}
	}
	walk(0)
}

func TestSampleRootMarginal(t *testing.T) {
	// Chain root is uniform over r states.
	net := Chain(4, 3, 0.7)
	const m = 60000
	d, err := net.Sample(m, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	var counts [3]int
	for i := 0; i < m; i++ {
		counts[d.Get(i, 0)]++
	}
	for s, c := range counts {
		if math.Abs(float64(c)/m-1.0/3) > 0.01 {
			t.Errorf("root state %d frequency %.4f", s, float64(c)/m)
		}
	}
}

func TestTrueMIChain(t *testing.T) {
	// For the copy-chain with keep=1 the MI between adjacent variables is
	// log2(r); with keep=1/r the chain is independent (MI=0).
	perfect := Chain(3, 2, 1)
	if mi := perfect.TrueMI(0, 1); math.Abs(mi-1) > 1e-9 {
		t.Errorf("perfect chain I(0;1) = %v, want 1", mi)
	}
	if mi := perfect.TrueMI(0, 2); math.Abs(mi-1) > 1e-9 {
		t.Errorf("perfect chain I(0;2) = %v, want 1", mi)
	}
	indep := Chain(3, 2, 0.5)
	if mi := indep.TrueMI(0, 1); mi > 1e-9 {
		t.Errorf("independent chain I(0;1) = %v, want 0", mi)
	}
}

func TestTrueMIMonotoneAlongChain(t *testing.T) {
	// Data-processing inequality: I(0;1) >= I(0;2) >= I(0;3).
	net := Chain(4, 2, 0.85)
	i01 := net.TrueMI(0, 1)
	i02 := net.TrueMI(0, 2)
	i03 := net.TrueMI(0, 3)
	if !(i01 >= i02 && i02 >= i03) {
		t.Errorf("DPI violated: %v, %v, %v", i01, i02, i03)
	}
	if i01 <= 0 || i03 <= 0 {
		t.Errorf("chain MIs should be positive: %v, %v", i01, i03)
	}
}

func TestEmpiricalMIMatchesTrueMI(t *testing.T) {
	// End-to-end: sample from Asia, build the potential table with the
	// wait-free primitive, compute all-pairs MI, compare against the exact
	// MI from the network.
	net := Asia()
	const m = 300000
	d, err := net.Sample(m, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	pt, _, err := core.Build(d, core.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	mi := pt.AllPairsMI(4, core.MIFused)
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 8; j++ {
			want := net.TrueMI(i, j)
			got := mi.At(i, j)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("I(%d;%d): empirical %.4f vs true %.4f", i, j, got, want)
			}
		}
	}
}

func TestCatalogStructures(t *testing.T) {
	asia := Asia()
	if asia.NumVars() != 8 || asia.DAG().NumEdges() != 8 {
		t.Errorf("asia shape: %d vars %d edges", asia.NumVars(), asia.DAG().NumEdges())
	}
	if err := asia.Validate(); err != nil {
		t.Errorf("asia invalid: %v", err)
	}
	cancer := Cancer()
	if cancer.NumVars() != 5 || cancer.DAG().NumEdges() != 4 {
		t.Errorf("cancer shape: %d vars %d edges", cancer.NumVars(), cancer.DAG().NumEdges())
	}
	nb := NaiveBayes(6, 3, 0.8)
	if nb.DAG().NumEdges() != 5 {
		t.Errorf("naive bayes edges = %d", nb.DAG().NumEdges())
	}
	for v := 1; v < 6; v++ {
		if ps := nb.DAG().Parents(v); len(ps) != 1 || ps[0] != 0 {
			t.Errorf("naive bayes parents of %d: %v", v, ps)
		}
	}
}

func TestRandomDAGProperties(t *testing.T) {
	net := RandomDAG(12, 3, 0.3, 3, 1.0, 5)
	if err := net.Validate(); err != nil {
		t.Fatalf("random network invalid: %v", err)
	}
	for v := 0; v < 12; v++ {
		if len(net.DAG().Parents(v)) > 3 {
			t.Errorf("node %d has %d parents, cap 3", v, len(net.DAG().Parents(v)))
		}
	}
	// Determinism.
	net2 := RandomDAG(12, 3, 0.3, 3, 1.0, 5)
	if len(net.DAG().Edges()) != len(net2.DAG().Edges()) {
		t.Error("RandomDAG not deterministic in seed")
	}
	// Sampling from it works.
	if _, err := net.Sample(1000, 3, 2); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogSpecPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"chain n=0":      func() { Chain(0, 2, 0.5) },
		"chain r=1":      func() { Chain(3, 1, 0.5) },
		"chain keep":     func() { Chain(3, 2, 1.5) },
		"nb n=1":         func() { NaiveBayes(1, 2, 0.5) },
		"random density": func() { RandomDAG(3, 2, 2.0, 2, 1, 1) },
		"random alpha":   func() { RandomDAG(3, 2, 0.5, 2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDirichletSamplesAreDistributions(t *testing.T) {
	src := newTestRNG()
	for i := 0; i < 100; i++ {
		d := dirichlet(src, 4, 0.5)
		sum := 0.0
		for _, p := range d {
			if p < 0 {
				t.Fatalf("negative dirichlet component %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("dirichlet sums to %v", sum)
		}
	}
}

func TestGammaSampleMean(t *testing.T) {
	// E[Gamma(a)] = a.
	src := newTestRNG()
	for _, a := range []float64{0.5, 1, 2, 5} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += gammaSample(src, a)
		}
		mean := sum / n
		if math.Abs(mean-a)/a > 0.05 {
			t.Errorf("Gamma(%v) sample mean %v", a, mean)
		}
	}
}

func TestSampleIntoDatasetCardinalities(t *testing.T) {
	net := Chain(4, 5, 0.6)
	d, err := net.Sample(100, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var _ *dataset.Dataset = d
	for j := 0; j < 4; j++ {
		if d.Cardinality(j) != 5 {
			t.Errorf("dataset cardinality %d", d.Cardinality(j))
		}
	}
}

func newTestRNG() *rng.Xoshiro256SS { return rng.NewXoshiro256SS(123) }

func TestSprinklerNetwork(t *testing.T) {
	net := Sprinkler()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.NumVars() != 4 || net.DAG().NumEdges() != 4 {
		t.Fatalf("shape: %d vars %d edges", net.NumVars(), net.DAG().NumEdges())
	}
	// Known prior: P(rain=1) = 0.5·0.2 + 0.5·0.8 = 0.5.
	joint := 0.0
	sample := make([]uint8, 4)
	var walk func(v int)
	walk = func(v int) {
		if v == 4 {
			if sample[2] == 1 {
				joint += net.JointProb(sample)
			}
			return
		}
		for s := uint8(0); s < 2; s++ {
			sample[v] = s
			walk(v + 1)
		}
	}
	walk(0)
	if math.Abs(joint-0.5) > 1e-12 {
		t.Errorf("P(rain) = %v, want 0.5", joint)
	}
}

func TestGridNetwork(t *testing.T) {
	net := Grid(3, 4, 2, 0.7)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if net.NumVars() != 12 {
		t.Fatalf("vars = %d", net.NumVars())
	}
	// Edge count: rows·(cols-1) + (rows-1)·cols = 3·3 + 2·4 = 17.
	if got := net.DAG().NumEdges(); got != 17 {
		t.Fatalf("edges = %d, want 17", got)
	}
	// Interior node has exactly 2 parents.
	if got := len(net.DAG().Parents(5)); got != 2 {
		t.Errorf("interior parents = %d", got)
	}
	// Sampling works and adjacent cells correlate.
	d, err := net.Sample(40000, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < d.NumSamples(); i++ {
		if d.Get(i, 0) == d.Get(i, 1) {
			agree++
		}
	}
	if frac := float64(agree) / 40000; frac < 0.6 {
		t.Errorf("adjacent agreement %.3f, expected > 0.6 with keep 0.7", frac)
	}
}

func TestGridSpecPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"rows": func() { Grid(0, 2, 2, 0.5) },
		"r":    func() { Grid(2, 2, 1, 0.5) },
		"keep": func() { Grid(2, 2, 2, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
