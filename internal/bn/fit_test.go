package bn

import (
	"math"
	"testing"

	"waitfreebn/internal/graph"
)

func TestFitCPTsRecoversParameters(t *testing.T) {
	// Sample from Asia, refit on the true structure, compare CPT entries.
	net := Asia()
	d, err := net.Sample(400000, 31, 4)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitCPTs("asia-fit", net.DAG(), d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sample := make([]uint8, 8)
	// Compare P(bronc=1 | smoke) rows (well-populated rows only).
	for smoke := uint8(0); smoke < 2; smoke++ {
		sample[1] = smoke
		want := net.CondProb(4, 1, sample)
		got := fit.CondProb(4, 1, sample)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(bronc=1|smoke=%d): fit %.4f vs true %.4f", smoke, got, want)
		}
	}
	// P(smoke=1) root marginal.
	if got := fit.CondProb(1, 1, sample); math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(smoke=1) = %.4f", got)
	}
}

func TestFitCPTsDeterministicAcrossWorkers(t *testing.T) {
	net := Chain(5, 3, 0.7)
	d, err := net.Sample(20000, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FitCPTs("a", net.DAG(), d, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitCPTs("b", net.DAG(), d, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	sample := make([]uint8, 5)
	for v := 0; v < 5; v++ {
		for ps := uint8(0); ps < 3; ps++ {
			if v > 0 {
				sample[v-1] = ps
			}
			for s := uint8(0); s < 3; s++ {
				if pa, pb := a.CondProb(v, s, sample), b.CondProb(v, s, sample); pa != pb {
					t.Fatalf("v=%d: %v != %v across worker counts", v, pa, pb)
				}
			}
		}
	}
}

func TestFitCPTsValidation(t *testing.T) {
	d, _ := Chain(3, 2, 0.8).Sample(100, 1, 1)
	if _, err := FitCPTs("x", graph.NewDAG(4), d, 1, 1); err == nil {
		t.Error("variable-count mismatch accepted")
	}
	if _, err := FitCPTs("x", graph.NewDAG(3), d, -1, 1); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestFitCPTsUnseenParentRowUniform(t *testing.T) {
	// Data where x0 is always 0, structure x0→x1 with alpha=0: the row for
	// x0=1 is never observed and must fall back to uniform.
	net := Chain(2, 2, 1.0)
	dag := net.DAG()
	d, _ := net.Sample(100, 2, 1)
	// Force x0 = 0 everywhere (keep x1 = x0 so data stays consistent).
	for i := 0; i < 100; i++ {
		d.Set(i, 0, 0)
		d.Set(i, 1, 0)
	}
	fit, err := FitCPTs("f", dag, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sample := []uint8{1, 0}
	if got := fit.CondProb(1, 0, sample); got != 0.5 {
		t.Errorf("unseen row P = %v, want uniform 0.5", got)
	}
}

func TestFitCPTsSmoothing(t *testing.T) {
	// alpha smooths zero counts away: with x1 == x0 always, ML gives
	// P(x1=1|x0=0) = 0 but alpha=1 gives a small positive value.
	net := Chain(2, 2, 1.0)
	d, _ := net.Sample(1000, 3, 1)
	ml, err := FitCPTs("ml", net.DAG(), d, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := FitCPTs("sm", net.DAG(), d, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sample := []uint8{0, 0}
	if got := ml.CondProb(1, 1, sample); got != 0 {
		t.Errorf("ML P(x1=1|x0=0) = %v, want 0", got)
	}
	if got := sm.CondProb(1, 1, sample); got <= 0 || got > 0.05 {
		t.Errorf("smoothed P(x1=1|x0=0) = %v, want small positive", got)
	}
}

func TestLogLikelihoodTrueModelBeatsWrongModel(t *testing.T) {
	truth := Chain(4, 2, 0.9)
	d, err := truth.Sample(50000, 33, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fit on the true structure vs on the empty structure.
	right, err := FitCPTs("right", truth.DAG(), d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := FitCPTs("empty", graph.NewDAG(4), d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	llRight := right.MeanLogLikelihood(d, 4)
	llEmpty := empty.MeanLogLikelihood(d, 4)
	if llRight <= llEmpty {
		t.Errorf("true-structure LL %.4f should beat empty-structure LL %.4f", llRight, llEmpty)
	}
	// Entropy sanity: chain with keep=0.9 has per-sample entropy
	// H(X0) + 3·H(0.9) = 1 + 3·0.469 ≈ 2.407 bits; LL ≈ -2.407.
	h := 1 + 3*(-0.9*math.Log2(0.9)-0.1*math.Log2(0.1))
	if math.Abs(-llRight-h) > 0.05 {
		t.Errorf("mean LL %.4f, want ≈ -%.4f", llRight, h)
	}
}

func TestLogLikelihoodParallelConsistent(t *testing.T) {
	net := Cancer()
	d, err := net.Sample(30000, 34, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := net.LogLikelihood(d, 1)
	b := net.LogLikelihood(d, 4)
	if math.Abs(a-b) > 1e-6*math.Abs(a) {
		t.Errorf("LL differs across workers: %v vs %v", a, b)
	}
}

func TestLogLikelihoodZeroProbability(t *testing.T) {
	// "either" in Asia is deterministic; a contradictory observation has
	// probability 0 → total LL must be -Inf.
	net := Asia()
	d, _ := net.Sample(10, 35, 1)
	d.Set(0, 2, 1) // tub = yes
	d.Set(0, 3, 1) // lung = yes
	d.Set(0, 5, 0) // either = no (impossible)
	if ll := net.LogLikelihood(d, 2); !math.IsInf(ll, -1) {
		t.Errorf("LL with impossible observation = %v, want -Inf", ll)
	}
}

func TestMeanLogLikelihoodEmptyData(t *testing.T) {
	net := Cancer()
	d, _ := net.Sample(0, 1, 1)
	if got := net.MeanLogLikelihood(d, 2); got != 0 {
		t.Errorf("mean LL on empty data = %v", got)
	}
}

func TestEndToEndLearnFitEvaluate(t *testing.T) {
	// Full pipeline on held-out data: learn skeleton → orient → DAG →
	// fit CPTs → evaluate log-likelihood; must be close to the truth's.
	truth := Chain(5, 2, 0.85)
	train, err := truth.Sample(100000, 36, 4)
	if err != nil {
		t.Fatal(err)
	}
	test, err := truth.Sample(20000, 37, 4)
	if err != nil {
		t.Fatal(err)
	}
	// (structure package imports bn in its tests; learning here would be
	// an import cycle, so orient the true skeleton directly.)
	dag := truth.DAG()
	fit, err := FitCPTs("fit", dag, train, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	llFit := fit.MeanLogLikelihood(test, 4)
	llTrue := truth.MeanLogLikelihood(test, 4)
	if math.Abs(llFit-llTrue) > 0.01 {
		t.Errorf("fit LL %.4f vs true LL %.4f", llFit, llTrue)
	}
}
