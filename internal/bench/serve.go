package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/serve"
	"waitfreebn/internal/stats"
)

// ServeParams configures the closed-loop serving benchmark: an in-process
// bnserve instance on a loopback listener, hammered by closed-loop clients
// sweeping concurrency × read/write mix × key skew.
type ServeParams struct {
	M, N, R    int           // preloaded synthetic dataset shape
	Seed       uint64        // workload seed
	Duration   time.Duration // wall time per sweep cell
	Clients    []int         // concurrent closed-loop clients
	WriteFracs []float64     // fraction of requests that are ingest writes
	Skews      []float64     // Zipf s for query-variable choice AND ingest-row states (0 = uniform)
	Batch      int           // rows per ingest write
	// Windows sweeps the read-coalescing window (0 = coalescing off); the
	// sweep crosses it with every other axis, and the gate compares the
	// first nonzero window against 0.
	Windows []time.Duration
	// DistinctQueries bounds the read query space per cell to a fixed set
	// of shapes, so coalescing's in-flight dedup has material effect — an
	// unbounded query space would make every concurrent query distinct.
	DistinctQueries int
}

func (p ServeParams) withDefaults() ServeParams {
	if p.M <= 0 {
		p.M = 200000
	}
	if p.N <= 0 {
		p.N = 12
	}
	if p.R <= 0 {
		p.R = 3
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	if len(p.Clients) == 0 {
		p.Clients = []int{1, 4, 16}
	}
	if len(p.WriteFracs) == 0 {
		p.WriteFracs = []float64{0, 0.1}
	}
	if len(p.Skews) == 0 {
		p.Skews = []float64{0, 1.2}
	}
	if p.Batch <= 0 {
		p.Batch = 64
	}
	if len(p.Windows) == 0 {
		p.Windows = []time.Duration{0, 200 * time.Microsecond}
	}
	if p.DistinctQueries <= 0 {
		p.DistinctQueries = 64
	}
	return p
}

// ServeCell is one sweep point of the serving benchmark.
type ServeCell struct {
	Clients          int     `json:"clients"`
	WriteFrac        float64 `json:"write_frac"`
	Skew             float64 `json:"skew"`
	CoalesceWindowUS float64 `json:"coalesce_window_us"`

	Requests   int     `json:"requests"`
	Reads      int     `json:"reads"`
	Errors     int     `json:"errors"`
	Rejected   int     `json:"rejected"` // 429s (admission or ingest overflow)
	Throughput float64 `json:"req_per_s"`

	// ScanPasses is the number of read-side table scan passes the cell
	// cost (delta of core_scan_passes_total); ScansPerRead normalizes by
	// the read count — coalescing and the marginal cache both push it
	// toward zero. CoalesceBatches / CoalescedRequests are the coalescer's
	// own deltas for the cell.
	ScanPasses        uint64  `json:"scan_passes"`
	ScansPerRead      float64 `json:"scans_per_read"`
	CoalesceBatches   uint64  `json:"coalesce_batches"`
	CoalescedRequests uint64  `json:"coalesced_requests"`

	ReadP50Micros  float64 `json:"read_p50_us"`
	ReadP99Micros  float64 `json:"read_p99_us"`
	WriteP50Micros float64 `json:"write_p50_us"`
	WriteP99Micros float64 `json:"write_p99_us"`

	EpochsPublished uint64 `json:"epochs_published"`
	RowsIngested    uint64 `json:"rows_ingested"`

	// MassImbalance is max/mean per-partition occupancy of the published
	// table after the cell (1 = flat) — the histogram skewed ingest piles
	// up and the rebalancer consumes.
	MassImbalance float64 `json:"partition_mass_imbalance"`
}

// ServeResult is the full benchmark output, written as BENCH_serve.json.
type ServeResult struct {
	Experiment string      `json:"experiment"`
	Flags      string      `json:"flags"`
	M          int         `json:"m"`
	N          int         `json:"n"`
	R          int         `json:"r"`
	DurationS  float64     `json:"cell_duration_s"`
	Cells      []ServeCell `json:"cells"`
	// FinalEpoch and FinalSamples describe the table after the sweep's
	// final refresh; BitIdentical records the post-hoc check that every
	// marginal and MI of the served table matches a batch build over the
	// preload plus every row the server acknowledged.
	FinalEpoch   uint64 `json:"final_epoch"`
	FinalSamples uint64 `json:"final_samples"`
	BitIdentical bool   `json:"bit_identical_to_batch"`
	// Gate is the coalescing acceptance measurement (read-only, cache
	// disabled): coalesced vs uncoalesced throughput and scan cost.
	Gate *ServeGate `json:"coalesce_gate,omitempty"`
	// Server-side histograms scraped from /metrics.json after the sweep.
	ServerP50Micros map[string]float64 `json:"server_p50_us"`
	ServerP99Micros map[string]float64 `json:"server_p99_us"`
}

// ServeGate is the coalescing acceptance gate: at >=8 concurrent read
// clients over a bounded query set with the marginal cache disabled (so
// every query costs real scan work in both modes), coalescing must deliver
// >=2x read throughput OR a >=4x reduction in scan passes per request,
// with byte-identical responses.
type ServeGate struct {
	Clients          int     `json:"clients"`
	CoalesceWindowUS float64 `json:"coalesce_window_us"`
	DistinctQueries  int     `json:"distinct_queries"`

	BaselineReqPerS       float64 `json:"baseline_req_per_s"`
	CoalescedReqPerS      float64 `json:"coalesced_req_per_s"`
	ThroughputX           float64 `json:"throughput_x"`
	BaselineScansPerRead  float64 `json:"baseline_scans_per_read"`
	CoalescedScansPerRead float64 `json:"coalesced_scans_per_read"`
	ScanReductionX        float64 `json:"scan_reduction_x"`

	ResponsesIdentical bool `json:"responses_identical"`
	Pass               bool `json:"pass"`
}

// RunServe runs the closed-loop serving sweep. Every row the server
// acknowledges is recorded, so the final epoch can be checked bit-identical
// against a batch build — the serving path must not cost a single count.
func RunServe(ctx context.Context, pr ServeParams) (*ServeResult, error) {
	pr = pr.withDefaults()
	codec, err := encoding.NewCodec(uniformCard(pr.N, pr.R))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	// Pin the home-partition count so the occupancy histogram (and the
	// MassImbalance column) stays meaningful even when the container gives
	// the builder a single core — P=1 would otherwise mean one partition
	// and an identically-flat histogram.
	srv, err := serve.NewServer(ctx, serve.Config{
		Codec: codec,
		Build: core.Options{Obs: reg, NumPartitions: 8},
	})
	if err != nil {
		return nil, err
	}
	mgr := srv.Manager()

	// Preload the synthetic dataset as epoch 1 and remember every row for
	// the final bit-identity audit.
	data := dataset.NewUniformCard(pr.M, pr.N, pr.R)
	data.UniformIndependent(pr.Seed, 0)
	allRows := make([][]uint8, pr.M)
	for i := range allRows {
		allRows[i] = data.Row(i)
	}
	if err := mgr.Ingest(allRows); err != nil {
		return nil, err
	}
	if _, err := mgr.Refresh(ctx); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Background refresher: epochs swap continuously under load.
	refreshCtx, stopRefresh := context.WithCancel(ctx)
	defer stopRefresh()
	refreshDone := make(chan struct{})
	go func() {
		defer close(refreshDone)
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-refreshCtx.Done():
				return
			case <-ticker.C:
				if _, err := mgr.Refresh(context.Background()); err != nil {
					fmt.Fprintln(os.Stderr, "serve bench: refresh:", err)
					return
				}
			}
		}
	}()

	out := &ServeResult{
		Experiment: "serve", M: pr.M, N: pr.N, R: pr.R,
		DurationS: pr.Duration.Seconds(),
	}
	var acceptMu sync.Mutex // guards allRows appends from client goroutines
	for _, clients := range pr.Clients {
		for _, wf := range pr.WriteFracs {
			for _, skew := range pr.Skews {
				queries := buildQuerySet(pr, skew)
				for _, window := range pr.Windows {
					if err := ctx.Err(); err != nil {
						return nil, context.Cause(ctx)
					}
					srv.SetCoalesceWindow(window)
					scans0 := scanPassTotal(reg)
					batches0 := reg.Counter("serve_coalesce_batches_total").Value()
					joined0 := reg.Counter("serve_coalesced_requests_total").Value()
					cell := runServeCell(pr, base, clients, wf, skew, queries, &acceptMu, &allRows)
					cell.CoalesceWindowUS = float64(window) / float64(time.Microsecond)
					cell.ScanPasses = scanPassTotal(reg) - scans0
					if cell.Reads > 0 {
						cell.ScansPerRead = float64(cell.ScanPasses) / float64(cell.Reads)
					}
					cell.CoalesceBatches = reg.Counter("serve_coalesce_batches_total").Value() - batches0
					cell.CoalescedRequests = reg.Counter("serve_coalesced_requests_total").Value() - joined0
					cell.EpochsPublished = reg.Counter("serve_epochs_published_total").Value()
					cell.RowsIngested = reg.Counter("serve_ingest_rows_total").Value()
					snap := mgr.Acquire()
					cell.MassImbalance = massImbalance(snap.Table().PartitionMass())
					snap.Release()
					out.Cells = append(out.Cells, cell)
					fmt.Fprintf(os.Stderr,
						"serve: clients=%d write=%.0f%% skew=%.1f coalesce=%.0fµs  %.0f req/s  read p50/p99 %.0f/%.0fµs  scans/read %.3f  rejected=%d\n",
						clients, wf*100, skew, cell.CoalesceWindowUS, cell.Throughput,
						cell.ReadP50Micros, cell.ReadP99Micros, cell.ScansPerRead, cell.Rejected)
				}
			}
		}
	}

	// Quiesce, publish the final epoch, and audit it bit-identically
	// against a batch build over everything the server acknowledged.
	stopRefresh()
	<-refreshDone
	if _, err := mgr.Refresh(ctx); err != nil {
		return nil, err
	}
	snap := mgr.Acquire()
	defer snap.Release()
	out.FinalEpoch = snap.Epoch()
	out.FinalSamples = snap.Table().NumSamples()
	ok, err := auditBitIdentity(ctx, codec, snap.Table(), allRows)
	if err != nil {
		return nil, err
	}
	out.BitIdentical = ok

	// With the data static (refresher stopped, final epoch published), run
	// the coalescing acceptance gate.
	out.Gate = runServeGate(pr, srv, reg, base)

	out.ServerP50Micros, out.ServerP99Micros = scrapeLatencies(base)
	return out, nil
}

// scanPassTotal sums the read-side scan-pass counter across table paths.
func scanPassTotal(reg *obs.Registry) uint64 {
	return reg.Counter("core_scan_passes_total", "path", "frozen").Value() +
		reg.Counter("core_scan_passes_total", "path", "live").Value()
}

// buildQuerySet derives the cell's fixed read-query set: DistinctQueries
// URLs mixing single- and two-variable marginals (70%) with MI pairs
// (30%), variables drawn by the cell's skew law. Bounding the set is what
// gives concurrent clients overlapping in-flight queries to dedup.
func buildQuerySet(pr ServeParams, skew float64) []string {
	rng := rand.New(rand.NewSource(int64(pr.Seed)*31 + int64(skew*1000)))
	var varCDF []float64
	if skew > 0 {
		varCDF = zipfCDF(pr.N, skew)
	}
	pickVar := func() int {
		if varCDF != nil {
			return pickCDF(rng, varCDF)
		}
		return rng.Intn(pr.N)
	}
	queries := make([]string, 0, pr.DistinctQueries)
	seen := make(map[string]bool, pr.DistinctQueries)
	for attempts := 0; len(queries) < pr.DistinctQueries && attempts < 50*pr.DistinctQueries; attempts++ {
		var q string
		if kind := rng.Float64(); kind >= 0.7 {
			i, j := pickVar(), pickVar()
			if j == i {
				j = (i + 1) % pr.N
			}
			q = fmt.Sprintf("/v1/mi?i=%d&j=%d", i, j)
		} else if kind < 0.35 {
			q = fmt.Sprintf("/v1/marginal?vars=%d", pickVar())
		} else {
			a, b := pickVar(), pickVar()
			if b == a {
				b = (a + 1) % pr.N
			}
			q = fmt.Sprintf("/v1/marginal?vars=%d,%d", a, b)
		}
		if !seen[q] {
			seen[q] = true
			queries = append(queries, q)
		}
	}
	return queries
}

// runServeGate measures the acceptance gate on the quiesced server: the
// same read-only closed loop at >=8 clients, marginal cache disabled so
// every query pays its scan in both modes, coalescing off vs on. It also
// audits that both modes answer every query in the set byte-identically.
func runServeGate(pr ServeParams, srv *serve.Server, reg *obs.Registry, base string) *ServeGate {
	window := time.Duration(0)
	for _, w := range pr.Windows {
		if w > 0 {
			window = w
			break
		}
	}
	if window == 0 {
		window = 200 * time.Microsecond
	}
	clients := 8
	for _, c := range pr.Clients {
		if c > clients {
			clients = c
		}
	}
	queries := buildQuerySet(pr, 0)
	g := &ServeGate{
		Clients:          clients,
		CoalesceWindowUS: float64(window) / float64(time.Microsecond),
		DistinctQueries:  len(queries),
	}

	srv.SetReadCacheEnabled(false)
	defer srv.SetReadCacheEnabled(true)
	defer srv.SetCoalesceWindow(0)

	// Byte-identity audit across modes: the table is static, so every
	// query must answer the exact same body with and without coalescing.
	cl := &http.Client{Timeout: 10 * time.Second}
	bodies := make(map[string]string, len(queries))
	g.ResponsesIdentical = true
	for _, mode := range []time.Duration{0, window} {
		srv.SetCoalesceWindow(mode)
		for _, q := range queries {
			resp, err := cl.Get(base + q)
			if err != nil {
				g.ResponsesIdentical = false
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if mode == 0 {
				bodies[q] = string(body)
			} else if string(body) != bodies[q] {
				g.ResponsesIdentical = false
				fmt.Fprintf(os.Stderr, "serve gate: %s: coalesced body differs from uncoalesced\n", q)
			}
		}
	}

	measure := func(w time.Duration) (reqPerS, scansPerRead float64) {
		srv.SetCoalesceWindow(w)
		scans0 := scanPassTotal(reg)
		stop := make(chan struct{})
		counts := make([]int, clients)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(pr.Seed) + int64(id)*104729))
				cl := &http.Client{Timeout: 10 * time.Second}
				for {
					select {
					case <-stop:
						return
					default:
					}
					code, err := doGet(cl, base+queries[rng.Intn(len(queries))])
					if err == nil && code == http.StatusOK {
						counts[id]++
					}
				}
			}(c)
		}
		start := time.Now()
		time.Sleep(pr.Duration)
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)
		reads := 0
		for _, n := range counts {
			reads += n
		}
		scans := scanPassTotal(reg) - scans0
		if reads > 0 {
			scansPerRead = float64(scans) / float64(reads)
		}
		return float64(reads) / elapsed.Seconds(), scansPerRead
	}

	g.BaselineReqPerS, g.BaselineScansPerRead = measure(0)
	g.CoalescedReqPerS, g.CoalescedScansPerRead = measure(window)
	if g.BaselineReqPerS > 0 {
		g.ThroughputX = g.CoalescedReqPerS / g.BaselineReqPerS
	}
	if g.CoalescedScansPerRead > 0 {
		g.ScanReductionX = g.BaselineScansPerRead / g.CoalescedScansPerRead
	}
	g.Pass = g.ResponsesIdentical && (g.ThroughputX >= 2 || g.ScanReductionX >= 4)
	fmt.Fprintf(os.Stderr,
		"serve gate: clients=%d window=%.0fµs  %.0f → %.0f req/s (%.2fx)  scans/read %.3f → %.3f (%.1fx)  identical=%v  pass=%v\n",
		clients, g.CoalesceWindowUS, g.BaselineReqPerS, g.CoalescedReqPerS, g.ThroughputX,
		g.BaselineScansPerRead, g.CoalescedScansPerRead, g.ScanReductionX, g.ResponsesIdentical, g.Pass)
	return g
}

// zipfCDF returns the cumulative distribution of P(i) ∝ 1/(i+1)^s over k
// outcomes — the same power law dataset.Zipf uses, valid at any s > 0
// (math/rand's Zipf sampler requires s > 1, which is why the old picker
// silently fell back to uniform for the sweep's 0 < s <= 1 cells).
func zipfCDF(k int, s float64) []float64 {
	cdf := make([]float64, k)
	total := 0.0
	for i := 0; i < k; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

func pickCDF(rng *rand.Rand, cdf []float64) int {
	return sort.SearchFloat64s(cdf, rng.Float64())
}

// runServeCell drives one sweep point: `clients` closed-loop goroutines
// issuing reads (drawn from the cell's bounded query set — 70% marginal,
// 30% MI, variables Zipf-skewed at set construction) and writes (ingest
// batches whose row states follow the same Zipf law, so a skewed cell
// skews the table the server is building, not just which variables get
// queried) against the live server for the cell duration.
func runServeCell(pr ServeParams, base string, clients int, writeFrac, skew float64, queries []string, acceptMu *sync.Mutex, allRows *[][]uint8) ServeCell {
	type clientStats struct {
		reads, writes []time.Duration
		errors        int
		rejected      int
	}
	stop := make(chan struct{})
	results := make([]clientStats, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pr.Seed) + int64(id)*7919))
			var stateCDF []float64
			if skew > 0 {
				stateCDF = zipfCDF(pr.R, skew)
			}
			pickState := func() uint8 {
				if stateCDF != nil {
					return uint8(pickCDF(rng, stateCDF))
				}
				return uint8(rng.Intn(pr.R))
			}
			cl := &http.Client{Timeout: 5 * time.Second}
			st := &results[id]
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if rng.Float64() < writeFrac {
					rows := make([][]uint8, pr.Batch)
					for i := range rows {
						row := make([]uint8, pr.N)
						for v := range row {
							row[v] = pickState()
						}
						rows[i] = row
					}
					// Record before sending: any acknowledged batch must be
					// part of the final audit set; a rejected one is removed.
					acceptMu.Lock()
					*allRows = append(*allRows, rows...)
					acceptMu.Unlock()
					body, _ := json.Marshal(map[string]any{"rows": rows})
					code, err := doPost(cl, base+"/v1/ingest", body)
					if err != nil || code != http.StatusOK {
						acceptMu.Lock()
						*allRows = (*allRows)[:len(*allRows)-len(rows)]
						acceptMu.Unlock()
						if code == http.StatusTooManyRequests {
							st.rejected++
						} else {
							st.errors++
						}
					} else {
						st.writes = append(st.writes, time.Since(start))
					}
					continue
				}
				code, err := doGet(cl, base+queries[rng.Intn(len(queries))])
				switch {
				case err != nil:
					st.errors++
				case code == http.StatusOK:
					st.reads = append(st.reads, time.Since(start))
				case code == http.StatusTooManyRequests:
					st.rejected++
				default:
					st.errors++
				}
			}
		}(c)
	}
	cellStart := time.Now()
	time.Sleep(pr.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(cellStart)

	cell := ServeCell{Clients: clients, WriteFrac: writeFrac, Skew: skew}
	var reads, writes []time.Duration
	for i := range results {
		reads = append(reads, results[i].reads...)
		writes = append(writes, results[i].writes...)
		cell.Errors += results[i].errors
		cell.Rejected += results[i].rejected
	}
	cell.Requests = len(reads) + len(writes) + cell.Errors + cell.Rejected
	cell.Reads = len(reads)
	cell.Throughput = float64(len(reads)+len(writes)) / elapsed.Seconds()
	cell.ReadP50Micros = quantileMicros(reads, 0.5)
	cell.ReadP99Micros = quantileMicros(reads, 0.99)
	cell.WriteP50Micros = quantileMicros(writes, 0.5)
	cell.WriteP99Micros = quantileMicros(writes, 0.99)
	return cell
}

// auditBitIdentity rebuilds the acknowledged rows through the batch path
// and compares every single-variable marginal, a handful of pair
// marginals, and their MI values bitwise against the served table.
func auditBitIdentity(ctx context.Context, codec *encoding.Codec, served *core.PotentialTable, rows [][]uint8) (bool, error) {
	b := core.NewBuilder(codec, 0, core.Options{})
	if err := b.AddBlockCtx(ctx, rows); err != nil {
		return false, err
	}
	batch, _ := b.Finalize()
	if served.NumSamples() != batch.NumSamples() {
		return false, fmt.Errorf("served m=%d, batch m=%d", served.NumSamples(), batch.NumSamples())
	}
	n := codec.NumVars()
	for v := 0; v < n; v++ {
		want, err := batch.MarginalizeCtx(ctx, []int{v}, 0)
		if err != nil {
			return false, err
		}
		got, err := served.MarginalizeCtx(ctx, []int{v}, 0)
		if err != nil {
			return false, err
		}
		for c := range want.Counts {
			if got.Counts[c] != want.Counts[c] {
				return false, nil
			}
		}
	}
	for i := 0; i+1 < n; i += 2 {
		wj, err := batch.MarginalizePairCtx(ctx, i, i+1, 0)
		if err != nil {
			return false, err
		}
		gj, err := served.MarginalizePairCtx(ctx, i, i+1, 0)
		if err != nil {
			return false, err
		}
		for c := range wj.Counts {
			if gj.Counts[c] != wj.Counts[c] {
				return false, nil
			}
		}
		if stats.MutualInfoCounts(gj.Counts, gj.Card[0], gj.Card[1]) !=
			stats.MutualInfoCounts(wj.Counts, wj.Card[0], wj.Card[1]) {
			return false, nil
		}
	}
	return true, nil
}

// scrapeLatencies pulls the per-endpoint p50/p99 out of /metrics.json.
func scrapeLatencies(base string) (p50, p99 map[string]float64) {
	p50, p99 = map[string]float64{}, map[string]float64{}
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return
	}
	for name, h := range snap.Histograms {
		if !bytes.HasPrefix([]byte(name), []byte("serve_request_seconds")) {
			continue
		}
		p50[name] = h.P50Seconds * 1e6
		p99[name] = h.P99Seconds * 1e6
	}
	return
}

func quantileMicros(samples []time.Duration, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)-1))
	return float64(samples[idx]) / float64(time.Microsecond)
}

func uniformCard(n, r int) []int {
	card := make([]int, n)
	for i := range card {
		card[i] = r
	}
	return card
}

func doGet(cl *http.Client, url string) (int, error) {
	resp, err := cl.Get(url)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func doPost(cl *http.Client, url string, body []byte) (int, error) {
	resp, err := cl.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
