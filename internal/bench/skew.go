package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
)

// SkewParams configures the skew sweep: wait-free construction over
// key-rank-Zipf data at skew × P × hot-split on/off, with a built-in
// bit-identity assertion against the sequential oracle for every cell.
type SkewParams struct {
	M, N, R      int       // synthetic dataset shape
	Seed         uint64    // workload seed
	Reps         int       // timing repetitions (best-of)
	Ps           []int     // worker counts to sweep
	Skews        []float64 // key-rank Zipf exponents (0 = uniform)
	HotThreshold int       // promotion threshold (0 = core default)
}

func (p SkewParams) withDefaults() SkewParams {
	if p.M <= 0 {
		p.M = 400000
	}
	if p.N <= 0 {
		p.N = 12
	}
	if p.R <= 0 {
		p.R = 3
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Reps < 1 {
		p.Reps = 3
	}
	if len(p.Ps) == 0 {
		p.Ps = DefaultPs(8)
	}
	if len(p.Skews) == 0 {
		p.Skews = []float64{0, 0.8, 1.2, 2.0}
	}
	return p
}

// SkewCell is one sweep point: a full build at (skew, P, hot-split).
type SkewCell struct {
	Skew     float64 `json:"skew"`
	P        int     `json:"p"`
	HotSplit bool    `json:"hot_split"`

	Seconds      float64 `json:"seconds"`
	LocalKeys    uint64  `json:"local_keys"`
	ForeignKeys  uint64  `json:"foreign_keys"`
	SplitKeys    uint64  `json:"split_keys"`
	SplitMerges  uint64  `json:"split_merges"`
	DistinctKeys int     `json:"distinct_keys"`

	// Queue-pressure accounting from the per-destination push counters:
	// HotQueueWords is the heaviest destination's accepted pushes (the hot
	// partition's owner), TotalQueueWords the sum over all destinations.
	// On a 1-CPU container these — not wall clock — are the observable the
	// hot-split path moves (see EXPERIMENTS.md).
	HotQueueWords   uint64 `json:"hot_queue_words"`
	TotalQueueWords uint64 `json:"total_queue_words"`

	// MassImbalance is max/mean partition occupancy of the finished table
	// (1 = flat), the histogram the rebalancer consumes.
	MassImbalance float64 `json:"partition_mass_imbalance"`

	// Cross-cell derived ratios, filled on the hot-split cell of each
	// (skew, P) pair: wall-clock speedup over the matching non-split cell
	// and the factor by which hot-partition queue traffic collapsed.
	SpeedupVsNoSplit  float64 `json:"speedup_vs_nosplit,omitempty"`
	QueueWordCollapse float64 `json:"queue_word_collapse,omitempty"`

	BitIdentical bool `json:"bit_identical"`
}

// SkewGate is the acceptance summary over the high-skew region
// (skew >= 1.2, P >= 2): the sweep passes when the hot-split build beats
// the non-split build by >= 1.3x in wall clock, or — the 1-CPU proxy —
// collapses hot-partition queue words by >= 1.3x.
type SkewGate struct {
	BestSpeedup  float64 `json:"best_speedup"`
	BestCollapse float64 `json:"best_queue_word_collapse"`
	Pass         bool    `json:"pass"`
}

// SkewResult is the full sweep output (BENCH_skew.json).
type SkewResult struct {
	Experiment   string     `json:"experiment"`
	Flags        string     `json:"flags"`
	M            int        `json:"m"`
	N            int        `json:"n"`
	R            int        `json:"r"`
	HotThreshold int        `json:"hot_threshold"`
	GoMaxProcs   int        `json:"gomaxprocs"`
	Cells        []SkewCell `json:"cells"`
	Gate         SkewGate   `json:"gate"`
}

// RunSkew runs the skew sweep. Every cell's table must be bit-identical to
// the sequential oracle over the same rows — a mismatch is an error, not a
// data point — and the split-path accounting invariants
// (Stage2Pops == ForeignKeys, SplitMerges == SplitKeys) are asserted on
// every build.
func RunSkew(ctx context.Context, pr SkewParams) (*SkewResult, error) {
	pr = pr.withDefaults()
	out := &SkewResult{
		Experiment: "skew", M: pr.M, N: pr.N, R: pr.R,
		HotThreshold: pr.HotThreshold, GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, skew := range pr.Skews {
		data := dataset.NewUniformCard(pr.M, pr.N, pr.R)
		data.ZipfRows(pr.Seed, skew, runtime.GOMAXPROCS(0))
		ref, err := core.BuildSequential(data)
		if err != nil {
			return nil, err
		}
		// Per (skew, P): the non-split cell first, then hot-split, so the
		// split cell can carry the derived ratios.
		for _, p := range pr.Ps {
			var base SkewCell
			for _, hs := range []bool{false, true} {
				if err := ctx.Err(); err != nil {
					return nil, context.Cause(ctx)
				}
				cell, err := runSkewCell(ctx, data, ref, skew, p, hs, pr)
				if err != nil {
					return nil, err
				}
				if hs {
					if base.Seconds > 0 && cell.Seconds > 0 {
						cell.SpeedupVsNoSplit = base.Seconds / cell.Seconds
					}
					cell.QueueWordCollapse = collapseRatio(base.HotQueueWords, cell.HotQueueWords)
					if skew >= 1.2 && p >= 2 {
						if cell.SpeedupVsNoSplit > out.Gate.BestSpeedup {
							out.Gate.BestSpeedup = cell.SpeedupVsNoSplit
						}
						if cell.QueueWordCollapse > out.Gate.BestCollapse {
							out.Gate.BestCollapse = cell.QueueWordCollapse
						}
					}
				} else {
					base = cell
				}
				out.Cells = append(out.Cells, cell)
				fmt.Fprintf(os.Stderr,
					"skew: s=%.1f P=%d hot-split=%-5v %.3fs split=%d hot-queue-words=%d imbalance=%.2f\n",
					skew, p, hs, cell.Seconds, cell.SplitKeys, cell.HotQueueWords, cell.MassImbalance)
			}
		}
	}
	out.Gate.Pass = out.Gate.BestSpeedup >= 1.3 || out.Gate.BestCollapse >= 1.3
	return out, nil
}

func runSkewCell(ctx context.Context, data *dataset.Dataset, ref *core.PotentialTable,
	skew float64, p int, hotSplit bool, pr SkewParams) (SkewCell, error) {
	cell := SkewCell{Skew: skew, P: p, HotSplit: hotSplit}
	opts := core.Options{P: p, HotSplit: hotSplit, HotThreshold: pr.HotThreshold}
	var pt *core.PotentialTable
	var st core.Stats
	var buildErr error
	cell.Seconds = TimeBest(pr.Reps, func() {
		pt, st, buildErr = core.BuildCtx(ctx, data, opts)
	})
	if buildErr != nil {
		return cell, buildErr
	}
	label := fmt.Sprintf("skew=%.1f P=%d hot-split=%v", skew, p, hotSplit)
	if st.Stage2Pops != st.ForeignKeys {
		return cell, fmt.Errorf("skew: %s: Stage2Pops=%d != ForeignKeys=%d", label, st.Stage2Pops, st.ForeignKeys)
	}
	if st.SplitMerges != st.SplitKeys {
		return cell, fmt.Errorf("skew: %s: SplitMerges=%d != SplitKeys=%d", label, st.SplitMerges, st.SplitKeys)
	}
	if !hotSplit && st.SplitKeys != 0 {
		return cell, fmt.Errorf("skew: %s: SplitKeys=%d without -hot-split", label, st.SplitKeys)
	}
	if !pt.Equal(ref) {
		return cell, fmt.Errorf("skew: %s: table is NOT bit-identical to the sequential oracle", label)
	}
	cell.BitIdentical = true
	cell.LocalKeys, cell.ForeignKeys = st.LocalKeys, st.ForeignKeys
	cell.SplitKeys, cell.SplitMerges = st.SplitKeys, st.SplitMerges
	cell.DistinctKeys = st.DistinctKeys
	for _, w := range st.DestQueueWords {
		cell.TotalQueueWords += w
		if w > cell.HotQueueWords {
			cell.HotQueueWords = w
		}
	}
	cell.MassImbalance = massImbalance(pt.PartitionMass())
	return cell, nil
}

// collapseRatio is the factor by which hot-partition queue traffic shrank:
// base/split, with the degenerate cases (P=1 has no queues; a fully
// collapsed split path) mapped to 1 and base respectively.
func collapseRatio(base, split uint64) float64 {
	switch {
	case base == 0:
		return 1
	case split == 0:
		return float64(base)
	default:
		return float64(base) / float64(split)
	}
}

// massImbalance is max/mean over per-partition occupancy: 1 = perfectly
// flat, len(mass) = all keys in one partition.
func massImbalance(mass []uint64) float64 {
	var total, max uint64
	for _, m := range mass {
		total += m
		if m > max {
			max = m
		}
	}
	if total == 0 || len(mass) == 0 {
		return 1
	}
	return float64(max) * float64(len(mass)) / float64(total)
}
