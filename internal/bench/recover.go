package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/encoding"
	"waitfreebn/internal/obs"
	"waitfreebn/internal/serve"
	"waitfreebn/internal/wal"
)

// RecoverParams configures the crash-recovery benchmark: rows are ingested
// durably (WAL + checkpoints in a temp dir), the manager is abandoned
// without any shutdown flush, and a fresh manager recovers — timed — for
// each checkpoint cadence in the sweep. The cadence trades publish cost
// (a checkpoint per N epochs) against restart cost (the WAL tail that must
// replay), which is exactly what this experiment charts.
type RecoverParams struct {
	M, N, R int    // synthetic dataset shape
	Seed    uint64 // workload seed
	Batch   int    // rows per ingest batch (= rows per WAL record)
	Fsync   string // WAL fsync policy during the ingest phase
	Everies []int  // checkpoint-every sweep; 0 = checkpoints disabled
}

func (p RecoverParams) withDefaults() RecoverParams {
	if p.M <= 0 {
		p.M = 200000
	}
	if p.N <= 0 {
		p.N = 12
	}
	if p.R <= 0 {
		p.R = 3
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Batch <= 0 {
		p.Batch = 1024
	}
	if p.Fsync == "" {
		p.Fsync = "batch"
	}
	if len(p.Everies) == 0 {
		p.Everies = []int{1, 4, 16, 0}
	}
	return p
}

// RecoverCell is one sweep point: the restart cost for a given checkpoint
// cadence over an identical ingest history.
type RecoverCell struct {
	CheckpointEvery int     `json:"checkpoint_every"` // 0 = no checkpoints (pure replay)
	IngestSecs      float64 `json:"ingest_s"`         // durable ingest + publish of the whole history
	RecoverySecs    float64 `json:"recovery_s"`       // Open → checkpoint import → replay → publish
	ReplayedRecords uint64  `json:"replayed_records"`
	ReplayedRows    uint64  `json:"replayed_rows"`
	CheckpointRows  uint64  `json:"checkpoint_rows"` // rows restored from the checkpoint table
	WALBytes        int64   `json:"wal_bytes"`
	RowsPerSec      float64 `json:"recovered_rows_per_s"`
	BitIdentical    bool    `json:"bit_identical_to_batch"`
}

// RecoverResult is the full benchmark output (BENCH_recover.json).
type RecoverResult struct {
	M, N, R int           `json:"-"`
	Flags   string        `json:"flags"`
	Params  RecoverParams `json:"params"`
	Cells   []RecoverCell `json:"cells"`
}

// RunRecover measures crash-recovery time as a function of checkpoint
// cadence. Every cell must recover a table bit-identical to the batch build
// over the same rows; a mismatch is an error, not a data point.
func RunRecover(ctx context.Context, p RecoverParams) (*RecoverResult, error) {
	p = p.withDefaults()
	pol, err := wal.ParseSyncPolicy(p.Fsync)
	if err != nil {
		return nil, err
	}
	codec, err := encoding.NewCodec(uniformCard(p.N, p.R))
	if err != nil {
		return nil, err
	}
	data := dataset.NewUniformCard(p.M, p.N, p.R)
	data.UniformIndependent(p.Seed, 0)
	rows := make([][]uint8, p.M)
	for i := range rows {
		rows[i] = data.Row(i)
	}
	ref, err := core.BuildSequential(data)
	if err != nil {
		return nil, err
	}
	refCRC, err := wal.TableCRC(ref)
	if err != nil {
		return nil, err
	}

	res := &RecoverResult{M: p.M, N: p.N, R: p.R, Params: p}
	for _, every := range p.Everies {
		cell, err := runRecoverCell(ctx, codec, rows, pol, every, p.Batch, refCRC, ref)
		if err != nil {
			return nil, fmt.Errorf("checkpoint-every=%d: %w", every, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

func runRecoverCell(ctx context.Context, codec *encoding.Codec, rows [][]uint8,
	pol wal.SyncPolicy, every, batch int, refCRC uint32, ref *core.PotentialTable) (RecoverCell, error) {
	cell := RecoverCell{CheckpointEvery: every}
	dir, err := os.MkdirTemp("", "bnrecover-*")
	if err != nil {
		return cell, err
	}
	defer os.RemoveAll(dir)

	openMgr := func(reg *obs.Registry) (*serve.Manager, error) {
		log, err := wal.Open(wal.Options{Dir: dir, Sync: pol, Obs: reg})
		if err != nil {
			return nil, err
		}
		cfg := serve.ManagerConfig{Build: core.Options{Obs: reg}, WAL: log}
		if every > 0 {
			ck, err := wal.OpenCheckpoints(dir, reg)
			if err != nil {
				return nil, err
			}
			cfg.Checkpoints = ck
			cfg.CheckpointEvery = every
		}
		return serve.NewManager(ctx, codec, cfg)
	}

	// Ingest phase: the durable history a crash will interrupt. Refresh
	// every few batches so the checkpoint cadence actually bites, then leave
	// a tail of unbuilt batches pending — the worst case for replay.
	mgr, err := openMgr(obs.NewRegistry())
	if err != nil {
		return cell, err
	}
	if err := mgr.Recover(ctx); err != nil {
		return cell, err
	}
	start := time.Now()
	for lo, i := 0, 0; lo < len(rows); lo, i = lo+batch, i+1 {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		if err := mgr.Ingest(rows[lo:hi]); err != nil {
			return cell, err
		}
		if i%8 == 7 {
			if _, err := mgr.Refresh(ctx); err != nil {
				return cell, err
			}
		}
	}
	cell.IngestSecs = time.Since(start).Seconds()
	// CRASH: abandon mgr with the tail acked but unbuilt. No Close, no
	// flush; only WAL + whatever checkpoints the cadence produced survive.

	if every > 0 {
		ck, err := wal.OpenCheckpoints(dir, nil)
		if err != nil {
			return cell, err
		}
		if man, _, ok, err := ck.LoadLatest(); err == nil && ok {
			cell.CheckpointRows = man.Rows
		}
	}

	reg2 := obs.NewRegistry()
	start = time.Now()
	mgr2, err := openMgr(reg2)
	if err != nil {
		return cell, err
	}
	if err := mgr2.Recover(ctx); err != nil {
		return cell, err
	}
	cell.RecoverySecs = time.Since(start).Seconds()
	defer mgr2.Close()

	cell.ReplayedRecords = reg2.Counter("wal_replayed_records_total").Value()
	cell.ReplayedRows = uint64(len(rows)) - cell.CheckpointRows
	if cell.RecoverySecs > 0 {
		cell.RowsPerSec = float64(len(rows)) / cell.RecoverySecs
	}
	cell.WALBytes = dirBytes(dir)

	snap := mgr2.Acquire()
	defer snap.Release()
	got := snap.Table()
	gotCRC, err := wal.TableCRC(got)
	if err != nil {
		return cell, err
	}
	cell.BitIdentical = got.Equal(ref) && gotCRC == refCRC
	if !cell.BitIdentical {
		return cell, fmt.Errorf("recovered table differs from batch build (m=%d want %d)",
			got.NumSamples(), ref.NumSamples())
	}
	return cell, nil
}

// dirBytes sums the on-disk footprint of the WAL segments and checkpoints
// (best effort — a racing prune is not an error).
func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}
