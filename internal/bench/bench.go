// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section V): the table-construction scalability sweeps of
// Figures 3 and 4, the all-pairs mutual-information sweep of Figure 5, and
// the headline speedup table — plus the ablation sweeps documented in
// DESIGN.md.
//
// Each experiment produces Tables: labeled series of (P, seconds) points
// with derived speedups and contention counters, rendered as fixed-width
// text (the rows the paper plots) or CSV for external plotting.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"waitfreebn/internal/baseline"
)

// Measurement is one point on a scalability curve.
type Measurement struct {
	P        int     // worker count
	Seconds  float64 // best-of-reps wall clock
	Speedup  float64 // T(series at P=1) / T(P); 0 until FillSpeedups
	Counters baseline.Counters
}

// Series is one labeled curve (one method / one workload size).
type Series struct {
	Label  string
	Points []Measurement
}

// Table is a complete figure: several series over a common x-axis.
type Table struct {
	Title  string
	XLabel string // meaning of P ("cores")
	YLabel string // "seconds" or "speedup"
	Series []Series
}

// FillSpeedups computes each point's speedup relative to the same series'
// P=1 measurement (or its smallest-P measurement if P=1 is absent).
func (t *Table) FillSpeedups() {
	for si := range t.Series {
		s := &t.Series[si]
		if len(s.Points) == 0 {
			continue
		}
		base := s.Points[0]
		for _, pt := range s.Points {
			if pt.P < base.P {
				base = pt
			}
			if pt.P == 1 {
				base = pt
				break
			}
		}
		for pi := range s.Points {
			if s.Points[pi].Seconds > 0 {
				s.Points[pi].Speedup = base.Seconds / s.Points[pi].Seconds
			}
		}
	}
}

// WriteText renders the table with one row per P value and one column per
// series, mirroring how the paper's figures are read.
func (t *Table) WriteText(w io.Writer) error {
	ps := t.allPs()
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	fmt.Fprintf(&b, "%-8s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteByte('\n')
	for _, p := range ps {
		fmt.Fprintf(&b, "%-8d", p)
		for _, s := range t.Series {
			m, ok := s.at(p)
			if !ok {
				fmt.Fprintf(&b, " %22s", "-")
				continue
			}
			switch t.YLabel {
			case "speedup":
				fmt.Fprintf(&b, " %21.2fx", m.Speedup)
			default:
				fmt.Fprintf(&b, " %22s", formatSeconds(m.Seconds))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as long-form CSV:
// series,p,seconds,speedup,locks,cas_retries,queue_transfers.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("series,p,seconds,speedup,lock_acquisitions,cas_retries,queue_transfers\n")
	for _, s := range t.Series {
		for _, m := range s.Points {
			fmt.Fprintf(&b, "%s,%d,%.9f,%.4f,%d,%d,%d\n",
				s.Label, m.P, m.Seconds, m.Speedup,
				m.Counters.LockAcquisitions, m.Counters.CASRetries, m.Counters.QueueTransfers)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SpeedupView returns a copy of the table with YLabel "speedup" — the (b)
// panel of each paper figure.
func (t *Table) SpeedupView() *Table {
	c := &Table{Title: t.Title + " — speedup", XLabel: t.XLabel, YLabel: "speedup", Series: t.Series}
	return c
}

func (t *Table) allPs() []int {
	set := map[int]bool{}
	for _, s := range t.Series {
		for _, m := range s.Points {
			set[m.P] = true
		}
	}
	ps := make([]int, 0, len(set))
	for p := range set {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	return ps
}

func (s *Series) at(p int) (Measurement, bool) {
	for _, m := range s.Points {
		if m.P == p {
			return m, true
		}
	}
	return Measurement{}, false
}

func formatSeconds(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.3fs", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.3fms", sec*1e3)
	default:
		return fmt.Sprintf("%.1fµs", sec*1e6)
	}
}

// TimeBest runs fn reps times and returns the fastest wall-clock duration
// in seconds. Best-of suppresses scheduler noise; reps < 1 is treated as 1.
func TimeBest(reps int, fn func()) float64 {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		runtime.GC() // don't bill the previous measurement's garbage to this one
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Seconds()
}

// Timing is a variance-aware measurement: the raw per-iteration samples plus
// the mean and min derived from them. Experiments that emit JSON artifacts
// record Timings instead of a single best-of scalar, so a reader can judge
// noise (spread of Samples) rather than trusting one number.
type Timing struct {
	Samples []float64 `json:"samples_s"`
	Mean    float64   `json:"mean_s"`
	Min     float64   `json:"min_s"`
}

// NewTiming summarizes a set of per-iteration samples (seconds).
func NewTiming(samples []float64) Timing {
	t := Timing{Samples: samples}
	if len(samples) == 0 {
		return t
	}
	t.Min = samples[0]
	for _, s := range samples {
		t.Mean += s
		if s < t.Min {
			t.Min = s
		}
	}
	t.Mean /= float64(len(samples))
	return t
}

// TimeSamples runs fn count times and returns every wall-clock sample in run
// order. Unlike TimeBest it keeps all observations — fn may mutate shared
// state between iterations (e.g. each run ingests a fresh delta), in which
// case the samples measure count successive real operations, not count
// repeats of one.
func TimeSamples(count int, fn func()) Timing {
	if count < 1 {
		count = 1
	}
	samples := make([]float64, 0, count)
	for r := 0; r < count; r++ {
		runtime.GC()
		start := time.Now()
		fn()
		samples = append(samples, time.Since(start).Seconds())
	}
	return NewTiming(samples)
}
