package bench

import (
	"context"
	"fmt"
	"io"

	"waitfreebn/internal/baseline"
	"waitfreebn/internal/core"
	"waitfreebn/internal/dataset"
	"waitfreebn/internal/spsc"
)

// Params are the workload knobs shared by the experiments, defaulted to a
// scaled-down version of the paper's setup (Section V uses m up to 10M and
// a 32-core machine; pass -m/-maxP at the CLI to restore them).
type Params struct {
	Seed uint64 // workload seed
	Reps int    // timing repetitions (best-of)
	Ps   []int  // worker counts to sweep
}

// DefaultPs returns the power-of-two core counts the paper sweeps,
// truncated to maxP: 1, 2, 4, ..., maxP.
func DefaultPs(maxP int) []int {
	var ps []int
	for p := 1; p <= maxP; p <<= 1 {
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		ps = []int{1}
	}
	return ps
}

func (p Params) withDefaults() Params {
	if p.Reps < 1 {
		p.Reps = 3
	}
	if len(p.Ps) == 0 {
		p.Ps = DefaultPs(8)
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// Fig3 reproduces Figure 3: wait-free table construction vs the lock-based
// (TBB-analogue) builder, sweeping the number of samples m with the
// variable count fixed (paper: n=30, m ∈ {0.1M, 1M, 10M}).
func Fig3(ms []int, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Fig 3: table construction, n=%d r=%d, m sweep", n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	for _, m := range ms {
		data := dataset.NewUniformCard(m, n, r)
		data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
		for _, strat := range []baseline.Strategy{baseline.WaitFree, baseline.StripedLock} {
			t.Series = append(t.Series, constructionSeries(
				fmt.Sprintf("%s m=%s", strat, human(m)), strat, data, pr))
		}
	}
	t.FillSpeedups()
	return t
}

// Fig4 reproduces Figure 4: construction scalability sweeping the number
// of random variables n with m fixed (paper: m=10M, n ∈ {30, 40, 50}).
func Fig4(m int, ns []int, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Fig 4: table construction, m=%s r=%d, n sweep", human(m), r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	for _, n := range ns {
		data := dataset.NewUniformCard(m, n, r)
		data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
		for _, strat := range []baseline.Strategy{baseline.WaitFree, baseline.StripedLock} {
			t.Series = append(t.Series, constructionSeries(
				fmt.Sprintf("%s n=%d", strat, n), strat, data, pr))
		}
	}
	t.FillSpeedups()
	return t
}

// Fig5 reproduces Figure 5: all-pairs mutual information over the
// wait-free-built potential table, sweeping n (paper: m=10M,
// n ∈ {30, 40, 50}).
func Fig5(m int, ns []int, r int, schedule core.MISchedule, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Fig 5: all-pairs MI (%s), m=%s r=%d, n sweep", schedule, human(m), r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	for _, n := range ns {
		data := dataset.NewUniformCard(m, n, r)
		data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
		var series Series
		series.Label = fmt.Sprintf("n=%d", n)
		for _, p := range pr.Ps {
			pt, _, err := core.BuildCtx(context.Background(), data, core.Options{P: p})
			if err != nil {
				panic(err)
			}
			sec := TimeBest(pr.Reps, func() {
				if _, err := pt.AllPairsMICtx(context.Background(), p, schedule); err != nil {
					panic(err)
				}
			})
			series.Points = append(series.Points, Measurement{P: p, Seconds: sec})
		}
		t.Series = append(t.Series, series)
	}
	t.FillSpeedups()
	return t
}

// Headline reproduces the summary comparison behind the paper's headline
// number (23.5× at 32 cores): every strategy's construction time and
// speedup at each core count for one workload.
func Headline(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Headline: construction strategies, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	for _, strat := range baseline.Strategies() {
		if strat == baseline.Sequential {
			continue // it is every series' own P=1 point in spirit
		}
		t.Series = append(t.Series, constructionSeries(strat.String(), strat, data, pr))
	}
	t.FillSpeedups()
	return t
}

// AblationQueue is ablation A1: construction time by inter-core queue kind.
func AblationQueue(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Ablation A1: queue kind, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	for _, q := range []spsc.Kind{spsc.KindChunked, spsc.KindRing, spsc.KindMutex} {
		t.Series = append(t.Series, optionsSeries("queue="+q.String(), data, pr,
			func(p int) core.Options { return core.Options{P: p, Queue: q} }))
	}
	t.FillSpeedups()
	return t
}

// AblationPartition is ablation A2: construction time by key→owner rule.
func AblationPartition(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Ablation A2: partition rule, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	for _, k := range []core.PartitionKind{core.PartitionModulo, core.PartitionRange, core.PartitionHash} {
		t.Series = append(t.Series, optionsSeries("partition="+k.String(), data, pr,
			func(p int) core.Options { return core.Options{P: p, Partition: k} }))
	}
	t.FillSpeedups()
	return t
}

// AblationMISchedule is ablation A3: all-pairs MI time by schedule.
func AblationMISchedule(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Ablation A3: MI schedule, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	for _, sch := range []core.MISchedule{core.MIPartitionParallel, core.MIPairParallel, core.MIPairDynamic, core.MIFused} {
		var series Series
		series.Label = sch.String()
		for _, p := range pr.Ps {
			pt, _, err := core.BuildCtx(context.Background(), data, core.Options{P: p})
			if err != nil {
				panic(err)
			}
			sec := TimeBest(pr.Reps, func() {
				if _, err := pt.AllPairsMICtx(context.Background(), p, sch); err != nil {
					panic(err)
				}
			})
			series.Points = append(series.Points, Measurement{P: p, Seconds: sec})
		}
		t.Series = append(t.Series, series)
	}
	t.FillSpeedups()
	return t
}

// AblationTable is ablation A4: construction time by per-core table kind.
func AblationTable(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Ablation A4: per-core table kind, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	for _, k := range []core.TableKind{core.TableOpenAddressing, core.TableChained, core.TableGoMap, core.TableDense} {
		t.Series = append(t.Series, optionsSeries("table="+k.String(), data, pr,
			func(p int) core.Options { return core.Options{P: p, Table: k} }))
	}
	t.FillSpeedups()
	return t
}

func constructionSeries(label string, strat baseline.Strategy, data *dataset.Dataset, pr Params) Series {
	s := Series{Label: label}
	for _, p := range pr.Ps {
		var counters baseline.Counters
		sec := TimeBest(pr.Reps, func() {
			_, c, err := baseline.Build(strat, data, p)
			if err != nil {
				panic(err)
			}
			counters = c
		})
		s.Points = append(s.Points, Measurement{P: p, Seconds: sec, Counters: counters})
	}
	return s
}

func optionsSeries(label string, data *dataset.Dataset, pr Params, opts func(p int) core.Options) Series {
	s := Series{Label: label}
	for _, p := range pr.Ps {
		sec := TimeBest(pr.Reps, func() {
			if _, _, err := core.BuildCtx(context.Background(), data, opts(p)); err != nil {
				panic(err)
			}
		})
		s.Points = append(s.Points, Measurement{P: p, Seconds: sec})
	}
	return s
}

func maxPs(ps []int) int {
	max := 1
	for _, p := range ps {
		if p > max {
			max = p
		}
	}
	return max
}

func human(m int) string {
	switch {
	case m >= 1000000 && m%1000000 == 0:
		return fmt.Sprintf("%dM", m/1000000)
	case m >= 100000:
		return fmt.Sprintf("%.1fM", float64(m)/1e6)
	case m >= 1000 && m%1000 == 0:
		return fmt.Sprintf("%dk", m/1000)
	default:
		return fmt.Sprintf("%d", m)
	}
}

// WriteBoth renders the time panel and the speedup panel of a figure,
// matching the paper's (a)/(b) layout.
func WriteBoth(w io.Writer, t *Table) error {
	if err := t.WriteText(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := t.SpeedupView().WriteText(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Counters reports the synchronization-work table: for each strategy and
// worker count, the contention counters that explain the wall-clock
// curves. These numbers are core-count-independent, which makes them the
// portable half of the Fig. 3/4 comparison (see EXPERIMENTS.md).
func CountersTable(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Counters: synchronization work, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	for _, strat := range []baseline.Strategy{baseline.GlobalLock, baseline.StripedLock, baseline.CASMap, baseline.WaitFree} {
		s := Series{Label: strat.String()}
		for _, p := range pr.Ps {
			_, counters, err := baseline.Build(strat, data, p)
			if err != nil {
				panic(err)
			}
			s.Points = append(s.Points, Measurement{P: p, Seconds: 0, Counters: counters})
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// StagesTable splits wait-free construction into its two stages at each
// worker count, using the per-stage critical-path timers in core.Stats.
// The paper's analysis predicts stage 1 = O(m·n/P) (encode + classify +
// local updates) and stage 2 = O(m/P) (queue drains), so stage 1 should
// dominate by roughly a factor of n at every P.
func StagesTable(m, n, r int, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Stages: wait-free construction split, m=%s n=%d r=%d", human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.UniformIndependent(pr.Seed, maxPs(pr.Ps))
	stage1 := Series{Label: "stage1 (classify+route)"}
	stage2 := Series{Label: "stage2 (drain)"}
	for _, p := range pr.Ps {
		var best1, best2 float64
		for rep := 0; rep < pr.Reps; rep++ {
			_, st, err := core.BuildCtx(context.Background(), data, core.Options{P: p})
			if err != nil {
				panic(err)
			}
			s1, s2 := st.Stage1Time.Seconds(), st.Stage2Time.Seconds()
			if rep == 0 || s1 < best1 {
				best1 = s1
			}
			if rep == 0 || s2 < best2 {
				best2 = s2
			}
		}
		stage1.Points = append(stage1.Points, Measurement{P: p, Seconds: best1})
		stage2.Points = append(stage2.Points, Measurement{P: p, Seconds: best2})
	}
	t.Series = []Series{stage1, stage2}
	t.FillSpeedups()
	return t
}

// AblationSkew is ablation A6: construction under zipf-skewed data, where
// partition rules differ in ways uniform data hides. Range partitioning
// keys on high-order variables and collapses under skew (hot keys land in
// one partition); modulo and hash stay balanced. Series report wall-clock;
// partition imbalance is visible through the queue-transfer counters and
// the per-partition sizes the correctness tests assert on.
func AblationSkew(m, n, r int, skew float64, pr Params) *Table {
	pr = pr.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Ablation A6: partition rule under zipf(%.1f) skew, m=%s n=%d r=%d", skew, human(m), n, r),
		XLabel: "cores",
		YLabel: "seconds",
	}
	data := dataset.NewUniformCard(m, n, r)
	data.Zipf(pr.Seed, skew, maxPs(pr.Ps))
	for _, k := range []core.PartitionKind{core.PartitionModulo, core.PartitionRange, core.PartitionHash} {
		t.Series = append(t.Series, optionsSeries("partition="+k.String(), data, pr,
			func(p int) core.Options { return core.Options{P: p, Partition: k} }))
	}
	t.FillSpeedups()
	return t
}
