package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name, blob string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareFiles covers the three comparator behaviors: Timing objects
// diff by mean with range-overlap significance, unit-suffixed scalars diff
// directly with direction awareness, and the gate catches only significant
// moves in the losing direction.
func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	oldBlob := `{
		"series": [{
			"build": {"samples_s": [1.00, 1.02, 0.98], "mean_s": 1.0, "min_s": 0.98},
			"noisy": {"samples_s": [0.90, 1.10], "mean_s": 1.0, "min_s": 0.90}
		}],
		"cells": [{"req_per_s": 1000, "read_p50_us": 40, "scans_per_read": 1.0, "coalesce_window_us": 0, "clients": 8}]
	}`
	newBlob := `{
		"series": [{
			"build": {"samples_s": [1.30, 1.32, 1.28], "mean_s": 1.3, "min_s": 1.28},
			"noisy": {"samples_s": [0.95, 1.05], "mean_s": 1.0, "min_s": 0.95}
		}],
		"cells": [{"req_per_s": 2400, "read_p50_us": 44, "scans_per_read": 0.2, "coalesce_window_us": 200, "clients": 8}]
	}`
	oldPath := writeArtifact(t, dir, "old.json", oldBlob)
	newPath := writeArtifact(t, dir, "new.json", newBlob)

	c, err := CompareFiles(oldPath, newPath, 10)
	if err != nil {
		t.Fatal(err)
	}

	rows := map[string]CompareRow{}
	for _, r := range c.Rows {
		rows[r.Metric] = r
	}

	build, ok := rows["series[0].build"]
	if !ok {
		t.Fatalf("no row for series[0].build; rows: %v", rows)
	}
	if !build.Significant || math.Abs(build.DeltaPct-30) > 0.01 {
		t.Errorf("build row = %+v, want significant +30%%", build)
	}

	noisy, ok := rows["series[0].noisy"]
	if !ok {
		t.Fatal("no row for series[0].noisy")
	}
	if noisy.Significant {
		t.Errorf("noisy row significant despite overlapping sample ranges: %+v", noisy)
	}

	rps := rows["cells[0].req_per_s"]
	if !rps.HigherIsBetter || math.Abs(rps.DeltaPct-140) > 0.01 {
		t.Errorf("req_per_s row = %+v, want higher-better +140%%", rps)
	}
	p50 := rows["cells[0].read_p50_us"]
	if p50.HigherIsBetter || math.Abs(p50.DeltaPct-10) > 0.01 {
		t.Errorf("read_p50_us row = %+v, want lower-better +10%%", p50)
	}
	if _, present := rows["cells[0].coalesce_window_us"]; present {
		t.Error("coalesce_window_us is sweep config and must not be compared")
	}
	if _, present := rows["cells[0].clients"]; present {
		t.Error("clients has no unit suffix and must not be compared")
	}

	// Gate at 10%: build regressed +30% significantly; read_p50_us moved
	// exactly +10%, which does not exceed the gate; req_per_s and
	// scans_per_read improved; noisy is insignificant.
	if len(c.Regressions) != 1 || c.Regressions[0].Metric != "series[0].build" {
		t.Errorf("regressions = %+v, want exactly series[0].build", c.Regressions)
	}

	var sb strings.Builder
	if err := c.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"series[0].build", "+30.0%", "~ ", "REGRESSIONS (1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareFilesSelf locks the self-compare invariant `make check`
// relies on: an artifact diffed against itself has zero regressions at
// any gate, and all deltas are zero.
func TestCompareFilesSelf(t *testing.T) {
	dir := t.TempDir()
	blob := `{
		"timing": {"samples_s": [2.0, 2.2], "mean_s": 2.1, "min_s": 2.0},
		"req_per_s": 512.5,
		"lat_us": 33
	}`
	path := writeArtifact(t, dir, "self.json", blob)
	c, err := CompareFiles(path, path, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regressions) != 0 {
		t.Errorf("self-compare produced regressions: %+v", c.Regressions)
	}
	for _, r := range c.Rows {
		if r.DeltaPct != 0 {
			t.Errorf("%s: self-compare delta %.3f%%, want 0", r.Metric, r.DeltaPct)
		}
	}
	if len(c.Rows) != 3 {
		t.Errorf("got %d rows, want 3 (timing, req_per_s, lat_us)", len(c.Rows))
	}
}

// TestCompareFilesStructuralDrift: mismatched array lengths compare the
// common prefix and note the drift instead of erroring.
func TestCompareFilesStructuralDrift(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json", `{"cells": [{"lat_us": 10}, {"lat_us": 20}]}`)
	newPath := writeArtifact(t, dir, "new.json", `{"cells": [{"lat_us": 12}]}`)
	c, err := CompareFiles(oldPath, newPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 1 || c.Rows[0].Metric != "cells[0].lat_us" {
		t.Errorf("rows = %+v, want exactly cells[0].lat_us", c.Rows)
	}
	if len(c.Notes) != 1 || !strings.Contains(c.Notes[0], "2 elements in old, 1 in new") {
		t.Errorf("notes = %v, want length-mismatch note", c.Notes)
	}
}
