package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// This file is the variance-aware artifact comparator behind
// `bnbench -compare` and `make bench-compare`: it diffs two BENCH_*.json
// files benchstat-style. Timing objects (samples_s/mean_s/min_s) compare
// mean against mean with the sample spread shown, and a delta is only
// deemed significant when the two sample ranges do not overlap; bare
// numeric leaves with a recognizable performance unit (_s, _us, req_per_s,
// scans_per_read, ...) compare directly. An optional gate percentage turns
// significant regressions into a non-zero exit.

// CompareRow is one aligned metric across the two artifacts.
type CompareRow struct {
	Metric         string
	Old, New       float64 // means (Timing) or raw values (scalar leaf)
	OldSpread      float64 // (max-min)/mean of samples; NaN for scalar leaves
	NewSpread      float64
	DeltaPct       float64 // (new-old)/old * 100
	HigherIsBetter bool
	Significant    bool // sample ranges disjoint; scalar leaves are always "significant"
}

// Comparison is the full diff of two artifacts.
type Comparison struct {
	OldPath, NewPath string
	Rows             []CompareRow
	// Regressions are the rows that moved in the losing direction by more
	// than the gate percentage (and significantly, for sampled metrics).
	Regressions []CompareRow
	Notes       []string // structural mismatches skipped during alignment
}

// CompareFiles loads and diffs two artifacts. gatePct <= 0 reports without
// gating; otherwise any significant move worse than gatePct% is recorded
// as a regression.
func CompareFiles(oldPath, newPath string, gatePct float64) (*Comparison, error) {
	load := func(path string) (any, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var doc any
		if err := json.Unmarshal(blob, &doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return doc, nil
	}
	oldDoc, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return nil, err
	}
	c := &Comparison{OldPath: oldPath, NewPath: newPath}
	c.walk("", oldDoc, newDoc)
	for _, r := range c.Rows {
		worse := r.DeltaPct
		if r.HigherIsBetter {
			worse = -r.DeltaPct
		}
		if gatePct > 0 && r.Significant && worse > gatePct {
			c.Regressions = append(c.Regressions, r)
		}
	}
	return c, nil
}

// configLeaves are numeric leaves whose unit suffix looks like a
// performance metric but records sweep configuration — comparing them
// would gate on setup, not results.
var configLeaves = map[string]bool{
	"cell_duration_s":    true,
	"coalesce_window_us": true,
}

// metricDirection classifies a leaf key: comparable at all, and if so
// whether larger is better. Unit suffix order matters — rates (_per_s)
// and ratios (_x) are higher-better, durations (_s, _us) lower-better.
func metricDirection(key string) (comparable, higherBetter bool) {
	if configLeaves[key] {
		return false, false
	}
	switch {
	case strings.HasSuffix(key, "_per_s") || strings.HasSuffix(key, "_x"):
		return true, true
	case strings.HasSuffix(key, "_us") || strings.HasSuffix(key, "_s") ||
		strings.HasSuffix(key, "_seconds") || key == "scans_per_read":
		return true, false
	}
	return false, false
}

// asTiming recognizes a Timing-shaped JSON object.
func asTiming(v any) (samples []float64, mean float64, ok bool) {
	m, isMap := v.(map[string]any)
	if !isMap {
		return nil, 0, false
	}
	rawSamples, hasSamples := m["samples_s"].([]any)
	rawMean, hasMean := m["mean_s"].(float64)
	_, hasMin := m["min_s"].(float64)
	if !hasSamples || !hasMean || !hasMin {
		return nil, 0, false
	}
	for _, s := range rawSamples {
		f, isNum := s.(float64)
		if !isNum {
			return nil, 0, false
		}
		samples = append(samples, f)
	}
	return samples, rawMean, true
}

func spreadOf(samples []float64, mean float64) (lo, hi, spread float64) {
	if len(samples) == 0 || mean == 0 {
		return mean, mean, 0
	}
	lo, hi = samples[0], samples[0]
	for _, s := range samples {
		lo, hi = math.Min(lo, s), math.Max(hi, s)
	}
	return lo, hi, (hi - lo) / math.Abs(mean) * 100
}

// walk aligns the two documents structurally: objects by key, arrays by
// index, Timing objects and unit-suffixed numeric leaves as comparison
// rows. Structure present on only one side is noted, not an error — new
// columns appear as artifacts evolve.
func (c *Comparison) walk(path string, oldV, newV any) {
	if oldSamples, oldMean, ok := asTiming(oldV); ok {
		newSamples, newMean, ok2 := asTiming(newV)
		if !ok2 {
			c.Notes = append(c.Notes, path+": timing in old, not in new")
			return
		}
		oldLo, oldHi, oldSpread := spreadOf(oldSamples, oldMean)
		newLo, newHi, newSpread := spreadOf(newSamples, newMean)
		row := CompareRow{
			Metric: path, Old: oldMean, New: newMean,
			OldSpread: oldSpread, NewSpread: newSpread,
			// Benchstat's spirit: a shift within the overlap of the two
			// sample ranges is noise, not signal.
			Significant: newLo > oldHi || newHi < oldLo,
		}
		if oldMean != 0 {
			row.DeltaPct = (newMean - oldMean) / math.Abs(oldMean) * 100
		}
		c.Rows = append(c.Rows, row)
		return
	}
	switch o := oldV.(type) {
	case map[string]any:
		n, ok := newV.(map[string]any)
		if !ok {
			c.Notes = append(c.Notes, path+": object in old, not in new")
			return
		}
		keys := make([]string, 0, len(o))
		for k := range o {
			if _, both := n[k]; both {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub := k
			if path != "" {
				sub = path + "." + k
			}
			c.walk(sub, o[k], n[k])
		}
	case []any:
		n, ok := newV.([]any)
		if !ok {
			c.Notes = append(c.Notes, path+": array in old, not in new")
			return
		}
		limit := len(o)
		if len(n) < limit {
			limit = len(n)
		}
		if len(o) != len(n) {
			c.Notes = append(c.Notes, fmt.Sprintf("%s: %d elements in old, %d in new; comparing first %d",
				path, len(o), len(n), limit))
		}
		for i := 0; i < limit; i++ {
			c.walk(fmt.Sprintf("%s[%d]", path, i), o[i], n[i])
		}
	case float64:
		key := path
		if dot := strings.LastIndexByte(path, '.'); dot >= 0 {
			key = path[dot+1:]
		}
		comparable, higher := metricDirection(key)
		if !comparable {
			return
		}
		nf, ok := newV.(float64)
		if !ok {
			c.Notes = append(c.Notes, path+": number in old, not in new")
			return
		}
		row := CompareRow{
			Metric: path, Old: o, New: nf,
			OldSpread: math.NaN(), NewSpread: math.NaN(),
			HigherIsBetter: higher, Significant: true,
		}
		if o != 0 {
			row.DeltaPct = (nf - o) / math.Abs(o) * 100
		} else if nf == 0 {
			row.DeltaPct = 0
		} else {
			row.DeltaPct = math.Inf(1)
		}
		c.Rows = append(c.Rows, row)
	}
}

// WriteText renders the comparison benchstat-style: one row per aligned
// metric, sampled metrics with their spread, insignificant deltas marked
// with ~.
func (c *Comparison) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "compare: old=%s new=%s\n", c.OldPath, c.NewPath)
	fmt.Fprintf(&b, "%-52s %16s %16s %10s\n", "metric", "old", "new", "delta")
	for _, r := range c.Rows {
		oldCol, newCol := formatMetric(r.Old, r.OldSpread), formatMetric(r.New, r.NewSpread)
		delta := fmt.Sprintf("%+.1f%%", r.DeltaPct)
		if math.IsInf(r.DeltaPct, 1) {
			delta = "+inf"
		}
		if !r.Significant {
			delta = "~ " + delta
		}
		fmt.Fprintf(&b, "%-52s %16s %16s %10s\n", r.Metric, oldCol, newCol, delta)
	}
	for _, n := range c.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(c.Regressions) > 0 {
		fmt.Fprintf(&b, "REGRESSIONS (%d):\n", len(c.Regressions))
		for _, r := range c.Regressions {
			dir := "slower"
			if r.HigherIsBetter {
				dir = "lower"
			}
			fmt.Fprintf(&b, "  %s: %+.1f%% %s\n", r.Metric, r.DeltaPct, dir)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatMetric(v, spread float64) string {
	if math.IsNaN(spread) {
		return fmt.Sprintf("%.4g", v)
	}
	return fmt.Sprintf("%.4g ±%.0f%%", v, spread)
}
