package bench

import (
	"bytes"
	"strings"
	"testing"

	"waitfreebn/internal/baseline"
	"waitfreebn/internal/core"
)

func smallParams() Params {
	return Params{Seed: 1, Reps: 1, Ps: []int{1, 2}}
}

func TestDefaultPs(t *testing.T) {
	cases := map[int][]int{
		1:  {1},
		2:  {1, 2},
		8:  {1, 2, 4, 8},
		12: {1, 2, 4, 8},
		32: {1, 2, 4, 8, 16, 32},
		0:  {1},
	}
	for maxP, want := range cases {
		got := DefaultPs(maxP)
		if len(got) != len(want) {
			t.Errorf("DefaultPs(%d) = %v, want %v", maxP, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("DefaultPs(%d) = %v, want %v", maxP, got, want)
				break
			}
		}
	}
}

func TestFillSpeedups(t *testing.T) {
	tab := &Table{Series: []Series{{
		Label: "x",
		Points: []Measurement{
			{P: 1, Seconds: 4},
			{P: 2, Seconds: 2},
			{P: 4, Seconds: 1},
		},
	}}}
	tab.FillSpeedups()
	want := []float64{1, 2, 4}
	for i, m := range tab.Series[0].Points {
		if m.Speedup != want[i] {
			t.Errorf("point %d speedup %v, want %v", i, m.Speedup, want[i])
		}
	}
}

func TestFillSpeedupsWithoutP1(t *testing.T) {
	tab := &Table{Series: []Series{{
		Label:  "x",
		Points: []Measurement{{P: 4, Seconds: 3}, {P: 2, Seconds: 6}},
	}}}
	tab.FillSpeedups()
	// Base is the smallest P (2).
	if got := tab.Series[0].Points[0].Speedup; got != 2 {
		t.Errorf("speedup at P=4 relative to P=2 = %v, want 2", got)
	}
}

func TestWriteTextLayout(t *testing.T) {
	tab := &Table{
		Title: "demo", XLabel: "cores", YLabel: "seconds",
		Series: []Series{
			{Label: "a", Points: []Measurement{{P: 1, Seconds: 1.5}, {P: 2, Seconds: 0.8}}},
			{Label: "b", Points: []Measurement{{P: 1, Seconds: 0.0004}}},
		},
	}
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "cores", "1.500s", "800.000ms", "µs", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Series: []Series{{
		Label: "wf",
		Points: []Measurement{{
			P: 2, Seconds: 0.5, Speedup: 1.9,
			Counters: baseline.Counters{LockAcquisitions: 3, CASRetries: 1, QueueTransfers: 7},
		}},
	}}}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "series,p,seconds,speedup,lock_acquisitions,cas_retries,queue_transfers" {
		t.Errorf("header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "wf,2,0.5") || !strings.HasSuffix(lines[1], "3,1,7") {
		t.Errorf("row: %s", lines[1])
	}
}

func TestTimeBestPositive(t *testing.T) {
	sec := TimeBest(2, func() {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	})
	if sec <= 0 {
		t.Errorf("TimeBest = %v", sec)
	}
	// reps < 1 coerces to 1 run.
	calls := 0
	TimeBest(0, func() { calls++ })
	if calls != 1 {
		t.Errorf("TimeBest(0) ran fn %d times", calls)
	}
}

func TestFig3SmallRun(t *testing.T) {
	tab := Fig3([]int{2000, 4000}, 8, 2, smallParams())
	// 2 sizes × 2 strategies.
	if len(tab.Series) != 4 {
		t.Fatalf("series count %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		for _, m := range s.Points {
			if m.Seconds <= 0 || m.Speedup <= 0 {
				t.Errorf("series %s P=%d: sec=%v speedup=%v", s.Label, m.P, m.Seconds, m.Speedup)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteBoth(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("WriteBoth missing speedup panel")
	}
}

func TestFig4SmallRun(t *testing.T) {
	tab := Fig4(3000, []int{6, 8}, 2, smallParams())
	if len(tab.Series) != 4 {
		t.Fatalf("series count %d", len(tab.Series))
	}
}

func TestFig5SmallRun(t *testing.T) {
	tab := Fig5(3000, []int{5, 6}, 2, core.MIFused, smallParams())
	if len(tab.Series) != 2 {
		t.Fatalf("series count %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		for _, m := range s.Points {
			if m.Seconds <= 0 {
				t.Errorf("series %s P=%d nonpositive time", s.Label, m.P)
			}
		}
	}
}

func TestHeadlineSmallRun(t *testing.T) {
	tab := Headline(3000, 8, 2, smallParams())
	// All strategies except Sequential.
	if len(tab.Series) != len(baseline.Strategies())-1 {
		t.Fatalf("series count %d", len(tab.Series))
	}
}

func TestAblationsSmallRun(t *testing.T) {
	pr := smallParams()
	for name, tab := range map[string]*Table{
		"queue":      AblationQueue(3000, 8, 2, pr),
		"partition":  AblationPartition(3000, 8, 2, pr),
		"mischedule": AblationMISchedule(3000, 6, 2, pr),
		"table":      AblationTable(3000, 8, 2, pr),
	} {
		want := 3
		if name == "mischedule" || name == "table" {
			want = 4 // four MI schedules; four table kinds (A4 gained dense)
		}
		if len(tab.Series) != want {
			t.Errorf("%s: series count %d, want %d", name, len(tab.Series), want)
		}
		for _, s := range tab.Series {
			if len(s.Points) != 2 {
				t.Errorf("%s/%s: %d points", name, s.Label, len(s.Points))
			}
		}
	}
}

func TestHumanFormat(t *testing.T) {
	cases := map[int]string{
		100:      "100",
		5000:     "5k",
		100000:   "0.1M",
		1000000:  "1M",
		10000000: "10M",
	}
	for in, want := range cases {
		if got := human(in); got != want {
			t.Errorf("human(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Reps != 3 || p.Seed != 42 || len(p.Ps) == 0 {
		t.Errorf("defaults: %+v", p)
	}
}

func TestAccuracySmallRun(t *testing.T) {
	out, err := Accuracy("cancer", []int{2000, 5000}, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Accuracy: cancer", "F1", "SHD", "LL gap", "2000", "5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("accuracy output missing %q:\n%s", want, out)
		}
	}
}

func TestAccuracyUnknownNetwork(t *testing.T) {
	if _, err := Accuracy("nope", []int{100}, 1, 1); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestCountersTableSmallRun(t *testing.T) {
	tab := CountersTable(3000, 8, 2, smallParams())
	if len(tab.Series) != 4 {
		t.Fatalf("series count %d", len(tab.Series))
	}
	// global-lock must report exactly m lock acquisitions at every P.
	for _, s := range tab.Series {
		if s.Label != "global-lock" {
			continue
		}
		for _, m := range s.Points {
			if m.Counters.LockAcquisitions != 3000 {
				t.Errorf("global-lock P=%d: %d locks", m.P, m.Counters.LockAcquisitions)
			}
		}
	}
}

func TestStagesTableSmallRun(t *testing.T) {
	tab := StagesTable(5000, 10, 2, smallParams())
	if len(tab.Series) != 2 {
		t.Fatalf("series count %d", len(tab.Series))
	}
	for _, s := range tab.Series {
		for _, m := range s.Points {
			if m.Seconds < 0 {
				t.Errorf("%s P=%d negative time", s.Label, m.P)
			}
		}
	}
	// Stage 1 must dominate stage 2 at P>=2 (stage 2 at P=1 is empty).
	s1, _ := tab.Series[0].at(2)
	s2, _ := tab.Series[1].at(2)
	if s1.Seconds <= s2.Seconds {
		t.Errorf("stage1 (%v) not dominant over stage2 (%v)", s1.Seconds, s2.Seconds)
	}
}

func TestAblationSkewSmallRun(t *testing.T) {
	tab := AblationSkew(3000, 8, 3, 1.5, smallParams())
	if len(tab.Series) != 3 {
		t.Fatalf("series count %d", len(tab.Series))
	}
}
